/** @file Tests for the m3e glue layer: Problem bundles and their wiring. */

#include <gtest/gtest.h>

#include "m3e/factory.h"
#include "m3e/problem.h"

using namespace magma;

TEST(Problem, MakeProblemWiresGroupPlatformEvaluator)
{
    auto p = m3e::makeProblem(dnn::TaskType::Vision, accel::Setting::S3,
                              64.0, 25, 5);
    EXPECT_EQ(p->group().size(), 25);
    EXPECT_EQ(p->platform().name, "S3");
    EXPECT_DOUBLE_EQ(p->platform().systemBwGbps, 64.0);
    EXPECT_EQ(p->evaluator().groupSize(), 25);
    EXPECT_EQ(p->evaluator().numAccels(), 8);
    EXPECT_EQ(p->evaluator().table().numJobs(), 25);
    EXPECT_EQ(p->evaluator().table().numAccels(), 8);
}

TEST(Problem, SameSeedSameWorkload)
{
    auto a = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              20, 9);
    auto b = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              20, 9);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(a->group().jobs[i].layer, b->group().jobs[i].layer);
    // And identical fitness for identical mappings.
    common::Rng rng(1);
    sched::Mapping m = sched::Mapping::random(20, 4, rng);
    EXPECT_DOUBLE_EQ(a->evaluator().fitness(m), b->evaluator().fitness(m));
}

TEST(Problem, FlexibleProblemUsesFlexiblePlatform)
{
    auto p = m3e::makeFlexibleProblem(dnn::TaskType::Mix,
                                      accel::Setting::S1, 16.0, 10, 2);
    for (const auto& sub : p->platform().subAccels)
        EXPECT_TRUE(sub.flexibleShape);
    EXPECT_NE(p->platform().name.find("flex"), std::string::npos);
}

TEST(Problem, FlexibleFitnessAtLeastFixedForSameMapping)
{
    dnn::WorkloadGenerator gen(11);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Vision, 15);
    m3e::Problem fixed(group, accel::makeSetting(accel::Setting::S1, 64.0));
    m3e::Problem flex(group,
                      accel::makeFlexibleSetting(accel::Setting::S1, 64.0));
    common::Rng rng(12);
    for (int i = 0; i < 10; ++i) {
        sched::Mapping m = sched::Mapping::random(15, 4, rng);
        // Per-job latencies can only improve, so at abundant BW the same
        // mapping can only speed up on the flexible platform.
        EXPECT_GE(flex.evaluator().fitness(m),
                  fixed.evaluator().fitness(m) * (1.0 - 1e-9));
    }
}

TEST(Problem, ObjectiveSelectionFlowsThroughFitness)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0,
                              12, 13);
    auto p_lat = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                  8.0, 12, 13, sched::Objective::Latency);
    EXPECT_EQ(p_lat->evaluator().objective(), sched::Objective::Latency);
    common::Rng rng(13);
    sched::Mapping m = sched::Mapping::random(12, 4, rng);
    double tp = p->evaluator().fitness(m);
    double lat = p_lat->evaluator().fitness(m);
    EXPECT_NE(tp, lat);
    sched::ScheduleResult r = p->evaluator().evaluate(m);
    EXPECT_NEAR(lat, 1.0 / r.makespanSeconds, lat * 1e-9);
}

TEST(Factory, EveryMethodConstructsAndRunsOnce)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0,
                              8, 17);
    for (m3e::Method m : m3e::paperMethods()) {
        auto o = m3e::makeOptimizer(m, 23);
        opt::SearchOptions opts;
        opts.sampleBudget = 30;
        opt::SearchResult r = o->search(p->evaluator(), opts);
        EXPECT_GT(r.bestFitness, 0.0) << m3e::methodName(m);
        EXPECT_LE(r.samplesUsed, 30) << m3e::methodName(m);
    }
}
