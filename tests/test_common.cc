/** @file Unit tests for src/common: rng, stats, csv, matrix, pca. */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/matrix.h"
#include "common/pca.h"
#include "common/rng.h"
#include "common/stats.h"

using namespace magma::common;

// ---------------------------------------------------------------- Rng ----

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-3.0, 7.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 7.0);
    }
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(3);
    std::set<int> seen;
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(5);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        int v = rng.uniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, GaussHasRoughlyUnitMoments)
{
    Rng rng(5);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.push(rng.gauss());
    EXPECT_NEAR(s.mean(), 0.0, 0.05);
    EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(6);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, BernoulliDegenerateRates)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(8);
    std::vector<int> p = rng.permutation(50);
    ASSERT_EQ(p.size(), 50u);
    std::vector<int> sorted = p;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(9);
    std::vector<int> s = rng.sampleWithoutReplacement(20, 10);
    ASSERT_EQ(s.size(), 10u);
    std::set<int> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (int v : s) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 20);
    }
}

TEST(Rng, WeightedChoiceFollowsWeights)
{
    Rng rng(10);
    std::vector<double> w = {0.0, 1.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.weightedChoice(w)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(counts[2] / static_cast<double>(counts[1]), 3.0, 0.4);
}

TEST(Rng, WeightedChoiceAllZeroFallsBackUniform)
{
    Rng rng(11);
    std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
    std::set<int> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(rng.weightedChoice(w));
    EXPECT_EQ(seen.size(), 4u);
}

// -------------------------------------------------------------- stats ----

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Stats, GeomeanIsBelowMeanForSpreadData)
{
    std::vector<double> xs = {1.0, 100.0};
    EXPECT_LT(geomean(xs), mean(xs));
}

TEST(Stats, StddevBasics)
{
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, -1.0, 2.0}), -1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, -1.0, 2.0}), 3.0);
    EXPECT_TRUE(std::isinf(minOf({})));
    EXPECT_TRUE(std::isinf(maxOf({})));
}

TEST(Stats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, RunningStatMatchesBatch)
{
    std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 10.0, -7.5};
    RunningStat s;
    for (double x : xs)
        s.push(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), -7.5);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Stats, RunningStatEmpty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

// ---------------------------------------------------------------- csv ----

TEST(Csv, WritesHeaderAndRows)
{
    std::string path = "test_csv_out.csv";
    {
        CsvWriter w(path, {"a", "b"});
        ASSERT_TRUE(w.ok());
        w.row({"1", "x"});
        w.rowNumeric({2.5, 3.0});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,x");
    std::getline(in, line);
    EXPECT_EQ(line, "2.5,3");
    std::remove(path.c_str());
}

TEST(Csv, NumFormatsCompactly)
{
    EXPECT_EQ(CsvWriter::num(2.0), "2");
    EXPECT_EQ(CsvWriter::num(0.5), "0.5");
}

// ------------------------------------------------------------- matrix ----

TEST(Matrix, IdentityMultiplyIsNoop)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 3.0;
    a.at(1, 1) = 4.0;
    Matrix r = a.multiply(Matrix::identity(2));
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 2; ++j)
            EXPECT_DOUBLE_EQ(r.at(i, j), a.at(i, j));
}

TEST(Matrix, MultiplyKnownProduct)
{
    Matrix a(2, 3), b(3, 2);
    int v = 1;
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 3; ++j)
            a.at(i, j) = v++;
    v = 1;
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 2; ++j)
            b.at(i, j) = v++;
    Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 22.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 28.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 49.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 64.0);
}

TEST(Matrix, MatVec)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = -1.0;
    a.at(1, 0) = 2.0;
    a.at(1, 1) = 0.5;
    std::vector<double> y = a.multiply(std::vector<double>{2.0, 4.0});
    EXPECT_DOUBLE_EQ(y[0], -2.0);
    EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, TransposeRoundTrip)
{
    Rng rng(12);
    Matrix a(3, 5);
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 5; ++j)
            a.at(i, j) = rng.gauss();
    Matrix att = a.transposed().transposed();
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 5; ++j)
            EXPECT_DOUBLE_EQ(att.at(i, j), a.at(i, j));
}

TEST(Matrix, ScaleAndAddScaled)
{
    Matrix a(1, 2, 2.0), b(1, 2, 3.0);
    a.scale(2.0);
    a.addScaled(b, -1.0);
    EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
}

TEST(Jacobi, DiagonalMatrixEigen)
{
    Matrix a(3, 3, 0.0);
    a.at(0, 0) = 3.0;
    a.at(1, 1) = 1.0;
    a.at(2, 2) = 2.0;
    EigenSym e = jacobiEigenSym(a);
    EXPECT_NEAR(e.eigenvalues[0], 3.0, 1e-10);
    EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-10);
    EXPECT_NEAR(e.eigenvalues[2], 1.0, 1e-10);
}

TEST(Jacobi, KnownSymmetricMatrix)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    Matrix a(2, 2);
    a.at(0, 0) = 2.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0;
    a.at(1, 1) = 2.0;
    EigenSym e = jacobiEigenSym(a);
    EXPECT_NEAR(e.eigenvalues[0], 3.0, 1e-10);
    EXPECT_NEAR(e.eigenvalues[1], 1.0, 1e-10);
    // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
    double v0 = e.eigenvectors.at(0, 0);
    double v1 = e.eigenvectors.at(1, 0);
    EXPECT_NEAR(std::abs(v0), 1.0 / std::sqrt(2.0), 1e-8);
    EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(Jacobi, ReconstructsRandomSymmetricMatrix)
{
    Rng rng(13);
    const size_t n = 8;
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i; j < n; ++j) {
            a.at(i, j) = rng.gauss();
            a.at(j, i) = a.at(i, j);
        }
    EigenSym e = jacobiEigenSym(a);
    // A == V diag(l) V^T
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (size_t k = 0; k < n; ++k)
                acc += e.eigenvectors.at(i, k) * e.eigenvalues[k] *
                       e.eigenvectors.at(j, k);
            EXPECT_NEAR(acc, a.at(i, j), 1e-8);
        }
    }
}

TEST(Jacobi, EigenvectorsOrthonormal)
{
    Rng rng(14);
    const size_t n = 6;
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i; j < n; ++j) {
            a.at(i, j) = rng.uniform();
            a.at(j, i) = a.at(i, j);
        }
    EigenSym e = jacobiEigenSym(a);
    for (size_t c1 = 0; c1 < n; ++c1)
        for (size_t c2 = 0; c2 < n; ++c2) {
            double dot = 0.0;
            for (size_t i = 0; i < n; ++i)
                dot += e.eigenvectors.at(i, c1) * e.eigenvectors.at(i, c2);
            EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-8);
        }
}

// ---------------------------------------------------------------- pca ----

TEST(Pca, RecoversDominantDirection)
{
    // Points spread along (1,1)/sqrt(2) with small noise orthogonally.
    Rng rng(15);
    std::vector<std::vector<double>> xs;
    for (int i = 0; i < 500; ++i) {
        double t = rng.gauss() * 10.0;
        double n = rng.gauss() * 0.1;
        xs.push_back({t + n, t - n});
    }
    Pca pca;
    pca.fit(xs, 2);
    EXPECT_GT(pca.explainedVarianceRatio()[0], 0.99);
    // First component aligned with (1,1)/sqrt(2): transformed coordinate of
    // (1,1) has magnitude ~sqrt(2), second ~0.
    std::vector<double> p = pca.transform({1.0, 1.0});
    std::vector<double> q = pca.transform({0.0, 0.0});
    EXPECT_NEAR(std::abs(p[0] - q[0]), std::sqrt(2.0), 1e-2);
    EXPECT_NEAR(std::abs(p[1] - q[1]), 0.0, 5e-2);
}

TEST(Pca, TransformBatchMatchesSingle)
{
    Rng rng(16);
    std::vector<std::vector<double>> xs;
    for (int i = 0; i < 50; ++i)
        xs.push_back({rng.gauss(), rng.gauss(), rng.gauss()});
    Pca pca;
    pca.fit(xs, 2);
    auto batch = pca.transform(xs);
    for (size_t i = 0; i < xs.size(); ++i) {
        auto single = pca.transform(xs[i]);
        EXPECT_DOUBLE_EQ(batch[i][0], single[0]);
        EXPECT_DOUBLE_EQ(batch[i][1], single[1]);
    }
}

TEST(Pca, ExplainedVarianceSumsToAtMostOne)
{
    Rng rng(17);
    std::vector<std::vector<double>> xs;
    for (int i = 0; i < 100; ++i)
        xs.push_back({rng.gauss(), 2.0 * rng.gauss(), 0.5 * rng.gauss(),
                      rng.gauss()});
    Pca pca;
    pca.fit(xs, 3);
    double sum = 0.0;
    for (double r : pca.explainedVarianceRatio()) {
        EXPECT_GE(r, 0.0);
        sum += r;
    }
    EXPECT_LE(sum, 1.0 + 1e-9);
}
