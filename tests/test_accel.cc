/** @file Unit tests for the Table III platform factory. */

#include <set>

#include <gtest/gtest.h>

#include "accel/platform.h"

using namespace magma;
using accel::Platform;
using accel::Setting;
using cost::DataflowStyle;

namespace {

int
countStyle(const Platform& p, DataflowStyle s, int rows = -1)
{
    int n = 0;
    for (const auto& sub : p.subAccels)
        if (sub.dataflow == s && (rows < 0 || sub.rows == rows))
            ++n;
    return n;
}

}  // namespace

TEST(Platform, S1SmallHomogeneous)
{
    Platform p = accel::makeSetting(Setting::S1, 16.0);
    EXPECT_EQ(p.numSubAccels(), 4);
    EXPECT_EQ(countStyle(p, DataflowStyle::HB, 32), 4);
    for (const auto& s : p.subAccels) {
        EXPECT_EQ(s.cols, 64);
        EXPECT_DOUBLE_EQ(s.sgBytes, 146.0 * 1024);
    }
    EXPECT_DOUBLE_EQ(p.systemBwGbps, 16.0);
}

TEST(Platform, S2SmallHeterogeneous)
{
    Platform p = accel::makeSetting(Setting::S2, 16.0);
    EXPECT_EQ(p.numSubAccels(), 4);
    EXPECT_EQ(countStyle(p, DataflowStyle::HB, 32), 3);
    EXPECT_EQ(countStyle(p, DataflowStyle::LB, 32), 1);
    // The LB core carries the 110KB buffer of Table III.
    for (const auto& s : p.subAccels) {
        if (s.dataflow == DataflowStyle::LB) {
            EXPECT_DOUBLE_EQ(s.sgBytes, 110.0 * 1024);
        }
    }
}

TEST(Platform, S3LargeHomogeneous)
{
    Platform p = accel::makeSetting(Setting::S3, 256.0);
    EXPECT_EQ(p.numSubAccels(), 8);
    EXPECT_EQ(countStyle(p, DataflowStyle::HB, 128), 8);
    for (const auto& s : p.subAccels)
        EXPECT_DOUBLE_EQ(s.sgBytes, 580.0 * 1024);
}

TEST(Platform, S4LargeHeterogeneous)
{
    Platform p = accel::makeSetting(Setting::S4, 256.0);
    EXPECT_EQ(p.numSubAccels(), 8);
    EXPECT_EQ(countStyle(p, DataflowStyle::HB, 128), 7);
    EXPECT_EQ(countStyle(p, DataflowStyle::LB, 128), 1);
}

TEST(Platform, S5BigLittle)
{
    Platform p = accel::makeSetting(Setting::S5, 64.0);
    EXPECT_EQ(p.numSubAccels(), 8);
    EXPECT_EQ(countStyle(p, DataflowStyle::HB, 128), 3);
    EXPECT_EQ(countStyle(p, DataflowStyle::LB, 128), 1);
    EXPECT_EQ(countStyle(p, DataflowStyle::HB, 64), 3);
    EXPECT_EQ(countStyle(p, DataflowStyle::LB, 64), 1);
}

TEST(Platform, S6ScaleUp)
{
    Platform p = accel::makeSetting(Setting::S6, 256.0);
    EXPECT_EQ(p.numSubAccels(), 16);
    EXPECT_EQ(countStyle(p, DataflowStyle::HB, 128), 7);
    EXPECT_EQ(countStyle(p, DataflowStyle::LB, 128), 1);
    EXPECT_EQ(countStyle(p, DataflowStyle::HB, 64), 7);
    EXPECT_EQ(countStyle(p, DataflowStyle::LB, 64), 1);
}

TEST(Platform, NamesUniquePerInstance)
{
    for (Setting s : {Setting::S1, Setting::S2, Setting::S3, Setting::S4,
                      Setting::S5, Setting::S6}) {
        Platform p = accel::makeSetting(s, 16.0);
        std::set<std::string> names;
        for (const auto& sub : p.subAccels)
            EXPECT_TRUE(names.insert(sub.name).second)
                << accel::settingName(s) << " " << sub.name;
    }
}

TEST(Platform, PeakGflopsSumsSubAccels)
{
    Platform p = accel::makeSetting(Setting::S1, 16.0);
    // 4 cores x 32x64 PEs x 2 FLOPs x 0.2 GHz.
    EXPECT_DOUBLE_EQ(p.peakGflops(), 4 * 32 * 64 * 2 * 0.2);
}

TEST(Platform, LargerSettingsHaveMorePeak)
{
    double s1 = accel::makeSetting(Setting::S1, 16).peakGflops();
    double s3 = accel::makeSetting(Setting::S3, 16).peakGflops();
    double s5 = accel::makeSetting(Setting::S5, 16).peakGflops();
    double s6 = accel::makeSetting(Setting::S6, 16).peakGflops();
    EXPECT_GT(s3, s1);
    EXPECT_GT(s3, s5);  // BigLittle is a smaller setting than Bigs
    EXPECT_GT(s6, s3);
}

TEST(Platform, SettingNames)
{
    EXPECT_EQ(accel::settingName(Setting::S1), "S1");
    EXPECT_EQ(accel::settingName(Setting::S6), "S6");
}

TEST(Platform, FlexibleVariantFlagsAndBuffers)
{
    Platform p = accel::makeFlexibleSetting(Setting::S1, 16.0);
    EXPECT_EQ(p.numSubAccels(), 4);
    for (const auto& s : p.subAccels) {
        EXPECT_TRUE(s.flexibleShape);
        EXPECT_DOUBLE_EQ(s.sgBytes, 2.0 * 1024 * 1024);
        EXPECT_DOUBLE_EQ(s.slBytes, 1024.0);
    }
    // PE counts preserved.
    EXPECT_DOUBLE_EQ(p.peakGflops(),
                     accel::makeSetting(Setting::S1, 16.0).peakGflops());
}

TEST(Platform, FrequencyAndWidthDefaults)
{
    Platform p = accel::makeSetting(Setting::S4, 256.0);
    for (const auto& s : p.subAccels) {
        EXPECT_DOUBLE_EQ(s.freqGhz, 0.2);   // 200 MHz (Section VI-A3)
        EXPECT_DOUBLE_EQ(s.bytesPerElem, 1.0);
        EXPECT_EQ(s.cols, 64);              // fixed array width
    }
}
