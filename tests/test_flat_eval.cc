/** @file Parity tests for the allocation-free fast-path evaluator:
 * sched::FlatEvaluator must be bitwise identical to the reference
 * MappingEvaluator on every mapping, platform, BW policy and objective —
 * the contract that lets EvalMode::Flat be the default kernel everywhere
 * without perturbing any search trajectory. */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "exec/eval_engine.h"
#include "m3e/problem.h"
#include "opt/magma_ga.h"
#include "sched/flat_eval.h"

using namespace magma;
using sched::EvalMode;
using sched::EvalScratch;
using sched::FlatEvaluator;
using sched::Mapping;
using sched::Objective;
using sched::ScheduleResult;

namespace {

constexpr Objective kObjectives[] = {
    Objective::Throughput, Objective::Latency, Objective::Energy,
    Objective::EnergyDelay, Objective::PerfPerWatt,
};

void
expectSameSchedule(const ScheduleResult& a, const ScheduleResult& b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    ASSERT_EQ(a.finishTime.size(), b.finishTime.size());
    for (size_t i = 0; i < a.finishTime.size(); ++i)
        EXPECT_EQ(a.finishTime[i], b.finishTime[i]) << "job " << i;
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t e = 0; e < a.events.size(); ++e) {
        EXPECT_EQ(a.events[e].start, b.events[e].start);
        EXPECT_EQ(a.events[e].end, b.events[e].end);
        EXPECT_EQ(a.events[e].job, b.events[e].job);
        EXPECT_EQ(a.events[e].accel, b.events[e].accel);
        EXPECT_EQ(a.events[e].allocBw, b.events[e].allocBw);
    }
}

}  // namespace

TEST(EvalMode, NamesRoundTripAndReject)
{
    EXPECT_EQ(sched::evalModeName(EvalMode::Flat), "flat");
    EXPECT_EQ(sched::evalModeName(EvalMode::Reference), "reference");
    for (EvalMode m : {EvalMode::Flat, EvalMode::Reference})
        EXPECT_EQ(sched::evalModeFromName(sched::evalModeName(m)), m);
    EXPECT_THROW(sched::evalModeFromName("turbo"), std::invalid_argument);
}

/** The headline property: randomized mappings x platforms x BW policies x
 * all five objectives give bitwise-identical fitness and schedules. */
TEST(FlatEval, RandomizedBitwiseParityAcrossPlatformsPoliciesObjectives)
{
    common::Rng meta(0xf1a7);
    const accel::Setting settings[] = {accel::Setting::S1, accel::Setting::S2,
                                       accel::Setting::S4, accel::Setting::S6};
    const dnn::TaskType tasks[] = {dnn::TaskType::Vision,
                                   dnn::TaskType::Language,
                                   dnn::TaskType::Recommendation,
                                   dnn::TaskType::Mix};
    for (int trial = 0; trial < 12; ++trial) {
        dnn::TaskType task = tasks[meta.uniformInt(4)];
        accel::Setting setting = settings[meta.uniformInt(4)];
        double bw = 4.0 + 12.0 * meta.uniform();
        int group = 4 + meta.uniformInt(16);
        sched::BwPolicy policy = (trial % 2 == 0)
                                     ? sched::BwPolicy::Proportional
                                     : sched::BwPolicy::EvenSplit;
        Objective obj = kObjectives[trial % 5];
        auto p = m3e::makeProblem(task, setting, bw, group,
                                  /*seed=*/trial + 1, obj, policy);
        const sched::MappingEvaluator& ev = p->evaluator();
        FlatEvaluator flat(ev);
        EXPECT_EQ(flat.numJobs(), ev.groupSize());
        EXPECT_EQ(flat.numAccels(), ev.numAccels());
        EXPECT_EQ(flat.objective(), obj);

        EvalScratch scratch;
        common::Rng rng(100 + trial);
        for (int i = 0; i < 40; ++i) {
            Mapping m = Mapping::random(group, ev.numAccels(), rng);
            EXPECT_EQ(ev.fitness(m), flat.fitness(m, scratch))
                << "trial " << trial << " candidate " << i;
            expectSameSchedule(ev.evaluate(m, true),
                               flat.evaluate(m, scratch, true));
            EXPECT_EQ(ev.totalJoules(m), flat.totalJoules(m));
        }
    }
}

/** Equal priorities must keep the decoder's stable job-id order. */
TEST(FlatEval, TiedPrioritiesMatchStableDecodeOrder)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0,
                              12, 3);
    const sched::MappingEvaluator& ev = p->evaluator();
    FlatEvaluator flat(ev);
    EvalScratch scratch;
    Mapping m;
    m.accelSel.assign(12, 0);
    m.priority.assign(12, 0.5);  // all tied -> job-id order
    for (int j = 0; j < 12; ++j)
        m.accelSel[j] = j % ev.numAccels();
    expectSameSchedule(ev.evaluate(m, true), flat.evaluate(m, scratch, true));
    EXPECT_EQ(ev.fitness(m), flat.fitness(m, scratch));
}

/** One scratch must be reusable across problems of different shapes. */
TEST(FlatEval, ScratchResizesAcrossProblems)
{
    EvalScratch scratch;
    common::Rng rng(7);
    for (int group : {20, 6, 33}) {
        auto p = m3e::makeProblem(dnn::TaskType::Vision, accel::Setting::S3,
                                  10.0, group, group);
        const sched::MappingEvaluator& ev = p->evaluator();
        FlatEvaluator flat(ev);
        for (int i = 0; i < 10; ++i) {
            Mapping m = Mapping::random(group, ev.numAccels(), rng);
            EXPECT_EQ(ev.fitness(m), flat.fitness(m, scratch));
        }
    }
}

/** Flat evaluations tick the shared sample meter exactly like reference
 * ones — budget accounting must not depend on the kernel. */
TEST(FlatEval, SharesSampleMeterWithReference)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0,
                              10, 5);
    sched::MappingEvaluator& ev = p->evaluator();
    FlatEvaluator flat(ev);
    EvalScratch scratch;
    common::Rng rng(9);
    Mapping m = Mapping::random(10, ev.numAccels(), rng);
    ev.resetSampleCount();
    flat.fitness(m, scratch);
    flat.fitness(m, scratch);
    ev.fitness(m);
    EXPECT_EQ(ev.sampleCount(), 3);
}

/** EvalEngine batch parity: a 4-lane flat batch must equal the serial
 * reference loop element-by-element, in submission order. */
TEST(FlatEval, EvalEngineFourThreadBatchMatchesSerialReference)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S4, 16.0,
                              24, 11);
    const sched::MappingEvaluator& ev = p->evaluator();
    common::Rng rng(21);
    std::vector<Mapping> batch;
    for (int i = 0; i < 96; ++i)
        batch.push_back(Mapping::random(24, ev.numAccels(), rng));

    exec::EvalEngine flat4(ev, 4, EvalMode::Flat);
    EXPECT_EQ(flat4.mode(), EvalMode::Flat);
    EXPECT_EQ(flat4.numThreads(), 4);
    std::vector<double> got = flat4.evaluateBatch(batch);
    ASSERT_EQ(got.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(got[i], ev.fitness(batch[i])) << "candidate " << i;

    // fitnessOne (the recorder's serial path) agrees too.
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(flat4.fitnessOne(batch[i]), ev.fitness(batch[i]));
}

/** Reference-mode engine still works and agrees (the fallback lever). */
TEST(FlatEval, ReferenceModeEngineUnchanged)
{
    auto p = m3e::makeProblem(dnn::TaskType::Language, accel::Setting::S2,
                              8.0, 12, 13);
    const sched::MappingEvaluator& ev = p->evaluator();
    common::Rng rng(31);
    std::vector<Mapping> batch;
    for (int i = 0; i < 32; ++i)
        batch.push_back(Mapping::random(12, ev.numAccels(), rng));
    exec::EvalEngine ref2(ev, 2, EvalMode::Reference);
    EXPECT_EQ(ref2.mode(), EvalMode::Reference);
    std::vector<double> got = ref2.evaluateBatch(batch);
    for (size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(got[i], ev.fitness(batch[i]));
}

/** End-to-end: a whole MAGMA search is bitwise identical under the flat
 * and reference kernels — best mapping, fitness and convergence curve. */
TEST(FlatEval, MagmaSearchIdenticalUnderBothKernels)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0,
                              14, 17);
    opt::SearchOptions base;
    base.sampleBudget = 400;
    base.recordConvergence = true;

    opt::SearchOptions flat_opts = base;
    flat_opts.evalMode = EvalMode::Flat;
    opt::MagmaGa ga_flat(5);
    opt::SearchResult r_flat = ga_flat.search(p->evaluator(), flat_opts);

    opt::SearchOptions ref_opts = base;
    ref_opts.evalMode = EvalMode::Reference;
    opt::MagmaGa ga_ref(5);
    opt::SearchResult r_ref = ga_ref.search(p->evaluator(), ref_opts);

    EXPECT_EQ(r_flat.bestFitness, r_ref.bestFitness);
    EXPECT_EQ(r_flat.best, r_ref.best);
    EXPECT_EQ(r_flat.samplesUsed, r_ref.samplesUsed);
    EXPECT_EQ(r_flat.convergence, r_ref.convergence);
}
