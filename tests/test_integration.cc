/** @file End-to-end integration tests reproducing the paper's headline
 * orderings on reduced budgets. */

#include <chrono>

#include <gtest/gtest.h>

#include "baselines/ai_mt_like.h"
#include "baselines/herald_like.h"
#include "m3e/factory.h"
#include "m3e/problem.h"
#include "opt/magma_ga.h"
#include "opt/std_ga.h"

using namespace magma;

namespace {

double
runMethod(m3e::Method method, m3e::Problem& p, int64_t budget,
          uint64_t seed = 3)
{
    auto o = m3e::makeOptimizer(method, seed);
    opt::SearchOptions opts;
    opts.sampleBudget = budget;
    return o->search(p.evaluator(), opts).bestFitness;
}

}  // namespace

// ------------------------------------------------- platform/task sweep ---

struct Combo {
    dnn::TaskType task;
    accel::Setting setting;
    double bw;
};

class PipelineSweep : public ::testing::TestWithParam<Combo> {};

TEST_P(PipelineSweep, FullPipelineProducesFiniteThroughput)
{
    const Combo& c = GetParam();
    auto p = m3e::makeProblem(c.task, c.setting, c.bw, 20, 17);
    common::Rng rng(17);
    sched::Mapping m =
        sched::Mapping::random(20, p->evaluator().numAccels(), rng);
    double f = p->evaluator().fitness(m);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, p->platform().peakGflops() * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    AllSettings, PipelineSweep,
    ::testing::Values(
        Combo{dnn::TaskType::Vision, accel::Setting::S1, 16},
        Combo{dnn::TaskType::Language, accel::Setting::S1, 16},
        Combo{dnn::TaskType::Recommendation, accel::Setting::S1, 16},
        Combo{dnn::TaskType::Mix, accel::Setting::S1, 16},
        Combo{dnn::TaskType::Mix, accel::Setting::S2, 16},
        Combo{dnn::TaskType::Mix, accel::Setting::S2, 1},
        Combo{dnn::TaskType::Mix, accel::Setting::S3, 256},
        Combo{dnn::TaskType::Mix, accel::Setting::S4, 256},
        Combo{dnn::TaskType::Mix, accel::Setting::S4, 1},
        Combo{dnn::TaskType::Mix, accel::Setting::S5, 64},
        Combo{dnn::TaskType::Mix, accel::Setting::S6, 256},
        Combo{dnn::TaskType::Vision, accel::Setting::S4, 64}));

// ------------------------------------------------------ paper orderings --

TEST(PaperClaims, MagmaBeatsHeraldInTheContentionRegime)
{
    // The BW-orchestration advantage shows where the system BW is scarce
    // but not yet saturating (Fig. 12's message): mid-BW on S2.
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 4.0,
                              40, 7);
    double herald = runMethod(m3e::Method::HeraldLike, *p, 1);
    double magma = runMethod(m3e::Method::Magma, *p, 2000);
    EXPECT_GT(magma, herald * 1.05);
}

TEST(PaperClaims, MagmaNearHeraldAtAbundantBw)
{
    // At abundant BW the problem degenerates to load balancing, where the
    // EFT heuristic is near-optimal; MAGMA must stay within a few percent.
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              30, 23);
    double herald = runMethod(m3e::Method::HeraldLike, *p, 1);
    double magma = runMethod(m3e::Method::Magma, *p, 2000);
    EXPECT_GE(magma, herald * 0.93);
}

TEST(PaperClaims, MagmaCrushesAiMtOnHeterogeneousMix)
{
    // Section VI-E reports 39-52x; require a big margin (>5x) here.
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              30, 29);
    double aimt = runMethod(m3e::Method::AiMtLike, *p, 1);
    double magma = runMethod(m3e::Method::Magma, *p, 2000);
    EXPECT_GT(magma, 5.0 * aimt);
}

TEST(PaperClaims, MagmaBeatsStdGaGivenSameBudget)
{
    // MAGMA's operators buy sample efficiency over the standard GA
    // (Fig. 2 / Section V). Compare best-of-3 seeds on the same budget.
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 2.0,
                              40, 31);
    double best_magma = 0.0, best_std = 0.0;
    for (uint64_t seed : {1u, 2u, 3u}) {
        best_magma = std::max(best_magma,
                              runMethod(m3e::Method::Magma, *p, 1500, seed));
        best_std = std::max(best_std,
                            runMethod(m3e::Method::StdGa, *p, 1500, seed));
    }
    EXPECT_GE(best_magma, best_std * 0.98);
}

TEST(PaperClaims, HeterogeneityHelpsWhenBwStarved)
{
    // Fig. 13: at BW=1 the heterogeneous S4 beats the homogeneous S3 on
    // Mix; at abundant BW S3 catches up (its cores are all compute-fast).
    dnn::WorkloadGenerator gen(37);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Mix, 40);

    m3e::Problem s3_low(group, accel::makeSetting(accel::Setting::S3, 1.0));
    m3e::Problem s4_low(group, accel::makeSetting(accel::Setting::S4, 1.0));
    double f3 = runMethod(m3e::Method::Magma, s3_low, 2000);
    double f4 = runMethod(m3e::Method::Magma, s4_low, 2000);
    EXPECT_GT(f4, f3 * 0.95);  // heterogeneous at least comparable at BW=1
}

TEST(PaperClaims, LowerBwReducesThroughput)
{
    dnn::WorkloadGenerator gen(41);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Mix, 30);
    m3e::Problem low(group, accel::makeSetting(accel::Setting::S2, 1.0));
    m3e::Problem high(group, accel::makeSetting(accel::Setting::S2, 16.0));
    double f_low = runMethod(m3e::Method::Magma, low, 1500);
    double f_high = runMethod(m3e::Method::Magma, high, 1500);
    EXPECT_LT(f_low, f_high);
}

TEST(PaperClaims, FlexibleArraysOutperformFixed)
{
    // Fig. 14: flexible >= fixed under the same PE budget.
    dnn::WorkloadGenerator gen(43);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Mix, 25);
    m3e::Problem fixed(group, accel::makeSetting(accel::Setting::S1, 16.0));
    m3e::Problem flex(group,
                      accel::makeFlexibleSetting(accel::Setting::S1, 16.0));
    double f_fixed = runMethod(m3e::Method::Magma, fixed, 1200);
    double f_flex = runMethod(m3e::Method::Magma, flex, 1200);
    EXPECT_GE(f_flex, f_fixed * 0.98);
}

TEST(PaperClaims, ProportionalBwAllocationBeatsEvenSplit)
{
    // Section IV-D1's motivation for the BW allocator.
    dnn::WorkloadGenerator gen(47);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Mix, 30);
    m3e::Problem prop(group, accel::makeSetting(accel::Setting::S2, 2.0),
                      sched::BwPolicy::Proportional);
    m3e::Problem even(group, accel::makeSetting(accel::Setting::S2, 2.0),
                      sched::BwPolicy::EvenSplit);
    double f_prop = runMethod(m3e::Method::Magma, prop, 1500);
    double f_even = runMethod(m3e::Method::Magma, even, 1500);
    EXPECT_GE(f_prop, f_even * 0.98);
}

TEST(PaperClaims, SearchTimeIsSubSecondPerEpoch)
{
    // Section VI-B: ~0.25s/epoch on a desktop. One epoch = population-size
    // samples; confirm we're within an order of magnitude (CI machines
    // vary) — this is a smoke guard against accidental slowdowns.
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              100, 53);
    opt::MagmaGa magma_ga(1);
    opt::SearchOptions opts;
    opts.sampleBudget = 1000;  // 10 epochs at population 100
    auto t0 = std::chrono::steady_clock::now();
    magma_ga.search(p->evaluator(), opts);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0).count();
    EXPECT_LT(secs / 10.0, 2.5);  // per-epoch bound
}

TEST(PaperClaims, GroupLargerThanCoresUsesAllCores)
{
    // Section III: group size >= #sub-accelerators avoids idle cores; a
    // good mapping on a busy group should occupy every core.
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              40, 59);
    double f = runMethod(m3e::Method::Magma, *p, 1500);
    EXPECT_GT(f, 0.0);
    opt::MagmaGa magma_ga(3);
    opt::SearchOptions opts;
    opts.sampleBudget = 1500;
    opt::SearchResult r = magma_ga.search(p->evaluator(), opts);
    sched::DecodedMapping d =
        sched::decode(r.best, p->evaluator().numAccels());
    int used = 0;
    for (const auto& q : d.queues)
        if (!q.empty())
            ++used;
    EXPECT_GE(used, 3);
}
