/** @file Synthetic known-optimum problems: verify the optimizers actually
 * find solutions whose quality we can certify independently. */

#include <algorithm>

#include <gtest/gtest.h>

#include "m3e/factory.h"
#include "m3e/problem.h"

using namespace magma;

namespace {

/**
 * A platform with one big HB core and three tiny ones (8 rows = 16x less
 * compute). Identical FC jobs. Good mappings concentrate work on the big
 * core while letting the tiny cores absorb a sliver each; we can compute
 * the optimal makespan for identical jobs analytically.
 */
std::unique_ptr<m3e::Problem>
lopsidedProblem(int jobs)
{
    dnn::JobGroup group;
    group.task = dnn::TaskType::Recommendation;
    for (int i = 0; i < jobs; ++i) {
        dnn::Job j;
        j.id = i;
        j.layer = dnn::fc(512, 512);
        j.batch = 4;
        j.task = dnn::TaskType::Recommendation;
        j.model = "synthetic";
        group.jobs.push_back(j);
    }
    accel::Platform p;
    p.name = "lopsided";
    p.systemBwGbps = 1e9;  // BW-unconstrained: pure load balancing
    p.subAccels.push_back(
        accel::makeSubAccel(cost::DataflowStyle::HB, 128, 580));
    for (int i = 0; i < 3; ++i)
        p.subAccels.push_back(
            accel::makeSubAccel(cost::DataflowStyle::HB, 8, 64));
    return std::make_unique<m3e::Problem>(std::move(group), std::move(p));
}

/** Optimal makespan for n identical jobs on the lopsided platform. */
double
lopsidedOptimalMakespan(const m3e::Problem& p, int jobs)
{
    double fast = p.evaluator().table().lookup(0, 0).noStallSeconds;
    double slow = p.evaluator().table().lookup(0, 1).noStallSeconds;
    double best = 1e300;
    // k jobs per tiny core (identical tiny cores), rest on the big core.
    for (int k = 0; k * 3 <= jobs; ++k) {
        double makespan =
            std::max((jobs - 3 * k) * fast, static_cast<double>(k) * slow);
        best = std::min(best, makespan);
    }
    return best;
}

}  // namespace

class SyntheticOptimum : public ::testing::TestWithParam<m3e::Method> {};

TEST_P(SyntheticOptimum, ReachesNearOptimalLoadBalance)
{
    const int jobs = 24;
    auto p = lopsidedProblem(jobs);
    double optimal = p->evaluator().throughputGflops(
        lopsidedOptimalMakespan(*p, jobs));

    auto optimizer = m3e::makeOptimizer(GetParam(), 7);
    opt::SearchOptions opts;
    opts.sampleBudget = 1500;
    double found = optimizer->search(p->evaluator(), opts).bestFitness;

    // Certified bound: nobody can beat the optimum...
    EXPECT_LE(found, optimal * (1.0 + 1e-9))
        << m3e::methodName(GetParam());
    // ...and a competent searcher gets within 15% of it.
    EXPECT_GE(found, 0.85 * optimal) << m3e::methodName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Methods, SyntheticOptimum,
    ::testing::Values(m3e::Method::Magma, m3e::Method::StdGa,
                      m3e::Method::De, m3e::Method::HeraldLike,
                      m3e::Method::Tbpsa),
    [](const auto& info) {
        std::string n = m3e::methodName(info.param);
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(SyntheticExhaustive, MagmaMatchesExhaustiveAssignmentSearch)
{
    // Small enough to enumerate every assignment (priorities fixed to job
    // order): MAGMA must reach at least the exhaustive-assignment optimum
    // (it additionally searches orderings, so >= is the right check).
    const int jobs = 8;
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 4.0,
                              jobs, 13);
    const int accels = p->evaluator().numAccels();

    double exhaustive = 0.0;
    std::vector<int> assign(jobs, 0);
    long total = 1;
    for (int i = 0; i < jobs; ++i)
        total *= accels;
    for (long code = 0; code < total; ++code) {
        long c = code;
        sched::Mapping m;
        m.accelSel.resize(jobs);
        m.priority.resize(jobs);
        for (int i = 0; i < jobs; ++i) {
            m.accelSel[i] = static_cast<int>(c % accels);
            c /= accels;
            m.priority[i] = static_cast<double>(i) / (jobs + 1);
        }
        exhaustive = std::max(exhaustive, p->evaluator().fitness(m));
    }

    auto magma_opt = m3e::makeOptimizer(m3e::Method::Magma, 5);
    opt::SearchOptions opts;
    opts.sampleBudget = 4000;
    double found = magma_opt->search(p->evaluator(), opts).bestFitness;
    EXPECT_GE(found, 0.98 * exhaustive);
}

TEST(SyntheticBw, OptimizersExploitTheLowBwCore)
{
    // One HB core + one LB core, jobs that are mildly slower but far less
    // BW-hungry on LB, and a starved system BW: the optimizer must move
    // a meaningful share of work to the LB core.
    dnn::JobGroup group;
    group.task = dnn::TaskType::Vision;
    for (int i = 0; i < 16; ++i) {
        dnn::Job j;
        j.id = i;
        j.layer = dnn::conv(64, 16, 56, 56, 3, 3);  // early-ish conv
        j.batch = 4;
        j.task = dnn::TaskType::Vision;
        j.model = "synthetic";
        group.jobs.push_back(j);
    }
    accel::Platform plat;
    plat.name = "hb+lb";
    plat.systemBwGbps = 1.0;
    plat.subAccels.push_back(
        accel::makeSubAccel(cost::DataflowStyle::HB, 64, 291));
    plat.subAccels.push_back(
        accel::makeSubAccel(cost::DataflowStyle::LB, 64, 218));
    m3e::Problem p(std::move(group), std::move(plat));

    auto magma_opt = m3e::makeOptimizer(m3e::Method::Magma, 3);
    opt::SearchOptions opts;
    opts.sampleBudget = 2000;
    opt::SearchResult r = magma_opt->search(p.evaluator(), opts);
    int on_lb = 0;
    for (int a : r.best.accelSel)
        on_lb += (a == 1);
    EXPECT_GE(on_lb, 2);

    // And the found mapping must beat everything-on-HB.
    sched::Mapping all_hb = r.best;
    std::fill(all_hb.accelSel.begin(), all_hb.accelSel.end(), 0);
    EXPECT_GT(r.bestFitness, p.evaluator().fitness(all_hb));
}
