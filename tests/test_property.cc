/** @file Property-based tests: invariants of the mapping->throughput
 * pipeline that must hold for ANY mapping, checked over seeded sweeps. */

#include <algorithm>

#include <gtest/gtest.h>

#include "m3e/problem.h"
#include "sched/evaluator.h"
#include "sched/mapping.h"

using namespace magma;
using sched::Mapping;

namespace {

std::unique_ptr<m3e::Problem>
problemForSeed(uint64_t seed)
{
    return m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0, 24,
                            seed);
}

}  // namespace

class MappingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MappingProperty, FitnessInvariantUnderOrderPreservingPriorities)
{
    // Only the relative priority ORDER matters: squashing priorities
    // through any monotone map must not change the schedule.
    auto p = problemForSeed(GetParam());
    common::Rng rng(GetParam());
    Mapping m = Mapping::random(24, p->evaluator().numAccels(), rng);
    double f0 = p->evaluator().fitness(m);

    Mapping squashed = m;
    for (double& pr : squashed.priority)
        pr = 0.1 + 0.8 * pr * pr;  // monotone on [0,1)
    EXPECT_NEAR(p->evaluator().fitness(squashed), f0, f0 * 1e-12);
}

TEST_P(MappingProperty, FitnessInvariantUnderJobRelabeling)
{
    // Swapping the genes of two identical-layer jobs changes nothing.
    auto p = problemForSeed(GetParam());
    common::Rng rng(GetParam() + 100);
    Mapping m = Mapping::random(24, p->evaluator().numAccels(), rng);
    double f0 = p->evaluator().fitness(m);

    // Find two jobs with identical layer+batch; swap their genes.
    const auto& jobs = p->group().jobs;
    for (int i = 0; i < 24; ++i) {
        for (int j = i + 1; j < 24; ++j) {
            if (jobs[i].layer == jobs[j].layer &&
                jobs[i].batch == jobs[j].batch) {
                Mapping swapped = m;
                std::swap(swapped.accelSel[i], swapped.accelSel[j]);
                std::swap(swapped.priority[i], swapped.priority[j]);
                EXPECT_NEAR(p->evaluator().fitness(swapped), f0, f0 * 1e-9);
                return;
            }
        }
    }
    GTEST_SKIP() << "no duplicate-layer pair in this draw";
}

TEST_P(MappingProperty, MakespanBoundedBySerialAndParallelExtremes)
{
    auto p = problemForSeed(GetParam());
    common::Rng rng(GetParam() + 200);
    const auto& eval = p->evaluator();
    Mapping m = Mapping::random(24, eval.numAccels(), rng);
    sched::ScheduleResult r = eval.evaluate(m);

    // Lower bound: the busiest queue at no-stall speed.
    sched::DecodedMapping d = sched::decode(m, eval.numAccels());
    double busiest = 0.0, serial_all = 0.0;
    for (int a = 0; a < eval.numAccels(); ++a) {
        double sum = 0.0;
        for (int j : d.queues[a])
            sum += eval.table().lookup(j, a).noStallSeconds;
        busiest = std::max(busiest, sum);
        serial_all += sum;
    }
    EXPECT_GE(r.makespanSeconds, busiest * (1 - 1e-9));

    // Upper bound: everything serialized AND slowed by the worst possible
    // BW squeeze (total demand / system BW).
    double worst_squeeze = 1.0;
    for (int j = 0; j < 24; ++j) {
        for (int a = 0; a < eval.numAccels(); ++a) {
            double rq = eval.table().lookup(j, a).reqBwGbps;
            worst_squeeze = std::max(
                worst_squeeze,
                rq * eval.numAccels() / p->platform().systemBwGbps);
        }
    }
    EXPECT_LE(r.makespanSeconds, serial_all * worst_squeeze * (1 + 1e-9));
}

TEST_P(MappingProperty, FinishTimesSortedWithinEachQueue)
{
    auto p = problemForSeed(GetParam());
    common::Rng rng(GetParam() + 300);
    const auto& eval = p->evaluator();
    Mapping m = Mapping::random(24, eval.numAccels(), rng);
    sched::ScheduleResult r = eval.evaluate(m);
    sched::DecodedMapping d = sched::decode(m, eval.numAccels());
    for (const auto& q : d.queues) {
        for (size_t i = 1; i < q.size(); ++i)
            EXPECT_GT(r.finishTime[q[i]],
                      r.finishTime[q[i - 1]] * (1 - 1e-12));
    }
}

TEST_P(MappingProperty, MovingAJobToItsFastestCoreNeverBreaksBounds)
{
    // A targeted local improvement: relocating one job to the core where
    // it is fastest (keeping everything else) must keep the schedule valid
    // — and throughput must stay within the platform peak.
    auto p = problemForSeed(GetParam());
    common::Rng rng(GetParam() + 400);
    const auto& eval = p->evaluator();
    Mapping m = Mapping::random(24, eval.numAccels(), rng);
    int job = static_cast<int>(GetParam() % 24);
    int best_a = 0;
    for (int a = 1; a < eval.numAccels(); ++a) {
        if (eval.table().lookup(job, a).noStallSeconds <
            eval.table().lookup(job, best_a).noStallSeconds)
            best_a = a;
    }
    m.accelSel[job] = best_a;
    double f = eval.fitness(m);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, p->platform().peakGflops() * (1 + 1e-9));
}

TEST_P(MappingProperty, TimelineConservesPerJobWork)
{
    // Integrating rate (allocBw/reqBw) over each job's segments must
    // recover its no-stall latency.
    auto p = problemForSeed(GetParam());
    common::Rng rng(GetParam() + 500);
    const auto& eval = p->evaluator();
    Mapping m = Mapping::random(24, eval.numAccels(), rng);
    sched::ScheduleResult r = eval.evaluate(m, /*record_timeline=*/true);

    std::vector<double> done(24, 0.0);
    for (const auto& ev : r.events) {
        const auto& prof = eval.table().lookup(ev.job, ev.accel);
        double rate = prof.reqBwGbps <= 1e-18
                          ? 1.0
                          : std::min(1.0, ev.allocBw / prof.reqBwGbps);
        done[ev.job] += rate * (ev.end - ev.start);
    }
    for (int j = 0; j < 24; ++j) {
        double expect = eval.table().lookup(j, m.accelSel[j]).noStallSeconds;
        EXPECT_NEAR(done[j], expect, expect * 1e-6 + 1e-12) << "job " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingProperty,
                         ::testing::Range<uint64_t>(1, 13));
