/** @file Tests for the Section IV-C objective options of the evaluator. */

#include <gtest/gtest.h>

#include "m3e/problem.h"
#include "opt/magma_ga.h"

using namespace magma;
using sched::Mapping;
using sched::Objective;

namespace {

std::unique_ptr<m3e::Problem>
problem(uint64_t seed = 3, Objective objective = Objective::Throughput)
{
    return m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0, 20,
                            seed, objective);
}

}  // namespace

TEST(Objectives, Names)
{
    EXPECT_EQ(sched::objectiveName(Objective::Throughput), "throughput");
    EXPECT_EQ(sched::objectiveName(Objective::Latency), "latency");
    EXPECT_EQ(sched::objectiveName(Objective::Energy), "energy");
    EXPECT_EQ(sched::objectiveName(Objective::EnergyDelay),
              "energy-delay-product");
    EXPECT_EQ(sched::objectiveName(Objective::PerfPerWatt),
              "performance-per-watt");
}

TEST(Objectives, FromNameRoundTripsAndAcceptsCliSpellings)
{
    for (Objective o : {Objective::Throughput, Objective::Latency,
                        Objective::Energy, Objective::EnergyDelay,
                        Objective::PerfPerWatt})
        EXPECT_EQ(sched::objectiveFromName(sched::objectiveName(o)), o);
    // The short spellings the CLI has always accepted.
    EXPECT_EQ(sched::objectiveFromName("edp"), Objective::EnergyDelay);
    EXPECT_EQ(sched::objectiveFromName("perf-per-watt"),
              Objective::PerfPerWatt);
    EXPECT_THROW(sched::objectiveFromName("speed"), std::invalid_argument);
}

TEST(Objectives, DefaultIsThroughput)
{
    auto p = problem();
    EXPECT_EQ(p->evaluator().objective(), Objective::Throughput);
}

TEST(Objectives, ConstructorSelectsObjective)
{
    auto p = problem(3, Objective::Energy);
    EXPECT_EQ(p->evaluator().objective(), Objective::Energy);
}

TEST(Objectives, ConstructedObjectiveMatchesFreshEvaluator)
{
    // The setObjective() shim is gone (deprecated for one release after
    // the api/ redesign): an evaluator's objective is fixed at
    // construction, so selecting one means building the evaluator with
    // it — and that is equivalent to any other evaluator built with the
    // same objective.
    auto p = problem(3, Objective::Latency);
    EXPECT_EQ(p->evaluator().objective(), Objective::Latency);
    common::Rng rng(7);
    Mapping m = Mapping::random(20, p->evaluator().numAccels(), rng);
    EXPECT_EQ(p->evaluator().fitness(m),
              problem(3, Objective::Latency)->evaluator().fitness(m));
}

TEST(Objectives, ThroughputAndLatencyAgreeOnOrdering)
{
    // For a fixed group, throughput = totalFlops/makespan is a monotone
    // transform of 1/makespan, so the two objectives rank any two
    // mappings identically.
    auto p_tp = problem(3, Objective::Throughput);
    auto p_lat = problem(3, Objective::Latency);
    common::Rng rng(1);
    Mapping a = Mapping::random(20, p_tp->evaluator().numAccels(), rng);
    Mapping b = Mapping::random(20, p_tp->evaluator().numAccels(), rng);
    double ta = p_tp->evaluator().fitness(a);
    double tb = p_tp->evaluator().fitness(b);
    double la = p_lat->evaluator().fitness(a);
    double lb = p_lat->evaluator().fitness(b);
    EXPECT_EQ(ta > tb, la > lb);
}

TEST(Objectives, EnergyCountsAssignedCores)
{
    auto p = problem();
    auto& eval = p->evaluator();
    common::Rng rng(2);
    Mapping m = Mapping::random(20, eval.numAccels(), rng);
    double joules = eval.totalJoules(m);
    EXPECT_GT(joules, 0.0);
    double sum_pj = 0.0;
    for (int j = 0; j < 20; ++j)
        sum_pj += eval.table().lookup(j, m.accelSel[j]).energyPj;
    EXPECT_NEAR(joules, sum_pj * 1e-12, sum_pj * 1e-24);
}

TEST(Objectives, AllObjectivesFiniteAndPositive)
{
    common::Rng rng(3);
    Mapping m = Mapping::random(20, 4, rng);
    for (Objective o : {Objective::Throughput, Objective::Latency,
                        Objective::Energy, Objective::EnergyDelay,
                        Objective::PerfPerWatt}) {
        auto p = problem(3, o);
        double f = p->evaluator().fitness(m);
        EXPECT_TRUE(std::isfinite(f)) << sched::objectiveName(o);
        EXPECT_GT(f, 0.0) << sched::objectiveName(o);
    }
}

TEST(Objectives, EdpCombinesEnergyAndDelay)
{
    auto p = problem(4, Objective::EnergyDelay);
    auto& eval = p->evaluator();
    common::Rng rng(4);
    Mapping m = Mapping::random(20, eval.numAccels(), rng);
    sched::ScheduleResult r = eval.evaluate(m);
    double edp = eval.fitness(m);
    EXPECT_NEAR(edp,
                1.0 / (eval.totalJoules(m) * r.makespanSeconds),
                edp * 1e-9);
}

TEST(Objectives, SearchUnderEnergyPrefersLowEnergyMappings)
{
    // MAGMA optimizing the energy objective should find a mapping with no
    // more energy than the best throughput-optimized mapping it finds.
    opt::SearchOptions opts;
    opts.sampleBudget = 600;

    auto p_tp = problem(9, Objective::Throughput);
    opt::MagmaGa m1(1);
    sched::Mapping best_tp = m1.search(p_tp->evaluator(), opts).best;

    auto p_en = problem(9, Objective::Energy);
    opt::MagmaGa m2(1);
    sched::Mapping best_en = m2.search(p_en->evaluator(), opts).best;

    EXPECT_LE(p_en->evaluator().totalJoules(best_en),
              p_en->evaluator().totalJoules(best_tp) * 1.0001);
}

TEST(Objectives, PerfPerWattConsistency)
{
    auto p = problem(3, Objective::PerfPerWatt);
    auto& eval = p->evaluator();
    common::Rng rng(5);
    Mapping m = Mapping::random(20, eval.numAccels(), rng);
    sched::ScheduleResult r = eval.evaluate(m);
    double gflops = eval.throughputGflops(r.makespanSeconds);
    double watts = eval.totalJoules(m) / r.makespanSeconds;
    EXPECT_NEAR(eval.fitness(m), gflops / watts, gflops / watts * 1e-9);
}
