/** @file Tests for the Section IV-C objective options of the evaluator. */

#include <gtest/gtest.h>

#include "m3e/problem.h"
#include "opt/magma_ga.h"

using namespace magma;
using sched::Mapping;
using sched::Objective;

namespace {

std::unique_ptr<m3e::Problem>
problem(uint64_t seed = 3)
{
    return m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0, 20,
                            seed);
}

}  // namespace

TEST(Objectives, Names)
{
    EXPECT_EQ(sched::objectiveName(Objective::Throughput), "throughput");
    EXPECT_EQ(sched::objectiveName(Objective::Latency), "latency");
    EXPECT_EQ(sched::objectiveName(Objective::Energy), "energy");
    EXPECT_EQ(sched::objectiveName(Objective::EnergyDelay),
              "energy-delay-product");
    EXPECT_EQ(sched::objectiveName(Objective::PerfPerWatt),
              "performance-per-watt");
}

TEST(Objectives, DefaultIsThroughput)
{
    auto p = problem();
    EXPECT_EQ(p->evaluator().objective(), Objective::Throughput);
}

TEST(Objectives, ThroughputAndLatencyAgreeOnOrdering)
{
    // For a fixed group, throughput = totalFlops/makespan is a monotone
    // transform of 1/makespan, so the two objectives rank any two
    // mappings identically.
    auto p = problem();
    auto& eval = p->evaluator();
    common::Rng rng(1);
    Mapping a = Mapping::random(20, eval.numAccels(), rng);
    Mapping b = Mapping::random(20, eval.numAccels(), rng);
    eval.setObjective(Objective::Throughput);
    double ta = eval.fitness(a), tb = eval.fitness(b);
    eval.setObjective(Objective::Latency);
    double la = eval.fitness(a), lb = eval.fitness(b);
    EXPECT_EQ(ta > tb, la > lb);
}

TEST(Objectives, EnergyCountsAssignedCores)
{
    auto p = problem();
    auto& eval = p->evaluator();
    common::Rng rng(2);
    Mapping m = Mapping::random(20, eval.numAccels(), rng);
    double joules = eval.totalJoules(m);
    EXPECT_GT(joules, 0.0);
    double sum_pj = 0.0;
    for (int j = 0; j < 20; ++j)
        sum_pj += eval.table().lookup(j, m.accelSel[j]).energyPj;
    EXPECT_NEAR(joules, sum_pj * 1e-12, sum_pj * 1e-24);
}

TEST(Objectives, AllObjectivesFiniteAndPositive)
{
    auto p = problem();
    auto& eval = p->evaluator();
    common::Rng rng(3);
    Mapping m = Mapping::random(20, eval.numAccels(), rng);
    for (Objective o : {Objective::Throughput, Objective::Latency,
                        Objective::Energy, Objective::EnergyDelay,
                        Objective::PerfPerWatt}) {
        eval.setObjective(o);
        double f = eval.fitness(m);
        EXPECT_TRUE(std::isfinite(f)) << sched::objectiveName(o);
        EXPECT_GT(f, 0.0) << sched::objectiveName(o);
    }
}

TEST(Objectives, EdpCombinesEnergyAndDelay)
{
    auto p = problem();
    auto& eval = p->evaluator();
    common::Rng rng(4);
    Mapping m = Mapping::random(20, eval.numAccels(), rng);
    sched::ScheduleResult r = eval.evaluate(m);
    eval.setObjective(Objective::EnergyDelay);
    double edp = eval.fitness(m);
    EXPECT_NEAR(edp,
                1.0 / (eval.totalJoules(m) * r.makespanSeconds),
                edp * 1e-9);
}

TEST(Objectives, SearchUnderEnergyPrefersLowEnergyMappings)
{
    // MAGMA optimizing the energy objective should find a mapping with no
    // more energy than the best throughput-optimized mapping it finds.
    auto p = problem(9);
    auto& eval = p->evaluator();
    opt::SearchOptions opts;
    opts.sampleBudget = 600;

    eval.setObjective(Objective::Throughput);
    opt::MagmaGa m1(1);
    sched::Mapping best_tp = m1.search(eval, opts).best;

    eval.setObjective(Objective::Energy);
    opt::MagmaGa m2(1);
    sched::Mapping best_en = m2.search(eval, opts).best;

    EXPECT_LE(eval.totalJoules(best_en),
              eval.totalJoules(best_tp) * 1.0001);
}

TEST(Objectives, PerfPerWattConsistency)
{
    auto p = problem();
    auto& eval = p->evaluator();
    common::Rng rng(5);
    Mapping m = Mapping::random(20, eval.numAccels(), rng);
    sched::ScheduleResult r = eval.evaluate(m);
    double gflops = eval.throughputGflops(r.makespanSeconds);
    double watts = eval.totalJoules(m) / r.makespanSeconds;
    eval.setObjective(Objective::PerfPerWatt);
    EXPECT_NEAR(eval.fitness(m), gflops / watts, gflops / watts * 1e-9);
}
