/**
 * @file Tests for the observability subsystem (src/obs/): histogram
 * quantile edge cases (empty, single sample, saturated top bucket,
 * underflow bucket, shard merges), level parsing, registry identity and
 * thread-safety, tracer drain ordering and ring-overflow accounting,
 * snapshot JSON round-trips under randomized (escape-hostile) metric
 * names, Chrome-trace export round-trips (hostile names, dropped-count
 * metadata, empty traces), hierarchical-profiler tree merges across
 * threads, and the invariant the whole subsystem is built around:
 * fixed-seed search results are bitwise identical whether observability
 * is off, at full trace, or at profile.
 */

#include <cmath>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "m3e/problem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "opt/magma_ga.h"
#include "serve/service.h"

using namespace magma;
using obs::Histogram;
using obs::MetricsLevel;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::SnapshotWriter;
using obs::TraceEvent;
using obs::Tracer;

namespace {

/** Restore the process metrics level on scope exit. */
class LevelGuard {
  public:
    LevelGuard() : saved_(obs::metricsLevel()) {}
    ~LevelGuard() { obs::setMetricsLevel(saved_); }

  private:
    MetricsLevel saved_;
};

}  // namespace

// -------------------------------------------------- level names ---

TEST(MetricsLevel, NamesRoundTrip)
{
    for (MetricsLevel l :
         {MetricsLevel::Off, MetricsLevel::Counters, MetricsLevel::Trace,
          MetricsLevel::Profile}) {
        EXPECT_EQ(obs::metricsLevelFromName(obs::metricsLevelName(l)), l);
    }
    EXPECT_THROW(obs::metricsLevelFromName("verbose"),
                 std::invalid_argument);
    EXPECT_THROW(obs::metricsLevelFromName(""), std::invalid_argument);
}

TEST(MetricsLevel, EffectiveLevelResolvesInherit)
{
    LevelGuard guard;
    obs::setMetricsLevel(MetricsLevel::Trace);
    EXPECT_EQ(obs::effectiveLevel(MetricsLevel::Inherit),
              MetricsLevel::Trace);
    EXPECT_EQ(obs::effectiveLevel(MetricsLevel::Off), MetricsLevel::Off);
    obs::setMetricsLevel(MetricsLevel::Off);
    EXPECT_FALSE(obs::countersOn());
    EXPECT_FALSE(obs::traceOn());
    obs::setMetricsLevel(MetricsLevel::Counters);
    EXPECT_TRUE(obs::countersOn());
    EXPECT_FALSE(obs::traceOn());
}

// ---------------------------------------------- histogram edges ---

TEST(Histogram, EmptyAnswersZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.0), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(1.0), 0.0);
    EXPECT_TRUE(h.buckets().empty());
}

TEST(Histogram, SingleSampleIsExactEverywhere)
{
    Histogram h;
    h.record(0.0375);
    EXPECT_EQ(h.count(), 1);
    EXPECT_EQ(h.min(), 0.0375);
    EXPECT_EQ(h.max(), 0.0375);
    // One sample: every quantile must return the sample exactly, not a
    // bucket midpoint.
    for (double q : {0.0, 0.01, 0.5, 0.99, 1.0})
        EXPECT_EQ(h.quantile(q), 0.0375);
}

TEST(Histogram, SaturatedTopBucketNeverFabricates)
{
    Histogram h;
    // Beyond the 2^64 octave range: both saturate into the top bucket.
    h.record(1e300);
    h.record(5e299);
    EXPECT_EQ(h.count(), 2);
    EXPECT_EQ(h.max(), 1e300);
    EXPECT_EQ(h.min(), 5e299);
    // The top bucket's midpoint is ~2^64; answering it would fabricate a
    // value 236 orders of magnitude off. The walk must fall back to the
    // exact extremes instead.
    EXPECT_EQ(h.quantile(1.0), 1e300);
    EXPECT_LE(h.quantile(0.9), 1e300);
    EXPECT_GE(h.quantile(0.1), 5e299);
}

TEST(Histogram, NonPositiveAndNonFiniteLandInUnderflowBucket)
{
    Histogram h;
    h.record(0.0);
    h.record(-3.5);
    h.record(std::numeric_limits<double>::quiet_NaN());
    h.record(std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.count(), 4);
    obs::HistogramBuckets b = h.buckets();
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].first, 0);  // the dedicated underflow bucket
    EXPECT_EQ(b[0].second, 4u);
}

TEST(Histogram, ShardMergeEqualsCombinedRecording)
{
    Histogram shard_a, shard_b, combined;
    common::Rng rng(11);
    for (int i = 0; i < 4000; ++i) {
        double v = std::exp(rng.uniform() * 20.0 - 10.0);
        (i % 2 ? shard_a : shard_b).record(v);
        combined.record(v);
    }
    shard_a.merge(shard_b);
    EXPECT_EQ(shard_a.count(), combined.count());
    // Sums accumulate in different orders; only bucket placement and the
    // exact extremes are order-independent.
    EXPECT_NEAR(shard_a.sum(), combined.sum(),
                std::abs(combined.sum()) * 1e-12);
    EXPECT_EQ(shard_a.min(), combined.min());
    EXPECT_EQ(shard_a.max(), combined.max());
    EXPECT_EQ(shard_a.buckets(), combined.buckets());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(shard_a.quantile(q), combined.quantile(q));
}

TEST(Histogram, QuantileRelativeAccuracy)
{
    // Uniform grid: the exact quantile is known, the histogram answer
    // must be within the documented ~1/kSubBuckets relative error.
    Histogram h;
    const int n = 10000;
    std::vector<double> values;
    for (int i = 1; i <= n; ++i) {
        double v = 1e-3 * i;
        h.record(v);
        values.push_back(v);
    }
    for (double q : {0.10, 0.50, 0.90, 0.99}) {
        double exact = values[static_cast<size_t>(q * (n - 1))];
        double got = h.quantile(q);
        EXPECT_NEAR(got, exact, exact * 0.04)
            << "q=" << q << " exact=" << exact << " got=" << got;
    }
    EXPECT_EQ(h.quantile(0.0), 1e-3);      // exact min
    EXPECT_EQ(h.quantile(1.0), 1e-3 * n);  // exact max
}

TEST(Histogram, BucketIndexCoversDynamicRange)
{
    for (double v : {1e-18, 1e-6, 0.5, 1.0, 3.0, 1e6, 1e18}) {
        int idx = Histogram::bucketIndex(v);
        ASSERT_GT(idx, 0);
        ASSERT_LT(idx, Histogram::kNumBuckets);
        // The representative midpoint stays within one sub-bucket width.
        EXPECT_NEAR(Histogram::bucketValue(idx), v, v / Histogram::kSubBuckets)
            << "v=" << v;
    }
    EXPECT_EQ(Histogram::bucketIndex(-1.0), 0);
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0);
}

// ----------------------------------------------------- registry ---

TEST(MetricsRegistry, SameNameSameObject)
{
    MetricsRegistry reg;
    EXPECT_EQ(&reg.counter("a.b"), &reg.counter("a.b"));
    EXPECT_EQ(&reg.gauge("a.b"), &reg.gauge("a.b"));
    EXPECT_EQ(&reg.histogram("a.b"), &reg.histogram("a.b"));
    // Kinds have independent namespaces.
    EXPECT_NE(static_cast<void*>(&reg.counter("a.b")),
              static_cast<void*>(&reg.gauge("a.b")));
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_EQ(reg.findGauge("missing"), nullptr);
    EXPECT_EQ(reg.findHistogram("missing"), nullptr);
}

TEST(MetricsRegistry, ConcurrentRecordingLosesNothing)
{
    MetricsRegistry reg;
    obs::Counter& c = reg.counter("t.count");
    obs::Histogram& h = reg.histogram("t.hist");
    const int threads = 4, per_thread = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&, t] {
            for (int i = 0; i < per_thread; ++i) {
                c.add(1);
                h.record(1.0 + t);
            }
        });
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(c.value(), int64_t{threads} * per_thread);
    EXPECT_EQ(h.count(), int64_t{threads} * per_thread);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 4.0);
}

TEST(MetricsRegistry, GaugeProvidersRunBeforeVisit)
{
    MetricsRegistry reg;
    int runs = 0;
    reg.addGaugeProvider([&runs](MetricsRegistry& r) {
        r.gauge("pull.value").set(++runs);
    });
    MetricsSnapshot snap = SnapshotWriter::capture("test", reg);
    const obs::GaugeSnap* g = snap.findGauge("pull.value");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->value, 1.0);
    snap = SnapshotWriter::capture("test", reg);
    EXPECT_EQ(snap.findGauge("pull.value")->value, 2.0);
}

// ------------------------------------------------------- tracer ---

TEST(Tracer, DrainMergesInStartOrderAndCountsDrops)
{
    LevelGuard guard;
    obs::setMetricsLevel(MetricsLevel::Trace);
    Tracer& tracer = Tracer::global();
    tracer.drain();  // clear anything earlier tests traced

    // Overflow one thread's ring: capacity + extra events.
    const size_t extra = 100;
    for (size_t i = 0; i < Tracer::kRingCapacity + extra; ++i)
        obs::traceInstant("t.overflow", static_cast<int64_t>(i));
    // A second thread contributes its own ring.
    std::thread([] {
        for (int i = 0; i < 10; ++i)
            obs::traceInstant("t.other", i);
    }).join();

    int64_t dropped = -1;
    std::vector<TraceEvent> events = tracer.drain(&dropped);
    EXPECT_EQ(dropped, static_cast<int64_t>(extra));
    EXPECT_EQ(events.size(), Tracer::kRingCapacity + 10);
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].startSeconds, events[i].startSeconds);
    // The oldest `extra` events were overwritten: the survivors on the
    // overflowed ring start at index `extra`.
    int64_t min_overflow_i = std::numeric_limits<int64_t>::max();
    for (const TraceEvent& e : events)
        if (e.name == "t.overflow")
            min_overflow_i = std::min(min_overflow_i, e.i);
    EXPECT_EQ(min_overflow_i, static_cast<int64_t>(extra));

    // Drain clears: a second drain is empty with zero drops.
    dropped = -1;
    EXPECT_TRUE(tracer.drain(&dropped).empty());
    EXPECT_EQ(dropped, 0);
}

TEST(Tracer, SpanIsNoOpWhenTracingOff)
{
    LevelGuard guard;
    obs::setMetricsLevel(MetricsLevel::Counters);
    Tracer::global().drain();
    {
        // span payload: i/a/b exercise the setters; nothing records
        obs::Span span("t.silent", 7);
        span.payload(1.0, 2.0);
    }
    obs::traceInstant("t.silent2", 1);
    EXPECT_TRUE(Tracer::global().drain().empty());
}

// --------------------------------------------- snapshot round-trip ---

namespace {

/** A name that stresses JSON escaping: quotes, backslashes, newlines,
 * control chars, and high-bit bytes. */
std::string
hostileName(common::Rng& rng, int salt)
{
    static const char kAlphabet[] =
        "abcXYZ019._-\"\\\n\t\r\x01\x1f{}[]:,/ \xc3\xa9";
    std::string name = "m" + std::to_string(salt) + ".";
    int len = 1 + rng.uniformInt(12);
    for (int i = 0; i < len; ++i)
        name += kAlphabet[rng.uniformInt(sizeof(kAlphabet) - 1)];
    return name;
}

double
hostileDouble(common::Rng& rng)
{
    switch (rng.uniformInt(6)) {
    case 0: return 0.1 + 0.2;
    case 1: return 1e-317;  // subnormal
    case 2: return -1.0 / 3.0;
    // NaN is the one non-finite that round-trips (null <-> NaN); +/-inf
    // collapses to NaN by design, so it lives in its own test below.
    case 3: return std::numeric_limits<double>::quiet_NaN();
    case 4: return 1.7e308;
    default: return rng.uniform() * 1e6 - 5e5;
    }
}

}  // namespace

TEST(MetricsSnapshot, RoundTripsUnderRandomizedHostileNames)
{
    common::Rng rng(2026);
    for (int trial = 0; trial < 25; ++trial) {
        MetricsSnapshot snap;
        snap.source = hostileName(rng, trial);
        snap.level = trial % 2 ? MetricsLevel::Trace : MetricsLevel::Off;
        int salt = 0;
        for (int i = 0; i < 1 + rng.uniformInt(4); ++i)
            snap.counters.push_back(
                {hostileName(rng, ++salt),
                 static_cast<int64_t>(rng.engine()())});
        for (int i = 0; i < 1 + rng.uniformInt(4); ++i)
            snap.gauges.push_back(
                {hostileName(rng, ++salt), hostileDouble(rng)});
        for (int i = 0; i < 1 + rng.uniformInt(3); ++i) {
            obs::HistogramSnap h;
            h.name = hostileName(rng, ++salt);
            h.count = 3;
            h.sum = hostileDouble(rng);
            h.min = 0.5;
            h.max = 2.0;
            h.buckets = {{0, 1},
                         {Histogram::bucketIndex(1.0), 2}};
            snap.histograms.push_back(std::move(h));
        }
        for (int i = 0; i < rng.uniformInt(5); ++i) {
            TraceEvent e;
            e.name = hostileName(rng, ++salt);
            e.startSeconds = rng.uniform();
            e.durSeconds = hostileDouble(rng);
            e.thread = rng.uniformInt(8);
            e.i = static_cast<int64_t>(rng.engine()());
            e.a = hostileDouble(rng);
            e.b = rng.uniform();
            snap.spans.push_back(std::move(e));
        }
        snap.spansDropped = rng.uniformInt(10);

        std::string text = snap.toJson();
        MetricsSnapshot back = MetricsSnapshot::fromJson(text);
        EXPECT_EQ(back, snap) << "trial " << trial << "\n" << text;
        // And the text itself is a fixed point.
        EXPECT_EQ(back.toJson(), text);
    }
}

TEST(MetricsSnapshot, NonFiniteDoublesCollapseToNaN)
{
    MetricsSnapshot snap;
    snap.source = "nonfinite";
    snap.gauges.push_back(
        {"g.inf", std::numeric_limits<double>::infinity()});
    snap.gauges.push_back(
        {"g.ninf", -std::numeric_limits<double>::infinity()});
    snap.gauges.push_back(
        {"g.nan", std::numeric_limits<double>::quiet_NaN()});
    MetricsSnapshot back = MetricsSnapshot::fromJson(snap.toJson());
    ASSERT_EQ(back.gauges.size(), 3u);
    for (const obs::GaugeSnap& g : back.gauges)
        EXPECT_TRUE(std::isnan(g.value)) << g.name;
    // A second trip is lossless: null <-> NaN is the fixed point.
    EXPECT_EQ(MetricsSnapshot::fromJson(back.toJson()), back);
}

TEST(MetricsSnapshot, ParserRejectsMalformedInput)
{
    EXPECT_THROW(MetricsSnapshot::fromJson(""), std::invalid_argument);
    EXPECT_THROW(MetricsSnapshot::fromJson("{}"), std::invalid_argument);
    EXPECT_THROW(MetricsSnapshot::fromJson("{\"schema\": 99}"),
                 std::invalid_argument);
    MetricsSnapshot snap;
    snap.source = "x";
    std::string good = snap.toJson();
    EXPECT_THROW(
        MetricsSnapshot::fromJson(good.substr(0, good.size() - 2)),
        std::invalid_argument);
}

TEST(MetricsSnapshot, CapturedQuantilesSurviveRoundTrip)
{
    MetricsRegistry reg;
    obs::Histogram& h = reg.histogram("rt.latency");
    common::Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        h.record(std::exp(rng.uniform() * 10.0 - 5.0));
    MetricsSnapshot snap = SnapshotWriter::capture("test", reg);
    MetricsSnapshot back = MetricsSnapshot::fromJson(snap.toJson());
    const obs::HistogramSnap* live = snap.findHistogram("rt.latency");
    const obs::HistogramSnap* parsed = back.findHistogram("rt.latency");
    ASSERT_NE(live, nullptr);
    ASSERT_NE(parsed, nullptr);
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(parsed->quantile(q), live->quantile(q)) << "q=" << q;
    EXPECT_EQ(parsed->quantile(0.5), h.quantile(0.5));
}

// ----------------------------------- the determinism invariant ---

TEST(Observability, FixedSeedSearchBitwiseIdenticalOffVsTrace)
{
    LevelGuard guard;
    auto run = [](MetricsLevel level) {
        obs::setMetricsLevel(level);
        auto problem = m3e::makeProblem(dnn::TaskType::Mix,
                                        accel::Setting::S2, 4.0, 12, 9);
        opt::MagmaGa ga(9);
        opt::SearchOptions opts;
        opts.sampleBudget = 400;
        opt::SearchResult r = ga.search(problem->evaluator(), opts);
        Tracer::global().drain();  // don't leak spans into later tests
        return r;
    };
    opt::SearchResult off = run(MetricsLevel::Off);
    opt::SearchResult trace = run(MetricsLevel::Trace);
    EXPECT_EQ(off.bestFitness, trace.bestFitness);  // bitwise
    EXPECT_EQ(off.best, trace.best);
    EXPECT_EQ(off.samplesUsed, trace.samplesUsed);
}

TEST(Observability, SearchOptionsOverrideTracesBelowProcessLevel)
{
    LevelGuard guard;
    obs::setMetricsLevel(MetricsLevel::Counters);
    Tracer::global().drain();
    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                    4.0, 12, 3);
    opt::MagmaGa ga(3);
    opt::SearchOptions opts;
    opts.sampleBudget = 300;
    opts.metrics = MetricsLevel::Trace;  // per-search escalation
    ga.search(problem->evaluator(), opts);
    std::vector<TraceEvent> events = Tracer::global().drain();
    int generations = 0;
    for (const TraceEvent& e : events)
        generations += e.name == "opt.generation";
    EXPECT_GT(generations, 0);
}

// ------------------------------------------- serve integration ---

TEST(Observability, ServeRecordsPerTenantHistograms)
{
    LevelGuard guard;
    obs::setMetricsLevel(MetricsLevel::Counters);
    MetricsRegistry reg;
    serve::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.registry = &reg;
    serve::MappingService service(cfg);
    std::vector<std::future<serve::MapResponse>> futures;
    for (int i = 0; i < 4; ++i) {
        serve::MapRequest req;
        req.tenant = "tenant-" + std::to_string(i % 2);
        req.problem.task = dnn::TaskType::Mix;
        req.problem.groupSize = 10;
        req.problem.workloadSeed = 40 + i;
        req.problem.setting = accel::Setting::S2;
        req.problem.systemBwGbps = 4.0;
        req.search.sampleBudget = 200;
        req.search.seed = 40 + i;
        futures.push_back(service.submit(std::move(req)));
    }
    for (auto& f : futures)
        f.get();
    service.stop();

    const obs::Counter* served = reg.findCounter("serve.requests");
    ASSERT_NE(served, nullptr);
    EXPECT_EQ(served->value(), 4);
    for (const char* name :
         {"serve.wait_seconds", "serve.service_seconds",
          "serve.wait_seconds.tenant-0", "serve.wait_seconds.tenant-1",
          "serve.service_seconds.tenant-0",
          "serve.service_seconds.tenant-1"}) {
        const obs::Histogram* h = reg.findHistogram(name);
        ASSERT_NE(h, nullptr) << name;
        EXPECT_GT(h->count(), 0) << name;
    }
    // Aggregate = sum of the tenant shards.
    EXPECT_EQ(reg.findHistogram("serve.wait_seconds")->count(),
              reg.findHistogram("serve.wait_seconds.tenant-0")->count() +
                  reg.findHistogram("serve.wait_seconds.tenant-1")->count());
}

// --------------------------------------------- chrome trace export ---

TEST(ChromeTrace, ClassifiesInstantVsCompleteAndConvertsOnce)
{
    std::vector<TraceEvent> events(2);
    events[0].name = "span";
    events[0].startSeconds = 1.5;
    events[0].durSeconds = 0.25;
    events[0].thread = 3;
    events[0].i = 7;
    events[1].name = "instant";
    events[1].startSeconds = 2.0;
    events[1].durSeconds = 0.0;
    obs::ChromeTrace t = obs::ChromeTrace::fromEvents(events, "test", 0);
    ASSERT_EQ(t.events.size(), 2u);
    EXPECT_FALSE(t.events[0].instant);
    EXPECT_EQ(t.events[0].tsMicros, 1.5e6);
    EXPECT_EQ(t.events[0].durMicros, 0.25e6);
    EXPECT_EQ(t.events[0].tid, 3);
    EXPECT_EQ(t.events[0].i, 7);
    EXPECT_TRUE(t.events[1].instant);
}

TEST(ChromeTrace, RoundTripsUnderRandomizedHostileNames)
{
    common::Rng rng(77);
    for (int trial = 0; trial < 25; ++trial) {
        obs::ChromeTrace t;
        t.source = hostileName(rng, trial);
        t.droppedEvents = rng.uniformInt(100);
        int salt = 100;
        int n = rng.uniformInt(6);
        for (int e = 0; e < n; ++e) {
            obs::ChromeEvent ev;
            ev.name = hostileName(rng, ++salt);
            ev.instant = rng.uniformInt(2) == 0;
            ev.tsMicros = rng.uniform() * 1e6;
            // Only complete events carry "dur" in the JSON, so only they
            // can round-trip a nonzero (or NaN) duration.
            if (!ev.instant)
                ev.durMicros = hostileDouble(rng);
            ev.tid = rng.uniformInt(8);
            ev.i = static_cast<int64_t>(rng.engine()());
            ev.a = hostileDouble(rng);
            ev.b = rng.uniform();
            t.events.push_back(std::move(ev));
        }
        std::string text = t.toJson();
        obs::ChromeTrace back = obs::ChromeTrace::fromJson(text);
        EXPECT_EQ(back, t) << "trial " << trial << "\n" << text;
        // The text itself is a fixed point.
        EXPECT_EQ(back.toJson(), text);
    }
}

TEST(ChromeTrace, EmptyTraceAndDroppedMetadataRoundTrip)
{
    obs::ChromeTrace t;
    t.source = "empty";
    t.droppedEvents = 42;
    std::string text = t.toJson();
    obs::ChromeTrace back = obs::ChromeTrace::fromJson(text);
    EXPECT_EQ(back, t);
    EXPECT_EQ(back.droppedEvents, 42);
    EXPECT_TRUE(back.events.empty());
    // The loss count is visible in the artifact, not just the struct.
    EXPECT_NE(text.find("\"dropped_events\":42"), std::string::npos);
}

TEST(ChromeTrace, ParserRejectsMalformedInput)
{
    EXPECT_THROW(obs::ChromeTrace::fromJson(""), std::invalid_argument);
    // Valid JSON but not a trace: traceEvents is required.
    EXPECT_THROW(obs::ChromeTrace::fromJson("{}"), std::invalid_argument);
    obs::ChromeTrace t;
    t.source = "x";
    std::string good = t.toJson();
    EXPECT_THROW(
        obs::ChromeTrace::fromJson(good.substr(0, good.size() - 2)),
        std::invalid_argument);
}

// ------------------------------------------------------ profiler ---

TEST(Profiler, ScopeIsNoOpBelowProfileLevel)
{
    LevelGuard guard;
    obs::setMetricsLevel(MetricsLevel::Trace);
    obs::Profiler::global().reset();
    {
        PROFILE_SCOPE("p.silent");
    }
    EXPECT_TRUE(obs::Profiler::global().rows().empty());
}

TEST(Profiler, FourThreadTreeMergeIsDeterministic)
{
    LevelGuard guard;
    obs::setMetricsLevel(MetricsLevel::Profile);
    obs::Profiler& prof = obs::Profiler::global();
    prof.reset();
    const int threads = 4, reps = 50;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&] {
            for (int i = 0; i < reps; ++i) {
                PROFILE_SCOPE("p.outer");
                PROFILE_SCOPE("p.inner");  // child of p.outer
            }
        });
    for (auto& th : pool)
        th.join();

    std::vector<obs::ProfileRow> rows = prof.rows();
    ASSERT_EQ(rows.size(), 2u);
    // Depth-first with name-sorted siblings: parent before child, and
    // the four per-thread trees merge into one set of counts.
    EXPECT_EQ(rows[0].path, "p.outer");
    EXPECT_EQ(rows[0].count, int64_t{threads} * reps);
    EXPECT_EQ(rows[1].path, "p.outer/p.inner");
    EXPECT_EQ(rows[1].count, int64_t{threads} * reps);
    EXPECT_GE(rows[0].totalSeconds, rows[1].totalSeconds);
    EXPECT_GE(rows[0].selfSeconds, 0.0);
    EXPECT_GE(rows[1].selfSeconds, 0.0);

    // reportText lists the same structure (names, indentation).
    std::string report = prof.reportText();
    EXPECT_NE(report.find("p.outer"), std::string::npos);
    EXPECT_NE(report.find("  p.inner"), std::string::npos);

    prof.reset();
    EXPECT_TRUE(prof.rows().empty());
}

TEST(MetricsSnapshot, ProfileRowsRoundTripUnderHostileNames)
{
    common::Rng rng(99);
    MetricsSnapshot snap;
    snap.source = "profile.rt";
    snap.level = MetricsLevel::Profile;
    for (int i = 0; i < 5; ++i) {
        obs::ProfileSnap p;
        p.path = hostileName(rng, i) + "/" + hostileName(rng, i + 50);
        p.count = 1 + rng.uniformInt(1000);
        p.totalSeconds = rng.uniform();
        p.selfSeconds = hostileDouble(rng);
        snap.profile.push_back(std::move(p));
    }
    std::string text = snap.toJson();
    MetricsSnapshot back = MetricsSnapshot::fromJson(text);
    EXPECT_EQ(back, snap) << text;
    EXPECT_EQ(back.toJson(), text);
}

TEST(MetricsSnapshot, CaptureIncludesProfileRowsOnlyAtProfileLevel)
{
    LevelGuard guard;
    obs::Profiler::global().reset();
    obs::setMetricsLevel(MetricsLevel::Profile);
    {
        PROFILE_SCOPE("cap.scope");
    }
    MetricsRegistry reg;
    MetricsSnapshot snap = SnapshotWriter::capture("test", reg);
    ASSERT_EQ(snap.profile.size(), 1u);
    EXPECT_EQ(snap.profile[0].path, "cap.scope");
    EXPECT_EQ(snap.profile[0].count, 1);

    // Below Profile the same tree is not captured (rows stay in the
    // profiler — capture is non-destructive — but the snapshot omits
    // them).
    obs::setMetricsLevel(MetricsLevel::Counters);
    MetricsSnapshot low = SnapshotWriter::capture("test", reg);
    EXPECT_TRUE(low.profile.empty());
    obs::Profiler::global().reset();
}

TEST(Observability, FixedSeedSearchBitwiseIdenticalOffVsProfile)
{
    LevelGuard guard;
    auto run = [](MetricsLevel level) {
        obs::setMetricsLevel(level);
        auto problem = m3e::makeProblem(dnn::TaskType::Mix,
                                        accel::Setting::S2, 4.0, 12, 9);
        opt::MagmaGa ga(9);
        opt::SearchOptions opts;
        opts.sampleBudget = 400;
        opt::SearchResult r = ga.search(problem->evaluator(), opts);
        Tracer::global().drain();  // don't leak spans into later tests
        obs::Profiler::global().reset();
        return r;
    };
    opt::SearchResult off = run(MetricsLevel::Off);
    opt::SearchResult profile = run(MetricsLevel::Profile);
    EXPECT_EQ(off.bestFitness, profile.bestFitness);  // bitwise
    EXPECT_EQ(off.best, profile.best);
    EXPECT_EQ(off.samplesUsed, profile.samplesUsed);
}
