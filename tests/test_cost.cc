/** @file Unit + property tests for the MAESTRO-like cost model. */

#include <cmath>

#include <gtest/gtest.h>

#include "accel/platform.h"
#include "cost/cost_model.h"
#include "dnn/layer.h"

using namespace magma;
using cost::CostModel;
using cost::CostResult;
using cost::DataflowStyle;
using cost::SubAccelConfig;
using dnn::conv;
using dnn::depthwise;
using dnn::fc;
using dnn::pointwise;

namespace {

SubAccelConfig
hb64()
{
    return accel::makeSubAccel(DataflowStyle::HB, 64, 291);
}

SubAccelConfig
lb64()
{
    return accel::makeSubAccel(DataflowStyle::LB, 64, 218);
}

}  // namespace

TEST(CostModel, BasicSanity)
{
    CostModel model;
    CostResult r = model.analyze(conv(64, 64, 28, 28, 3, 3), 4, hb64());
    EXPECT_GT(r.noStallCycles, 0.0);
    EXPECT_GT(r.reqBwGbps, 0.0);
    EXPECT_GT(r.dramBytes, 0.0);
    EXPECT_GT(r.energyPj, 0.0);
    EXPECT_EQ(r.macs, 64LL * 64 * 28 * 28 * 9 * 4);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
}

TEST(CostModel, LatencyLowerBoundIsMacsOverPes)
{
    CostModel model;
    SubAccelConfig cfg = hb64();
    CostResult r = model.analyze(conv(256, 256, 14, 14, 3, 3), 4, cfg);
    double min_cycles = static_cast<double>(r.macs) / cfg.pes();
    EXPECT_GE(r.noStallCycles, min_cycles - 1e-9);
}

TEST(CostModel, MoreRowsNeverSlower)
{
    CostModel model;
    dnn::LayerShape l = conv(512, 256, 14, 14, 3, 3);
    double prev = 1e300;
    for (int rows : {16, 32, 64, 128, 256}) {
        SubAccelConfig cfg = accel::makeSubAccel(DataflowStyle::HB, rows,
                                                 580);
        CostResult r = model.analyze(l, 4, cfg);
        EXPECT_LE(r.noStallCycles, prev * 1.001) << rows;
        prev = r.noStallCycles;
    }
}

TEST(CostModel, BatchScalesComputeLinearly)
{
    CostModel model;
    CostResult r1 = model.analyze(conv(256, 128, 14, 14, 3, 3), 1, hb64());
    CostResult r4 = model.analyze(conv(256, 128, 14, 14, 3, 3), 4, hb64());
    EXPECT_EQ(r4.macs, 4 * r1.macs);
    EXPECT_GT(r4.noStallCycles, r1.noStallCycles);
}

TEST(CostModel, FcOnLbIsFarSlowerThanHb)
{
    // Section VI-A3 / Fig. 7: FC layers crawl on the activation-parallel
    // LB style.
    CostModel model;
    dnn::LayerShape l = fc(768, 768);
    CostResult h = model.analyze(l, 128, hb64());
    CostResult b = model.analyze(l, 128, lb64());
    EXPECT_GT(b.noStallCycles, 10.0 * h.noStallCycles);
}

TEST(CostModel, LbNeedsFarLessBandwidthOnFc)
{
    CostModel model;
    dnn::LayerShape l = fc(1024, 1024);
    CostResult h = model.analyze(l, 128, hb64());
    CostResult b = model.analyze(l, 128, lb64());
    EXPECT_LT(b.reqBwGbps, 0.2 * h.reqBwGbps);
}

TEST(CostModel, EarlyConvFavorsLb)
{
    // First CNN layer: 3 input channels starve HB's channel parallelism;
    // LB's activation-plane parallelism shines (Section VI-A3).
    CostModel model;
    dnn::LayerShape l = conv(64, 3, 112, 112, 7, 7, 2);
    CostResult h = model.analyze(l, 4, hb64());
    CostResult b = model.analyze(l, 4, lb64());
    EXPECT_LT(b.noStallCycles, h.noStallCycles);
}

TEST(CostModel, LateConvFavorsHb)
{
    CostModel model;
    dnn::LayerShape l = conv(512, 512, 7, 7, 3, 3);
    CostResult h = model.analyze(l, 4, hb64());
    CostResult b = model.analyze(l, 4, lb64());
    EXPECT_LT(h.noStallCycles, b.noStallCycles);
}

TEST(CostModel, DepthwiseUnderutilizesHb)
{
    // NVDLA-style channel parallelism has no reduction dimension to spread
    // on depthwise layers; utilization must be far below a regular conv.
    CostModel model;
    CostResult dw = model.analyze(depthwise(256, 14, 14, 3, 3), 4, hb64());
    CostResult cv = model.analyze(conv(256, 256, 14, 14, 3, 3), 4, hb64());
    EXPECT_LT(dw.utilization, 0.5 * cv.utilization);
}

TEST(CostModel, TrafficAtLeastWeightBytes)
{
    CostModel model;
    for (const auto& l : {conv(256, 256, 14, 14, 3, 3), fc(4096, 4096),
                          pointwise(512, 128, 28, 28)}) {
        CostResult r = model.analyze(l, 4, hb64());
        EXPECT_GE(r.dramBytes, static_cast<double>(l.weightElems()))
            << l.toString();
    }
}

TEST(CostModel, ResidentActivationsMakeTrafficWeightDominated)
{
    // Small feature maps fit the SG: traffic collapses to ~weights.
    CostModel model;
    dnn::LayerShape l = conv(256, 256, 7, 7, 3, 3);
    CostResult r = model.analyze(l, 1, hb64());
    EXPECT_LT(r.dramBytes, 1.5 * l.weightElems());
}

TEST(CostModel, StreamedActivationsRaiseTraffic)
{
    // Huge feature maps cannot reside: traffic must include the locality-
    // discounted activation bytes on top of the weights.
    CostModel model;
    dnn::LayerShape l = pointwise(128, 128, 112, 112);
    CostResult r = model.analyze(l, 4, hb64());
    double acts = (l.inputElemsPerSample() + l.outputElemsPerSample()) * 4.0;
    EXPECT_GE(r.dramBytes,
              CostModel::kActLocality * acts +
                  static_cast<double>(l.weightElems()) - 1e-6);
}

TEST(CostModel, ReqBwConsistentWithTrafficAndLatency)
{
    CostModel model;
    SubAccelConfig cfg = hb64();
    CostResult r = model.analyze(conv(128, 128, 28, 28, 3, 3), 4, cfg);
    double seconds = r.noStallCycles / (cfg.freqGhz * 1e9);
    EXPECT_NEAR(r.reqBwGbps, r.dramBytes / seconds / 1e9, 1e-9);
    EXPECT_NEAR(r.noStallSeconds(cfg), seconds, 1e-18);
}

TEST(CostModel, SmallerSgNeverLowersTraffic)
{
    CostModel model;
    dnn::LayerShape l = conv(512, 512, 14, 14, 3, 3);
    SubAccelConfig big = hb64();
    SubAccelConfig small = hb64();
    small.sgBytes = 16.0 * 1024.0;
    CostResult rb = model.analyze(l, 4, big);
    CostResult rs = model.analyze(l, 4, small);
    EXPECT_GE(rs.dramBytes, rb.dramBytes * 0.999);
}

TEST(CostModel, EnergyGrowsWithTraffic)
{
    CostModel model;
    dnn::LayerShape l = conv(512, 512, 14, 14, 3, 3);
    SubAccelConfig big = hb64();
    SubAccelConfig small = hb64();
    small.sgBytes = 8.0 * 1024.0;
    CostResult rb = model.analyze(l, 4, big);
    CostResult rs = model.analyze(l, 4, small);
    EXPECT_GE(rs.energyPj, rb.energyPj);
}

TEST(CostModel, EnergyParamsScale)
{
    cost::EnergyParams cheap;
    cheap.dramPjPerByte = 0.0;
    CostModel expensive;  // defaults
    CostModel free_dram(cheap);
    dnn::LayerShape l = fc(2048, 2048);
    EXPECT_GT(expensive.analyze(l, 4, hb64()).energyPj,
              free_dram.analyze(l, 4, hb64()).energyPj);
}

TEST(CostModel, FlexibleShapeAtLeastAsFastAsFixed)
{
    CostModel model;
    SubAccelConfig fixed = hb64();
    SubAccelConfig flex = hb64();
    flex.flexibleShape = true;
    flex.sgBytes = 2.0 * 1024 * 1024;
    fixed.sgBytes = 2.0 * 1024 * 1024;
    for (const auto& l : {conv(48, 48, 20, 20, 3, 3), fc(100, 100),
                          depthwise(96, 28, 28, 3, 3),
                          pointwise(24, 24, 7, 7)}) {
        CostResult rfix = model.analyze(l, 4, fixed);
        CostResult rflex = model.analyze(l, 4, flex);
        EXPECT_LE(rflex.noStallCycles, rfix.noStallCycles * 1.0001)
            << l.toString();
        EXPECT_EQ(rflex.usedRows * rflex.usedCols, fixed.pes());
    }
}

TEST(CostModel, FlexibleShapeReportsChosenShape)
{
    CostModel model;
    SubAccelConfig flex = hb64();
    flex.flexibleShape = true;
    // A k=8 layer wants a short-and-wide array under HB.
    CostResult r = model.analyze(pointwise(8, 4096, 4, 4), 1, flex);
    EXPECT_LE(r.usedRows, 16);
}

TEST(CostModel, AnalyzeMatchesAnalyzeWithShapeForFixed)
{
    CostModel model;
    SubAccelConfig cfg = lb64();
    dnn::LayerShape l = conv(96, 96, 28, 28, 3, 3);
    CostResult a = model.analyze(l, 4, cfg);
    CostResult b = model.analyzeWithShape(l, 4, cfg, cfg.rows, cfg.cols);
    EXPECT_DOUBLE_EQ(a.noStallCycles, b.noStallCycles);
    EXPECT_DOUBLE_EQ(a.dramBytes, b.dramBytes);
}

TEST(CostModel, PeakGflopsFormula)
{
    SubAccelConfig cfg = hb64();
    EXPECT_DOUBLE_EQ(cfg.peakGflops(), 2.0 * 64 * 64 * 0.2);
}

// ------------------------- parameterized sweeps --------------------------

struct SweepCase {
    dnn::LayerShape layer;
    int batch;
};

class CostSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CostSweep, InvariantsHoldAcrossShapesAndStyles)
{
    CostModel model;
    const SweepCase& c = GetParam();
    for (DataflowStyle style : {DataflowStyle::HB, DataflowStyle::LB}) {
        for (int rows : {32, 64, 128}) {
            SubAccelConfig cfg = accel::makeSubAccel(style, rows, 291);
            CostResult r = model.analyze(c.layer, c.batch, cfg);
            // Latency positive and at least the compute lower bound.
            EXPECT_GE(r.noStallCycles,
                      static_cast<double>(r.macs) / cfg.pes() - 1e-9);
            // Utilization in (0, 1].
            EXPECT_GT(r.utilization, 0.0);
            EXPECT_LE(r.utilization, 1.0 + 1e-9);
            // Traffic covers the weights at least.
            EXPECT_GE(r.dramBytes,
                      static_cast<double>(c.layer.weightElems()) - 1e-9);
            // Bandwidth and energy well-formed.
            EXPECT_GT(r.reqBwGbps, 0.0);
            EXPECT_TRUE(std::isfinite(r.energyPj));
            EXPECT_GT(r.energyPj, 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CostSweep,
    ::testing::Values(
        SweepCase{conv(64, 3, 112, 112, 7, 7, 2), 4},
        SweepCase{conv(64, 64, 56, 56, 3, 3), 4},
        SweepCase{conv(256, 128, 28, 28, 3, 3), 4},
        SweepCase{conv(512, 512, 7, 7, 3, 3), 4},
        SweepCase{depthwise(32, 112, 112, 3, 3), 4},
        SweepCase{depthwise(384, 14, 14, 3, 3), 4},
        SweepCase{pointwise(128, 64, 56, 56), 4},
        SweepCase{pointwise(1280, 320, 7, 7), 4},
        SweepCase{fc(1000, 2048), 4},
        SweepCase{fc(768, 768), 128},
        SweepCase{fc(3072, 768), 128},
        SweepCase{fc(64, 32), 4},
        SweepCase{fc(1, 256), 4},
        SweepCase{conv(96, 96, 1, 1, 1, 1), 1},
        SweepCase{conv(16, 16, 224, 224, 5, 5), 2}));

class FlexSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FlexSweep, FlexibleBeatsOrMatchesEveryFixedShape)
{
    CostModel model;
    const SweepCase& c = GetParam();
    SubAccelConfig flex = hb64();
    flex.flexibleShape = true;
    CostResult best = model.analyze(c.layer, c.batch, flex);
    for (int rows : {1, 2, 8, 64, 512, 4096}) {
        CostResult fixed = model.analyzeWithShape(c.layer, c.batch, flex,
                                                  rows, flex.pes() / rows);
        EXPECT_LE(best.noStallCycles, fixed.noStallCycles * 1.0001)
            << "rows=" << rows;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FlexSweep,
    ::testing::Values(SweepCase{conv(48, 24, 30, 30, 3, 3), 2},
                      SweepCase{fc(500, 300), 16},
                      SweepCase{depthwise(60, 60, 60, 3, 3), 2},
                      SweepCase{pointwise(100, 700, 10, 10), 1}));
