/**
 * @file Tests for the online mapping service (src/serve/): workload
 * fingerprints, the fingerprint-keyed MappingStore (tiers, LRU bounds,
 * text persistence), mapping text serialization, and the MappingService
 * itself — per-request determinism under concurrency and queue
 * reordering, per-tenant fair admission, and the end-to-end Table V
 * warm-start effect across a save/load cycle.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/spec.h"
#include "m3e/factory.h"
#include "m3e/problem.h"
#include "serve/fingerprint.h"
#include "serve/mapping_store.h"
#include "serve/service.h"

using namespace magma;
using serve::Fingerprint;
using serve::MappingService;
using serve::MappingStore;
using serve::MapRequest;
using serve::MapResponse;
using serve::ServiceConfig;

namespace {

dnn::JobGroup
makeGroup(dnn::TaskType task, int size, uint64_t seed)
{
    dnn::WorkloadGenerator gen(seed);
    return gen.makeGroup(task, size);
}

sched::Mapping
randomMapping(int group_size, int num_accels, uint64_t seed)
{
    common::Rng rng(seed);
    return sched::Mapping::random(group_size, num_accels, rng);
}

/** A small S2 request with everything pinned down (spec-carried). */
MapRequest
baseRequest(uint64_t seed)
{
    MapRequest req;
    req.problem.task = dnn::TaskType::Mix;
    req.problem.groupSize = 12;
    req.problem.workloadSeed = seed;
    req.problem.setting = accel::Setting::S2;
    req.problem.systemBwGbps = 4.0;
    req.search.sampleBudget = 300;
    req.search.seed = seed;
    return req;
}

}  // namespace

// ------------------------------------------------- mapping text form ---

TEST(MappingText, RoundTripsBitwise)
{
    sched::Mapping m = randomMapping(17, 4, 3);
    m.priority[0] = 1.0 / 3.0;
    m.priority[1] = 0.1 + 0.2;  // classic non-representable sum
    m.priority[2] = 1e-17;
    sched::Mapping back = sched::Mapping::fromText(m.toText());
    EXPECT_EQ(back, m);
}

TEST(MappingText, EmptyMappingRoundTrips)
{
    sched::Mapping m;
    EXPECT_EQ(sched::Mapping::fromText(m.toText()), m);
}

TEST(MappingText, RejectsGarbage)
{
    EXPECT_THROW(sched::Mapping::fromText(""), std::invalid_argument);
    EXPECT_THROW(sched::Mapping::fromText("-1"), std::invalid_argument);
    EXPECT_THROW(sched::Mapping::fromText("2 0 1 0.5"),
                 std::invalid_argument);
    EXPECT_THROW(sched::Mapping::fromText("2 0 x 0.5 0.5"),
                 std::invalid_argument);
}

// ---------------------------------------------------- fingerprinting ---

TEST(Fingerprint, DeterministicAndSensitive)
{
    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    accel::Platform s4 = accel::makeSetting(accel::Setting::S4, 4.0);
    dnn::JobGroup g = makeGroup(dnn::TaskType::Mix, 16, 5);

    Fingerprint a = serve::fingerprintOf(g, s2);
    Fingerprint b = serve::fingerprintOf(makeGroup(dnn::TaskType::Mix, 16,
                                                   5),
                                         s2);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.coarse, b.coarse);

    // Platform changes both tiers.
    EXPECT_NE(a.key, serve::fingerprintOf(g, s4).key);
    EXPECT_NE(a.coarse, serve::fingerprintOf(g, s4).coarse);

    // A different task distribution changes the coarse tier.
    dnn::JobGroup lang = makeGroup(dnn::TaskType::Language, 16, 5);
    EXPECT_NE(a.coarse, serve::fingerprintOf(lang, s2).coarse);

    // Bandwidth regime and objective change BOTH tiers: mappings and
    // fitness values are not comparable across them.
    accel::Platform s2_slow = accel::makeSetting(accel::Setting::S2, 1.0);
    EXPECT_NE(a.key, serve::fingerprintOf(g, s2_slow).key);
    EXPECT_NE(a.coarse, serve::fingerprintOf(g, s2_slow).coarse);
    Fingerprint energy =
        serve::fingerprintOf(g, s2, sched::Objective::Energy);
    EXPECT_NE(a.key, energy.key);
    EXPECT_NE(a.coarse, energy.coarse);

    // Keys are single whitespace-free tokens (store-format requirement).
    EXPECT_EQ(a.key.find(' '), std::string::npos);
    EXPECT_EQ(a.key.find('\t'), std::string::npos);
}

TEST(Fingerprint, ProblemSpecOverloadMatchesPlatformOverload)
{
    // The spec overload (what MapRequest-carried specs key the store by)
    // must equal fingerprinting the platform the spec describes.
    api::ProblemSpec spec;
    spec.setting = accel::Setting::S2;
    spec.systemBwGbps = 4.0;
    dnn::JobGroup g = makeGroup(dnn::TaskType::Mix, 16, 5);

    Fingerprint via_spec =
        serve::fingerprintOf(g, spec, sched::Objective::Energy);
    Fingerprint via_platform = serve::fingerprintOf(
        g, api::buildPlatform(spec), sched::Objective::Energy);
    EXPECT_EQ(via_spec.key, via_platform.key);
    EXPECT_EQ(via_spec.coarse, via_platform.coarse);

    // The flexible flag changes the platform and with it both tiers.
    api::ProblemSpec flex = spec;
    flex.flexible = true;
    EXPECT_NE(serve::fingerprintOf(g, flex).key, via_spec.key);
}

TEST(Fingerprint, SameDistributionSharesCoarseTier)
{
    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    Fingerprint a =
        serve::fingerprintOf(makeGroup(dnn::TaskType::Vision, 16, 1), s2);
    Fingerprint b =
        serve::fingerprintOf(makeGroup(dnn::TaskType::Vision, 16, 2), s2);
    EXPECT_EQ(a.coarse, b.coarse);
}

// ------------------------------------------------------ MappingStore ---

TEST(MappingStore, ExactThenCoarseThenMiss)
{
    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    dnn::JobGroup g1 = makeGroup(dnn::TaskType::Mix, 12, 1);
    dnn::JobGroup g2 = makeGroup(dnn::TaskType::Mix, 12, 2);
    dnn::JobGroup lang = makeGroup(dnn::TaskType::Language, 12, 1);
    Fingerprint f1 = serve::fingerprintOf(g1, s2);
    Fingerprint f2 = serve::fingerprintOf(g2, s2);
    Fingerprint fl = serve::fingerprintOf(lang, s2);
    ASSERT_NE(f1.key, f2.key);  // independent draws differ in composition
    ASSERT_EQ(f1.coarse, f2.coarse);

    MappingStore store;
    sched::Mapping m = randomMapping(12, s2.numSubAccels(), 7);
    EXPECT_TRUE(store.update(f1, g1.task, m, g1, 100.0, 500));

    auto exact = store.lookup(f1);
    ASSERT_TRUE(exact.has_value());
    EXPECT_TRUE(exact->exact);
    EXPECT_EQ(exact->entry.mapping, m);
    EXPECT_EQ(exact->entry.fitness, 100.0);
    EXPECT_EQ(exact->entry.group.size(), 12);

    auto coarse = store.lookup(f2);
    ASSERT_TRUE(coarse.has_value());
    EXPECT_FALSE(coarse->exact);
    EXPECT_EQ(coarse->entry.key, f1.key);

    EXPECT_FALSE(store.lookup(fl).has_value());

    serve::StoreStats s = store.stats();
    EXPECT_EQ(s.lookups, 3);
    EXPECT_EQ(s.exactHits, 1);
    EXPECT_EQ(s.coarseHits, 1);
    EXPECT_EQ(s.misses, 1);
    EXPECT_EQ(s.entries, 1);
}

TEST(MappingStore, CoarseFallbackPicksBestFitness)
{
    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    dnn::JobGroup g1 = makeGroup(dnn::TaskType::Mix, 12, 1);
    dnn::JobGroup g2 = makeGroup(dnn::TaskType::Mix, 12, 2);
    dnn::JobGroup g3 = makeGroup(dnn::TaskType::Mix, 12, 3);
    Fingerprint f1 = serve::fingerprintOf(g1, s2);
    Fingerprint f2 = serve::fingerprintOf(g2, s2);
    Fingerprint f3 = serve::fingerprintOf(g3, s2);
    ASSERT_NE(f1.key, f3.key);
    ASSERT_NE(f2.key, f3.key);

    MappingStore store;
    store.update(f1, g1.task, randomMapping(12, 4, 1), g1, 50.0, 100);
    store.update(f2, g2.task, randomMapping(12, 4, 2), g2, 80.0, 100);

    auto hit = store.lookup(f3);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->exact);
    EXPECT_EQ(hit->entry.key, f2.key);  // higher fitness wins
}

TEST(MappingStore, WriteBackKeepsBetterSolution)
{
    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    dnn::JobGroup g = makeGroup(dnn::TaskType::Mix, 12, 1);
    Fingerprint f = serve::fingerprintOf(g, s2);
    sched::Mapping good = randomMapping(12, 4, 1);
    sched::Mapping worse = randomMapping(12, 4, 2);
    sched::Mapping better = randomMapping(12, 4, 3);

    MappingStore store;
    EXPECT_TRUE(store.update(f, g.task, good, g, 100.0, 10));
    EXPECT_FALSE(store.update(f, g.task, worse, g, 90.0, 10));
    EXPECT_EQ(store.lookup(f)->entry.mapping, good);
    EXPECT_TRUE(store.update(f, g.task, better, g, 110.0, 10));
    EXPECT_EQ(store.lookup(f)->entry.mapping, better);

    serve::StoreStats s = store.stats();
    EXPECT_EQ(s.inserts, 1);
    EXPECT_EQ(s.improvements, 1);
    EXPECT_EQ(s.rejects, 1);
    // All three write-backs invested samples on this workload.
    EXPECT_EQ(store.lookup(f)->entry.samplesInvested, 30);
}

TEST(MappingStore, LruEvictionPastCapacity)
{
    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    MappingStore store(/*capacity=*/2, /*shards=*/2);

    dnn::JobGroup g1 = makeGroup(dnn::TaskType::Vision, 8, 1);
    dnn::JobGroup g2 = makeGroup(dnn::TaskType::Language, 8, 1);
    dnn::JobGroup g3 = makeGroup(dnn::TaskType::Recommendation, 8, 1);
    Fingerprint f1 = serve::fingerprintOf(g1, s2);
    Fingerprint f2 = serve::fingerprintOf(g2, s2);
    Fingerprint f3 = serve::fingerprintOf(g3, s2);

    store.update(f1, g1.task, randomMapping(8, 4, 1), g1, 1.0, 0);
    store.update(f2, g2.task, randomMapping(8, 4, 2), g2, 1.0, 0);
    store.lookup(f1);  // f1 is now more recently used than f2
    store.update(f3, g3.task, randomMapping(8, 4, 3), g3, 1.0, 0);

    EXPECT_EQ(store.size(), 2);
    EXPECT_EQ(store.stats().evictions, 1);
    EXPECT_TRUE(store.lookup(f1).has_value());   // survived
    EXPECT_TRUE(store.lookup(f3).has_value());   // newest
    // f2 (LRU) was evicted; Language shares no coarse tier with f1/f3.
    EXPECT_FALSE(store.lookup(f2).has_value());
}

TEST(MappingStore, SaveLoadRoundTripsBitwise)
{
    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    MappingStore store;
    std::vector<Fingerprint> fps;
    std::vector<sched::Mapping> mappings;
    for (int i = 0; i < 3; ++i) {
        dnn::JobGroup g = makeGroup(dnn::TaskType::Mix, 10 + i, 40 + i);
        Fingerprint f = serve::fingerprintOf(g, s2);
        sched::Mapping m = randomMapping(10 + i, s2.numSubAccels(), i);
        store.update(f, g.task, m, g, 10.0 + i / 3.0, 100 * i);
        fps.push_back(f);
        mappings.push_back(m);
    }

    std::stringstream buf;
    store.save(buf);

    MappingStore reloaded;
    reloaded.load(buf);
    EXPECT_EQ(reloaded.size(), 3);
    for (size_t i = 0; i < fps.size(); ++i) {
        auto hit = reloaded.lookup(fps[i]);
        ASSERT_TRUE(hit.has_value()) << "entry " << i;
        EXPECT_TRUE(hit->exact);
        EXPECT_EQ(hit->entry.mapping, mappings[i]);  // bitwise
        EXPECT_EQ(hit->entry.fitness, 10.0 + i / 3.0);
        EXPECT_EQ(hit->entry.samplesInvested,
                  static_cast<int64_t>(100 * i));
        EXPECT_EQ(hit->entry.group.size(), static_cast<int>(10 + i));
    }

    // Save → load → save is byte-identical (deterministic format).
    std::stringstream buf2;
    reloaded.save(buf2);
    std::stringstream buf3;
    store.save(buf3);
    EXPECT_EQ(buf2.str(), buf3.str());
}

TEST(MappingStore, HashOrderCannotReachOutputs)
{
    // Regression for the unordered-iteration audit: the store's three
    // map-iteration sites (coarse scan, LRU victim scan, save) must be
    // independent of hash/shard layout. Build the same content with
    // different insertion orders AND different shard counts; every
    // observable — saved text, coarse winner, eviction survivor set —
    // must be identical.
    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    std::vector<Fingerprint> fps;
    std::vector<sched::Mapping> mappings;
    std::vector<dnn::JobGroup> groups;
    for (int i = 0; i < 8; ++i) {
        dnn::JobGroup g = makeGroup(dnn::TaskType::Mix, 8, 70 + i);
        fps.push_back(serve::fingerprintOf(g, s2));
        mappings.push_back(randomMapping(8, s2.numSubAccels(), i));
        groups.push_back(g);
    }
    // Same fitness for several keys so tie-breaks are exercised.
    auto fitness = [](int i) { return 5.0 + (i % 3); };

    MappingStore forward(/*capacity=*/64, /*shards=*/8);
    for (int i = 0; i < 8; ++i)
        forward.update(fps[i], groups[i].task, mappings[i], groups[i],
                       fitness(i), 10);
    MappingStore backward(/*capacity=*/64, /*shards=*/3);
    for (int i = 7; i >= 0; --i)
        backward.update(fps[i], groups[i].task, mappings[i], groups[i],
                        fitness(i), 10);

    std::stringstream a, b;
    forward.save(a);
    backward.save(b);
    EXPECT_EQ(a.str(), b.str());

    // Coarse-tier winner: same fingerprint distribution -> same coarse
    // key; the highest-fitness (tie: lowest key) entry must win in both
    // stores regardless of shard layout.
    dnn::JobGroup probe = makeGroup(dnn::TaskType::Mix, 8, 99);
    Fingerprint pf = serve::fingerprintOf(probe, s2);
    auto ha = forward.lookup(pf);
    auto hb = backward.lookup(pf);
    ASSERT_TRUE(ha.has_value());
    ASSERT_TRUE(hb.has_value());
    EXPECT_FALSE(ha->exact);
    EXPECT_EQ(ha->entry.key, hb->entry.key);
    EXPECT_EQ(ha->entry.mapping, hb->entry.mapping);

    // Eviction: shrink both to the same capacity; the survivor sets
    // (and so the saved text) must still agree — the victim scan's
    // (lastUsed, key) order is shard-independent. Touch entries in the
    // same sequence to give both stores identical LRU clocks.
    MappingStore small_a(/*capacity=*/4, /*shards=*/8);
    MappingStore small_b(/*capacity=*/4, /*shards=*/2);
    for (int i = 0; i < 8; ++i) {
        small_a.update(fps[i], groups[i].task, mappings[i], groups[i],
                       fitness(i), 10);
        small_b.update(fps[i], groups[i].task, mappings[i], groups[i],
                       fitness(i), 10);
    }
    EXPECT_EQ(small_a.size(), 4);
    std::stringstream sa, sb;
    small_a.save(sa);
    small_b.save(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(MappingStore, LoadRejectsGarbageAndLeavesContentUntouched)
{
    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    dnn::JobGroup g = makeGroup(dnn::TaskType::Mix, 8, 1);
    Fingerprint f = serve::fingerprintOf(g, s2);

    MappingStore store;
    store.update(f, g.task, randomMapping(8, 4, 1), g, 5.0, 10);

    std::stringstream bad("not-a-store v1 1\n");
    EXPECT_THROW(store.load(bad), std::invalid_argument);
    std::stringstream truncated("magma-store-snapshot v1 1\nentry\n");
    EXPECT_THROW(store.load(truncated), std::invalid_argument);

    // A failed load is atomic: the pre-existing entry survives.
    EXPECT_EQ(store.size(), 1);
    EXPECT_TRUE(store.lookup(f).has_value());
}

// ------------------------------------------- crash-safe persistence ---

namespace {

/** Read a whole file as raw bytes. */
std::string
slurp(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** The store's canonical snapshot text (for state comparisons). */
std::string
saveText(const MappingStore& store)
{
    std::ostringstream os;
    store.save(os);
    return os.str();
}

}  // namespace

TEST(MappingStoreLog, RecoveryAtEveryTruncationYieldsPrecrashPrefix)
{
    // The kill -9 contract, exhaustively: truncate the append-log at
    // EVERY byte offset; recovery must yield exactly the state at the
    // last complete record boundary — never a crash, never a torn entry.
    const std::string log_path = "serve_store_log_trunc_test.log";
    const std::string cut_path = log_path + ".cut";
    std::remove(log_path.c_str());

    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    dnn::JobGroup g1 = makeGroup(dnn::TaskType::Vision, 8, 1);
    dnn::JobGroup g2 = makeGroup(dnn::TaskType::Language, 8, 1);
    dnn::JobGroup g3 = makeGroup(dnn::TaskType::Recommendation, 8, 1);
    Fingerprint f1 = serve::fingerprintOf(g1, s2);
    Fingerprint f2 = serve::fingerprintOf(g2, s2);
    Fingerprint f3 = serve::fingerprintOf(g3, s2);

    // Build a log of 4 put records (3 inserts + 1 improvement), noting
    // the store's canonical text at every record boundary.
    MappingStore store;
    ASSERT_TRUE(store.openLog(log_path));
    std::vector<std::pair<size_t, std::string>> boundaries;
    boundaries.emplace_back(0, saveText(store));  // torn header = empty
    auto mark = [&]() {
        boundaries.emplace_back(slurp(log_path).size(), saveText(store));
    };
    mark();  // header written, no records yet
    store.update(f1, g1.task, randomMapping(8, 4, 1), g1, 10.0, 5);
    mark();
    store.update(f2, g2.task, randomMapping(8, 4, 2), g2, 20.0, 5);
    mark();
    store.update(f1, g1.task, randomMapping(8, 4, 3), g1, 30.0, 5);
    mark();  // improvement: same key, better fitness
    store.update(f3, g3.task, randomMapping(8, 4, 4), g3, 15.0, 5);
    mark();
    EXPECT_EQ(store.logRecords(), 4);
    store.closeLog();

    const std::string full = slurp(log_path);
    ASSERT_EQ(full.size(), boundaries.back().first);

    for (size_t len = 0; len <= full.size(); ++len) {
        {
            std::ofstream os(cut_path,
                             std::ios::binary | std::ios::trunc);
            os.write(full.data(), static_cast<std::streamsize>(len));
        }
        const std::string* expect = nullptr;
        for (const auto& [at, text] : boundaries)
            if (at <= len)
                expect = &text;
        MappingStore recovered;
        recovered.recover("serve_store_log_no_such_snapshot", cut_path);
        EXPECT_EQ(saveText(recovered), *expect)
            << "log truncated at byte " << len;
    }
    std::remove(log_path.c_str());
    std::remove(cut_path.c_str());
}

TEST(MappingStoreLog, CompactFoldsLogIntoLoadableSnapshot)
{
    const std::string snap = "serve_store_compact_test.snap";
    const std::string log_path = snap + ".log";
    std::remove(snap.c_str());
    std::remove(log_path.c_str());

    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    dnn::JobGroup g1 = makeGroup(dnn::TaskType::Vision, 8, 1);
    dnn::JobGroup g2 = makeGroup(dnn::TaskType::Language, 8, 1);
    dnn::JobGroup g3 = makeGroup(dnn::TaskType::Recommendation, 8, 1);

    MappingStore store;
    ASSERT_TRUE(store.openLog(log_path));
    store.update(serve::fingerprintOf(g1, s2), g1.task,
                 randomMapping(8, 4, 1), g1, 10.0, 5);
    store.update(serve::fingerprintOf(g2, s2), g2.task,
                 randomMapping(8, 4, 2), g2, 20.0, 5);
    EXPECT_EQ(store.logRecords(), 2);

    ASSERT_TRUE(store.compact(snap));
    EXPECT_EQ(store.logRecords(), 0);
    EXPECT_EQ(slurp(log_path), "magma-store-log v1\n");  // just a header

    // The compacted snapshot is an ordinary magma-store-snapshot: it
    // loads through loadFile and reproduces the content bitwise.
    MappingStore reloaded;
    ASSERT_TRUE(reloaded.loadFile(snap));
    EXPECT_EQ(saveText(reloaded), saveText(store));

    // Post-compaction appends land in the fresh log; snapshot + log
    // recover to the live state.
    store.update(serve::fingerprintOf(g3, s2), g3.task,
                 randomMapping(8, 4, 3), g3, 15.0, 5);
    EXPECT_EQ(store.logRecords(), 1);
    MappingStore recovered;
    EXPECT_EQ(recovered.recover(snap, log_path), 1);
    EXPECT_EQ(saveText(recovered), saveText(store));
    store.closeLog();

    std::remove(snap.c_str());
    std::remove(log_path.c_str());
}

TEST(MappingStoreLog, EvictionRecordsReplayAndConverge)
{
    const std::string log_path = "serve_store_log_evict_test.log";
    std::remove(log_path.c_str());

    accel::Platform s2 = accel::makeSetting(accel::Setting::S2, 4.0);
    dnn::JobGroup g1 = makeGroup(dnn::TaskType::Vision, 8, 1);
    dnn::JobGroup g2 = makeGroup(dnn::TaskType::Language, 8, 1);
    dnn::JobGroup g3 = makeGroup(dnn::TaskType::Recommendation, 8, 1);

    MappingStore store(/*capacity=*/2, /*shards=*/2);
    ASSERT_TRUE(store.openLog(log_path));
    store.update(serve::fingerprintOf(g1, s2), g1.task,
                 randomMapping(8, 4, 1), g1, 10.0, 5);
    store.update(serve::fingerprintOf(g2, s2), g2.task,
                 randomMapping(8, 4, 2), g2, 20.0, 5);
    store.update(serve::fingerprintOf(g3, s2), g3.task,
                 randomMapping(8, 4, 3), g3, 15.0, 5);
    EXPECT_EQ(store.logRecords(), 4);  // 3 puts + the LRU evict
    store.closeLog();

    // Full replay into a same-capacity store reproduces the post-evict
    // content exactly.
    MappingStore recovered(/*capacity=*/2, /*shards=*/4);
    recovered.recover("serve_store_log_no_such_snapshot", log_path);
    EXPECT_EQ(saveText(recovered), saveText(store));

    // Tearing the trailing evict record does not matter: replaying the
    // puts through the normal update path re-runs capacity enforcement,
    // so the replayed store converges on the same survivors anyway.
    const std::string full = slurp(log_path);
    {
        std::ofstream os(log_path, std::ios::binary | std::ios::trunc);
        os.write(full.data(),
                 static_cast<std::streamsize>(full.size() - 3));
    }
    MappingStore torn(/*capacity=*/2, /*shards=*/2);
    torn.recover("serve_store_log_no_such_snapshot", log_path);
    EXPECT_EQ(saveText(torn), saveText(store));

    std::remove(log_path.c_str());
}

// ---------------------------------------------------- MappingService ---

/** Serve `reqs` one at a time on one lane and return the responses. */
static std::vector<MapResponse>
serveSerially(const std::vector<MapRequest>& reqs)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    MappingService service(cfg);
    std::vector<MapResponse> out;
    for (const MapRequest& r : reqs) {
        auto f = service.submit(r);
        out.push_back(f.get());
    }
    service.stop();
    return out;
}

TEST(MappingService, ConcurrentMatchesSerialBitwiseInAnyOrder)
{
    // Acceptance criterion (a): fixed seeds → bitwise identical mappings
    // whether requests run serially or on 4 lanes, in any queue order.
    std::vector<MapRequest> reqs;
    for (uint64_t i = 0; i < 8; ++i) {
        MapRequest r = baseRequest(/*seed=*/100 + i);
        r.tenant = "tenant-" + std::to_string(i % 3);
        r.search.warmStart = false;  // isolate from store-order effects
        r.writeBack = false;
        reqs.push_back(r);
    }
    std::vector<MapResponse> serial = serveSerially(reqs);

    ServiceConfig cfg;
    cfg.workers = 4;
    MappingService service(cfg);
    // Reversed submission order + scrambled priorities: admission order
    // changes, results must not.
    std::vector<std::future<MapResponse>> futures(reqs.size());
    for (size_t i = reqs.size(); i-- > 0;) {
        MapRequest r = reqs[i];
        r.priority = static_cast<int>(i % 2);
        futures[i] = service.submit(std::move(r));
    }
    for (size_t i = 0; i < reqs.size(); ++i) {
        MapResponse got = futures[i].get();
        EXPECT_EQ(got.best, serial[i].best) << "request " << i;
        EXPECT_EQ(got.bestFitness, serial[i].bestFitness) << "request "
                                                          << i;
        EXPECT_EQ(got.samplesUsed, serial[i].samplesUsed) << "request "
                                                          << i;
    }
    service.stop();
}

TEST(MappingService, WarmRequestsDeterministicAgainstFrozenStore)
{
    // Per-request determinism also holds for warm requests when every
    // request sees the same store view (writeBack off → frozen store).
    MapRequest seed_req = baseRequest(1);
    std::vector<MapRequest> reqs;
    for (uint64_t i = 0; i < 4; ++i) {
        MapRequest r = baseRequest(/*seed=*/200 + i);
        r.writeBack = false;
        reqs.push_back(r);
    }

    auto runWith = [&](int workers, bool reversed) {
        ServiceConfig cfg;
        cfg.workers = workers;
        MappingService service(cfg);
        service.submit(seed_req).get();  // populate the store (writeBack)
        service.drain();
        std::vector<std::future<MapResponse>> futures(reqs.size());
        if (reversed) {
            for (size_t i = reqs.size(); i-- > 0;)
                futures[i] = service.submit(reqs[i]);
        } else {
            for (size_t i = 0; i < reqs.size(); ++i)
                futures[i] = service.submit(reqs[i]);
        }
        std::vector<MapResponse> out;
        for (auto& f : futures)
            out.push_back(f.get());
        service.stop();
        return out;
    };

    std::vector<MapResponse> a = runWith(1, false);
    std::vector<MapResponse> b = runWith(4, true);
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_TRUE(b[i].warmStart) << "request " << i;
        EXPECT_EQ(b[i].best, a[i].best) << "request " << i;
        EXPECT_EQ(b[i].bestFitness, a[i].bestFitness) << "request " << i;
        EXPECT_EQ(b[i].samplesUsed, a[i].samplesUsed) << "request " << i;
    }
}

TEST(MappingService, PerTenantFairAdmission)
{
    // One lane, admission deferred: tenant A floods 4 requests before B's
    // 2 arrive; fair admission must interleave A,B,A,B,A,A.
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.autoStart = false;
    MappingService service(cfg);

    std::vector<std::future<MapResponse>> futures;
    std::vector<std::string> tenants = {"A", "A", "A", "A", "B", "B"};
    for (size_t i = 0; i < tenants.size(); ++i) {
        MapRequest r = baseRequest(10 + i);
        r.tenant = tenants[i];
        r.search.sampleBudget = 60;
        r.search.warmStart = false;
        r.writeBack = false;
        futures.push_back(service.submit(std::move(r)));
    }
    service.start();

    // Map each request to its admission index.
    std::vector<int64_t> order;
    for (auto& f : futures)
        order.push_back(f.get().serveOrder);
    service.stop();

    // tenants:      A0 A1 A2 A3 B0 B1
    // fair order:   0  2  4  5  1  3
    EXPECT_EQ(order, (std::vector<int64_t>{0, 2, 4, 5, 1, 3}));
}

TEST(MappingService, PriorityLevelsBeforeFairness)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.autoStart = false;
    MappingService service(cfg);

    std::vector<std::future<MapResponse>> futures;
    for (int i = 0; i < 3; ++i) {
        MapRequest r = baseRequest(20 + i);
        r.tenant = "A";
        r.priority = 1;
        r.search.sampleBudget = 60;
        r.search.warmStart = false;
        futures.push_back(service.submit(std::move(r)));
    }
    MapRequest urgent = baseRequest(30);
    urgent.tenant = "B";
    urgent.priority = 0;
    urgent.search.sampleBudget = 60;
    urgent.search.warmStart = false;
    futures.push_back(service.submit(std::move(urgent)));
    service.start();

    std::vector<int64_t> order;
    for (auto& f : futures)
        order.push_back(f.get().serveOrder);
    service.stop();

    EXPECT_EQ(order.back(), 0) << "priority-0 request must be served "
                                  "first despite arriving last";
}

TEST(MappingService, WarmStartAcrossReloadReachesColdQualityAtQuarterBudget)
{
    // Acceptance criterion (b): store save→load round-trips and a warm
    // request after reload reaches cold-search quality with <= 25% of the
    // cold sample budget on a Table III setting (the Table V effect,
    // end-to-end through the service).
    const std::string path = "serve_store_roundtrip_test.txt";
    std::remove(path.c_str());

    MapRequest cold = baseRequest(/*seed=*/7);
    cold.problem.groupSize = 16;
    cold.search.sampleBudget = 2000;

    MapResponse cold_resp;
    {
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.storePath = path;
        MappingService service(cfg);
        cold_resp = service.submit(cold).get();
        EXPECT_FALSE(cold_resp.warmStart);
        service.stop();  // persists the store
    }

    {
        // Fresh "process": the store comes back from disk only.
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.storePath = path;
        MappingService service(cfg);
        EXPECT_EQ(service.store().size(), 1);

        MapRequest warm = cold;  // same workload spec, same seed
        warm.warmBudget = cold.search.sampleBudget / 4;
        MapResponse warm_resp = service.submit(warm).get();

        EXPECT_TRUE(warm_resp.warmStart);
        EXPECT_TRUE(warm_resp.exactHit);
        EXPECT_LE(warm_resp.samplesUsed, cold.search.sampleBudget / 4);
        // The transferred seed is the stored cold solution verbatim, so
        // refinement can only match or improve it.
        EXPECT_GE(warm_resp.bestFitness, cold_resp.bestFitness);
        EXPECT_GT(warm_resp.trf0Fitness, 0.0);
        service.stop();
    }
    std::remove(path.c_str());
}

TEST(MappingService, ConcurrentTenantsCompoundStoreKnowledge)
{
    // Write-backs from concurrent lanes land in one shared store: after a
    // burst of same-task requests, later requests hit warm.
    ServiceConfig cfg;
    cfg.workers = 4;
    MappingService service(cfg);

    std::vector<std::future<MapResponse>> futures;
    for (uint64_t i = 0; i < 6; ++i) {
        MapRequest r = baseRequest(300 + i);
        r.tenant = "tenant-" + std::to_string(i % 2);
        futures.push_back(service.submit(std::move(r)));
    }
    for (auto& f : futures)
        f.get();
    service.drain();

    // Same distribution again: every request must now find the store
    // populated (exact or coarse tier).
    MapRequest again = baseRequest(999);
    MapResponse resp = service.submit(again).get();
    EXPECT_TRUE(resp.warmStart);
    EXPECT_LT(resp.samplesUsed, again.search.sampleBudget);

    serve::ServiceStats s = service.stats();
    EXPECT_EQ(s.served, 7);
    EXPECT_GT(s.warmServed, 0);
    EXPECT_GT(s.samplesSaved, 0);
    service.stop();
}

TEST(MappingService, HonorsSearchSpecMethodBitwise)
{
    // The request's SearchSpec.method selects the optimizer: a stdGA
    // request must reproduce the hand-wired stdGA search bitwise.
    MapRequest r = baseRequest(/*seed=*/55);
    r.search.method = "std-ga";  // aliases resolve too
    r.search.warmStart = false;
    r.writeBack = false;

    ServiceConfig cfg;
    cfg.workers = 1;
    MappingService service(cfg);
    MapResponse resp = service.submit(r).get();
    service.stop();

    auto problem = m3e::makeProblem(r.problem.task, r.problem.setting,
                                    r.problem.systemBwGbps,
                                    r.problem.groupSize,
                                    r.problem.workloadSeed);
    auto optimizer = m3e::makeOptimizer(m3e::Method::StdGa, r.search.seed);
    opt::SearchOptions opts;
    opts.sampleBudget = r.search.sampleBudget;
    opt::SearchResult manual =
        optimizer->search(problem->evaluator(), opts);
    EXPECT_EQ(resp.best, manual.best);
    EXPECT_EQ(resp.bestFitness, manual.bestFitness);
    EXPECT_EQ(resp.samplesUsed, manual.samplesUsed);
}

TEST(MappingService, UnknownMethodFailsTheRequestFuture)
{
    MapRequest r = baseRequest(1);
    r.search.method = "MAGMAA";

    ServiceConfig cfg;
    cfg.workers = 1;
    MappingService service(cfg);
    auto future = service.submit(std::move(r));
    EXPECT_THROW(future.get(), std::invalid_argument);
    serve::ServiceStats s = service.stats();
    EXPECT_EQ(s.failed, 1);
    EXPECT_EQ(s.served, 0);
    service.stop();
}

TEST(MappingService, MultiObjectiveSpecFailsTheRequestFuture)
{
    // objectives= is an offline (api::Runner) feature: the serve
    // response carries one mapping, not a front, so the request must
    // fail loudly rather than silently run a scalar search.
    MapRequest r = baseRequest(1);
    r.search.method = "nsga2";
    r.search.objectives = {sched::Objective::Throughput,
                           sched::Objective::Energy};

    ServiceConfig cfg;
    cfg.workers = 1;
    MappingService service(cfg);
    auto future = service.submit(std::move(r));
    EXPECT_THROW(future.get(), std::invalid_argument);
    serve::ServiceStats s = service.stats();
    EXPECT_EQ(s.failed, 1);
    service.stop();
}

TEST(MapRequestDefaults, ColdBudgetStaysAtServeDefault)
{
    // The serve-side default must not silently inherit SearchSpec's
    // offline 10K budget (a 5x cost regression for default requests).
    MapRequest r;
    EXPECT_EQ(r.search.sampleBudget, 2000);
    EXPECT_EQ(r.search.method, "MAGMA");
    EXPECT_TRUE(r.search.warmStart);
}

TEST(MappingService, ExplicitGroupRequestAndStats)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    MappingService service(cfg);

    MapRequest r;
    r.group = makeGroup(dnn::TaskType::Vision, 10, 77);
    r.problem.task = dnn::TaskType::Vision;
    r.problem.setting = accel::Setting::S1;
    r.problem.systemBwGbps = 8.0;
    r.search.sampleBudget = 200;
    MapResponse resp = service.submit(r).get();
    EXPECT_EQ(resp.best.size(), 10);
    EXPECT_GT(resp.bestFitness, 0.0);
    EXPECT_FALSE(resp.fingerprint.empty());

    serve::ServiceStats s = service.stats();
    EXPECT_EQ(s.submitted, 1);
    EXPECT_EQ(s.served, 1);
    EXPECT_EQ(s.queueDepth, 0);
    service.stop();
    EXPECT_THROW(service.submit(r), std::runtime_error);
}

// ------------------------------------------------ production controls ---

namespace {

/** A pinned-down request for the coalescing/shedding tests: no store
 * interaction, small budget, everything deterministic. */
MapRequest
controlRequest(uint64_t seed, int priority = 0)
{
    MapRequest r = baseRequest(seed);
    r.priority = priority;
    r.search.sampleBudget = 60;
    r.search.warmStart = false;
    r.writeBack = false;
    return r;
}

}  // namespace

TEST(MappingService, CoalescesIdenticalInflightRequests)
{
    // N identical concurrent requests (differing only in seed and
    // tenant — neither reaches the coalescing key) run ONE search: the
    // first arrival leads, everyone else becomes a follower carrying the
    // leader's mapping bitwise.
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.autoStart = false;
    cfg.coalesce = true;
    MappingService service(cfg);

    const int kN = 4;
    std::vector<std::future<MapResponse>> futures;
    for (int i = 0; i < kN; ++i) {
        MapRequest r = controlRequest(/*seed=*/400);  // same workload
        r.search.seed = 400 + i;  // the leader's seed wins
        r.tenant = "tenant-" + std::to_string(i % 2);
        futures.push_back(service.submit(std::move(r)));
    }
    service.start();

    std::vector<MapResponse> got;
    for (auto& f : futures)
        got.push_back(f.get());
    service.stop();

    EXPECT_FALSE(got[0].coalesced) << "first arrival must lead";
    int followers = 0;
    for (const MapResponse& r : got) {
        if (!r.coalesced)
            continue;
        ++followers;
        EXPECT_EQ(r.best, got[0].best);  // bitwise the leader's mapping
        EXPECT_EQ(r.bestFitness, got[0].bestFitness);
        EXPECT_EQ(r.samplesUsed, 0);  // followers spend nothing
    }
    EXPECT_EQ(followers, kN - 1);

    serve::ServiceStats s = service.stats();
    EXPECT_EQ(s.submitted, kN);
    EXPECT_EQ(s.served, kN);
    EXPECT_EQ(s.coalesced, kN - 1);
    EXPECT_EQ(s.shed, 0);
    EXPECT_EQ(s.samplesSpent, got[0].samplesUsed);  // one search total

    // Coalescing changes cost, not answers: the leader's result is the
    // plain single-request result for its seed.
    std::vector<MapResponse> serial =
        serveSerially({controlRequest(400)});
    EXPECT_EQ(got[0].best, serial[0].best);
    EXPECT_EQ(got[0].bestFitness, serial[0].bestFitness);
    EXPECT_EQ(got[0].samplesUsed, serial[0].samplesUsed);
}

TEST(MappingService, GlobalQueueBoundShedsOldestLowestPriority)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.autoStart = false;
    cfg.maxQueueDepth = 2;
    MappingService service(cfg);

    auto f0 = service.submit(controlRequest(500, /*priority=*/1));
    auto f1 = service.submit(controlRequest(501, /*priority=*/1));
    auto f2 = service.submit(controlRequest(502, /*priority=*/0));

    // The third submission overflows the bound; the oldest request of
    // the lowest-priority level (f0) is shed — its future resolves
    // immediately, before any worker runs.
    MapResponse shed = f0.get();
    EXPECT_TRUE(shed.shed);
    EXPECT_EQ(shed.samplesUsed, 0);

    service.start();
    EXPECT_FALSE(f1.get().shed);
    EXPECT_FALSE(f2.get().shed);
    service.stop();

    serve::ServiceStats s = service.stats();
    EXPECT_EQ(s.submitted, 3);
    EXPECT_EQ(s.shed, 1);
    EXPECT_EQ(s.served, 2);
}

TEST(MappingService, IncomingRequestShedWhenItIsTheLowestPriority)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.autoStart = false;
    cfg.maxQueueDepth = 1;
    MappingService service(cfg);

    auto f0 = service.submit(controlRequest(510, /*priority=*/0));
    auto f1 = service.submit(controlRequest(511, /*priority=*/1));

    // Nothing waiting is as low-priority as the overflow arrival, so the
    // arrival itself is shed rather than anything already admitted.
    EXPECT_TRUE(f1.get().shed);
    service.start();
    EXPECT_FALSE(f0.get().shed);
    service.stop();
    EXPECT_EQ(service.stats().shed, 1);
}

TEST(MappingService, PerPriorityLimitShedsOldestInLevelFreshestWins)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.autoStart = false;
    cfg.priorityDepthLimits[1] = 1;
    MappingService service(cfg);

    auto a = service.submit(controlRequest(520, /*priority=*/1));
    auto b = service.submit(controlRequest(521, /*priority=*/1));
    // Level 1 was full, so b's arrival sheds the oldest level-1 request
    // (a): within a level the freshest request wins.
    EXPECT_TRUE(a.get().shed);

    // Levels without a configured limit are unbounded.
    auto c = service.submit(controlRequest(522, /*priority=*/0));
    auto d = service.submit(controlRequest(523, /*priority=*/0));

    service.start();
    EXPECT_FALSE(b.get().shed);
    EXPECT_FALSE(c.get().shed);
    EXPECT_FALSE(d.get().shed);
    service.stop();

    serve::ServiceStats s = service.stats();
    EXPECT_EQ(s.shed, 1);
    EXPECT_EQ(s.served, 3);
}

TEST(MappingService, ShedLeaderCascadesToFollowers)
{
    // A follower holds no queue slot but shares its leader's fate: when
    // admission control sheds the leader, every follower is shed too.
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.autoStart = false;
    cfg.coalesce = true;
    cfg.maxQueueDepth = 1;
    MappingService service(cfg);

    MapRequest leader = controlRequest(530, /*priority=*/1);
    MapRequest follower = leader;  // identical: coalesces onto the leader
    auto fl = service.submit(std::move(leader));
    auto ff = service.submit(std::move(follower));

    // One queue slot used (the follower doesn't occupy one); a
    // higher-priority arrival overflows the bound and sheds the leader —
    // and with it the follower.
    auto fv = service.submit(controlRequest(531, /*priority=*/0));
    EXPECT_TRUE(fl.get().shed);
    EXPECT_TRUE(ff.get().shed);

    service.start();
    EXPECT_FALSE(fv.get().shed);
    service.stop();

    serve::ServiceStats s = service.stats();
    EXPECT_EQ(s.submitted, 3);
    EXPECT_EQ(s.shed, 2);
    EXPECT_EQ(s.served, 1);
}

TEST(MappingService, DeadlineExpiredRequestsShedAtDequeue)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.autoStart = false;
    MappingService service(cfg);

    MapRequest stale = controlRequest(540);
    stale.deadlineSeconds = 1e-6;  // expires while waiting for start()
    MapRequest fresh = controlRequest(541);  // no deadline: never sheds
    auto fs = service.submit(std::move(stale));
    auto ff = service.submit(std::move(fresh));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.start();

    MapResponse rs = fs.get();
    EXPECT_TRUE(rs.shed);
    EXPECT_GT(rs.waitSeconds, 0.0);
    EXPECT_FALSE(ff.get().shed);
    service.stop();

    serve::ServiceStats s = service.stats();
    EXPECT_EQ(s.shed, 1);
    EXPECT_EQ(s.served, 1);
}
