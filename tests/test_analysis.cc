/** @file Unit tests for analysis helpers: convergence, timeline, PCA
 * projection. */

#include <gtest/gtest.h>

#include "analysis/convergence.h"
#include "analysis/projection.h"
#include "analysis/timeline.h"
#include "m3e/problem.h"
#include "opt/random_search.h"

using namespace magma;

// --------------------------------------------------------- convergence ---

TEST(Convergence, ResampleEvenGrid)
{
    std::vector<double> curve;
    for (int i = 1; i <= 100; ++i)
        curve.push_back(i);
    std::vector<double> r = analysis::resampleCurve(curve, 4);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r[0], 25.0);
    EXPECT_DOUBLE_EQ(r[1], 50.0);
    EXPECT_DOUBLE_EQ(r[2], 75.0);
    EXPECT_DOUBLE_EQ(r[3], 100.0);
}

TEST(Convergence, ResampleEmptyAndShort)
{
    EXPECT_EQ(analysis::resampleCurve({}, 3),
              (std::vector<double>{0.0, 0.0, 0.0}));
    std::vector<double> r = analysis::resampleCurve({5.0}, 3);
    EXPECT_EQ(r, (std::vector<double>{5.0, 5.0, 5.0}));
}

TEST(Convergence, ResampleGridCounts)
{
    EXPECT_EQ(analysis::resampleGrid(1000, 4),
              (std::vector<int>{250, 500, 750, 1000}));
}

TEST(Convergence, SamplesToFraction)
{
    std::vector<double> curve = {1.0, 2.0, 5.0, 9.0, 10.0};
    EXPECT_EQ(analysis::samplesToFraction(curve, 0.5), 2);   // first >= 5
    EXPECT_EQ(analysis::samplesToFraction(curve, 1.0), 4);
    EXPECT_EQ(analysis::samplesToFraction({}, 0.5), -1);
}

// ------------------------------------------------------------ timeline ---

namespace {

std::unique_ptr<m3e::Problem>
timelineProblem()
{
    return m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 4.0, 20,
                            9);
}

}  // namespace

TEST(Timeline, GanttHasOneRowPerAccelAndTaskGlyphs)
{
    auto p = timelineProblem();
    common::Rng rng(1);
    sched::Mapping m =
        sched::Mapping::random(20, p->evaluator().numAccels(), rng);
    sched::ScheduleResult r = p->evaluator().evaluate(m, true);
    analysis::TimelineExporter tl(r, p->group(),
                                  p->evaluator().numAccels());
    std::string gantt = tl.renderGantt(60);
    int rows = 0;
    for (char c : gantt)
        if (c == '\n')
            ++rows;
    EXPECT_EQ(rows, p->evaluator().numAccels() + 1);  // + time axis
    // Glyphs restricted to task letters, '.', and frame characters.
    for (char c : gantt) {
        if (c == 'V' || c == 'L' || c == 'R')
            SUCCEED();
    }
    EXPECT_NE(gantt.find("S-Accel-0"), std::string::npos);
}

TEST(Timeline, BwRowsMatchEvents)
{
    auto p = timelineProblem();
    common::Rng rng(2);
    sched::Mapping m =
        sched::Mapping::random(20, p->evaluator().numAccels(), rng);
    sched::ScheduleResult r = p->evaluator().evaluate(m, true);
    analysis::TimelineExporter tl(r, p->group(),
                                  p->evaluator().numAccels());
    auto rows = tl.bwRows();
    EXPECT_EQ(rows.size(), r.events.size());
    for (const auto& row : rows)
        EXPECT_EQ(row.size(), 6u);
}

TEST(Timeline, BwProfileRendersPeak)
{
    auto p = timelineProblem();
    common::Rng rng(3);
    sched::Mapping m =
        sched::Mapping::random(20, p->evaluator().numAccels(), rng);
    sched::ScheduleResult r = p->evaluator().evaluate(m, true);
    analysis::TimelineExporter tl(r, p->group(),
                                  p->evaluator().numAccels());
    std::string profile = tl.renderBwProfile(50);
    EXPECT_NE(profile.find("peak granted BW"), std::string::npos);
    EXPECT_NE(profile.find('#'), std::string::npos);
}

TEST(Timeline, MakespanAccessor)
{
    auto p = timelineProblem();
    common::Rng rng(4);
    sched::Mapping m =
        sched::Mapping::random(20, p->evaluator().numAccels(), rng);
    sched::ScheduleResult r = p->evaluator().evaluate(m, true);
    analysis::TimelineExporter tl(r, p->group(),
                                  p->evaluator().numAccels());
    EXPECT_DOUBLE_EQ(tl.makespan(), r.makespanSeconds);
}

// ----------------------------------------------------------- projector ---

TEST(Projector, ProjectsAllSeriesTo2D)
{
    auto p = timelineProblem();
    opt::SearchOptions opts;
    opts.sampleBudget = 60;
    opts.recordSamples = true;
    opt::RandomSearch r1(1), r2(2);
    opt::SearchResult a = r1.search(p->evaluator(), opts);
    opt::SearchResult b = r2.search(p->evaluator(), opts);

    analysis::MapSpaceProjector proj;
    auto series = proj.project({"A", "B"}, {a.sampled, b.sampled},
                               {a.sampledFitness, b.sampledFitness},
                               p->evaluator().numAccels());
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0].method, "A");
    EXPECT_EQ(series[0].points.size(), 60u);
    EXPECT_EQ(series[1].fitness.size(), 60u);
    for (const auto& pt : series[0].points)
        EXPECT_EQ(pt.size(), 2u);
    ASSERT_EQ(proj.explainedVariance().size(), 2u);
    EXPECT_GE(proj.explainedVariance()[0], proj.explainedVariance()[1]);
}
