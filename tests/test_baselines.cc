/** @file Unit tests for the Herald-like and AI-MT-like manual mappers. */

#include <gtest/gtest.h>

#include "api/runner.h"
#include "baselines/ai_mt_like.h"
#include "baselines/herald_like.h"
#include "m3e/problem.h"

using namespace magma;
using baselines::AiMtLike;
using baselines::HeraldLike;

TEST(Baselines, ProduceValidMappings)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S4, 64.0,
                              30, 1);
    for (auto* build : {&HeraldLike::buildMapping, &AiMtLike::buildMapping}) {
        sched::Mapping m = build(p->evaluator());
        ASSERT_EQ(m.size(), 30);
        for (int i = 0; i < 30; ++i) {
            EXPECT_GE(m.accelSel[i], 0);
            EXPECT_LT(m.accelSel[i], p->evaluator().numAccels());
            EXPECT_GE(m.priority[i], 0.0);
            EXPECT_LT(m.priority[i], 1.0);
        }
    }
}

TEST(Baselines, Deterministic)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              25, 2);
    EXPECT_EQ(HeraldLike::buildMapping(p->evaluator()),
              HeraldLike::buildMapping(p->evaluator()));
    EXPECT_EQ(AiMtLike::buildMapping(p->evaluator()),
              AiMtLike::buildMapping(p->evaluator()));
}

TEST(Baselines, SearchUsesExactlyOneSample)
{
    auto p = m3e::makeProblem(dnn::TaskType::Vision, accel::Setting::S1,
                              16.0, 20, 3);
    HeraldLike herald(1);
    opt::SearchResult r = herald.search(p->evaluator());
    EXPECT_EQ(r.samplesUsed, 1);
    AiMtLike aimt(1);
    r = aimt.search(p->evaluator());
    EXPECT_EQ(r.samplesUsed, 1);
}

TEST(Baselines, HeraldKeepsLbCoreLoadBalanced)
{
    // On S2 the 4th core is LB-style where FC jobs are 30-200x slower.
    // Herald-like's earliest-finish placement may park a few tiny jobs
    // there, but the LB core's total occupancy (in seconds, on its own
    // clock) must stay balanced with the HB cores — it must not become
    // the makespan bottleneck.
    auto p = m3e::makeProblem(dnn::TaskType::Language, accel::Setting::S2,
                              16.0, 40, 4);
    sched::Mapping m = HeraldLike::buildMapping(p->evaluator());
    int lb_core = 3;  // S2 = 3x HB + 1x LB (last)
    ASSERT_EQ(p->platform().subAccels[lb_core].dataflow,
              cost::DataflowStyle::LB);
    std::vector<double> load(4, 0.0);
    for (int j = 0; j < m.size(); ++j)
        load[m.accelSel[j]] +=
            p->evaluator().table().lookup(j, m.accelSel[j]).noStallSeconds;
    double hb_max = std::max({load[0], load[1], load[2]});
    EXPECT_LE(load[lb_core], 1.5 * hb_max);
}

TEST(Baselines, AiMtSpreadsAcrossAllCoresBlindly)
{
    // AI-MT-like assumes homogeneity: its LPT balancing puts work on every
    // core, including the LB core where FC jobs crawl.
    auto p = m3e::makeProblem(dnn::TaskType::Language, accel::Setting::S2,
                              16.0, 40, 5);
    sched::Mapping m = AiMtLike::buildMapping(p->evaluator());
    std::vector<int> counts(4, 0);
    for (int a : m.accelSel)
        ++counts[a];
    for (int a = 0; a < 4; ++a)
        EXPECT_GT(counts[a], 0) << "core " << a;
}

TEST(Baselines, HeraldBeatsAiMtOnHeterogeneousMix)
{
    // Section VI-E: AI-MT-like collapses on heterogeneous platforms.
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              40, 6);
    double herald = p->evaluator().fitness(
        HeraldLike::buildMapping(p->evaluator()));
    double aimt = p->evaluator().fitness(
        AiMtLike::buildMapping(p->evaluator()));
    EXPECT_GT(herald, 2.0 * aimt);
}

TEST(Baselines, AiMtCompetitiveOnHomogeneousVision)
{
    // Section VI-D: on S1 both heuristics work "rather well" — AI-MT-like
    // must land within a modest factor of Herald-like.
    auto p = m3e::makeProblem(dnn::TaskType::Vision, accel::Setting::S1,
                              16.0, 40, 7);
    double herald = p->evaluator().fitness(
        HeraldLike::buildMapping(p->evaluator()));
    double aimt = p->evaluator().fitness(
        AiMtLike::buildMapping(p->evaluator()));
    EXPECT_GT(aimt, 0.4 * herald);
    EXPECT_LT(aimt, 2.5 * herald);
}

TEST(Baselines, ReachableThroughRunnerByRegistryName)
{
    // The manual mappers are first-class registry methods: a declarative
    // spec naming them (canonical name or alias) must run end-to-end
    // through api::Runner and resolve to the canonical plot label.
    api::ProblemSpec ps;
    ps.groupSize = 20;
    api::SearchSpec ss;
    ss.sampleBudget = 10;  // deterministic one-shot heuristics

    api::Runner runner;
    for (auto [key, canonical] :
         {std::pair<const char*, const char*>{"herald", "Herald-like"},
          {"Herald-like", "Herald-like"},
          {"ai-mt", "AI-MT-like"},
          {"AI-MT-like", "AI-MT-like"}}) {
        ss.method = key;
        api::RunReport rep = runner.run(ps, ss);
        EXPECT_EQ(rep.method, canonical) << key;
        EXPECT_EQ(rep.samplesUsed, 1) << key;  // one build, one sample
        EXPECT_GT(rep.bestFitness, 0.0) << key;
    }
}

TEST(Baselines, RunnerRunsAreFixedSeedDeterministic)
{
    // Same spec, fresh Runner each time: the mapping, fitness and all
    // derived report fields must be bitwise identical (wall time aside).
    api::ProblemSpec ps;
    ps.task = dnn::TaskType::Language;
    ps.groupSize = 24;
    ps.workloadSeed = 9;
    api::SearchSpec ss;
    ss.sampleBudget = 10;
    ss.seed = 9;

    for (const char* method : {"Herald-like", "AI-MT-like"}) {
        ss.method = method;
        api::Runner r1, r2;
        api::RunReport a = r1.run(ps, ss);
        api::RunReport b = r2.run(ps, ss);
        EXPECT_EQ(a.best, b.best) << method;
        EXPECT_EQ(a.bestFitness, b.bestFitness) << method;
        EXPECT_EQ(a.makespanSeconds, b.makespanSeconds) << method;
        EXPECT_EQ(a.energyJoules, b.energyJoules) << method;
        EXPECT_EQ(a.samplesUsed, b.samplesUsed) << method;
    }
}

TEST(Baselines, HeraldBalancesLoadOnHomogeneousPlatform)
{
    auto p = m3e::makeProblem(dnn::TaskType::Vision, accel::Setting::S1,
                              16.0, 40, 8);
    sched::Mapping m = HeraldLike::buildMapping(p->evaluator());
    std::vector<double> load(4, 0.0);
    for (int j = 0; j < 40; ++j)
        load[m.accelSel[j]] +=
            p->evaluator().table().lookup(j, m.accelSel[j]).noStallSeconds;
    double mx = *std::max_element(load.begin(), load.end());
    double mn = *std::min_element(load.begin(), load.end());
    EXPECT_LT(mx, 3.0 * (mn + 1e-12));
}
