/** @file Unit tests for src/dnn: layer IR, model zoo, workload generator. */

#include <set>

#include <gtest/gtest.h>

#include "dnn/layer.h"
#include "dnn/model_zoo.h"
#include "dnn/workload.h"

using namespace magma::dnn;

// -------------------------------------------------------------- layer ----

TEST(Layer, ConvMacsAndElems)
{
    LayerShape l = conv(64, 32, 16, 16, 3, 3, 1);
    EXPECT_EQ(l.macsPerSample(), 64LL * 32 * 16 * 16 * 9);
    EXPECT_EQ(l.weightElems(), 64LL * 32 * 9);
    EXPECT_EQ(l.inY(), 18);
    EXPECT_EQ(l.inX(), 18);
    EXPECT_EQ(l.inputElemsPerSample(), 32LL * 18 * 18);
    EXPECT_EQ(l.outputElemsPerSample(), 64LL * 16 * 16);
}

TEST(Layer, StridedConvInputExtent)
{
    LayerShape l = conv(8, 8, 112, 112, 7, 7, 2);
    EXPECT_EQ(l.inY(), 111 * 2 + 7);
    EXPECT_EQ(l.inX(), 111 * 2 + 7);
}

TEST(Layer, DepthwiseMacsExcludeChannelProduct)
{
    LayerShape l = depthwise(128, 14, 14, 3, 3, 1);
    EXPECT_EQ(l.k, l.c);
    EXPECT_EQ(l.macsPerSample(), 128LL * 14 * 14 * 9);
    EXPECT_EQ(l.weightElems(), 128LL * 9);
    EXPECT_EQ(l.outputElemsPerSample(), 128LL * 14 * 14);
}

TEST(Layer, PointwiseIsOneByOne)
{
    LayerShape l = pointwise(256, 64, 28, 28);
    EXPECT_EQ(l.r, 1);
    EXPECT_EQ(l.s, 1);
    EXPECT_EQ(l.macsPerSample(), 256LL * 64 * 28 * 28);
    EXPECT_EQ(l.inY(), 28);
}

TEST(Layer, FullyConnectedShape)
{
    LayerShape l = fc(1000, 2048);
    EXPECT_EQ(l.type, LayerType::FullyConnected);
    EXPECT_EQ(l.macsPerSample(), 1000LL * 2048);
    EXPECT_EQ(l.weightElems(), 1000LL * 2048);
    EXPECT_EQ(l.inputElemsPerSample(), 2048);
    EXPECT_EQ(l.outputElemsPerSample(), 1000);
}

TEST(Layer, TypeNames)
{
    EXPECT_EQ(layerTypeName(LayerType::Conv2d), "CONV");
    EXPECT_EQ(layerTypeName(LayerType::DepthwiseConv2d), "DWCONV");
    EXPECT_EQ(layerTypeName(LayerType::PointwiseConv2d), "PWCONV");
    EXPECT_EQ(layerTypeName(LayerType::FullyConnected), "FC");
}

TEST(Layer, ToStringContainsDims)
{
    std::string s = conv(64, 32, 16, 8, 3, 5, 2).toString();
    EXPECT_NE(s.find("k64"), std::string::npos);
    EXPECT_NE(s.find("c32"), std::string::npos);
    EXPECT_NE(s.find("y16"), std::string::npos);
    EXPECT_NE(s.find("x8"), std::string::npos);
    EXPECT_NE(s.find("r3"), std::string::npos);
    EXPECT_NE(s.find("s5"), std::string::npos);
    EXPECT_NE(s.find("/2"), std::string::npos);
}

TEST(Layer, EqualityIsStructural)
{
    EXPECT_EQ(fc(10, 20), fc(10, 20));
    EXPECT_NE(fc(10, 20), fc(20, 10));
    EXPECT_NE(conv(8, 8, 4, 4, 3, 3), pointwise(8, 8, 4, 4));
}

// ---------------------------------------------------------- model zoo ----

TEST(ModelZoo, CategoryCountsMatchPaperCollection)
{
    EXPECT_EQ(visionModels().size(), 7u);
    EXPECT_EQ(languageModels().size(), 6u);
    EXPECT_EQ(recomModels().size(), 5u);
    EXPECT_EQ(allModels().size(), 18u);
}

TEST(ModelZoo, AllModelsNonEmptyAndTagged)
{
    for (const auto& m : allModels()) {
        EXPECT_FALSE(m.layers.empty()) << m.name;
        EXPECT_FALSE(m.name.empty());
        EXPECT_GT(m.macsPerSample(), 0) << m.name;
    }
}

TEST(ModelZoo, NamesUnique)
{
    std::set<std::string> names;
    for (const auto& m : allModels())
        EXPECT_TRUE(names.insert(m.name).second) << "dup " << m.name;
}

TEST(ModelZoo, FindModelRoundTrip)
{
    for (const auto& m : allModels())
        EXPECT_EQ(findModel(m.name).name, m.name);
    EXPECT_THROW(findModel("NoSuchNet"), std::out_of_range);
}

TEST(ModelZoo, VisionModelsAreConvDominated)
{
    for (const auto& m : visionModels()) {
        int64_t conv_macs = 0, total = 0;
        for (const auto& l : m.layers) {
            int64_t macs = l.macsPerSample();
            total += macs;
            if (l.type != LayerType::FullyConnected)
                conv_macs += macs;
        }
        EXPECT_GT(conv_macs, total / 2) << m.name;
    }
}

TEST(ModelZoo, LanguageAndRecomModelsAreAllFc)
{
    for (const auto& m : languageModels())
        for (const auto& l : m.layers)
            EXPECT_EQ(l.type, LayerType::FullyConnected) << m.name;
    for (const auto& m : recomModels())
        for (const auto& l : m.layers)
            EXPECT_EQ(l.type, LayerType::FullyConnected) << m.name;
}

TEST(ModelZoo, DepthwiseLayersWellFormed)
{
    for (const auto& m : allModels()) {
        for (const auto& l : m.layers) {
            if (l.type == LayerType::DepthwiseConv2d) {
                EXPECT_EQ(l.k, l.c) << m.name;
            }
        }
    }
}

TEST(ModelZoo, KnownMacCounts)
{
    // ResNet-50 ~4.1 GMACs, VGG16 ~15.5 GMACs, MobileNetV2 ~0.3 GMACs
    // per 224x224 sample (published figures; ours include shortcut convs).
    double resnet = findModel("Resnet50").macsPerSample() / 1e9;
    double vgg = findModel("VGG16").macsPerSample() / 1e9;
    double mbv2 = findModel("MobileNetv2").macsPerSample() / 1e9;
    EXPECT_NEAR(resnet, 4.1, 1.0);
    EXPECT_NEAR(vgg, 15.5, 1.5);
    EXPECT_NEAR(mbv2, 0.32, 0.15);
    EXPECT_GT(vgg, resnet);
    EXPECT_GT(resnet, mbv2);
}

TEST(ModelZoo, TransformerLayerStructure)
{
    const Model& gpt2 = findModel("GPT2");
    // 12 layers x 8 FC jobs each.
    EXPECT_EQ(gpt2.layers.size(), 96u);
    // Q projection is hidden x hidden.
    EXPECT_EQ(gpt2.layers[0].k, 768);
    EXPECT_EQ(gpt2.layers[0].c, 768);
    // Attention-score job carries the sequence length.
    EXPECT_EQ(gpt2.layers[3].k, 1024);
    // FFN up-projection is 4x hidden.
    EXPECT_EQ(gpt2.layers[6].k, 3072);
}

TEST(ModelZoo, TaskFiltering)
{
    for (const auto& m : modelsForTask(TaskType::Vision))
        EXPECT_EQ(m.task, TaskType::Vision);
    for (const auto& m : modelsForTask(TaskType::Language))
        EXPECT_EQ(m.task, TaskType::Language);
    for (const auto& m : modelsForTask(TaskType::Recommendation))
        EXPECT_EQ(m.task, TaskType::Recommendation);
    EXPECT_EQ(modelsForTask(TaskType::Mix).size(), allModels().size());
}

TEST(ModelZoo, TaskNames)
{
    EXPECT_EQ(taskTypeName(TaskType::Vision), "Vision");
    EXPECT_EQ(taskTypeName(TaskType::Language), "Lang");
    EXPECT_EQ(taskTypeName(TaskType::Recommendation), "Recom");
    EXPECT_EQ(taskTypeName(TaskType::Mix), "Mix");
}

// ----------------------------------------------------------- workload ----

TEST(Workload, GroupHasRequestedSize)
{
    WorkloadGenerator gen(1);
    for (int size : {1, 4, 40, 100})
        EXPECT_EQ(gen.makeGroup(TaskType::Mix, size).size(), size);
}

TEST(Workload, DeterministicGivenSeed)
{
    WorkloadGenerator g1(7), g2(7);
    JobGroup a = g1.makeGroup(TaskType::Mix, 30);
    JobGroup b = g2.makeGroup(TaskType::Mix, 30);
    ASSERT_EQ(a.size(), b.size());
    for (int i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.jobs[i].layer, b.jobs[i].layer);
        EXPECT_EQ(a.jobs[i].model, b.jobs[i].model);
    }
}

TEST(Workload, DifferentSeedsDiffer)
{
    WorkloadGenerator g1(1), g2(2);
    JobGroup a = g1.makeGroup(TaskType::Mix, 30);
    JobGroup b = g2.makeGroup(TaskType::Mix, 30);
    int same = 0;
    for (int i = 0; i < a.size(); ++i)
        if (a.jobs[i].layer == b.jobs[i].layer)
            ++same;
    EXPECT_LT(same, a.size());
}

TEST(Workload, TaskPurity)
{
    WorkloadGenerator gen(3);
    for (TaskType t : {TaskType::Vision, TaskType::Language,
                       TaskType::Recommendation}) {
        JobGroup g = gen.makeGroup(t, 50);
        for (const auto& j : g.jobs)
            EXPECT_EQ(j.task, t);
    }
}

TEST(Workload, MixEventuallyContainsAllCategories)
{
    WorkloadGenerator gen(4);
    JobGroup g = gen.makeGroup(TaskType::Mix, 200);
    std::set<TaskType> seen;
    for (const auto& j : g.jobs)
        seen.insert(j.task);
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Workload, BatchesFollowTaskDefaults)
{
    WorkloadGenerator gen(5);
    JobGroup g = gen.makeGroup(TaskType::Mix, 100);
    for (const auto& j : g.jobs)
        EXPECT_EQ(j.batch, defaultBatch(j.task));
    EXPECT_EQ(defaultBatch(TaskType::Language), 128);
    EXPECT_EQ(defaultBatch(TaskType::Vision), 4);
}

TEST(Workload, JobIdsSequential)
{
    WorkloadGenerator gen(6);
    JobGroup g = gen.makeGroup(TaskType::Vision, 25);
    for (int i = 0; i < g.size(); ++i)
        EXPECT_EQ(g.jobs[i].id, i);
}

TEST(Workload, TotalsArePositiveAndAdditive)
{
    WorkloadGenerator gen(7);
    JobGroup g = gen.makeGroup(TaskType::Mix, 20);
    int64_t sum = 0;
    for (const auto& j : g.jobs) {
        EXPECT_GT(j.macs(), 0);
        EXPECT_EQ(j.flops(), 2 * j.macs());
        sum += j.macs();
    }
    EXPECT_EQ(g.totalMacs(), sum);
    EXPECT_EQ(g.totalFlops(), 2 * sum);
}

TEST(Workload, MakeGroupsProducesIndependentDraws)
{
    WorkloadGenerator gen(8);
    auto groups = gen.makeGroups(TaskType::Mix, 30, 5);
    ASSERT_EQ(groups.size(), 5u);
    // At least two of the five groups must differ (overwhelmingly likely).
    bool any_diff = false;
    for (int i = 0; i < 30 && !any_diff; ++i)
        if (!(groups[0].jobs[i].layer == groups[1].jobs[i].layer))
            any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST(Workload, JobsReferenceRealZooLayers)
{
    WorkloadGenerator gen(9);
    JobGroup g = gen.makeGroup(TaskType::Mix, 60);
    for (const auto& j : g.jobs) {
        const Model& m = findModel(j.model);
        bool found = false;
        for (const auto& l : m.layers)
            if (l == j.layer) {
                found = true;
                break;
            }
        EXPECT_TRUE(found) << j.model << " " << j.layer.toString();
    }
}
