/**
 * @file Tests for the dynamic-workload engine (src/dyn/): trace text
 * round-trips (hostile bundle names, randomized timelines, malformed
 * rejection), reconfiguration-cost accounting inside the schedule
 * simulation, identity-preserving warm transfer across events
 * (opt::transfer::adaptMatched and the exact tier of adaptJobMatched),
 * bitwise replay determinism across thread counts, the serve layer's
 * Pareto-archive warm tier, and the timeline/obs surfaces.
 */

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dyn/engine.h"
#include "dyn/reconfig.h"
#include "dyn/runner.h"
#include "dyn/trace.h"
#include "m3e/problem.h"
#include "mo/pareto.h"
#include "obs/metrics.h"
#include "opt/warm_start.h"
#include "serve/service.h"

using namespace magma;
using dyn::EventEngine;
using dyn::EventKind;
using dyn::WorkloadEvent;
using dyn::WorkloadTrace;

namespace {

WorkloadEvent
arrive(double t, const std::string& name, int jobs,
       dnn::TaskType task = dnn::TaskType::Vision, uint64_t seed = 7)
{
    WorkloadEvent e;
    e.timeSeconds = t;
    e.kind = EventKind::Arrive;
    e.bundle = name;
    e.jobs = jobs;
    e.task = task;
    e.seed = seed;
    return e;
}

WorkloadEvent
depart(double t, const std::string& name)
{
    WorkloadEvent e;
    e.timeSeconds = t;
    e.kind = EventKind::Depart;
    e.bundle = name;
    return e;
}

WorkloadEvent
swap(double t, const std::string& name, int jobs, uint64_t seed = 9)
{
    WorkloadEvent e = arrive(t, name, jobs, dnn::TaskType::Language, seed);
    e.kind = EventKind::Swap;
    return e;
}

/** A small, fast trace over tiny bundles. */
WorkloadTrace
smallTrace()
{
    WorkloadTrace trace;
    trace.base.task = dnn::TaskType::Mix;
    trace.base.setting = accel::Setting::S2;
    trace.base.systemBwGbps = 8.0;
    trace.base.groupSize = 8;
    trace.events = {arrive(0.0, "a", 6, dnn::TaskType::Vision, 11),
                    arrive(0.5, "b", 5, dnn::TaskType::Language, 12),
                    swap(1.0, "b", 5, 13), depart(1.5, "a")};
    trace.validate();
    return trace;
}

dyn::DynConfig
fastConfig(int64_t budget = 160)
{
    dyn::DynConfig cfg;
    cfg.search.sampleBudget = budget;
    cfg.search.seed = 5;
    return cfg;
}

}  // namespace

// ---------------------------------------------------------------------
// Trace text round-trips
// ---------------------------------------------------------------------

TEST(DynTrace, EventRoundTripsExactly)
{
    for (const WorkloadEvent& e :
         {arrive(0.25, "cam-feeds", 12, dnn::TaskType::Recommendation,
                 0xffffffffffffffffULL),
          depart(1e-9, "x"), swap(3.5, "llm", 40, 1)}) {
        WorkloadEvent back = WorkloadEvent::fromText(e.toText());
        EXPECT_EQ(e, back) << e.toText();
    }
}

TEST(DynTrace, HostileBundleNamesSurvive)
{
    // name= is the last token and captures the rest of the line, so
    // spaces, '=', '#' and key-like text are all legal bundle names.
    for (const std::string& name :
         {"my bundle", "a=b=c", "kind=depart", "x #y", "t=0 jobs=3",
          "trailing.inner  spaces ok (not at ends)"}) {
        ASSERT_TRUE(dyn::validBundleName(name)) << name;
        WorkloadEvent e = arrive(1.0, name, 3);
        EXPECT_EQ(e, WorkloadEvent::fromText(e.toText())) << name;
    }
    for (const std::string& bad :
         {"", " lead", "trail ", "\tlead", "nl\ninside"})
        EXPECT_FALSE(dyn::validBundleName(bad));
}

TEST(DynTrace, MalformedEventsRejected)
{
    // Missing required keys, recipe on a depart, junk keys/kinds.
    for (const std::string& line :
         {"", "kind=arrive jobs=3 task=Vision seed=1 name=x",
          "t=0 jobs=3 task=Vision seed=1 name=x",
          "t=0 kind=arrive jobs=3 task=Vision seed=1",
          "t=0 kind=arrive name=x",
          "t=0 kind=arrive jobs=3 task=Vision name=x",
          "t=0 kind=depart jobs=3 name=x",
          "t=0 kind=depart seed=1 name=x",
          "t=0 kind=vanish name=x", "t=0 kind=arrive bogus=1 name=x",
          "t=zero kind=depart name=x", "t=0 kind=arrive jobs=3 "
                                       "task=Basketweaving seed=1 name=x"})
        EXPECT_THROW(WorkloadEvent::fromText(line), std::invalid_argument)
            << line;
}

TEST(DynTrace, TraceTextRoundTripsBitwise)
{
    WorkloadTrace t = smallTrace();
    t.base.systemBwGbps = 1.0 / 3.0;  // exercise %.17g fidelity
    t.events[0].timeSeconds = 0.1 + 0.2;
    WorkloadTrace back = WorkloadTrace::fromText(t.toText());
    EXPECT_EQ(t, back);
    EXPECT_EQ(t.toText(), back.toText());
}

TEST(DynTrace, RandomizedTracesRoundTrip)
{
    const std::string charset =
        "abcdefghijklmnopqrstuvwxyzABC XYZ0123456789_=#.-/";
    common::Rng rng(123);
    for (int iter = 0; iter < 50; ++iter) {
        WorkloadTrace t;
        t.base.workloadSeed = rng.uniformInt(1, 1 << 20);
        t.base.systemBwGbps = rng.uniform(0.5, 64.0);
        double now = 0.0;
        std::vector<std::string> active;
        int n = rng.uniformInt(1, 12);
        for (int i = 0; i < n; ++i) {
            now += rng.uniform(0.0, 2.0);
            int kind = rng.uniformInt(3);
            if (!active.empty() && kind == 1) {
                int pick = rng.uniformInt(
                    static_cast<int>(active.size()));
                t.events.push_back(depart(now, active[pick]));
                active.erase(active.begin() + pick);
            } else if (!active.empty() && kind == 2) {
                int pick = rng.uniformInt(
                    static_cast<int>(active.size()));
                t.events.push_back(swap(now, active[pick],
                                        rng.uniformInt(1, 9),
                                        rng.uniformInt(1, 1000)));
            } else {
                std::string name;
                int len = rng.uniformInt(1, 18);
                for (int k = 0; k < len; ++k)
                    name += charset[rng.uniformInt(
                        static_cast<int>(charset.size()))];
                name = "j" + name + "j";  // no edge whitespace
                if (std::find(active.begin(), active.end(), name) !=
                    active.end())
                    continue;
                t.events.push_back(
                    arrive(now, name, rng.uniformInt(1, 9),
                           dnn::TaskType::Mix, rng.uniformInt(1, 1000)));
                active.push_back(name);
            }
        }
        ASSERT_NO_THROW(t.validate());
        WorkloadTrace back = WorkloadTrace::fromText(t.toText());
        EXPECT_EQ(t, back);
    }
}

TEST(DynTrace, HeaderCommentsAndRejects)
{
    WorkloadTrace t = smallTrace();
    std::string text = "# banner\n\n  # more\n" + t.toText();
    EXPECT_EQ(t, WorkloadTrace::fromText(text));

    EXPECT_THROW(WorkloadTrace::fromText(""), std::invalid_argument);
    EXPECT_THROW(WorkloadTrace::fromText("# only comments\n"),
                 std::invalid_argument);
    EXPECT_THROW(WorkloadTrace::fromText("task=Mix\n"),
                 std::invalid_argument);  // header missing
    EXPECT_THROW(WorkloadTrace::fromText("magma-workload-trace v1\n"
                                         "bogus_key=1\n"),
                 std::invalid_argument);
}

TEST(DynTrace, ValidateEnforcesTimelineInvariants)
{
    auto expectInvalid = [](WorkloadTrace t) {
        EXPECT_THROW(t.validate(), std::invalid_argument);
    };
    WorkloadTrace t = smallTrace();
    t.events[1].timeSeconds = -1.0;  // decreasing + negative
    expectInvalid(t);

    t = smallTrace();
    t.events.push_back(arrive(9.0, "b", 3));  // double arrive
    expectInvalid(t);

    t = smallTrace();
    t.events.push_back(depart(9.0, "ghost"));  // depart inactive
    expectInvalid(t);

    t = smallTrace();
    t.events.push_back(swap(9.0, "a", 3));  // swap departed bundle
    expectInvalid(t);

    t = smallTrace();
    t.events[0].jobs = 0;  // arrive needs jobs > 0
    expectInvalid(t);
}

TEST(DynTrace, FinalActiveJobsAndFileRoundTrip)
{
    WorkloadTrace t = smallTrace();
    EXPECT_EQ(5, t.finalActiveJobs());  // "a" departed, "b" swapped to 5

    std::string path = ::testing::TempDir() + "dyn_trace.txt";
    t.save(path);
    EXPECT_EQ(t, WorkloadTrace::load(path));
    EXPECT_THROW(WorkloadTrace::load(path + ".does-not-exist"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Reconfiguration cost
// ---------------------------------------------------------------------

TEST(DynReconfig, BillsMovedAndNewJobsOnly)
{
    dnn::WorkloadGenerator gen(3);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Vision, 3);
    std::vector<std::string> ids = {"a#0", "a#1", "b#0"};
    // Previous placement: a#0 on accel 0, a#1 on accel 1; b#0 is new.
    std::vector<std::pair<std::string, int>> prev = {{"a#0", 0},
                                                     {"a#1", 1}};
    sched::Mapping next;
    next.accelSel = {0, 2, 1};  // a#0 kept, a#1 moved, b#0 new
    next.priority = {0.1, 0.2, 0.3};

    dyn::ReconfigSpec spec;
    spec.retileStallSeconds = 1e-3;
    spec.bytesPerElem = 2.0;
    dyn::ReconfigCharge charge =
        dyn::computeReconfig(prev, ids, group, next, 16.0, spec);
    EXPECT_EQ(1, charge.keptJobs);
    EXPECT_EQ(1, charge.movedJobs);
    EXPECT_EQ(1, charge.newJobs);
    ASSERT_EQ(3u, charge.setupSeconds.size());
    EXPECT_DOUBLE_EQ(0.0, charge.setupSeconds[0]);
    double bytes1 =
        static_cast<double>(group.jobs[1].layer.weightElems()) * 2.0;
    double bytes2 =
        static_cast<double>(group.jobs[2].layer.weightElems()) * 2.0;
    EXPECT_DOUBLE_EQ(1e-3 + bytes1 / 16e9, charge.setupSeconds[1]);
    EXPECT_DOUBLE_EQ(1e-3 + bytes2 / 16e9, charge.setupSeconds[2]);
    EXPECT_DOUBLE_EQ(bytes1 + bytes2, charge.reloadBytes);
    EXPECT_DOUBLE_EQ(charge.setupSeconds[1] + charge.setupSeconds[2],
                     charge.totalStallSeconds);

    // Arrivals can be exempted; weight reload can be disabled.
    spec.chargeArrivals = false;
    charge = dyn::computeReconfig(prev, ids, group, next, 16.0, spec);
    EXPECT_DOUBLE_EQ(0.0, charge.setupSeconds[2]);
    EXPECT_DOUBLE_EQ(bytes1, charge.reloadBytes);

    spec.chargeArrivals = true;
    spec.chargeWeightReload = false;
    charge = dyn::computeReconfig(prev, ids, group, next, 16.0, spec);
    EXPECT_DOUBLE_EQ(0.0, charge.reloadBytes);
    EXPECT_DOUBLE_EQ(2e-3, charge.totalStallSeconds);
}

TEST(DynReconfig, SetupChargedInsideSchedule)
{
    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                    8.0, 6, 42);
    const sched::MappingEvaluator& eval = problem->evaluator();
    common::Rng rng(7);
    sched::Mapping m =
        sched::Mapping::random(6, eval.numAccels(), rng);

    // All-zero setup is bitwise the plain simulation.
    sched::ScheduleResult plain = eval.evaluate(m);
    sched::ScheduleResult zero =
        eval.evaluateWithSetup(m, std::vector<double>(6, 0.0));
    EXPECT_EQ(plain.makespanSeconds, zero.makespanSeconds);
    EXPECT_EQ(plain.finishTime, zero.finishTime);

    // A uniform positive setup pushes the makespan out by at least one
    // stall. Per job only monotonicity holds: a job whose contenders
    // are still in setup inherits their bandwidth, so its finish can
    // land under plain + setup (but never under plain).
    std::vector<double> setup(6, 5e-3);
    sched::ScheduleResult stalled = eval.evaluateWithSetup(m, setup);
    EXPECT_GE(stalled.makespanSeconds, plain.makespanSeconds + 5e-3);
    for (int j = 0; j < 6; ++j)
        EXPECT_GE(stalled.finishTime[j], plain.finishTime[j]);
}

// ---------------------------------------------------------------------
// Warm transfer across events
// ---------------------------------------------------------------------

TEST(DynTransfer, AdaptMatchedInheritsGenesVerbatim)
{
    dnn::WorkloadGenerator gen(11);
    dnn::JobGroup stored_group = gen.makeGroup(dnn::TaskType::Mix, 8);
    common::Rng rng(19);
    sched::Mapping stored = sched::Mapping::random(8, 4, rng);

    // Target: jobs 2, 5 and 7 survive (in a new order) plus one new job.
    dnn::JobGroup target;
    target.task = stored_group.task;
    for (int src : {5, 2, 7})
        target.jobs.push_back(stored_group.jobs[src]);
    target.jobs.push_back(gen.makeGroup(dnn::TaskType::Vision, 1).jobs[0]);
    std::vector<int> match = {5, 2, 7, -1};

    sched::Mapping adapted = opt::transfer::adaptMatched(
        stored, stored_group, target, match, 4, rng);
    ASSERT_EQ(4, adapted.size());
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(stored.accelSel[match[i]], adapted.accelSel[i]);
        EXPECT_EQ(stored.priority[match[i]], adapted.priority[i]);
    }
    EXPECT_LT(adapted.accelSel[3], 4);

    // Accel genes clamp into a smaller platform.
    sched::Mapping clamped = opt::transfer::adaptMatched(
        stored, stored_group, target, match, 2, rng);
    for (int i = 0; i < 4; ++i)
        EXPECT_LT(clamped.accelSel[i], 2);

    // Malformed correspondences are loud, not silently fuzzy.
    EXPECT_THROW(opt::transfer::adaptMatched(stored, stored_group, target,
                                             {0, 1}, 4, rng),
                 std::invalid_argument);
    EXPECT_THROW(opt::transfer::adaptMatched(stored, stored_group, target,
                                             {0, 1, 2, 8}, 4, rng),
                 std::invalid_argument);
}

TEST(DynTransfer, AdaptJobMatchedShrinkHitsExactTier)
{
    // A departure-shrunk group (a prefix of the stored one) must keep
    // every surviving job's own gene — the exact-identity tier, not the
    // fuzzy size-class fallback.
    dnn::WorkloadGenerator gen(13);
    dnn::JobGroup stored_group = gen.makeGroup(dnn::TaskType::Mix, 10);
    common::Rng rng(23);
    sched::Mapping stored = sched::Mapping::random(10, 4, rng);

    dnn::JobGroup target;
    target.task = stored_group.task;
    target.jobs.assign(stored_group.jobs.begin(),
                       stored_group.jobs.begin() + 6);
    sched::Mapping adapted = opt::transfer::adaptJobMatched(
        stored, stored_group, target, 4, rng);
    ASSERT_EQ(6, adapted.size());
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(stored.accelSel[i], adapted.accelSel[i]) << i;
        EXPECT_EQ(stored.priority[i], adapted.priority[i]) << i;
    }
}

// ---------------------------------------------------------------------
// Event engine
// ---------------------------------------------------------------------

TEST(DynEngine, ReplayBitwiseIdenticalAcrossThreadCounts)
{
    WorkloadTrace trace = smallTrace();
    dyn::DynConfig cfg = fastConfig();
    dyn::DynResult one = EventEngine(cfg).replay(trace);
    cfg.search.threads = 4;
    dyn::DynResult four = EventEngine(cfg).replay(trace);

    ASSERT_EQ(one.records.size(), four.records.size());
    for (size_t i = 0; i < one.records.size(); ++i) {
        EXPECT_EQ(one.records[i].mapping, four.records[i].mapping) << i;
        EXPECT_EQ(one.records[i].fitness, four.records[i].fitness) << i;
        EXPECT_EQ(one.records[i].samplesUsed, four.records[i].samplesUsed);
        EXPECT_EQ(one.records[i].makespanSeconds,
                  four.records[i].makespanSeconds);
        EXPECT_EQ(dyn::eventLine(static_cast<int64_t>(i), one.records[i]),
                  dyn::eventLine(static_cast<int64_t>(i),
                                 four.records[i]));
    }
    EXPECT_EQ(one.totalSamples, four.totalSamples);
    EXPECT_EQ(dyn::summaryLine(one), dyn::summaryLine(four));
}

TEST(DynEngine, WarmRemapSavesSamplesOverCold)
{
    WorkloadTrace trace = smallTrace();
    dyn::DynConfig cold_cfg = fastConfig(400);
    cold_cfg.warmRemap = false;
    dyn::DynConfig warm_cfg = fastConfig(400);
    warm_cfg.remapBudget = 100;

    dyn::DynResult cold = EventEngine(cold_cfg).replay(trace);
    dyn::DynResult warm = EventEngine(warm_cfg).replay(trace);

    for (const dyn::EventRecord& r : cold.records)
        EXPECT_EQ(dyn::RemapSource::Cold, r.source);
    EXPECT_EQ(dyn::RemapSource::Cold, warm.records[0].source);
    for (size_t i = 1; i < warm.records.size(); ++i) {
        EXPECT_EQ(dyn::RemapSource::Previous, warm.records[i].source);
        EXPECT_EQ(100, warm.records[i].budget);
    }
    EXPECT_LT(warm.totalSamples, cold.totalSamples);
    EXPECT_GT(warm.finalFitness, 0.6 * cold.finalFitness);
}

TEST(DynEngine, EventAccountingAndEmptyPlatform)
{
    WorkloadTrace trace;
    trace.base = smallTrace().base;
    trace.events = {arrive(0.0, "a", 6, dnn::TaskType::Vision, 11),
                    swap(1.0, "a", 4, 12), depart(2.0, "a")};
    trace.validate();
    dyn::DynResult r = EventEngine(fastConfig()).replay(trace);

    // Arrival: every job is new; nothing existed to keep or move.
    EXPECT_EQ(6, r.records[0].charge.newJobs);
    EXPECT_EQ(0, r.records[0].charge.keptJobs + r.records[0].charge.movedJobs);
    EXPECT_GT(r.records[0].charge.totalStallSeconds, 0.0);
    EXPECT_GT(r.records[0].makespanSeconds,
              r.records[0].steadyMakespanSeconds);

    // Swap: the regenerated jobs are NEW jobs (fresh identities).
    EXPECT_EQ(4, r.records[1].charge.newJobs);
    EXPECT_EQ(0, r.records[1].charge.keptJobs);
    EXPECT_EQ(4, r.records[1].activeJobs);

    // Depart to empty: idle platform, no search, empty mapping.
    EXPECT_EQ(0, r.records[2].activeJobs);
    EXPECT_EQ(0, r.records[2].mapping.size());
    EXPECT_EQ(0, r.records[2].samplesUsed);
    EXPECT_EQ(0.0, r.finalMakespanSeconds);
}

TEST(DynEngine, StepGuardsAndTierFallbacks)
{
    EventEngine engine(fastConfig());
    EXPECT_THROW(engine.step(arrive(0.0, "a", 2)), std::logic_error);

    // Store tier: a pre-populated MappingStore seeds the FIRST event
    // (no previous mapping yet) on the warm budget.
    WorkloadTrace trace;
    trace.base = smallTrace().base;
    trace.events = {arrive(0.0, "a", 6, dnn::TaskType::Vision, 11)};

    dyn::DynConfig cold_cfg = fastConfig(300);
    dyn::DynResult first = EventEngine(cold_cfg).replay(trace);
    EXPECT_EQ(dyn::RemapSource::Cold, first.records[0].source);

    serve::MappingStore store;
    dyn::DynConfig store_cfg = fastConfig(300);
    store_cfg.remapBudget = 60;
    store_cfg.store = &store;
    EXPECT_EQ(dyn::RemapSource::Cold,
              EventEngine(store_cfg).replay(trace).records[0].source);
    EXPECT_GT(store.size(), 0);  // replay wrote the solution back
    dyn::DynResult warmed = EventEngine(store_cfg).replay(trace);
    EXPECT_EQ(dyn::RemapSource::Store, warmed.records[0].source);
    EXPECT_EQ(60, warmed.records[0].budget);

    // Archive tier: store misses, Pareto members seed at FULL budget.
    mo::ParetoArchive archive({sched::Objective::Throughput});
    mo::MoPoint p;
    p.m = first.records[0].mapping;
    p.objs = {first.records[0].fitness};
    ASSERT_TRUE(archive.insert(p));
    dyn::DynConfig arch_cfg = fastConfig(300);
    arch_cfg.archive = &archive;
    dyn::DynResult seeded = EventEngine(arch_cfg).replay(trace);
    EXPECT_EQ(dyn::RemapSource::Archive, seeded.records[0].source);
    EXPECT_EQ(300, seeded.records[0].budget);
}

// ---------------------------------------------------------------------
// Serve integration: the archive as the third warm tier
// ---------------------------------------------------------------------

TEST(DynServe, ArchiveSeedsStoreMissingRequests)
{
    serve::MapRequest req;
    req.problem.task = dnn::TaskType::Mix;
    req.problem.groupSize = 10;
    req.problem.workloadSeed = 77;
    req.problem.systemBwGbps = 4.0;
    req.search.sampleBudget = 200;
    req.search.seed = 77;
    req.writeBack = false;

    mo::ParetoArchive archive({sched::Objective::Throughput});
    common::Rng rng(3);
    for (int i = 0; i < 3; ++i) {
        mo::MoPoint p;
        p.m = sched::Mapping::random(10, 4, rng);
        p.objs = {100.0 + i};
        archive.insert(p);
    }

    serve::ServiceConfig cfg;
    cfg.archive = &archive;
    serve::MappingService service(cfg);
    serve::MapResponse a = service.submit(req).get();
    EXPECT_TRUE(a.archiveSeeded);
    EXPECT_FALSE(a.warmStart);
    EXPECT_EQ(200, a.samplesUsed);  // full cold budget, not cut

    // Read-only tier: the same request is bitwise reproducible.
    serve::MapResponse b = service.submit(req).get();
    EXPECT_EQ(a.best, b.best);
    EXPECT_EQ(a.bestFitness, b.bestFitness);
    EXPECT_EQ(2, service.stats().archiveSeeded);

    // Without the archive the identical request is a plain cold serve.
    serve::MappingService bare{serve::ServiceConfig{}};
    EXPECT_FALSE(bare.submit(req).get().archiveSeeded);
}

// ---------------------------------------------------------------------
// Observability + timeline artifact
// ---------------------------------------------------------------------

TEST(DynObs, CountersAndTimelineJson)
{
    obs::MetricsLevel before = obs::metricsLevel();
    obs::setMetricsLevel(obs::MetricsLevel::Counters);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    int64_t events0 = reg.counter("dyn.events").value();
    int64_t remaps0 = reg.counter("dyn.remaps").value();

    WorkloadTrace trace = smallTrace();
    dyn::DynConfig cfg = fastConfig();
    dyn::DynReport report;
    report.result = EventEngine(cfg).replay(trace);
    obs::setMetricsLevel(before);

    EXPECT_EQ(events0 + 4, reg.counter("dyn.events").value());
    EXPECT_EQ(remaps0 + 4, reg.counter("dyn.remaps").value());

    std::string json = dyn::timelineJson(trace, cfg, report);
    EXPECT_NE(std::string::npos, json.find("\"schema\":1"));
    EXPECT_NE(std::string::npos, json.find("\"bench\":\"dyn_timeline\""));
    EXPECT_NE(std::string::npos, json.find("\"samples\":["));
    EXPECT_NE(std::string::npos, json.find("\"source\":\"previous\""));
    size_t count = 0;
    for (size_t pos = 0;
         (pos = json.find("\"kind\":", pos)) != std::string::npos; ++pos)
        ++count;
    EXPECT_EQ(trace.events.size(), count);
}
