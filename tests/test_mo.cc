/**
 * @file
 * Unit tests for the multi-objective subsystem (src/mo/): dominance and
 * front machinery, ParetoArchive invariants + text persistence,
 * vector-objective evaluation parity against scalar evaluators, NSGA-II
 * determinism across thread counts and kernels, and front quality
 * against the five single-objective optima on Mix/S2.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <vector>

#include "api/runner.h"
#include "m3e/problem.h"
#include "mo/nsga2.h"
#include "mo/pareto.h"
#include "mo/vector_fitness.h"
#include "opt/magma_ga.h"

using namespace magma;
using mo::MoPoint;
using mo::ObjectiveVector;
using mo::ParetoArchive;

namespace {

const std::vector<sched::Objective> kAllObjectives = {
    sched::Objective::Throughput, sched::Objective::Latency,
    sched::Objective::Energy, sched::Objective::EnergyDelay,
    sched::Objective::PerfPerWatt};

/** Mix/S2 under bandwidth pressure — the regime where throughput and
 * energy genuinely trade off (at compute-bound BW the front collapses
 * toward a single jointly-optimal point). */
std::unique_ptr<m3e::Problem>
mixS2Problem(int group = 30, uint64_t seed = 1)
{
    return m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 2.0,
                            group, seed);
}

MoPoint
point(std::vector<double> objs)
{
    MoPoint p;
    p.objs = std::move(objs);
    p.m.accelSel = {0};
    p.m.priority = {0.5};
    return p;
}

}  // namespace

// ------------------------------------------------- dominance basics ---

TEST(Dominance, StrictAndWeak)
{
    ObjectiveVector a = {2.0, 3.0};
    ObjectiveVector b = {1.0, 3.0};
    ObjectiveVector c = {3.0, 1.0};
    EXPECT_TRUE(mo::dominates(a, b));
    EXPECT_FALSE(mo::dominates(b, a));
    EXPECT_FALSE(mo::dominates(a, c));
    EXPECT_FALSE(mo::dominates(c, a));
    EXPECT_FALSE(mo::dominates(a, a));  // equal: not strict
    EXPECT_TRUE(mo::weaklyDominates(a, a));
    EXPECT_TRUE(mo::weaklyDominates(a, b));
    EXPECT_FALSE(mo::weaklyDominates(b, a));
}

TEST(Dominance, NonDominatedRanksHandCase)
{
    // Front 0: (4,1), (1,4), (3,3); front 1: (2,2); front 2: (1,1).
    std::vector<ObjectiveVector> objs = {
        {4, 1}, {1, 4}, {2, 2}, {3, 3}, {1, 1}};
    std::vector<int> rank = mo::nonDominatedRanks(objs);
    EXPECT_EQ(rank, (std::vector<int>{0, 0, 1, 0, 2}));
}

TEST(Dominance, CrowdingBoundariesAreInfinite)
{
    std::vector<ObjectiveVector> objs = {{1, 4}, {2, 3}, {3, 2}, {4, 1}};
    std::vector<int> front = {0, 1, 2, 3};
    std::vector<double> crowd = mo::crowdingDistances(objs, front);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(crowd[0], kInf);
    EXPECT_EQ(crowd[3], kInf);
    EXPECT_GT(crowd[1], 0.0);
    EXPECT_LT(crowd[1], kInf);
    // Symmetric spacing: the two interior points are equally crowded.
    EXPECT_DOUBLE_EQ(crowd[1], crowd[2]);
}

// --------------------------------------------------- ParetoArchive ---

TEST(ParetoArchive, KeepsMutuallyNonDominated)
{
    ParetoArchive arch({sched::Objective::Throughput,
                        sched::Objective::Energy});
    EXPECT_TRUE(arch.insert(point({2.0, 2.0})));
    EXPECT_FALSE(arch.insert(point({1.0, 2.0})));  // dominated
    EXPECT_FALSE(arch.insert(point({2.0, 2.0})));  // duplicate
    EXPECT_TRUE(arch.insert(point({3.0, 1.0})));   // trade-off
    EXPECT_TRUE(arch.insert(point({1.0, 3.0})));   // trade-off
    ASSERT_EQ(arch.size(), 3u);
    EXPECT_TRUE(arch.insert(point({4.0, 4.0})));   // dominates all
    ASSERT_EQ(arch.size(), 1u);
    EXPECT_EQ(arch.points()[0].objs, (ObjectiveVector{4.0, 4.0}));

    EXPECT_THROW(arch.insert(point({1.0})), std::invalid_argument);
}

TEST(ParetoArchive, CapacityPrunesLeastCrowded)
{
    ParetoArchive arch(
        {sched::Objective::Throughput, sched::Objective::Energy}, 3);
    EXPECT_TRUE(arch.insert(point({1.0, 10.0})));
    EXPECT_TRUE(arch.insert(point({10.0, 1.0})));
    EXPECT_TRUE(arch.insert(point({5.0, 5.0})));
    // (5.2, 4.9): non-dominated, but squeezes next to (5,5); one of the
    // two interior points must go — the extremes always survive.
    arch.insert(point({5.2, 4.9}));
    ASSERT_EQ(arch.size(), 3u);
    bool has_lo = false, has_hi = false;
    for (const MoPoint& p : arch.points()) {
        has_lo |= p.objs == ObjectiveVector{1.0, 10.0};
        has_hi |= p.objs == ObjectiveVector{10.0, 1.0};
    }
    EXPECT_TRUE(has_lo);
    EXPECT_TRUE(has_hi);
}

TEST(ParetoArchive, TextRoundTripIsExact)
{
    common::Rng rng(7);
    ParetoArchive arch(
        {sched::Objective::Throughput, sched::Objective::EnergyDelay}, 16);
    for (int i = 0; i < 10; ++i) {
        MoPoint p;
        p.m = sched::Mapping::random(12, 4, rng);
        // Anti-correlated objectives keep most points on the front.
        double t = rng.uniform();
        p.objs = {1.0 + t, 2.0 - t};
        arch.insert(p);
    }
    ASSERT_GT(arch.size(), 2u);
    ParetoArchive back = ParetoArchive::fromText(arch.toText());
    EXPECT_EQ(back, arch);

    std::string path = ::testing::TempDir() + "mo_front.txt";
    arch.save(path);
    EXPECT_EQ(ParetoArchive::load(path), arch);
    std::remove(path.c_str());

    EXPECT_THROW(ParetoArchive::fromText("no header\n"),
                 std::invalid_argument);
    EXPECT_THROW(ParetoArchive::load("/nonexistent/front.txt"),
                 std::runtime_error);
}

TEST(ParetoArchive, HypervolumeKnownValues)
{
    ParetoArchive arch(
        {sched::Objective::Throughput, sched::Objective::Energy});
    ObjectiveVector origin = {0.0, 0.0};
    EXPECT_EQ(arch.hypervolume(origin), 0.0);
    arch.insert(point({3.0, 1.0}));
    EXPECT_DOUBLE_EQ(arch.hypervolume(origin), 3.0);
    arch.insert(point({1.0, 2.0}));
    // Union of [0,3]x[0,1] and [0,1]x[0,2]: 3 + 1 = 4.
    EXPECT_DOUBLE_EQ(arch.hypervolume(origin), 4.0);
    // Shifted reference clips: ref (1,0) leaves [1,3]x[0,1] = 2 plus
    // nothing from (1,2) (not strictly inside on obj0).
    EXPECT_DOUBLE_EQ(arch.hypervolume({1.0, 0.0}), 2.0);

    ParetoArchive arch3({sched::Objective::Throughput,
                         sched::Objective::Energy,
                         sched::Objective::Latency});
    arch3.insert(point({2.0, 3.0, 4.0}));
    EXPECT_DOUBLE_EQ(arch3.hypervolume({0.0, 0.0, 0.0}), 24.0);
    arch3.insert(point({3.0, 2.0, 4.0}));
    // Adds (3-2)*2*4 = 8 beyond the first box.
    EXPECT_DOUBLE_EQ(arch3.hypervolume({0.0, 0.0, 0.0}), 32.0);
}

TEST(ParetoArchive, EpsilonIndicator)
{
    std::vector<ObjectiveVector> a = {{2.0, 2.0}};
    std::vector<ObjectiveVector> b = {{3.0, 1.0}, {1.0, 3.0}};
    // Each b needs a shifted up by 1 in one objective.
    EXPECT_DOUBLE_EQ(ParetoArchive::epsilonIndicator(a, b), 1.0);
    // a covers itself with no shift; b covers a with eps -1 (b's (3,1)
    // is 1 short on obj1, (1,3) is 1 short on obj0 -> min over b is 1).
    EXPECT_DOUBLE_EQ(ParetoArchive::epsilonIndicator(a, a), 0.0);
    EXPECT_DOUBLE_EQ(ParetoArchive::epsilonIndicator(b, a), 1.0);
    EXPECT_EQ(ParetoArchive::epsilonIndicator({}, b),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(ParetoArchive::epsilonIndicator(a, {}), 0.0);
}

TEST(ParetoArchive, SeedMappingsPreserveInsertionOrder)
{
    common::Rng rng(3);
    ParetoArchive arch({sched::Objective::Throughput});
    sched::Mapping m = sched::Mapping::random(8, 4, rng);
    MoPoint p;
    p.m = m;
    p.objs = {1.0};
    arch.insert(p);
    std::vector<sched::Mapping> seeds = arch.seedMappings();
    ASSERT_EQ(seeds.size(), 1u);
    EXPECT_EQ(seeds[0], m);
}

// --------------------------------------------- vector evaluation ---

TEST(VectorFitness, BitwiseEqualsPerObjectiveScalarEvaluation)
{
    const int group = 20;
    auto base = mixS2Problem(group);
    common::Rng rng(42);

    for (sched::EvalMode mode :
         {sched::EvalMode::Flat, sched::EvalMode::Reference}) {
        mo::VectorFitness vf(base->evaluator(), kAllObjectives, 1, mode);
        std::vector<sched::Mapping> batch;
        for (int i = 0; i < 16; ++i)
            batch.push_back(sched::Mapping::random(
                group, base->evaluator().numAccels(), rng));
        std::vector<ObjectiveVector> vecs = vf.evaluateBatch(batch);
        ASSERT_EQ(vecs.size(), batch.size());

        for (size_t k = 0; k < kAllObjectives.size(); ++k) {
            // A fresh evaluator fixed on objective k, over the same
            // group/platform/cost model.
            sched::MappingEvaluator scalar(
                base->group(), base->platform(), base->costModel(),
                sched::BwPolicy::Proportional, nullptr, kAllObjectives[k]);
            for (size_t i = 0; i < batch.size(); ++i)
                EXPECT_EQ(vecs[i][k], scalar.fitness(batch[i]))
                    << "objective "
                    << sched::objectiveName(kAllObjectives[k])
                    << " candidate " << i << " mode "
                    << sched::evalModeName(mode);
        }
    }
}

TEST(VectorFitness, OneSamplePerCandidateNotPerObjective)
{
    auto p = mixS2Problem(16);
    mo::VectorFitness vf(p->evaluator(), kAllObjectives);
    p->evaluator().resetSampleCount();
    common::Rng rng(5);
    std::vector<sched::Mapping> batch;
    for (int i = 0; i < 10; ++i)
        batch.push_back(
            sched::Mapping::random(16, p->evaluator().numAccels(), rng));
    vf.evaluateBatch(batch);
    EXPECT_EQ(p->evaluator().sampleCount(), 10);
}

TEST(VectorFitness, BatchIsThreadCountInvariant)
{
    auto p = mixS2Problem(18);
    common::Rng rng(9);
    std::vector<sched::Mapping> batch;
    for (int i = 0; i < 32; ++i)
        batch.push_back(
            sched::Mapping::random(18, p->evaluator().numAccels(), rng));
    mo::VectorFitness serial(p->evaluator(), kAllObjectives, 1);
    mo::VectorFitness parallel(p->evaluator(), kAllObjectives, 4);
    EXPECT_EQ(serial.evaluateBatch(batch), parallel.evaluateBatch(batch));
}

// ------------------------------------------------------- NSGA-II ---

TEST(Nsga2, FrontIsMutuallyNonDominated)
{
    auto p = mixS2Problem();
    mo::Nsga2 nsga(1);
    opt::SearchOptions opts;
    opts.sampleBudget = 1500;
    mo::MoSearchResult res = nsga.searchMo(
        p->evaluator(),
        {sched::Objective::Throughput, sched::Objective::Energy}, opts);
    const auto& pts = res.front.points();
    ASSERT_GE(pts.size(), 2u);  // BW-starved Mix/S2 has a real trade-off
    EXPECT_EQ(res.samplesUsed, 1500);
    for (size_t i = 0; i < pts.size(); ++i)
        for (size_t j = 0; j < pts.size(); ++j)
            if (i != j) {
                EXPECT_FALSE(mo::dominates(pts[i].objs, pts[j].objs))
                    << i << " dominates " << j;
            }
}

TEST(Nsga2, BitwiseIdenticalAcrossThreadCountsAndKernels)
{
    auto p = mixS2Problem();
    std::vector<sched::Objective> objectives = {
        sched::Objective::Throughput, sched::Objective::Energy};

    auto run = [&](int threads, sched::EvalMode mode) {
        mo::Nsga2 nsga(7);
        opt::SearchOptions opts;
        opts.sampleBudget = 1200;
        opts.threads = threads;
        opts.evalMode = mode;
        return nsga.searchMo(p->evaluator(), objectives, opts);
    };

    mo::MoSearchResult serial = run(1, sched::EvalMode::Flat);
    mo::MoSearchResult wide = run(4, sched::EvalMode::Flat);
    mo::MoSearchResult reference = run(1, sched::EvalMode::Reference);
    ASSERT_GE(serial.front.size(), 2u);
    EXPECT_EQ(serial.front, wide.front);
    EXPECT_EQ(serial.samplesUsed, wide.samplesUsed);
    EXPECT_EQ(serial.front, reference.front);
}

TEST(Nsga2, BudgetTruncationMidGeneration)
{
    auto p = mixS2Problem(12);
    mo::Nsga2 nsga(3);
    opt::SearchOptions opts;
    opts.sampleBudget = 150;  // pop 100: truncates the second generation
    mo::MoSearchResult res = nsga.searchMo(
        p->evaluator(),
        {sched::Objective::Throughput, sched::Objective::Energy}, opts);
    EXPECT_EQ(res.samplesUsed, 150);
    EXPECT_FALSE(res.front.empty());
}

TEST(Nsga2, FrontCoversOrBeatsAllFiveScalarOptima)
{
    // Section VI's five reporting lenses, one scalar MAGMA run each;
    // their optima then seed NSGA-II (the warm-start path fronts are
    // meant for), whose archive must end with every scalar optimum
    // covered — each is weakly dominated by some front member — and no
    // front member dominated by any optimum.
    auto p = mixS2Problem();
    opt::SearchOptions scalar_opts;
    scalar_opts.sampleBudget = 800;

    mo::VectorFitness vf(p->evaluator(), kAllObjectives);
    std::vector<sched::Mapping> optima;
    std::vector<ObjectiveVector> optima_vecs;
    for (sched::Objective o : kAllObjectives) {
        sched::MappingEvaluator scalar(p->group(), p->platform(),
                                       p->costModel(),
                                       sched::BwPolicy::Proportional,
                                       nullptr, o);
        opt::MagmaGa ga(11);
        opt::SearchResult r = ga.search(scalar, scalar_opts);
        optima.push_back(r.best);
        optima_vecs.push_back(vf.evaluate(r.best));
    }

    mo::Nsga2Config cfg;
    cfg.archiveCapacity = 0;  // unbounded: coverage must be exact
    mo::Nsga2 nsga(11, cfg);
    opt::SearchOptions mo_opts;
    mo_opts.sampleBudget = 2000;
    mo_opts.seeds = optima;
    mo::MoSearchResult res =
        nsga.searchMo(p->evaluator(), kAllObjectives, mo_opts);
    const auto& pts = res.front.points();
    ASSERT_FALSE(pts.empty());

    for (size_t i = 0; i < pts.size(); ++i)
        for (size_t k = 0; k < optima_vecs.size(); ++k)
            EXPECT_FALSE(mo::dominates(optima_vecs[k], pts[i].objs))
                << "scalar optimum " << k << " dominates front point "
                << i;
    for (size_t k = 0; k < optima_vecs.size(); ++k) {
        bool covered = false;
        for (const MoPoint& pt : pts)
            covered |= mo::weaklyDominates(pt.objs, optima_vecs[k]);
        EXPECT_TRUE(covered)
            << "front misses scalar optimum "
            << sched::objectiveName(kAllObjectives[k]);
    }
}

TEST(Nsga2, ScalarModeBehavesLikeAnOptimizer)
{
    auto p = mixS2Problem(16);
    opt::SearchOptions opts;
    opts.sampleBudget = 600;
    mo::Nsga2 a(5), b(5);
    opt::SearchResult ra = a.search(p->evaluator(), opts);
    opt::SearchResult rb = b.search(p->evaluator(), opts);
    EXPECT_EQ(ra.best, rb.best);
    EXPECT_EQ(ra.bestFitness, rb.bestFitness);
    EXPECT_EQ(ra.samplesUsed, 600);
    EXPECT_GT(ra.bestFitness, 0.0);

    mo::Nsga2 empty(5);
    EXPECT_THROW(empty.searchMo(p->evaluator(), {}, opts),
                 std::invalid_argument);
}

// ------------------------------------------------- api/ wiring ---

TEST(RunnerMo, ReportCarriesFrontAndRoundTrips)
{
    api::ProblemSpec ps;
    ps.groupSize = 30;
    ps.systemBwGbps = 2.0;
    api::SearchSpec ss;
    ss.method = "nsga2";
    ss.objectives = {sched::Objective::Throughput,
                     sched::Objective::Energy};
    ss.sampleBudget = 1500;
    ss.seed = 1;

    api::Runner runner;
    api::RunReport rep = runner.run(ps, ss);
    EXPECT_EQ(rep.method, "NSGA-II");
    ASSERT_GE(rep.front.size(), 2u);
    EXPECT_EQ(rep.samplesUsed, 1500);

    // `best` is the primary-objective argmax of the front.
    double best0 = rep.front[0].objs[0];
    for (const MoPoint& pt : rep.front)
        best0 = std::max(best0, pt.objs[0]);
    EXPECT_EQ(rep.bestFitness, best0);

    api::RunReport back = api::RunReport::fromText(rep.toText());
    EXPECT_EQ(back, rep);

    std::string csv = rep.frontCsv();
    EXPECT_NE(csv.find("point,throughput,energy,mapping"),
              std::string::npos);
    size_t rows = 0;
    for (char c : csv)
        rows += c == '\n';
    EXPECT_EQ(rows, rep.front.size() + 1);

    // The archive view persists and reloads exactly.
    mo::ParetoArchive arch = rep.frontArchive();
    EXPECT_EQ(arch.size(), rep.front.size());
    EXPECT_EQ(mo::ParetoArchive::fromText(arch.toText()), arch);
}

TEST(RunnerMo, DeterministicAcrossRunnersAndThreads)
{
    api::ProblemSpec ps;
    ps.groupSize = 16;
    ps.systemBwGbps = 2.0;
    api::SearchSpec ss;
    ss.method = "NSGA-II";
    ss.objectives = {sched::Objective::Throughput,
                     sched::Objective::Energy};
    ss.sampleBudget = 800;
    ss.seed = 4;

    api::Runner r1, r2;
    api::RunReport a = r1.run(ps, ss);
    ss.threads = 4;
    api::RunReport b = r2.run(ps, ss);
    EXPECT_EQ(a.front, b.front);
    EXPECT_EQ(a.best, b.best);
    EXPECT_EQ(a.bestFitness, b.bestFitness);
}

TEST(RunnerMo, ScalarOnlyMethodRejectsObjectivesList)
{
    api::ProblemSpec ps;
    ps.groupSize = 12;
    api::SearchSpec ss;
    ss.method = "MAGMA";
    ss.objectives = {sched::Objective::Throughput,
                     sched::Objective::Energy};
    ss.sampleBudget = 100;
    api::Runner runner;
    EXPECT_THROW(runner.run(ps, ss), std::invalid_argument);
}

TEST(RunnerMo, ObjectiveListTextForms)
{
    EXPECT_EQ(sched::objectiveListName({}), "");
    EXPECT_EQ(sched::objectiveListName(
                  {sched::Objective::Throughput,
                   sched::Objective::EnergyDelay}),
              "throughput,energy-delay-product");
    EXPECT_EQ(sched::objectiveListFromName(""),
              std::vector<sched::Objective>{});
    EXPECT_EQ(sched::objectiveListFromName("throughput, edp"),
              (std::vector<sched::Objective>{
                  sched::Objective::Throughput,
                  sched::Objective::EnergyDelay}));
    EXPECT_THROW(sched::objectiveListFromName("throughput,bogus"),
                 std::invalid_argument);
    // Blank ELEMENTS are malformed (they would silently disable
    // multi-objective mode); only a fully blank input is the empty list.
    EXPECT_THROW(sched::objectiveListFromName(","),
                 std::invalid_argument);
    EXPECT_THROW(sched::objectiveListFromName("throughput,,energy"),
                 std::invalid_argument);
    EXPECT_EQ(sched::objectiveListFromName("  "),
              std::vector<sched::Objective>{});

    MoPoint p;
    p.m.accelSel = {1, 0};
    p.m.priority = {0.25, 0.75};
    p.objs = {1.5, 0x1.23456789abcdep-3};
    EXPECT_EQ(MoPoint::fromText(p.toText()), p);
    EXPECT_THROW(MoPoint::fromText("1.0 2.0 | no-semicolon"),
                 std::invalid_argument);
}
