/** @file Unit tests for the black-box optimizers and MAGMA's operators. */

#include <memory>

#include <gtest/gtest.h>

#include "m3e/factory.h"
#include "m3e/problem.h"
#include "opt/cma_es.h"
#include "opt/de.h"
#include "opt/magma_ga.h"
#include "opt/pso.h"
#include "opt/random_search.h"
#include "opt/std_ga.h"
#include "opt/tbpsa.h"
#include "opt/warm_start.h"

using namespace magma;
using opt::SearchOptions;
using opt::SearchResult;
using sched::Mapping;

namespace {

std::unique_ptr<m3e::Problem>
smallProblem(uint64_t seed = 11)
{
    return m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 4.0, 16,
                            seed);
}

}  // namespace

// ------------------------------------------------------ SearchRecorder ---

TEST(SearchRecorder, EnforcesBudgetAndTracksBest)
{
    auto p = smallProblem();
    SearchOptions opts;
    opts.sampleBudget = 7;
    opt::SearchRecorder rec(p->evaluator(), opts);
    common::Rng rng(1);
    double best = -1e300;
    for (int i = 0; i < 7; ++i) {
        EXPECT_FALSE(rec.exhausted());
        double f = rec.evaluate(
            Mapping::random(16, p->evaluator().numAccels(), rng));
        best = std::max(best, f);
    }
    EXPECT_TRUE(rec.exhausted());
    EXPECT_DOUBLE_EQ(rec.bestFitness(), best);
    SearchResult r = rec.finish();
    EXPECT_EQ(r.samplesUsed, 7);
    EXPECT_DOUBLE_EQ(r.bestFitness, best);
}

TEST(SearchRecorder, ConvergenceCurveMonotone)
{
    auto p = smallProblem();
    SearchOptions opts;
    opts.sampleBudget = 50;
    opts.recordConvergence = true;
    opt::RandomSearch rs(3);
    SearchResult r = rs.search(p->evaluator(), opts);
    ASSERT_EQ(r.convergence.size(), 50u);
    for (size_t i = 1; i < r.convergence.size(); ++i)
        EXPECT_GE(r.convergence[i], r.convergence[i - 1]);
    EXPECT_DOUBLE_EQ(r.convergence.back(), r.bestFitness);
}

TEST(SearchRecorder, RecordsSamplesWhenAsked)
{
    auto p = smallProblem();
    SearchOptions opts;
    opts.sampleBudget = 20;
    opts.recordSamples = true;
    opt::RandomSearch rs(4);
    SearchResult r = rs.search(p->evaluator(), opts);
    EXPECT_EQ(r.sampled.size(), 20u);
    EXPECT_EQ(r.sampledFitness.size(), 20u);
}

// ------------------------------------------------------ budget respect ---

class BudgetSweep : public ::testing::TestWithParam<m3e::Method> {};

TEST_P(BudgetSweep, EveryMethodRespectsBudget)
{
    auto p = smallProblem();
    p->evaluator().resetSampleCount();
    auto optimizer = m3e::makeOptimizer(GetParam(), 5);
    SearchOptions opts;
    opts.sampleBudget = 120;
    SearchResult r = optimizer->search(p->evaluator(), opts);
    EXPECT_LE(r.samplesUsed, 120);
    EXPECT_GT(r.samplesUsed, 0);
    EXPECT_EQ(p->evaluator().sampleCount(), r.samplesUsed);
    EXPECT_GT(r.bestFitness, 0.0);
    EXPECT_EQ(r.best.size(), 16);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, BudgetSweep,
    ::testing::Values(m3e::Method::HeraldLike, m3e::Method::AiMtLike,
                      m3e::Method::Pso, m3e::Method::Cma, m3e::Method::De,
                      m3e::Method::Tbpsa, m3e::Method::StdGa,
                      m3e::Method::Magma, m3e::Method::Random),
    [](const auto& info) {
        std::string n = m3e::methodName(info.param);
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

class SeedDeterminism : public ::testing::TestWithParam<m3e::Method> {};

TEST_P(SeedDeterminism, SameSeedSameResult)
{
    auto p = smallProblem();
    SearchOptions opts;
    opts.sampleBudget = 150;
    auto o1 = m3e::makeOptimizer(GetParam(), 99);
    auto o2 = m3e::makeOptimizer(GetParam(), 99);
    SearchResult r1 = o1->search(p->evaluator(), opts);
    SearchResult r2 = o2->search(p->evaluator(), opts);
    EXPECT_DOUBLE_EQ(r1.bestFitness, r2.bestFitness);
    EXPECT_EQ(r1.best, r2.best);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, SeedDeterminism,
    ::testing::Values(m3e::Method::Pso, m3e::Method::Cma, m3e::Method::De,
                      m3e::Method::Tbpsa, m3e::Method::StdGa,
                      m3e::Method::Magma, m3e::Method::Random),
    [](const auto& info) {
        std::string n = m3e::methodName(info.param);
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// --------------------------------------------- search quality (smoke) ----

class BeatsEarlyRandom : public ::testing::TestWithParam<m3e::Method> {};

TEST_P(BeatsEarlyRandom, SearchImprovesOverFirstSamples)
{
    auto p = smallProblem(21);
    SearchOptions opts;
    opts.sampleBudget = 600;
    opts.recordConvergence = true;
    auto optimizer = m3e::makeOptimizer(GetParam(), 13);
    SearchResult r = optimizer->search(p->evaluator(), opts);
    // The incumbent after the full budget must beat the best of the first
    // 20 samples (i.e. the method actually searches).
    double early = r.convergence[19];
    EXPECT_GT(r.bestFitness, early * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(
    Searchers, BeatsEarlyRandom,
    ::testing::Values(m3e::Method::De, m3e::Method::StdGa,
                      m3e::Method::Magma, m3e::Method::Tbpsa),
    [](const auto& info) {
        std::string n = m3e::methodName(info.param);
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(MagmaQuality, BeatsRandomSearchOnMixS2)
{
    auto p = smallProblem(31);
    SearchOptions opts;
    opts.sampleBudget = 800;
    opt::MagmaGa magma_ga(7);
    opt::RandomSearch random(7);
    double fm = magma_ga.search(p->evaluator(), opts).bestFitness;
    double fr = random.search(p->evaluator(), opts).bestFitness;
    EXPECT_GE(fm, fr);
}

// --------------------------------------------------- MAGMA's operators ---

TEST(MagmaOperators, CrossoverGenTouchesExactlyOneGenome)
{
    common::Rng rng(41);
    for (int trial = 0; trial < 50; ++trial) {
        Mapping a = Mapping::random(20, 4, rng);
        Mapping b = Mapping::random(20, 4, rng);
        Mapping a0 = a, b0 = b;
        opt::MagmaGa::crossoverGen(a, b, rng);
        bool accel_changed = a.accelSel != a0.accelSel ||
                             b.accelSel != b0.accelSel;
        bool prio_changed = a.priority != a0.priority ||
                            b.priority != b0.priority;
        // One genome may change; never both (genome-wise perturbation).
        EXPECT_FALSE(accel_changed && prio_changed);
        // Swapped tails preserve the multiset of genes.
        for (int i = 0; i < 20; ++i) {
            EXPECT_TRUE((a.accelSel[i] == a0.accelSel[i] &&
                         b.accelSel[i] == b0.accelSel[i]) ||
                        (a.accelSel[i] == b0.accelSel[i] &&
                         b.accelSel[i] == a0.accelSel[i]));
        }
    }
}

TEST(MagmaOperators, CrossoverRgSwapsContiguousRangeInBothGenomes)
{
    common::Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        Mapping a = Mapping::random(15, 3, rng);
        Mapping b = Mapping::random(15, 3, rng);
        Mapping a0 = a, b0 = b;
        opt::MagmaGa::crossoverRg(a, b, rng);
        // Each position is either fully swapped (both genomes) or fully
        // untouched — the per-job cross-genome dependency is preserved.
        bool in_range = false, left_range = false;
        for (int i = 0; i < 15; ++i) {
            bool swapped = a.accelSel[i] == b0.accelSel[i] &&
                           b.accelSel[i] == a0.accelSel[i] &&
                           a.priority[i] == b0.priority[i] &&
                           b.priority[i] == a0.priority[i];
            bool untouched = a.accelSel[i] == a0.accelSel[i] &&
                             b.accelSel[i] == b0.accelSel[i] &&
                             a.priority[i] == a0.priority[i] &&
                             b.priority[i] == b0.priority[i];
            EXPECT_TRUE(swapped || untouched) << i;
            // Range contiguity: untouched -> swapped -> untouched.
            if (swapped && !in_range) {
                EXPECT_FALSE(left_range);
                in_range = true;
            }
            if (!swapped && in_range) {
                in_range = false;
                left_range = true;
            }
        }
    }
}

TEST(MagmaOperators, CrossoverAccelTransplantsDonorJobSet)
{
    common::Rng rng(43);
    for (int trial = 0; trial < 50; ++trial) {
        Mapping child = Mapping::random(20, 4, rng);
        Mapping donor = Mapping::random(20, 4, rng);
        Mapping child0 = child;
        common::Rng op_rng(trial);
        opt::MagmaGa::crossoverAccel(child, donor, 4, op_rng);
        // Identify the transplanted accelerator: every job the donor put
        // there must now be there in the child with the donor's priority.
        // (We can't know which accel was drawn, so check that SOME accel
        // satisfies the property.)
        bool some_accel_ok = false;
        for (int a = 0; a < 4; ++a) {
            bool ok = true;
            for (int j = 0; j < 20; ++j) {
                if (donor.accelSel[j] == a &&
                    (child.accelSel[j] != a ||
                     child.priority[j] != donor.priority[j]))
                    ok = false;
            }
            if (ok)
                some_accel_ok = true;
        }
        EXPECT_TRUE(some_accel_ok);
        (void)child0;
    }
}

TEST(MagmaOperators, MutateRateZeroIsIdentity)
{
    common::Rng rng(44);
    Mapping m = Mapping::random(25, 4, rng);
    Mapping m0 = m;
    opt::MagmaGa::mutate(m, 0.0, 4, rng);
    EXPECT_EQ(m, m0);
}

TEST(MagmaOperators, MutateRateOneChangesGenesWithinBounds)
{
    common::Rng rng(45);
    Mapping m = Mapping::random(100, 4, rng);
    Mapping m0 = m;
    opt::MagmaGa::mutate(m, 1.0, 4, rng);
    int changed = 0;
    for (int i = 0; i < 100; ++i) {
        EXPECT_GE(m.accelSel[i], 0);
        EXPECT_LT(m.accelSel[i], 4);
        if (m.accelSel[i] != m0.accelSel[i] ||
            m.priority[i] != m0.priority[i])
            ++changed;
    }
    EXPECT_GT(changed, 80);  // rate-1 mutation rewrites nearly everything
}

TEST(MagmaOperators, AblationSwitchesDisableCrossovers)
{
    // With all crossovers off, MAGMA degenerates to mutation-only GA and
    // must still run and respect the budget (the Fig. 16 ablation mode).
    auto p = smallProblem(51);
    opt::MagmaConfig cfg;
    cfg.enableCrossoverGen = false;
    cfg.enableCrossoverRg = false;
    cfg.enableCrossoverAccel = false;
    opt::MagmaGa mut_only(3, cfg);
    SearchOptions opts;
    opts.sampleBudget = 300;
    SearchResult r = mut_only.search(p->evaluator(), opts);
    EXPECT_LE(r.samplesUsed, 300);
    EXPECT_GT(r.bestFitness, 0.0);
}

// ----------------------------------------------------------- warm start --

TEST(WarmStart, EmptyEngineHasNothing)
{
    opt::WarmStartEngine ws;
    EXPECT_FALSE(ws.has(dnn::TaskType::Mix));
    common::Rng rng(61);
    EXPECT_TRUE(ws.makeSeeds(dnn::TaskType::Mix, 5, 10, 4, rng).empty());
}

TEST(WarmStart, StoreAndSeedSameSize)
{
    opt::WarmStartEngine ws;
    common::Rng rng(62);
    Mapping best = Mapping::random(20, 4, rng);
    ws.store(dnn::TaskType::Language, best);
    EXPECT_TRUE(ws.has(dnn::TaskType::Language));
    EXPECT_FALSE(ws.has(dnn::TaskType::Vision));
    auto seeds = ws.makeSeeds(dnn::TaskType::Language, 6, 20, 4, rng);
    ASSERT_EQ(seeds.size(), 6u);
    EXPECT_EQ(seeds[0], best);  // first seed is the stored solution
    for (const auto& s : seeds) {
        EXPECT_EQ(s.size(), 20);
        for (int g : s.accelSel) {
            EXPECT_GE(g, 0);
            EXPECT_LT(g, 4);
        }
    }
}

TEST(WarmStart, ResizesByGeneTiling)
{
    opt::WarmStartEngine ws;
    common::Rng rng(63);
    Mapping best = Mapping::random(10, 4, rng);
    ws.store(dnn::TaskType::Mix, best);
    auto seeds = ws.makeSeeds(dnn::TaskType::Mix, 2, 25, 4, rng);
    ASSERT_EQ(seeds.size(), 2u);
    EXPECT_EQ(seeds[0].size(), 25);
    for (int i = 0; i < 25; ++i)
        EXPECT_EQ(seeds[0].accelSel[i], best.accelSel[i % 10]);
}

TEST(WarmStart, ClampsAccelGenesToSmallerPlatform)
{
    opt::WarmStartEngine ws;
    common::Rng rng(64);
    Mapping best = Mapping::random(10, 8, rng);
    ws.store(dnn::TaskType::Mix, best);
    auto seeds = ws.makeSeeds(dnn::TaskType::Mix, 3, 10, 2, rng);
    for (const auto& s : seeds)
        for (int g : s.accelSel)
            EXPECT_LT(g, 2);
}

TEST(WarmStart, JobMatchedTransferCopiesGenesFromSimilarJobs)
{
    // Build a solved group with a deliberate pattern: language jobs on
    // core 0, vision jobs on core 1. A new group's language jobs must
    // inherit core 0 and vision jobs core 1 through job matching.
    dnn::WorkloadGenerator gen(81);
    dnn::JobGroup solved_group;
    solved_group.task = dnn::TaskType::Mix;
    Mapping solved;
    for (int i = 0; i < 12; ++i) {
        dnn::Job j;
        j.id = i;
        bool lang = i % 2 == 0;
        j.layer = lang ? dnn::fc(768, 768) : dnn::conv(64, 64, 28, 28, 3, 3);
        j.batch = lang ? 128 : 4;
        j.task = lang ? dnn::TaskType::Language : dnn::TaskType::Vision;
        j.model = "synthetic";
        solved_group.jobs.push_back(j);
        solved.accelSel.push_back(lang ? 0 : 1);
        solved.priority.push_back(0.5);
    }
    opt::WarmStartEngine ws;
    ws.store(dnn::TaskType::Mix, solved, solved_group);

    dnn::JobGroup target = solved_group;  // same composition, new draw
    common::Rng rng(82);
    auto seeds = ws.makeSeeds(dnn::TaskType::Mix, 1, target, 4, rng);
    ASSERT_EQ(seeds.size(), 1u);
    for (int i = 0; i < target.size(); ++i) {
        int expected = target.jobs[i].task == dnn::TaskType::Language ? 0
                                                                      : 1;
        EXPECT_EQ(seeds[0].accelSel[i], expected) << i;
    }
}

TEST(WarmStart, JobMatchedFallsBackToPositionalWithoutGroup)
{
    opt::WarmStartEngine ws;
    common::Rng rng(83);
    Mapping best = Mapping::random(10, 4, rng);
    ws.store(dnn::TaskType::Mix, best);  // no group attached
    dnn::WorkloadGenerator gen(84);
    dnn::JobGroup target = gen.makeGroup(dnn::TaskType::Mix, 10);
    auto seeds = ws.makeSeeds(dnn::TaskType::Mix, 2, target, 4, rng);
    ASSERT_EQ(seeds.size(), 2u);
    EXPECT_EQ(seeds[0], best);
}

TEST(WarmStart, EmptyEngineJobMatchedSeedsAreEmpty)
{
    opt::WarmStartEngine ws;
    common::Rng rng(85);
    dnn::WorkloadGenerator gen(85);
    dnn::JobGroup target = gen.makeGroup(dnn::TaskType::Vision, 8);
    EXPECT_TRUE(ws.makeSeeds(dnn::TaskType::Vision, 4, target, 4, rng)
                    .empty());
}

TEST(WarmStart, GrouplessStoreMatchesPositionalTransferExactly)
{
    // A store entry without an attached group must degrade to the
    // positional path verbatim — including the gene-tiling resize — so
    // the two makeSeeds overloads cannot drift apart.
    opt::WarmStartEngine ws;
    common::Rng store_rng(86);
    Mapping best = Mapping::random(10, 4, store_rng);
    ws.store(dnn::TaskType::Mix, best);

    dnn::WorkloadGenerator gen(87);
    dnn::JobGroup target = gen.makeGroup(dnn::TaskType::Mix, 14);

    common::Rng rng_a(88), rng_b(88);
    auto job_matched = ws.makeSeeds(dnn::TaskType::Mix, 5, target, 4,
                                    rng_a);
    auto positional = ws.makeSeeds(dnn::TaskType::Mix, 5, 14, 4, rng_b);
    ASSERT_EQ(job_matched.size(), positional.size());
    for (size_t i = 0; i < positional.size(); ++i)
        EXPECT_EQ(job_matched[i], positional[i]) << "seed " << i;
}

TEST(WarmStart, SizeClassMissFallsBackToCoarserBucket)
{
    // Stored: one small Language FC on core 3, one Vision conv on core 1.
    // Target: a huge Language FC — its fine (size-classed) bucket misses,
    // but the coarse task+layer-type bucket must still steer it to core 3
    // instead of a random gene.
    dnn::JobGroup solved_group;
    solved_group.task = dnn::TaskType::Mix;
    Mapping solved;

    dnn::Job small_fc;
    small_fc.id = 0;
    small_fc.layer = dnn::fc(64, 64);  // ~4K MACs
    small_fc.batch = 1;
    small_fc.task = dnn::TaskType::Language;
    solved_group.jobs.push_back(small_fc);
    solved.accelSel.push_back(3);
    solved.priority.push_back(0.25);

    dnn::Job conv_job;
    conv_job.id = 1;
    conv_job.layer = dnn::conv(64, 64, 28, 28, 3, 3);
    conv_job.batch = 4;
    conv_job.task = dnn::TaskType::Vision;
    solved_group.jobs.push_back(conv_job);
    solved.accelSel.push_back(1);
    solved.priority.push_back(0.75);

    opt::WarmStartEngine ws;
    ws.store(dnn::TaskType::Mix, solved, solved_group);

    dnn::JobGroup target;
    target.task = dnn::TaskType::Mix;
    dnn::Job huge_fc = small_fc;
    huge_fc.layer = dnn::fc(4096, 4096);  // ~16.7M MACs per sample
    huge_fc.batch = 32;                   // far outside the stored class
    target.jobs.push_back(huge_fc);

    common::Rng rng(89);
    auto seeds = ws.makeSeeds(dnn::TaskType::Mix, 1, target, 4, rng);
    ASSERT_EQ(seeds.size(), 1u);
    EXPECT_EQ(seeds[0].accelSel[0], 3);       // from the coarse bucket
    EXPECT_EQ(seeds[0].priority[0], 0.25);    // gene copied, not drawn
}

TEST(WarmStart, JobMatchedTransferBeatsRandomInitOnAverage)
{
    // The Table V premise: warm seeds start better than random init.
    auto p1 = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 4.0,
                               24, 85);
    auto p2 = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 4.0,
                               24, 86);
    opt::SearchOptions opts;
    opts.sampleBudget = 1200;
    opt::MagmaGa magma_ga(5);
    opt::SearchResult solved = magma_ga.search(p1->evaluator(), opts);

    opt::WarmStartEngine ws;
    ws.store(dnn::TaskType::Mix, solved.best, p1->group());
    common::Rng rng(87);
    auto seeds = ws.makeSeeds(dnn::TaskType::Mix, 20, p2->group(),
                              p2->evaluator().numAccels(), rng);
    double warm_mean = 0.0, rand_mean = 0.0;
    for (const auto& s : seeds)
        warm_mean += p2->evaluator().fitness(s);
    for (int i = 0; i < 20; ++i)
        rand_mean += p2->evaluator().fitness(
            Mapping::random(24, p2->evaluator().numAccels(), rng));
    EXPECT_GT(warm_mean / 20.0, rand_mean / 20.0);
}

TEST(WarmStart, SeedsImproveInitialFitness)
{
    // Table V's headline: Trf-0-ep beats Raw by a wide margin.
    auto p1 = m3e::makeProblem(dnn::TaskType::Recommendation,
                               accel::Setting::S2, 1.0, 16, 71);
    auto p2 = m3e::makeProblem(dnn::TaskType::Recommendation,
                               accel::Setting::S2, 1.0, 16, 72);
    SearchOptions opts;
    opts.sampleBudget = 800;
    opt::MagmaGa magma_ga(5);
    SearchResult solved = magma_ga.search(p1->evaluator(), opts);

    opt::WarmStartEngine ws;
    ws.store(dnn::TaskType::Recommendation, solved.best);
    common::Rng rng(73);
    auto seeds = ws.makeSeeds(dnn::TaskType::Recommendation, 4, 16,
                              p2->evaluator().numAccels(), rng);

    // Best seed (0 epochs of further optimization) vs mean random.
    double seeded = 0.0;
    for (const auto& s : seeds)
        seeded = std::max(seeded, p2->evaluator().fitness(s));
    double random_mean = 0.0;
    const int n = 20;
    for (int i = 0; i < n; ++i)
        random_mean += p2->evaluator().fitness(
            Mapping::random(16, p2->evaluator().numAccels(), rng));
    random_mean /= n;
    EXPECT_GT(seeded, random_mean);
}

// ----------------------------------------------------------- factory -----

TEST(Factory, NamesRoundTrip)
{
    for (m3e::Method m : m3e::paperMethods())
        EXPECT_EQ(m3e::methodFromName(m3e::methodName(m)), m);
    EXPECT_EQ(m3e::methodFromName("Random"), m3e::Method::Random);
    EXPECT_THROW(m3e::methodFromName("nope"), std::invalid_argument);
}

TEST(Factory, PaperMethodOrderMatchesFigures)
{
    auto ms = m3e::paperMethods();
    ASSERT_EQ(ms.size(), 10u);
    EXPECT_EQ(m3e::methodName(ms.front()), "Herald-like");
    EXPECT_EQ(m3e::methodName(ms.back()), "MAGMA");
}

TEST(Factory, OptimizerNamesMatchEnumNames)
{
    for (m3e::Method m : m3e::paperMethods())
        EXPECT_EQ(m3e::makeOptimizer(m, 1)->name(), m3e::methodName(m));
}
