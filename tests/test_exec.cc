/**
 * @file Tests for the parallel search-execution engine (src/exec/):
 * ThreadPool, EvalEngine batch evaluation, CostCache memoization, and the
 * serial-vs-batch parity of every converted optimizer.
 */

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "exec/cost_cache.h"
#include "exec/eval_engine.h"
#include "exec/thread_pool.h"
#include "m3e/factory.h"
#include "m3e/problem.h"
#include "opt/cma_es.h"
#include "opt/de.h"
#include "opt/magma_ga.h"
#include "opt/pso.h"
#include "opt/random_search.h"
#include "opt/std_ga.h"
#include "opt/tbpsa.h"

using namespace magma;
using opt::SearchOptions;
using opt::SearchResult;
using sched::Mapping;

namespace {

std::unique_ptr<m3e::Problem>
smallProblem(uint64_t seed = 11)
{
    return m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 4.0, 16,
                            seed);
}

std::vector<Mapping>
randomBatch(const sched::MappingEvaluator& eval, int n, uint64_t seed)
{
    common::Rng rng(seed);
    std::vector<Mapping> batch;
    batch.reserve(n);
    for (int i = 0; i < n; ++i)
        batch.push_back(Mapping::random(eval.groupSize(), eval.numAccels(),
                                        rng));
    return batch;
}

}  // namespace

// --------------------------------------------------------- ThreadPool ---

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    exec::ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    constexpr int kN = 1000;
    std::vector<std::atomic<int>> counts(kN);
    pool.parallelFor(kN, [&](int64_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (int i = 0; i < kN; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    exec::ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1);
    std::vector<int> order;
    pool.parallelFor(5, [&](int64_t i) { order.push_back(int(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    exec::ThreadPool pool(3);
    for (int round = 0; round < 10; ++round) {
        std::atomic<int64_t> sum{0};
        pool.parallelFor(100, [&](int64_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 99 * 100 / 2);
    }
}

TEST(ThreadPool, PropagatesException)
{
    exec::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](int64_t i) {
                                      if (i == 17)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must survive the failed batch.
    std::atomic<int> n{0};
    pool.parallelFor(8, [&](int64_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, EmptyBatchIsNoop)
{
    exec::ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](int64_t) { ran = true; });
    EXPECT_FALSE(ran);
}

// --------------------------------------------------------- EvalEngine ---

TEST(EvalEngine, BatchMatchesSerialBitwise)
{
    auto p = smallProblem();
    std::vector<Mapping> batch = randomBatch(p->evaluator(), 64, 5);

    std::vector<double> serial;
    serial.reserve(batch.size());
    for (const Mapping& m : batch)
        serial.push_back(p->evaluator().fitness(m));

    exec::EvalEngine engine(p->evaluator(), 4);
    std::vector<double> parallel = engine.evaluateBatch(batch);

    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(parallel[i], serial[i]) << "candidate " << i;
}

TEST(EvalEngine, CountsOneSamplePerCandidate)
{
    auto p = smallProblem();
    std::vector<Mapping> batch = randomBatch(p->evaluator(), 50, 7);
    exec::EvalEngine engine(p->evaluator(), 4);
    p->evaluator().resetSampleCount();
    engine.evaluateBatch(batch);
    EXPECT_EQ(p->evaluator().sampleCount(), 50);
}

// ------------------------------------------------------ SearchRecorder ---

TEST(SearchRecorderBatch, TruncatesToRemainingBudget)
{
    auto p = smallProblem();
    SearchOptions opts;
    opts.sampleBudget = 10;
    opt::SearchRecorder rec(p->evaluator(), opts);
    std::vector<Mapping> batch = randomBatch(p->evaluator(), 25, 3);

    std::vector<double> fits = rec.evaluateBatch(batch);
    EXPECT_EQ(fits.size(), 10u);
    EXPECT_TRUE(rec.exhausted());
    EXPECT_EQ(rec.used(), 10);
    EXPECT_TRUE(rec.evaluateBatch(batch).empty());
    EXPECT_EQ(rec.finish().samplesUsed, 10);
}

TEST(SearchRecorderBatch, BitwiseIdenticalToSerialLoop)
{
    auto p = smallProblem();
    std::vector<Mapping> batch = randomBatch(p->evaluator(), 40, 9);

    SearchOptions serial_opts;
    serial_opts.sampleBudget = 40;
    serial_opts.recordConvergence = true;
    opt::SearchRecorder serial(p->evaluator(), serial_opts);
    std::vector<double> serial_fits;
    for (const Mapping& m : batch)
        serial_fits.push_back(serial.evaluate(m));
    SearchResult sr = serial.finish();

    SearchOptions batch_opts = serial_opts;
    batch_opts.threads = 4;
    opt::SearchRecorder batched(p->evaluator(), batch_opts);
    std::vector<double> batch_fits = batched.evaluateBatch(batch);
    SearchResult br = batched.finish();

    ASSERT_EQ(batch_fits.size(), serial_fits.size());
    for (size_t i = 0; i < serial_fits.size(); ++i)
        EXPECT_EQ(batch_fits[i], serial_fits[i]);
    EXPECT_EQ(br.bestFitness, sr.bestFitness);
    EXPECT_EQ(br.best, sr.best);
    EXPECT_EQ(br.samplesUsed, sr.samplesUsed);
    ASSERT_EQ(br.convergence.size(), sr.convergence.size());
    for (size_t i = 0; i < sr.convergence.size(); ++i)
        EXPECT_EQ(br.convergence[i], sr.convergence[i]);
}

TEST(SearchRecorderBatch, ExternalEngineIsUsed)
{
    auto p = smallProblem();
    exec::EvalEngine engine(p->evaluator(), 2);
    SearchOptions opts;
    opts.sampleBudget = 20;
    opts.engine = &engine;
    opt::SearchRecorder rec(p->evaluator(), opts);
    EXPECT_EQ(rec.engine(), &engine);
    std::vector<double> fits =
        rec.evaluateBatch(randomBatch(p->evaluator(), 20, 1));
    EXPECT_EQ(fits.size(), 20u);
}

// -------------------------------------------- optimizer serial parity ---

namespace {

/**
 * Run one optimizer twice with the same RNG seed — once serial, once on
 * 4 evaluation lanes — and require identical bestFitness, samplesUsed and
 * convergence curve (acceptance criterion of the exec subsystem).
 */
void
expectSerialBatchParity(m3e::Method method)
{
    auto p = smallProblem();
    SearchOptions opts;
    opts.sampleBudget = 400;
    opts.recordConvergence = true;

    auto serial_opt = m3e::makeOptimizer(method, /*seed=*/42);
    SearchResult serial = serial_opt->search(p->evaluator(), opts);

    opts.threads = 4;
    auto batch_opt = m3e::makeOptimizer(method, /*seed=*/42);
    SearchResult batched = batch_opt->search(p->evaluator(), opts);

    EXPECT_EQ(batched.bestFitness, serial.bestFitness)
        << m3e::methodName(method);
    EXPECT_EQ(batched.best, serial.best) << m3e::methodName(method);
    EXPECT_EQ(batched.samplesUsed, serial.samplesUsed)
        << m3e::methodName(method);
    ASSERT_EQ(batched.convergence.size(), serial.convergence.size())
        << m3e::methodName(method);
    for (size_t i = 0; i < serial.convergence.size(); ++i)
        ASSERT_EQ(batched.convergence[i], serial.convergence[i])
            << m3e::methodName(method) << " sample " << i;
}

}  // namespace

TEST(OptimizerBatchParity, Magma)
{
    expectSerialBatchParity(m3e::Method::Magma);
}
TEST(OptimizerBatchParity, StdGa)
{
    expectSerialBatchParity(m3e::Method::StdGa);
}
TEST(OptimizerBatchParity, Pso) { expectSerialBatchParity(m3e::Method::Pso); }
TEST(OptimizerBatchParity, De) { expectSerialBatchParity(m3e::Method::De); }
TEST(OptimizerBatchParity, Cma) { expectSerialBatchParity(m3e::Method::Cma); }
TEST(OptimizerBatchParity, Tbpsa)
{
    expectSerialBatchParity(m3e::Method::Tbpsa);
}
TEST(OptimizerBatchParity, Random)
{
    expectSerialBatchParity(m3e::Method::Random);
}

// ---------------------------------------------------------- CostCache ---

TEST(CostCache, HitReturnsColdMissValue)
{
    exec::CostCache cache(4);
    cost::CostModel model;
    cost::SubAccelConfig cfg;
    dnn::LayerShape layer = dnn::conv(64, 32, 14, 14, 3, 3);

    cost::CostResult direct = model.analyze(layer, 4, cfg);
    cost::CostResult miss = cache.analyze(model, layer, 4, cfg);
    cost::CostResult hit = cache.analyze(model, layer, 4, cfg);

    EXPECT_EQ(miss.noStallCycles, direct.noStallCycles);
    EXPECT_EQ(miss.reqBwGbps, direct.reqBwGbps);
    EXPECT_EQ(miss.energyPj, direct.energyPj);
    EXPECT_EQ(miss.dramBytes, direct.dramBytes);
    EXPECT_EQ(miss.macs, direct.macs);

    EXPECT_EQ(hit.noStallCycles, miss.noStallCycles);
    EXPECT_EQ(hit.reqBwGbps, miss.reqBwGbps);
    EXPECT_EQ(hit.energyPj, miss.energyPj);

    exec::CostCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1);
    EXPECT_EQ(s.misses, 1);
    EXPECT_EQ(s.entries, 1);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
}

TEST(CostCache, DiscriminatesConfigAndModelParams)
{
    exec::CostCache cache(4);
    cost::CostModel model;
    dnn::LayerShape layer = dnn::conv(64, 32, 14, 14, 3, 3);

    cost::SubAccelConfig hb;
    cost::SubAccelConfig lb;
    lb.dataflow = cost::DataflowStyle::LB;
    cache.analyze(model, layer, 4, hb);
    cache.analyze(model, layer, 4, lb);    // different dataflow
    cache.analyze(model, layer, 8, hb);    // different batch
    cost::SubAccelConfig tall = hb;
    tall.rows = 128;
    cache.analyze(model, layer, 4, tall);  // different shape
    cost::EnergyParams pricey;
    pricey.dramPjPerByte = 400.0;
    cost::CostModel model2(pricey);
    cache.analyze(model2, layer, 4, hb);   // different energy params

    exec::CostCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 0);
    EXPECT_EQ(s.misses, 5);
    EXPECT_EQ(s.entries, 5);
}

TEST(CostCache, ClearResetsEverything)
{
    exec::CostCache cache(2);
    cost::CostModel model;
    cost::SubAccelConfig cfg;
    dnn::LayerShape layer = dnn::fc(256, 128);
    cache.analyze(model, layer, 1, cfg);
    cache.analyze(model, layer, 1, cfg);
    cache.clear();
    exec::CostCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 0);
    EXPECT_EQ(s.misses, 0);
    EXPECT_EQ(s.entries, 0);
}

TEST(CostCache, JobAnalyzerTableIdenticalWithAndWithoutCache)
{
    dnn::WorkloadGenerator gen(3);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Mix, 24);
    accel::Platform platform = accel::makeSetting(accel::Setting::S2, 8.0);
    cost::CostModel model;

    sched::JobAnalyzer plain(model);
    sched::JobAnalysisTable cold = plain.analyze(group, platform);

    exec::CostCache cache;
    sched::JobAnalyzer cached(model, &cache);
    sched::JobAnalysisTable warm1 = cached.analyze(group, platform);
    sched::JobAnalysisTable warm2 = cached.analyze(group, platform);
    EXPECT_GT(cache.stats().hits, 0);

    ASSERT_EQ(cold.numJobs(), warm1.numJobs());
    ASSERT_EQ(cold.numAccels(), warm1.numAccels());
    for (int j = 0; j < cold.numJobs(); ++j) {
        for (int a = 0; a < cold.numAccels(); ++a) {
            const sched::JobProfile& x = cold.lookup(j, a);
            const sched::JobProfile& y = warm1.lookup(j, a);
            const sched::JobProfile& z = warm2.lookup(j, a);
            EXPECT_EQ(x.noStallSeconds, y.noStallSeconds);
            EXPECT_EQ(x.reqBwGbps, y.reqBwGbps);
            EXPECT_EQ(x.energyPj, y.energyPj);
            EXPECT_EQ(y.noStallSeconds, z.noStallSeconds);
            EXPECT_EQ(y.reqBwGbps, z.reqBwGbps);
            EXPECT_EQ(y.energyPj, z.energyPj);
        }
    }
}

TEST(CostCache, ConcurrentLookupsAreSafeAndConsistent)
{
    exec::CostCache cache;
    cost::CostModel model;
    cost::SubAccelConfig cfg;
    dnn::LayerShape layer = dnn::conv(128, 64, 28, 28, 3, 3);
    cost::CostResult ref = model.analyze(layer, 4, cfg);

    exec::ThreadPool pool(8);
    std::vector<double> cycles(200);
    pool.parallelFor(200, [&](int64_t i) {
        cycles[i] = cache.analyze(model, layer, 4, cfg).noStallCycles;
    });
    for (double c : cycles)
        EXPECT_EQ(c, ref.noStallCycles);
    EXPECT_EQ(cache.stats().entries, 1);
}
