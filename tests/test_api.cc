/**
 * @file Tests for the declarative experiment API (src/api/): spec and
 * RunReport exact text round-trips (property-style over random specs),
 * OptimizerRegistry completeness (every Table IV method constructible by
 * name and by every alias, did-you-mean errors), downstream
 * self-registration, and the acceptance-criterion parity runs: for fixed
 * seeds, every method through api::Runner must reproduce the hand-wired
 * m3e::makeProblem + m3e::makeOptimizer path bitwise.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/registry.h"
#include "api/runner.h"
#include "api/spec.h"
#include "common/rng.h"
#include "m3e/factory.h"
#include "m3e/problem.h"

using namespace magma;
using api::ExperimentSpec;
using api::OptimizerRegistry;
using api::ProblemSpec;
using api::RunReport;
using api::SearchSpec;

namespace {

/** Draw a random-but-valid ProblemSpec, exercising awkward doubles. */
ProblemSpec
randomProblemSpec(common::Rng& rng)
{
    static const dnn::TaskType kTasks[] = {
        dnn::TaskType::Vision, dnn::TaskType::Language,
        dnn::TaskType::Recommendation, dnn::TaskType::Mix};
    static const accel::Setting kSettings[] = {
        accel::Setting::S1, accel::Setting::S2, accel::Setting::S3,
        accel::Setting::S4, accel::Setting::S5, accel::Setting::S6};
    ProblemSpec s;
    s.task = kTasks[rng.uniformInt(4)];
    s.setting = kSettings[rng.uniformInt(6)];
    s.flexible = rng.uniformInt(2) == 1;
    // Non-representable sums and tiny/huge magnitudes must survive.
    switch (rng.uniformInt(4)) {
    case 0: s.systemBwGbps = 0.1 + 0.2; break;
    case 1: s.systemBwGbps = 1.0 / 3.0; break;
    case 2: s.systemBwGbps = 1e-17; break;
    default: s.systemBwGbps = 16.0 * (1 + rng.uniformInt(64)); break;
    }
    s.groupSize = 1 + rng.uniformInt(200);
    s.bwPolicy = rng.uniformInt(2) ? sched::BwPolicy::EvenSplit
                                : sched::BwPolicy::Proportional;
    s.workloadSeed = rng.engine()();
    return s;
}

SearchSpec
randomSearchSpec(common::Rng& rng)
{
    static const sched::Objective kObjectives[] = {
        sched::Objective::Throughput, sched::Objective::Latency,
        sched::Objective::Energy, sched::Objective::EnergyDelay,
        sched::Objective::PerfPerWatt};
    std::vector<std::string> names = OptimizerRegistry::global().names();
    SearchSpec s;
    s.method = names[rng.uniformInt(static_cast<int>(names.size()))];
    s.objective = kObjectives[rng.uniformInt(5)];
    // 0..3 multi-objective entries (duplicates allowed by the format).
    int n_multi = rng.uniformInt(4);
    for (int k = 0; k < n_multi; ++k)
        s.objectives.push_back(kObjectives[rng.uniformInt(5)]);
    s.sampleBudget = 1 + rng.uniformInt(100000);
    s.seed = rng.engine()();
    s.threads = rng.uniformInt(8);
    s.eval = rng.uniformInt(2) == 1 ? sched::EvalMode::Flat
                                    : sched::EvalMode::Reference;
    s.recordConvergence = rng.uniformInt(2) == 1;
    s.recordSamples = rng.uniformInt(2) == 1;
    s.warmStart = rng.uniformInt(2) == 1;
    return s;
}

/** The pre-redesign manual wiring, verbatim. */
opt::SearchResult
manualRun(m3e::Method method, const ProblemSpec& ps, const SearchSpec& ss)
{
    auto problem = ps.flexible
                       ? m3e::makeFlexibleProblem(
                             ps.task, ps.setting, ps.systemBwGbps,
                             ps.groupSize, ps.workloadSeed, ss.objective)
                       : m3e::makeProblem(ps.task, ps.setting,
                                          ps.systemBwGbps, ps.groupSize,
                                          ps.workloadSeed, ss.objective);
    auto optimizer = m3e::makeOptimizer(method, ss.seed);
    opt::SearchOptions opts;
    opts.sampleBudget = ss.sampleBudget;
    return optimizer->search(problem->evaluator(), opts);
}

}  // namespace

// ------------------------------------------------ spec round-trips ---

TEST(ProblemSpecText, RoundTripsExactRandomized)
{
    common::Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        ProblemSpec s = randomProblemSpec(rng);
        EXPECT_EQ(ProblemSpec::fromText(s.toText()), s) << s.toText();
    }
}

TEST(SearchSpecText, RoundTripsExactRandomized)
{
    common::Rng rng(12);
    for (int i = 0; i < 200; ++i) {
        SearchSpec s = randomSearchSpec(rng);
        EXPECT_EQ(SearchSpec::fromText(s.toText()), s) << s.toText();
    }
}

TEST(ExperimentSpecText, RoundTripsExactRandomized)
{
    common::Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        ExperimentSpec e{randomProblemSpec(rng), randomSearchSpec(rng)};
        EXPECT_EQ(ExperimentSpec::fromText(e.toText()), e);
    }
}

TEST(ExperimentSpecText, FileLoadingWithCommentsAndBlanks)
{
    const std::string path = "api_spec_test.spec";
    ExperimentSpec e;
    e.problem.task = dnn::TaskType::Language;
    e.problem.systemBwGbps = 0.1 + 0.2;
    e.search.method = "cma-es";  // aliases are preserved verbatim
    e.search.sampleBudget = 777;
    {
        std::ofstream out(path);
        out << "# an experiment, hand-annotated\n\n"
            << e.toText() << "\n# trailing comment\n";
    }
    EXPECT_EQ(ExperimentSpec::fromFile(path), e);
    std::remove(path.c_str());

    EXPECT_THROW(ExperimentSpec::fromFile("no_such_file.spec"),
                 std::runtime_error);
}

TEST(SpecText, RejectsUnknownKeysAndBadValues)
{
    EXPECT_THROW(ProblemSpec::fromText("tusk=Mix\n"),
                 std::invalid_argument);
    EXPECT_THROW(ProblemSpec::fromText("task=Sound\n"),
                 std::invalid_argument);
    EXPECT_THROW(ProblemSpec::fromText("group_size twelve\n"),
                 std::invalid_argument);
    EXPECT_THROW(ProblemSpec::fromText("system_bw_gbps=fast\n"),
                 std::invalid_argument);
    EXPECT_THROW(SearchSpec::fromText("objective=speed\n"),
                 std::invalid_argument);
    EXPECT_THROW(SearchSpec::fromText("warm_start=maybe\n"),
                 std::invalid_argument);
    EXPECT_THROW(SearchSpec::fromText("objectives=throughput,speed\n"),
                 std::invalid_argument);
    EXPECT_THROW(SearchSpec::fromText("eval=turbo\n"),
                 std::invalid_argument);
    // ExperimentSpec accepts keys of either block, rejects strangers.
    EXPECT_NO_THROW(ExperimentSpec::fromText("task=Mix\nmethod=PSO\n"));
    EXPECT_THROW(ExperimentSpec::fromText("population=9\n"),
                 std::invalid_argument);
}

TEST(SpecText, PartialTextKeepsDefaults)
{
    ProblemSpec s = ProblemSpec::fromText("task=Vision\n");
    EXPECT_EQ(s.task, dnn::TaskType::Vision);
    EXPECT_EQ(s.groupSize, ProblemSpec{}.groupSize);
    EXPECT_EQ(s.setting, ProblemSpec{}.setting);
}

TEST(Names, TaskSettingPolicyRoundTrips)
{
    for (dnn::TaskType t : {dnn::TaskType::Vision, dnn::TaskType::Language,
                            dnn::TaskType::Recommendation,
                            dnn::TaskType::Mix})
        EXPECT_EQ(dnn::taskTypeFromName(dnn::taskTypeName(t)), t);
    EXPECT_THROW(dnn::taskTypeFromName("Audio"), std::invalid_argument);

    for (accel::Setting st : {accel::Setting::S1, accel::Setting::S2,
                              accel::Setting::S3, accel::Setting::S4,
                              accel::Setting::S5, accel::Setting::S6})
        EXPECT_EQ(accel::settingFromName(accel::settingName(st)), st);
    EXPECT_THROW(accel::settingFromName("S7"), std::invalid_argument);

    for (sched::BwPolicy p :
         {sched::BwPolicy::Proportional, sched::BwPolicy::EvenSplit})
        EXPECT_EQ(sched::bwPolicyFromName(sched::bwPolicyName(p)), p);
    EXPECT_THROW(sched::bwPolicyFromName("greedy"), std::invalid_argument);
}

// ----------------------------------------------------- registry ---

TEST(Registry, EveryTableIvMethodConstructibleByNameAndAliases)
{
    OptimizerRegistry& reg = OptimizerRegistry::global();
    // The full paper line-up (+ Random) is registered, in plot order.
    std::vector<std::string> expect;
    for (m3e::Method m : m3e::paperMethods())
        expect.push_back(m3e::methodName(m));
    expect.push_back("Random");
    std::vector<std::string> names = reg.names();
    ASSERT_GE(names.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(names[i], expect[i]);

    for (const auto& e : reg.entries()) {
        EXPECT_EQ(reg.make(e.name, 3)->name(), e.name);
        EXPECT_EQ(reg.resolve(e.name), e.name);
        for (const std::string& alias : e.aliases) {
            EXPECT_EQ(reg.resolve(alias), e.name) << alias;
            EXPECT_EQ(reg.make(alias, 3)->name(), e.name) << alias;
        }
    }
}

TEST(Registry, LookupIsCaseInsensitiveAsFallback)
{
    OptimizerRegistry& reg = OptimizerRegistry::global();
    EXPECT_EQ(reg.resolve("magma"), "MAGMA");
    EXPECT_EQ(reg.resolve("pso"), "PSO");
    EXPECT_EQ(reg.resolve("herald-LIKE"), "Herald-like");
    EXPECT_EQ(reg.resolve("rl a2c"), "RL A2C");
}

TEST(Registry, UnknownNameThrowsWithSuggestionAndMethodList)
{
    OptimizerRegistry& reg = OptimizerRegistry::global();
    EXPECT_FALSE(reg.contains("MAGMAA"));
    try {
        reg.make("MAGMAA", 1);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
        EXPECT_NE(msg.find("MAGMA"), std::string::npos) << msg;
        // The full list is included so users can pick directly.
        EXPECT_NE(msg.find("Herald-like"), std::string::npos) << msg;
        EXPECT_NE(msg.find("RL PPO2"), std::string::npos) << msg;
    }
    // m3e::methodFromName goes through the same resolution.
    EXPECT_THROW(m3e::methodFromName("nope"), std::invalid_argument);
}

namespace {

/** A downstream method: one deterministic round-robin mapping. */
class RoundRobinMapper : public opt::Optimizer {
  public:
    explicit RoundRobinMapper(uint64_t seed) : Optimizer(seed) {}
    std::string name() const override { return "RoundRobin-test"; }

  protected:
    void run(const sched::MappingEvaluator& eval, const opt::SearchOptions&,
             opt::SearchRecorder& rec) override
    {
        sched::Mapping m;
        for (int j = 0; j < eval.groupSize(); ++j) {
            m.accelSel.push_back(j % eval.numAccels());
            m.priority.push_back(static_cast<double>(j) /
                                 eval.groupSize());
        }
        rec.evaluate(m);
    }
};

// Self-registration exactly as a downstream user would write it.
const bool kRoundRobinRegistered = api::registerOptimizer(
    "RoundRobin-test", {"rr"},
    [](uint64_t seed) { return std::make_unique<RoundRobinMapper>(seed); });

}  // namespace

TEST(Registry, DownstreamSelfRegistrationWorks)
{
    ASSERT_TRUE(kRoundRobinRegistered);
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0,
                              8, 17);
    auto o = OptimizerRegistry::global().make("rr", 1);
    EXPECT_EQ(o->name(), "RoundRobin-test");
    opt::SearchResult r = o->search(p->evaluator());
    EXPECT_GT(r.bestFitness, 0.0);
    EXPECT_EQ(r.samplesUsed, 1);
    // Registry-only methods are rejected by the legacy enum with a
    // pointer to the registry, not mis-mapped onto some enum value.
    EXPECT_THROW(m3e::methodFromName("RoundRobin-test"),
                 std::invalid_argument);
    // Duplicate registration is refused.
    EXPECT_THROW(OptimizerRegistry::global().add("rr", {}, nullptr),
                 std::invalid_argument);
}

// ---------------------------------------------- bitwise parity ---

TEST(Parity, RegistryMatchesEnumFactoryBitwise)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0,
                              10, 21);
    std::vector<m3e::Method> methods = m3e::paperMethods();
    methods.push_back(m3e::Method::Random);
    for (m3e::Method m : methods) {
        opt::SearchOptions opts;
        opts.sampleBudget = 120;
        opt::SearchResult via_enum =
            m3e::makeOptimizer(m, 42)->search(p->evaluator(), opts);
        opt::SearchResult via_registry =
            OptimizerRegistry::global()
                .make(m3e::methodName(m), 42)
                ->search(p->evaluator(), opts);
        EXPECT_EQ(via_registry.best, via_enum.best) << m3e::methodName(m);
        EXPECT_EQ(via_registry.bestFitness, via_enum.bestFitness)
            << m3e::methodName(m);
        EXPECT_EQ(via_registry.samplesUsed, via_enum.samplesUsed)
            << m3e::methodName(m);
    }
}

TEST(Parity, RunnerMatchesManualPathForEveryTableIvMethod)
{
    // THE acceptance criterion: identical seeds through the new API must
    // reproduce the pre-redesign results bitwise, for every method.
    ProblemSpec ps;
    ps.task = dnn::TaskType::Mix;
    ps.setting = accel::Setting::S2;
    ps.systemBwGbps = 8.0;
    ps.groupSize = 10;
    ps.workloadSeed = 31;

    api::Runner runner;
    for (m3e::Method m : m3e::paperMethods()) {
        SearchSpec ss;
        ss.method = m3e::methodName(m);
        ss.sampleBudget = 120;
        ss.seed = 42;
        opt::SearchResult manual = manualRun(m, ps, ss);
        RunReport rep = runner.run(ps, ss);
        EXPECT_EQ(rep.best, manual.best) << ss.method;
        EXPECT_EQ(rep.bestFitness, manual.bestFitness) << ss.method;
        EXPECT_EQ(rep.samplesUsed, manual.samplesUsed) << ss.method;
        EXPECT_EQ(rep.method, ss.method);
    }
}

TEST(Parity, RunnerReproducesNonDefaultObjectiveAndFlexible)
{
    ProblemSpec ps;
    ps.task = dnn::TaskType::Vision;
    ps.setting = accel::Setting::S1;
    ps.flexible = true;
    ps.systemBwGbps = 4.0;
    ps.groupSize = 9;
    ps.workloadSeed = 5;
    SearchSpec ss;
    ss.method = "MAGMA";
    ss.objective = sched::Objective::EnergyDelay;
    ss.sampleBudget = 150;
    ss.seed = 9;

    opt::SearchResult manual = manualRun(m3e::Method::Magma, ps, ss);
    api::Runner runner;
    RunReport rep = runner.run(ps, ss);
    EXPECT_EQ(rep.best, manual.best);
    EXPECT_EQ(rep.bestFitness, manual.bestFitness);
}

// ------------------------------------------------- Runner report ---

TEST(Runner, ReportIsInternallyConsistent)
{
    ProblemSpec ps;
    ps.groupSize = 10;
    SearchSpec ss;
    ss.sampleBudget = 200;
    ss.recordConvergence = true;

    api::Runner runner;
    RunReport rep = runner.run(ps, ss);
    EXPECT_EQ(rep.method, "MAGMA");
    EXPECT_GT(rep.bestFitness, 0.0);
    EXPECT_GT(rep.makespanSeconds, 0.0);
    EXPECT_GT(rep.throughputGflops, 0.0);
    EXPECT_GT(rep.energyJoules, 0.0);
    EXPECT_LE(rep.samplesUsed, ss.sampleBudget);
    EXPECT_GE(rep.wallSeconds, 0.0);
    EXPECT_EQ(static_cast<int64_t>(rep.convergence.size()),
              rep.samplesUsed);
    // Convergence is best-so-far: non-decreasing, ends at bestFitness.
    for (size_t i = 1; i < rep.convergence.size(); ++i)
        EXPECT_GE(rep.convergence[i], rep.convergence[i - 1]);
    EXPECT_EQ(rep.convergence.back(), rep.bestFitness);
    EXPECT_EQ(rep.best.size(), ps.groupSize);
    // The report echoes its inputs.
    EXPECT_EQ(rep.problem, ps);
    EXPECT_EQ(rep.search, ss);
}

TEST(RunReportText, RoundTripsExact)
{
    ProblemSpec ps;
    ps.groupSize = 8;
    ps.systemBwGbps = 1.0 / 3.0;
    SearchSpec ss;
    ss.method = "stdGA";
    ss.sampleBudget = 90;
    ss.recordConvergence = true;

    api::Runner runner;
    RunReport rep = runner.run(ps, ss);
    RunReport back = RunReport::fromText(rep.toText());
    EXPECT_EQ(back, rep);  // bitwise, mapping and convergence included
    // And the artifact is stable: re-serializing is byte-identical.
    EXPECT_EQ(back.toText(), rep.toText());
}

TEST(RunReportText, EmptyConvergenceAndHeaderChecks)
{
    RunReport rep;
    rep.method = "MAGMA";
    EXPECT_EQ(RunReport::fromText(rep.toText()), rep);
    EXPECT_THROW(RunReport::fromText("task=Mix\n"), std::invalid_argument);
    EXPECT_THROW(RunReport::fromText("magma-run-report v1\nbogus=1\n"),
                 std::invalid_argument);
}

TEST(RunReportCsv, HeaderAndRowAgree)
{
    ProblemSpec ps;
    ps.groupSize = 8;
    SearchSpec ss;
    ss.sampleBudget = 60;
    api::Runner runner;
    RunReport rep = runner.run(ps, ss);

    auto columns = [](const std::string& s) {
        return std::count(s.begin(), s.end(), ',') + 1;
    };
    EXPECT_EQ(columns(RunReport::csvHeader()), columns(rep.csvRow()));
    EXPECT_NE(rep.csvRow().find("MAGMA"), std::string::npos);
}
