/** @file Unit tests for the RL substrate: NN backprop, distributions,
 * optimizers, A2C/PPO2 agents. */

#include <cmath>

#include <gtest/gtest.h>

#include "m3e/problem.h"
#include "rl/a2c.h"
#include "rl/actor_critic.h"
#include "rl/nn.h"
#include "rl/optim.h"
#include "rl/policy.h"
#include "rl/ppo2.h"

using namespace magma;
using common::Matrix;

// ------------------------------------------------------------- network ---

TEST(Nn, ForwardShape)
{
    rl::Mlp net({4, 8, 3}, 1);
    Matrix x(5, 4, 0.5);
    Matrix y = net.forward(x);
    EXPECT_EQ(y.rows(), 5u);
    EXPECT_EQ(y.cols(), 3u);
}

TEST(Nn, DeterministicGivenSeed)
{
    rl::Mlp a({3, 6, 2}, 42), b({3, 6, 2}, 42);
    Matrix x(2, 3);
    x.at(0, 0) = 1.0;
    x.at(1, 2) = -2.0;
    Matrix ya = a.forward(x), yb = b.forward(x);
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 2; ++j)
            EXPECT_DOUBLE_EQ(ya.at(i, j), yb.at(i, j));
}

TEST(Nn, GradientMatchesFiniteDifference)
{
    // Loss = sum(y); check dL/dparam numerically for a small net.
    rl::Mlp net({3, 5, 2}, 7);
    common::Rng rng(8);
    Matrix x(4, 3);
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 3; ++j)
            x.at(i, j) = rng.gauss();

    auto loss = [&]() {
        Matrix y = net.forward(x);
        double l = 0.0;
        for (size_t i = 0; i < y.rows(); ++i)
            for (size_t j = 0; j < y.cols(); ++j)
                l += y.at(i, j);
        return l;
    };

    net.zeroGrad();
    net.forward(x);
    Matrix g(4, 2, 1.0);  // dL/dy = 1
    net.backward(g);

    auto params = net.paramPtrs();
    auto grads = net.gradPtrs();
    ASSERT_EQ(params.size(), grads.size());
    const double eps = 1e-6;
    // Probe a spread of parameters.
    for (size_t k = 0; k < params.size(); k += 7) {
        double orig = *params[k];
        *params[k] = orig + eps;
        double lp = loss();
        *params[k] = orig - eps;
        double lm = loss();
        *params[k] = orig;
        double numeric = (lp - lm) / (2 * eps);
        EXPECT_NEAR(*grads[k], numeric, 1e-4) << "param " << k;
    }
}

TEST(Nn, ZeroGradClearsAccumulation)
{
    rl::Mlp net({2, 3, 1}, 9);
    Matrix x(1, 2, 1.0);
    net.forward(x);
    net.backward(Matrix(1, 1, 1.0));
    net.zeroGrad();
    for (double* g : net.gradPtrs())
        EXPECT_DOUBLE_EQ(*g, 0.0);
}

TEST(Nn, BackwardAccumulatesAcrossCalls)
{
    rl::Mlp net({2, 3, 1}, 10);
    Matrix x(1, 2, 1.0);
    net.zeroGrad();
    net.forward(x);
    net.backward(Matrix(1, 1, 1.0));
    std::vector<double> once;
    for (double* g : net.gradPtrs())
        once.push_back(*g);
    net.forward(x);
    net.backward(Matrix(1, 1, 1.0));
    auto grads = net.gradPtrs();
    for (size_t i = 0; i < grads.size(); ++i)
        EXPECT_NEAR(*grads[i], 2.0 * once[i], 1e-12);
}

// ------------------------------------------------------- distributions ---

TEST(Policy, SoftmaxNormalizes)
{
    std::vector<double> p = rl::softmax({1.0, 2.0, 3.0});
    double sum = p[0] + p[1] + p[2];
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GT(p[2], p[1]);
    EXPECT_GT(p[1], p[0]);
}

TEST(Policy, SoftmaxShiftInvariant)
{
    std::vector<double> a = rl::softmax({1.0, 2.0, 3.0});
    std::vector<double> b = rl::softmax({101.0, 102.0, 103.0});
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Policy, LogProbConsistentWithSoftmax)
{
    std::vector<double> logits = {0.3, -1.2, 2.0, 0.0};
    std::vector<double> p = rl::softmax(logits);
    for (int a = 0; a < 4; ++a)
        EXPECT_NEAR(rl::logProb(logits, a), std::log(p[a]), 1e-12);
}

TEST(Policy, EntropyBounds)
{
    // Uniform logits maximize entropy at log(n); peaked logits approach 0.
    EXPECT_NEAR(rl::entropy({1.0, 1.0, 1.0, 1.0}), std::log(4.0), 1e-12);
    EXPECT_LT(rl::entropy({100.0, 0.0, 0.0, 0.0}), 1e-6);
}

TEST(Policy, SampleCategoricalFollowsDistribution)
{
    common::Rng rng(11);
    std::vector<double> logits = {0.0, std::log(3.0)};  // probs 1/4, 3/4
    int ones = 0;
    for (int i = 0; i < 8000; ++i)
        ones += rl::sampleCategorical(logits, rng);
    EXPECT_NEAR(ones / 8000.0, 0.75, 0.02);
}

TEST(Policy, PolicyGradMatchesFiniteDifference)
{
    // d(-coeff*logp(a))/dlogits vs numeric.
    std::vector<double> logits = {0.5, -0.3, 1.1};
    const int action = 1;
    const double coeff = 0.7;
    std::vector<double> g = rl::policyGradLogits(logits, action, coeff);
    const double eps = 1e-6;
    for (int i = 0; i < 3; ++i) {
        std::vector<double> lp = logits, lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        double numeric = (-coeff * rl::logProb(lp, action) -
                          -coeff * rl::logProb(lm, action)) /
                         (2 * eps);
        EXPECT_NEAR(g[i], numeric, 1e-6);
    }
}

TEST(Policy, EntropyGradMatchesFiniteDifference)
{
    std::vector<double> logits = {0.2, 0.9, -0.4};
    const double coeff = 0.3;
    std::vector<double> g = rl::entropyGradLogits(logits, coeff);
    const double eps = 1e-6;
    for (int i = 0; i < 3; ++i) {
        std::vector<double> lp = logits, lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        double numeric =
            (-coeff * rl::entropy(lp) - -coeff * rl::entropy(lm)) /
            (2 * eps);
        EXPECT_NEAR(g[i], numeric, 1e-6);
    }
}

// ----------------------------------------------------------- optimizers --

TEST(Optim, RmsPropMinimizesQuadratic)
{
    double x = 5.0, g = 0.0;
    rl::RmsProp opt({&x}, {&g}, 0.05);
    for (int i = 0; i < 500; ++i) {
        g = 2.0 * x;  // d/dx x^2
        opt.step();
    }
    EXPECT_NEAR(x, 0.0, 0.05);
}

TEST(Optim, AdamMinimizesQuadratic)
{
    double x = -4.0, g = 0.0;
    rl::Adam opt({&x}, {&g}, 0.05);
    for (int i = 0; i < 800; ++i) {
        g = 2.0 * x;
        opt.step();
    }
    EXPECT_NEAR(x, 0.0, 0.05);
}

TEST(Optim, ClipGradNormScalesDown)
{
    double a = 3.0, b = 4.0;  // norm 5
    double p1 = 0, p2 = 0;
    rl::RmsProp opt({&p1, &p2}, {&a, &b});
    opt.clipGradNorm(1.0);
    EXPECT_NEAR(std::sqrt(a * a + b * b), 1.0, 1e-12);
    EXPECT_NEAR(a / b, 3.0 / 4.0, 1e-12);  // direction preserved
}

TEST(Optim, ClipGradNormNoopBelowThreshold)
{
    double a = 0.3, b = 0.4;
    double p = 0;
    rl::RmsProp opt({&p, &p}, {&a, &b});
    opt.clipGradNorm(1.0);
    EXPECT_DOUBLE_EQ(a, 0.3);
    EXPECT_DOUBLE_EQ(b, 0.4);
}

// ------------------------------------------------------------ env/agent --

TEST(MappingEnv, FeatureDimAndObservation)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              10, 20);
    rl::MappingEnv env(p->evaluator());
    EXPECT_EQ(env.featureDim(), 3 * 4 + 4);
    EXPECT_EQ(env.steps(), 10);
    EXPECT_EQ(env.accelActions(), 4);
    env.reset();
    std::vector<double> f = env.observe(0);
    EXPECT_EQ(static_cast<int>(f.size()), env.featureDim());
    for (double v : f)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(MappingEnv, ActFillsMappingAndLoads)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              6, 21);
    rl::MappingEnv env(p->evaluator());
    env.reset();
    sched::Mapping m;
    m.accelSel.assign(6, 0);
    m.priority.assign(6, 0.0);
    for (int j = 0; j < 6; ++j)
        env.act(j, j % 4, j % rl::MappingEnv::kPriorityBuckets, m);
    for (int j = 0; j < 6; ++j) {
        EXPECT_EQ(m.accelSel[j], j % 4);
        EXPECT_GE(m.priority[j], 0.0);
        EXPECT_LT(m.priority[j], 1.0);
    }
}

TEST(ActorCritic, RolloutChargesOneSample)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 16.0,
                              8, 22);
    opt::SearchOptions opts;
    opts.sampleBudget = 3;
    opt::SearchRecorder rec(p->evaluator(), opts);
    rl::ActorCritic ac(p->evaluator(), 5, /*hidden=*/16);
    common::Rng rng(5);
    rl::Episode ep = ac.rollout(rng, rec);
    EXPECT_EQ(rec.used(), 1);
    EXPECT_EQ(static_cast<int>(ep.steps.size()), 8);
    EXPECT_GT(ep.fitness, 0.0);
    EXPECT_GT(ep.reward, 0.0);
    EXPECT_LE(ep.reward, 1.0 + 1e-9);  // normalized by platform peak
}

TEST(ActorCritic, DiscountedReturnsShape)
{
    std::vector<double> r = rl::ActorCritic::discountedReturns(4, 1.0, 0.5);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r[3], 1.0);
    EXPECT_DOUBLE_EQ(r[2], 0.5);
    EXPECT_DOUBLE_EQ(r[1], 0.25);
    EXPECT_DOUBLE_EQ(r[0], 0.125);
}

TEST(A2c, RunsWithinBudgetAndReturnsValidMapping)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0,
                              10, 23);
    rl::A2cConfig cfg;
    cfg.hidden = 16;  // small net keeps the test fast
    rl::A2c agent(3, cfg);
    opt::SearchOptions opts;
    opts.sampleBudget = 60;
    opt::SearchResult r = agent.search(p->evaluator(), opts);
    EXPECT_LE(r.samplesUsed, 60);
    EXPECT_GT(r.samplesUsed, 0);
    EXPECT_GT(r.bestFitness, 0.0);
    EXPECT_EQ(r.best.size(), 10);
    for (int g : r.best.accelSel) {
        EXPECT_GE(g, 0);
        EXPECT_LT(g, 4);
    }
}

TEST(Ppo2, RunsWithinBudgetAndReturnsValidMapping)
{
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 8.0,
                              10, 24);
    rl::Ppo2Config cfg;
    cfg.hidden = 16;
    cfg.episodesPerBatch = 4;
    cfg.epochsPerBatch = 2;
    rl::Ppo2 agent(4, cfg);
    opt::SearchOptions opts;
    opts.sampleBudget = 60;
    opt::SearchResult r = agent.search(p->evaluator(), opts);
    EXPECT_LE(r.samplesUsed, 60);
    EXPECT_GT(r.bestFitness, 0.0);
    EXPECT_EQ(r.best.size(), 10);
}

TEST(A2c, PolicyImprovesOverEpisodes)
{
    // The learning signal: the mean fitness of LATE episodes must beat the
    // mean of EARLY ones (the policy shifts probability mass toward good
    // mappings) on a problem with real headroom.
    auto p = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2, 4.0,
                              12, 25);
    rl::A2cConfig cfg;
    cfg.hidden = 32;
    rl::A2c agent(6, cfg);
    opt::SearchOptions opts;
    opts.sampleBudget = 500;
    opts.recordSamples = true;
    opt::SearchResult r = agent.search(p->evaluator(), opts);
    ASSERT_EQ(r.sampledFitness.size(), 500u);
    double early = 0.0, late = 0.0;
    for (int i = 0; i < 100; ++i) {
        early += r.sampledFitness[i];
        late += r.sampledFitness[400 + i];
    }
    EXPECT_GT(late, early);
}
