/** @file Unit tests for M3E core: encoding, decoder, analyzer, allocator,
 * evaluator. */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "m3e/problem.h"
#include "sched/bw_allocator.h"
#include "sched/evaluator.h"
#include "sched/job_analyzer.h"
#include "sched/mapping.h"

using namespace magma;
using sched::BwAllocator;
using sched::BwPolicy;
using sched::DecodedMapping;
using sched::JobAnalysisTable;
using sched::JobProfile;
using sched::Mapping;

namespace {

/** Hand-built analysis table for allocator tests (1 accel profile each). */
JobAnalysisTable
makeTable(const std::vector<std::vector<JobProfile>>& rows)
{
    int jobs = static_cast<int>(rows.size());
    int accels = static_cast<int>(rows[0].size());
    JobAnalysisTable t(jobs, accels);
    for (int j = 0; j < jobs; ++j)
        for (int a = 0; a < accels; ++a)
            t.at(j, a) = rows[j][a];
    return t;
}

JobProfile
prof(double seconds, double bw)
{
    JobProfile p;
    p.noStallSeconds = seconds;
    p.reqBwGbps = bw;
    p.macs = 1000;
    return p;
}

}  // namespace

// ------------------------------------------------------------ mapping ----

TEST(Mapping, RandomIsWellFormed)
{
    common::Rng rng(1);
    Mapping m = Mapping::random(50, 4, rng);
    EXPECT_EQ(m.size(), 50);
    for (int i = 0; i < 50; ++i) {
        EXPECT_GE(m.accelSel[i], 0);
        EXPECT_LT(m.accelSel[i], 4);
        EXPECT_GE(m.priority[i], 0.0);
        EXPECT_LT(m.priority[i], 1.0);
    }
}

TEST(Mapping, FlatRoundTrip)
{
    common::Rng rng(2);
    Mapping m = Mapping::random(30, 5, rng);
    Mapping back = Mapping::fromFlat(m.toFlat(5), 5);
    EXPECT_EQ(back.accelSel, m.accelSel);
    for (int i = 0; i < m.size(); ++i)
        EXPECT_NEAR(back.priority[i], m.priority[i], 1e-12);
}

TEST(Mapping, FromFlatClampsOutOfRange)
{
    std::vector<double> flat = {-0.5, 1.7, 0.49, 2.0, -1.0, 0.999};
    Mapping m = Mapping::fromFlat(flat, 2);
    EXPECT_EQ(m.size(), 3);
    EXPECT_EQ(m.accelSel[0], 0);   // clamped low
    EXPECT_EQ(m.accelSel[1], 1);   // clamped high
    EXPECT_EQ(m.accelSel[2], 0);   // 0.49 * 2 = 0.98 -> 0
    for (double p : m.priority) {
        EXPECT_GE(p, 0.0);
        EXPECT_LT(p, 1.0);
    }
}

TEST(Mapping, DecodeGroupsByAccel)
{
    Mapping m;
    m.accelSel = {0, 1, 0, 1, 1};
    m.priority = {0.9, 0.2, 0.1, 0.8, 0.5};
    DecodedMapping d = sched::decode(m, 2);
    ASSERT_EQ(d.queues.size(), 2u);
    EXPECT_EQ(d.queues[0], (std::vector<int>{2, 0}));   // 0.1 before 0.9
    EXPECT_EQ(d.queues[1], (std::vector<int>{1, 4, 3}));
}

TEST(Mapping, DecodeTieBreaksStablyById)
{
    Mapping m;
    m.accelSel = {0, 0, 0};
    m.priority = {0.5, 0.5, 0.5};
    DecodedMapping d = sched::decode(m, 1);
    EXPECT_EQ(d.queues[0], (std::vector<int>{0, 1, 2}));
}

TEST(Mapping, DecodeEmptyAccelsAllowed)
{
    Mapping m;
    m.accelSel = {2, 2};
    m.priority = {0.1, 0.2};
    DecodedMapping d = sched::decode(m, 4);
    EXPECT_TRUE(d.queues[0].empty());
    EXPECT_TRUE(d.queues[1].empty());
    EXPECT_EQ(d.queues[2].size(), 2u);
    EXPECT_TRUE(d.queues[3].empty());
}

// ----------------------------------------------------------- analyzer ----

TEST(JobAnalyzer, TableMatchesDirectCostModelQueries)
{
    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                    16.0, 12, 3);
    cost::CostModel model;
    sched::JobAnalyzer analyzer(model);
    JobAnalysisTable table =
        analyzer.analyze(problem->group(), problem->platform());
    for (int j = 0; j < problem->group().size(); ++j) {
        for (int a = 0; a < problem->platform().numSubAccels(); ++a) {
            const dnn::Job& job = problem->group().jobs[j];
            cost::CostResult r = model.analyze(
                job.layer, job.batch, problem->platform().subAccels[a]);
            const JobProfile& p = table.lookup(j, a);
            EXPECT_DOUBLE_EQ(
                p.noStallSeconds,
                r.noStallSeconds(problem->platform().subAccels[a]));
            EXPECT_DOUBLE_EQ(p.reqBwGbps, r.reqBwGbps);
            EXPECT_EQ(p.macs, r.macs);
        }
    }
}

TEST(JobAnalyzer, MemoisesRepeatedLayers)
{
    dnn::JobGroup g;
    g.task = dnn::TaskType::Recommendation;
    for (int i = 0; i < 20; ++i) {
        dnn::Job j;
        j.id = i;
        j.layer = dnn::fc(256, 128);  // identical layers
        j.batch = 4;
        j.task = dnn::TaskType::Recommendation;
        j.model = "NCF";
        g.jobs.push_back(j);
    }
    cost::CostModel model;
    sched::JobAnalyzer analyzer(model);
    accel::Platform p = accel::makeSetting(accel::Setting::S1, 16.0);
    analyzer.analyze(g, p);
    // 1 unique shape x 4 identical sub-accelerators = 4 unique queries.
    EXPECT_EQ(analyzer.lastUniqueQueries(), 4);
}

// ---------------------------------------------------------- allocator ----

TEST(BwAllocator, SingleJobRunsAtNoStallLatency)
{
    JobAnalysisTable t = makeTable({{prof(2.0, 4.0)}});
    DecodedMapping d;
    d.queues = {{0}};
    BwAllocator alloc(16.0);
    sched::ScheduleResult r = alloc.run(d, t);
    EXPECT_NEAR(r.makespanSeconds, 2.0, 1e-12);
    EXPECT_NEAR(r.finishTime[0], 2.0, 1e-12);
}

TEST(BwAllocator, SequentialJobsAddUp)
{
    JobAnalysisTable t = makeTable({{prof(1.0, 1.0)}, {prof(3.0, 1.0)}});
    DecodedMapping d;
    d.queues = {{0, 1}};
    BwAllocator alloc(16.0);
    sched::ScheduleResult r = alloc.run(d, t);
    EXPECT_NEAR(r.makespanSeconds, 4.0, 1e-12);
    EXPECT_NEAR(r.finishTime[0], 1.0, 1e-12);
    EXPECT_NEAR(r.finishTime[1], 4.0, 1e-12);
}

TEST(BwAllocator, ParallelJobsWithinBudgetDontSlow)
{
    JobAnalysisTable t = makeTable({{prof(2.0, 4.0), prof(9e9, 0)},
                                    {prof(2.0, 4.0), prof(9e9, 0)}});
    // Both jobs on different accels; total demand 8 < 16.
    JobAnalysisTable t2(2, 2);
    t2.at(0, 0) = prof(2.0, 4.0);
    t2.at(1, 1) = prof(2.0, 4.0);
    DecodedMapping d;
    d.queues = {{0}, {1}};
    BwAllocator alloc(16.0);
    sched::ScheduleResult r = alloc.run(d, t2);
    EXPECT_NEAR(r.makespanSeconds, 2.0, 1e-12);
}

TEST(BwAllocator, OversubscriptionSlowsProportionally)
{
    // Two identical jobs, each demanding 16 GB/s on an 16 GB/s system:
    // each gets 8, runs at half speed -> makespan 2x no-stall.
    JobAnalysisTable t(2, 2);
    t.at(0, 0) = prof(1.0, 16.0);
    t.at(1, 1) = prof(1.0, 16.0);
    DecodedMapping d;
    d.queues = {{0}, {1}};
    BwAllocator alloc(16.0);
    sched::ScheduleResult r = alloc.run(d, t);
    EXPECT_NEAR(r.makespanSeconds, 2.0, 1e-9);
}

TEST(BwAllocator, AsymmetricDemandSharesProportionally)
{
    // Job A needs 30, job B needs 10; system 20 -> both slowed by 2x
    // (proportional shares keep the ratio).
    JobAnalysisTable t(2, 2);
    t.at(0, 0) = prof(1.0, 30.0);
    t.at(1, 1) = prof(1.0, 10.0);
    DecodedMapping d;
    d.queues = {{0}, {1}};
    BwAllocator alloc(20.0);
    sched::ScheduleResult r = alloc.run(d, t);
    EXPECT_NEAR(r.finishTime[0], 2.0, 1e-9);
    EXPECT_NEAR(r.finishTime[1], 2.0, 1e-9);
}

TEST(BwAllocator, ReallocationAfterFinishSpeedsRemainder)
{
    // A: 1s @16; B: 2s @16 on a 16 GB/s system. Phase 1: both at half
    // speed for 2s (A finishes). Phase 2: B alone at full speed for the
    // remaining 1s of work -> makespan 3s.
    JobAnalysisTable t(2, 2);
    t.at(0, 0) = prof(1.0, 16.0);
    t.at(1, 1) = prof(2.0, 16.0);
    DecodedMapping d;
    d.queues = {{0}, {1}};
    BwAllocator alloc(16.0);
    sched::ScheduleResult r = alloc.run(d, t);
    EXPECT_NEAR(r.finishTime[0], 2.0, 1e-9);
    EXPECT_NEAR(r.makespanSeconds, 3.0, 1e-9);
}

TEST(BwAllocator, ZeroBwJobsRunAtFullSpeed)
{
    JobAnalysisTable t(2, 2);
    t.at(0, 0) = prof(1.0, 0.0);
    t.at(1, 1) = prof(1.0, 100.0);
    DecodedMapping d;
    d.queues = {{0}, {1}};
    BwAllocator alloc(10.0);
    sched::ScheduleResult r = alloc.run(d, t);
    EXPECT_NEAR(r.finishTime[0], 1.0, 1e-9);
    EXPECT_NEAR(r.finishTime[1], 10.0, 1e-9);
}

TEST(BwAllocator, EvenSplitWastesUnusedShare)
{
    // A needs 2, B needs 30; system 16.
    // Proportional: both slowed to 16/32 = 0.5x -> makespan 2.0.
    // Static even split (8 GB/s per core, never reassigned): A runs at
    // full speed (2 < 8), B crawls at 8/30 the whole way -> 30/8 = 3.75.
    JobAnalysisTable t(2, 2);
    t.at(0, 0) = prof(1.0, 2.0);
    t.at(1, 1) = prof(1.0, 30.0);
    DecodedMapping d;
    d.queues = {{0}, {1}};
    sched::ScheduleResult prop =
        BwAllocator(16.0, BwPolicy::Proportional).run(d, t);
    sched::ScheduleResult even =
        BwAllocator(16.0, BwPolicy::EvenSplit).run(d, t);
    EXPECT_NEAR(prop.makespanSeconds, 2.0, 1e-9);
    EXPECT_NEAR(even.makespanSeconds, 30.0 / 8.0, 1e-9);
    EXPECT_GT(even.makespanSeconds, prop.makespanSeconds);
}

TEST(BwAllocator, AllJobsFinish)
{
    common::Rng rng(4);
    int jobs = 40, accels = 4;
    JobAnalysisTable t(jobs, accels);
    for (int j = 0; j < jobs; ++j)
        for (int a = 0; a < accels; ++a)
            t.at(j, a) = prof(0.1 + rng.uniform(), rng.uniform() * 40.0);
    Mapping m = Mapping::random(jobs, accels, rng);
    DecodedMapping d = sched::decode(m, accels);
    BwAllocator alloc(16.0);
    sched::ScheduleResult r = alloc.run(d, t);
    for (int j = 0; j < jobs; ++j) {
        EXPECT_GT(r.finishTime[j], 0.0) << j;
        EXPECT_LE(r.finishTime[j], r.makespanSeconds + 1e-9);
    }
}

TEST(BwAllocator, TimelineEventsCoverEveryJob)
{
    common::Rng rng(5);
    int jobs = 20, accels = 3;
    JobAnalysisTable t(jobs, accels);
    for (int j = 0; j < jobs; ++j)
        for (int a = 0; a < accels; ++a)
            t.at(j, a) = prof(0.1 + rng.uniform(), rng.uniform() * 30.0);
    DecodedMapping d = sched::decode(Mapping::random(jobs, accels, rng),
                                     accels);
    sched::ScheduleResult r =
        BwAllocator(8.0).run(d, t, /*record_timeline=*/true);
    ASSERT_FALSE(r.events.empty());
    std::vector<bool> seen(jobs, false);
    for (const auto& ev : r.events) {
        EXPECT_LE(ev.start, ev.end);
        EXPECT_GE(ev.start, 0.0);
        EXPECT_LE(ev.end, r.makespanSeconds + 1e-9);
        EXPECT_GE(ev.allocBw, 0.0);
        seen[ev.job] = true;
    }
    for (int j = 0; j < jobs; ++j)
        EXPECT_TRUE(seen[j]) << j;
}

TEST(BwAllocator, GrantedBwNeverExceedsSystemBw)
{
    common::Rng rng(6);
    int jobs = 30, accels = 4;
    JobAnalysisTable t(jobs, accels);
    for (int j = 0; j < jobs; ++j)
        for (int a = 0; a < accels; ++a)
            t.at(j, a) = prof(0.1 + rng.uniform(), 5.0 + rng.uniform() * 50);
    DecodedMapping d = sched::decode(Mapping::random(jobs, accels, rng),
                                     accels);
    double sys_bw = 16.0;
    sched::ScheduleResult r = BwAllocator(sys_bw).run(d, t, true);
    // Sum concurrent grants at each event start.
    for (const auto& probe : r.events) {
        double granted = 0.0;
        for (const auto& ev : r.events)
            if (ev.start <= probe.start + 1e-15 &&
                probe.start < ev.end - 1e-15)
                granted += ev.allocBw;
        EXPECT_LE(granted, sys_bw * (1.0 + 1e-6));
    }
}

// ----------------------------------------------------------- evaluator ---

TEST(Evaluator, FitnessIsFlopsOverMakespan)
{
    auto problem = m3e::makeProblem(dnn::TaskType::Vision,
                                    accel::Setting::S1, 16.0, 10, 7);
    common::Rng rng(7);
    Mapping m = Mapping::random(10, problem->evaluator().numAccels(), rng);
    sched::ScheduleResult r = problem->evaluator().evaluate(m);
    double expect = problem->group().totalFlops() /
                    r.makespanSeconds / 1e9;
    EXPECT_NEAR(problem->evaluator().fitness(m), expect, expect * 1e-12);
}

TEST(Evaluator, SampleCountTracksCalls)
{
    auto problem = m3e::makeProblem(dnn::TaskType::Vision,
                                    accel::Setting::S1, 16.0, 8, 8);
    auto& eval = problem->evaluator();
    eval.resetSampleCount();
    common::Rng rng(8);
    for (int i = 0; i < 5; ++i)
        eval.fitness(Mapping::random(8, eval.numAccels(), rng));
    EXPECT_EQ(eval.sampleCount(), 5);
}

TEST(Evaluator, ThroughputNeverExceedsPeak)
{
    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                    16.0, 30, 9);
    common::Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        Mapping m =
            Mapping::random(30, problem->evaluator().numAccels(), rng);
        EXPECT_LE(problem->evaluator().fitness(m),
                  problem->platform().peakGflops() * (1.0 + 1e-9));
    }
}

TEST(Evaluator, HigherSystemBwNeverHurts)
{
    dnn::WorkloadGenerator gen(10);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Mix, 25);
    m3e::Problem low(group, accel::makeSetting(accel::Setting::S2, 1.0));
    m3e::Problem high(group, accel::makeSetting(accel::Setting::S2, 64.0));
    common::Rng rng(10);
    for (int i = 0; i < 20; ++i) {
        Mapping m = Mapping::random(25, low.evaluator().numAccels(), rng);
        EXPECT_LE(low.evaluator().fitness(m),
                  high.evaluator().fitness(m) * (1.0 + 1e-9));
    }
}

TEST(Evaluator, MakespanAtLeastBusiestQueue)
{
    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                    16.0, 20, 11);
    const auto& eval = problem->evaluator();
    common::Rng rng(11);
    Mapping m = Mapping::random(20, eval.numAccels(), rng);
    DecodedMapping d = sched::decode(m, eval.numAccels());
    double busiest = 0.0;
    for (int a = 0; a < eval.numAccels(); ++a) {
        double sum = 0.0;
        for (int j : d.queues[a])
            sum += eval.table().lookup(j, a).noStallSeconds;
        busiest = std::max(busiest, sum);
    }
    EXPECT_GE(problem->evaluator().evaluate(m).makespanSeconds,
              busiest * (1.0 - 1e-9));
}
