/**
 * @file N-thread hammer tests for the shared mutable state of the
 * engine: serve::MappingStore (concurrent put/get/LRU-evict/save),
 * obs::MetricsRegistry (histogram record vs snapshot, counter identity),
 * exec::CostCache (shard contention on overlapping keys) and the
 * obs::Tracer rings (record vs drain).
 *
 * These tests are meaningful everywhere (the post-join invariants catch
 * lost updates and broken accounting) but earn their keep under the
 * `-DMAGMA_SANITIZE=thread` CI leg, where ThreadSanitizer turns any
 * unsynchronized access they provoke into a hard failure.
 */

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "dnn/layer.h"
#include "dnn/workload.h"
#include "exec/cost_cache.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "sched/mapping.h"
#include "serve/fingerprint.h"
#include "serve/mapping_store.h"

using namespace magma;

namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 400;

dnn::JobGroup
makeGroup(dnn::TaskType task, int size, uint64_t seed)
{
    dnn::WorkloadGenerator gen(seed);
    return gen.makeGroup(task, size);
}

sched::Mapping
randomMapping(int group_size, int num_accels, uint64_t seed)
{
    common::Rng rng(seed);
    return sched::Mapping::random(group_size, num_accels, rng);
}

}  // namespace

// -------------------------------------------------------- MappingStore ---

TEST(RaceStress, MappingStorePutGetEvict)
{
    // Capacity far below the key population forces continuous LRU
    // eviction while other threads look up and write back.
    serve::MappingStore store(/*capacity=*/16, /*shards=*/4);
    dnn::JobGroup group = makeGroup(dnn::TaskType::Mix, 8, 1);
    sched::Mapping mapping = randomMapping(8, 4, 2);

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                int k = (t * 7 + i) % 64;  // overlapping key space
                serve::Fingerprint fp{"race-key-" + std::to_string(k),
                                      "race-coarse-" + std::to_string(k % 4)};
                switch (i % 3) {
                case 0:
                    store.update(fp, dnn::TaskType::Mix, mapping, group,
                                 /*fitness=*/1.0 + i, /*samples=*/10);
                    break;
                case 1: {
                    auto hit = store.lookup(fp);
                    if (hit)
                        EXPECT_EQ(hit->entry.mapping.size(), mapping.size());
                    break;
                }
                default:
                    (void)store.size();
                    (void)store.stats();
                    break;
                }
            }
        });
    }
    for (auto& th : threads)
        th.join();

    // Post-join invariants: capacity respected, accounting consistent.
    EXPECT_LE(store.size(), 16);
    serve::StoreStats s = store.stats();
    EXPECT_EQ(s.entries, store.size());
    EXPECT_EQ(s.inserts - s.evictions, s.entries);
    EXPECT_GT(s.lookups, 0);
}

TEST(RaceStress, MappingStoreSaveWhileMutating)
{
    serve::MappingStore store(/*capacity=*/32, /*shards=*/4);
    dnn::JobGroup group = makeGroup(dnn::TaskType::Vision, 6, 3);
    sched::Mapping mapping = randomMapping(6, 2, 4);

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            int i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                serve::Fingerprint fp{
                    "save-key-" + std::to_string((t * 13 + i) % 48),
                    "save-coarse"};
                store.update(fp, dnn::TaskType::Vision, mapping, group,
                             1.0 + (i % 7), 5);
                ++i;
            }
        });
    }
    // Saves run concurrently with the writers: every snapshot must be a
    // well-formed, loadable store image (save locks all shards).
    for (int round = 0; round < 10; ++round) {
        std::ostringstream os;
        store.save(os);
        serve::MappingStore copy(/*capacity=*/64, /*shards=*/2);
        std::istringstream is(os.str());
        EXPECT_NO_THROW(copy.load(is));
        EXPECT_LE(copy.size(), 48);
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : writers)
        th.join();
}

// ---------------------------------------------------- MetricsRegistry ---

TEST(RaceStress, MetricsHistogramRecordVsSnapshot)
{
    obs::MetricsRegistry reg;
    obs::Histogram& hist = reg.histogram("race.latency");
    obs::Counter& ops = reg.counter("race.ops");

    std::atomic<bool> stop{false};
    std::thread snapshotter([&] {
        // Concurrent captures must always see internally consistent
        // metrics (they may trail in-flight records).
        while (!stop.load(std::memory_order_relaxed)) {
            obs::MetricsSnapshot snap =
                obs::SnapshotWriter::capture("race", reg, nullptr);
            (void)snap;
            (void)hist.quantile(0.5);
        }
    });

    std::vector<std::thread> recorders;
    recorders.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        recorders.emplace_back([&, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                hist.record(1.0 + ((t * kOpsPerThread + i) % 100));
                ops.add();
            }
        });
    }
    for (auto& th : recorders)
        th.join();
    stop.store(true, std::memory_order_relaxed);
    snapshotter.join();

    // No record may be lost and the exact extremes must survive.
    EXPECT_EQ(hist.count(), kThreads * kOpsPerThread);
    EXPECT_EQ(ops.value(), kThreads * kOpsPerThread);
    EXPECT_DOUBLE_EQ(hist.min(), 1.0);
    EXPECT_DOUBLE_EQ(hist.max(), 100.0);
}

TEST(RaceStress, MetricsRegistryLookupIdentity)
{
    // counter()/histogram() from many threads must converge on ONE
    // metric per name with no lost registrations.
    obs::MetricsRegistry reg;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kOpsPerThread; ++i)
                reg.counter("shared." + std::to_string(i % 8)).add();
        });
    }
    for (auto& th : threads)
        th.join();

    int64_t total = 0;
    reg.visit([&](const std::string&,
                  const obs::Counter& c) { total += c.value(); },
              nullptr, nullptr);
    EXPECT_EQ(total, int64_t{kThreads} * kOpsPerThread);
}

// ----------------------------------------------------------- CostCache ---

TEST(RaceStress, CostCacheShardContention)
{
    exec::CostCache cache(/*shards=*/4);
    cost::CostModel model;
    cost::SubAccelConfig cfg;

    // A handful of distinct shapes queried by every thread: concurrent
    // misses on one key may both compute, but every returned result must
    // be bitwise identical to the serial answer.
    std::vector<dnn::LayerShape> shapes;
    for (int i = 0; i < 8; ++i)
        shapes.push_back(dnn::conv(32 + i, 16, 14, 14, 3, 3));
    std::vector<cost::CostResult> expected;
    expected.reserve(shapes.size());
    for (const auto& s : shapes)
        expected.push_back(model.analyze(s, 4, cfg));

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    std::atomic<int> mismatches{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                int k = (t + i) % static_cast<int>(shapes.size());
                cost::CostResult r =
                    cache.analyze(model, shapes[k], 4, cfg);
                if (r.noStallCycles != expected[k].noStallCycles ||
                    r.energyPj != expected[k].energyPj ||
                    r.macs != expected[k].macs)
                    mismatches.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& th : threads)
        th.join();

    EXPECT_EQ(mismatches.load(), 0);
    exec::CostCacheStats s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, int64_t{kThreads} * kOpsPerThread);
    // Duplicate computes are allowed (racing cold misses) but bounded:
    // at most one extra compute per thread per key.
    EXPECT_GE(s.entries, static_cast<int64_t>(shapes.size()));
    EXPECT_LE(s.entries, static_cast<int64_t>(shapes.size()));
}

// -------------------------------------------------------------- Tracer ---

TEST(RaceStress, TracerRecordVsDrain)
{
    // The global tracer records only at Trace level; force it on for
    // this test and restore after.
    obs::MetricsLevel prev = obs::metricsLevel();
    obs::setMetricsLevel(obs::MetricsLevel::Trace);

    std::atomic<int64_t> drained{0};
    std::atomic<int64_t> dropped_total{0};
    std::atomic<bool> stop{false};
    std::thread drainer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            int64_t dropped = 0;
            auto events = obs::Tracer::global().drain(&dropped);
            drained.fetch_add(static_cast<int64_t>(events.size()),
                              std::memory_order_relaxed);
            dropped_total.fetch_add(dropped, std::memory_order_relaxed);
        }
    });

    std::vector<std::thread> recorders;
    recorders.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        recorders.emplace_back([&] {
            for (int i = 0; i < kOpsPerThread; ++i)
                obs::traceInstant("race.instant", i);
        });
    }
    for (auto& th : recorders)
        th.join();
    stop.store(true, std::memory_order_relaxed);
    drainer.join();

    int64_t dropped = 0;
    auto rest = obs::Tracer::global().drain(&dropped);
    drained.fetch_add(static_cast<int64_t>(rest.size()),
                      std::memory_order_relaxed);
    dropped_total.fetch_add(dropped, std::memory_order_relaxed);

    // Every recorded event is either drained or counted as dropped. The
    // main-thread ring may hold unrelated events from other tests in
    // this process, so allow >=.
    EXPECT_GE(drained.load() + dropped_total.load(),
              int64_t{kThreads} * kOpsPerThread);

    obs::setMetricsLevel(prev);
}
