/**
 * @file
 * magma_lint — the project's custom invariant checker: a standalone,
 * dependency-free C++ binary enforcing the determinism rules that
 * generic tools (clang-tidy, sanitizers) cannot see. The repo's core
 * claim is bitwise-identical results at any thread count; these checks
 * gate the source-level habits that claim rests on.
 *
 * Checks (kebab-case ids, used in allowlist tags and self-tests):
 *
 *   nondet          No nondeterminism source outside sanctioned files:
 *                   std::rand/srand, std::random_device, wall-clock
 *                   seeding (time(...), system_clock). Every RNG must be
 *                   a seeded common::Rng / std::mt19937 so reruns are
 *                   bitwise reproducible.
 *
 *   unordered-iter  No iteration over a std::unordered_map/unordered_set
 *                   declared in the same file: hash-order is
 *                   load-factor- and libstdc++-version-dependent, so any
 *                   loop over one can leak nondeterministic order into
 *                   stats lines, serialized text or search results.
 *                   Sites that are provably order-independent carry an
 *                   allowlist tag stating why.
 *
 *   double-format   %.17g discipline: in any file participating in a
 *                   round-trip text format (it mentions fromText), every
 *                   printf-family float conversion must be %.17g — the
 *                   shortest format guaranteed to round-trip an IEEE
 *                   double exactly. Display-only lines carry a tag.
 *
 *   span-payload    Every obs::Span construction site carries a
 *                   "span payload:" comment (same line or within the
 *                   three lines above) naming what its i/a/b slots
 *                   mean, mirroring the slot table in src/obs/trace.h;
 *                   payload-free spans carry an allow tag instead.
 *                   --check-spans runs just this check over the roots.
 *
 *   header-standalone  (--check-headers) Every public header under src/
 *                   compiles as its own translation unit — no hidden
 *                   include-order dependencies.
 *
 *   docs-module-map (--check-docs) Every immediate subdirectory of src/
 *                   is named (as "src/<name>") in both the README module
 *                   map and docs/architecture.md — a module cannot be
 *                   added without documenting where it sits.
 *
 *   docs-link       (--check-docs) Every relative markdown link in
 *                   README.md and the markdown files under docs/
 *                   resolves to an existing file, so the docs index
 *                   never rots.
 *
 *   docs-format     (--check-docs) Every versioned text-format header
 *                   ("magma-<name> v<N>") appearing in a src/ string
 *                   literal is documented by name in docs/formats.md —
 *                   on-disk formats are contracts, not implementation
 *                   details.
 *
 * Allowlist tag syntax (same line, or a tag line covering the next
 * statement through its terminating ';' or '{'):
 *
 *   // magma-lint: allow(<check-id>): <non-empty justification>
 *
 * A tag with an empty justification is itself a finding: the audit trail
 * is the point.
 *
 * Usage:
 *   magma_lint [--root DIR]... [FILE]...       lint files / trees
 *   magma_lint --self-test FIXTURE_DIR         verify the checker itself
 *   magma_lint --check-headers --compiler CXX --include DIR --root DIR
 *   magma_lint --check-docs --root DIR         docs/source consistency
 *   magma_lint --check-spans --root DIR        span payload comments
 *
 * Exit status: 0 clean, 1 findings, 2 usage/internal error.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
    std::string file;
    int line = 0;
    std::string check;
    std::string message;
};

struct Options {
    std::vector<std::string> roots;
    std::vector<std::string> files;
    bool checkHeaders = false;
    bool checkDocs = false;
    bool checkSpans = false;
    std::string compiler = "g++";
    std::vector<std::string> includeDirs;
    std::string selfTestDir;
};

// ------------------------------------------------------------ helpers ---

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isSourceFile(const std::string& path)
{
    return endsWith(path, ".cc") || endsWith(path, ".cpp") ||
           endsWith(path, ".h") || endsWith(path, ".hpp");
}

/** Identifier characters (the token alphabet of the scanners below). */
bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** True when `token` occurs in `line` with no identifier char on either
 * side (word-boundary match, so `rand(` does not fire on `operand(`). */
bool
containsToken(const std::string& line, const std::string& token)
{
    size_t pos = 0;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        bool left_ok =
            pos == 0 || !isIdentChar(line[pos - 1]);
        size_t end = pos + token.size();
        bool right_ok = end >= line.size() || !isIdentChar(line[end]) ||
                        !isIdentChar(token.back());
        if (left_ok && right_ok)
            return true;
        pos += 1;
    }
    return false;
}

/**
 * One file's lines with comment/string classification good enough for
 * the token scans: per-line text with // comments kept separately (tags
 * live there) and string-literal contents replaced by spaces except for
 * the double-format check, which scans the literals themselves.
 */
struct FileText {
    std::string path;
    std::vector<std::string> raw;      // original lines
    std::vector<std::string> code;     // literals blanked, comments cut
    std::vector<std::string> comment;  // the // comment part per line
    std::vector<std::string> literals; // concatenated string literals
};

FileText
readFile(const std::string& path)
{
    FileText ft;
    ft.path = path;
    std::ifstream is(path);
    std::string line;
    bool in_block_comment = false;
    while (std::getline(is, line)) {
        ft.raw.push_back(line);
        std::string code, comment, lits;
        bool in_string = false, in_char = false;
        for (size_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            if (in_block_comment) {
                if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
                    in_block_comment = false;
                    ++i;
                }
                code += ' ';
                continue;
            }
            if (in_string) {
                if (c == '\\' && i + 1 < line.size()) {
                    lits += c;
                    lits += line[++i];
                    code += "  ";
                    continue;
                }
                if (c == '"')
                    in_string = false;
                else
                    lits += c;
                code += ' ';
                continue;
            }
            if (in_char) {
                if (c == '\\' && i + 1 < line.size()) {
                    code += "  ";
                    ++i;
                    continue;
                }
                if (c == '\'')
                    in_char = false;
                code += ' ';
                continue;
            }
            if (c == '"') {
                in_string = true;
                code += ' ';
                continue;
            }
            if (c == '\'') {
                in_char = true;
                code += ' ';
                continue;
            }
            if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
                comment = line.substr(i + 2);
                break;
            }
            if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
                in_block_comment = true;
                code += ' ';
                ++i;
                continue;
            }
            code += c;
        }
        ft.code.push_back(std::move(code));
        ft.comment.push_back(std::move(comment));
        ft.literals.push_back(std::move(lits));
    }
    return ft;
}

// ----------------------------------------------------- allowlist tags ---

/** Parsed "magma-lint: allow(check): justification" out of a comment. */
struct Tag {
    std::string check;
    bool justified = false;
};

std::vector<Tag>
tagsIn(const std::string& comment)
{
    std::vector<Tag> tags;
    const std::string marker = "magma-lint:";
    size_t pos = comment.find(marker);
    if (pos == std::string::npos)
        return tags;
    std::string rest = comment.substr(pos + marker.size());
    const std::string allow = "allow(";
    size_t a = 0;
    while ((a = rest.find(allow, a)) != std::string::npos) {
        size_t open = a + allow.size();
        size_t close = rest.find(')', open);
        if (close == std::string::npos)
            break;
        Tag t;
        t.check = rest.substr(open, close - open);
        // Justification: non-whitespace text after "):".
        size_t j = close + 1;
        if (j < rest.size() && rest[j] == ':')
            ++j;
        while (j < rest.size() &&
               std::isspace(static_cast<unsigned char>(rest[j])))
            ++j;
        t.justified = j < rest.size();
        tags.push_back(t);
        a = close;
    }
    return tags;
}

/**
 * Per-file allow map: allowed[check] is the set of 0-based lines the tag
 * covers. A same-line tag covers its line; a tag-only line covers the
 * following statement through the first line containing ';' or '{'
 * (inclusive), so multi-line calls need one tag, not one per line.
 */
struct AllowMap {
    std::vector<std::vector<std::string>> allowedByLine;
    std::vector<Finding> tagFindings;

    bool allows(const std::string& check, size_t line) const
    {
        if (line >= allowedByLine.size())
            return false;
        const auto& v = allowedByLine[line];
        return std::find(v.begin(), v.end(), check) != v.end();
    }
};

AllowMap
buildAllowMap(const FileText& ft)
{
    AllowMap am;
    am.allowedByLine.resize(ft.raw.size());
    for (size_t i = 0; i < ft.raw.size(); ++i) {
        for (const Tag& t : tagsIn(ft.comment[i])) {
            if (!t.justified) {
                am.tagFindings.push_back(
                    {ft.path, static_cast<int>(i + 1), t.check,
                     "allow(" + t.check +
                         ") tag without a justification — write "
                         "'allow(" + t.check + "): <why>'"});
                continue;
            }
            am.allowedByLine[i].push_back(t.check);
            // A tag on an otherwise empty code line covers the next
            // statement.
            bool tag_only =
                ft.code[i].find_first_not_of(" \t") == std::string::npos;
            if (!tag_only)
                continue;
            for (size_t j = i + 1; j < ft.raw.size(); ++j) {
                am.allowedByLine[j].push_back(t.check);
                if (ft.code[j].find(';') != std::string::npos ||
                    ft.code[j].find('{') != std::string::npos)
                    break;
            }
        }
    }
    return am;
}

// ------------------------------------------------------ check: nondet ---

void
checkNondet(const FileText& ft, const AllowMap& am,
            std::vector<Finding>& out)
{
    struct Pattern {
        const char* token;
        const char* why;
    };
    static const Pattern kPatterns[] = {
        {"std::rand", "unseeded C RNG breaks bitwise reproducibility"},
        {"std::srand", "global C RNG state is shared across threads"},
        {"srand", "global C RNG state is shared across threads"},
        {"random_device", "hardware entropy makes reruns diverge"},
        {"std::time", "wall-clock value is a nondeterminism source"},
        {"time(nullptr)", "wall-clock seed makes reruns diverge"},
        {"time(NULL)", "wall-clock seed makes reruns diverge"},
        {"system_clock", "wall clock; use steady_clock for durations, "
                         "never for seeds or results"},
    };
    for (size_t i = 0; i < ft.code.size(); ++i) {
        for (const Pattern& p : kPatterns) {
            if (!containsToken(ft.code[i], p.token))
                continue;
            if (am.allows("nondet", i))
                break;
            out.push_back({ft.path, static_cast<int>(i + 1), "nondet",
                           std::string(p.token) + ": " + p.why});
            break;  // one finding per line is enough
        }
    }
}

// --------------------------------------------- check: unordered-iter ---

/**
 * Names declared as std::unordered_map/unordered_set in this file
 * (locals and members alike): the token right after the closing '>' of
 * the template argument list.
 */
std::vector<std::string>
unorderedNames(const FileText& ft)
{
    std::vector<std::string> names;
    for (const std::string& line : ft.code) {
        for (const char* kw : {"unordered_map", "unordered_set"}) {
            size_t pos = line.find(kw);
            if (pos == std::string::npos)
                continue;
            size_t i = pos + std::string(kw).size();
            if (i >= line.size() || line[i] != '<')
                continue;
            int depth = 0;
            for (; i < line.size(); ++i) {
                if (line[i] == '<')
                    ++depth;
                else if (line[i] == '>' && --depth == 0) {
                    ++i;
                    break;
                }
            }
            // Multi-line template args: the declaration name is on a
            // later line; handled by the generic begin()/range scan
            // matching member names too, so skip quietly here.
            while (i < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[i])))
                ++i;
            size_t start = i;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            if (i > start)
                names.push_back(line.substr(start, i - start));
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

/** Last identifier of an expression like `shards_[s].map` -> "map". */
std::string
trailingIdent(const std::string& expr)
{
    size_t end = expr.size();
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(expr[end - 1])))
        --end;
    size_t start = end;
    while (start > 0 && isIdentChar(expr[start - 1]))
        --start;
    return expr.substr(start, end - start);
}

void
checkUnorderedIter(const FileText& ft, const AllowMap& am,
                   std::vector<Finding>& out)
{
    std::vector<std::string> names = unorderedNames(ft);
    if (names.empty())
        return;
    auto isUnordered = [&](const std::string& ident) {
        return !ident.empty() &&
               std::binary_search(names.begin(), names.end(), ident);
    };
    for (size_t i = 0; i < ft.code.size(); ++i) {
        const std::string& line = ft.code[i];
        std::string flagged;

        // Range-for over an unordered container: `for (... : expr)`.
        size_t forPos = line.find("for ");
        if (forPos == std::string::npos)
            forPos = line.find("for(");
        if (forPos != std::string::npos) {
            size_t colon = line.find(" : ", forPos);
            if (colon != std::string::npos) {
                size_t close = line.find_last_of(')');
                if (close != std::string::npos && close > colon) {
                    std::string expr =
                        line.substr(colon + 3, close - colon - 3);
                    std::string ident = trailingIdent(expr);
                    if (isUnordered(ident))
                        flagged = "range-for over unordered container '" +
                                  ident + "'";
                }
            }
        }

        // Iterator walk: `name.begin()` (find/emplace lookups are fine).
        if (flagged.empty()) {
            for (const std::string& n : names) {
                if (containsToken(line, n + ".begin") ||
                    containsToken(line, n + ".cbegin")) {
                    flagged = "iterator walk over unordered container '" +
                              n + "'";
                    break;
                }
            }
        }

        if (flagged.empty() || am.allows("unordered-iter", i))
            continue;
        out.push_back(
            {ft.path, static_cast<int>(i + 1), "unordered-iter",
             flagged + " — hash order is nondeterministic; sort first "
                       "or tag the site with why order cannot escape"});
    }
}

// --------------------------------------------- check: double-format ---

void
checkDoubleFormat(const FileText& ft, const AllowMap& am,
                  std::vector<Finding>& out)
{
    // Only files participating in a round-trip text format: a format
    // that is parsed back (fromText) must write doubles losslessly.
    bool roundTripFile = false;
    for (const std::string& line : ft.code)
        if (line.find("fromText") != std::string::npos) {
            roundTripFile = true;
            break;
        }
    if (!roundTripFile)
        return;

    for (size_t i = 0; i < ft.literals.size(); ++i) {
        const std::string& lit = ft.literals[i];
        size_t pos = 0;
        while ((pos = lit.find('%', pos)) != std::string::npos) {
            size_t j = pos + 1;
            if (j < lit.size() && lit[j] == '%') {  // escaped %%
                pos = j + 1;
                continue;
            }
            // Parse flags/width/precision, then the conversion char.
            std::string spec = "%";
            while (j < lit.size() &&
                   (std::isdigit(static_cast<unsigned char>(lit[j])) ||
                    lit[j] == '.' || lit[j] == '-' || lit[j] == '+' ||
                    lit[j] == ' ' || lit[j] == '#' || lit[j] == '*' ||
                    lit[j] == 'l' || lit[j] == 'L' || lit[j] == 'h' ||
                    lit[j] == 'z'))
                spec += lit[j++];
            if (j < lit.size())
                spec += lit[j];
            char conv = j < lit.size() ? lit[j] : '\0';
            pos = j + 1;
            if (conv != 'f' && conv != 'F' && conv != 'e' && conv != 'E' &&
                conv != 'g' && conv != 'G' && conv != 'a' && conv != 'A')
                continue;
            if (spec == "%.17g")
                continue;
            // An 'l' length modifier marks a scanf-family INPUT
            // conversion (%lf reads a double); output never needs it.
            if (spec.find('l') != std::string::npos)
                continue;
            if (am.allows("double-format", i))
                continue;
            out.push_back(
                {ft.path, static_cast<int>(i + 1), "double-format",
                 "float conversion '" + spec +
                     "' in a round-trip file — use %.17g (lossless for "
                     "IEEE doubles) or tag display-only lines"});
        }
    }
}

// ----------------------------------------------- check: span-payload ---

/**
 * Every obs::Span construction site documents its payload slots: a
 * "span payload:" comment on the same line or within the three lines
 * above (mirroring the slot table in src/obs/trace.h), or a justified
 * allow(span-payload) tag for spans that fill no slots. Returns the
 * number of sites inspected (the --check-spans summary).
 */
int
checkSpanPayload(const FileText& ft, const AllowMap& am,
                 std::vector<Finding>& out)
{
    int sites = 0;
    const std::string doc = "span payload:";
    for (size_t i = 0; i < ft.code.size(); ++i) {
        if (!containsToken(ft.code[i], "obs::Span"))
            continue;
        ++sites;
        bool documented = false;
        for (size_t back = 0; back <= 3 && back <= i; ++back) {
            if (ft.comment[i - back].find(doc) != std::string::npos) {
                documented = true;
                break;
            }
        }
        if (documented || am.allows("span-payload", i))
            continue;
        out.push_back(
            {ft.path, static_cast<int>(i + 1), "span-payload",
             "obs::Span site without a \"span payload:\" comment naming "
             "its i/a/b slots (see src/obs/trace.h) — document the "
             "payload or tag payload-free spans with "
             "allow(span-payload)"});
    }
    return sites;
}

// ------------------------------------------ check: header-standalone ---

int
checkHeaders(const Options& opt, std::vector<Finding>& out)
{
    std::vector<std::string> headers;
    for (const std::string& root : opt.roots) {
        fs::path src = fs::path(root);
        if (!fs::exists(src))
            continue;
        for (const auto& e : fs::recursive_directory_iterator(src)) {
            if (!e.is_regular_file())
                continue;
            std::string p = e.path().string();
            if (endsWith(p, ".h") &&
                p.find("/fixtures/") == std::string::npos)
                headers.push_back(p);
        }
    }
    std::sort(headers.begin(), headers.end());

    std::string includes;
    for (const std::string& dir : opt.includeDirs)
        includes += " -I '" + dir + "'";

    fs::path tmpdir =
        fs::temp_directory_path() / "magma_lint_headers";
    std::error_code ec;
    fs::create_directories(tmpdir, ec);
    fs::path tu = tmpdir / "standalone_tu.cc";
    fs::path log = tmpdir / "compile.log";

    int checked = 0;
    for (const std::string& h : headers) {
        std::string rel = h;
        for (const std::string& dir : opt.includeDirs) {
            std::string prefix = dir;
            if (!prefix.empty() && prefix.back() != '/')
                prefix += '/';
            if (rel.rfind(prefix, 0) == 0) {
                rel = rel.substr(prefix.size());
                break;
            }
        }
        {
            std::ofstream os(tu);
            os << "#include \"" << rel << "\"\n";
            os << "int magmaLintHeaderProbe() { return 0; }\n";
        }
        std::string cmd = opt.compiler + " -std=c++20 -fsyntax-only" +
                          includes + " '" + tu.string() + "' > '" +
                          log.string() + "' 2>&1";
        // Single-threaded lint driver shelling out to the configured
        // compiler; paths are quoted and come from the filesystem walk.
        // NOLINTNEXTLINE(concurrency-mt-unsafe,cert-env33-c)
        int rc = std::system(cmd.c_str());
        ++checked;
        if (rc != 0) {
            std::ifstream is(log);
            std::stringstream ss;
            ss << is.rdbuf();
            out.push_back({h, 1, "header-standalone",
                           "does not compile standalone:\n" + ss.str()});
        }
    }
    std::fprintf(stderr, "magma_lint: %d headers checked standalone\n",
                 checked);
    return checked;
}

// ------------------------------------------------ check: docs gates ---

std::string
slurpFile(const fs::path& p)
{
    std::ifstream is(p);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/**
 * Versioned format headers ("magma-<kebab-name> v<digits>") in the
 * file's string literals. Returns the name part only ("magma-store-log")
 * with the first line it appears on.
 */
std::vector<std::pair<std::string, int>>
formatHeadersIn(const FileText& ft)
{
    std::vector<std::pair<std::string, int>> out;
    for (size_t i = 0; i < ft.literals.size(); ++i) {
        const std::string& lit = ft.literals[i];
        size_t pos = 0;
        while ((pos = lit.find("magma-", pos)) != std::string::npos) {
            size_t j = pos + 6;
            while (j < lit.size() &&
                   (std::islower(static_cast<unsigned char>(lit[j])) ||
                    std::isdigit(static_cast<unsigned char>(lit[j])) ||
                    lit[j] == '-'))
                ++j;
            // Only a versioned header counts: "<name> v<digit>".
            if (j + 2 < lit.size() && lit[j] == ' ' && lit[j + 1] == 'v' &&
                std::isdigit(static_cast<unsigned char>(lit[j + 2])))
                out.emplace_back(lit.substr(pos, j - pos),
                                 static_cast<int>(i + 1));
            pos = j;
        }
    }
    return out;
}

/**
 * Documentation consistency over one repo root: module map completeness
 * (docs-module-map), markdown link resolution (docs-link) and versioned
 * text-format coverage (docs-format). Returns sites checked.
 */
int
checkDocs(const std::string& root, std::vector<Finding>& out)
{
    const fs::path r(root);
    const fs::path readme = r / "README.md";
    const fs::path arch = r / "docs" / "architecture.md";
    const fs::path formats = r / "docs" / "formats.md";
    int checked = 0;

    auto require = [&](const fs::path& p) {
        if (fs::exists(p))
            return true;
        out.push_back({p.string(), 1, "docs-module-map",
                       "required documentation file does not exist"});
        return false;
    };
    const bool have_readme = require(readme);
    const bool have_arch = require(arch);
    const bool have_formats = require(formats);
    const std::string readme_text = have_readme ? slurpFile(readme) : "";
    const std::string arch_text = have_arch ? slurpFile(arch) : "";
    const std::string formats_text = have_formats ? slurpFile(formats) : "";

    // Module map: every src/ module is placed in README and architecture.
    const fs::path srcdir = r / "src";
    if (fs::exists(srcdir)) {
        std::vector<std::string> modules;
        for (const auto& e : fs::directory_iterator(srcdir))
            if (e.is_directory())
                modules.push_back(e.path().filename().string());
        std::sort(modules.begin(), modules.end());
        for (const std::string& m : modules) {
            ++checked;
            const std::string token = "src/" + m;
            if (have_readme &&
                readme_text.find(token) == std::string::npos)
                out.push_back({readme.string(), 1, "docs-module-map",
                               "module '" + token +
                                   "' is missing from the README "
                                   "module map"});
            if (have_arch && arch_text.find(token) == std::string::npos)
                out.push_back({arch.string(), 1, "docs-module-map",
                               "module '" + token +
                                   "' is missing from "
                                   "docs/architecture.md"});
        }
    }

    // Link resolution: every relative link in README.md and docs/*.md
    // points at a file that exists.
    std::vector<fs::path> mdfiles;
    if (have_readme)
        mdfiles.push_back(readme);
    const fs::path docsdir = r / "docs";
    if (fs::exists(docsdir))
        for (const auto& e : fs::directory_iterator(docsdir))
            if (e.is_regular_file() &&
                endsWith(e.path().string(), ".md"))
                mdfiles.push_back(e.path());
    std::sort(mdfiles.begin(), mdfiles.end());
    for (const fs::path& md : mdfiles) {
        std::ifstream is(md);
        std::string line;
        int lineno = 0;
        bool in_fence = false;
        while (std::getline(is, line)) {
            ++lineno;
            // Fenced code blocks hold code, not links ("[](int x)" is a
            // lambda, not a markdown link).
            const size_t text_start = line.find_first_not_of(" \t");
            if (text_start != std::string::npos &&
                line.compare(text_start, 3, "```") == 0) {
                in_fence = !in_fence;
                continue;
            }
            if (in_fence)
                continue;
            size_t pos = 0;
            while ((pos = line.find("](", pos)) != std::string::npos) {
                const size_t start = pos + 2;
                const size_t close = line.find(')', start);
                pos = start;
                if (close == std::string::npos)
                    break;
                std::string target = line.substr(start, close - start);
                if (target.empty() || target[0] == '#' ||
                    target.find("://") != std::string::npos ||
                    target.rfind("mailto:", 0) == 0)
                    continue;
                const size_t hash = target.find('#');
                if (hash != std::string::npos)
                    target = target.substr(0, hash);
                if (target.empty())
                    continue;
                ++checked;
                if (!fs::exists(md.parent_path() / target))
                    out.push_back({md.string(), lineno, "docs-link",
                                   "broken link target '" + target +
                                       "'"});
            }
        }
    }

    // Format coverage: every versioned header literal in src/ has its
    // name in docs/formats.md.
    if (fs::exists(srcdir)) {
        std::vector<std::string> seen;
        for (const auto& e : fs::recursive_directory_iterator(srcdir)) {
            if (!e.is_regular_file() ||
                !isSourceFile(e.path().string()))
                continue;
            const FileText ft = readFile(e.path().string());
            for (const auto& [name, line] : formatHeadersIn(ft)) {
                if (std::find(seen.begin(), seen.end(), name) !=
                    seen.end())
                    continue;
                seen.push_back(name);
                ++checked;
                if (have_formats &&
                    formats_text.find(name) == std::string::npos)
                    out.push_back(
                        {ft.path, line, "docs-format",
                         "versioned format '" + name +
                             "' is not documented in docs/formats.md"});
            }
        }
    }
    return checked;
}

// ---------------------------------------------------------- driver ---

std::vector<Finding>
lintFile(const std::string& path)
{
    FileText ft = readFile(path);
    AllowMap am = buildAllowMap(ft);
    std::vector<Finding> out = am.tagFindings;
    checkNondet(ft, am, out);
    checkUnorderedIter(ft, am, out);
    checkDoubleFormat(ft, am, out);
    checkSpanPayload(ft, am, out);
    return out;
}

std::vector<std::string>
collectFiles(const Options& opt)
{
    std::vector<std::string> files = opt.files;
    for (const std::string& root : opt.roots) {
        for (const char* sub :
             {"src", "tests", "bench", "examples", "tools"}) {
            fs::path dir = fs::path(root) / sub;
            if (!fs::exists(dir))
                continue;
            for (const auto& e : fs::recursive_directory_iterator(dir)) {
                if (!e.is_regular_file())
                    continue;
                std::string p = e.path().string();
                // Fixture files exist to violate the rules.
                if (p.find("/fixtures/") != std::string::npos)
                    continue;
                if (isSourceFile(p))
                    files.push_back(p);
            }
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

int
reportFindings(const std::vector<Finding>& findings)
{
    for (const Finding& f : findings)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                     f.check.c_str(), f.message.c_str());
    if (!findings.empty()) {
        std::fprintf(stderr, "magma_lint: %zu finding(s)\n",
                     findings.size());
        return 1;
    }
    return 0;
}

/**
 * Self-test over the fixtures directory: every `bad_<check>[_...].cc`
 * must yield at least one finding of exactly <check>; every `good_*.cc`
 * must be clean. The checker gates the tree, so it is itself gated.
 */
int
selfTest(const std::string& dir)
{
    int failures = 0;
    int cases = 0;
    std::vector<std::string> files;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.is_regular_file() && isSourceFile(e.path().string()))
            files.push_back(e.path().string());
    std::sort(files.begin(), files.end());

    for (const std::string& path : files) {
        std::string stem = fs::path(path).stem().string();
        std::vector<Finding> findings = lintFile(path);
        ++cases;
        if (stem.rfind("good_", 0) == 0) {
            if (!findings.empty()) {
                std::fprintf(stderr,
                             "SELF-TEST FAIL %s: expected clean, got:\n",
                             path.c_str());
                reportFindings(findings);
                ++failures;
            }
            continue;
        }
        if (stem.rfind("bad_", 0) == 0) {
            // bad_<check>, with '_' in place of '-' in the check id.
            std::string check = stem.substr(4);
            size_t extra = check.find("__");
            if (extra != std::string::npos)
                check = check.substr(0, extra);
            std::replace(check.begin(), check.end(), '_', '-');
            bool hit = false;
            for (const Finding& f : findings)
                hit = hit || f.check == check;
            if (!hit) {
                std::fprintf(
                    stderr,
                    "SELF-TEST FAIL %s: expected a '%s' finding, got %zu "
                    "other finding(s)\n",
                    path.c_str(), check.c_str(), findings.size());
                reportFindings(findings);
                ++failures;
            }
            continue;
        }
        std::fprintf(stderr,
                     "SELF-TEST FAIL %s: fixture names must start with "
                     "bad_<check> or good_\n",
                     path.c_str());
        ++failures;
    }
    // Docs-gate fixtures: a tree that must pass and one that must not.
    const fs::path docs_good = fs::path(dir) / "docs_good_tree";
    if (fs::exists(docs_good)) {
        ++cases;
        std::vector<Finding> findings;
        checkDocs(docs_good.string(), findings);
        if (!findings.empty()) {
            std::fprintf(stderr,
                         "SELF-TEST FAIL %s: expected clean, got:\n",
                         docs_good.string().c_str());
            reportFindings(findings);
            ++failures;
        }
    }
    const fs::path docs_bad = fs::path(dir) / "docs_bad_tree";
    if (fs::exists(docs_bad)) {
        ++cases;
        std::vector<Finding> findings;
        checkDocs(docs_bad.string(), findings);
        bool module_map = false, link = false, format = false;
        for (const Finding& f : findings) {
            module_map = module_map || f.check == "docs-module-map";
            link = link || f.check == "docs-link";
            format = format || f.check == "docs-format";
        }
        if (!module_map || !link || !format) {
            std::fprintf(stderr,
                         "SELF-TEST FAIL %s: expected docs-module-map + "
                         "docs-link + docs-format findings, got %zu "
                         "finding(s)\n",
                         docs_bad.string().c_str(), findings.size());
            reportFindings(findings);
            ++failures;
        }
    }

    std::fprintf(stderr, "magma_lint self-test: %d case(s), %d failure(s)\n",
                 cases, failures);
    if (cases == 0)
        return 2;
    return failures ? 1 : 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: magma_lint [--root DIR]... [FILE]...\n"
        "       magma_lint --self-test FIXTURE_DIR\n"
        "       magma_lint --check-headers --compiler CXX "
        "[--include DIR]... --root DIR\n"
        "       magma_lint --check-docs --root DIR\n"
        "       magma_lint --check-spans --root DIR\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root")
            opt.roots.push_back(next());
        else if (arg == "--self-test")
            opt.selfTestDir = next();
        else if (arg == "--check-headers")
            opt.checkHeaders = true;
        else if (arg == "--check-docs")
            opt.checkDocs = true;
        else if (arg == "--check-spans")
            opt.checkSpans = true;
        else if (arg == "--compiler")
            opt.compiler = next();
        else if (arg == "--include")
            opt.includeDirs.push_back(next());
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "magma_lint: unknown flag '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            opt.files.push_back(arg);
        }
    }

    if (!opt.selfTestDir.empty())
        return selfTest(opt.selfTestDir);

    if (opt.checkHeaders) {
        if (opt.roots.empty()) {
            usage();
            return 2;
        }
        if (opt.includeDirs.empty())
            opt.includeDirs = opt.roots;
        std::vector<Finding> findings;
        if (checkHeaders(opt, findings) == 0) {
            std::fprintf(stderr, "magma_lint: no headers found\n");
            return 2;
        }
        return reportFindings(findings);
    }

    if (opt.checkDocs) {
        if (opt.roots.empty()) {
            usage();
            return 2;
        }
        std::vector<Finding> findings;
        int checked = 0;
        for (const std::string& root : opt.roots)
            checked += checkDocs(root, findings);
        std::fprintf(stderr, "magma_lint: %d documentation site(s) "
                             "checked\n",
                     checked);
        if (checked == 0) {
            std::fprintf(stderr, "magma_lint: nothing to check\n");
            return 2;
        }
        return reportFindings(findings);
    }

    if (opt.checkSpans) {
        std::vector<std::string> files = collectFiles(opt);
        if (files.empty()) {
            usage();
            return 2;
        }
        std::vector<Finding> findings;
        int sites = 0;
        for (const std::string& f : files) {
            FileText ft = readFile(f);
            AllowMap am = buildAllowMap(ft);
            sites += checkSpanPayload(ft, am, findings);
        }
        std::fprintf(stderr, "magma_lint: %d span site(s) checked\n",
                     sites);
        return reportFindings(findings);
    }

    std::vector<std::string> files = collectFiles(opt);
    if (files.empty()) {
        usage();
        return 2;
    }
    std::vector<Finding> findings;
    for (const std::string& f : files) {
        std::vector<Finding> fs_ = lintFile(f);
        findings.insert(findings.end(), fs_.begin(), fs_.end());
    }
    std::fprintf(stderr, "magma_lint: %zu file(s) scanned\n",
                 files.size());
    return reportFindings(findings);
}
