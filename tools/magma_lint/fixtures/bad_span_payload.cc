// magma_lint self-test fixture: an obs::Span construction with no
// "payload" doc comment in reach — the span-payload check must flag it.
// Never compiled; the type below is a stand-in for obs::Span.

namespace obs {
struct Span {
    Span(const char*, long long) {}
};
}  // namespace obs

void
undocumentedSpan()
{
    obs::Span span("fixture.undocumented", 7);
}
