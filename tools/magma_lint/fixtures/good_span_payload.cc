// magma_lint self-test fixture: every obs::Span site documents its
// payload slots — a same-line comment, a comment within three lines
// above, or a justified allow tag. This file must scan clean.

namespace obs {
struct Span {
    Span(const char*, long long) {}
};
}  // namespace obs

void
sameLineComment()
{
    obs::Span span("fixture.same_line", 1);  // span payload: i = index
}

void
precedingComment()
{
    // span payload: i = batch size; a/b unused
    obs::Span span("fixture.preceding", 2);
}

void
taggedSpan()
{
    // magma-lint: allow(span-payload): timing-only span, no payload
    // slots are filled at this site.
    obs::Span span("fixture.tagged", 0);
}
