// magma_lint self-test fixture: properly tagged or inherently
// deterministic versions of every pattern the checks flag — this file
// must scan clean.

#include <cstdio>
#include <random>
#include <string>
#include <unordered_map>

int
sanctionedEntropy()
{
    // magma-lint: allow(nondet): fixture demonstrating a justified tag;
    // real sanctioned sites explain why entropy cannot reach results.
    std::random_device rd;
    return static_cast<int>(rd());
}

double
orderIndependentFold()
{
    std::unordered_map<std::string, double> totals;
    totals["a"] = 1.0;
    double sum = 0.0;
    // magma-lint: allow(unordered-iter): += fold is commutative over
    // doubles only up to rounding, but this fixture just shows the tag
    // covering a following multi-line statement.
    for (const auto& [key, value] : totals)
        sum += value;
    return sum;
}

struct Thing {
    double value = 0.0;

    std::string toText() const
    {
        char buf[64];
        // %.17g is the round-trip-exact conversion; no tag needed.
        std::snprintf(buf, sizeof(buf), "thing %.17g", value);
        return buf;
    }

    std::string display() const
    {
        char buf[64];
        // magma-lint: allow(double-format): console display line, not
        // part of the parsed round-trip format.
        std::snprintf(buf, sizeof(buf), "thing ~%0.3f", value);
        return buf;
    }

    static Thing fromText(const std::string& text)
    {
        Thing t;
        std::sscanf(text.c_str(), "thing %lf", &t.value);
        return t;
    }
};

int
keyedLookupsAreFine()
{
    // find/emplace/count on unordered containers never observe hash
    // order — only iteration does — so none of this needs a tag.
    std::unordered_map<std::string, int> memo;
    memo.emplace("k", 1);
    auto it = memo.find("k");
    return it == memo.end() ? 0 : it->second + int(memo.count("k"));
}
