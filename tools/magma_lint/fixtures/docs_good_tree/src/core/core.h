// Fixture: the versioned header below must be documented in
// docs/formats.md for the tree to pass the docs gate.
inline const char* kDemoTraceHeader = "magma-demo-trace v1";
