// magma_lint self-test fixture: every RNG below is a nondeterminism
// source and must be flagged by the `nondet` check. This file is never
// compiled into anything — it exists to violate the rules.

#include <cstdlib>
#include <random>

int
nondeterministicSeed()
{
    std::random_device rd;  // hardware entropy: reruns diverge
    return static_cast<int>(rd());
}

int
cRuntimeRng()
{
    return std::rand();  // unseeded global C RNG
}
