// magma_lint self-test fixture: this file participates in a round-trip
// text format (it mentions fromText), so the lossy %f below must be
// flagged by the `double-format` check — a reparsed %f value is not
// bitwise equal to what was written.

#include <cstdio>
#include <string>

struct Thing {
    double value = 0.0;

    std::string toText() const
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "thing %f", value);  // lossy!
        return buf;
    }

    static Thing fromText(const std::string& text)
    {
        Thing t;
        std::sscanf(text.c_str(), "thing %lf", &t.value);
        return t;
    }
};
