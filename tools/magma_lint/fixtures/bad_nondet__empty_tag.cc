// magma_lint self-test fixture: an allow tag WITHOUT a justification is
// itself a `nondet` finding — the audit trail is the point of the tag.

#include <random>

int
taggedButUnjustified()
{
    std::random_device rd;  // magma-lint: allow(nondet)
    return static_cast<int>(rd());
}
