// Fixture: this module is named in neither the README module map nor
// docs/architecture.md.
inline int extraModuleProbe() { return 0; }
