// Fixture: this versioned header is deliberately not documented in
// docs/formats.md.
inline const char* kDemoTraceHeader = "magma-undocumented-format v1";
