// magma_lint self-test fixture: iterating an unordered container into
// serialized output leaks hash order into the artifact — the
// `unordered-iter` check must flag both loops below.

#include <cstdio>
#include <string>
#include <unordered_map>

void
writeJson(const std::unordered_map<std::string, double>& unused)
{
    (void)unused;
    std::unordered_map<std::string, double> stats;
    stats["a"] = 1.0;
    std::printf("{");
    for (const auto& [key, value] : stats)
        std::printf("\"%s\": %d,", key.c_str(), static_cast<int>(value));
    std::printf("}\n");
}

double
iteratorWalk()
{
    std::unordered_map<std::string, double> totals;
    double sum = 0.0;
    for (auto it = totals.begin(); it != totals.end(); ++it)
        sum += it->second;
    return sum;
}
