/**
 * @file
 * bench_report — aggregates the perf-smoke bench artifacts into one
 * canonical BENCH.json and gates it against a committed baseline, so a
 * perf regression fails CI the same way a broken test does.
 *
 * Ingest: every *.json under --in DIR (sorted by filename, so the
 * aggregate is independent of directory enumeration order) must be a
 * schema-1 telemetry file ({"schema":1,"bench":...,"config":{...},
 * "metrics":{...},"samples":[...]}, see src/obs/json_writer.h). From
 * each file it takes the bench name, the raw "config" object (echoed
 * verbatim so the aggregate records seeds/budgets/thread counts), and
 * every numeric or bool field of "metrics" (bools become 1/0; strings
 * and nested values are skipped — headline metrics are scalars).
 *
 * Output (--out): one canonical JSON document
 *   { "schema": 1, "bench": "bench_report",
 *     "config": {"inputs": [...], "benches": {name: <config echo>}},
 *     "samples": [{"bench":..,"metric":..,"value":..}, ...] }
 * with samples sorted by (bench, metric) and doubles printed %.17g, so
 * re-running the aggregator over the same inputs reproduces the file
 * byte-identically. Like every telemetry writer in this repo, write()
 * re-reads and re-parses what it wrote and fails on any mismatch.
 *
 * Baseline gating (--baseline FILE): the baseline is a list of gates
 *   {"bench":..,"metric":..,"value":..,"direction":..,"tol":..}
 * where direction is "higher" (regression when current <
 * value*(1-tol)), "lower" (regression when current > value*(1+tol)) or
 * "exact" (|current-value| > tol). A gated metric missing from the
 * aggregate is itself a regression — a bench silently dropping a
 * metric must not pass. Exit status 1 on any tripped gate.
 *
 * --write-baseline FILE emits a baseline from the current aggregate
 * (direction inferred from the metric name: per_sec, speedup and
 * hit_rate metrics are "higher"; seconds, _ms, p50, p99 and stall
 * metrics are "lower"; the rest "exact").
 * --scale BENCH:METRIC:FACTOR multiplies one ingested value,
 * which is how CI proves the gate trips on an injected regression.
 *
 * Dependency-free on purpose (standard library + the header-only
 * obs::JsonWriter/JsonCursor): the lint/perf CI jobs build it with a
 * bare g++ call, no gtest or core library.
 *
 * Usage:
 *   bench_report --in DIR --out BENCH.json [--baseline FILE]
 *                [--write-baseline FILE] [--scale BENCH:METRIC:FACTOR]
 *   bench_report --self-test
 *
 * Exit status: 0 clean, 1 regression/round-trip failure, 2 usage error.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_cursor.h"
#include "obs/json_writer.h"

namespace fs = std::filesystem;
using magma::obs::JsonCursor;
using magma::obs::JsonWriter;
using magma::obs::forEachKey;
using magma::obs::numEq;

namespace {

// --------------------------------------------------------- aggregate ---

/** One headline metric of one bench. */
struct MetricSample {
    std::string bench;
    std::string metric;
    double value = 0.0;

    bool operator==(const MetricSample& o) const
    {
        return bench == o.bench && metric == o.metric &&
               numEq(value, o.value);
    }
};

/** The canonical aggregate: what BENCH.json serializes. */
struct BenchReport {
    std::vector<std::string> inputs;  // ingested filenames, sorted
    // bench name -> raw "config" object text, in input order.
    std::vector<std::pair<std::string, std::string>> configs;
    std::vector<MetricSample> samples;  // sorted by (bench, metric)

    bool operator==(const BenchReport& o) const
    {
        return inputs == o.inputs && configs == o.configs &&
               samples == o.samples;
    }

    std::string toJson() const;
    static BenchReport fromJson(const std::string& text);
};

std::string
BenchReport::toJson() const
{
    JsonWriter w;
    w.beginTelemetry("bench_report");
    w.beginObject("config");
    w.beginArray("inputs");
    for (const std::string& in : inputs) {
        w.beginObject();
        w.field("file", in);
        w.endObject();
    }
    w.endArray();
    w.beginObject("benches");
    for (const auto& [bench, raw] : configs)
        w.raw(bench, raw);
    w.endObject();
    w.endObject();
    w.beginArray("samples");
    for (const MetricSample& s : samples) {
        w.beginObject();
        w.field("bench", s.bench);
        w.field("metric", s.metric);
        w.field("value", s.value);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

BenchReport
BenchReport::fromJson(const std::string& text)
{
    BenchReport r;
    JsonCursor c(text, "BenchReport::fromJson");
    c.expect('{');
    forEachKey(c, [&](const std::string& key) {
        if (key == "schema") {
            if (c.parseInt() != magma::obs::kTelemetrySchemaVersion)
                c.fail("unsupported schema version");
        } else if (key == "bench") {
            if (c.parseString() != "bench_report")
                c.fail("not a bench_report aggregate");
        } else if (key == "config") {
            c.expect('{');
            forEachKey(c, [&](const std::string& ck) {
                if (ck == "inputs") {
                    c.expect('[');
                    if (!c.tryConsume(']')) {
                        do {
                            c.expect('{');
                            forEachKey(c, [&](const std::string& fk) {
                                if (fk != "file")
                                    c.fail("unknown input key");
                                r.inputs.push_back(c.parseString());
                            });
                        } while (c.tryConsume(','));
                        c.expect(']');
                    }
                } else if (ck == "benches") {
                    c.expect('{');
                    forEachKey(c, [&](const std::string& bench) {
                        r.configs.emplace_back(bench, c.skipValue());
                    });
                } else {
                    c.fail("unknown config key");
                }
            });
        } else if (key == "samples") {
            c.expect('[');
            if (c.tryConsume(']'))
                return;
            do {
                c.expect('{');
                MetricSample s;
                forEachKey(c, [&](const std::string& sk) {
                    if (sk == "bench")
                        s.bench = c.parseString();
                    else if (sk == "metric")
                        s.metric = c.parseString();
                    else if (sk == "value")
                        s.value = c.parseNumber();
                    else
                        c.fail("unknown sample key");
                });
                r.samples.push_back(std::move(s));
            } while (c.tryConsume(','));
            c.expect(']');
        } else {
            c.fail("unknown top-level key");
        }
    });
    if (!c.atEnd())
        c.fail("trailing content");
    return r;
}

/**
 * Ingest one schema-1 telemetry file into the aggregate: bench name,
 * raw config echo, and every scalar "metrics" field. Throws
 * std::invalid_argument (via JsonCursor::fail) on malformed input.
 */
void
ingest(BenchReport& r, const std::string& name, const std::string& text)
{
    JsonCursor c(text, "bench_report ingest " + name);
    std::string bench;
    std::string config = "{}";
    std::vector<std::pair<std::string, double>> metrics;
    c.expect('{');
    forEachKey(c, [&](const std::string& key) {
        if (key == "schema") {
            if (c.parseInt() != magma::obs::kTelemetrySchemaVersion)
                c.fail("unsupported schema version");
        } else if (key == "bench") {
            bench = c.parseString();
        } else if (key == "config") {
            config = c.skipValue();
        } else if (key == "metrics") {
            c.expect('{');
            forEachKey(c, [&](const std::string& mk) {
                char p = c.peek();
                if (p == 't' || p == 'f')
                    metrics.emplace_back(mk, c.parseBool() ? 1.0 : 0.0);
                else if (p == '{' || p == '[' || p == '"')
                    c.skipValue();  // headline metrics are scalars
                else
                    metrics.emplace_back(mk, c.parseNumber());
            });
        } else {
            c.skipValue();  // samples etc. — per-point detail, not gated
        }
    });
    if (bench.empty())
        c.fail("missing bench name");
    r.inputs.push_back(name);
    r.configs.emplace_back(bench, config);
    for (auto& [metric, value] : metrics)
        r.samples.push_back({bench, metric, value});
}

// ------------------------------------------------------------- gates ---

/** One baseline expectation; see the file header for the semantics. */
struct Gate {
    std::string bench;
    std::string metric;
    double value = 0.0;
    std::string direction;  // "higher" | "lower" | "exact"
    double tol = 0.0;
};

std::string
gatesToJson(const std::vector<Gate>& gates)
{
    JsonWriter w;
    w.beginTelemetry("bench_baseline");
    w.beginArray("gates");
    for (const Gate& g : gates) {
        w.beginObject();
        w.field("bench", g.bench);
        w.field("metric", g.metric);
        w.field("value", g.value);
        w.field("direction", g.direction);
        w.field("tol", g.tol);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::vector<Gate>
gatesFromJson(const std::string& text)
{
    std::vector<Gate> gates;
    JsonCursor c(text, "bench_report baseline");
    c.expect('{');
    forEachKey(c, [&](const std::string& key) {
        if (key == "schema") {
            if (c.parseInt() != magma::obs::kTelemetrySchemaVersion)
                c.fail("unsupported schema version");
        } else if (key == "bench") {
            if (c.parseString() != "bench_baseline")
                c.fail("not a bench_baseline file");
        } else if (key == "gates") {
            c.expect('[');
            if (c.tryConsume(']'))
                return;
            do {
                c.expect('{');
                Gate g;
                forEachKey(c, [&](const std::string& gk) {
                    if (gk == "bench")
                        g.bench = c.parseString();
                    else if (gk == "metric")
                        g.metric = c.parseString();
                    else if (gk == "value")
                        g.value = c.parseNumber();
                    else if (gk == "direction")
                        g.direction = c.parseString();
                    else if (gk == "tol")
                        g.tol = c.parseNumber();
                    else
                        c.fail("unknown gate key");
                });
                if (g.direction != "higher" && g.direction != "lower" &&
                    g.direction != "exact")
                    c.fail("gate direction must be higher|lower|exact");
                gates.push_back(std::move(g));
            } while (c.tryConsume(','));
            c.expect(']');
        } else {
            c.fail("unknown top-level key");
        }
    });
    return gates;
}

/**
 * Evaluate every gate against the aggregate; returns human-readable
 * failure lines (empty = all gates hold). A gated metric missing from
 * the aggregate is a failure, not a skip.
 */
std::vector<std::string>
diffAgainstBaseline(const BenchReport& r, const std::vector<Gate>& gates)
{
    std::vector<std::string> failures;
    char buf[256];
    for (const Gate& g : gates) {
        const MetricSample* found = nullptr;
        for (const MetricSample& s : r.samples)
            if (s.bench == g.bench && s.metric == g.metric) {
                found = &s;
                break;
            }
        if (!found) {
            std::snprintf(buf, sizeof(buf),
                          "%s:%s gated but missing from the aggregate",
                          g.bench.c_str(), g.metric.c_str());
            failures.emplace_back(buf);
            continue;
        }
        double cur = found->value;
        bool bad = false;
        if (g.direction == "higher")
            bad = !(cur >= g.value * (1.0 - g.tol));
        else if (g.direction == "lower")
            bad = !(cur <= g.value * (1.0 + g.tol));
        else
            bad = !(std::abs(cur - g.value) <= g.tol);
        // NaN compares false everywhere, so the !(...) forms above also
        // trip when a bench emitted null for a gated metric.
        if (!bad)
            continue;
        // magma-lint: allow(double-format): gate report lines are for
        // humans; the values round-trip via BENCH.json, not this text.
        std::snprintf(buf, sizeof(buf),
                      "%s:%s = %.6g violates %s baseline %.6g (tol %g)",
                      g.bench.c_str(), g.metric.c_str(), cur,
                      g.direction.c_str(), g.value, g.tol);
        failures.emplace_back(buf);
    }
    return failures;
}

/** Direction heuristics for --write-baseline; see the file header. */
Gate
inferGate(const MetricSample& s)
{
    Gate g;
    g.bench = s.bench;
    g.metric = s.metric;
    g.value = s.value;
    auto has = [&](const char* needle) {
        return s.metric.find(needle) != std::string::npos;
    };
    if (has("per_sec") || has("per_s") || has("speedup") ||
        has("hit_rate") || has("ratio") || has("reduction")) {
        g.direction = "higher";
        g.tol = 0.05;
    } else if (has("seconds") || has("_ms") || has("p50") || has("p99") ||
               has("stall") || has("wall") || has("latency")) {
        g.direction = "lower";
        g.tol = 0.05;
    } else {
        g.direction = "exact";
        g.tol = 0.0;
    }
    return g;
}

// -------------------------------------------------------------- I/O ---

bool
readFileText(const std::string& path, std::string& out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

/** Write + re-read + re-parse + byte-compare, like SnapshotWriter. */
bool
writeVerified(const std::string& text, const std::string& path)
{
    {
        std::ofstream os(path, std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "bench_report: cannot write '%s'\n",
                         path.c_str());
            return false;
        }
        os << text << '\n';
    }
    std::string back;
    if (!readFileText(path, back)) {
        std::fprintf(stderr, "bench_report: cannot re-read '%s'\n",
                     path.c_str());
        return false;
    }
    while (!back.empty() && back.back() == '\n')
        back.pop_back();
    if (back != text) {
        std::fprintf(stderr, "bench_report: '%s' did not round-trip\n",
                     path.c_str());
        return false;
    }
    return true;
}

// --------------------------------------------------------- self-test ---

int
selfTest()
{
    int failures = 0;
    auto check = [&](bool ok, const char* what) {
        if (!ok) {
            std::fprintf(stderr, "SELF-TEST FAIL: %s\n", what);
            ++failures;
        }
    };

    // Synthetic schema-1 inputs (note b_first sorts before a_second by
    // design: sample order must come from sorting, not input order).
    JsonWriter in1;
    in1.beginTelemetry("zeta");
    in1.beginObject("config");
    in1.field("seed", 7);
    in1.endObject();
    in1.beginObject("metrics");
    in1.field("evals_per_sec", 1000.0);
    in1.field("parity_ok", true);
    in1.field("mode", "flat");  // string: skipped
    in1.endObject();
    in1.beginArray("samples");
    in1.endArray();
    in1.endObject();
    JsonWriter in2;
    in2.beginTelemetry("alpha");
    in2.beginObject("config");
    in2.endObject();
    in2.beginObject("metrics");
    in2.field("wall_seconds", 2.5);
    in2.endObject();
    in2.endObject();

    BenchReport r;
    ingest(r, "b_first.json", in1.str());
    ingest(r, "a_second.json", in2.str());
    std::sort(r.samples.begin(), r.samples.end(),
              [](const MetricSample& a, const MetricSample& b) {
                  return a.bench != b.bench ? a.bench < b.bench
                                            : a.metric < b.metric;
              });
    check(r.samples.size() == 3, "scalar + bool ingested, string skipped");
    check(r.samples[0].bench == "alpha", "samples sorted by bench");
    check(numEq(r.samples[2].value, 1.0), "bool becomes 1.0");

    // Canonical round-trip: parse(toJson) == original, byte-identical
    // re-serialization.
    std::string js = r.toJson();
    BenchReport back = BenchReport::fromJson(js);
    check(back == r, "aggregate round-trips");
    check(back.toJson() == js, "re-serialization is byte-identical");

    // Gate directions.
    std::vector<Gate> gates = {
        {"zeta", "evals_per_sec", 1000.0, "higher", 0.05},
        {"zeta", "parity_ok", 1.0, "exact", 0.0},
        {"alpha", "wall_seconds", 2.5, "lower", 0.05},
    };
    check(diffAgainstBaseline(r, gates).empty(), "clean run passes");

    BenchReport slow = r;
    for (MetricSample& s : slow.samples)
        if (s.metric == "evals_per_sec")
            s.value *= 0.9;  // the injected-regression CI scenario
    check(diffAgainstBaseline(slow, gates).size() == 1,
          "10%% rate drop trips a 5%% higher-gate");

    BenchReport broken = r;
    for (MetricSample& s : broken.samples)
        if (s.metric == "parity_ok")
            s.value = 0.0;
    check(!diffAgainstBaseline(broken, gates).empty(),
          "exact gate trips on parity flip");

    std::vector<Gate> missing = {{"zeta", "gone_metric", 1.0, "exact", 0.0}};
    check(!diffAgainstBaseline(r, missing).empty(),
          "missing gated metric is a regression");

    // Baseline serialization round-trip + inference heuristics.
    std::vector<Gate> inferred;
    for (const MetricSample& s : r.samples)
        inferred.push_back(inferGate(s));
    std::string bjs = gatesToJson(inferred);
    std::vector<Gate> gback = gatesFromJson(bjs);
    check(gatesToJson(gback) == bjs, "baseline round-trips");
    check(diffAgainstBaseline(r, inferred).empty(),
          "self-derived baseline passes its own run");
    bool dirs_ok = true;
    for (const Gate& g : inferred) {
        if (g.metric == "evals_per_sec")
            dirs_ok = dirs_ok && g.direction == "higher";
        if (g.metric == "wall_seconds")
            dirs_ok = dirs_ok && g.direction == "lower";
        if (g.metric == "parity_ok")
            dirs_ok = dirs_ok && g.direction == "exact";
    }
    check(dirs_ok, "direction heuristics");

    std::fprintf(stderr, "bench_report self-test: %d failure(s)\n",
                 failures);
    return failures ? 1 : 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_report --in DIR --out BENCH.json [--baseline FILE]\n"
        "                    [--write-baseline FILE]\n"
        "                    [--scale BENCH:METRIC:FACTOR]\n"
        "       bench_report --self-test\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string inDir, outPath, baselinePath, writeBaselinePath;
    std::vector<std::string> scales;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--in")
            inDir = next();
        else if (arg == "--out")
            outPath = next();
        else if (arg == "--baseline")
            baselinePath = next();
        else if (arg == "--write-baseline")
            writeBaselinePath = next();
        else if (arg == "--scale")
            scales.push_back(next());
        else if (arg == "--self-test")
            return selfTest();
        else {
            usage();
            return 2;
        }
    }
    if (inDir.empty() || outPath.empty()) {
        usage();
        return 2;
    }

    std::vector<std::string> files;
    if (!fs::is_directory(inDir)) {
        std::fprintf(stderr, "bench_report: '%s' is not a directory\n",
                     inDir.c_str());
        return 2;
    }
    for (const auto& e : fs::directory_iterator(inDir))
        if (e.is_regular_file() && e.path().extension() == ".json")
            files.push_back(e.path().string());
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::fprintf(stderr, "bench_report: no *.json under '%s'\n",
                     inDir.c_str());
        return 2;
    }

    BenchReport report;
    for (const std::string& f : files) {
        std::string text;
        if (!readFileText(f, text)) {
            std::fprintf(stderr, "bench_report: cannot read '%s'\n",
                         f.c_str());
            return 2;
        }
        try {
            ingest(report, fs::path(f).filename().string(), text);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bench_report: %s\n", e.what());
            return 2;
        }
    }
    std::sort(report.samples.begin(), report.samples.end(),
              [](const MetricSample& a, const MetricSample& b) {
                  return a.bench != b.bench ? a.bench < b.bench
                                            : a.metric < b.metric;
              });

    for (const std::string& spec : scales) {
        size_t c1 = spec.find(':');
        size_t c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
        if (c2 == std::string::npos) {
            std::fprintf(stderr,
                         "bench_report: --scale wants BENCH:METRIC:"
                         "FACTOR, got '%s'\n",
                         spec.c_str());
            return 2;
        }
        std::string bench = spec.substr(0, c1);
        std::string metric = spec.substr(c1 + 1, c2 - c1 - 1);
        double factor = std::strtod(spec.c_str() + c2 + 1, nullptr);
        bool hit = false;
        for (MetricSample& s : report.samples)
            if (s.bench == bench && s.metric == metric) {
                s.value *= factor;
                hit = true;
            }
        if (!hit) {
            std::fprintf(stderr, "bench_report: --scale matched nothing "
                                 "('%s')\n",
                         spec.c_str());
            return 2;
        }
        std::fprintf(stderr, "bench_report: scaled %s by %g (injected "
                             "for gate testing)\n",
                     spec.c_str(), factor);
    }

    std::string js = report.toJson();
    if (!writeVerified(js, outPath))
        return 1;
    try {
        if (!(BenchReport::fromJson(js) == report)) {
            std::fprintf(stderr,
                         "bench_report: aggregate did not round-trip\n");
            return 1;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_report: re-parse failed: %s\n",
                     e.what());
        return 1;
    }
    std::fprintf(stderr,
                 "bench_report: %zu input(s), %zu metric(s) -> %s\n",
                 report.inputs.size(), report.samples.size(),
                 outPath.c_str());

    if (!writeBaselinePath.empty()) {
        std::vector<Gate> gates;
        for (const MetricSample& s : report.samples)
            gates.push_back(inferGate(s));
        if (!writeVerified(gatesToJson(gates), writeBaselinePath))
            return 1;
        std::fprintf(stderr, "bench_report: baseline (%zu gates) -> %s\n",
                     gates.size(), writeBaselinePath.c_str());
    }

    if (!baselinePath.empty()) {
        std::string text;
        if (!readFileText(baselinePath, text)) {
            std::fprintf(stderr, "bench_report: cannot read baseline "
                                 "'%s'\n",
                         baselinePath.c_str());
            return 2;
        }
        std::vector<Gate> gates;
        try {
            gates = gatesFromJson(text);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bench_report: %s\n", e.what());
            return 2;
        }
        std::vector<std::string> failures =
            diffAgainstBaseline(report, gates);
        for (const std::string& f : failures)
            std::fprintf(stderr, "REGRESSION %s\n", f.c_str());
        std::fprintf(stderr,
                     "bench_report: %zu gate(s) against %s, %zu "
                     "regression(s)\n",
                     gates.size(), baselinePath.c_str(), failures.size());
        if (!failures.empty())
            return 1;
    }
    return 0;
}
