#ifndef MAGMA_BENCH_BENCH_COMMON_H_
#define MAGMA_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

namespace magma::bench {

/**
 * Shared harness knobs. Every figure/table harness accepts:
 *   --full         paper-scale budgets (10K samples, group size 100)
 *   --seed N       workload/search seed
 *   --out-dir DIR  where CSV/JSON artifacts land (default: the build
 *                  directory baked in as MAGMA_BENCH_OUT_DIR, so benches
 *                  invoked from anywhere stop littering the invoking CWD)
 *   --json FILE    machine-readable result (harnesses that support it);
 *                  relative paths land in --out-dir
 * and defaults to a reduced budget so the whole suite runs in minutes.
 */
struct BenchArgs {
    bool full = false;
    uint64_t seed = 1;
    std::string outDir;
    std::string jsonPath;

    static BenchArgs parse(int argc, char** argv)
    {
        BenchArgs a;
#ifdef MAGMA_BENCH_OUT_DIR
        a.outDir = MAGMA_BENCH_OUT_DIR;
#else
        a.outDir = ".";
#endif
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0)
                a.full = true;
            else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
                a.seed = std::strtoull(argv[++i], nullptr, 10);
            else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc)
                a.outDir = argv[++i];
            else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
                a.jsonPath = argv[++i];
        }
        return a;
    }

    /** Search budget: paper's 10K under --full, else reduced. */
    int64_t budget(int64_t reduced = 2000) const
    {
        return full ? 10000 : reduced;
    }

    /** Group size: paper's 100 under --full, else reduced. */
    int groupSize(int reduced = 40) const { return full ? 100 : reduced; }

    /**
     * Output path for an artifact `file`: absolute paths pass through,
     * relative ones land in outDir (created on demand).
     */
    std::string outPath(const std::string& file) const
    {
        std::filesystem::path p(file);
        if (p.is_absolute())
            return file;
        std::filesystem::path dir(outDir.empty() ? "." : outDir);
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);  // best effort
        return (dir / p).string();
    }

    /** Resolved --json path (empty when not requested). */
    std::string jsonOutPath() const
    {
        return jsonPath.empty() ? std::string() : outPath(jsonPath);
    }
};

inline void
printHeader(const std::string& title)
{
    std::printf(
        "==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf(
        "==============================================================\n");
}

}  // namespace magma::bench

#endif  // MAGMA_BENCH_BENCH_COMMON_H_
