#ifndef MAGMA_BENCH_BENCH_COMMON_H_
#define MAGMA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>

namespace magma::bench {

/**
 * Shared harness knobs. Every figure/table harness accepts:
 *   --full      paper-scale budgets (10K samples, group size 100)
 *   --seed N    workload/search seed
 * and defaults to a reduced budget so the whole suite runs in minutes.
 */
struct BenchArgs {
    bool full = false;
    uint64_t seed = 1;

    static BenchArgs parse(int argc, char** argv)
    {
        BenchArgs a;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0)
                a.full = true;
            else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
                a.seed = std::strtoull(argv[++i], nullptr, 10);
        }
        return a;
    }

    /** Search budget: paper's 10K under --full, else reduced. */
    int64_t budget(int64_t reduced = 2000) const
    {
        return full ? 10000 : reduced;
    }

    /** Group size: paper's 100 under --full, else reduced. */
    int groupSize(int reduced = 40) const { return full ? 100 : reduced; }
};

inline void
printHeader(const std::string& title)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("==============================================================\n");
}

}  // namespace magma::bench

#endif  // MAGMA_BENCH_BENCH_COMMON_H_
