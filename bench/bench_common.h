#ifndef MAGMA_BENCH_BENCH_COMMON_H_
#define MAGMA_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

namespace magma::bench {

/**
 * Shared harness knobs. Every figure/table harness accepts:
 *   --full         paper-scale budgets (10K samples, group size 100)
 *   --seed N       workload/search seed
 *   --out-dir DIR  where CSV/JSON artifacts land (default: the build
 *                  directory baked in as MAGMA_BENCH_OUT_DIR, so benches
 *                  invoked from anywhere stop littering the invoking CWD)
 *   --json FILE    machine-readable result (harnesses that support it);
 *                  relative paths land in --out-dir
 * and defaults to a reduced budget so the whole suite runs in minutes.
 */
struct BenchArgs {
    bool full = false;
    uint64_t seed = 1;
    std::string outDir;
    std::string jsonPath;

    static BenchArgs parse(int argc, char** argv)
    {
        BenchArgs a;
#ifdef MAGMA_BENCH_OUT_DIR
        a.outDir = MAGMA_BENCH_OUT_DIR;
#else
        a.outDir = ".";
#endif
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0)
                a.full = true;
            else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
                a.seed = std::strtoull(argv[++i], nullptr, 10);
            else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc)
                a.outDir = argv[++i];
            else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
                a.jsonPath = argv[++i];
        }
        return a;
    }

    /** Search budget: paper's 10K under --full, else reduced. */
    int64_t budget(int64_t reduced = 2000) const
    {
        return full ? 10000 : reduced;
    }

    /** Group size: paper's 100 under --full, else reduced. */
    int groupSize(int reduced = 40) const { return full ? 100 : reduced; }

    /**
     * Output path for an artifact `file`: absolute paths pass through,
     * relative ones land in outDir (created on demand).
     */
    std::string outPath(const std::string& file) const
    {
        std::filesystem::path p(file);
        if (p.is_absolute())
            return file;
        std::filesystem::path dir(outDir.empty() ? "." : outDir);
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);  // best effort
        return (dir / p).string();
    }

    /** Resolved --json path (empty when not requested). */
    std::string jsonOutPath() const
    {
        return jsonPath.empty() ? std::string() : outPath(jsonPath);
    }
};

inline void
printHeader(const std::string& title)
{
    std::printf(
        "==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf(
        "==============================================================\n");
}

/**
 * Version of the shared telemetry schema emitted as the "schema" field
 * by beginTelemetry(), so CI tooling consuming the perf-smoke artifacts
 * can detect layout changes instead of mis-parsing them. Bump when the
 * top-level shape ({bench, config, metrics, samples}) changes.
 */
inline constexpr int kTelemetrySchemaVersion = 1;

/**
 * Minimal JSON emitter for the shared bench telemetry schema
 *   { "schema": 1, "bench": ..., "config": {...}, "metrics": {...},
 *     "samples": [...] }
 * so every harness's --json output is consumed by the same CI tooling
 * (the perf-smoke artifact step). Purely append-only: call the key/value
 * helpers between begin/end pairs; commas are managed automatically.
 * Strings are escaped (quotes, backslashes, control characters) and
 * non-finite doubles are emitted as null, so the output is always valid
 * JSON regardless of payload.
 */
class JsonWriter {
  public:
    JsonWriter() { out_.reserve(1024); }

    /** Open the telemetry root: '{' + schema/bench fields. */
    void beginTelemetry(const std::string& bench)
    {
        beginObject();
        field("schema", kTelemetrySchemaVersion);
        field("bench", bench);
    }

    void beginObject()
    {
        comma();
        out_ += '{';
        first_ = true;
    }
    void endObject()
    {
        out_ += '}';
        first_ = false;
    }
    void beginArray(const std::string& k)
    {
        key(k);
        out_ += '[';
        first_ = true;
    }
    void endArray()
    {
        out_ += ']';
        first_ = false;
    }
    void beginObject(const std::string& k)
    {
        key(k);
        out_ += '{';
        first_ = true;
    }

    void field(const std::string& k, const std::string& v)
    {
        key(k);
        appendString(v);
    }
    void field(const std::string& k, const char* v)
    {
        field(k, std::string(v));
    }
    void field(const std::string& k, double v)
    {
        key(k);
        if (!std::isfinite(v)) {
            // JSON has no inf/nan literals; "%.17g" would emit them and
            // corrupt the artifact.
            out_ += "null";
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ += buf;
    }
    void field(const std::string& k, int64_t v)
    {
        key(k);
        out_ += std::to_string(v);
    }
    void field(const std::string& k, int v)
    {
        field(k, static_cast<int64_t>(v));
    }
    void field(const std::string& k, uint64_t v)
    {
        key(k);
        out_ += std::to_string(v);
    }
    void field(const std::string& k, bool v)
    {
        key(k);
        out_ += v ? "true" : "false";
    }

    const std::string& str() const { return out_; }

    /** Write to `path`; returns false (with a stderr note) on failure. */
    bool writeFile(const std::string& path) const
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write JSON '%s'\n", path.c_str());
            return false;
        }
        std::fwrite(out_.data(), 1, out_.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        return true;
    }

  private:
    void comma()
    {
        if (!first_ && !out_.empty() && out_.back() != '{' &&
            out_.back() != '[')
            out_ += ',';
        first_ = false;
    }
    void key(const std::string& k)
    {
        comma();
        appendString(k);
        out_ += ':';
    }
    void appendString(const std::string& s)
    {
        out_ += '"';
        for (char c : s) {
            switch (c) {
            case '"':
                out_ += "\\\"";
                break;
            case '\\':
                out_ += "\\\\";
                break;
            case '\n':
                out_ += "\\n";
                break;
            case '\t':
                out_ += "\\t";
                break;
            case '\r':
                out_ += "\\r";
                break;
            case '\b':
                out_ += "\\b";
                break;
            case '\f':
                out_ += "\\f";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ += buf;
                } else {
                    out_ += c;
                }
            }
        }
        out_ += '"';
    }

    std::string out_;
    bool first_ = true;
};

}  // namespace magma::bench

#endif  // MAGMA_BENCH_BENCH_COMMON_H_
