/**
 * @file
 * Fig. 7 harness: per-job no-stall latency and required bandwidth of the
 * model zoo on the HB-64 and LB-64 sub-accelerator styles.
 *
 * Reproduces:
 *  (a) the per-model table for three showcased models per task plus the
 *      per-task averages on (HB,64) and (LB,64);
 *  (b) the task-average no-stall latency bars;
 *  (c) the task-average required-BW bars.
 *
 * Expected shape (paper): vision has the highest latency and lowest BW
 * need; recommendation the lowest latency and highest BW need; LB is
 * orders of magnitude slower than HB on FC-dominated models while needing
 * orders of magnitude less bandwidth.
 */

#include <cstdio>
#include <vector>

#include "accel/platform.h"
#include "bench/bench_common.h"
#include "common/csv.h"
#include "cost/cost_model.h"
#include "dnn/model_zoo.h"
#include "dnn/workload.h"

using namespace magma;

namespace {

struct ModelStats {
    double hb_lat = 0.0, lb_lat = 0.0;  // avg cycles per job
    double hb_bw = 0.0, lb_bw = 0.0;    // avg GB/s per job
};

ModelStats
profileModel(const dnn::Model& m, const cost::CostModel& model,
             const cost::SubAccelConfig& hb, const cost::SubAccelConfig& lb)
{
    ModelStats s;
    int batch = dnn::defaultBatch(m.task);
    for (const auto& layer : m.layers) {
        cost::CostResult rh = model.analyze(layer, batch, hb);
        cost::CostResult rl = model.analyze(layer, batch, lb);
        s.hb_lat += rh.noStallCycles;
        s.lb_lat += rl.noStallCycles;
        s.hb_bw += rh.reqBwGbps;
        s.lb_bw += rl.reqBwGbps;
    }
    double n = static_cast<double>(m.layers.size());
    s.hb_lat /= n;
    s.lb_lat /= n;
    s.hb_bw /= n;
    s.lb_bw /= n;
    return s;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    (void)args;
    bench::printHeader(
        "Fig. 7: per-job no-stall latency & required BW on (HB,64)/(LB,64)");

    cost::CostModel model;
    cost::SubAccelConfig hb =
        accel::makeSubAccel(cost::DataflowStyle::HB, 64, 291);
    cost::SubAccelConfig lb =
        accel::makeSubAccel(cost::DataflowStyle::LB, 64, 218);

    common::CsvWriter csv(args.outPath("fig07_job_analysis.csv"),
                          {"task", "model", "hb_lat_cycles", "lb_lat_cycles",
                           "hb_bw_gbps", "lb_bw_gbps"});

    std::printf("(a) per-model averages\n");
    std::printf("%-8s %-14s %12s %12s %12s %12s\n", "task", "model",
                "lat(HB,64)", "lat(LB,64)", "BW(HB,64)", "BW(LB,64)");

    struct TaskAgg {
        dnn::TaskType task;
        double lat_hb = 0, lat_lb = 0, bw_hb = 0, bw_lb = 0;
        int n = 0;
    };
    std::vector<TaskAgg> aggs = {{dnn::TaskType::Vision},
                                 {dnn::TaskType::Language},
                                 {dnn::TaskType::Recommendation}};

    for (auto& agg : aggs) {
        for (const auto& m : dnn::modelsForTask(agg.task)) {
            ModelStats s = profileModel(m, model, hb, lb);
            std::printf("%-8s %-14s %12.3g %12.3g %12.3g %12.3g\n",
                        dnn::taskTypeName(agg.task).c_str(), m.name.c_str(),
                        s.hb_lat, s.lb_lat, s.hb_bw, s.lb_bw);
            csv.row({dnn::taskTypeName(agg.task), m.name,
                     common::CsvWriter::num(s.hb_lat),
                     common::CsvWriter::num(s.lb_lat),
                     common::CsvWriter::num(s.hb_bw),
                     common::CsvWriter::num(s.lb_bw)});
            agg.lat_hb += s.hb_lat;
            agg.lat_lb += s.lb_lat;
            agg.bw_hb += s.hb_bw;
            agg.bw_lb += s.lb_bw;
            ++agg.n;
        }
    }

    std::printf("\n(b) task-average no-stall latency (cycles) and\n"
                "(c) task-average required BW (GB/s)\n");
    std::printf("%-8s %12s %12s %12s %12s\n", "task", "lat(HB)", "lat(LB)",
                "BW(HB)", "BW(LB)");
    for (const auto& agg : aggs) {
        std::printf("%-8s %12.3g %12.3g %12.3g %12.3g\n",
                    dnn::taskTypeName(agg.task).c_str(), agg.lat_hb / agg.n,
                    agg.lat_lb / agg.n, agg.bw_hb / agg.n,
                    agg.bw_lb / agg.n);
        csv.row({dnn::taskTypeName(agg.task), "AVERAGE",
                 common::CsvWriter::num(agg.lat_hb / agg.n),
                 common::CsvWriter::num(agg.lat_lb / agg.n),
                 common::CsvWriter::num(agg.bw_hb / agg.n),
                 common::CsvWriter::num(agg.bw_lb / agg.n)});
    }
    std::printf("\nSeries written to %s\n",
                args.outPath("fig07_job_analysis.csv").c_str());
    return 0;
}
