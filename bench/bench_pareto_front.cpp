/**
 * @file
 * Pareto-front search harness (src/mo/): NSGA-II on Mix/S2 under
 * bandwidth pressure — the regime where throughput and energy genuinely
 * trade off — against the five single-objective MAGMA optima.
 *
 * Reported per run:
 *   - front size, hypervolume (origin reference) and the additive
 *     epsilon indicator front -> scalar optima (<= 0 means the front
 *     covers every scalar optimum),
 *   - how many of the five scalar optima the front covers (weakly
 *     dominates) and how many front points any optimum dominates
 *     (must be 0 — the self-check this harness exits non-zero on),
 *   - end-to-end NSGA-II candidate throughput (vector-objective
 *     evaluations/second: each candidate is simulated ONCE for all
 *     objectives) vs the summed scalar-run throughput.
 *
 * Artifacts: pareto_front.csv (the trade-off curve, RunReport::frontCsv
 * format) in --out-dir, and --json FILE emits the shared telemetry
 * schema { "schema": 1, "bench": "pareto_front", config, metrics,
 * samples } from bench_common.h — the same shape the CI perf-smoke job
 * validates and uploads.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "api/runner.h"
#include "m3e/problem.h"
#include "mo/nsga2.h"
#include "mo/vector_fitness.h"
#include "obs/snapshot.h"
#include "opt/magma_ga.h"

using namespace magma;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int group = args.groupSize(30);
    const int64_t budget = args.budget(2000);
    const double bw_gbps = 2.0;  // BW-starved: real throughput/energy
                                 // trade-off (compute-bound collapses it)

    bench::printHeader(
        "Pareto-front search: NSGA-II vs five scalar optima (Mix/S2)");
    std::printf("group %d, BW %g GB/s, budget %lld per run, seed %llu\n\n",
                group, bw_gbps, static_cast<long long>(budget),
                static_cast<unsigned long long>(args.seed));

    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                    bw_gbps, group, args.seed);

    const std::vector<sched::Objective> objectives = {
        sched::Objective::Throughput, sched::Objective::Latency,
        sched::Objective::Energy, sched::Objective::EnergyDelay,
        sched::Objective::PerfPerWatt};
    mo::VectorFitness vf(problem->evaluator(), objectives);

    // --- Five scalar MAGMA runs, one per reporting lens. ------------
    std::vector<mo::ObjectiveVector> optima_vecs;
    std::vector<sched::Mapping> optima;
    double scalar_wall = 0.0;
    for (sched::Objective o : objectives) {
        sched::MappingEvaluator scalar(
            problem->group(), problem->platform(), problem->costModel(),
            sched::BwPolicy::Proportional, nullptr, o);
        opt::MagmaGa ga(args.seed);
        opt::SearchOptions opts;
        opts.sampleBudget = budget;
        double t0 = nowSeconds();
        opt::SearchResult r = ga.search(scalar, opts);
        scalar_wall += nowSeconds() - t0;
        optima.push_back(r.best);
        optima_vecs.push_back(vf.evaluate(r.best));
        std::printf("scalar %-24s best %.6g\n",
                    sched::objectiveName(o).c_str(), r.bestFitness);
    }

    // --- One NSGA-II run over all five objectives at once. ----------
    mo::Nsga2Config cfg;
    cfg.archiveCapacity = 0;  // exact coverage accounting
    mo::Nsga2 nsga(args.seed, cfg);
    opt::SearchOptions mo_opts;
    mo_opts.sampleBudget = budget;
    mo_opts.seeds = optima;  // fronts seed warm starts; searches extend them
    double t0 = nowSeconds();
    mo::MoSearchResult res =
        nsga.searchMo(problem->evaluator(), objectives, mo_opts);
    double mo_wall = nowSeconds() - t0;

    const auto& pts = res.front.points();
    // Exact hypervolume is exponential in arity: the full 5-D measure is
    // only computed for small fronts (else null in the telemetry); the
    // throughput/energy projection is always cheap and tracks the same
    // trade-off the demo plots.
    mo::ObjectiveVector origin(objectives.size(), 0.0);
    double hv = pts.size() <= 64
                    ? res.front.hypervolume(origin)
                    : std::numeric_limits<double>::quiet_NaN();
    mo::ParetoArchive proj(
        {sched::Objective::Throughput, sched::Objective::Energy});
    for (const mo::MoPoint& p : pts) {
        mo::MoPoint q;
        q.m = p.m;
        q.objs = {p.objs[0], p.objs[2]};  // throughput, energy columns
        proj.insert(std::move(q));
    }
    double hv_2d = proj.hypervolume({0.0, 0.0});

    std::vector<mo::ObjectiveVector> front_vecs;
    for (const mo::MoPoint& p : pts)
        front_vecs.push_back(p.objs);
    double eps =
        mo::ParetoArchive::epsilonIndicator(front_vecs, optima_vecs);

    int covered = 0;
    int dominated_front_points = 0;
    for (const mo::ObjectiveVector& ov : optima_vecs) {
        bool cov = false;
        for (const mo::MoPoint& p : pts)
            cov |= mo::weaklyDominates(p.objs, ov);
        covered += cov;
        for (const mo::MoPoint& p : pts)
            dominated_front_points += mo::dominates(ov, p.objs);
    }
    int mutual_violations = 0;
    for (size_t i = 0; i < pts.size(); ++i)
        for (size_t j = 0; j < pts.size(); ++j)
            mutual_violations +=
                i != j && mo::dominates(pts[i].objs, pts[j].objs);

    double mo_evals_per_sec =
        mo_wall > 0.0 ? static_cast<double>(res.samplesUsed) / mo_wall
                      : 0.0;
    double scalar_evals_per_sec =
        scalar_wall > 0.0
            ? static_cast<double>(budget) * objectives.size() / scalar_wall
            : 0.0;

    std::printf("\nNSGA-II front: %zu points (all 5 objectives, %lld "
                "samples, %.2f s)\n",
                pts.size(), static_cast<long long>(res.samplesUsed),
                mo_wall);
    std::printf("hypervolume (origin): %.6g 5-D, %.6g "
                "throughput/energy projection\n",
                hv, hv_2d);
    std::printf("epsilon front->optima: %.6g (<= 0 covers all)\n", eps);
    std::printf("scalar optima covered: %d/5, front points dominated by "
                "an optimum: %d\n",
                covered, dominated_front_points);
    std::printf("vector evals/s %.0f (one sim for 5 objectives) vs "
                "scalar evals/s %.0f across 5 runs\n",
                mo_evals_per_sec, scalar_evals_per_sec);

    // --- Artifacts. -------------------------------------------------
    std::string csv_path = args.outPath("pareto_front.csv");
    {
        api::RunReport rep;
        rep.search.objectives = objectives;
        rep.front = pts;
        std::ofstream out(csv_path);
        out << rep.frontCsv();
    }
    std::printf("front CSV: %s\n", csv_path.c_str());

    std::string json_path = args.jsonOutPath();
    if (!json_path.empty()) {
        obs::JsonWriter json;
        obs::SnapshotWriter::beginBenchConfig(json, "pareto_front",
                                              args.full, args.seed, "Mix",
                                              "S2", bw_gbps, group);
        json.field("budget", budget);
        json.field("objectives",
                   sched::objectiveListName(objectives));
        json.endObject();
        json.beginObject("metrics");
        json.field("front_size", static_cast<int64_t>(pts.size()));
        json.field("hypervolume_origin", hv);  // null when front > 64
        json.field("hypervolume_throughput_energy", hv_2d);
        json.field("epsilon_front_to_optima", eps);
        json.field("optima_covered", static_cast<int64_t>(covered));
        json.field("front_points_dominated",
                   static_cast<int64_t>(dominated_front_points));
        json.field("mutual_domination_violations",
                   static_cast<int64_t>(mutual_violations));
        json.field("mo_evals_per_sec", mo_evals_per_sec);
        json.field("scalar_evals_per_sec", scalar_evals_per_sec);
        json.field("mo_wall_seconds", mo_wall);
        json.field("scalar_wall_seconds", scalar_wall);
        json.endObject();
        json.beginArray("samples");
        for (size_t i = 0; i < pts.size(); ++i) {
            json.beginObject();
            json.field("name", "front_point");
            json.field("index", static_cast<int64_t>(i));
            for (size_t k = 0; k < objectives.size(); ++k)
                json.field(sched::objectiveName(objectives[k]),
                           pts[i].objs[k]);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        if (json.writeFile(json_path))
            std::printf("telemetry JSON: %s\n", json_path.c_str());
    }

    // Self-check: the front must be mutually non-dominated, cover every
    // seeded scalar optimum, and no optimum may dominate a front point.
    if (mutual_violations != 0 || covered != 5 ||
        dominated_front_points != 0) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: violations=%d covered=%d "
                     "dominated=%d\n",
                     mutual_violations, covered, dominated_front_points);
        return 1;
    }
    std::printf("\nself-check OK\n");
    return 0;
}
