/**
 * @file
 * Fig. 9 harness: heterogeneous accelerators — S2 (small, BW=16) and S4
 * (large, BW=256) on Vision and Mix tasks, all ten mappers.
 *
 * Paper's shape: Herald-like stays respectable (it is heterogeneity
 * aware), AI-MT-like collapses by 1-2 orders of magnitude, plain black-box
 * methods trail badly on the large platform, the RLs get close, MAGMA
 * wins. Caption absolute MAGMA numbers: 254/271/254/383 GFLOP/s.
 */

#include <cstdio>

#include "bench/experiment.h"
#include "common/stats.h"

using namespace magma;

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Fig. 9: heterogeneous accelerators (S2 BW=16, "
                       "S4 BW=256), Vision & Mix, 10 mappers");
    std::printf("budget=%lld group=%d (use --full for paper scale)\n",
                static_cast<long long>(args.budget()), args.groupSize());

    common::CsvWriter csv(args.outPath("fig09_heterogeneous.csv"),
                          {"config", "method", "gflops", "norm_vs_magma"});

    struct Config {
        const char* label;
        dnn::TaskType task;
        accel::Setting setting;
        double bw;
    };
    const Config configs[] = {
        {"(a) Vision, S2, BW=16", dnn::TaskType::Vision,
         accel::Setting::S2, 16.0},
        {"(b) Mix, S2, BW=16", dnn::TaskType::Mix, accel::Setting::S2,
         16.0},
        {"(c) Vision, S4, BW=256", dnn::TaskType::Vision,
         accel::Setting::S4, 256.0},
        {"(d) Mix, S4, BW=256", dnn::TaskType::Mix, accel::Setting::S4,
         256.0},
    };

    for (const Config& c : configs) {
        auto problem = m3e::makeProblem(c.task, c.setting, c.bw,
                                        args.groupSize(), args.seed);
        auto runs = bench::runMethods(*problem, m3e::paperMethods(),
                                      args.budget(), args.seed,
                                      args.full ? -1 : 1000);
        bench::printNormalizedByMagma(c.label, runs, &csv, c.label);

        double magma = bench::gflopsOf(runs, "MAGMA");
        std::printf("  -> MAGMA vs Herald-like %.2fx, vs AI-MT-like "
                    "%.1fx, vs RLs %.2fx/%.2fx\n",
                    magma / bench::gflopsOf(runs, "Herald-like"),
                    magma / bench::gflopsOf(runs, "AI-MT-like"),
                    magma / bench::gflopsOf(runs, "RL A2C"),
                    magma / bench::gflopsOf(runs, "RL PPO2"));
    }
    std::printf("\nSeries written to %s\n",
                args.outPath("fig09_heterogeneous.csv").c_str());
    return 0;
}
