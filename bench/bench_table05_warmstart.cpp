/**
 * @file
 * Table V harness: warm-start of MAGMA (Section V-C / VI-G).
 *
 * (a) Optimize group Insts0 (Mix, S4, BW=1), then warm-start on four new
 *     groups Insts1..4, reporting Raw (random init, 0 epochs),
 *     Trf-0-ep (warm seeds, 0 epochs), Trf-1-ep, Trf-30-ep and
 *     Trf-100-ep (full budget), all normalized by Trf-100-ep.
 * (b) The same protocol averaged across S1-S6 for each task at BW=1.
 *
 * Paper's shape: Trf-0-ep lands at ~0.5 of full (vs ~0.03 for Raw); one
 * epoch reaches ~0.7, thirty epochs ~0.99.
 */

#include <cstdio>

#include "bench/experiment.h"
#include "common/stats.h"
#include "opt/magma_ga.h"
#include "opt/warm_start.h"

using namespace magma;

namespace {

struct WarmRow {
    double raw, trf0, trf1, trf30, trf100;
};

/**
 * Mean fitness of a population — the initialization-quality metric for
 * the Raw and Trf-0-ep rows. (Our BW allocator is forgiving enough that
 * the BEST of a random population is already strong; the mean is the
 * honest measure of where the population starts, see EXPERIMENTS.md.)
 */
double
meanOf(const std::vector<sched::Mapping>& pop,
       const sched::MappingEvaluator& eval)
{
    double sum = 0.0;
    for (const auto& s : pop)
        sum += eval.fitness(s);
    return pop.empty() ? 0.0 : sum / pop.size();
}

/** MAGMA run with optional warm seeds and an epoch-denominated budget. */
double
magmaEpochs(m3e::Problem& p, int epochs, int pop,
            const std::vector<sched::Mapping>& seeds, uint64_t seed)
{
    opt::MagmaConfig cfg;
    cfg.population = pop;
    opt::MagmaGa magma_ga(seed, cfg);
    opt::SearchOptions opts;
    opts.sampleBudget = static_cast<int64_t>(pop) * (1 + epochs);
    opts.seeds = seeds;
    return magma_ga.search(p.evaluator(), opts).bestFitness;
}

WarmRow
transferTo(m3e::Problem& target, const opt::WarmStartEngine& ws,
           dnn::TaskType task, int pop, const bench::BenchArgs& args)
{
    common::Rng rng(args.seed + 17);
    auto seeds = ws.makeSeeds(task, pop, target.group(),
                              target.evaluator().numAccels(), rng);
    WarmRow row;
    // Raw: a random population before any optimization (mean fitness).
    std::vector<sched::Mapping> random_pop;
    for (int i = 0; i < pop; ++i)
        random_pop.push_back(sched::Mapping::random(
            target.group().size(), target.evaluator().numAccels(), rng));
    row.raw = meanOf(random_pop, target.evaluator());
    row.trf0 = meanOf(seeds, target.evaluator());
    row.trf1 = magmaEpochs(target, 1, pop, seeds, args.seed);
    row.trf30 = magmaEpochs(target, 30, pop, seeds, args.seed);
    row.trf100 = magmaEpochs(target, 100, pop, seeds, args.seed);
    return row;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Table V: warm-start of MAGMA");
    common::CsvWriter csv(args.outPath("table05_warmstart.csv"),
                          {"section", "instance", "raw", "trf0", "trf1",
                           "trf30", "trf100"});
    const int pop = args.full ? 100 : 40;
    const int group = args.groupSize();

    // ---------------- (a) Mix, S4, BW=1, Insts0..4 ----------------
    std::printf("\n(a) Mix, S4, BW=1 — normalized by Trf-100-ep\n");
    std::printf("  %-10s %8s %8s %8s %8s %8s\n", "instance", "Raw",
                "Trf-0", "Trf-1", "Trf-30", "Trf-100");

    dnn::WorkloadGenerator gen(args.seed);
    auto groups = gen.makeGroups(dnn::TaskType::Mix, group, 5);

    opt::WarmStartEngine ws;
    {
        m3e::Problem insts0(groups[0],
                            accel::makeSetting(accel::Setting::S4, 1.0));
        opt::MagmaConfig cfg;
        cfg.population = pop;
        opt::MagmaGa magma_ga(args.seed, cfg);
        opt::SearchOptions opts;
        opts.sampleBudget = static_cast<int64_t>(pop) * 101;
        opt::SearchResult solved = magma_ga.search(insts0.evaluator(), opts);
        ws.store(dnn::TaskType::Mix, solved.best, groups[0]);
        std::printf("  %-10s %8s %8s %8s %8s %8.2f  (optimized: %.1f "
                    "GFLOP/s)\n",
                    "Insts0", "-", "-", "-", "-", 1.0, solved.bestFitness);
    }
    for (int i = 1; i < 5; ++i) {
        m3e::Problem target(groups[i],
                            accel::makeSetting(accel::Setting::S4, 1.0));
        WarmRow row =
            transferTo(target, ws, dnn::TaskType::Mix, pop, args);
        std::printf("  Insts%-5d %8.2f %8.2f %8.2f %8.2f %8.2f\n", i,
                    row.raw / row.trf100, row.trf0 / row.trf100,
                    row.trf1 / row.trf100, row.trf30 / row.trf100, 1.0);
        csv.row({"a", "Insts" + std::to_string(i),
                 common::CsvWriter::num(row.raw / row.trf100),
                 common::CsvWriter::num(row.trf0 / row.trf100),
                 common::CsvWriter::num(row.trf1 / row.trf100),
                 common::CsvWriter::num(row.trf30 / row.trf100), "1"});
    }

    // ------------- (b) averaged across S1-S6 per task, BW=1 -------------
    std::printf("\n(b) averaged across S1-S6, BW=1 — normalized by "
                "Trf-100-ep\n");
    std::printf("  %-8s %8s %8s %8s %8s %8s\n", "task", "Raw", "Trf-0",
                "Trf-1", "Trf-30", "Trf-100");
    const accel::Setting settings[] = {
        accel::Setting::S1, accel::Setting::S2, accel::Setting::S3,
        accel::Setting::S4, accel::Setting::S5, accel::Setting::S6};
    for (dnn::TaskType task :
         {dnn::TaskType::Mix, dnn::TaskType::Vision, dnn::TaskType::Language,
          dnn::TaskType::Recommendation}) {
        std::vector<double> raw_n, trf0_n, trf1_n, trf30_n;
        for (accel::Setting s : settings) {
            dnn::WorkloadGenerator g2(args.seed + static_cast<int>(s));
            auto two = g2.makeGroups(task, group, 2);
            opt::WarmStartEngine engine;
            {
                m3e::Problem src(two[0], accel::makeSetting(s, 1.0));
                opt::MagmaConfig cfg;
                cfg.population = pop;
                opt::MagmaGa magma_ga(args.seed, cfg);
                opt::SearchOptions opts;
                opts.sampleBudget = static_cast<int64_t>(pop) * 51;
                engine.store(task,
                             magma_ga.search(src.evaluator(), opts).best,
                             two[0]);
            }
            m3e::Problem dst(two[1], accel::makeSetting(s, 1.0));
            WarmRow row = transferTo(dst, engine, task, pop, args);
            raw_n.push_back(row.raw / row.trf100);
            trf0_n.push_back(row.trf0 / row.trf100);
            trf1_n.push_back(row.trf1 / row.trf100);
            trf30_n.push_back(row.trf30 / row.trf100);
        }
        std::printf("  %-8s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                    dnn::taskTypeName(task).c_str(), common::mean(raw_n),
                    common::mean(trf0_n), common::mean(trf1_n),
                    common::mean(trf30_n), 1.0);
        csv.row({"b", dnn::taskTypeName(task),
                 common::CsvWriter::num(common::mean(raw_n)),
                 common::CsvWriter::num(common::mean(trf0_n)),
                 common::CsvWriter::num(common::mean(trf1_n)),
                 common::CsvWriter::num(common::mean(trf30_n)), "1"});
    }
    std::printf("\nSeries written to %s\n",
                args.outPath("table05_warmstart.csv").c_str());
    return 0;
}
