#ifndef MAGMA_BENCH_EXPERIMENT_H_
#define MAGMA_BENCH_EXPERIMENT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "m3e/factory.h"
#include "m3e/problem.h"

namespace magma::bench {

/** One method's outcome on one problem. */
struct MethodRun {
    std::string name;
    double gflops = 0.0;
    int64_t samples = 0;
    opt::SearchResult result;
};

/**
 * Run a line-up of methods on one problem under a shared budget.
 * RL methods optionally get their own (smaller) default budget since one
 * sample costs a policy update; --full equalizes everything at 10K as the
 * paper does.
 */
inline std::vector<MethodRun>
runMethods(m3e::Problem& problem, const std::vector<m3e::Method>& methods,
           int64_t budget, uint64_t seed, int64_t rl_budget = -1,
           const opt::SearchOptions& base_opts = {})
{
    std::vector<MethodRun> runs;
    for (m3e::Method m : methods) {
        opt::SearchOptions opts = base_opts;
        bool is_rl = (m == m3e::Method::RlA2c || m == m3e::Method::RlPpo2);
        opts.sampleBudget = (is_rl && rl_budget > 0) ? rl_budget : budget;
        auto optimizer = m3e::makeOptimizer(m, seed);
        MethodRun run;
        run.name = m3e::methodName(m);
        run.result = optimizer->search(problem.evaluator(), opts);
        run.gflops = run.result.bestFitness;
        run.samples = run.result.samplesUsed;
        runs.push_back(std::move(run));
    }
    return runs;
}

/** Throughput of a named method within a run list (0 if absent). */
inline double
gflopsOf(const std::vector<MethodRun>& runs, const std::string& name)
{
    for (const auto& r : runs)
        if (r.name == name)
            return r.gflops;
    return 0.0;
}

/**
 * Print the Figs. 8/9-style block: throughputs normalized by MAGMA plus
 * MAGMA's absolute GFLOP/s (the figures' captions report exactly that).
 */
inline void
printNormalizedByMagma(const std::string& title,
                       const std::vector<MethodRun>& runs,
                       common::CsvWriter* csv = nullptr,
                       const std::string& csv_tag = "")
{
    double magma = gflopsOf(runs, "MAGMA");
    std::printf("\n%s  (MAGMA absolute: %.1f GFLOP/s)\n", title.c_str(),
                magma);
    std::printf("  %-14s %10s %12s\n", "method", "norm", "GFLOP/s");
    for (const auto& r : runs) {
        std::printf("  %-14s %10.3f %12.2f\n", r.name.c_str(),
                    magma > 0 ? r.gflops / magma : 0.0, r.gflops);
        if (csv)
            csv->row({csv_tag, r.name, common::CsvWriter::num(r.gflops),
                      common::CsvWriter::num(magma > 0 ? r.gflops / magma
                                                       : 0.0)});
    }
}

}  // namespace magma::bench

#endif  // MAGMA_BENCH_EXPERIMENT_H_
