/**
 * @file
 * Dynamic-churn harness: warm incremental re-mapping vs cold re-solves
 * (src/dyn/, the online version of Section V-C / Table V).
 *
 * Replays one heavy-churn trace (bundles arriving, swapping and
 * departing every quarter-second of virtual time) twice through a
 * dyn::EventEngine:
 *   cold — warm remap OFF: every event is an independent full-budget
 *          search (what a mapper without solution transfer must do);
 *   warm — warm remap ON: each event's search is seeded from the
 *          running mapping (survivors keep their genes verbatim) on a
 *          quarter of the cold budget.
 *
 * SELF-CHECK (exits non-zero on failure): the warm replay must reach
 * the cold replay's final steady-state makespan within 1% while every
 * warm-seeded event spends <= 25% of the cold per-event budget — the
 * paper's Table V claim carried into the dynamic setting.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "dyn/engine.h"
#include "dyn/trace.h"
#include "obs/json_writer.h"

using namespace magma;

namespace {

/** The heavy-churn timeline (mirrors examples/specs/dyn_heavy_churn
 * .trace, built programmatically so the bench runs from any CWD). */
dyn::WorkloadTrace
heavyChurnTrace(uint64_t seed, int jobs)
{
    dyn::WorkloadTrace trace;
    trace.base.task = dnn::TaskType::Mix;
    trace.base.setting = accel::Setting::S2;
    trace.base.systemBwGbps = 16.0;
    trace.base.groupSize = jobs;
    auto ev = [&](double t, dyn::EventKind kind, const char* name,
                  dnn::TaskType task, int n, uint64_t s) {
        dyn::WorkloadEvent e;
        e.timeSeconds = t;
        e.kind = kind;
        e.bundle = name;
        e.task = task;
        e.jobs = n;
        e.seed = seed + s;
        trace.events.push_back(e);
    };
    using K = dyn::EventKind;
    using T = dnn::TaskType;
    ev(0.00, K::Arrive, "vision-a", T::Vision, jobs, 21);
    ev(0.25, K::Arrive, "lang-a", T::Language, jobs - 2, 22);
    ev(0.50, K::Arrive, "recom-a", T::Recommendation, jobs - 4, 23);
    ev(0.75, K::Swap, "lang-a", T::Language, jobs - 2, 24);
    ev(1.00, K::Arrive, "vision-b", T::Vision, jobs - 3, 25);
    dyn::WorkloadEvent dep;
    dep.timeSeconds = 1.25;
    dep.kind = K::Depart;
    dep.bundle = "recom-a";
    trace.events.push_back(dep);
    ev(1.50, K::Arrive, "recom-b", T::Recommendation, jobs - 1, 26);
    ev(1.75, K::Swap, "vision-a", T::Vision, jobs, 27);
    dep.timeSeconds = 2.00;
    dep.bundle = "lang-a";
    trace.events.push_back(dep);
    ev(2.25, K::Arrive, "lang-b", T::Language, jobs - 2, 28);
    ev(2.50, K::Swap, "recom-b", T::Recommendation, jobs - 1, 29);
    dep.timeSeconds = 2.75;
    dep.bundle = "vision-b";
    trace.events.push_back(dep);
    trace.validate();
    return trace;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int64_t cold_budget = args.budget(1600);
    const int64_t remap_budget = cold_budget / 4;
    const int jobs = args.full ? 20 : 12;

    bench::printHeader(
        "Dynamic churn: warm incremental re-map vs cold re-solve");

    dyn::WorkloadTrace trace = heavyChurnTrace(args.seed, jobs);

    dyn::DynConfig cold_cfg;
    cold_cfg.search.sampleBudget = cold_budget;
    cold_cfg.search.seed = args.seed;
    cold_cfg.warmRemap = false;
    dyn::DynResult cold = dyn::EventEngine(cold_cfg).replay(trace);

    dyn::DynConfig warm_cfg = cold_cfg;
    warm_cfg.warmRemap = true;
    warm_cfg.remapBudget = remap_budget;
    dyn::DynResult warm = dyn::EventEngine(warm_cfg).replay(trace);

    std::printf("\n%-3s %-7s %-10s %5s | %9s %12s | %9s %12s %6s\n", "ev",
                "kind", "bundle", "jobs", "cold-smp", "cold-mks",
                "warm-smp", "warm-mks", "ratio");
    bool budget_ok = true;
    for (size_t i = 0; i < trace.events.size(); ++i) {
        const dyn::EventRecord& c = cold.records[i];
        const dyn::EventRecord& w = warm.records[i];
        double ratio = c.steadyMakespanSeconds > 0.0
                           ? w.steadyMakespanSeconds /
                                 c.steadyMakespanSeconds
                           : 1.0;
        std::printf("%-3zu %-7s %-10s %5d | %9lld %12.6f | %9lld %12.6f "
                    "%6.3f\n",
                    i, dyn::eventKindName(w.event.kind).c_str(),
                    w.event.bundle.c_str(), w.activeJobs,
                    static_cast<long long>(c.samplesUsed),
                    c.steadyMakespanSeconds * 1e3,
                    static_cast<long long>(w.samplesUsed),
                    w.steadyMakespanSeconds * 1e3, ratio);
        if (w.source == dyn::RemapSource::Previous &&
            w.samplesUsed * 4 > c.samplesUsed)
            budget_ok = false;
    }

    double sample_frac =
        cold.totalSamples > 0
            ? static_cast<double>(warm.totalSamples) / cold.totalSamples
            : 1.0;
    std::printf("\ncold: %lld samples, final makespan %.6f ms\n",
                static_cast<long long>(cold.totalSamples),
                cold.finalMakespanSeconds * 1e3);
    std::printf("warm: %lld samples (%.0f%% of cold), final makespan "
                "%.6f ms, stall total %.3f ms\n",
                static_cast<long long>(warm.totalSamples),
                100.0 * sample_frac, warm.finalMakespanSeconds * 1e3,
                warm.totalStallSeconds * 1e3);

    std::string json_path = args.jsonOutPath();
    if (!json_path.empty()) {
        obs::JsonWriter w;
        w.beginTelemetry("dyn_churn");
        w.beginObject("config");
        w.field("full", args.full);
        w.field("seed", args.seed);
        w.field("events", static_cast<int64_t>(trace.events.size()));
        w.field("cold_budget", cold_budget);
        w.field("remap_budget", remap_budget);
        w.endObject();
        w.beginObject("metrics");
        w.field("cold_samples", cold.totalSamples);
        w.field("warm_samples", warm.totalSamples);
        w.field("cold_final_makespan_seconds", cold.finalMakespanSeconds);
        w.field("warm_final_makespan_seconds", warm.finalMakespanSeconds);
        w.field("warm_stall_seconds", warm.totalStallSeconds);
        w.endObject();
        w.beginArray("samples");
        for (size_t i = 0; i < trace.events.size(); ++i) {
            w.beginObject();
            w.field("event", static_cast<int64_t>(i));
            w.field("cold_samples", cold.records[i].samplesUsed);
            w.field("warm_samples", warm.records[i].samplesUsed);
            w.field("cold_steady_makespan_seconds",
                    cold.records[i].steadyMakespanSeconds);
            w.field("warm_steady_makespan_seconds",
                    warm.records[i].steadyMakespanSeconds);
            w.field("warm_source",
                    dyn::remapSourceName(warm.records[i].source));
            w.endObject();
        }
        w.endArray();
        w.endObject();
        if (w.writeFile(json_path))
            std::printf("json: %s\n", json_path.c_str());
    }

    // ---- self-check: Table V's bargain must hold under churn ----------
    bool quality_ok =
        warm.finalMakespanSeconds <= cold.finalMakespanSeconds * 1.01;
    if (!quality_ok)
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: warm final makespan %.6f ms "
                     "exceeds cold %.6f ms by more than 1%%\n",
                     warm.finalMakespanSeconds * 1e3,
                     cold.finalMakespanSeconds * 1e3);
    if (!budget_ok)
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: a warm-seeded event spent more "
                     "than 25%% of the cold per-event samples\n");
    if (!quality_ok || !budget_ok)
        return 1;
    std::printf("\nself-check OK: warm matches cold within 1%% at <= 25%% "
                "per-event budget\n");
    return 0;
}
