/**
 * @file
 * Fig. 10 harness: how different methods explore the map space on
 * (Mix, S2, BW=16).
 *
 * Reproduces (b) the explored-space scatter via a shared 2-D PCA over all
 * sampled mappings (points written to CSV per method) and (c) the reached
 * GFLOP/s table, with a long random-sampling run standing in for the
 * paper's 2-day "exhaustively sampled" best-effort optimum.
 */

#include <cstdio>

#include "analysis/projection.h"
#include "bench/experiment.h"

using namespace magma;

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader(
        "Fig. 10: explored map space + reached GFLOP/s (Mix, S2, BW=16)");

    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                    16.0, args.groupSize(), args.seed);

    const std::vector<m3e::Method> methods = {
        m3e::Method::Magma, m3e::Method::RlPpo2, m3e::Method::StdGa,
        m3e::Method::Pso, m3e::Method::Cma};

    opt::SearchOptions base;
    base.recordSamples = true;
    auto runs = bench::runMethods(*problem, methods, args.budget(),
                                  args.seed, args.full ? -1 : 600, base);

    // "Exhaustively sampled" stand-in: random with a much larger budget
    // (the paper used ~1M random samples over 2 days).
    {
        auto random = m3e::makeOptimizer(m3e::Method::Random, args.seed);
        opt::SearchOptions opts;
        opts.sampleBudget = args.budget() * (args.full ? 20 : 10);
        opts.recordSamples = true;
        bench::MethodRun run;
        run.name = "Exhaustively Sampled";
        run.result = random->search(problem->evaluator(), opts);
        run.gflops = run.result.bestFitness;
        run.samples = run.result.samplesUsed;
        runs.push_back(std::move(run));
    }

    // (c) reached performance table.
    std::printf("\n(c) reached performance\n  %-22s %12s %10s\n", "method",
                "GFLOP/s", "samples");
    for (const auto& r : runs)
        std::printf("  %-22s %12.2f %10lld\n", r.name.c_str(), r.gflops,
                    static_cast<long long>(r.samples));

    // (a)/(b) PCA projection of the sampled mappings, shared plane.
    std::vector<std::string> names;
    std::vector<std::vector<sched::Mapping>> samples;
    std::vector<std::vector<double>> fitness;
    for (const auto& r : runs) {
        names.push_back(r.name);
        // Subsample to keep the CSV manageable.
        std::vector<sched::Mapping> pts;
        std::vector<double> fit;
        size_t stride =
            std::max<size_t>(1, r.result.sampled.size() / 1000);
        for (size_t i = 0; i < r.result.sampled.size(); i += stride) {
            pts.push_back(r.result.sampled[i]);
            fit.push_back(r.result.sampledFitness[i]);
        }
        samples.push_back(std::move(pts));
        fitness.push_back(std::move(fit));
    }
    analysis::MapSpaceProjector projector;
    auto series = projector.project(names, samples, fitness,
                                    problem->evaluator().numAccels());

    common::CsvWriter csv(args.outPath("fig10_explored_space.csv"),
                          {"method", "pc1", "pc2", "gflops"});
    for (const auto& s : series)
        for (size_t i = 0; i < s.points.size(); ++i)
            csv.row({s.method, common::CsvWriter::num(s.points[i][0]),
                     common::CsvWriter::num(s.points[i][1]),
                     common::CsvWriter::num(s.fitness[i])});

    std::printf("\nPCA explained variance: PC1 %.1f%%, PC2 %.1f%%\n",
                100.0 * projector.explainedVariance()[0],
                100.0 * projector.explainedVariance()[1]);
    std::printf("Projected samples written to %s\n",
                args.outPath("fig10_explored_space.csv").c_str());
    return 0;
}
