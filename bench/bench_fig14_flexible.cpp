/**
 * @file
 * Fig. 14 harness: fixed vs flexible PE arrays (Section VI-F), extending
 * S1 (Small) and S3 (Large) with reshape-per-job arrays.
 *
 * (a)/(b) jobs analysis: avg per-job no-stall latency and required BW for
 * fixed vs flexible on Vision and Mix — flexible is faster per job but
 * hungrier for bandwidth.
 * (c)/(d) MAGMA throughput of fixed normalized by flexible at low/high BW
 * — flexible wins everywhere (paper: fixed lands at 0.73-0.87).
 */

#include <cstdio>

#include "bench/experiment.h"

using namespace magma;

namespace {

struct JobsAnalysis {
    double lat_us = 0.0;
    double bw = 0.0;
};

JobsAnalysis
analyze(m3e::Problem& p)
{
    const auto& table = p.evaluator().table();
    JobsAnalysis out;
    int jobs = table.numJobs(), accels = table.numAccels();
    for (int j = 0; j < jobs; ++j)
        for (int a = 0; a < accels; ++a) {
            out.lat_us += table.lookup(j, a).noStallSeconds * 1e6;
            out.bw += table.lookup(j, a).reqBwGbps;
        }
    out.lat_us /= jobs * accels;
    out.bw /= jobs * accels;
    return out;
}

double
runMagma(m3e::Problem& p, const bench::BenchArgs& args)
{
    auto magma_opt = m3e::makeOptimizer(m3e::Method::Magma, args.seed);
    opt::SearchOptions opts;
    opts.sampleBudget = args.budget();
    return magma_opt->search(p.evaluator(), opts).bestFitness;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Fig. 14: fixed vs flexible PE arrays (S1/S3)");
    common::CsvWriter csv(args.outPath("fig14_flexible.csv"),
                          {"section", "accel", "task", "bw", "fixed",
                           "flexible"});

    struct Case {
        const char* size;
        accel::Setting setting;
        double low_bw, high_bw;
    };
    const Case cases[] = {{"Small", accel::Setting::S1, 1.0, 16.0},
                          {"Large", accel::Setting::S3, 1.0, 256.0}};
    const dnn::TaskType tasks[] = {dnn::TaskType::Vision,
                                   dnn::TaskType::Mix};

    std::printf("\n(a)/(b) jobs analysis (avg per-job)\n");
    std::printf("  %-6s %-7s %14s %14s %12s %12s\n", "accel", "task",
                "lat fixed(us)", "lat flex(us)", "BW fixed", "BW flex");
    for (const Case& c : cases) {
        for (dnn::TaskType t : tasks) {
            dnn::WorkloadGenerator gen(args.seed);
            dnn::JobGroup group = gen.makeGroup(t, args.groupSize());
            m3e::Problem fixed(group,
                               accel::makeSetting(c.setting, c.high_bw));
            m3e::Problem flex(
                group, accel::makeFlexibleSetting(c.setting, c.high_bw));
            JobsAnalysis af = analyze(fixed), ax = analyze(flex);
            std::printf("  %-6s %-7s %14.2f %14.2f %12.2f %12.2f\n",
                        c.size, dnn::taskTypeName(t).c_str(), af.lat_us,
                        ax.lat_us, af.bw, ax.bw);
            csv.row({"jobs_lat_us", c.size, dnn::taskTypeName(t), "-",
                     common::CsvWriter::num(af.lat_us),
                     common::CsvWriter::num(ax.lat_us)});
            csv.row({"jobs_bw", c.size, dnn::taskTypeName(t), "-",
                     common::CsvWriter::num(af.bw),
                     common::CsvWriter::num(ax.bw)});
        }
    }

    std::printf("\n(c)/(d) MAGMA throughput, fixed normalized by "
                "flexible\n");
    std::printf("  %-6s %-7s %8s %10s %10s %8s\n", "accel", "task", "BW",
                "fixed", "flexible", "norm");
    for (const Case& c : cases) {
        for (dnn::TaskType t : tasks) {
            for (double bw : {c.low_bw, c.high_bw}) {
                dnn::WorkloadGenerator gen(args.seed);
                dnn::JobGroup group = gen.makeGroup(t, args.groupSize());
                m3e::Problem fixed(group,
                                   accel::makeSetting(c.setting, bw));
                m3e::Problem flex(
                    group, accel::makeFlexibleSetting(c.setting, bw));
                double ff = runMagma(fixed, args);
                double fx = runMagma(flex, args);
                std::printf("  %-6s %-7s %8g %10.1f %10.1f %8.2f\n",
                            c.size, dnn::taskTypeName(t).c_str(), bw, ff,
                            fx, ff / fx);
                csv.row({"magma_gflops", c.size, dnn::taskTypeName(t),
                         common::CsvWriter::num(bw),
                         common::CsvWriter::num(ff),
                         common::CsvWriter::num(fx)});
            }
        }
    }
    std::printf("\nSeries written to %s\n",
                args.outPath("fig14_flexible.csv").c_str());
    return 0;
}
