/**
 * @file
 * Fig. 8 harness: the small homogeneous accelerator (S1, BW=16 GB/s)
 * across the four tasks (Vision / Lang / Recom / Mix) and all ten mappers.
 *
 * Paper's shape: every method lands in the same ballpark on homogeneous
 * hardware; MAGMA is best, ~1.4x over the manual mappers (geomean) and
 * ~1.6x over the other optimizers. The caption's absolute MAGMA numbers
 * are 249/397/194/329 GFLOP/s for (a)-(d).
 */

#include <cstdio>

#include "bench/experiment.h"
#include "common/stats.h"

using namespace magma;

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Fig. 8: S1 homogeneous small accelerator, BW=16, "
                       "4 tasks x 10 mappers");
    std::printf("budget=%lld group=%d (use --full for paper scale)\n",
                static_cast<long long>(args.budget()), args.groupSize());

    common::CsvWriter csv(args.outPath("fig08_homogeneous.csv"),
                          {"task", "method", "gflops", "norm_vs_magma"});

    std::vector<double> vs_manual, vs_opt;
    const dnn::TaskType tasks[] = {
        dnn::TaskType::Vision, dnn::TaskType::Language,
        dnn::TaskType::Recommendation, dnn::TaskType::Mix};
    for (dnn::TaskType task : tasks) {
        auto problem = m3e::makeProblem(task, accel::Setting::S1, 16.0,
                                        args.groupSize(), args.seed);
        auto runs = bench::runMethods(*problem, m3e::paperMethods(),
                                      args.budget(), args.seed,
                                      args.full ? -1 : 1000);
        bench::printNormalizedByMagma(
            "Task " + dnn::taskTypeName(task), runs, &csv,
            dnn::taskTypeName(task));

        double magma = bench::gflopsOf(runs, "MAGMA");
        for (const char* b : {"Herald-like", "AI-MT-like"})
            vs_manual.push_back(magma / bench::gflopsOf(runs, b));
        for (const char* o : {"PSO", "CMA", "DE", "TBPSA", "stdGA"})
            vs_opt.push_back(magma / bench::gflopsOf(runs, o));
    }

    std::printf("\nGeomean MAGMA advantage: %.2fx vs manual mappers "
                "(paper: 1.4x/1.41x), %.2fx vs black-box optimizers "
                "(paper: 1.6x)\n",
                common::geomean(vs_manual), common::geomean(vs_opt));
    std::printf("Series written to %s\n",
                args.outPath("fig08_homogeneous.csv").c_str());
    return 0;
}
