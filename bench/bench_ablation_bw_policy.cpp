/**
 * @file
 * Design-choice ablation (Section IV-D1): the BW Allocator's proportional
 * sharing vs the "often applied heuristic" of splitting system BW evenly
 * across sub-accelerators. Runs MAGMA under both policies across a BW
 * sweep on the heterogeneous platforms and reports the throughput ratio.
 *
 * Expected shape: even splitting strands bandwidth at cores running
 * compute-bound jobs while memory-bound jobs starve; the gap is largest
 * in the mid-BW contention regime and vanishes when BW is abundant.
 */

#include <cstdio>

#include "bench/experiment.h"

using namespace magma;

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Ablation: proportional vs even BW allocation "
                       "(Mix task, MAGMA mapper)");
    common::CsvWriter csv(args.outPath("ablation_bw_policy.csv"),
                          {"setting", "bw_gbps", "proportional_gflops",
                           "even_gflops", "ratio"});

    struct Case {
        accel::Setting setting;
        std::vector<double> bws;
    };
    const Case cases[] = {
        {accel::Setting::S2, {1.0, 2.0, 4.0, 8.0, 16.0}},
        {accel::Setting::S4, {1.0, 4.0, 16.0, 64.0, 256.0}},
    };

    for (const Case& c : cases) {
        std::printf("\n%s\n  %8s %14s %14s %8s\n",
                    accel::settingName(c.setting).c_str(), "BW",
                    "proportional", "even-split", "ratio");
        for (double bw : c.bws) {
            dnn::WorkloadGenerator gen(args.seed);
            dnn::JobGroup group =
                gen.makeGroup(dnn::TaskType::Mix, args.groupSize());
            m3e::Problem prop(group, accel::makeSetting(c.setting, bw),
                              sched::BwPolicy::Proportional);
            m3e::Problem even(group, accel::makeSetting(c.setting, bw),
                              sched::BwPolicy::EvenSplit);
            opt::SearchOptions opts;
            opts.sampleBudget = args.budget();
            double fp = m3e::makeOptimizer(m3e::Method::Magma, args.seed)
                            ->search(prop.evaluator(), opts).bestFitness;
            double fe = m3e::makeOptimizer(m3e::Method::Magma, args.seed)
                            ->search(even.evaluator(), opts).bestFitness;
            std::printf("  %8g %14.1f %14.1f %8.3f\n", bw, fp, fe,
                        fp / fe);
            csv.row({accel::settingName(c.setting),
                     common::CsvWriter::num(bw),
                     common::CsvWriter::num(fp), common::CsvWriter::num(fe),
                     common::CsvWriter::num(fp / fe)});
        }
    }
    std::printf("\nSeries written to %s\n",
                args.outPath("ablation_bw_policy.csv").c_str());
    return 0;
}
