/**
 * @file
 * Micro-benchmarks for the framework's hot paths, backing the paper's
 * search-time claim (Section VI-B: ~0.25 s per MAGMA epoch, 25 s for a
 * full 10K-sample search on a desktop CPU) and the flat-evaluator
 * speedup claim:
 *   - one cost-model query (cold and through the exec::CostCache),
 *   - Job Analysis Table construction (group 100 on S4),
 *   - candidate-evaluation throughput, reference vs flat kernel, at
 *     threads = 1/2/4, so the exec-engine and FlatEvaluator speedups
 *     are measured rather than asserted,
 *   - a flat-vs-reference bitwise parity self-check over randomized
 *     candidates and all five objectives — the bench exits non-zero on
 *     any mismatch, which is what the CI perf-smoke step gates on.
 *
 * Self-timed (no google-benchmark dependency), so it always builds and
 * can run as a CI gate. Flags, on top of the shared bench_common.h set
 * (--full, --seed, --out-dir, --json FILE):
 *   --check-speedup X   exit non-zero unless flat >= X * reference
 *                       single-thread throughput (CI floor: 1.2)
 *
 * --json emits the shared telemetry schema
 *   { "schema": 1, "bench": "micro_speed", "config": {...},
 *     "metrics": {...},
 *     "samples": [ {name, mode, threads, evals_per_sec}, ... ] }
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "exec/cost_cache.h"
#include "exec/eval_engine.h"
#include "m3e/problem.h"
#include "obs/snapshot.h"
#include "opt/magma_ga.h"
#include "sched/flat_eval.h"
#include "sched/job_analyzer.h"

using namespace magma;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Run `fn` repeatedly for ~`budget_s` and return calls/second. */
template <typename Fn>
double
rate(Fn&& fn, double budget_s, int calls_per_rep = 1)
{
    fn();  // warm-up
    int64_t reps = 0;
    double t0 = nowSeconds(), t1;
    do {
        fn();
        ++reps;
        t1 = nowSeconds();
    } while (t1 - t0 < budget_s);
    return static_cast<double>(reps) * calls_per_rep / (t1 - t0);
}

struct Workload {
    dnn::TaskType task = dnn::TaskType::Mix;
    accel::Setting setting = accel::Setting::S4;
    double bwGbps = 64.0;
    int group = 100;
};

/**
 * Bitwise parity self-check: flat vs reference fitness and full
 * ScheduleResult on `n` random candidates per objective, plus one
 * 4-thread EvalEngine batch per objective against the serial reference
 * loop. Returns the number of mismatching candidates (0 = pass).
 */
int64_t
parityCheck(const Workload& w, uint64_t seed, int n, int64_t* checked)
{
    int64_t bad = 0;
    *checked = 0;
    for (sched::Objective obj :
         {sched::Objective::Throughput, sched::Objective::Latency,
          sched::Objective::Energy, sched::Objective::EnergyDelay,
          sched::Objective::PerfPerWatt}) {
        auto p = m3e::makeProblem(w.task, w.setting, w.bwGbps, w.group,
                                  seed, obj);
        const sched::MappingEvaluator& ev = p->evaluator();
        sched::FlatEvaluator flat(ev);
        sched::EvalScratch scratch;
        common::Rng rng(seed * 977 + static_cast<int>(obj));
        std::vector<sched::Mapping> batch;
        batch.reserve(n);
        for (int i = 0; i < n; ++i)
            batch.push_back(
                sched::Mapping::random(w.group, ev.numAccels(), rng));

        for (const sched::Mapping& m : batch) {
            ++*checked;
            if (ev.fitness(m) != flat.fitness(m, scratch)) {
                ++bad;
                continue;
            }
            sched::ScheduleResult a = ev.evaluate(m, true);
            sched::ScheduleResult b = flat.evaluate(m, scratch, true);
            bool events_equal = a.events.size() == b.events.size();
            for (size_t e = 0; events_equal && e < a.events.size(); ++e)
                events_equal = a.events[e].start == b.events[e].start &&
                               a.events[e].end == b.events[e].end &&
                               a.events[e].job == b.events[e].job &&
                               a.events[e].accel == b.events[e].accel &&
                               a.events[e].allocBw == b.events[e].allocBw;
            if (a.makespanSeconds != b.makespanSeconds ||
                a.finishTime != b.finishTime || !events_equal)
                ++bad;
        }

        // Batch path: 4 flat lanes vs the serial reference loop.
        exec::EvalEngine engine(ev, 4, sched::EvalMode::Flat);
        std::vector<double> fits = engine.evaluateBatch(batch);
        for (size_t i = 0; i < batch.size(); ++i) {
            ++*checked;
            if (fits[i] != ev.fitness(batch[i]))
                ++bad;
        }
    }
    return bad;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    double check_speedup = 0.0;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--check-speedup") == 0 && i + 1 < argc)
            check_speedup = std::strtod(argv[++i], nullptr);

    Workload w;
    const double budget_s = args.full ? 1.0 : 0.35;
    const int parity_n = args.full ? 400 : 120;
    const int batch_size = 256;
    const std::vector<int> thread_counts = {1, 2, 4};

    bench::printHeader(
        "micro_speed: hot-path timings + flat-evaluator speedup (" +
        dnn::taskTypeName(w.task) + " on " + accel::settingName(w.setting) +
        ", group " + std::to_string(w.group) + ")");

    // ---------------------------------------------------------- parity ---
    int64_t checked = 0;
    int64_t bad = parityCheck(w, args.seed, parity_n, &checked);
    std::printf("parity self-check: %lld candidates x 5 objectives -> %s\n",
                static_cast<long long>(checked),
                bad == 0 ? "OK (bitwise identical)" : "FAILED");
    if (bad != 0)
        std::fprintf(stderr, "flat/reference parity FAILED on %lld of %lld "
                             "checks\n",
                     static_cast<long long>(bad),
                     static_cast<long long>(checked));

    // ------------------------------------------------ micro hot paths ---
    cost::CostModel model;
    cost::SubAccelConfig cfg =
        accel::makeSubAccel(cost::DataflowStyle::HB, 128, 580);
    dnn::LayerShape layer = dnn::conv(256, 128, 28, 28, 3, 3);
    volatile double sink = 0.0;

    double q_per_s = rate(
        [&] { sink = model.analyze(layer, 4, cfg).noStallCycles; },
        budget_s);

    exec::CostCache cache;
    cache.analyze(model, layer, 4, cfg);
    double hit_per_s = rate(
        [&] { sink = cache.analyze(model, layer, 4, cfg).noStallCycles; },
        budget_s);

    dnn::WorkloadGenerator gen(args.seed);
    dnn::JobGroup group = gen.makeGroup(w.task, w.group);
    accel::Platform platform = accel::makeSetting(w.setting, w.bwGbps);
    sched::JobAnalyzer analyzer(model);
    double table_per_s =
        rate([&] { sink = analyzer.analyze(group, platform).numJobs(); },
             budget_s);

    std::printf("\ncost-model query     %10.0f /s  (%.2f us)\n", q_per_s,
                1e6 / q_per_s);
    std::printf("cost-cache hit       %10.0f /s  (%.3f us)\n", hit_per_s,
                1e6 / hit_per_s);
    std::printf("job-table build      %10.2f /s  (%.1f ms)\n", table_per_s,
                1e3 / table_per_s);
    (void)sink;

    // ------------------------------- candidate-evaluation throughput ---
    auto problem = m3e::makeProblem(w.task, w.setting, w.bwGbps, w.group,
                                    args.seed);
    const sched::MappingEvaluator& ev = problem->evaluator();
    common::Rng rng(17);
    std::vector<sched::Mapping> batch;
    batch.reserve(batch_size);
    for (int i = 0; i < batch_size; ++i)
        batch.push_back(
            sched::Mapping::random(w.group, ev.numAccels(), rng));

    obs::JsonWriter json;
    obs::SnapshotWriter::beginBenchConfig(json, "micro_speed", args.full,
                                          args.seed,
                                          dnn::taskTypeName(w.task),
                                          accel::settingName(w.setting),
                                          w.bwGbps, w.group);
    json.field("batch_size", batch_size);
    json.field("parity_candidates", static_cast<int64_t>(parity_n));
    json.endObject();

    std::printf("\n%-10s %8s %16s %10s\n", "kernel", "threads",
                "candidates/s", "speedup");
    double ref_t1 = 0.0, flat_t1 = 0.0;
    struct Sample {
        std::string mode;
        int threads;
        double evals_per_sec;
    };
    std::vector<Sample> samples;
    for (sched::EvalMode mode :
         {sched::EvalMode::Reference, sched::EvalMode::Flat}) {
        for (int threads : thread_counts) {
            exec::EvalEngine engine(ev, threads, mode);
            double eps = rate([&] { sink = engine.evaluateBatch(batch)[0]; },
                              budget_s, batch_size);
            samples.push_back({sched::evalModeName(mode), threads, eps});
            if (threads == 1) {
                (mode == sched::EvalMode::Flat ? flat_t1 : ref_t1) = eps;
            }
            double vs_ref_t1 = ref_t1 > 0.0 ? eps / ref_t1 : 0.0;
            std::printf("%-10s %8d %16.0f %9.2fx\n",
                        sched::evalModeName(mode).c_str(), threads, eps,
                        vs_ref_t1);
        }
    }
    double speedup_t1 = ref_t1 > 0.0 ? flat_t1 / ref_t1 : 0.0;
    std::printf("\nflat vs reference, single thread: %.2fx\n", speedup_t1);

    json.beginObject("metrics");
    json.field("parity_ok", bad == 0);
    json.field("parity_checked", checked);
    json.field("cost_model_query_per_sec", q_per_s);
    json.field("cost_cache_hit_per_sec", hit_per_s);
    json.field("job_table_build_per_sec", table_per_s);
    json.field("ref_evals_per_sec_t1", ref_t1);
    json.field("flat_evals_per_sec_t1", flat_t1);
    json.field("speedup_t1", speedup_t1);
    json.endObject();
    json.beginArray("samples");
    for (const Sample& s : samples) {
        json.beginObject();
        json.field("name", "batch_eval");
        json.field("mode", s.mode);
        json.field("threads", s.threads);
        json.field("evals_per_sec", s.evals_per_sec);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    std::string json_path = args.jsonOutPath();
    if (!json_path.empty()) {
        if (!json.writeFile(json_path))
            return 1;
        std::printf("JSON telemetry written to %s\n", json_path.c_str());
    }

    if (bad != 0)
        return 1;
    if (check_speedup > 0.0 && speedup_t1 < check_speedup) {
        std::fprintf(stderr,
                     "perf floor violated: flat/reference = %.2fx < "
                     "required %.2fx\n",
                     speedup_t1, check_speedup);
        return 1;
    }
    return 0;
}
