/**
 * @file
 * Micro-benchmarks (google-benchmark) for the framework's hot paths,
 * backing the paper's search-time claim (Section VI-B: ~0.25 s per MAGMA
 * epoch, 25 s for a full 10K-sample search on a desktop CPU):
 *   - one cost-model query,
 *   - Job Analysis Table construction (group 100 on S4),
 *   - one fitness evaluation (decode + BW allocator),
 *   - one MAGMA epoch (population 100).
 */

#include <benchmark/benchmark.h>

#include "m3e/problem.h"
#include "opt/magma_ga.h"
#include "sched/job_analyzer.h"

using namespace magma;

namespace {

const m3e::Problem&
sharedProblem()
{
    static auto p = m3e::makeProblem(dnn::TaskType::Mix,
                                     accel::Setting::S4, 64.0, 100, 5);
    return *p;
}

void
BM_CostModelQuery(benchmark::State& state)
{
    cost::CostModel model;
    cost::SubAccelConfig cfg =
        accel::makeSubAccel(cost::DataflowStyle::HB, 128, 580);
    dnn::LayerShape l = dnn::conv(256, 128, 28, 28, 3, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.analyze(l, 4, cfg));
    }
}
BENCHMARK(BM_CostModelQuery);

void
BM_CostModelQueryFlexible(benchmark::State& state)
{
    cost::CostModel model;
    cost::SubAccelConfig cfg =
        accel::makeSubAccel(cost::DataflowStyle::HB, 128, 580);
    cfg.flexibleShape = true;
    dnn::LayerShape l = dnn::conv(256, 128, 28, 28, 3, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.analyze(l, 4, cfg));
    }
}
BENCHMARK(BM_CostModelQueryFlexible);

void
BM_JobAnalysisTableBuild(benchmark::State& state)
{
    dnn::WorkloadGenerator gen(7);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Mix, 100);
    accel::Platform platform = accel::makeSetting(accel::Setting::S4, 64.0);
    cost::CostModel model;
    sched::JobAnalyzer analyzer(model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyzer.analyze(group, platform));
    }
}
BENCHMARK(BM_JobAnalysisTableBuild);

void
BM_FitnessEvaluation(benchmark::State& state)
{
    const auto& p = sharedProblem();
    common::Rng rng(11);
    sched::Mapping m =
        sched::Mapping::random(100, p.evaluator().numAccels(), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.evaluator().fitness(m));
    }
}
BENCHMARK(BM_FitnessEvaluation);

void
BM_MagmaEpoch(benchmark::State& state)
{
    const auto& p = sharedProblem();
    // One epoch = population-size samples (100). Search-time claim target:
    // ~0.25s per epoch on the paper's desktop.
    for (auto _ : state) {
        opt::MagmaGa magma_ga(3);
        opt::SearchOptions opts;
        opts.sampleBudget = 200;  // init population + one generation
        benchmark::DoNotOptimize(
            magma_ga.search(p.evaluator(), opts).bestFitness);
    }
}
BENCHMARK(BM_MagmaEpoch);

void
BM_BwAllocatorRun(benchmark::State& state)
{
    const auto& p = sharedProblem();
    common::Rng rng(13);
    sched::Mapping m =
        sched::Mapping::random(100, p.evaluator().numAccels(), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.evaluator().evaluate(m));
    }
}
BENCHMARK(BM_BwAllocatorRun);

}  // namespace

BENCHMARK_MAIN();
