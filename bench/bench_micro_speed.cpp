/**
 * @file
 * Micro-benchmarks (google-benchmark) for the framework's hot paths,
 * backing the paper's search-time claim (Section VI-B: ~0.25 s per MAGMA
 * epoch, 25 s for a full 10K-sample search on a desktop CPU):
 *   - one cost-model query (cold and through the exec::CostCache),
 *   - Job Analysis Table construction (group 100 on S4),
 *   - one fitness evaluation (decode + BW allocator),
 *   - one MAGMA epoch (population 100),
 *   - batch evaluation and full MAGMA search at 1/2/4 threads, so the
 *     exec-engine speedup is measured rather than asserted.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "exec/cost_cache.h"
#include "exec/eval_engine.h"
#include "m3e/problem.h"
#include "opt/magma_ga.h"
#include "sched/job_analyzer.h"

using namespace magma;

namespace {

const m3e::Problem&
sharedProblem()
{
    static auto p = m3e::makeProblem(dnn::TaskType::Mix,
                                     accel::Setting::S4, 64.0, 100, 5);
    return *p;
}

void
BM_CostModelQuery(benchmark::State& state)
{
    cost::CostModel model;
    cost::SubAccelConfig cfg =
        accel::makeSubAccel(cost::DataflowStyle::HB, 128, 580);
    dnn::LayerShape l = dnn::conv(256, 128, 28, 28, 3, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.analyze(l, 4, cfg));
    }
}
BENCHMARK(BM_CostModelQuery);

void
BM_CostModelQueryFlexible(benchmark::State& state)
{
    cost::CostModel model;
    cost::SubAccelConfig cfg =
        accel::makeSubAccel(cost::DataflowStyle::HB, 128, 580);
    cfg.flexibleShape = true;
    dnn::LayerShape l = dnn::conv(256, 128, 28, 28, 3, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.analyze(l, 4, cfg));
    }
}
BENCHMARK(BM_CostModelQueryFlexible);

void
BM_JobAnalysisTableBuild(benchmark::State& state)
{
    dnn::WorkloadGenerator gen(7);
    dnn::JobGroup group = gen.makeGroup(dnn::TaskType::Mix, 100);
    accel::Platform platform = accel::makeSetting(accel::Setting::S4, 64.0);
    cost::CostModel model;
    sched::JobAnalyzer analyzer(model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyzer.analyze(group, platform));
    }
}
BENCHMARK(BM_JobAnalysisTableBuild);

void
BM_FitnessEvaluation(benchmark::State& state)
{
    const auto& p = sharedProblem();
    common::Rng rng(11);
    sched::Mapping m =
        sched::Mapping::random(100, p.evaluator().numAccels(), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.evaluator().fitness(m));
    }
}
BENCHMARK(BM_FitnessEvaluation);

void
BM_MagmaEpoch(benchmark::State& state)
{
    const auto& p = sharedProblem();
    // One epoch = population-size samples (100). Search-time claim target:
    // ~0.25s per epoch on the paper's desktop.
    for (auto _ : state) {
        opt::MagmaGa magma_ga(3);
        opt::SearchOptions opts;
        opts.sampleBudget = 200;  // init population + one generation
        benchmark::DoNotOptimize(
            magma_ga.search(p.evaluator(), opts).bestFitness);
    }
}
BENCHMARK(BM_MagmaEpoch);

void
BM_BwAllocatorRun(benchmark::State& state)
{
    const auto& p = sharedProblem();
    common::Rng rng(13);
    sched::Mapping m =
        sched::Mapping::random(100, p.evaluator().numAccels(), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.evaluator().evaluate(m));
    }
}
BENCHMARK(BM_BwAllocatorRun);

void
BM_CostCacheHit(benchmark::State& state)
{
    cost::CostModel model;
    cost::SubAccelConfig cfg =
        accel::makeSubAccel(cost::DataflowStyle::HB, 128, 580);
    dnn::LayerShape l = dnn::conv(256, 128, 28, 28, 3, 3);
    exec::CostCache cache;
    cache.analyze(model, l, 4, cfg);  // warm
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.analyze(model, l, 4, cfg));
    }
}
BENCHMARK(BM_CostCacheHit);

/**
 * Throughput of one generation-sized batch (256 candidates of the Fig. 8
 * workload: Mix task on S4, group 100) at 1, 2 and 4 evaluation lanes.
 * items_per_second is candidates/s — the threads=N vs threads=1 ratio is
 * the exec-engine speedup.
 */
void
BM_BatchEvaluation(benchmark::State& state)
{
    const auto& p = sharedProblem();
    common::Rng rng(17);
    std::vector<sched::Mapping> batch;
    batch.reserve(256);
    for (int i = 0; i < 256; ++i)
        batch.push_back(
            sched::Mapping::random(100, p.evaluator().numAccels(), rng));
    exec::EvalEngine engine(p.evaluator(),
                            static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.evaluateBatch(batch));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_BatchEvaluation)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/** Full MAGMA search (2K samples) at 1, 2 and 4 evaluation lanes. */
void
BM_MagmaSearchThreads(benchmark::State& state)
{
    const auto& p = sharedProblem();
    for (auto _ : state) {
        opt::MagmaGa magma_ga(3);
        opt::SearchOptions opts;
        opts.sampleBudget = 2000;
        opts.threads = static_cast<int>(state.range(0));
        benchmark::DoNotOptimize(
            magma_ga.search(p.evaluator(), opts).bestFitness);
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MagmaSearchThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
