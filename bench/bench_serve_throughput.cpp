/**
 * @file
 * Serving-layer throughput harness: requests/sec of the online mapping
 * service at 1/2/4 worker lanes, the search cost the warm-start store
 * amortizes away versus a cold-only service (the Table V effect,
 * measured end-to-end through src/serve/), and the request-latency
 * distribution — queue-wait and service-time p50/p99 read back from the
 * serve layer's obs:: histograms.
 *
 * Protocol: one fixed multi-tenant trace (3 tenants, independently drawn
 * Mix groups) is replayed per configuration. "cold" disables the store;
 * "warm" lets every fingerprint hit run on a quarter of the cold budget.
 * Each replay records into its own obs::MetricsRegistry, so the latency
 * quantiles of one configuration never bleed into the next.
 */

#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "obs/snapshot.h"
#include "serve/service.h"

using namespace magma;

namespace {

struct TraceResult {
    double wallSeconds = 0.0;
    int64_t samplesSpent = 0;
    int64_t samplesSaved = 0;
    int64_t warmServed = 0;
    /** Queue-wait / service-time quantiles (seconds), from the serve
     * histograms of this replay's private registry. */
    double waitP50 = 0.0;
    double waitP99 = 0.0;
    double serviceP50 = 0.0;
    double serviceP99 = 0.0;
};

TraceResult
replayTrace(int workers, bool warm, int requests, int group,
            int64_t budget, uint64_t seed)
{
    obs::MetricsRegistry registry;  // per-replay isolation
    serve::ServiceConfig cfg;
    cfg.workers = workers;
    cfg.registry = &registry;
    serve::MappingService service(cfg);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<serve::MapResponse>> futures;
    futures.reserve(requests);
    for (int i = 0; i < requests; ++i) {
        serve::MapRequest req;
        req.tenant = "tenant-" + std::to_string(i % 3);
        req.problem.task = dnn::TaskType::Mix;
        req.problem.groupSize = group;
        req.problem.workloadSeed = seed + i;
        req.problem.setting = accel::Setting::S2;
        req.problem.systemBwGbps = 4.0;
        req.search.sampleBudget = budget;
        req.search.seed = seed + i;
        req.search.warmStart = warm;
        futures.push_back(service.submit(std::move(req)));
    }
    for (auto& f : futures)
        f.get();

    TraceResult r;
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    serve::ServiceStats s = service.stats();
    r.samplesSpent = s.samplesSpent;
    r.samplesSaved = s.samplesSaved;
    r.warmServed = s.warmServed;
    if (const obs::Histogram* h =
            registry.findHistogram("serve.wait_seconds")) {
        r.waitP50 = h->quantile(0.50);
        r.waitP99 = h->quantile(0.99);
    }
    if (const obs::Histogram* h =
            registry.findHistogram("serve.service_seconds")) {
        r.serviceP50 = h->quantile(0.50);
        r.serviceP99 = h->quantile(0.99);
    }
    service.stop();
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Serving throughput: requests/sec, samples saved "
                       "and latency quantiles, 1/2/4 worker lanes");
    common::CsvWriter csv(args.outPath("serve_throughput.csv"),
                          {"workers", "mode", "wall_s", "req_per_s",
                           "samples_spent", "samples_saved", "warm_served",
                           "wait_p50_ms", "wait_p99_ms", "serve_p50_ms",
                           "serve_p99_ms"});

    const int requests = args.full ? 24 : 12;
    const int group = args.full ? 40 : 16;
    const int64_t budget = args.budget(800);

    std::printf("\n%d requests, group %d, cold budget %lld\n\n", requests,
                group, static_cast<long long>(budget));
    std::printf("%8s %6s %9s %9s %14s %14s %6s %9s %9s %9s %9s\n",
                "workers", "mode", "wall-s", "req/s", "samples-spent",
                "samples-saved", "warm", "wait-p50", "wait-p99",
                "serve-p50", "serve-p99");

    bench::JsonWriter json;
    obs::SnapshotWriter::beginBenchConfig(json, "serve_throughput",
                                          args.full, args.seed, "Mix",
                                          "S2", 4.0, group);
    json.field("requests", requests);
    json.field("budget", budget);
    json.endObject();
    json.beginObject("metrics");
    json.endObject();
    json.beginArray("samples");

    double cold_1lane = 0.0;
    for (int workers : {1, 2, 4}) {
        for (bool warm : {false, true}) {
            TraceResult r = replayTrace(workers, warm, requests, group,
                                        budget, args.seed);
            double rps = requests / std::max(r.wallSeconds, 1e-9);
            if (workers == 1 && !warm)
                cold_1lane = r.wallSeconds;
            std::printf("%8d %6s %9.2f %9.1f %14lld %14lld %6lld %9.1f "
                        "%9.1f %9.1f %9.1f",
                        workers, warm ? "warm" : "cold", r.wallSeconds,
                        rps, static_cast<long long>(r.samplesSpent),
                        static_cast<long long>(r.samplesSaved),
                        static_cast<long long>(r.warmServed),
                        r.waitP50 * 1e3, r.waitP99 * 1e3,
                        r.serviceP50 * 1e3, r.serviceP99 * 1e3);
            if (cold_1lane > 0.0)
                std::printf("   (%.2fx vs cold 1-lane)",
                            cold_1lane / std::max(r.wallSeconds, 1e-9));
            std::printf("\n");
            csv.row({std::to_string(workers), warm ? "warm" : "cold",
                     common::CsvWriter::num(r.wallSeconds),
                     common::CsvWriter::num(rps),
                     std::to_string(r.samplesSpent),
                     std::to_string(r.samplesSaved),
                     std::to_string(r.warmServed),
                     common::CsvWriter::num(r.waitP50 * 1e3),
                     common::CsvWriter::num(r.waitP99 * 1e3),
                     common::CsvWriter::num(r.serviceP50 * 1e3),
                     common::CsvWriter::num(r.serviceP99 * 1e3)});
            json.beginObject();
            json.field("workers", workers);
            json.field("mode", warm ? "warm" : "cold");
            json.field("wall_s", r.wallSeconds);
            json.field("req_per_s", rps);
            json.field("samples_spent", r.samplesSpent);
            json.field("samples_saved", r.samplesSaved);
            json.field("warm_served", r.warmServed);
            json.field("wait_p50_ms", r.waitP50 * 1e3);
            json.field("wait_p99_ms", r.waitP99 * 1e3);
            json.field("serve_p50_ms", r.serviceP50 * 1e3);
            json.field("serve_p99_ms", r.serviceP99 * 1e3);
            json.endObject();
        }
    }
    json.endArray();
    json.endObject();
    std::printf("\nSeries written to %s\n",
                args.outPath("serve_throughput.csv").c_str());
    if (!args.jsonOutPath().empty() &&
        json.writeFile(args.jsonOutPath()))
        std::printf("Telemetry written to %s\n",
                    args.jsonOutPath().c_str());
    return 0;
}
