/**
 * @file
 * Serving-layer throughput harness: requests/sec of the online mapping
 * service at 1/2/4 worker lanes, and the search cost the warm-start
 * store amortizes away versus a cold-only service (the Table V effect,
 * measured end-to-end through src/serve/).
 *
 * Protocol: one fixed multi-tenant trace (3 tenants, independently drawn
 * Mix groups) is replayed per configuration. "cold" disables the store;
 * "warm" lets every fingerprint hit run on a quarter of the cold budget.
 */

#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "serve/service.h"

using namespace magma;

namespace {

struct TraceResult {
    double wallSeconds = 0.0;
    int64_t samplesSpent = 0;
    int64_t samplesSaved = 0;
    int64_t warmServed = 0;
};

TraceResult
replayTrace(int workers, bool warm, int requests, int group,
            int64_t budget, uint64_t seed)
{
    serve::ServiceConfig cfg;
    cfg.workers = workers;
    serve::MappingService service(cfg);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<serve::MapResponse>> futures;
    futures.reserve(requests);
    for (int i = 0; i < requests; ++i) {
        serve::MapRequest req;
        req.tenant = "tenant-" + std::to_string(i % 3);
        req.problem.task = dnn::TaskType::Mix;
        req.problem.groupSize = group;
        req.problem.workloadSeed = seed + i;
        req.problem.setting = accel::Setting::S2;
        req.problem.systemBwGbps = 4.0;
        req.search.sampleBudget = budget;
        req.search.seed = seed + i;
        req.search.warmStart = warm;
        futures.push_back(service.submit(std::move(req)));
    }
    for (auto& f : futures)
        f.get();

    TraceResult r;
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    serve::ServiceStats s = service.stats();
    r.samplesSpent = s.samplesSpent;
    r.samplesSaved = s.samplesSaved;
    r.warmServed = s.warmServed;
    service.stop();
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Serving throughput: requests/sec and samples "
                       "saved, 1/2/4 worker lanes");
    common::CsvWriter csv(args.outPath("serve_throughput.csv"),
                          {"workers", "mode", "wall_s", "req_per_s",
                           "samples_spent", "samples_saved",
                           "warm_served"});

    const int requests = args.full ? 24 : 12;
    const int group = args.full ? 40 : 16;
    const int64_t budget = args.budget(800);

    std::printf("\n%d requests, group %d, cold budget %lld\n\n", requests,
                group, static_cast<long long>(budget));
    std::printf("%8s %6s %9s %9s %14s %14s %6s\n", "workers", "mode",
                "wall-s", "req/s", "samples-spent", "samples-saved",
                "warm");

    double cold_1lane = 0.0;
    for (int workers : {1, 2, 4}) {
        for (bool warm : {false, true}) {
            TraceResult r = replayTrace(workers, warm, requests, group,
                                        budget, args.seed);
            double rps = requests / std::max(r.wallSeconds, 1e-9);
            if (workers == 1 && !warm)
                cold_1lane = r.wallSeconds;
            std::printf("%8d %6s %9.2f %9.1f %14lld %14lld %6lld", workers,
                        warm ? "warm" : "cold", r.wallSeconds, rps,
                        static_cast<long long>(r.samplesSpent),
                        static_cast<long long>(r.samplesSaved),
                        static_cast<long long>(r.warmServed));
            if (cold_1lane > 0.0)
                std::printf("   (%.2fx vs cold 1-lane)",
                            cold_1lane / std::max(r.wallSeconds, 1e-9));
            std::printf("\n");
            csv.row({std::to_string(workers), warm ? "warm" : "cold",
                     common::CsvWriter::num(r.wallSeconds),
                     common::CsvWriter::num(rps),
                     std::to_string(r.samplesSpent),
                     std::to_string(r.samplesSaved),
                     std::to_string(r.warmServed)});
        }
    }
    std::printf("\nSeries written to %s\n",
                args.outPath("serve_throughput.csv").c_str());
    return 0;
}
