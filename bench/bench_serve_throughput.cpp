/**
 * @file
 * Serving-layer throughput harness, two sections:
 *
 * 1. Lane scaling: requests/sec of the online mapping service at 1/2/4
 *    worker lanes, the search cost the warm-start store amortizes away
 *    versus a cold-only service (the Table V effect, measured end-to-end
 *    through src/serve/), and the request-latency distribution — queue-
 *    wait and service-time p50/p99 read back from the serve layer's
 *    obs:: histograms.
 *
 * 2. SLO trace: a synthetic heavy trace — Zipf-distributed workload
 *    fingerprints over a fixed universe, Poisson arrivals, all from a
 *    seeded RNG (100K requests under --full) — replayed through three
 *    service configurations: `baseline` (cold every request), `production`
 *    (warm tiers + request coalescing), and `shed` (bounded queue with
 *    per-priority limits). Reports samples spent, coalesced/shed counts,
 *    store hit rate, wait/service p50/p99 and mean final quality per
 *    distinct workload.
 *
 * Flags, on top of the shared bench_common.h set:
 *   --check-slo   exit non-zero unless the production configuration
 *                 meets the SLO gates vs baseline: >= 2x total-sample
 *                 reduction at equal final quality (>= 0.98x), store
 *                 hit rate >= 0.4, wait p99 <= 0.5x baseline, and the
 *                 shed replay's accounting closes (served + shed ==
 *                 submitted, shed > 0).
 *
 * Protocol: one fixed trace per section (seeded; 3 tenants) is replayed
 * per configuration. Each replay records into its own private
 * obs::MetricsRegistry, so the latency quantiles of one configuration
 * never bleed into the next.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/rng.h"
#include "obs/snapshot.h"
#include "serve/service.h"

using namespace magma;

namespace {

struct TraceResult {
    double wallSeconds = 0.0;
    int64_t samplesSpent = 0;
    int64_t samplesSaved = 0;
    int64_t warmServed = 0;
    /** Queue-wait / service-time quantiles (seconds), from the serve
     * histograms of this replay's private registry. */
    double waitP50 = 0.0;
    double waitP99 = 0.0;
    double serviceP50 = 0.0;
    double serviceP99 = 0.0;
};

TraceResult
replayTrace(int workers, bool warm, int requests, int group,
            int64_t budget, uint64_t seed)
{
    obs::MetricsRegistry registry;  // per-replay isolation
    serve::ServiceConfig cfg;
    cfg.workers = workers;
    cfg.registry = &registry;
    serve::MappingService service(cfg);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<serve::MapResponse>> futures;
    futures.reserve(requests);
    for (int i = 0; i < requests; ++i) {
        serve::MapRequest req;
        req.tenant = "tenant-" + std::to_string(i % 3);
        req.problem.task = dnn::TaskType::Mix;
        req.problem.groupSize = group;
        req.problem.workloadSeed = seed + i;
        req.problem.setting = accel::Setting::S2;
        req.problem.systemBwGbps = 4.0;
        req.search.sampleBudget = budget;
        req.search.seed = seed + i;
        req.search.warmStart = warm;
        futures.push_back(service.submit(std::move(req)));
    }
    for (auto& f : futures)
        f.get();

    TraceResult r;
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    serve::ServiceStats s = service.stats();
    r.samplesSpent = s.samplesSpent;
    r.samplesSaved = s.samplesSaved;
    r.warmServed = s.warmServed;
    if (const obs::Histogram* h =
            registry.findHistogram("serve.wait_seconds")) {
        r.waitP50 = h->quantile(0.50);
        r.waitP99 = h->quantile(0.99);
    }
    if (const obs::Histogram* h =
            registry.findHistogram("serve.service_seconds")) {
        r.serviceP50 = h->quantile(0.50);
        r.serviceP99 = h->quantile(0.99);
    }
    service.stop();
    return r;
}

// ------------------------------------------------------ SLO trace -----

struct SloParams {
    int requests = 0;
    int universe = 0;  ///< distinct workload fingerprints (Zipf ranks)
    int group = 0;
    int64_t budget = 0;
    int workers = 4;
    double ratePerSec = 0.0;  ///< Poisson arrival rate; 0 = burst submit
    uint64_t seed = 1;
};

struct SloTrace {
    std::vector<int> workload;    ///< request -> Zipf-drawn rank
    std::vector<double> arrival;  ///< seconds from replay start
};

/** Zipf(s=1.1) fingerprint draw + Poisson arrivals, all from one seeded
 * RNG — the trace is a pure function of the params. */
SloTrace
makeSloTrace(const SloParams& p)
{
    common::Rng rng(p.seed * 0x9e3779b97f4a7c15ull + 17);
    std::vector<double> cdf(p.universe);
    double sum = 0.0;
    for (int r = 0; r < p.universe; ++r) {
        sum += 1.0 / std::pow(static_cast<double>(r + 1), 1.1);
        cdf[r] = sum;
    }
    for (double& c : cdf)
        c /= sum;

    SloTrace t;
    t.workload.resize(p.requests);
    t.arrival.resize(p.requests);
    double now = 0.0;
    for (int i = 0; i < p.requests; ++i) {
        t.workload[i] = static_cast<int>(
            std::lower_bound(cdf.begin(), cdf.end(), rng.uniform()) -
            cdf.begin());
        if (p.ratePerSec > 0.0)
            now += -std::log(1.0 - rng.uniform()) / p.ratePerSec;
        t.arrival[i] = now;
    }
    return t;
}

struct SloResult {
    double wallSeconds = 0.0;
    int64_t submitted = 0;
    int64_t served = 0;
    int64_t coalesced = 0;
    int64_t shed = 0;
    int64_t warmServed = 0;
    int64_t samplesSpent = 0;
    double hitRate = 0.0;
    double waitP50 = 0.0, waitP99 = 0.0;
    double serviceP50 = 0.0, serviceP99 = 0.0;
    /** Mean over distinct workloads of the mean served fitness — the
     * "equal final quality" probe (shed responses excluded). */
    double meanQuality = 0.0;
};

SloResult
replaySlo(const SloParams& p, const SloTrace& t, bool warm, bool coalesce,
          int64_t max_queue, int64_t low_prio_limit, bool priorities)
{
    obs::MetricsRegistry registry;  // per-replay isolation
    serve::ServiceConfig cfg;
    cfg.workers = p.workers;
    cfg.registry = &registry;
    cfg.coalesce = coalesce;
    cfg.maxQueueDepth = max_queue;
    if (low_prio_limit > 0)
        cfg.priorityDepthLimits[1] = low_prio_limit;
    cfg.storeCapacity = p.universe * 2;  // hold the whole universe

    serve::MappingService service(cfg);
    auto start = std::chrono::steady_clock::now();
    std::vector<std::future<serve::MapResponse>> futures;
    futures.reserve(t.workload.size());
    for (size_t i = 0; i < t.workload.size(); ++i) {
        if (p.ratePerSec > 0.0)
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(t.arrival[i]));
        serve::MapRequest req;
        req.tenant = "tenant-" + std::to_string(i % 3);
        if (priorities)
            req.priority = static_cast<int>(i % 2);
        req.problem.task = dnn::TaskType::Mix;
        req.problem.groupSize = p.group;
        // Zipf: requests of one rank share a fingerprint (and a group).
        req.problem.workloadSeed =
            p.seed + static_cast<uint64_t>(t.workload[i]);
        req.problem.setting = accel::Setting::S2;
        req.problem.systemBwGbps = 4.0;
        req.search.sampleBudget = p.budget;
        req.search.seed = p.seed + i;  // per-request seed (leader's wins)
        req.search.warmStart = warm;
        req.writeBack = warm;
        futures.push_back(service.submit(std::move(req)));
    }

    std::map<int, std::pair<double, int64_t>> by_workload;  // sum, count
    for (size_t i = 0; i < futures.size(); ++i) {
        serve::MapResponse r = futures[i].get();
        if (r.shed)
            continue;
        auto& [fitness_sum, count] = by_workload[t.workload[i]];
        fitness_sum += r.bestFitness;
        ++count;
    }

    SloResult out;
    out.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    serve::ServiceStats s = service.stats();
    out.submitted = s.submitted;
    out.served = s.served;
    out.coalesced = s.coalesced;
    out.shed = s.shed;
    out.warmServed = s.warmServed;
    out.samplesSpent = s.samplesSpent;
    out.hitRate = service.store().stats().hitRate();
    if (const obs::Histogram* h =
            registry.findHistogram("serve.wait_seconds")) {
        out.waitP50 = h->quantile(0.50);
        out.waitP99 = h->quantile(0.99);
    }
    if (const obs::Histogram* h =
            registry.findHistogram("serve.service_seconds")) {
        out.serviceP50 = h->quantile(0.50);
        out.serviceP99 = h->quantile(0.99);
    }
    if (!by_workload.empty()) {
        double acc = 0.0;
        for (const auto& [rank, sum_count] : by_workload)
            acc += sum_count.first /
                   static_cast<double>(sum_count.second);
        out.meanQuality = acc / static_cast<double>(by_workload.size());
    }
    service.stop();
    return out;
}

void
printSloRow(const char* mode, const SloResult& r)
{
    std::printf("%11s %8.2f %12lld %9lld %7lld %6lld %8.2f %9.1f %9.1f "
                "%9.1f %9.1f %12.1f\n",
                mode, r.wallSeconds,
                static_cast<long long>(r.samplesSpent),
                static_cast<long long>(r.coalesced),
                static_cast<long long>(r.shed),
                static_cast<long long>(r.warmServed), r.hitRate,
                r.waitP50 * 1e3, r.waitP99 * 1e3, r.serviceP50 * 1e3,
                r.serviceP99 * 1e3, r.meanQuality);
}

void
sloJsonSample(obs::JsonWriter& json, const char* mode,
              const SloParams& p, const SloResult& r)
{
    json.beginObject();
    json.field("mode", mode);
    json.field("requests", p.requests);
    json.field("universe", p.universe);
    json.field("wall_s", r.wallSeconds);
    json.field("samples_spent", r.samplesSpent);
    json.field("served", r.served);
    json.field("coalesced", r.coalesced);
    json.field("shed", r.shed);
    json.field("warm_served", r.warmServed);
    json.field("hit_rate", r.hitRate);
    json.field("wait_p50_ms", r.waitP50 * 1e3);
    json.field("wait_p99_ms", r.waitP99 * 1e3);
    json.field("serve_p50_ms", r.serviceP50 * 1e3);
    json.field("serve_p99_ms", r.serviceP99 * 1e3);
    json.field("mean_quality", r.meanQuality);
    json.endObject();
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bool check_slo = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--check-slo") == 0)
            check_slo = true;
    bench::printHeader("Serving throughput: requests/sec, samples saved "
                       "and latency quantiles, 1/2/4 worker lanes");
    common::CsvWriter csv(args.outPath("serve_throughput.csv"),
                          {"workers", "mode", "wall_s", "req_per_s",
                           "samples_spent", "samples_saved", "warm_served",
                           "wait_p50_ms", "wait_p99_ms", "serve_p50_ms",
                           "serve_p99_ms"});

    const int requests = args.full ? 24 : 12;
    const int group = args.full ? 40 : 16;
    const int64_t budget = args.budget(800);

    std::printf("\n%d requests, group %d, cold budget %lld\n\n", requests,
                group, static_cast<long long>(budget));
    std::printf("%8s %6s %9s %9s %14s %14s %6s %9s %9s %9s %9s\n",
                "workers", "mode", "wall-s", "req/s", "samples-spent",
                "samples-saved", "warm", "wait-p50", "wait-p99",
                "serve-p50", "serve-p99");

    obs::JsonWriter json;
    obs::SnapshotWriter::beginBenchConfig(json, "serve_throughput",
                                          args.full, args.seed, "Mix",
                                          "S2", 4.0, group);
    json.field("requests", requests);
    json.field("budget", budget);
    json.endObject();
    json.beginArray("samples");

    double cold_1lane = 0.0;
    for (int workers : {1, 2, 4}) {
        for (bool warm : {false, true}) {
            TraceResult r = replayTrace(workers, warm, requests, group,
                                        budget, args.seed);
            double rps = requests / std::max(r.wallSeconds, 1e-9);
            if (workers == 1 && !warm)
                cold_1lane = r.wallSeconds;
            std::printf("%8d %6s %9.2f %9.1f %14lld %14lld %6lld %9.1f "
                        "%9.1f %9.1f %9.1f",
                        workers, warm ? "warm" : "cold", r.wallSeconds,
                        rps, static_cast<long long>(r.samplesSpent),
                        static_cast<long long>(r.samplesSaved),
                        static_cast<long long>(r.warmServed),
                        r.waitP50 * 1e3, r.waitP99 * 1e3,
                        r.serviceP50 * 1e3, r.serviceP99 * 1e3);
            if (cold_1lane > 0.0)
                std::printf("   (%.2fx vs cold 1-lane)",
                            cold_1lane / std::max(r.wallSeconds, 1e-9));
            std::printf("\n");
            csv.row({std::to_string(workers), warm ? "warm" : "cold",
                     common::CsvWriter::num(r.wallSeconds),
                     common::CsvWriter::num(rps),
                     std::to_string(r.samplesSpent),
                     std::to_string(r.samplesSaved),
                     std::to_string(r.warmServed),
                     common::CsvWriter::num(r.waitP50 * 1e3),
                     common::CsvWriter::num(r.waitP99 * 1e3),
                     common::CsvWriter::num(r.serviceP50 * 1e3),
                     common::CsvWriter::num(r.serviceP99 * 1e3)});
            json.beginObject();
            json.field("workers", workers);
            json.field("mode", warm ? "warm" : "cold");
            json.field("wall_s", r.wallSeconds);
            json.field("req_per_s", rps);
            json.field("samples_spent", r.samplesSpent);
            json.field("samples_saved", r.samplesSaved);
            json.field("warm_served", r.warmServed);
            json.field("wait_p50_ms", r.waitP50 * 1e3);
            json.field("wait_p99_ms", r.waitP99 * 1e3);
            json.field("serve_p50_ms", r.serviceP50 * 1e3);
            json.field("serve_p99_ms", r.serviceP99 * 1e3);
            json.endObject();
        }
    }
    // ---------------------------------------------- SLO heavy trace ---

    SloParams sp;
    sp.requests = args.full ? 100000 : 3000;
    sp.universe = args.full ? 400 : 40;
    sp.group = args.full ? 12 : 10;
    sp.budget = args.full ? 300 : 240;
    sp.workers = 4;
    sp.ratePerSec = args.full ? 20000.0 : 2500.0;
    sp.seed = args.seed;
    SloTrace trace = makeSloTrace(sp);

    std::printf("\nSLO trace: %d requests over %d Zipf(1.1) workloads, "
                "Poisson %.0f req/s, group %d, cold budget %lld, %d "
                "lanes\n\n",
                sp.requests, sp.universe, sp.ratePerSec, sp.group,
                static_cast<long long>(sp.budget), sp.workers);
    std::printf("%11s %8s %12s %9s %7s %6s %8s %9s %9s %9s %9s %12s\n",
                "mode", "wall-s", "samples", "coalesced", "shed", "warm",
                "hit-rate", "wait-p50", "wait-p99", "serve-p50",
                "serve-p99", "quality");

    SloResult base = replaySlo(sp, trace, /*warm=*/false,
                               /*coalesce=*/false, 0, 0, false);
    printSloRow("baseline", base);
    SloResult prod = replaySlo(sp, trace, /*warm=*/true, /*coalesce=*/true,
                               0, 0, false);
    printSloRow("production", prod);

    // Shed replay: burst submission against a bounded queue with a
    // per-priority limit — the admission-control path, end to end.
    SloParams shed_p = sp;
    shed_p.ratePerSec = 0.0;  // burst: force overflow
    SloResult shed = replaySlo(shed_p, trace, /*warm=*/true,
                               /*coalesce=*/false, /*max_queue=*/48,
                               /*low_prio_limit=*/16, /*priorities=*/true);
    printSloRow("shed", shed);

    double sample_reduction =
        prod.samplesSpent > 0
            ? static_cast<double>(base.samplesSpent) /
                  static_cast<double>(prod.samplesSpent)
            : 0.0;
    double quality_ratio =
        base.meanQuality > 0.0 ? prod.meanQuality / base.meanQuality : 0.0;
    std::printf("\nproduction vs baseline: %.1fx fewer samples, quality "
                "%.4fx, hit rate %.2f, wait p99 %.1f ms vs %.1f ms\n",
                sample_reduction, quality_ratio, prod.hitRate,
                prod.waitP99 * 1e3, base.waitP99 * 1e3);
    std::printf("shed replay: %lld served + %lld shed of %lld submitted\n",
                static_cast<long long>(shed.served),
                static_cast<long long>(shed.shed),
                static_cast<long long>(shed.submitted));

    sloJsonSample(json, "slo_baseline", sp, base);
    sloJsonSample(json, "slo_production", sp, prod);
    sloJsonSample(json, "slo_shed", shed_p, shed);
    json.endArray();
    // The headline SLO metrics are computed from the replays above, so
    // the "metrics" object is emitted after "samples" (key order is
    // irrelevant to the schema-1 consumers; bench_report gates these).
    json.beginObject("metrics");
    json.field("sample_reduction", sample_reduction);
    json.field("quality_ratio", quality_ratio);
    json.field("hit_rate", prod.hitRate);
    json.field("wait_p99_ratio",
               base.waitP99 > 0.0 ? prod.waitP99 / base.waitP99 : 0.0);
    json.endObject();
    json.endObject();
    std::printf("\nSeries written to %s\n",
                args.outPath("serve_throughput.csv").c_str());
    if (!args.jsonOutPath().empty() &&
        json.writeFile(args.jsonOutPath()))
        std::printf("Telemetry written to %s\n",
                    args.jsonOutPath().c_str());

    if (check_slo) {
        bool ok = true;
        auto gate = [&](bool pass, const char* what) {
            std::printf("SLO gate: %-52s %s\n", what,
                        pass ? "PASS" : "FAIL");
            if (!pass)
                ok = false;
        };
        gate(sample_reduction >= 2.0,
             "coalescing+warm cut total samples >= 2x");
        gate(quality_ratio >= 0.98, "final quality >= 0.98x baseline");
        gate(prod.hitRate >= 0.4, "store hit rate >= 0.4");
        gate(base.waitP99 > 0.0 && prod.waitP99 <= 0.5 * base.waitP99,
             "wait p99 <= 0.5x baseline");
        gate(shed.shed > 0 && shed.served > 0 &&
                 shed.served + shed.shed == shed.submitted,
             "shed accounting closes (served + shed == submitted)");
        if (!ok) {
            std::fprintf(stderr, "--check-slo: SLO gate violated\n");
            return 1;
        }
    }
    return 0;
}
