/**
 * @file
 * Fig. 12 harness: system-BW sweep on the heterogeneous accelerators
 * (Mix task): S2 with BW in {1,4,8,16} and S4 with BW in {1,16,64,256},
 * comparing Herald-like, RL A2C, RL PPO2 and MAGMA.
 *
 * Paper's shape: as BW shrinks the mapper matters more — MAGMA's margin
 * over the others grows (e.g. 1.2x at BW=16 to 1.6x at BW=1 on S2).
 */

#include <cstdio>

#include "bench/experiment.h"
#include "common/stats.h"

using namespace magma;

namespace {

void
sweep(const char* label, accel::Setting setting,
      const std::vector<double>& bws, const bench::BenchArgs& args,
      common::CsvWriter& csv)
{
    std::printf("\n%s\n  %-14s", label, "method");
    for (double bw : bws)
        std::printf(" %10s", ("BW=" + common::CsvWriter::num(bw)).c_str());
    std::printf("   (normalized by MAGMA)\n");

    const std::vector<m3e::Method> methods = {
        m3e::Method::HeraldLike, m3e::Method::RlA2c, m3e::Method::RlPpo2,
        m3e::Method::Magma};

    // One workload per BW point (same seed), methods sweep across.
    std::vector<std::vector<bench::MethodRun>> by_bw;
    for (double bw : bws) {
        auto problem = m3e::makeProblem(dnn::TaskType::Mix, setting, bw,
                                        args.groupSize(), args.seed);
        by_bw.push_back(bench::runMethods(*problem, methods, args.budget(),
                                          args.seed,
                                          args.full ? -1 : 800));
    }

    for (size_t mi = 0; mi < methods.size(); ++mi) {
        std::printf("  %-14s", by_bw[0][mi].name.c_str());
        for (size_t bi = 0; bi < bws.size(); ++bi) {
            double magma = bench::gflopsOf(by_bw[bi], "MAGMA");
            double norm = magma > 0 ? by_bw[bi][mi].gflops / magma : 0.0;
            std::printf(" %10.3f", norm);
            csv.row({label, by_bw[bi][mi].name,
                     common::CsvWriter::num(bws[bi]),
                     common::CsvWriter::num(by_bw[bi][mi].gflops),
                     common::CsvWriter::num(norm)});
        }
        std::printf("\n");
    }

    // The paper's takeaway metric: MAGMA's geomean margin at the lowest
    // vs the highest BW point.
    auto margin = [&](size_t bi) {
        double magma = bench::gflopsOf(by_bw[bi], "MAGMA");
        std::vector<double> ratios;
        for (const auto& r : by_bw[bi])
            if (r.name != "MAGMA")
                ratios.push_back(magma / r.gflops);
        return common::geomean(ratios);
    };
    std::printf("  MAGMA geomean margin: %.2fx at BW=%g, %.2fx at BW=%g\n",
                margin(0), bws.front(), margin(bws.size() - 1), bws.back());
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Fig. 12: BW sweep on heterogeneous accelerators "
                       "(Mix task)");
    common::CsvWriter csv(args.outPath("fig12_bw_sweep.csv"),
                          {"case", "method", "bw_gbps", "gflops",
                           "norm_vs_magma"});
    sweep("(a) Mix, Small hetero (S2)", accel::Setting::S2,
          {1.0, 4.0, 8.0, 16.0}, args, csv);
    sweep("(b) Mix, Large hetero (S4)", accel::Setting::S4,
          {1.0, 16.0, 64.0, 256.0}, args, csv);
    std::printf("\nSeries written to %s\n",
                args.outPath("fig12_bw_sweep.csv").c_str());
    return 0;
}
