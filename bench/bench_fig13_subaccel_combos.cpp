/**
 * @file
 * Fig. 13 harness: sub-accelerator combinations — S3 (Large Homog), S4
 * (Large Hetero) and S5 (Large Hetero BigLittle).
 *
 * (a)/(b) jobs analysis: per-task average per-job no-stall latency and
 * required BW on each setting (stacked across the four tasks in the
 * paper; we print the per-task values and the stacked total).
 * (c) MAGMA throughput on each setting at BW=1 and BW=64, normalized by
 * S5's value at each BW.
 *
 * Paper's shape: S4 trades latency for lower BW demand vs S3, so S4 wins
 * at BW=1 but loses at high BW; the smaller BigLittle (S5) wins outright
 * at BW=1 on the strength of its lower BW appetite.
 */

#include <cstdio>

#include "bench/experiment.h"
#include "sched/job_analyzer.h"

using namespace magma;

namespace {

struct Analysis {
    double lat = 0.0;  // avg per-job no-stall seconds (mean across cores)
    double bw = 0.0;   // avg per-job required BW
};

Analysis
analyzeTaskOnSetting(dnn::TaskType task, accel::Setting setting,
                     const bench::BenchArgs& args)
{
    auto problem = m3e::makeProblem(task, setting, 64.0, args.groupSize(),
                                    args.seed);
    const auto& table = problem->evaluator().table();
    Analysis out;
    int jobs = table.numJobs(), accels = table.numAccels();
    for (int j = 0; j < jobs; ++j) {
        for (int a = 0; a < accels; ++a) {
            out.lat += table.lookup(j, a).noStallSeconds;
            out.bw += table.lookup(j, a).reqBwGbps;
        }
    }
    out.lat /= jobs * accels;
    out.bw /= jobs * accels;
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Fig. 13: S3 vs S4 vs S5 — jobs analysis and "
                       "MAGMA performance vs BW");

    const accel::Setting settings[] = {accel::Setting::S3,
                                       accel::Setting::S4,
                                       accel::Setting::S5};
    const dnn::TaskType tasks[] = {
        dnn::TaskType::Vision, dnn::TaskType::Language,
        dnn::TaskType::Recommendation, dnn::TaskType::Mix};

    common::CsvWriter csv(args.outPath("fig13_subaccel_combos.csv"),
                          {"section", "setting", "task_or_bw", "value"});

    // (a)/(b) jobs analysis.
    std::printf("\n(a) avg per-job no-stall latency (us) and (b) avg "
                "required BW (GB/s)\n");
    std::printf("  %-4s", "");
    for (dnn::TaskType t : tasks)
        std::printf(" %10s(a) %9s(b)", dnn::taskTypeName(t).c_str(),
                    dnn::taskTypeName(t).c_str());
    std::printf(" %10s %9s\n", "stack(a)", "stack(b)");
    for (accel::Setting s : settings) {
        std::printf("  %-4s", accel::settingName(s).c_str());
        double stack_lat = 0.0, stack_bw = 0.0;
        for (dnn::TaskType t : tasks) {
            Analysis a = analyzeTaskOnSetting(t, s, args);
            std::printf(" %12.2f %11.2f", a.lat * 1e6, a.bw);
            stack_lat += a.lat * 1e6;
            stack_bw += a.bw;
            csv.row({"lat_us", accel::settingName(s), dnn::taskTypeName(t),
                     common::CsvWriter::num(a.lat * 1e6)});
            csv.row({"bw_gbps", accel::settingName(s), dnn::taskTypeName(t),
                     common::CsvWriter::num(a.bw)});
        }
        std::printf(" %10.2f %9.2f\n", stack_lat, stack_bw);
    }

    // (c) MAGMA throughput at BW=1 and BW=64, normalized by S5.
    std::printf("\n(c) MAGMA throughput normalized by S5\n");
    for (double bw : {1.0, 64.0}) {
        double vals[3] = {};
        for (int i = 0; i < 3; ++i) {
            auto problem = m3e::makeProblem(dnn::TaskType::Mix, settings[i],
                                            bw, args.groupSize(),
                                            args.seed);
            auto magma_opt =
                m3e::makeOptimizer(m3e::Method::Magma, args.seed);
            opt::SearchOptions opts;
            opts.sampleBudget = args.budget();
            vals[i] =
                magma_opt->search(problem->evaluator(), opts).bestFitness;
        }
        std::printf("  BW=%-4g:", bw);
        for (int i = 0; i < 3; ++i) {
            std::printf("  %s %.2f (%.1f GFLOP/s)",
                        accel::settingName(settings[i]).c_str(),
                        vals[i] / vals[2], vals[i]);
            csv.row({"magma_norm_s5", accel::settingName(settings[i]),
                     common::CsvWriter::num(bw),
                     common::CsvWriter::num(vals[i] / vals[2])});
        }
        std::printf("\n");
    }
    std::printf("\nSeries written to %s\n",
                args.outPath("fig13_subaccel_combos.csv").c_str());
    return 0;
}
