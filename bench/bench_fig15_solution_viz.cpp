/**
 * @file
 * Fig. 15 harness: visualize the schedules found by Herald-like and MAGMA
 * on (Mix, S5, BW=1) — sub-accelerator allocation Gantt charts tagged by
 * task category plus the bandwidth-allocation profile over time.
 *
 * Paper's shape: Herald-like front-loads the BW-intensive language and
 * recommendation jobs, causing BW competition and a ~10x longer finish
 * time; MAGMA spreads them across the runtime.
 */

#include <cstdio>

#include "analysis/timeline.h"
#include "baselines/herald_like.h"
#include "bench/experiment.h"
#include "opt/magma_ga.h"

using namespace magma;

namespace {

void
show(const char* label, const sched::Mapping& m, m3e::Problem& problem,
     common::CsvWriter& csv)
{
    sched::ScheduleResult r =
        problem.evaluator().evaluate(m, /*record_timeline=*/true);
    analysis::TimelineExporter tl(r, problem.group(),
                                  problem.evaluator().numAccels());
    std::printf("\n--- %s ---  finish time: %.3g s,  throughput: %.2f "
                "GFLOP/s\n",
                label, r.makespanSeconds,
                problem.evaluator().throughputGflops(r.makespanSeconds));
    std::printf("%s", tl.renderGantt(72).c_str());
    std::printf("legend: V=Vision L=Language R=Recommendation .=idle\n\n");
    std::printf("%s", tl.renderBwProfile(72).c_str());
    for (const auto& row : tl.bwRows()) {
        std::vector<std::string> cells = {label};
        cells.insert(cells.end(), row.begin(), row.end());
        csv.row(cells);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader(
        "Fig. 15: found-solution visualization (Mix, S5, BW=1)");

    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S5,
                                    1.0, args.groupSize(), args.seed);
    common::CsvWriter csv(args.outPath("fig15_solution_viz.csv"),
                          {"mapper", "t_start", "t_end", "accel", "job",
                           "task", "alloc_bw_gbps"});

    sched::Mapping herald =
        baselines::HeraldLike::buildMapping(problem->evaluator());
    show("Herald-like", herald, *problem, csv);

    auto magma_opt = m3e::makeOptimizer(m3e::Method::Magma, args.seed);
    opt::SearchOptions opts;
    opts.sampleBudget = args.budget();
    opt::SearchResult res = magma_opt->search(problem->evaluator(), opts);
    show("MAGMA", res.best, *problem, csv);

    std::printf("\nSegments written to %s\n",
                args.outPath("fig15_solution_viz.csv").c_str());
    return 0;
}
