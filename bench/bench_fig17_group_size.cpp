/**
 * @file
 * Fig. 17 harness: group-size sweep on (Mix, S2, BW=16) with MAGMA.
 *
 * Paper's shape: performance is fairly flat from 1000 down to ~20, but a
 * very small group (4) leaves sub-accelerators starved and loses.
 * Throughputs are normalized by the group-size-1000 value.
 */

#include <cstdio>

#include "bench/experiment.h"
#include "opt/magma_ga.h"

using namespace magma;

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Fig. 17: group-size sweep (Mix, S2, BW=16)");

    std::vector<int> sizes = {1000, 500, 200, 100, 50, 40, 20, 10, 4};
    common::CsvWriter csv(args.outPath("fig17_group_size.csv"),
                          {"group_size", "gflops", "norm_vs_1000"});

    std::vector<double> gflops;
    for (int gs : sizes) {
        auto problem = m3e::makeProblem(dnn::TaskType::Mix,
                                        accel::Setting::S2, 16.0, gs,
                                        args.seed);
        opt::MagmaConfig cfg;
        cfg.population = std::max(8, std::min(gs, 100));  // pop ~ group
        opt::MagmaGa magma_ga(args.seed, cfg);
        opt::SearchOptions opts;
        opts.sampleBudget = args.budget();
        gflops.push_back(
            magma_ga.search(problem->evaluator(), opts).bestFitness);
    }

    std::printf("\n  %-10s %12s %10s\n", "group", "GFLOP/s", "norm");
    for (size_t i = 0; i < sizes.size(); ++i) {
        double norm = gflops[i] / gflops[0];
        std::printf("  %-10d %12.1f %10.2f\n", sizes[i], gflops[i], norm);
        csv.rowNumeric({static_cast<double>(sizes[i]), gflops[i], norm});
    }
    std::printf("\nSeries written to %s\n",
                args.outPath("fig17_group_size.csv").c_str());
    return 0;
}
