/**
 * @file
 * Fig. 11 harness: convergence curves of all methods over an extended
 * budget on (a) (Vision, S2, BW=16) and (b) (Mix, S3, BW=16).
 *
 * Paper's shape: most methods converge before 10K samples but plateau at
 * lower points than MAGMA's.
 */

#include <cstdio>

#include "analysis/convergence.h"
#include "bench/experiment.h"

using namespace magma;

namespace {

void
runCase(const char* label, dnn::TaskType task, accel::Setting setting,
        double bw, const bench::BenchArgs& args, common::CsvWriter& csv)
{
    auto problem = m3e::makeProblem(task, setting, bw, args.groupSize(),
                                    args.seed);
    int64_t budget = args.full ? 100000 : 4 * args.budget();
    int64_t rl_budget = args.full ? 20000 : args.budget();

    std::printf("\n%s (budget %lld)\n", label,
                static_cast<long long>(budget));
    const int checkpoints = 10;
    std::printf("  %-14s", "method");
    for (int g : analysis::resampleGrid(static_cast<int>(budget),
                                        checkpoints))
        std::printf(" %8d", g);
    std::printf("\n");

    opt::SearchOptions base;
    base.recordConvergence = true;
    auto runs = bench::runMethods(*problem, m3e::paperMethods(), budget,
                                  args.seed, rl_budget, base);
    for (const auto& r : runs) {
        std::vector<double> pts =
            analysis::resampleCurve(r.result.convergence, checkpoints);
        std::printf("  %-14s", r.name.c_str());
        for (double v : pts)
            std::printf(" %8.1f", v);
        int conv90 =
            analysis::samplesToFraction(r.result.convergence, 0.9);
        std::printf("   (90%% at %d samples)\n", conv90);
        for (int i = 0; i < checkpoints; ++i)
            csv.row({label, r.name,
                     std::to_string(analysis::resampleGrid(
                         static_cast<int>(budget), checkpoints)[i]),
                     common::CsvWriter::num(pts[i])});
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Fig. 11: convergence over extended budgets");
    common::CsvWriter csv(args.outPath("fig11_convergence.csv"),
                          {"case", "method", "samples", "best_gflops"});
    runCase("(a) Vision, S2, BW=16", dnn::TaskType::Vision,
            accel::Setting::S2, 16.0, args, csv);
    runCase("(b) Mix, S3, BW=16", dnn::TaskType::Mix, accel::Setting::S3,
            16.0, args, csv);
    std::printf("\nSeries written to %s\n",
                args.outPath("fig11_convergence.csv").c_str());
    return 0;
}
