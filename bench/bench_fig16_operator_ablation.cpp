/**
 * @file
 * Fig. 16 harness: MAGMA operator ablation on (a) (Vision, S2, BW=16) and
 * (b) (Mix, S3, BW=16) — convergence with (1) mutation only,
 * (2) mutation + crossover-gen, (3) all four operators.
 *
 * Paper's shape: mutation-only converges far slower; adding crossover-gen
 * recovers most of the sample efficiency; crossover-rg + crossover-accel
 * close the remaining gap.
 */

#include <cstdio>

#include "analysis/convergence.h"
#include "bench/experiment.h"
#include "opt/magma_ga.h"

using namespace magma;

namespace {

opt::MagmaConfig
level(int ops)
{
    opt::MagmaConfig cfg;
    cfg.enableCrossoverGen = ops >= 2;
    cfg.enableCrossoverRg = ops >= 3;
    cfg.enableCrossoverAccel = ops >= 3;
    return cfg;
}

void
runCase(const char* label, dnn::TaskType task, accel::Setting setting,
        const bench::BenchArgs& args, common::CsvWriter& csv)
{
    auto problem = m3e::makeProblem(task, setting, 16.0, args.groupSize(),
                                    args.seed);
    const char* names[] = {"Mut.", "Mut.+Crs-gen", "All four ops"};
    const int checkpoints = 10;
    int64_t budget = args.budget();

    std::printf("\n%s (budget %lld)\n  %-14s", label,
                static_cast<long long>(budget), "operators");
    for (int g : analysis::resampleGrid(static_cast<int>(budget),
                                        checkpoints))
        std::printf(" %8d", g);
    std::printf("\n");

    for (int ops = 1; ops <= 3; ++ops) {
        opt::MagmaGa magma_ga(args.seed, level(ops));
        opt::SearchOptions opts;
        opts.sampleBudget = budget;
        opts.recordConvergence = true;
        opt::SearchResult r = magma_ga.search(problem->evaluator(), opts);
        std::vector<double> pts =
            analysis::resampleCurve(r.convergence, checkpoints);
        std::printf("  %-14s", names[ops - 1]);
        for (double v : pts)
            std::printf(" %8.1f", v);
        std::printf("   (99%% at %d samples)\n",
                    analysis::samplesToFraction(r.convergence, 0.99));
        for (int i = 0; i < checkpoints; ++i)
            csv.row({label, names[ops - 1],
                     std::to_string(analysis::resampleGrid(
                         static_cast<int>(budget), checkpoints)[i]),
                     common::CsvWriter::num(pts[i])});
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader("Fig. 16: MAGMA genetic-operator ablation");
    common::CsvWriter csv(args.outPath("fig16_operator_ablation.csv"),
                          {"case", "operators", "samples", "best_gflops"});
    runCase("(a) Vision, S2, BW=16", dnn::TaskType::Vision,
            accel::Setting::S2, args, csv);
    runCase("(b) Mix, S3, BW=16", dnn::TaskType::Mix, accel::Setting::S3,
            args, csv);
    std::printf("\nSeries written to %s\n",
                args.outPath("fig16_operator_ablation.csv").c_str());
    return 0;
}
