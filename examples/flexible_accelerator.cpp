/**
 * @file
 * Flexible-accelerator scenario (Section VI-F): the same PE budget as the
 * fixed S1 platform, but every sub-accelerator can reshape its 2-D array
 * per job (FPGA/CGRA-style). Compares per-job latency, required BW and
 * end-to-end MAGMA throughput of fixed vs flexible, and shows the array
 * shapes the flexible cost model picks for representative layers.
 */

#include <cstdio>

#include "cost/cost_model.h"
#include "dnn/model_zoo.h"
#include "m3e/factory.h"
#include "m3e/problem.h"

int
main()
{
    using namespace magma;

    // Per-layer shape choices of the flexible engine.
    cost::CostModel model;
    cost::SubAccelConfig flex =
        accel::makeFlexibleSetting(accel::Setting::S1, 16.0).subAccels[0];
    std::printf("Shapes chosen by the flexible PE array (2048 PEs) per "
                "layer:\n");
    std::printf("  %-34s %10s %14s %8s\n", "layer", "shape",
                "cycles", "util");
    struct Probe { const char* label; dnn::LayerShape layer; int batch; };
    const Probe probes[] = {
        {"ResNet conv1 (few channels)", dnn::conv(64, 3, 112, 112, 7, 7, 2),
         4},
        {"ResNet late conv", dnn::conv(512, 512, 7, 7, 3, 3), 4},
        {"MobileNet depthwise", dnn::depthwise(384, 14, 14, 3, 3), 4},
        {"GPT-2 FFN GEMM", dnn::fc(3072, 768), 128},
        {"DLRM top MLP", dnn::fc(512, 512), 4},
    };
    for (const Probe& p : probes) {
        cost::CostResult r = model.analyze(p.layer, p.batch, flex);
        char shape[32];
        std::snprintf(shape, sizeof shape, "%dx%d", r.usedRows, r.usedCols);
        std::printf("  %-34s %10s %14.0f %7.1f%%\n", p.label, shape,
                    r.noStallCycles, 100.0 * r.utilization);
    }

    // End-to-end: fixed vs flexible on Vision and Mix at low/high BW.
    std::printf("\nMAGMA throughput (GFLOP/s), fixed S1 vs flexible S1:\n");
    std::printf("  %-8s %6s %10s %10s %8s\n", "task", "BW", "fixed",
                "flexible", "gain");
    for (dnn::TaskType task : {dnn::TaskType::Vision, dnn::TaskType::Mix}) {
        for (double bw : {1.0, 16.0}) {
            dnn::WorkloadGenerator gen(3);
            dnn::JobGroup group = gen.makeGroup(task, 40);
            m3e::Problem fixed(group,
                               accel::makeSetting(accel::Setting::S1, bw));
            m3e::Problem flexp(
                group, accel::makeFlexibleSetting(accel::Setting::S1, bw));
            opt::SearchOptions opts;
            opts.sampleBudget = 2000;
            double ff = m3e::makeOptimizer(m3e::Method::Magma, 1)
                            ->search(fixed.evaluator(), opts).bestFitness;
            double fx = m3e::makeOptimizer(m3e::Method::Magma, 1)
                            ->search(flexp.evaluator(), opts).bestFitness;
            std::printf("  %-8s %6.0f %10.1f %10.1f %7.2fx\n",
                        dnn::taskTypeName(task).c_str(), bw, ff, fx,
                        fx / ff);
        }
    }
    return 0;
}
