/**
 * @file
 * m3e_serve — CLI server for the online mapping service (src/serve/).
 *
 * Drives a synthetic multi-tenant request trace through a
 * serve::MappingService: `--requests` mapping requests from `--tenants`
 * round-robin tenants, each an independently drawn group of the chosen
 * task, served on `--workers` concurrent lanes. Requests whose workload
 * fingerprint is already in the MappingStore are warm-started on a
 * quarter of the cold budget (Section V-C / Table V, now end-to-end).
 *
 * Usage:
 *   m3e_serve [--requests N] [--tenants N] [--workers N] [--threads N]
 *             [--task Vision|Lang|Recom|Mix] [--setting S1..S6]
 *             [--bw GBPS] [--group N] [--budget N] [--seed N]
 *             [--objective NAME] [--store PATH] [--no-warm] [--quiet]
 *             [--coalesce] [--max-queue N] [--deadline SEC]
 *             [--metrics-out FILE] [--trace-out FILE]
 *
 * The flags populate the api::ProblemSpec/api::SearchSpec embedded in
 * every serve::MapRequest — the same declarative artifacts `m3e_cli
 * --spec` runs offline. --threads N sets evaluation lanes per request
 * (0 = auto via MAGMA_THREADS / hardware concurrency). --store PATH
 * names the store snapshot: startup runs crash recovery (snapshot +
 * append-log replay), every write-back is then logged durably, and
 * shutdown compacts — a second run starts warm even after kill -9.
 * --no-warm disables the store (cold baseline).
 *
 * Production controls (docs/serving.md): --coalesce collapses identical
 * in-flight requests into one search, --max-queue N bounds the waiting
 * queue (overflow sheds the oldest lowest-priority request), --deadline
 * SEC sheds requests that waited past SEC at dequeue. Shed/coalesced
 * requests show in the per-request table and a summary line — emitted
 * only when these flags are used, so default output is unchanged.
 *
 * --metrics-out FILE writes the process metrics registry — per-tenant
 * serve.wait_seconds/.service_seconds histograms, request counters,
 * EvalEngine/CostCache gauges, and at MAGMA_METRICS=trace or profile
 * the drained span trace (plus the profiler tree at profile) — as a
 * schema-1 obs::SnapshotWriter JSON artifact, round-trip-verified.
 * --trace-out FILE exports the drained span trace as Chrome
 * trace-event / Perfetto JSON (ui.perfetto.dev), reparse-verified;
 * with both flags the tracer is drained once and shared.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include <chrono>

#include "exec/cost_cache.h"
#include "obs/snapshot.h"
#include "obs/trace_export.h"
#include "serve/service.h"

using namespace magma;

namespace {

struct ServeArgs {
    int requests = 12;
    int tenants = 3;
    int workers = 2;
    int threads = 1;
    api::ProblemSpec problem;
    sched::Objective objective = sched::Objective::Throughput;
    int64_t budget = 1600;
    uint64_t seed = 1;
    std::string storePath;
    bool warm = true;
    bool quiet = false;
    bool coalesce = false;
    int64_t maxQueue = 0;
    double deadline = 0.0;
    std::string metricsPath;
    std::string tracePath;
};

/** Parse via fn, mapping std::invalid_argument to a usage error. */
template <typename Fn>
auto
parseOrDie(Fn&& fn, const std::string& value)
{
    try {
        return fn(value);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
    }
}

ServeArgs
parse(int argc, char** argv)
{
    ServeArgs a;
    a.problem.groupSize = 24;
    auto need = [&](int i) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(2);
        }
        return std::string(argv[i + 1]);
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--requests")
            a.requests = std::stoi(need(i++));
        else if (flag == "--tenants")
            a.tenants = std::stoi(need(i++));
        else if (flag == "--workers")
            a.workers = std::stoi(need(i++));
        else if (flag == "--threads")
            a.threads = std::stoi(need(i++));
        else if (flag == "--task")
            a.problem.task = parseOrDie(dnn::taskTypeFromName, need(i++));
        else if (flag == "--setting")
            a.problem.setting =
                parseOrDie(accel::settingFromName, need(i++));
        else if (flag == "--bw")
            a.problem.systemBwGbps = std::stod(need(i++));
        else if (flag == "--group")
            a.problem.groupSize = std::stoi(need(i++));
        else if (flag == "--budget")
            a.budget = std::stoll(need(i++));
        else if (flag == "--seed")
            a.seed = std::stoull(need(i++));
        else if (flag == "--objective")
            a.objective = parseOrDie(sched::objectiveFromName, need(i++));
        else if (flag == "--store")
            a.storePath = need(i++);
        else if (flag == "--no-warm")
            a.warm = false;
        else if (flag == "--quiet")
            a.quiet = true;
        else if (flag == "--coalesce")
            a.coalesce = true;
        else if (flag == "--max-queue")
            a.maxQueue = std::stoll(need(i++));
        else if (flag == "--deadline")
            a.deadline = std::stod(need(i++));
        else if (flag == "--metrics-out")
            a.metricsPath = need(i++);
        else if (flag == "--trace-out")
            a.tracePath = need(i++);
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            std::exit(2);
        }
    }
    a.requests = std::max(0, a.requests);
    a.tenants = std::max(1, a.tenants);
    a.workers = std::max(1, a.workers);
    a.problem.groupSize = std::max(1, a.problem.groupSize);
    return a;
}

}  // namespace

int
main(int argc, char** argv)
{
    ServeArgs args = parse(argc, argv);

    serve::ServiceConfig cfg;
    cfg.workers = args.workers;
    cfg.threadsPerRequest = args.threads;
    cfg.storePath = args.storePath;
    cfg.coalesce = args.coalesce;
    cfg.maxQueueDepth = args.maxQueue;
    serve::MappingService service(cfg);
    const bool production_knobs =
        args.coalesce || args.maxQueue > 0 || args.deadline > 0.0;

    std::printf("mapping service: %d workers x %d eval lane(s), task %s, "
                "%s @ %g GB/s, group %d, cold budget %lld%s\n",
                args.workers, args.threads,
                dnn::taskTypeName(args.problem.task).c_str(),
                accel::settingName(args.problem.setting).c_str(),
                args.problem.systemBwGbps, args.problem.groupSize,
                static_cast<long long>(args.budget),
                args.storePath.empty()
                    ? ""
                    : (", store " + args.storePath).c_str());
    if (service.store().size() > 0)
        std::printf("loaded %lld stored solution(s) — starting warm\n",
                    static_cast<long long>(service.store().size()));

    // Synthetic multi-tenant trace: round-robin tenants, independently
    // drawn groups (distinct workload seeds), a high-priority request
    // every 5th submission.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<serve::MapResponse>> futures;
    futures.reserve(args.requests);
    for (int i = 0; i < args.requests; ++i) {
        serve::MapRequest req;
        req.tenant = "tenant-" + std::to_string(i % args.tenants);
        req.priority = (i % 5 == 0) ? 0 : 1;
        req.problem = args.problem;
        req.problem.workloadSeed = args.seed + i;
        req.search.objective = args.objective;
        req.search.sampleBudget = args.budget;
        req.search.seed = args.seed + i;
        req.search.warmStart = args.warm;
        req.deadlineSeconds = args.deadline;
        futures.push_back(service.submit(std::move(req)));
    }

    if (!args.quiet)
        std::printf("\n%-4s %-10s %4s %-6s %12s %9s %9s %9s\n", "id",
                    "tenant", "prio", "path", "fitness", "samples",
                    "wait-ms", "serve-ms");
    for (int i = 0; i < args.requests; ++i) {
        serve::MapResponse r = futures[i].get();
        if (args.quiet)
            continue;
        const char* path =
            r.shed ? "shed"
                   : (r.coalesced
                          ? "coal"
                          : (r.warmStart ? (r.exactHit ? "warm" : "warm~")
                                         : "cold"));
        std::printf("%-4d %-10s %4d %-6s %12.2f %9lld %9.1f %9.1f\n", i,
                    ("tenant-" + std::to_string(i % args.tenants)).c_str(),
                    (i % 5 == 0) ? 0 : 1, path, r.bestFitness,
                    static_cast<long long>(r.samplesUsed),
                    r.waitSeconds * 1e3, r.serviceSeconds * 1e3);
    }
    service.drain();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    serve::ServiceStats s = service.stats();
    serve::StoreStats st = service.store().stats();
    exec::CostCacheStats cc = exec::CostCache::global().stats();
    std::printf("\nserved %lld requests in %.2f s (%.1f req/s): %lld cold, "
                "%lld warm\n",
                static_cast<long long>(s.served), wall,
                s.served / std::max(wall, 1e-9),
                static_cast<long long>(s.coldServed),
                static_cast<long long>(s.warmServed));
    std::printf("samples spent %lld, saved by warm starts %lld (%.0f%% of "
                "a cold-only run)\n",
                static_cast<long long>(s.samplesSpent),
                static_cast<long long>(s.samplesSaved),
                100.0 * s.samplesSaved /
                    std::max<int64_t>(1, s.samplesSpent + s.samplesSaved));
    if (production_knobs)
        std::printf("production controls: %lld coalesced, %lld shed\n",
                    static_cast<long long>(s.coalesced),
                    static_cast<long long>(s.shed));
    std::printf("store: %lld entries, %lld exact + %lld coarse hits / %lld "
                "lookups, mean transfer quality %.2f\n",
                static_cast<long long>(service.store().size()),
                static_cast<long long>(st.exactHits),
                static_cast<long long>(st.coarseHits),
                static_cast<long long>(st.lookups),
                st.meanTransferQuality());
    std::printf("cost cache: %lld hits / %lld misses (%.0f%% hit rate), "
                "%lld entries\n",
                static_cast<long long>(cc.hits),
                static_cast<long long>(cc.misses), 100.0 * cc.hitRate(),
                static_cast<long long>(cc.entries));

    service.stop();

    if (!args.metricsPath.empty() || !args.tracePath.empty()) {
        // One captureGlobal drains the tracer once; both artifacts
        // share the same snapshot.
        obs::MetricsSnapshot snap =
            obs::SnapshotWriter::captureGlobal("m3e_serve");
        if (!args.metricsPath.empty()) {
            if (!obs::SnapshotWriter::write(snap, args.metricsPath))
                return 1;
            std::printf("metrics round-trip OK: %s\n",
                        args.metricsPath.c_str());
        }
        if (!args.tracePath.empty()) {
            obs::ChromeTrace trace = obs::ChromeTrace::fromSnapshot(snap);
            if (!obs::TraceExporter::write(trace, args.tracePath))
                return 1;
            std::printf("trace round-trip OK: %s\n",
                        args.tracePath.c_str());
        }
    }
    return 0;
}
