/**
 * @file
 * m3e_dyn — replay a timed dynamic-workload trace (src/dyn/).
 *
 * Loads a "magma-workload-trace v1" file (see examples/specs/*.trace),
 * replays its Arrive/Depart/Swap events through a dyn::EventEngine and
 * prints one line per event: how the incremental re-map was seeded
 * (previous mapping / store / archive / cold), the budget it got, the
 * resulting fitness, and the reconfiguration bill charged inside the
 * schedule simulation (moved/new/kept jobs, stall seconds).
 *
 * Usage:
 *   m3e_dyn --trace FILE [--method NAME] [--objective NAME]
 *           [--budget N] [--remap-budget N] [--no-warm] [--threads N]
 *           [--seed N] [--stall SECONDS] [--no-reload]
 *           [--store PATH] [--archive PATH]
 *           [--timeline-out FILE] [--metrics-out FILE]
 *           [--trace-out FILE] [--quiet]
 *
 * --budget is the cold per-event budget, --remap-budget the incremental
 * one (0 = budget/4, the Table V warm regime); --no-warm ablates
 * transfer (every event pays the cold budget). --store loads/saves a
 * serve::MappingStore as the second warm tier; --archive loads a
 * mo::ParetoArchive as the third. --timeline-out writes the schema-1
 * per-event JSON artifact; --metrics-out snapshots the obs registry
 * (dyn.events / dyn.remaps counters, dyn.remap spans at
 * MAGMA_METRICS=trace). --trace-out exports the same drained spans as
 * a Chrome trace-event JSON (open in ui.perfetto.dev); both snapshots
 * share one drain, and their round-trip confirmations go to stderr so
 * stdout stays byte-stable across metrics levels.
 *
 * Stdout is bitwise deterministic for a fixed trace + flags at ANY
 * --threads count (CI diffs 1 vs 4); wall-clock cost appears only in
 * the JSON artifacts.
 */

#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/textnum.h"
#include "dyn/runner.h"
#include "obs/snapshot.h"
#include "obs/trace_export.h"
#include "sched/evaluator.h"

using namespace magma;

namespace {

struct DynArgs {
    std::string tracePath;
    dyn::DynConfig cfg;
    std::string storePath;
    std::string archivePath;
    std::string timelinePath;
    std::string metricsPath;
    std::string chromeTracePath;
    bool quiet = false;
};

template <typename Fn>
auto
parseOrDie(Fn&& fn, const std::string& value)
{
    try {
        return fn(value);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
    }
}

DynArgs
parse(int argc, char** argv)
{
    DynArgs a;
    a.cfg.search.sampleBudget = 2000;
    auto need = [&](int i) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(2);
        }
        return std::string(argv[i + 1]);
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--trace")
            a.tracePath = need(i++);
        else if (flag == "--method")
            a.cfg.search.method = need(i++);
        else if (flag == "--objective")
            a.cfg.search.objective =
                parseOrDie(sched::objectiveFromName, need(i++));
        else if (flag == "--budget")
            a.cfg.search.sampleBudget = std::stoll(need(i++));
        else if (flag == "--remap-budget")
            a.cfg.remapBudget = std::stoll(need(i++));
        else if (flag == "--no-warm")
            a.cfg.warmRemap = false;
        else if (flag == "--threads")
            a.cfg.search.threads = std::stoi(need(i++));
        else if (flag == "--seed")
            a.cfg.search.seed = std::stoull(need(i++));
        else if (flag == "--stall")
            a.cfg.reconfig.retileStallSeconds = std::stod(need(i++));
        else if (flag == "--no-reload")
            a.cfg.reconfig.chargeWeightReload = false;
        else if (flag == "--store")
            a.storePath = need(i++);
        else if (flag == "--archive")
            a.archivePath = need(i++);
        else if (flag == "--timeline-out")
            a.timelinePath = need(i++);
        else if (flag == "--metrics-out")
            a.metricsPath = need(i++);
        else if (flag == "--trace-out")
            a.chromeTracePath = need(i++);
        else if (flag == "--quiet")
            a.quiet = true;
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            std::exit(2);
        }
    }
    if (a.tracePath.empty()) {
        std::fprintf(stderr,
                     "m3e_dyn: --trace FILE is required (see "
                     "examples/specs/*.trace)\n");
        std::exit(2);
    }
    return a;
}

}  // namespace

int
main(int argc, char** argv)
{
    DynArgs args = parse(argc, argv);

    dyn::WorkloadTrace trace;
    try {
        trace = dyn::WorkloadTrace::load(args.tracePath);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "m3e_dyn: %s\n", e.what());
        return 1;
    }

    serve::MappingStore store;
    if (!args.storePath.empty()) {
        try {
            store.loadFile(args.storePath);  // absent file: start cold
        } catch (const std::exception& e) {
            std::fprintf(stderr, "m3e_dyn: ignoring store '%s': %s\n",
                         args.storePath.c_str(), e.what());
            store.clear();
        }
        args.cfg.store = &store;
    }
    mo::ParetoArchive archive;
    if (!args.archivePath.empty()) {
        try {
            archive = mo::ParetoArchive::load(args.archivePath);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "m3e_dyn: %s\n", e.what());
            return 1;
        }
        args.cfg.archive = &archive;
    }

    std::printf("dynamic replay: %zu events, task %s, %s @ %s GB/s, "
                "method %s, objective %s, cold budget %lld, remap budget "
                "%lld%s\n",
                trace.events.size(),
                dnn::taskTypeName(trace.base.task).c_str(),
                accel::settingName(trace.base.setting).c_str(),
                common::formatDouble(trace.base.systemBwGbps).c_str(),
                args.cfg.search.method.c_str(),
                sched::objectiveName(args.cfg.search.objective).c_str(),
                static_cast<long long>(args.cfg.search.sampleBudget),
                static_cast<long long>(args.cfg.remapBudget),
                args.cfg.warmRemap ? "" : " (warm remap OFF)");

    dyn::RunnerOptions opts;
    opts.timelinePath = args.timelinePath;
    opts.printEvents = !args.quiet;
    dyn::Runner runner(args.cfg, opts);
    dyn::DynReport report;
    try {
        report = runner.run(trace);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "m3e_dyn: %s\n", e.what());
        return 1;
    }
    if (args.quiet)
        std::printf("%s\n", dyn::summaryLine(report.result).c_str());

    // Artifact notes go to stderr: stdout stays bitwise comparable
    // across runs that write to different output paths.
    if (!args.timelinePath.empty())
        std::fprintf(stderr, "timeline written: %s\n",
                     args.timelinePath.c_str());
    if (!args.storePath.empty()) {
        if (!store.saveFile(args.storePath)) {
            std::fprintf(stderr, "m3e_dyn: could not save store '%s'\n",
                         args.storePath.c_str());
            return 1;
        }
        std::fprintf(stderr, "store saved: %s (%lld entries)\n",
                     args.storePath.c_str(),
                     static_cast<long long>(store.size()));
    }
    if (!args.metricsPath.empty() || !args.chromeTracePath.empty()) {
        // One capture feeds both artifacts: drain() is destructive, so
        // the metrics snapshot and the Chrome trace must share it.
        obs::MetricsSnapshot snap =
            obs::SnapshotWriter::captureGlobal("m3e_dyn");
        if (!args.metricsPath.empty()) {
            if (!obs::SnapshotWriter::write(snap, args.metricsPath))
                return 1;
            std::fprintf(stderr, "metrics round-trip OK: %s\n",
                         args.metricsPath.c_str());
        }
        if (!args.chromeTracePath.empty()) {
            obs::ChromeTrace trace = obs::ChromeTrace::fromSnapshot(snap);
            if (!obs::TraceExporter::write(trace, args.chromeTracePath))
                return 1;
            std::fprintf(stderr, "trace round-trip OK: %s\n",
                         args.chromeTracePath.c_str());
        }
    }
    return 0;
}
