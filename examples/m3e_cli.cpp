/**
 * @file
 * m3e_cli — command-line driver for the M3E framework, built on the
 * declarative api/ layer: flags (or a spec file) populate an
 * api::ExperimentSpec, api::Runner executes it, and the result is an
 * api::RunReport that can be written to disk and re-parsed exactly.
 *
 * Usage:
 *   m3e_cli [--spec FILE] [--task Vision|Lang|Recom|Mix] [--setting S1..S6]
 *           [--bw GBPS] [--group N] [--budget N] [--seed N]
 *           [--method NAME | --all] [--objective NAME]
 *           [--objectives LIST] [--front-out FILE] [--flexible]
 *           [--timeline] [--threads N] [--eval flat|reference] [--stats]
 *           [--report FILE] [--metrics-out FILE] [--trace-out FILE]
 *           [--list-methods]
 *
 * --spec FILE loads a key=value experiment spec (see api::ExperimentSpec;
 * '#' comments allowed); flags AFTER --spec override its fields. --report
 * FILE writes the RunReport artifact and round-trip-verifies it
 * (fromText(written) must equal the in-memory report bitwise).
 * --list-methods prints every registered optimizer with its aliases.
 *
 * --threads N fans candidate evaluation out over N lanes (0 = auto via
 * MAGMA_THREADS env var / hardware concurrency); results are identical
 * at every thread count — only wall-clock changes.
 *
 * --eval selects the evaluation kernel: "flat" (default) scores
 * candidates through the allocation-free sched::FlatEvaluator fast
 * path, "reference" through the original MappingEvaluator object path.
 * The two are bitwise identical on every candidate, so this flag never
 * changes results — it is the fallback lever if the fast path ever
 * misbehaves on new hardware.
 *
 * --stats prints the process-wide exec::CostCache counters (hits, misses,
 * entries) after the run — how much cost-model work memoization skipped —
 * read back through the obs::MetricsRegistry gauges, plus the eval-engine
 * counters when the observability level recorded them, plus (at
 * MAGMA_METRICS=profile) the top-10 profiler nodes by self time.
 *
 * --metrics-out FILE writes the whole process metrics registry (and, at
 * MAGMA_METRICS=trace or profile, the drained span trace and profiler
 * tree) as a schema-1 obs::SnapshotWriter JSON artifact,
 * round-trip-verified like --report.
 *
 * --trace-out FILE exports the drained span trace as a Chrome
 * trace-event / Perfetto JSON file (open it in ui.perfetto.dev),
 * reparse-verified like every artifact. With both --metrics-out and
 * --trace-out the tracer is drained once and shared.
 *
 * The MAGMA_METRICS env var (off|counters|trace|profile, default
 * counters) selects how much is recorded; search results are bitwise
 * identical at every level.
 *
 * --objectives LIST (comma-separated, e.g. "throughput,energy") switches
 * to multi-objective mode: the method (which must implement
 * mo::MultiObjective, e.g. --method nsga2) searches for the whole Pareto
 * front in one run, scoring every objective from a single simulation per
 * candidate. The front is printed as a table; --front-out FILE persists
 * it as a "magma-pareto-front v1" artifact (round-trip-verified, like
 * --report) that ParetoArchive::load can reload for warm starts.
 *
 * Method names are registry names or aliases ("MAGMA", "Herald-like",
 * "stdGA", "cma-es", "ppo2", ...). Objectives: throughput latency energy
 * edp perf-per-watt.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/timeline.h"
#include "api/registry.h"
#include "api/runner.h"
#include "exec/cost_cache.h"
#include "m3e/factory.h"
#include "mo/pareto.h"
#include "obs/snapshot.h"
#include "obs/trace_export.h"

using namespace magma;

namespace {

struct CliArgs {
    api::ExperimentSpec exp;
    bool all = false;
    bool timeline = false;
    bool stats = false;
    std::string reportPath;
    std::string frontPath;
    std::string metricsPath;
    std::string tracePath;
};

/** Parse via fn, mapping std::invalid_argument to a usage error. */
template <typename Fn>
auto
parseOrDie(Fn&& fn, const std::string& value)
{
    try {
        return fn(value);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
    }
}

void
listMethods()
{
    std::printf("%-14s %s\n", "method", "aliases");
    for (const auto& e : api::OptimizerRegistry::global().entries()) {
        std::string aliases;
        for (const std::string& a : e.aliases)
            aliases += (aliases.empty() ? "" : ", ") + a;
        std::printf("%-14s %s\n", e.name.c_str(), aliases.c_str());
    }
}

CliArgs
parse(int argc, char** argv)
{
    CliArgs a;
    a.exp.problem.groupSize = 40;
    a.exp.search.sampleBudget = 2000;  // CLI default: quick runs
    auto need = [&](int i) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(2);
        }
        return std::string(argv[i + 1]);
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--spec") {
            try {
                a.exp = api::ExperimentSpec::fromFile(need(i++));
            } catch (const std::exception& e) {
                std::fprintf(stderr, "--spec: %s\n", e.what());
                std::exit(2);
            }
        } else if (flag == "--task")
            a.exp.problem.task =
                parseOrDie(dnn::taskTypeFromName, need(i++));
        else if (flag == "--setting")
            a.exp.problem.setting =
                parseOrDie(accel::settingFromName, need(i++));
        else if (flag == "--bw")
            a.exp.problem.systemBwGbps = std::stod(need(i++));
        else if (flag == "--group")
            a.exp.problem.groupSize = std::stoi(need(i++));
        else if (flag == "--budget")
            a.exp.search.sampleBudget = std::stoll(need(i++));
        else if (flag == "--seed") {
            // One --seed drives both the workload draw and the search,
            // exactly as before the api/ redesign.
            uint64_t seed = std::stoull(need(i++));
            a.exp.problem.workloadSeed = seed;
            a.exp.search.seed = seed;
        } else if (flag == "--method")
            a.exp.search.method = need(i++);
        else if (flag == "--objective")
            a.exp.search.objective =
                parseOrDie(sched::objectiveFromName, need(i++));
        else if (flag == "--objectives")
            a.exp.search.objectives =
                parseOrDie(sched::objectiveListFromName, need(i++));
        else if (flag == "--front-out")
            a.frontPath = need(i++);
        else if (flag == "--all")
            a.all = true;
        else if (flag == "--flexible")
            a.exp.problem.flexible = true;
        else if (flag == "--timeline")
            a.timeline = true;
        else if (flag == "--stats")
            a.stats = true;
        else if (flag == "--threads")
            a.exp.search.threads = std::stoi(need(i++));
        else if (flag == "--eval")
            a.exp.search.eval =
                parseOrDie(sched::evalModeFromName, need(i++));
        else if (flag == "--report")
            a.reportPath = need(i++);
        else if (flag == "--metrics-out")
            a.metricsPath = need(i++);
        else if (flag == "--trace-out")
            a.tracePath = need(i++);
        else if (flag == "--list-methods") {
            listMethods();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            std::exit(2);
        }
    }
    return a;
}

/** Front table + hypervolume print for multi-objective runs. */
void
printFront(const api::RunReport& rep)
{
    const auto& objectives = rep.search.objectives;
    std::printf("\nPareto front: %zu points (%s)\n", rep.front.size(),
                sched::objectiveListName(objectives).c_str());
    std::printf("%5s", "point");
    for (sched::Objective o : objectives)
        std::printf("  %22s", sched::objectiveName(o).c_str());
    std::printf("\n");
    for (size_t i = 0; i < rep.front.size(); ++i) {
        std::printf("%5zu", i);
        for (double v : rep.front[i].objs)
            // magma-lint: allow(double-format): console front table;
            // the parsed artifact goes through --front-out at %.17g.
            std::printf("  %22.6g", v);
        std::printf("\n");
    }
    mo::ObjectiveVector origin(objectives.size(), 0.0);
    // magma-lint: allow(double-format): console summary, never reparsed.
    std::printf("hypervolume (origin ref): %.6g\n",
                rep.frontArchive().hypervolume(origin));
}

api::RunReport
runOne(api::Runner& runner, const api::ExperimentSpec& exp,
       const CliArgs& args)
{
    api::RunReport rep = runner.run(exp);
    std::printf("%s\n", rep.summaryLine().c_str());
    if (!rep.front.empty())
        printFront(rep);
    if (args.timeline) {
        // Key the problem cache the way the run did: on the primary
        // objective in multi-objective mode.
        m3e::Problem& problem = runner.problem(
            exp.problem, exp.search.objectives.empty()
                             ? exp.search.objective
                             : exp.search.objectives[0]);
        sched::ScheduleResult sim =
            problem.evaluator().evaluate(rep.best, true);
        analysis::TimelineExporter tl(sim, problem.group(),
                                      problem.evaluator().numAccels());
        std::printf("%s", tl.renderGantt(72).c_str());
        std::printf("%s\n", tl.renderBwProfile(72).c_str());
    }
    return rep;
}

/** Write the report artifact and verify it re-parses bitwise. */
void
writeReport(const api::RunReport& rep, const std::string& path)
{
    std::string text = rep.toText();
    {
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write report '%s'\n",
                         path.c_str());
            std::exit(1);
        }
        out << text;
    }
    std::ifstream in(path);
    std::string back((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!(api::RunReport::fromText(back) == rep)) {
        std::fprintf(stderr, "report round-trip FAILED: %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::printf("report round-trip OK: %s\n", path.c_str());
}

/** Persist the Pareto front and verify it reloads bitwise. */
void
writeFront(const api::RunReport& rep, const std::string& path)
{
    mo::ParetoArchive arch = rep.frontArchive();
    try {
        arch.save(path);
        if (!(mo::ParetoArchive::load(path) == arch)) {
            std::fprintf(stderr, "front round-trip FAILED: %s\n",
                         path.c_str());
            std::exit(1);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "--front-out: %s\n", e.what());
        std::exit(1);
    }
    std::printf("front round-trip OK: %s\n", path.c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    CliArgs args = parse(argc, argv);
    api::Runner runner;

    const api::ProblemSpec& ps = args.exp.problem;
    const api::SearchSpec& ss = args.exp.search;
    // Multi-objective runs fix the evaluator on the primary objective.
    sched::Objective header_obj =
        ss.objectives.empty() ? ss.objective : ss.objectives[0];
    std::string obj_label = ss.objectives.empty()
                                ? sched::objectiveName(ss.objective)
                                : sched::objectiveListName(ss.objectives);
    m3e::Problem& problem = runner.problem(ps, header_obj);
    // magma-lint: allow(double-format): console banner, never reparsed.
    std::printf("%s (%s), task %s, BW %g GB/s, group %d, budget %lld, "
                "objective %s\n",
                problem.platform().name.c_str(),
                problem.platform().description.c_str(),
                dnn::taskTypeName(ps.task).c_str(), ps.systemBwGbps,
                ps.groupSize, static_cast<long long>(ss.sampleBudget),
                obj_label.c_str());
    // magma-lint: allow(double-format): console banner, never reparsed.
    std::printf("peak %.0f GFLOP/s, group total %.2f GFLOPs\n\n",
                problem.platform().peakGflops(),
                problem.group().totalFlops() / 1e9);

    api::RunReport last;
    if (args.all) {
        if (!args.reportPath.empty() || !args.frontPath.empty()) {
            std::fprintf(stderr, "--report/--front-out need a single "
                                 "--method (not --all)\n");
            return 2;
        }
        if (!args.exp.search.objectives.empty()) {
            std::fprintf(stderr,
                         "--objectives needs a multi-objective --method "
                         "(not --all; the Table IV line-up is "
                         "single-objective)\n");
            return 2;
        }
        for (m3e::Method m : m3e::paperMethods()) {
            api::ExperimentSpec exp = args.exp;
            exp.search.method = m3e::methodName(m);
            runOne(runner, exp, args);
        }
    } else {
        if (!args.frontPath.empty() && ss.objectives.empty()) {
            std::fprintf(stderr, "--front-out needs --objectives (a "
                                 "single-objective run has no front)\n");
            return 2;
        }
        try {
            last = runOne(runner, args.exp, args);
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
        if (!args.reportPath.empty())
            writeReport(last, args.reportPath);
        if (!args.frontPath.empty())
            writeFront(last, args.frontPath);
    }

    if (args.stats) {
        // Touch the global cache so its gauge provider is registered,
        // then read everything back through the registry — the same
        // numbers --metrics-out snapshots.
        exec::CostCache::global();
        obs::MetricsSnapshot snap = obs::SnapshotWriter::capture(
            "m3e_cli", obs::MetricsRegistry::global());
        auto gauge = [&](const char* name) {
            const obs::GaugeSnap* g = snap.findGauge(name);
            return static_cast<long long>(g ? g->value : 0.0);
        };
        const obs::GaugeSnap* rate =
            snap.findGauge("exec.cost_cache.hit_rate");
        // magma-lint: allow(double-format): console stats, never
        // reparsed (the machine-readable path is --metrics-out).
        std::printf("\ncost cache: %lld hits / %lld misses (%.1f%% hit "
                    "rate), %lld entries\n",
                    gauge("exec.cost_cache.hits"),
                    gauge("exec.cost_cache.misses"),
                    100.0 * (rate ? rate->value : 0.0),
                    gauge("exec.cost_cache.entries"));
        const obs::CounterSnap* cand =
            snap.findCounter("exec.eval.candidates");
        if (cand) {
            auto counter = [&](const char* name) {
                const obs::CounterSnap* c = snap.findCounter(name);
                return static_cast<long long>(c ? c->value : 0);
            };
            std::printf("eval engine: %lld candidates in %lld batches "
                        "(%lld flat / %lld reference), %lld singles\n",
                        static_cast<long long>(cand->value),
                        counter("exec.eval.batches"),
                        counter("sched.flat.candidates"),
                        counter("sched.reference.candidates"),
                        counter("exec.eval.singles"));
        }
        if (!snap.profile.empty()) {
            // Top-10 nodes by exclusive time; stable_sort keeps the
            // deterministic depth-first tree order among ties.
            std::vector<obs::ProfileSnap> top = snap.profile;
            std::stable_sort(top.begin(), top.end(),
                             [](const obs::ProfileSnap& x,
                                const obs::ProfileSnap& y) {
                                 return x.selfSeconds > y.selfSeconds;
                             });
            if (top.size() > 10)
                top.resize(10);
            std::printf("\nprofile (top %zu nodes by self time):\n",
                        top.size());
            for (const obs::ProfileSnap& p : top)
                // magma-lint: allow(double-format): console stats, never
                // reparsed (the machine-readable path is --metrics-out).
                std::printf("  %-44s count=%lld total=%.6fs self=%.6fs\n",
                            p.path.c_str(),
                            static_cast<long long>(p.count),
                            p.totalSeconds, p.selfSeconds);
        }
    }
    if (!args.metricsPath.empty() || !args.tracePath.empty()) {
        // One captureGlobal drains the tracer once; both artifacts
        // share the same snapshot.
        obs::MetricsSnapshot snap =
            obs::SnapshotWriter::captureGlobal("m3e_cli");
        if (!args.metricsPath.empty()) {
            if (!obs::SnapshotWriter::write(snap, args.metricsPath))
                return 1;
            std::printf("metrics round-trip OK: %s\n",
                        args.metricsPath.c_str());
        }
        if (!args.tracePath.empty()) {
            obs::ChromeTrace trace = obs::ChromeTrace::fromSnapshot(snap);
            if (!obs::TraceExporter::write(trace, args.tracePath))
                return 1;
            std::printf("trace round-trip OK: %s\n",
                        args.tracePath.c_str());
        }
    }
    return 0;
}
