/**
 * @file
 * m3e_cli — command-line driver for the M3E framework.
 *
 * Runs any Table IV mapper on any Table III setting/task/BW/group-size
 * combination and reports throughput, makespan and (optionally) the
 * schedule. This is the "just let me try it" entry point a downstream
 * user reaches for before writing code against the API.
 *
 * Usage:
 *   m3e_cli [--task Vision|Lang|Recom|Mix] [--setting S1..S6]
 *           [--bw GBPS] [--group N] [--budget N] [--seed N]
 *           [--method NAME | --all] [--objective NAME]
 *           [--flexible] [--timeline] [--threads N] [--stats]
 *
 * --threads N fans candidate evaluation out over N lanes (0 = auto via
 * MAGMA_THREADS env var / hardware concurrency); results are identical
 * at every thread count — only wall-clock changes.
 *
 * --stats prints the process-wide exec::CostCache counters (hits, misses,
 * entries) after the run — how much cost-model work memoization skipped.
 *
 * Method names are the paper's labels ("MAGMA", "Herald-like", "stdGA",
 * "RL PPO2", ...). Objectives: throughput latency energy edp perf-per-watt.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/timeline.h"
#include "exec/cost_cache.h"
#include "m3e/factory.h"
#include "m3e/problem.h"

using namespace magma;

namespace {

struct CliArgs {
    dnn::TaskType task = dnn::TaskType::Mix;
    accel::Setting setting = accel::Setting::S2;
    double bw = 16.0;
    int group = 40;
    int64_t budget = 2000;
    uint64_t seed = 1;
    std::string method = "MAGMA";
    bool all = false;
    bool flexible = false;
    bool timeline = false;
    bool stats = false;
    int threads = 1;
    sched::Objective objective = sched::Objective::Throughput;
};

dnn::TaskType
parseTask(const std::string& s)
{
    for (dnn::TaskType t : {dnn::TaskType::Vision, dnn::TaskType::Language,
                            dnn::TaskType::Recommendation,
                            dnn::TaskType::Mix})
        if (dnn::taskTypeName(t) == s)
            return t;
    std::fprintf(stderr, "unknown task '%s' (Vision|Lang|Recom|Mix)\n",
                 s.c_str());
    std::exit(2);
}

accel::Setting
parseSetting(const std::string& s)
{
    for (accel::Setting st : {accel::Setting::S1, accel::Setting::S2,
                              accel::Setting::S3, accel::Setting::S4,
                              accel::Setting::S5, accel::Setting::S6})
        if (accel::settingName(st) == s)
            return st;
    std::fprintf(stderr, "unknown setting '%s' (S1..S6)\n", s.c_str());
    std::exit(2);
}

sched::Objective
parseObjective(const std::string& s)
{
    if (s == "throughput")
        return sched::Objective::Throughput;
    if (s == "latency")
        return sched::Objective::Latency;
    if (s == "energy")
        return sched::Objective::Energy;
    if (s == "edp")
        return sched::Objective::EnergyDelay;
    if (s == "perf-per-watt")
        return sched::Objective::PerfPerWatt;
    std::fprintf(stderr, "unknown objective '%s'\n", s.c_str());
    std::exit(2);
}

CliArgs
parse(int argc, char** argv)
{
    CliArgs a;
    auto need = [&](int i) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(2);
        }
        return std::string(argv[i + 1]);
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--task")
            a.task = parseTask(need(i++));
        else if (flag == "--setting")
            a.setting = parseSetting(need(i++));
        else if (flag == "--bw")
            a.bw = std::stod(need(i++));
        else if (flag == "--group")
            a.group = std::stoi(need(i++));
        else if (flag == "--budget")
            a.budget = std::stoll(need(i++));
        else if (flag == "--seed")
            a.seed = std::stoull(need(i++));
        else if (flag == "--method")
            a.method = need(i++);
        else if (flag == "--objective")
            a.objective = parseObjective(need(i++));
        else if (flag == "--all")
            a.all = true;
        else if (flag == "--flexible")
            a.flexible = true;
        else if (flag == "--timeline")
            a.timeline = true;
        else if (flag == "--stats")
            a.stats = true;
        else if (flag == "--threads")
            a.threads = std::stoi(need(i++));
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            std::exit(2);
        }
    }
    return a;
}

void
runOne(m3e::Method method, m3e::Problem& problem, const CliArgs& args)
{
    auto optimizer = m3e::makeOptimizer(method, args.seed);
    opt::SearchOptions opts;
    opts.sampleBudget = args.budget;
    opts.threads = args.threads;
    opt::SearchResult res = optimizer->search(problem.evaluator(), opts);
    sched::ScheduleResult sim =
        problem.evaluator().evaluate(res.best, args.timeline);

    std::printf("%-14s fitness %12.3f (%s)   throughput %9.2f GFLOP/s   "
                "makespan %.4g s   samples %lld\n",
                optimizer->name().c_str(), res.bestFitness,
                sched::objectiveName(problem.evaluator().objective())
                    .c_str(),
                problem.evaluator().throughputGflops(sim.makespanSeconds),
                sim.makespanSeconds,
                static_cast<long long>(res.samplesUsed));
    if (args.timeline) {
        analysis::TimelineExporter tl(sim, problem.group(),
                                      problem.evaluator().numAccels());
        std::printf("%s", tl.renderGantt(72).c_str());
        std::printf("%s\n", tl.renderBwProfile(72).c_str());
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    CliArgs args = parse(argc, argv);

    auto problem =
        args.flexible
            ? m3e::makeFlexibleProblem(args.task, args.setting, args.bw,
                                       args.group, args.seed)
            : m3e::makeProblem(args.task, args.setting, args.bw,
                               args.group, args.seed);
    problem->evaluator().setObjective(args.objective);

    std::printf("%s (%s), task %s, BW %g GB/s, group %d, budget %lld, "
                "objective %s\n",
                problem->platform().name.c_str(),
                problem->platform().description.c_str(),
                dnn::taskTypeName(args.task).c_str(), args.bw, args.group,
                static_cast<long long>(args.budget),
                sched::objectiveName(args.objective).c_str());
    std::printf("peak %.0f GFLOP/s, group total %.2f GFLOPs\n\n",
                problem->platform().peakGflops(),
                problem->group().totalFlops() / 1e9);

    if (args.all) {
        for (m3e::Method m : m3e::paperMethods())
            runOne(m, *problem, args);
    } else {
        runOne(m3e::methodFromName(args.method), *problem, args);
    }

    if (args.stats) {
        exec::CostCacheStats cc = exec::CostCache::global().stats();
        std::printf("\ncost cache: %lld hits / %lld misses (%.1f%% hit "
                    "rate), %lld entries\n",
                    static_cast<long long>(cc.hits),
                    static_cast<long long>(cc.misses),
                    100.0 * cc.hitRate(),
                    static_cast<long long>(cc.entries));
    }
    return 0;
}
