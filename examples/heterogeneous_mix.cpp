/**
 * @file
 * Heterogeneous data-center scenario: a Mix workload (vision + language +
 * recommendation tenants) on the large heterogeneous accelerator S4 under
 * a shrinking bandwidth budget.
 *
 * Demonstrates the paper's central story: when system bandwidth becomes
 * the scarce resource, a BW-aware learned mapping (MAGMA) distributes the
 * BW-hungry jobs over time while the manual heuristics either collapse
 * (AI-MT-like, blind to heterogeneity) or leave throughput on the table
 * (Herald-like, blind to bandwidth). Also renders the winning schedule.
 */

#include <cstdio>

#include "analysis/timeline.h"
#include "baselines/ai_mt_like.h"
#include "baselines/herald_like.h"
#include "m3e/factory.h"
#include "m3e/problem.h"

int
main()
{
    using namespace magma;

    std::printf("Mix tenants on S4 (7x HB-128 + 1x LB-128) across a BW "
                "sweep\n\n");
    std::printf("%8s %14s %14s %14s %10s\n", "BW(GB/s)", "Herald-like",
                "AI-MT-like", "MAGMA", "MAGMA adv");

    for (double bw : {256.0, 64.0, 16.0, 4.0, 1.0}) {
        auto problem = m3e::makeProblem(dnn::TaskType::Mix,
                                        accel::Setting::S4, bw,
                                        /*group_size=*/48, /*seed=*/11);
        const auto& eval = problem->evaluator();
        double herald = eval.fitness(
            baselines::HeraldLike::buildMapping(eval));
        double aimt = eval.fitness(baselines::AiMtLike::buildMapping(eval));

        auto magma_opt = m3e::makeOptimizer(m3e::Method::Magma, 1);
        opt::SearchOptions opts;
        opts.sampleBudget = 3000;
        double magma = magma_opt->search(eval, opts).bestFitness;

        std::printf("%8.0f %14.1f %14.1f %14.1f %9.2fx\n", bw, herald,
                    aimt, magma, magma / std::max(herald, aimt));
    }

    // Visualize the schedule MAGMA found at the tightest budget.
    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S4,
                                    4.0, 48, 11);
    auto magma_opt = m3e::makeOptimizer(m3e::Method::Magma, 1);
    opt::SearchOptions opts;
    opts.sampleBudget = 3000;
    opt::SearchResult best = magma_opt->search(problem->evaluator(), opts);
    sched::ScheduleResult sim =
        problem->evaluator().evaluate(best.best, /*record_timeline=*/true);
    analysis::TimelineExporter tl(sim, problem->group(),
                                  problem->evaluator().numAccels());
    std::printf("\nMAGMA schedule at BW=4 (V=vision L=language "
                "R=recommendation):\n%s", tl.renderGantt(72).c_str());
    std::printf("\nGranted-bandwidth profile over time:\n%s",
                tl.renderBwProfile(72).c_str());
    return 0;
}
