/**
 * @file
 * Quickstart: map a Mix workload onto the small heterogeneous accelerator
 * (S2, Table III) with MAGMA and compare against the manual baselines —
 * written against the declarative api/ layer's three-object flow:
 *
 *   1. describe the experiment  (api::ProblemSpec + api::SearchSpec)
 *   2. run it                   (api::Runner)
 *   3. inspect the result       (api::RunReport)
 *
 * Specs and reports are plain values with exact text round-trips, so the
 * whole experiment (and its outcome) is a portable artifact: save the
 * printed spec to a file and `m3e_cli --spec FILE` replays it.
 */

#include <cstdio>

#include "api/runner.h"

int
main()
{
    using namespace magma;

    // A group of 40 dependency-free jobs drawn from vision, language and
    // recommendation models (the "Mix" task), on S2 with 16 GB/s of
    // shared system bandwidth.
    api::ProblemSpec problem;
    problem.task = dnn::TaskType::Mix;
    problem.setting = accel::Setting::S2;
    problem.systemBwGbps = 16.0;
    problem.groupSize = 40;
    problem.workloadSeed = 7;

    // MAGMA with a 2K-sample budget. threads = 0 fans each generation
    // out over all cores (exec::EvalEngine); the result is identical to
    // a serial search with the same seed — only wall-clock changes.
    api::SearchSpec magma_search;
    magma_search.method = "MAGMA";
    magma_search.sampleBudget = 2000;
    magma_search.seed = 1;
    magma_search.threads = 0;

    api::Runner runner;
    m3e::Problem& prob = runner.problem(problem, magma_search.objective);
    std::printf("Platform %s (%s): %d sub-accelerators, %.0f GFLOP/s peak, "
                "%.0f GB/s system BW\n",
                prob.platform().name.c_str(),
                prob.platform().description.c_str(),
                prob.evaluator().numAccels(), prob.platform().peakGflops(),
                prob.platform().systemBwGbps);
    std::printf("Group: %d jobs, %.2f GFLOPs total\n\n",
                prob.evaluator().groupSize(),
                prob.group().totalFlops() / 1e9);

    // The manual baselines are just other method names: the registry
    // swaps mappers freely (the M3E property the paper leans on).
    std::printf("%-12s %14s\n", "mapper", "GFLOP/s");
    for (const char* method : {"Herald-like", "AI-MT-like"}) {
        api::SearchSpec baseline = magma_search;
        baseline.method = method;
        api::RunReport rep = runner.run(problem, baseline);
        std::printf("%-12s %14.1f\n", rep.method.c_str(), rep.bestFitness);
    }
    api::RunReport rep = runner.run(problem, magma_search);
    std::printf("%-12s %14.1f   (%lld samples, %.2f s)\n",
                rep.method.c_str(), rep.bestFitness,
                static_cast<long long>(rep.samplesUsed), rep.wallSeconds);

    // Inspect MAGMA's winning schedule.
    sched::ScheduleResult sim =
        prob.evaluator().evaluate(rep.best, /*record_timeline=*/true);
    std::printf("\nMAGMA schedule: makespan %.3f ms, %zu BW re-allocation "
                "segments\n",
                sim.makespanSeconds * 1e3, sim.events.size());

    // The experiment itself is one portable key=value artifact:
    api::ExperimentSpec exp{problem, magma_search};
    std::printf("\nSpec (feed this to `m3e_cli --spec FILE`):\n%s",
                exp.toText().c_str());
    return 0;
}
