/**
 * @file
 * Quickstart: map a Mix workload onto the small heterogeneous accelerator
 * (S2, Table III) with MAGMA and compare against the manual baselines.
 *
 * Walks the full M3E flow of Fig. 3: describe jobs -> configure the
 * platform -> pre-process (Job Analyzer) -> optimize -> inspect the
 * resulting schedule.
 */

#include <cstdio>

#include "baselines/ai_mt_like.h"
#include "baselines/herald_like.h"
#include "m3e/problem.h"
#include "opt/magma_ga.h"

int
main()
{
    using namespace magma;

    // A group of 40 dependency-free jobs drawn from vision, language and
    // recommendation models (the "Mix" task), on S2 with 16 GB/s of
    // shared system bandwidth.
    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                    /*system_bw_gbps=*/16.0,
                                    /*group_size=*/40, /*seed=*/7);
    const auto& eval = problem->evaluator();

    std::printf("Platform %s (%s): %d sub-accelerators, %.0f GFLOP/s peak, "
                "%.0f GB/s system BW\n",
                problem->platform().name.c_str(),
                problem->platform().description.c_str(), eval.numAccels(),
                problem->platform().peakGflops(),
                problem->platform().systemBwGbps);
    std::printf("Group: %d jobs, %.2f GFLOPs total\n\n", eval.groupSize(),
                problem->group().totalFlops() / 1e9);

    // Manual baselines (single deterministic mapping each).
    baselines::HeraldLike herald(/*seed=*/1);
    baselines::AiMtLike aimt(/*seed=*/1);
    opt::SearchResult herald_res = herald.search(eval);
    opt::SearchResult aimt_res = aimt.search(eval);

    // MAGMA with a 2K-sample budget. threads = 0 fans each generation
    // out over all cores (exec::EvalEngine); the result is identical to
    // a serial search with the same seed — only wall-clock changes.
    opt::MagmaGa magma_ga(/*seed=*/1);
    opt::SearchOptions opts;
    opts.sampleBudget = 2000;
    opts.threads = 0;
    opt::SearchResult magma_res = magma_ga.search(eval, opts);

    std::printf("%-12s %14s\n", "mapper", "GFLOP/s");
    std::printf("%-12s %14.1f\n", "Herald-like", herald_res.bestFitness);
    std::printf("%-12s %14.1f\n", "AI-MT-like", aimt_res.bestFitness);
    std::printf("%-12s %14.1f   (%lld samples)\n", "MAGMA",
                magma_res.bestFitness,
                static_cast<long long>(magma_res.samplesUsed));

    // Inspect MAGMA's winning schedule.
    sched::ScheduleResult sim =
        eval.evaluate(magma_res.best, /*record_timeline=*/true);
    std::printf("\nMAGMA schedule: makespan %.3f ms, %zu BW re-allocation "
                "segments\n",
                sim.makespanSeconds * 1e3, sim.events.size());
    return 0;
}
