/**
 * @file
 * Warm-start "mapping service" scenario (Section V-C): a host keeps
 * serving groups of batched jobs; instead of re-searching from scratch
 * for every group, the service transfers the previous solution of the
 * same task type and refines it for a few epochs.
 *
 * Shows the Table V effect: transferred solutions start near-optimal
 * (Trf-0-ep), and one epoch of refinement recovers most of the gap to a
 * full search at a tiny fraction of the cost.
 *
 * Since PR 2 this drives the real serving subsystem: every search goes
 * through serve::MappingService, whose fingerprint-keyed MappingStore
 * replaces the hand-held WarmStartEngine of the original loop — the
 * legacy scenario and the production path can no longer drift apart.
 */

#include <cstdio>

#include "serve/service.h"

int
main()
{
    using namespace magma;
    const int group_size = 40;
    const int pop = 40;  // the service sets population = group size
    const dnn::TaskType task = dnn::TaskType::Mix;
    const int64_t full_budget = static_cast<int64_t>(pop) * 50;
    const int64_t one_epoch_budget = static_cast<int64_t>(pop) * 2;

    dnn::WorkloadGenerator gen(5);
    serve::ServiceConfig cfg;
    cfg.workers = 1;
    serve::MappingService service(cfg);

    auto makeRequest = [&](const dnn::JobGroup& group) {
        serve::MapRequest req;
        req.problem.task = task;
        req.problem.setting = accel::Setting::S4;
        req.problem.systemBwGbps = 1.0;
        req.group = group;
        req.search.sampleBudget = full_budget;
        req.search.seed = 1;
        return req;
    };

    std::printf("Serving 6 consecutive %s groups on S4 at BW=1 GB/s\n\n",
                dnn::taskTypeName(task).c_str());
    std::printf("%-8s %14s %16s %14s %12s\n", "group", "cold(full)",
                "warm(Trf-0-ep)", "warm(+1 ep)", "samples saved");

    for (int g = 0; g < 6; ++g) {
        dnn::JobGroup group = gen.makeGroup(task, group_size);

        // Warm path first (Trf-0-ep + one refinement epoch) against the
        // store as previous groups left it; read-only so the cold run
        // below publishes this group's knowledge.
        serve::MapResponse warm;
        bool have_warm = service.store().size() > 0;
        if (have_warm) {
            serve::MapRequest req = makeRequest(group);
            req.warmBudget = one_epoch_budget;
            req.writeBack = false;
            warm = service.submit(std::move(req)).get();
        }

        // Cold full search (the expensive path); writes back to the store.
        serve::MapRequest req = makeRequest(group);
        req.search.warmStart = false;
        serve::MapResponse cold = service.submit(std::move(req)).get();

        if (!have_warm) {
            // First group: nothing to transfer yet.
            std::printf("%-8d %14.1f %16s %14s %12s\n", g,
                        cold.bestFitness, "-", "-", "-");
        } else {
            std::printf("%-8d %14.1f %16.1f %14.1f %11lld\n", g,
                        cold.bestFitness, warm.trf0Fitness,
                        warm.bestFitness,
                        static_cast<long long>(full_budget -
                                               warm.samplesUsed));
        }
    }

    std::printf("\nWarm-started groups reach a competitive mapping with "
                "~%lld samples instead of %lld.\n",
                static_cast<long long>(one_epoch_budget),
                static_cast<long long>(full_budget));
    service.stop();
    return 0;
}
