/**
 * @file
 * Warm-start "mapping service" scenario (Section V-C): a host keeps
 * serving groups of batched jobs; instead of re-searching from scratch
 * for every group, the service transfers the previous solution of the
 * same task type and refines it for a few epochs.
 *
 * Shows the Table V effect: transferred solutions start near-optimal
 * (Trf-0-ep), and one epoch of refinement recovers most of the gap to a
 * full search at a tiny fraction of the cost.
 */

#include <cstdio>

#include "common/rng.h"
#include "m3e/problem.h"
#include "opt/magma_ga.h"
#include "opt/warm_start.h"

int
main()
{
    using namespace magma;
    const int group_size = 40;
    const int pop = 40;
    const dnn::TaskType task = dnn::TaskType::Mix;

    dnn::WorkloadGenerator gen(5);
    opt::WarmStartEngine warm;
    common::Rng rng(5);

    std::printf("Serving 6 consecutive %s groups on S4 at BW=1 GB/s\n\n",
                dnn::taskTypeName(task).c_str());
    std::printf("%-8s %14s %16s %14s %12s\n", "group", "cold(full)",
                "warm(Trf-0-ep)", "warm(+1 ep)", "samples saved");

    for (int g = 0; g < 6; ++g) {
        m3e::Problem problem(gen.makeGroup(task, group_size),
                             accel::makeSetting(accel::Setting::S4, 1.0));
        auto& eval = problem.evaluator();

        // Cold full search (the expensive path).
        opt::MagmaConfig cfg;
        cfg.population = pop;
        opt::MagmaGa cold(1, cfg);
        opt::SearchOptions full;
        full.sampleBudget = pop * 50;
        opt::SearchResult cold_res = cold.search(eval, full);

        if (!warm.has(task)) {
            // First group: nothing to transfer yet.
            std::printf("%-8d %14.1f %16s %14s %12s\n", g,
                        cold_res.bestFitness, "-", "-", "-");
        } else {
            auto seeds = warm.makeSeeds(task, pop, problem.group(),
                                        eval.numAccels(), rng);
            double trf0 = 0.0;
            for (const auto& s : seeds)
                trf0 = std::max(trf0, eval.fitness(s));

            opt::MagmaGa refine(2, cfg);
            opt::SearchOptions one_epoch;
            one_epoch.sampleBudget = pop * 2;
            one_epoch.seeds = seeds;
            double trf1 = refine.search(eval, one_epoch).bestFitness;

            std::printf("%-8d %14.1f %16.1f %14.1f %11lld\n", g,
                        cold_res.bestFitness, trf0, trf1,
                        static_cast<long long>(full.sampleBudget -
                                               one_epoch.sampleBudget));
        }
        warm.store(task, cold_res.best, problem.group());
    }

    std::printf("\nWarm-started groups reach a competitive mapping with "
                "~%d samples instead of %d.\n", pop * 2, pop * 50);
    return 0;
}
