/**
 * @file
 * pareto_tradeoff — the multi-objective story in one program.
 *
 * MAGMA's evaluation sweeps report throughput AND energy AND EDP per
 * workload, but each scalar search optimizes one lens at a time.
 * Practitioners want the trade-off curve. This demo, on Mix/S2 under
 * bandwidth pressure (2 GB/s, where faster mappings genuinely burn more
 * energy):
 *
 *   1. runs the five single-objective MAGMA searches (Section IV-C
 *      lenses) and prints each optimum's FULL objective vector — note
 *      how each one sacrifices the lenses it wasn't optimizing;
 *   2. runs ONE NSGA-II search over throughput+energy, seeded with those
 *      optima (the warm-start path persisted fronts feed), scoring all
 *      objectives from a single simulation per candidate;
 *   3. prints the resulting front and verifies it covers or beats every
 *      scalar optimum — no scalar result dominates any front point, and
 *      every optimum is weakly dominated by some front member.
 *
 * Usage: pareto_tradeoff [--group N] [--budget N] [--seed N]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "m3e/problem.h"
#include "mo/nsga2.h"
#include "mo/vector_fitness.h"
#include "opt/magma_ga.h"

using namespace magma;

int
main(int argc, char** argv)
{
    int group = 30;
    int64_t budget = 2000;
    uint64_t seed = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--group") == 0 && i + 1 < argc)
            group = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
            budget = std::atoll(argv[++i]);
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 10);
    }

    auto problem = m3e::makeProblem(dnn::TaskType::Mix, accel::Setting::S2,
                                    2.0, group, seed);
    std::printf("Mix on S2 at 2 GB/s, group %d, budget %lld per search\n\n",
                group, static_cast<long long>(budget));

    const std::vector<sched::Objective> lenses = {
        sched::Objective::Throughput, sched::Objective::Latency,
        sched::Objective::Energy, sched::Objective::EnergyDelay,
        sched::Objective::PerfPerWatt};
    const std::vector<sched::Objective> pair = {
        sched::Objective::Throughput, sched::Objective::Energy};

    // Step 1: the five scalar optima, each reported under every lens
    // (one simulation per mapping via VectorFitness).
    mo::VectorFitness lens_vf(problem->evaluator(), lenses);
    mo::VectorFitness pair_vf(problem->evaluator(), pair);
    std::printf("%-24s %12s %12s %12s %12s %12s\n", "scalar optimum of",
                "throughput", "latency", "energy", "1/EDP", "perf/W");
    std::vector<sched::Mapping> optima;
    std::vector<mo::ObjectiveVector> optima_pair;
    for (sched::Objective o : lenses) {
        sched::MappingEvaluator scalar(
            problem->group(), problem->platform(), problem->costModel(),
            sched::BwPolicy::Proportional, nullptr, o);
        opt::MagmaGa ga(seed);
        opt::SearchOptions opts;
        opts.sampleBudget = budget;
        opt::SearchResult r = ga.search(scalar, opts);
        mo::ObjectiveVector v = lens_vf.evaluate(r.best);
        std::printf("%-24s %12.5g %12.5g %12.5g %12.5g %12.5g\n",
                    sched::objectiveName(o).c_str(), v[0], v[1], v[2],
                    v[3], v[4]);
        optima.push_back(r.best);
        optima_pair.push_back(pair_vf.evaluate(r.best));
    }

    // Step 2: one NSGA-II run over the throughput/energy pair, warm-
    // started from the scalar optima.
    mo::Nsga2Config cfg;
    cfg.archiveCapacity = 0;
    mo::Nsga2 nsga(seed, cfg);
    opt::SearchOptions opts;
    opts.sampleBudget = budget;
    opts.seeds = optima;
    mo::MoSearchResult res =
        nsga.searchMo(problem->evaluator(), pair, opts);
    const auto& pts = res.front.points();

    std::printf("\nNSGA-II throughput/energy front (%zu points, %lld "
                "samples — every candidate simulated once for both "
                "objectives):\n",
                pts.size(), static_cast<long long>(res.samplesUsed));
    std::printf("%5s %14s %14s\n", "point", "throughput", "energy");
    for (size_t i = 0; i < pts.size(); ++i)
        std::printf("%5zu %14.6g %14.6g\n", i, pts[i].objs[0],
                    pts[i].objs[1]);
    std::printf("hypervolume (origin): %.6g\n",
                res.front.hypervolume({0.0, 0.0}));

    // Step 3: the front must cover or beat all five scalar optima.
    bool ok = true;
    for (size_t k = 0; k < optima_pair.size(); ++k) {
        bool covered = false;
        for (const mo::MoPoint& p : pts) {
            covered |= mo::weaklyDominates(p.objs, optima_pair[k]);
            if (mo::dominates(optima_pair[k], p.objs)) {
                std::printf("!! scalar optimum %s dominates a front "
                            "point\n",
                            sched::objectiveName(lenses[k]).c_str());
                ok = false;
            }
        }
        std::printf("%-24s optimum: %s\n",
                    sched::objectiveName(lenses[k]).c_str(),
                    covered ? "covered by the front" : "NOT covered");
        ok &= covered;
    }
    std::printf("\n%s\n", ok ? "front covers or beats all five scalar "
                               "optima"
                             : "FRONT QUALITY CHECK FAILED");
    return ok ? 0 : 1;
}
