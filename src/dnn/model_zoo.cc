#include "dnn/model_zoo.h"

#include <stdexcept>

namespace magma::dnn {

std::string
taskTypeName(TaskType t)
{
    switch (t) {
    case TaskType::Vision:
        return "Vision";
    case TaskType::Language:
        return "Lang";
    case TaskType::Recommendation:
        return "Recom";
    case TaskType::Mix:
        return "Mix";
    }
    return "?";
}

TaskType
taskTypeFromName(const std::string& name)
{
    for (TaskType t : {TaskType::Vision, TaskType::Language,
                       TaskType::Recommendation, TaskType::Mix})
        if (taskTypeName(t) == name)
            return t;
    throw std::invalid_argument("unknown task '" + name +
                                "' (Vision|Lang|Recom|Mix)");
}

std::vector<Model>
allModels()
{
    std::vector<Model> out = visionModels();
    for (const auto& m : languageModels())
        out.push_back(m);
    for (const auto& m : recomModels())
        out.push_back(m);
    return out;
}

std::vector<Model>
modelsForTask(TaskType t)
{
    switch (t) {
    case TaskType::Vision:
        return visionModels();
    case TaskType::Language:
        return languageModels();
    case TaskType::Recommendation:
        return recomModels();
    case TaskType::Mix:
        return allModels();
    }
    return {};
}

const Model&
findModel(const std::string& name)
{
    static const std::vector<Model> all = allModels();
    for (const auto& m : all)
        if (m.name == name)
            return m;
    throw std::out_of_range("unknown model: " + name);
}

}  // namespace magma::dnn
