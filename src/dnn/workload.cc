#include "dnn/workload.h"

#include "dnn/model_zoo.h"

namespace magma::dnn {

int64_t
JobGroup::totalMacs() const
{
    int64_t total = 0;
    for (const auto& j : jobs)
        total += j.macs();
    return total;
}

int
defaultBatch(TaskType t)
{
    switch (t) {
    case TaskType::Vision:
        return 4;    // images per mini-batch
    case TaskType::Language:
        return 128;  // tokens per chunk
    case TaskType::Recommendation:
        return 4;    // request mini-batch
    case TaskType::Mix:
        return 4;
    }
    return 1;
}

JobGroup
WorkloadGenerator::makeGroup(TaskType task, int group_size)
{
    JobGroup group;
    group.task = task;
    const std::vector<Model> models = modelsForTask(task);

    // Walk layers of a randomly drawn model until the group is full; this
    // mimics several tenants' mini-batches queuing together while keeping
    // consecutive layers of one model present (as a real pool would).
    int id = 0;
    while (group.size() < group_size) {
        const Model& m = models[rng_.uniformInt(
            static_cast<int>(models.size()))];
        int start = rng_.uniformInt(static_cast<int>(m.layers.size()));
        int run = 1 + rng_.uniformInt(8);  // consecutive layers per tenant
        for (int i = 0; i < run && group.size() < group_size; ++i) {
            const LayerShape& layer =
                m.layers[(start + i) % m.layers.size()];
            Job job;
            job.id = id++;
            job.layer = layer;
            job.batch = defaultBatch(m.task);
            job.task = m.task;
            job.model = m.name;
            group.jobs.push_back(job);
        }
    }
    return group;
}

std::vector<JobGroup>
WorkloadGenerator::makeGroups(TaskType task, int group_size, int count)
{
    std::vector<JobGroup> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i)
        out.push_back(makeGroup(task, group_size));
    return out;
}

}  // namespace magma::dnn
