#include "dnn/model_zoo.h"

/**
 * @file
 * Vision model zoo: CONV-dominated classifiers with the published shapes.
 * Spatial extents are output extents after the preceding stride/pool.
 */

namespace magma::dnn {
namespace {

/** ResNet-50 bottleneck: 1x1 reduce, 3x3 (optionally strided), 1x1 expand. */
void
bottleneck(std::vector<LayerShape>& ls, int in_c, int mid, int out_c,
           int out_yx, int stride, bool project)
{
    int in_yx = out_yx * stride;
    ls.push_back(pointwise(mid, in_c, in_yx, in_yx));
    ls.push_back(conv(mid, mid, out_yx, out_yx, 3, 3, stride));
    ls.push_back(pointwise(out_c, mid, out_yx, out_yx));
    if (project)
        ls.push_back(pointwise(out_c, in_c, out_yx, out_yx, stride));
}

Model
makeResNet50()
{
    Model m{"Resnet50", TaskType::Vision, {}};
    auto& ls = m.layers;
    ls.push_back(conv(64, 3, 112, 112, 7, 7, 2));
    struct Stage { int blocks, mid, out, yx, stride; };
    const Stage stages[] = {
        {3, 64, 256, 56, 1},
        {4, 128, 512, 28, 2},
        {6, 256, 1024, 14, 2},
        {3, 512, 2048, 7, 2},
    };
    int in_c = 64;
    for (const auto& st : stages) {
        for (int b = 0; b < st.blocks; ++b) {
            bottleneck(ls, in_c, st.mid, st.out, st.yx,
                       b == 0 ? st.stride : 1, b == 0);
            in_c = st.out;
        }
    }
    ls.push_back(fc(1000, 2048));
    return m;
}

/** MobileNetV2 inverted residual (expand, depthwise, project). */
void
invertedResidual(std::vector<LayerShape>& ls, int in_c, int out_c, int expand,
                 int out_yx, int stride, int kernel = 3)
{
    int exp_c = in_c * expand;
    int in_yx = out_yx * stride;
    if (expand != 1)
        ls.push_back(pointwise(exp_c, in_c, in_yx, in_yx));
    ls.push_back(depthwise(exp_c, out_yx, out_yx, kernel, kernel, stride));
    ls.push_back(pointwise(out_c, exp_c, out_yx, out_yx));
}

Model
makeMobileNetV2()
{
    Model m{"MobileNetv2", TaskType::Vision, {}};
    auto& ls = m.layers;
    ls.push_back(conv(32, 3, 112, 112, 3, 3, 2));
    struct Block { int t, c, n, s, yx; };  // yx = output extent of the block
    const Block blocks[] = {
        {1, 16, 1, 1, 112}, {6, 24, 2, 2, 56}, {6, 32, 3, 2, 28},
        {6, 64, 4, 2, 14},  {6, 96, 3, 1, 14}, {6, 160, 3, 2, 7},
        {6, 320, 1, 1, 7},
    };
    int in_c = 32;
    for (const auto& b : blocks) {
        for (int i = 0; i < b.n; ++i) {
            invertedResidual(ls, in_c, b.c, b.t, b.yx, i == 0 ? b.s : 1);
            in_c = b.c;
        }
    }
    ls.push_back(pointwise(1280, 320, 7, 7));
    ls.push_back(fc(1000, 1280));
    return m;
}

/** ShuffleNetV2 basic unit approximated on the half-channel branch. */
void
shuffleUnit(std::vector<LayerShape>& ls, int in_c, int out_c, int out_yx,
            int stride)
{
    int branch = out_c / 2;
    int in_yx = out_yx * stride;
    ls.push_back(pointwise(branch, stride == 1 ? branch : in_c,
                           in_yx, in_yx));
    ls.push_back(depthwise(branch, out_yx, out_yx, 3, 3, stride));
    ls.push_back(pointwise(branch, branch, out_yx, out_yx));
    if (stride != 1) {
        // second (shortcut) branch of the downsampling unit
        ls.push_back(depthwise(in_c, out_yx, out_yx, 3, 3, stride));
        ls.push_back(pointwise(branch, in_c, out_yx, out_yx));
    }
}

Model
makeShuffleNetV2()
{
    Model m{"Shufflenet", TaskType::Vision, {}};
    auto& ls = m.layers;
    ls.push_back(conv(24, 3, 112, 112, 3, 3, 2));
    struct Stage { int out_c, repeat, yx; };
    const Stage stages[] = {{116, 4, 28}, {232, 8, 14}, {464, 4, 7}};
    int in_c = 24;
    for (const auto& st : stages) {
        for (int i = 0; i < st.repeat; ++i) {
            shuffleUnit(ls, in_c, st.out_c, st.yx, i == 0 ? 2 : 1);
            in_c = st.out_c;
        }
    }
    ls.push_back(pointwise(1024, 464, 7, 7));
    ls.push_back(fc(1000, 1024));
    return m;
}

/** SqueezeNet fire module: squeeze 1x1 then parallel 1x1/3x3 expands. */
void
fire(std::vector<LayerShape>& ls, int in_c, int squeeze, int e1, int e3,
     int yx)
{
    ls.push_back(pointwise(squeeze, in_c, yx, yx));
    ls.push_back(pointwise(e1, squeeze, yx, yx));
    ls.push_back(conv(e3, squeeze, yx, yx, 3, 3, 1));
}

Model
makeSqueezeNet()
{
    Model m{"SqueezeNet", TaskType::Vision, {}};
    auto& ls = m.layers;
    ls.push_back(conv(96, 3, 54, 54, 7, 7, 2));
    fire(ls, 96, 16, 64, 64, 54);
    fire(ls, 128, 16, 64, 64, 54);
    fire(ls, 128, 32, 128, 128, 27);
    fire(ls, 256, 32, 128, 128, 27);
    fire(ls, 256, 48, 192, 192, 13);
    fire(ls, 384, 48, 192, 192, 13);
    fire(ls, 384, 64, 256, 256, 13);
    fire(ls, 512, 64, 256, 256, 13);
    ls.push_back(pointwise(1000, 512, 13, 13));
    return m;
}

Model
makeVgg16()
{
    Model m{"VGG16", TaskType::Vision, {}};
    auto& ls = m.layers;
    struct C { int k, c, yx; };
    const C convs[] = {
        {64, 3, 224},   {64, 64, 224},  {128, 64, 112}, {128, 128, 112},
        {256, 128, 56}, {256, 256, 56}, {256, 256, 56}, {512, 256, 28},
        {512, 512, 28}, {512, 512, 28}, {512, 512, 14}, {512, 512, 14},
        {512, 512, 14},
    };
    for (const auto& cdef : convs)
        ls.push_back(conv(cdef.k, cdef.c, cdef.yx, cdef.yx, 3, 3, 1));
    ls.push_back(fc(4096, 25088));
    ls.push_back(fc(4096, 4096));
    ls.push_back(fc(1000, 4096));
    return m;
}

/** GoogLeNet inception module with the published branch widths. */
void
inception(std::vector<LayerShape>& ls, int in_c, int c1, int c3r, int c3,
          int c5r, int c5, int cp, int yx)
{
    ls.push_back(pointwise(c1, in_c, yx, yx));
    ls.push_back(pointwise(c3r, in_c, yx, yx));
    ls.push_back(conv(c3, c3r, yx, yx, 3, 3, 1));
    ls.push_back(pointwise(c5r, in_c, yx, yx));
    ls.push_back(conv(c5, c5r, yx, yx, 5, 5, 1));
    ls.push_back(pointwise(cp, in_c, yx, yx));
}

Model
makeGoogLeNet()
{
    Model m{"GoogLeNet", TaskType::Vision, {}};
    auto& ls = m.layers;
    ls.push_back(conv(64, 3, 112, 112, 7, 7, 2));
    ls.push_back(pointwise(64, 64, 56, 56));
    ls.push_back(conv(192, 64, 56, 56, 3, 3, 1));
    inception(ls, 192, 64, 96, 128, 16, 32, 32, 28);    // 3a
    inception(ls, 256, 128, 128, 192, 32, 96, 64, 28);  // 3b
    inception(ls, 480, 192, 96, 208, 16, 48, 64, 14);   // 4a
    inception(ls, 512, 160, 112, 224, 24, 64, 64, 14);  // 4b
    inception(ls, 512, 128, 128, 256, 24, 64, 64, 14);  // 4c
    inception(ls, 512, 112, 144, 288, 32, 64, 64, 14);  // 4d
    inception(ls, 528, 256, 160, 320, 32, 128, 128, 14);// 4e
    inception(ls, 832, 256, 160, 320, 32, 128, 128, 7); // 5a
    inception(ls, 832, 384, 192, 384, 48, 128, 128, 7); // 5b
    ls.push_back(fc(1000, 1024));
    return m;
}

Model
makeMnasNet()
{
    Model m{"MnasNet", TaskType::Vision, {}};
    auto& ls = m.layers;
    ls.push_back(conv(32, 3, 112, 112, 3, 3, 2));
    // SepConv head
    ls.push_back(depthwise(32, 112, 112, 3, 3, 1));
    ls.push_back(pointwise(16, 32, 112, 112));
    struct Block { int t, c, n, s, yx, k; };
    const Block blocks[] = {
        {3, 24, 3, 2, 56, 3}, {3, 40, 3, 2, 28, 5}, {6, 80, 3, 2, 14, 3},
        {6, 96, 2, 1, 14, 3}, {6, 192, 4, 2, 7, 5}, {6, 320, 1, 1, 7, 3},
    };
    int in_c = 16;
    for (const auto& b : blocks) {
        for (int i = 0; i < b.n; ++i) {
            invertedResidual(ls, in_c, b.c, b.t, b.yx, i == 0 ? b.s : 1, b.k);
            in_c = b.c;
        }
    }
    ls.push_back(pointwise(1280, 320, 7, 7));
    ls.push_back(fc(1000, 1280));
    return m;
}

}  // namespace

const std::vector<Model>&
visionModels()
{
    static const std::vector<Model> models = {
        makeMobileNetV2(), makeResNet50(),  makeShuffleNetV2(),
        makeSqueezeNet(),  makeVgg16(),     makeGoogLeNet(),
        makeMnasNet(),
    };
    return models;
}

}  // namespace magma::dnn
