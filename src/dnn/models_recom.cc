#include "dnn/model_zoo.h"

/**
 * @file
 * Recommendation model zoo. MLP towers and attention units are lowered to
 * FC layers (Section II-A models attention as several FCs); embedding
 * lookups run on the host CPU and do not produce accelerator jobs.
 */

namespace magma::dnn {
namespace {

/** Chain of FC layers given the width sequence (input first). */
void
mlp(std::vector<LayerShape>& ls, std::initializer_list<int> widths)
{
    int prev = -1;
    for (int w : widths) {
        if (prev > 0)
            ls.push_back(fc(w, prev));
        prev = w;
    }
}

Model
makeDlrm()
{
    Model m{"DLRM", TaskType::Recommendation, {}};
    mlp(m.layers, {13, 512, 256, 64});    // bottom MLP over dense features
    mlp(m.layers, {512, 512, 256, 1});    // top MLP over interactions
    return m;
}

Model
makeWideDeep()
{
    Model m{"WideDeep", TaskType::Recommendation, {}};
    mlp(m.layers, {750, 1024, 512, 256, 1});  // deep tower
    return m;
}

Model
makeNcf()
{
    Model m{"NCF", TaskType::Recommendation, {}};
    mlp(m.layers, {256, 128, 64, 32, 1});  // NeuMF MLP tower
    return m;
}

Model
makeDin()
{
    Model m{"DIN", TaskType::Recommendation, {}};
    // attention unit MLPs (per-behaviour activation weights)
    mlp(m.layers, {144, 36, 1});
    mlp(m.layers, {144, 36, 1});
    // prediction MLP
    mlp(m.layers, {512, 200, 80, 2});
    return m;
}

Model
makeDien()
{
    Model m{"DIEN", TaskType::Recommendation, {}};
    // two GRU stages lowered to gate GEMMs (3 gates x hidden 128)
    mlp(m.layers, {256, 384});
    mlp(m.layers, {256, 384});
    // attention unit + prediction MLP
    mlp(m.layers, {144, 36, 1});
    mlp(m.layers, {512, 200, 80, 2});
    return m;
}

}  // namespace

const std::vector<Model>&
recomModels()
{
    static const std::vector<Model> models = {
        makeDlrm(), makeWideDeep(), makeNcf(), makeDin(), makeDien(),
    };
    return models;
}

}  // namespace magma::dnn
