#include "dnn/model_zoo.h"

/**
 * @file
 * Language model zoo. Following Section II-A, transformer blocks are
 * lowered to FC jobs with correct MAC counts:
 *   Q/K/V projections   -> 3x fc(hidden, hidden)
 *   attention scores    -> fc(seq, hidden)  (each token dotted with `seq`
 *                          keys of `hidden` total dims across heads)
 *   attention context   -> fc(hidden, seq)  (weighted sum of `seq` values)
 *   output projection   -> fc(hidden, hidden)
 *   feed-forward        -> fc(ff, hidden), fc(hidden, ff)
 * Embedding lookups stay on the host and are not emitted.
 */

namespace magma::dnn {
namespace {

void
transformerLayer(std::vector<LayerShape>& ls, int hidden, int ff, int seq)
{
    ls.push_back(fc(hidden, hidden));  // Q
    ls.push_back(fc(hidden, hidden));  // K
    ls.push_back(fc(hidden, hidden));  // V
    ls.push_back(fc(seq, hidden));     // scores
    ls.push_back(fc(hidden, seq));     // context
    ls.push_back(fc(hidden, hidden));  // output projection
    ls.push_back(fc(ff, hidden));      // FFN up
    ls.push_back(fc(hidden, ff));      // FFN down
}

Model
makeTransformer(const std::string& name, int layers, int hidden, int ff,
                int seq)
{
    Model m{name, TaskType::Language, {}};
    for (int i = 0; i < layers; ++i)
        transformerLayer(m.layers, hidden, ff, seq);
    return m;
}

/**
 * MobileBERT: 24 thin blocks with a 128-wide intra-block bottleneck,
 * 512-wide inter-block body and 4 stacked FFNs per block.
 */
Model
makeMobileBert()
{
    Model m{"MobileBert", TaskType::Language, {}};
    auto& ls = m.layers;
    const int body = 512, bottleneck = 128, ffn = 512, seq = 512;
    for (int i = 0; i < 24; ++i) {
        ls.push_back(fc(bottleneck, body));      // input bottleneck
        ls.push_back(fc(bottleneck, bottleneck));  // Q
        ls.push_back(fc(bottleneck, bottleneck));  // K
        ls.push_back(fc(bottleneck, bottleneck));  // V
        ls.push_back(fc(seq, bottleneck));         // scores
        ls.push_back(fc(bottleneck, seq));         // context
        ls.push_back(fc(bottleneck, bottleneck));  // output proj
        for (int f = 0; f < 4; ++f) {              // stacked FFNs
            ls.push_back(fc(ffn, bottleneck));
            ls.push_back(fc(bottleneck, ffn));
        }
        ls.push_back(fc(body, bottleneck));      // output bottleneck
    }
    return m;
}

}  // namespace

const std::vector<Model>&
languageModels()
{
    static const std::vector<Model> models = {
        makeTransformer("GPT2", 12, 768, 3072, 1024),
        makeMobileBert(),
        makeTransformer("TransformerXL", 12, 512, 2048, 512),
        makeTransformer("BERT", 12, 768, 3072, 512),
        makeTransformer("XLM", 12, 1024, 4096, 256),
        makeTransformer("T5-small", 12, 512, 2048, 512),
    };
    return models;
}

}  // namespace magma::dnn
