#ifndef MAGMA_DNN_LAYER_H_
#define MAGMA_DNN_LAYER_H_

#include <cstdint>
#include <string>

namespace magma::dnn {

/**
 * DNN layer kinds the cost model understands.
 *
 * Following the paper (Section II-A): vision models are dominated by 2-D /
 * depth-wise / point-wise convolutions plus a trailing FC; language and
 * recommendation models are modeled as collections of FC (GEMM) jobs
 * (MLPs, attention projections and attention score/context products are
 * "modeled as several FCs"). Embedding lookups stay on the CPU host and are
 * therefore not layer jobs.
 */
enum class LayerType {
    Conv2d,           ///< regular 2-D convolution
    DepthwiseConv2d,  ///< per-channel convolution (K == C groups)
    PointwiseConv2d,  ///< 1x1 convolution (R == S == 1)
    FullyConnected,   ///< GEMM: K outputs from C inputs
};

/** Human-readable layer-type name. */
std::string layerTypeName(LayerType t);

/**
 * Shape of one layer in output-centric form.
 *
 * `k` output channels (or FC output features), `c` input channels (FC input
 * features), `y` x `x` output spatial extent (1 for FC), `r` x `s` filter
 * extent (1 for FC / pointwise), `stride` convolution stride.
 *
 * For DepthwiseConv2d, `k` must equal `c` and each channel convolves
 * independently with one rxs filter.
 */
struct LayerShape {
    LayerType type = LayerType::Conv2d;
    int k = 1;
    int c = 1;
    int y = 1;
    int x = 1;
    int r = 1;
    int s = 1;
    int stride = 1;

    /** Input spatial height implied by output height, filter and stride. */
    int inY() const { return (y - 1) * stride + r; }
    /** Input spatial width implied by output width, filter and stride. */
    int inX() const { return (x - 1) * stride + s; }

    /** Multiply-accumulates for one sample of this layer. */
    int64_t macsPerSample() const;
    /** Weight parameter count. */
    int64_t weightElems() const;
    /** Input activation elements for one sample. */
    int64_t inputElemsPerSample() const;
    /** Output activation elements for one sample. */
    int64_t outputElemsPerSample() const;

    /** Structural equality (used to memoise cost-model queries). */
    bool operator==(const LayerShape& o) const = default;

    /** Compact shape string, e.g. "CONV k256 c128 y14 x14 r3 s3 /1". */
    std::string toString() const;
};

/** Convenience constructors used by the model zoo. */
LayerShape conv(int k, int c, int out_y, int out_x, int r, int s,
                int stride = 1);
LayerShape depthwise(int c, int out_y, int out_x, int r, int s,
                     int stride = 1);
LayerShape pointwise(int k, int c, int out_y, int out_x, int stride = 1);
LayerShape fc(int k, int c);

}  // namespace magma::dnn

#endif  // MAGMA_DNN_LAYER_H_
