#ifndef MAGMA_DNN_MODEL_ZOO_H_
#define MAGMA_DNN_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "dnn/model.h"

namespace magma::dnn {

/**
 * The model collection of Section VI-A1, hand-lowered to accelerator jobs.
 *
 * Vision:          MobileNetV2, ResNet-50, ShuffleNetV2, SqueezeNet, VGG16,
 *                  GoogLeNet, MnasNet.
 * Language:        GPT-2(small), BERT-base, MobileBERT, Transformer-XL,
 *                  XLM, T5-small. Attention and MLP blocks are lowered to
 *                  FC layers with the published hidden/FF/sequence sizes.
 * Recommendation:  DLRM, Wide&Deep, NCF, DIN, DIEN. MLP towers are lowered
 *                  to FC layers; embedding lookups stay on the host CPU
 *                  (Section II-A) and are not emitted.
 */
const std::vector<Model>& visionModels();
const std::vector<Model>& languageModels();
const std::vector<Model>& recomModels();

/** All models of all three categories. */
std::vector<Model> allModels();

/**
 * Models participating in a task. Mix returns the union of all three
 * categories (Section VI-A2's "complex task ... involved simultaneously").
 */
std::vector<Model> modelsForTask(TaskType t);

/** Lookup by name; throws std::out_of_range for unknown names. */
const Model& findModel(const std::string& name);

}  // namespace magma::dnn

#endif  // MAGMA_DNN_MODEL_ZOO_H_
