#ifndef MAGMA_DNN_MODEL_H_
#define MAGMA_DNN_MODEL_H_

#include <string>
#include <vector>

#include "dnn/layer.h"

namespace magma::dnn {

/**
 * Task categories the paper's benchmark covers (Section VI-A2).
 * Mix draws from all three.
 */
enum class TaskType { Vision, Language, Recommendation, Mix };

/** Human-readable task name ("Vision", "Lang", "Recom", "Mix"). */
std::string taskTypeName(TaskType t);

/** Parse a taskTypeName(); throws std::invalid_argument. */
TaskType taskTypeFromName(const std::string& name);

/**
 * One DNN model: an ordered list of accelerator-visible layers.
 *
 * Language/recommendation attention and MLP blocks are pre-lowered into FC
 * layers (the paper models them that way); embedding lookups are excluded
 * because they run on the CPU host.
 */
struct Model {
    std::string name;
    TaskType task = TaskType::Vision;
    std::vector<LayerShape> layers;

    /** Total MACs for one sample across all layers. */
    int64_t macsPerSample() const
    {
        int64_t total = 0;
        for (const auto& l : layers)
            total += l.macsPerSample();
        return total;
    }
};

}  // namespace magma::dnn

#endif  // MAGMA_DNN_MODEL_H_
