#include "dnn/layer.h"

#include <sstream>

namespace magma::dnn {

std::string
layerTypeName(LayerType t)
{
    switch (t) {
    case LayerType::Conv2d:
        return "CONV";
    case LayerType::DepthwiseConv2d:
        return "DWCONV";
    case LayerType::PointwiseConv2d:
        return "PWCONV";
    case LayerType::FullyConnected:
        return "FC";
    }
    return "?";
}

int64_t
LayerShape::macsPerSample() const
{
    int64_t spatial = static_cast<int64_t>(y) * x * r * s;
    if (type == LayerType::DepthwiseConv2d)
        return static_cast<int64_t>(c) * spatial;
    return static_cast<int64_t>(k) * c * spatial;
}

int64_t
LayerShape::weightElems() const
{
    if (type == LayerType::DepthwiseConv2d)
        return static_cast<int64_t>(c) * r * s;
    return static_cast<int64_t>(k) * c * r * s;
}

int64_t
LayerShape::inputElemsPerSample() const
{
    return static_cast<int64_t>(c) * inY() * inX();
}

int64_t
LayerShape::outputElemsPerSample() const
{
    int64_t out_ch = (type == LayerType::DepthwiseConv2d) ? c : k;
    return out_ch * y * x;
}

std::string
LayerShape::toString() const
{
    std::ostringstream os;
    os << layerTypeName(type) << " k" << k << " c" << c << " y" << y << " x"
       << x << " r" << r << " s" << s << " /" << stride;
    return os.str();
}

LayerShape
conv(int k, int c, int out_y, int out_x, int r, int s, int stride)
{
    return LayerShape{LayerType::Conv2d, k, c, out_y, out_x, r, s, stride};
}

LayerShape
depthwise(int c, int out_y, int out_x, int r, int s, int stride)
{
    return LayerShape{LayerType::DepthwiseConv2d,
                      c, c, out_y, out_x, r, s, stride};
}

LayerShape
pointwise(int k, int c, int out_y, int out_x, int stride)
{
    return LayerShape{LayerType::PointwiseConv2d,
                      k, c, out_y, out_x, 1, 1, stride};
}

LayerShape
fc(int k, int c)
{
    return LayerShape{LayerType::FullyConnected, k, c, 1, 1, 1, 1, 1};
}

}  // namespace magma::dnn
