#ifndef MAGMA_DNN_WORKLOAD_H_
#define MAGMA_DNN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dnn/model.h"

namespace magma::dnn {

/**
 * A job: one mini-batch of one layer of one model (Section III).
 *
 * `batch` counts samples for vision/recommendation jobs and tokens for
 * language jobs — either way it multiplies the per-sample compute and
 * activation traffic of the layer.
 */
struct Job {
    int id = 0;
    LayerShape layer;
    int batch = 1;
    TaskType task = TaskType::Vision;
    std::string model;

    /** Total multiply-accumulates of the job. */
    int64_t macs() const { return layer.macsPerSample() * batch; }
    /** Total FLOPs (2 per MAC). */
    int64_t flops() const { return 2 * macs(); }
};

/**
 * A dependency-free group of jobs — the unit the mapper schedules
 * (Section III "Group"). Jobs within a group may execute in any order on
 * any sub-accelerator.
 */
struct JobGroup {
    TaskType task = TaskType::Mix;
    std::vector<Job> jobs;

    int size() const { return static_cast<int>(jobs.size()); }
    int64_t totalMacs() const;
    int64_t totalFlops() const { return 2 * totalMacs(); }
};

/**
 * Default mini-batch per task category, chosen so that per-job no-stall
 * latencies land in the ranges Fig. 7 reports (vision jobs are compute
 * heavy; language jobs carry a token chunk; recommendation jobs are tiny
 * but bandwidth hungry).
 */
int defaultBatch(TaskType t);

/**
 * Synthetic batched-job workload generator (Section VI-A2).
 *
 * Draws jobs by walking the layers of randomly chosen models of the task
 * category, mimicking a pool of queued mini-batches from several tenant
 * models, then chops the pool into dependency-free groups.
 */
class WorkloadGenerator {
  public:
    explicit WorkloadGenerator(uint64_t seed = 1) : rng_(seed) {}

    /** Generate one group of `group_size` jobs for the task. */
    JobGroup makeGroup(TaskType task, int group_size);

    /**
     * Generate `count` consecutive groups (e.g. Table V's Insts0..4).
     * Groups are independent draws from the same task distribution.
     */
    std::vector<JobGroup> makeGroups(TaskType task, int group_size,
                                     int count);

  private:
    common::Rng rng_;
};

}  // namespace magma::dnn

#endif  // MAGMA_DNN_WORKLOAD_H_
