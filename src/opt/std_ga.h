#ifndef MAGMA_OPT_STD_GA_H_
#define MAGMA_OPT_STD_GA_H_

#include "opt/optimizer.h"

namespace magma::opt {

/** Knobs of the standard GA (Table IV: mutation 0.1, crossover 0.1). */
struct StdGaConfig {
    int population = 100;
    double mutationRate = 0.1;
    double crossoverRate = 0.1;
    double eliteRatio = 0.1;
    int tournamentSize = 3;
};

/**
 * Textbook genetic algorithm (Table IV "stdGA").
 *
 * The individual is the concatenated 2G gene string; crossover is a single
 * random pivot over that string — i.e. it crosses the sub-accel genome and
 * the priority genome as if adjacency carried meaning, which is exactly
 * the order-dependency assumption MAGMA's genome-wise operators remove
 * (Section V-B2).
 */
class StdGa : public Optimizer {
  public:
    explicit StdGa(uint64_t seed, StdGaConfig cfg = {})
        : Optimizer(seed), cfg_(cfg)
    {}
    std::string name() const override { return "stdGA"; }
    const StdGaConfig& config() const { return cfg_; }

  protected:
    void run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
             SearchRecorder& rec) override;

  private:
    StdGaConfig cfg_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_STD_GA_H_
