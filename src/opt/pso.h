#ifndef MAGMA_OPT_PSO_H_
#define MAGMA_OPT_PSO_H_

#include "opt/optimizer.h"

namespace magma::opt {

/**
 * Table IV: weighting for global best 0.8, for parent (personal) best 0.8,
 * momentum 1.6. Velocities and positions are clamped to keep the swarm in
 * the unit box despite the aggressive momentum.
 */
struct PsoConfig {
    int population = 100;
    double globalWeight = 0.8;
    double personalWeight = 0.8;
    double momentum = 1.6;
    double velocityClamp = 0.25;
};

/** Particle Swarm Optimization on the flat [0,1]^{2G} encoding. */
class Pso : public Optimizer {
  public:
    explicit Pso(uint64_t seed, PsoConfig cfg = {})
        : Optimizer(seed), cfg_(cfg)
    {}
    std::string name() const override { return "PSO"; }

  protected:
    void run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
             SearchRecorder& rec) override;

  private:
    PsoConfig cfg_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_PSO_H_
