#ifndef MAGMA_OPT_OPTIMIZER_H_
#define MAGMA_OPT_OPTIMIZER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "sched/evaluator.h"
#include "sched/flat_eval.h"
#include "sched/mapping.h"

namespace magma::exec {
class EvalEngine;
}  // namespace magma::exec

namespace magma::opt {

/**
 * Search knobs shared by every optimization method (Section VI-B: "all
 * optimization methods are given the same sampling budget").
 */
struct SearchOptions {
    /** Fitness evaluations allowed (10K in the paper's main experiments). */
    int64_t sampleBudget = 10000;
    /** Record the best-so-far fitness after every sample (Figs. 11, 16). */
    bool recordConvergence = false;
    /** Record every sampled mapping for PCA projection (Fig. 10). */
    bool recordSamples = false;
    /** Warm-start seeds injected into the initial population (Section V-C). */
    std::vector<sched::Mapping> seeds;
    /**
     * Evaluation lanes for SearchRecorder::evaluateBatch. 1 keeps the
     * classic serial path; > 1 builds an exec::EvalEngine internally;
     * 0 auto-selects (MAGMA_THREADS env var, else hardware concurrency).
     * The fitness values, budget accounting and convergence curves are
     * identical at every thread count — only wall-clock changes.
     */
    int threads = 1;
    /**
     * Which evaluation kernel scores candidates: the allocation-free
     * sched::FlatEvaluator fast path (default) or the reference
     * MappingEvaluator object path. Bitwise-identical results either
     * way; Reference is the one-flag fallback (`--eval=reference`).
     * Ignored when `engine` is set — the engine's own mode wins.
     */
    sched::EvalMode evalMode = sched::EvalMode::Flat;
    /**
     * External batch engine to reuse across searches (overrides
     * `threads` and `evalMode`). Must outlive the search and wrap the
     * same evaluator.
     */
    exec::EvalEngine* engine = nullptr;
    /**
     * Per-search observability override: Inherit (the default) follows
     * the process level (the MAGMA_METRICS env var); Off/Counters/Trace
     * force it for the search-level sites — the opt.samples /
     * opt.generations counters and the opt.generation / opt.search
     * trace events. Purely observational: search results are bitwise
     * identical at every level.
     */
    obs::MetricsLevel metrics = obs::MetricsLevel::Inherit;
};

/** Outcome of one search run. */
struct SearchResult {
    sched::Mapping best;
    double bestFitness = -std::numeric_limits<double>::infinity();
    int64_t samplesUsed = 0;
    /** best-so-far fitness after sample i (when recordConvergence). */
    std::vector<double> convergence;
    /** every sampled mapping (when recordSamples). */
    std::vector<sched::Mapping> sampled;
    /** fitness of every sampled mapping (when recordSamples). */
    std::vector<double> sampledFitness;
};

/**
 * Budget meter + incumbent tracker every optimizer funnels its fitness
 * calls through, so budget accounting and convergence curves are uniform
 * across methods.
 */
class SearchRecorder {
  public:
    SearchRecorder(const sched::MappingEvaluator& eval,
                   const SearchOptions& opts);
    ~SearchRecorder();

    /**
     * Evaluate a candidate, spend one budget unit, update the incumbent.
     * Must not be called once exhausted().
     */
    double evaluate(const sched::Mapping& m);

    /**
     * Evaluate a whole generation. Only the first remaining() candidates
     * are evaluated (and paid for) when the batch overruns the budget;
     * the returned vector holds their fitness in submission order and its
     * size tells the caller how far it got. Bookkeeping — budget meter,
     * incumbent, convergence curve, sample log — is applied in submission
     * order, so the result is bitwise identical to looping `evaluate`
     * over the same candidates, at any thread count. Returns empty once
     * exhausted().
     */
    std::vector<double> evaluateBatch(const std::vector<sched::Mapping>& ms);

    bool exhausted() const { return used_ >= opts_.sampleBudget; }
    int64_t remaining() const { return opts_.sampleBudget - used_; }
    int64_t used() const { return used_; }
    double bestFitness() const { return result_.bestFitness; }
    const sched::Mapping& best() const { return result_.best; }

    /** Finalize and hand out the result. */
    SearchResult finish();

    /** Batch engine in use (null on the pure serial path). */
    const exec::EvalEngine* engine() const { return engine_; }

  private:
    /** Spend one budget unit on (m, fitness) — the shared bookkeeping. */
    void record(const sched::Mapping& m, double f);

    const sched::MappingEvaluator* eval_;
    SearchOptions opts_;
    SearchResult result_;
    int64_t used_ = 0;
    std::unique_ptr<exec::EvalEngine> owned_engine_;
    exec::EvalEngine* engine_ = nullptr;
    // Resolved observability level for this search (see
    // SearchOptions::metrics) plus the generation cursor behind the
    // opt.generation trace events.
    bool obs_counters_ = false;
    bool obs_trace_ = false;
    int64_t generation_ = 0;
};

/**
 * Score `pop[first..]` through the recorder's batch path, writing each
 * individual's `.fitness` back. Shared by the population GAs. Returns
 * false when the budget truncated the batch (unscored individuals keep
 * their previous fitness and the caller should stop the search).
 */
template <typename ScoredT>
bool
scorePopulation(SearchRecorder& rec, std::vector<ScoredT>& pop,
                size_t first = 0)
{
    std::vector<sched::Mapping> ms;
    ms.reserve(pop.size() - first);
    for (size_t i = first; i < pop.size(); ++i)
        ms.push_back(pop[i].m);
    std::vector<double> fits = rec.evaluateBatch(ms);
    for (size_t i = 0; i < fits.size(); ++i)
        pop[first + i].fitness = fits[i];
    return fits.size() == ms.size();
}

/**
 * Base class of every mapping-search method in M3E (Table IV): the manual
 * baselines, the black-box optimizers, the RL agents and MAGMA all
 * implement this interface, which is what lets M3E swap them freely.
 */
class Optimizer {
  public:
    explicit Optimizer(uint64_t seed) : rng_(seed) {}
    virtual ~Optimizer() = default;

    /** Method name as the paper's plots label it. */
    virtual std::string name() const = 0;

    /** Run the search against an evaluator under the given options. */
    SearchResult search(const sched::MappingEvaluator& eval,
                        const SearchOptions& opts = {});

  protected:
    /** Method body; draw randomness from rng_, evaluate through rec. */
    virtual void run(const sched::MappingEvaluator& eval,
                     const SearchOptions& opts, SearchRecorder& rec) = 0;

    common::Rng rng_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_OPTIMIZER_H_
