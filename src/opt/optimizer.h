#ifndef MAGMA_OPT_OPTIMIZER_H_
#define MAGMA_OPT_OPTIMIZER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/evaluator.h"
#include "sched/mapping.h"

namespace magma::opt {

/**
 * Search knobs shared by every optimization method (Section VI-B: "all
 * optimization methods are given the same sampling budget").
 */
struct SearchOptions {
    /** Fitness evaluations allowed (10K in the paper's main experiments). */
    int64_t sampleBudget = 10000;
    /** Record the best-so-far fitness after every sample (Figs. 11, 16). */
    bool recordConvergence = false;
    /** Record every sampled mapping for PCA projection (Fig. 10). */
    bool recordSamples = false;
    /** Warm-start seeds injected into the initial population (Section V-C). */
    std::vector<sched::Mapping> seeds;
};

/** Outcome of one search run. */
struct SearchResult {
    sched::Mapping best;
    double bestFitness = -std::numeric_limits<double>::infinity();
    int64_t samplesUsed = 0;
    /** best-so-far fitness after sample i (when recordConvergence). */
    std::vector<double> convergence;
    /** every sampled mapping (when recordSamples). */
    std::vector<sched::Mapping> sampled;
    /** fitness of every sampled mapping (when recordSamples). */
    std::vector<double> sampledFitness;
};

/**
 * Budget meter + incumbent tracker every optimizer funnels its fitness
 * calls through, so budget accounting and convergence curves are uniform
 * across methods.
 */
class SearchRecorder {
  public:
    SearchRecorder(const sched::MappingEvaluator& eval,
                   const SearchOptions& opts);

    /**
     * Evaluate a candidate, spend one budget unit, update the incumbent.
     * Must not be called once exhausted().
     */
    double evaluate(const sched::Mapping& m);

    bool exhausted() const { return used_ >= opts_.sampleBudget; }
    int64_t remaining() const { return opts_.sampleBudget - used_; }
    int64_t used() const { return used_; }
    double bestFitness() const { return result_.bestFitness; }
    const sched::Mapping& best() const { return result_.best; }

    /** Finalize and hand out the result. */
    SearchResult finish();

  private:
    const sched::MappingEvaluator* eval_;
    SearchOptions opts_;
    SearchResult result_;
    int64_t used_ = 0;
};

/**
 * Base class of every mapping-search method in M3E (Table IV): the manual
 * baselines, the black-box optimizers, the RL agents and MAGMA all
 * implement this interface, which is what lets M3E swap them freely.
 */
class Optimizer {
  public:
    explicit Optimizer(uint64_t seed) : rng_(seed) {}
    virtual ~Optimizer() = default;

    /** Method name as the paper's plots label it. */
    virtual std::string name() const = 0;

    /** Run the search against an evaluator under the given options. */
    SearchResult search(const sched::MappingEvaluator& eval,
                        const SearchOptions& opts = {});

  protected:
    /** Method body; draw randomness from rng_, evaluate through rec. */
    virtual void run(const sched::MappingEvaluator& eval,
                     const SearchOptions& opts, SearchRecorder& rec) = 0;

    common::Rng rng_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_OPTIMIZER_H_
