#ifndef MAGMA_OPT_DE_H_
#define MAGMA_OPT_DE_H_

#include "opt/optimizer.h"

namespace magma::opt {

/** Table IV: weighting for local DV 0.8, weighting for global DV 0.8. */
struct DeConfig {
    int population = 100;
    double localWeight = 0.8;   ///< F applied to the random pair difference
    double globalWeight = 0.8;  ///< F applied toward the population best
    double crossoverProb = 0.9;
};

/**
 * Differential Evolution (current-to-best/1/bin variant) on the flat
 * [0,1]^{2G} encoding.
 */
class De : public Optimizer {
  public:
    explicit De(uint64_t seed, DeConfig cfg = {}) : Optimizer(seed), cfg_(cfg)
    {}
    std::string name() const override { return "DE"; }

  protected:
    void run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
             SearchRecorder& rec) override;

  private:
    DeConfig cfg_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_DE_H_
