#include "opt/tbpsa.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "opt/flat.h"

namespace magma::opt {

void
Tbpsa::run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
           SearchRecorder& rec)
{
    const int dim = 2 * eval.groupSize();
    const int n_accels = eval.numAccels();

    int lambda = cfg_.initialPopulation;
    double sigma = cfg_.initialSigma;
    std::vector<double> mean =
        opts.seeds.empty() ? std::vector<double>(dim, 0.5)
                           : opts.seeds.front().toFlat(n_accels);

    double prev_gen_best = -1e300;
    int stall = 0;

    struct Cand {
        std::vector<double> x;
        double fitness = 0.0;
    };

    while (!rec.exhausted()) {
        int mu = std::max(1, lambda / 4);
        // Sample the full generation, then score it as one batch.
        std::vector<Cand> cands;
        cands.reserve(lambda);
        for (int k = 0; k < lambda; ++k) {
            Cand c;
            c.x.resize(dim);
            for (int i = 0; i < dim; ++i)
                c.x[i] = std::clamp(mean[i] + sigma * rng_.gauss(), 0.0,
                                    1.0);
            cands.push_back(std::move(c));
        }
        {
            std::vector<sched::Mapping> ms;
            ms.reserve(lambda);
            for (const Cand& c : cands)
                ms.push_back(sched::Mapping::fromFlat(c.x, n_accels));
            std::vector<double> fits = rec.evaluateBatch(ms);
            cands.resize(fits.size());  // budget may truncate the tail
            for (size_t k = 0; k < fits.size(); ++k)
                cands[k].fitness = fits[k];
        }
        if (cands.empty())
            break;
        std::sort(cands.begin(), cands.end(),
                  [](const Cand& a, const Cand& b) {
                      return a.fitness > b.fitness;
                  });
        mu = std::min<int>(mu, cands.size());

        for (int i = 0; i < dim; ++i) {
            double m = 0.0;
            for (int k = 0; k < mu; ++k)
                m += cands[k].x[i];
            mean[i] = m / mu;
        }

        // Progress test: population grows under stagnation (the "test"
        // part of TBPSA), shrinks on clear progress; sigma follows a
        // success-style rule.
        double gen_best = cands.front().fitness;
        if (gen_best <= prev_gen_best * (1.0 + 1e-9)) {
            ++stall;
            sigma *= 0.95;
            if (stall >= 2) {
                lambda = std::min(cfg_.maxPopulation, lambda * 2);
                stall = 0;
            }
        } else {
            sigma = std::min(0.5, sigma * 1.05);
            lambda = std::max(cfg_.initialPopulation,
                              static_cast<int>(lambda * 0.9));
            stall = 0;
        }
        sigma = std::max(sigma, 1e-6);
        prev_gen_best = gen_best;
    }
}

}  // namespace magma::opt
