#ifndef MAGMA_OPT_MAGMA_GA_H_
#define MAGMA_OPT_MAGMA_GA_H_

#include "opt/optimizer.h"

namespace magma::opt {

/**
 * MAGMA hyper-parameters (Section V-B2/V-B3 tuned values) plus the
 * operator-ablation switches exercised by the Fig. 16 harness.
 */
struct MagmaConfig {
    int population = 100;           ///< paper: set to group size
    double eliteRatio = 0.2;
    double mutationRate = 0.05;     ///< per-gene
    double crossoverGenRate = 0.9;  ///< genome-wise crossover (major op)
    double crossoverRgRate = 0.05;  ///< range crossover
    double crossoverAccelRate = 0.05;  ///< per-sub-accelerator crossover
    bool enableCrossoverGen = true;
    bool enableCrossoverRg = true;
    bool enableCrossoverAccel = true;
};

/**
 * MAGMA (Section V): a GA whose genetic operators are specialized to the
 * two-genome mapping encoding.
 *
 *  - mutation: standard per-gene random resets;
 *  - crossover-gen: picks ONE genome (accel-selection or priority) and a
 *    pivot inside it, exchanging only that genome's tail — perturbs one
 *    schedule aspect while respecting the other;
 *  - crossover-rg: picks a job range and swaps BOTH genomes' genes for the
 *    range, preserving cross-genome (per-job) dependency;
 *  - crossover-accel: picks a sub-accelerator and transplants the donor
 *    parent's job set and ordering for it into the child, randomly
 *    re-assigning the child's displaced jobs for load balancing.
 *
 * The static `crossoverGen/Rg/Accel` and `mutate` methods expose the
 * operators directly for unit testing.
 */
class MagmaGa : public Optimizer {
  public:
    explicit MagmaGa(uint64_t seed, MagmaConfig cfg = {})
        : Optimizer(seed), cfg_(cfg)
    {}
    std::string name() const override { return "MAGMA"; }
    const MagmaConfig& config() const { return cfg_; }

    /** Genome-wise single-pivot crossover between two children (in place). */
    static void crossoverGen(sched::Mapping& a, sched::Mapping& b,
                             common::Rng& rng);
    /** Range crossover across both genomes simultaneously (in place). */
    static void crossoverRg(sched::Mapping& a, sched::Mapping& b,
                            common::Rng& rng);
    /**
     * Transplant `donor`'s job set for one random sub-accelerator into
     * `child`; displaced child jobs are randomly re-assigned.
     */
    static void crossoverAccel(sched::Mapping& child,
                               const sched::Mapping& donor, int num_accels,
                               common::Rng& rng);
    /** Per-gene mutation at the given rate (in place). */
    static void mutate(sched::Mapping& m, double rate, int num_accels,
                       common::Rng& rng);

  protected:
    void run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
             SearchRecorder& rec) override;

  private:
    MagmaConfig cfg_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_MAGMA_GA_H_
