#include "opt/de.h"

#include <vector>

#include "opt/flat.h"

namespace magma::opt {

void
De::run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
        SearchRecorder& rec)
{
    const int dim = 2 * eval.groupSize();
    const int n_accels = eval.numAccels();
    const int np = cfg_.population;

    std::vector<std::vector<double>> pop(np);
    std::vector<double> fit(np);
    for (int i = 0; i < np; ++i) {
        if (i < static_cast<int>(opts.seeds.size()))
            pop[i] = opts.seeds[i].toFlat(n_accels);
        else
            pop[i] = flat::randomPoint(dim, rng_);
    }
    {
        std::vector<double> fits = flat::evaluateBatch(rec, pop, n_accels);
        for (size_t i = 0; i < fits.size(); ++i)
            fit[i] = fits[i];
        if (fits.size() < static_cast<size_t>(np))
            return;  // budget exhausted mid-initialization
    }

    // Synchronous DE: trials for a generation are all bred from the
    // previous generation's population, scored as one batch, then the
    // greedy replacement happens per slot.
    while (!rec.exhausted()) {
        int best = 0;
        for (int i = 1; i < np; ++i)
            if (fit[i] > fit[best])
                best = i;

        std::vector<std::vector<double>> trials(np);
        for (int i = 0; i < np; ++i) {
            int r1 = rng_.uniformInt(np);
            int r2 = rng_.uniformInt(np);
            std::vector<double> trial = pop[i];
            int forced = rng_.uniformInt(dim);  // at least one mutated gene
            for (int d = 0; d < dim; ++d) {
                if (d != forced && !rng_.bernoulli(cfg_.crossoverProb))
                    continue;
                trial[d] = pop[i][d] +
                           cfg_.globalWeight * (pop[best][d] - pop[i][d]) +
                           cfg_.localWeight * (pop[r1][d] - pop[r2][d]);
            }
            flat::clamp01(trial);
            trials[i] = std::move(trial);
        }

        std::vector<double> fits = flat::evaluateBatch(rec, trials, n_accels);
        for (size_t i = 0; i < fits.size(); ++i) {
            if (fits[i] >= fit[i]) {
                pop[i] = std::move(trials[i]);
                fit[i] = fits[i];
            }
        }
    }
}

}  // namespace magma::opt
