#include "opt/std_ga.h"

#include <algorithm>
#include <vector>

namespace magma::opt {
namespace {

struct Scored {
    sched::Mapping m;
    double fitness = 0.0;
};

}  // namespace

void
StdGa::run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
           SearchRecorder& rec)
{
    const int g = eval.groupSize();
    const int n_accels = eval.numAccels();
    const int pop_size = cfg_.population;

    // --- Initial population: seeds first, then random fill. ---
    std::vector<Scored> pop;
    pop.reserve(pop_size);
    for (const auto& s : opts.seeds) {
        if (static_cast<int>(pop.size()) >= pop_size)
            break;
        pop.push_back({s, 0.0});
    }
    while (static_cast<int>(pop.size()) < pop_size)
        pop.push_back({sched::Mapping::random(g, n_accels, rng_), 0.0});

    if (!scorePopulation(rec, pop))
        return;  // budget exhausted mid-initialization

    auto tournament = [&]() -> const Scored& {
        int best = rng_.uniformInt(pop_size);
        for (int i = 1; i < cfg_.tournamentSize; ++i) {
            int c = rng_.uniformInt(pop_size);
            if (pop[c].fitness > pop[best].fitness)
                best = c;
        }
        return pop[best];
    };

    const int elites = std::max(1, static_cast<int>(pop_size *
                                                    cfg_.eliteRatio));
    while (!rec.exhausted()) {
        std::sort(pop.begin(), pop.end(), [](const Scored& a,
                                             const Scored& b) {
            return a.fitness > b.fitness;
        });

        std::vector<Scored> next(pop.begin(), pop.begin() + elites);
        while (static_cast<int>(next.size()) < pop_size) {
            sched::Mapping child = tournament().m;
            // Single-pivot crossover over the concatenated gene string.
            if (rng_.bernoulli(cfg_.crossoverRate)) {
                const sched::Mapping& other = tournament().m;
                int pivot = rng_.uniformInt(2 * g);
                for (int i = pivot; i < 2 * g; ++i) {
                    if (i < g)
                        child.accelSel[i] = other.accelSel[i];
                    else
                        child.priority[i - g] = other.priority[i - g];
                }
            }
            // Per-gene mutation.
            for (int i = 0; i < g; ++i) {
                if (rng_.bernoulli(cfg_.mutationRate))
                    child.accelSel[i] = rng_.uniformInt(n_accels);
                if (rng_.bernoulli(cfg_.mutationRate))
                    child.priority[i] = rng_.uniform();
            }
            next.push_back({std::move(child), 0.0});
        }

        // Whole-generation batch evaluation of the bred children.
        scorePopulation(rec, next, elites);
        pop = std::move(next);
    }
}

}  // namespace magma::opt
