#ifndef MAGMA_OPT_FLAT_H_
#define MAGMA_OPT_FLAT_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "opt/optimizer.h"

namespace magma::opt {

/**
 * Helpers for optimizers that treat the mapping as a flat point in
 * [0,1]^{2G} (DE, PSO, CMA-ES, TBPSA). Decoding goes through
 * sched::Mapping::fromFlat, which clamps and bins the accel genes.
 */
namespace flat {

inline void
clamp01(std::vector<double>& x)
{
    for (double& v : x)
        v = std::clamp(v, 0.0, 1.0);
}

inline std::vector<double>
randomPoint(int dim, common::Rng& rng)
{
    std::vector<double> x(dim);
    for (double& v : x)
        v = rng.uniform();
    return x;
}

/** Evaluate a flat point through the shared recorder. */
inline double
evaluate(SearchRecorder& rec, const std::vector<double>& x, int num_accels)
{
    return rec.evaluate(sched::Mapping::fromFlat(x, num_accels));
}

/** Decode a generation of flat points into mappings. */
inline std::vector<sched::Mapping>
toMappings(const std::vector<std::vector<double>>& xs, int num_accels)
{
    std::vector<sched::Mapping> ms;
    ms.reserve(xs.size());
    for (const auto& x : xs)
        ms.push_back(sched::Mapping::fromFlat(x, num_accels));
    return ms;
}

/**
 * Batch-evaluate a generation of flat points through the recorder's
 * batch path. Truncated to the remaining budget like
 * SearchRecorder::evaluateBatch; result[i] belongs to xs[i].
 */
inline std::vector<double>
evaluateBatch(SearchRecorder& rec, const std::vector<std::vector<double>>& xs,
              int num_accels)
{
    return rec.evaluateBatch(toMappings(xs, num_accels));
}

}  // namespace flat
}  // namespace magma::opt

#endif  // MAGMA_OPT_FLAT_H_
