#ifndef MAGMA_OPT_WARM_START_H_
#define MAGMA_OPT_WARM_START_H_

#include <map>
#include <vector>

#include "common/rng.h"
#include "dnn/workload.h"
#include "sched/mapping.h"

namespace magma::opt {

/**
 * Solution-transfer primitives shared by WarmStartEngine and the serve
 * layer's fingerprint-keyed MappingStore (src/serve/). Each adapts a
 * stored solution to a new group, and `seedsAround` turns the adapted
 * base into a seed population (the base verbatim plus mutated copies).
 */
namespace transfer {

/**
 * Positional adaptation: tile/truncate the stored genome onto
 * `group_size` jobs by index, clamping accel genes into the new
 * platform's range.
 */
sched::Mapping adaptPositional(const sched::Mapping& stored, int group_size,
                               int num_accels);

/**
 * Job-matched adaptation: each job of `target` inherits the gene of a
 * stored job in the same similarity bucket — an exact tier first (model
 * + full layer signature + batch, so a job surviving from the stored
 * group keeps its own gene; this is what makes departure-shrunk groups
 * adapt explicitly instead of falling back to fuzzy matching), then
 * task + layer type + log-size class, then a coarser task + layer type
 * fallback; unmatched jobs draw random genes from `rng`. Shrinking job
 * counts (target smaller than stored) are first-class: surviving jobs
 * hit the exact tier and departed jobs' genes are simply dropped.
 */
sched::Mapping adaptJobMatched(const sched::Mapping& stored,
                               const dnn::JobGroup& stored_group,
                               const dnn::JobGroup& target, int num_accels,
                               common::Rng& rng);

/**
 * Identity-preserving adaptation for callers that KNOW the job
 * correspondence (the src/dyn/ event engine tracks every job's bundle
 * identity across Arrive/Depart/Swap events): target job i inherits the
 * gene of stored job `match[i]` verbatim; `match[i] < 0` marks a new
 * job, which draws its gene from the job-matched similarity buckets of
 * `stored_group` (random when nothing matches). Accel genes are clamped
 * into the new platform's range. `match` must have one entry per target
 * job, each < stored.size() (checked).
 */
sched::Mapping adaptMatched(const sched::Mapping& stored,
                            const dnn::JobGroup& stored_group,
                            const dnn::JobGroup& target,
                            const std::vector<int>& match, int num_accels,
                            common::Rng& rng);

/** `base` verbatim plus `count - 1` lightly mutated copies. */
std::vector<sched::Mapping> seedsAround(const sched::Mapping& base,
                                        int count, int num_accels,
                                        common::Rng& rng);

}  // namespace transfer

/**
 * Warm-start engine (Section V-C): remembers the best mapping found for
 * each task type and, when a new group of the same type arrives, takes
 * over population initialization from the random Init engine.
 *
 * Two transfer modes:
 *  - positional (makeSeeds with a group size): genes are tiled onto the
 *    new genome by index — cheap, but only meaningful when consecutive
 *    groups are positionally similar;
 *  - job-matched (makeSeeds with the target JobGroup, requires the solved
 *    group to have been stored): each new job inherits the gene of a
 *    stored job of the same task + layer type + size class, which is what
 *    carries the "language jobs avoid the LB core" style knowledge across
 *    independently drawn groups.
 *
 * Seeds are the transferred solution plus lightly mutated copies, so the
 * population starts clustered around previous knowledge but retains
 * diversity for further optimization (Trf-N-ep in Table V).
 */
class WarmStartEngine {
  public:
    /** Remember (or replace) the solved mapping for a task type. */
    void store(dnn::TaskType task, const sched::Mapping& best);

    /** Remember the solved mapping together with its job group, enabling
     * job-matched transfer. */
    void store(dnn::TaskType task, const sched::Mapping& best,
               const dnn::JobGroup& group);

    /** Whether previous knowledge exists for this task type. */
    bool has(dnn::TaskType task) const;

    /**
     * Positional transfer: build `count` seed mappings for a new group of
     * `group_size` jobs on `num_accels` cores. The first seed is the
     * stored solution verbatim (resized by gene tiling if the group size
     * changed); the rest are mutated copies. Returns empty when nothing
     * is stored.
     */
    std::vector<sched::Mapping> makeSeeds(dnn::TaskType task, int count,
                                          int group_size, int num_accels,
                                          common::Rng& rng) const;

    /**
     * Job-matched transfer: each job of `target` inherits the gene of a
     * similar stored job (same task, layer type and log-size bucket,
     * with coarser fallbacks). Falls back to positional transfer when
     * the stored entry has no group attached.
     */
    std::vector<sched::Mapping> makeSeeds(dnn::TaskType task, int count,
                                          const dnn::JobGroup& target,
                                          int num_accels,
                                          common::Rng& rng) const;

  private:
    struct Entry {
        sched::Mapping mapping;
        dnn::JobGroup group;  // empty when stored without a group
    };
    std::map<dnn::TaskType, Entry> library_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_WARM_START_H_
