#ifndef MAGMA_OPT_WARM_START_H_
#define MAGMA_OPT_WARM_START_H_

#include <map>
#include <vector>

#include "common/rng.h"
#include "dnn/workload.h"
#include "sched/mapping.h"

namespace magma::opt {

/**
 * Warm-start engine (Section V-C): remembers the best mapping found for
 * each task type and, when a new group of the same type arrives, takes
 * over population initialization from the random Init engine.
 *
 * Two transfer modes:
 *  - positional (makeSeeds with a group size): genes are tiled onto the
 *    new genome by index — cheap, but only meaningful when consecutive
 *    groups are positionally similar;
 *  - job-matched (makeSeeds with the target JobGroup, requires the solved
 *    group to have been stored): each new job inherits the gene of a
 *    stored job of the same task + layer type + size class, which is what
 *    carries the "language jobs avoid the LB core" style knowledge across
 *    independently drawn groups.
 *
 * Seeds are the transferred solution plus lightly mutated copies, so the
 * population starts clustered around previous knowledge but retains
 * diversity for further optimization (Trf-N-ep in Table V).
 */
class WarmStartEngine {
  public:
    /** Remember (or replace) the solved mapping for a task type. */
    void store(dnn::TaskType task, const sched::Mapping& best);

    /** Remember the solved mapping together with its job group, enabling
     * job-matched transfer. */
    void store(dnn::TaskType task, const sched::Mapping& best,
               const dnn::JobGroup& group);

    /** Whether previous knowledge exists for this task type. */
    bool has(dnn::TaskType task) const;

    /**
     * Positional transfer: build `count` seed mappings for a new group of
     * `group_size` jobs on `num_accels` cores. The first seed is the
     * stored solution verbatim (resized by gene tiling if the group size
     * changed); the rest are mutated copies. Returns empty when nothing
     * is stored.
     */
    std::vector<sched::Mapping> makeSeeds(dnn::TaskType task, int count,
                                          int group_size, int num_accels,
                                          common::Rng& rng) const;

    /**
     * Job-matched transfer: each job of `target` inherits the gene of a
     * similar stored job (same task, layer type and log-size bucket,
     * with coarser fallbacks). Falls back to positional transfer when
     * the stored entry has no group attached.
     */
    std::vector<sched::Mapping> makeSeeds(dnn::TaskType task, int count,
                                          const dnn::JobGroup& target,
                                          int num_accels,
                                          common::Rng& rng) const;

  private:
    struct Entry {
        sched::Mapping mapping;
        dnn::JobGroup group;  // empty when stored without a group
    };
    std::map<dnn::TaskType, Entry> library_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_WARM_START_H_
