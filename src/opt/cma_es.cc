#include "opt/cma_es.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/matrix.h"
#include "opt/flat.h"

namespace magma::opt {

using common::Matrix;

void
CmaEs::run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
           SearchRecorder& rec)
{
    const int dim = 2 * eval.groupSize();
    const int n_accels = eval.numAccels();
    const int lambda =
        cfg_.population > 0
            ? cfg_.population
            : 4 + static_cast<int>(3.0 * std::log(static_cast<double>(dim)));
    const int mu = std::max(1, lambda / 2);  // Table IV: 1/2 as elites

    // Log-linear recombination weights.
    std::vector<double> weights(mu);
    for (int i = 0; i < mu; ++i)
        weights[i] = std::log(mu + 0.5) - std::log(i + 1.0);
    double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
    for (double& w : weights)
        w /= wsum;
    double mu_eff = 0.0;
    for (double w : weights)
        mu_eff += w * w;
    mu_eff = 1.0 / mu_eff;

    // Strategy constants (Hansen's defaults).
    const double n = dim;
    const double cc = (4.0 + mu_eff / n) / (n + 4.0 + 2.0 * mu_eff / n);
    const double cs = (mu_eff + 2.0) / (n + mu_eff + 5.0);
    const double c1 = 2.0 / ((n + 1.3) * (n + 1.3) + mu_eff);
    const double cmu = std::min(1.0 - c1,
                                2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) /
                                    ((n + 2.0) * (n + 2.0) + mu_eff));
    const double damps =
        1.0 + 2.0 * std::max(0.0, std::sqrt((mu_eff - 1.0) / (n + 1.0)) -
                                      1.0) + cs;
    const double chi_n =
        std::sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));

    // State.
    std::vector<double> mean =
        opts.seeds.empty() ? std::vector<double>(dim, 0.5)
                           : opts.seeds.front().toFlat(n_accels);
    double sigma = cfg_.initialSigma;
    Matrix cov = Matrix::identity(dim);
    Matrix b = Matrix::identity(dim);
    std::vector<double> d_diag(dim, 1.0);
    std::vector<double> ps(dim, 0.0), pc(dim, 0.0);
    int gen = 0;

    struct Cand {
        std::vector<double> x;  // candidate point
        std::vector<double> z;  // N(0, I) draw behind it
        double fitness = 0.0;
    };

    while (!rec.exhausted()) {
        // Refresh eigensystem lazily.
        if (gen % std::max(cfg_.eigenInterval, 1) == 0) {
            common::EigenSym eig = common::jacobiEigenSym(cov, 8);
            b = eig.eigenvectors;
            for (int i = 0; i < dim; ++i)
                d_diag[i] = std::sqrt(std::max(eig.eigenvalues[i], 1e-20));
        }

        // Sample the full generation first, then score it as one batch.
        std::vector<Cand> cands;
        cands.reserve(lambda);
        for (int k = 0; k < lambda; ++k) {
            Cand c;
            c.z.resize(dim);
            for (double& z : c.z)
                z = rng_.gauss();
            // x = mean + sigma * B * D * z
            std::vector<double> bdz(dim, 0.0);
            for (int i = 0; i < dim; ++i) {
                double acc = 0.0;
                for (int j = 0; j < dim; ++j)
                    acc += b.at(i, j) * d_diag[j] * c.z[j];
                bdz[i] = acc;
            }
            c.x.resize(dim);
            for (int i = 0; i < dim; ++i)
                c.x[i] = std::clamp(mean[i] + sigma * bdz[i], 0.0, 1.0);
            cands.push_back(std::move(c));
        }
        {
            std::vector<sched::Mapping> ms;
            ms.reserve(lambda);
            for (const Cand& c : cands)
                ms.push_back(sched::Mapping::fromFlat(c.x, n_accels));
            std::vector<double> fits = rec.evaluateBatch(ms);
            cands.resize(fits.size());  // budget may truncate the tail
            for (size_t k = 0; k < fits.size(); ++k)
                cands[k].fitness = fits[k];
        }
        if (static_cast<int>(cands.size()) < mu)
            break;  // budget ran out mid-generation

        std::sort(cands.begin(), cands.end(),
                  [](const Cand& a, const Cand& b2) {
                      return a.fitness > b2.fitness;
                  });

        // Recombine mean and the z-path.
        std::vector<double> old_mean = mean;
        std::vector<double> zw(dim, 0.0);
        for (int i = 0; i < dim; ++i) {
            double m = 0.0;
            for (int k = 0; k < mu; ++k)
                m += weights[k] * cands[k].x[i];
            mean[i] = m;
        }
        for (int j = 0; j < dim; ++j) {
            double z = 0.0;
            for (int k = 0; k < mu; ++k)
                z += weights[k] * cands[k].z[j];
            zw[j] = z;
        }

        // ps = (1-cs) ps + sqrt(cs(2-cs) mu_eff) * B * zw
        double ps_norm2 = 0.0;
        for (int i = 0; i < dim; ++i) {
            double bz = 0.0;
            for (int j = 0; j < dim; ++j)
                bz += b.at(i, j) * zw[j];
            ps[i] = (1.0 - cs) * ps[i] +
                    std::sqrt(cs * (2.0 - cs) * mu_eff) * bz;
            ps_norm2 += ps[i] * ps[i];
        }
        double ps_norm = std::sqrt(ps_norm2);

        // pc and hsig.
        double hsig =
            (ps_norm / std::sqrt(1.0 - std::pow(1.0 - cs, 2.0 * (gen + 1))) /
                 chi_n < 1.4 + 2.0 / (n + 1.0))
                ? 1.0
                : 0.0;
        for (int i = 0; i < dim; ++i) {
            pc[i] = (1.0 - cc) * pc[i] +
                    hsig * std::sqrt(cc * (2.0 - cc) * mu_eff) *
                        (mean[i] - old_mean[i]) / sigma;
        }

        // Covariance update: rank-one + rank-mu.
        double c1a = c1 * (1.0 - (1.0 - hsig * hsig) * cc * (2.0 - cc));
        for (int i = 0; i < dim; ++i) {
            for (int j = 0; j < dim; ++j) {
                double rank_mu = 0.0;
                for (int k = 0; k < mu; ++k) {
                    double yi = (cands[k].x[i] - old_mean[i]) / sigma;
                    double yj = (cands[k].x[j] - old_mean[j]) / sigma;
                    rank_mu += weights[k] * yi * yj;
                }
                cov.at(i, j) = (1.0 - c1a - cmu) * cov.at(i, j) +
                               c1 * pc[i] * pc[j] + cmu * rank_mu;
            }
        }

        // Step-size adaptation.
        sigma *= std::exp((cs / damps) * (ps_norm / chi_n - 1.0));
        sigma = std::clamp(sigma, 1e-8, 1.0);
        ++gen;
    }
}

}  // namespace magma::opt
