#include "opt/random_search.h"

namespace magma::opt {

void
RandomSearch::run(const sched::MappingEvaluator& eval,
                  const SearchOptions& opts, SearchRecorder& rec)
{
    for (const auto& seed : opts.seeds) {
        if (rec.exhausted())
            return;
        rec.evaluate(seed);
    }
    while (!rec.exhausted()) {
        rec.evaluate(sched::Mapping::random(eval.groupSize(),
                                            eval.numAccels(), rng_));
    }
}

}  // namespace magma::opt
