#include "opt/random_search.h"

#include <algorithm>
#include <vector>

namespace magma::opt {

void
RandomSearch::run(const sched::MappingEvaluator& eval,
                  const SearchOptions& opts, SearchRecorder& rec)
{
    if (!opts.seeds.empty())
        rec.evaluateBatch(opts.seeds);

    // Draw candidates in chunks so the batch path can fan them out; the
    // RNG stream is identical to one-at-a-time sampling because
    // evaluation consumes no randomness.
    constexpr int64_t kChunk = 64;
    std::vector<sched::Mapping> batch;
    while (!rec.exhausted()) {
        int64_t n = std::min<int64_t>(rec.remaining(), kChunk);
        batch.clear();
        batch.reserve(n);
        for (int64_t i = 0; i < n; ++i)
            batch.push_back(sched::Mapping::random(eval.groupSize(),
                                                   eval.numAccels(), rng_));
        rec.evaluateBatch(batch);
    }
}

}  // namespace magma::opt
