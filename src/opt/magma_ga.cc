#include "opt/magma_ga.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace magma::opt {
namespace {

struct Scored {
    sched::Mapping m;
    double fitness = 0.0;
};

}  // namespace

void
MagmaGa::crossoverGen(sched::Mapping& a, sched::Mapping& b, common::Rng& rng)
{
    int g = a.size();
    int pivot = rng.uniformInt(g);
    if (rng.bernoulli(0.5)) {
        for (int i = pivot; i < g; ++i)
            std::swap(a.accelSel[i], b.accelSel[i]);
    } else {
        for (int i = pivot; i < g; ++i)
            std::swap(a.priority[i], b.priority[i]);
    }
}

void
MagmaGa::crossoverRg(sched::Mapping& a, sched::Mapping& b, common::Rng& rng)
{
    int g = a.size();
    int lo = rng.uniformInt(g);
    int hi = rng.uniformInt(g);
    if (lo > hi)
        std::swap(lo, hi);
    for (int i = lo; i <= hi; ++i) {
        std::swap(a.accelSel[i], b.accelSel[i]);
        std::swap(a.priority[i], b.priority[i]);
    }
}

void
MagmaGa::crossoverAccel(sched::Mapping& child, const sched::Mapping& donor,
                        int num_accels, common::Rng& rng)
{
    int g = child.size();
    int accel = rng.uniformInt(num_accels);
    // Jobs the child currently runs on `accel` get displaced (randomly
    // re-assigned, for load balancing) unless the donor also puts them
    // there; then the donor's job set and ordering for `accel` is pasted.
    for (int j = 0; j < g; ++j) {
        if (child.accelSel[j] == accel && donor.accelSel[j] != accel)
            child.accelSel[j] = rng.uniformInt(num_accels);
    }
    for (int j = 0; j < g; ++j) {
        if (donor.accelSel[j] == accel) {
            child.accelSel[j] = accel;
            child.priority[j] = donor.priority[j];
        }
    }
}

void
MagmaGa::mutate(sched::Mapping& m, double rate, int num_accels,
                common::Rng& rng)
{
    int g = m.size();
    for (int i = 0; i < g; ++i) {
        if (rng.bernoulli(rate))
            m.accelSel[i] = rng.uniformInt(num_accels);
        if (rng.bernoulli(rate))
            m.priority[i] = rng.uniform();
    }
}

void
MagmaGa::run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
             SearchRecorder& rec)
{
    const int g = eval.groupSize();
    const int n_accels = eval.numAccels();
    const int pop_size = cfg_.population;

    std::vector<Scored> pop;
    pop.reserve(pop_size);
    for (const auto& s : opts.seeds) {
        if (static_cast<int>(pop.size()) >= pop_size)
            break;
        pop.push_back({s, 0.0});
    }
    while (static_cast<int>(pop.size()) < pop_size)
        pop.push_back({sched::Mapping::random(g, n_accels, rng_), 0.0});

    if (!scorePopulation(rec, pop))
        return;  // budget exhausted mid-initialization

    const int elites = std::max(2, static_cast<int>(pop_size *
                                                    cfg_.eliteRatio));
    while (!rec.exhausted()) {
        std::sort(pop.begin(), pop.end(), [](const Scored& a,
                                             const Scored& b) {
            return a.fitness > b.fitness;
        });

        // Elites survive unchanged; children are bred from elite pairs.
        std::vector<Scored> next(pop.begin(), pop.begin() + elites);
        while (static_cast<int>(next.size()) < pop_size) {
            int di = rng_.uniformInt(elites);
            int mi = rng_.uniformInt(elites);
            sched::Mapping son = pop[di].m;
            sched::Mapping daughter = pop[mi].m;

            if (cfg_.enableCrossoverGen &&
                rng_.bernoulli(cfg_.crossoverGenRate))
                crossoverGen(son, daughter, rng_);
            if (cfg_.enableCrossoverRg &&
                rng_.bernoulli(cfg_.crossoverRgRate))
                crossoverRg(son, daughter, rng_);
            if (cfg_.enableCrossoverAccel &&
                rng_.bernoulli(cfg_.crossoverAccelRate))
                crossoverAccel(son, pop[mi].m, n_accels, rng_);

            mutate(son, cfg_.mutationRate, n_accels, rng_);
            next.push_back({std::move(son), 0.0});
            if (static_cast<int>(next.size()) < pop_size) {
                mutate(daughter, cfg_.mutationRate, n_accels, rng_);
                next.push_back({std::move(daughter), 0.0});
            }
        }

        // Whole-generation batch: the children are independent, so they
        // fan out over the evaluation engine's threads.
        scorePopulation(rec, next, elites);
        pop = std::move(next);
    }
}

}  // namespace magma::opt
