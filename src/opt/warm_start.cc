#include "opt/warm_start.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "opt/magma_ga.h"

namespace magma::opt {
namespace {

/** Similarity bucket for job-matched transfer: task + layer type +
 * log2-size class of the job's MAC count. */
std::string
jobKey(const dnn::Job& job, bool with_size)
{
    // Appended piecewise: `+= "/" + std::to_string(...)` trips GCC 12's
    // -Wrestrict false positive (PR 105651) under -O2.
    std::string key = dnn::taskTypeName(job.task);
    key += '/';
    key += dnn::layerTypeName(job.layer.type);
    if (with_size) {
        int bucket = static_cast<int>(
            std::log2(static_cast<double>(std::max<int64_t>(job.macs(),
                                                            1))));
        key += '/';
        key += std::to_string(bucket / 2);  // 4x-wide size classes
    }
    return key;
}

}  // namespace

namespace transfer {

sched::Mapping
adaptPositional(const sched::Mapping& stored, int group_size,
                int num_accels)
{
    sched::Mapping base;
    base.accelSel.resize(group_size);
    base.priority.resize(group_size);
    int n = stored.size();
    if (n == 0) {
        // An empty stored solution carries no knowledge: fall back to a
        // deterministic all-on-core-0, submission-order mapping instead
        // of dividing by zero below.
        for (int i = 0; i < group_size; ++i) {
            base.accelSel[i] = 0;
            base.priority[i] = (i + 0.5) / group_size;
        }
        return base;
    }
    for (int i = 0; i < group_size; ++i) {
        base.accelSel[i] = std::min(stored.accelSel[i % n], num_accels - 1);
        base.priority[i] = stored.priority[i % n];
    }
    return base;
}

sched::Mapping
adaptJobMatched(const sched::Mapping& stored,
                const dnn::JobGroup& stored_group,
                const dnn::JobGroup& target, int num_accels,
                common::Rng& rng)
{
    // Index the stored jobs by similarity bucket (fine and coarse).
    std::unordered_map<std::string, std::vector<int>> fine, coarse;
    for (int j = 0; j < stored_group.size(); ++j) {
        fine[jobKey(stored_group.jobs[j], true)].push_back(j);
        coarse[jobKey(stored_group.jobs[j], false)].push_back(j);
    }

    sched::Mapping base;
    base.accelSel.resize(target.size());
    base.priority.resize(target.size());
    std::unordered_map<std::string, int> cursor;  // round-robin per bucket
    for (int i = 0; i < target.size(); ++i) {
        const dnn::Job& job = target.jobs[i];
        const std::vector<int>* pool = nullptr;
        std::string key = jobKey(job, true);
        auto fit = fine.find(key);
        if (fit != fine.end()) {
            pool = &fit->second;
        } else {
            key = jobKey(job, false);
            auto cit = coarse.find(key);
            if (cit != coarse.end())
                pool = &cit->second;
        }
        if (pool) {
            int src = (*pool)[cursor[key]++ % pool->size()];
            base.accelSel[i] = std::min(stored.accelSel[src],
                                        num_accels - 1);
            base.priority[i] = stored.priority[src];
        } else {
            base.accelSel[i] = rng.uniformInt(num_accels);
            base.priority[i] = rng.uniform();
        }
    }
    return base;
}

std::vector<sched::Mapping>
seedsAround(const sched::Mapping& base, int count, int num_accels,
            common::Rng& rng)
{
    std::vector<sched::Mapping> seeds;
    seeds.push_back(base);
    while (static_cast<int>(seeds.size()) < count) {
        sched::Mapping m = base;
        MagmaGa::mutate(m, 0.05, num_accels, rng);
        seeds.push_back(std::move(m));
    }
    return seeds;
}

}  // namespace transfer

void
WarmStartEngine::store(dnn::TaskType task, const sched::Mapping& best)
{
    library_[task] = Entry{best, dnn::JobGroup{}};
}

void
WarmStartEngine::store(dnn::TaskType task, const sched::Mapping& best,
                       const dnn::JobGroup& group)
{
    library_[task] = Entry{best, group};
}

bool
WarmStartEngine::has(dnn::TaskType task) const
{
    return library_.count(task) > 0;
}

std::vector<sched::Mapping>
WarmStartEngine::makeSeeds(dnn::TaskType task, int count, int group_size,
                           int num_accels, common::Rng& rng) const
{
    auto it = library_.find(task);
    if (it == library_.end())
        return {};
    return transfer::seedsAround(
        transfer::adaptPositional(it->second.mapping, group_size,
                                  num_accels),
        count, num_accels, rng);
}

std::vector<sched::Mapping>
WarmStartEngine::makeSeeds(dnn::TaskType task, int count,
                           const dnn::JobGroup& target, int num_accels,
                           common::Rng& rng) const
{
    auto it = library_.find(task);
    if (it == library_.end())
        return {};
    const Entry& entry = it->second;
    if (entry.group.jobs.empty())
        return makeSeeds(task, count, target.size(), num_accels, rng);
    return transfer::seedsAround(
        transfer::adaptJobMatched(entry.mapping, entry.group, target,
                                  num_accels, rng),
        count, num_accels, rng);
}

}  // namespace magma::opt
