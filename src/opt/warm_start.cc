#include "opt/warm_start.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "opt/magma_ga.h"

namespace magma::opt {
namespace {

/** Similarity bucket for job-matched transfer: task + layer type +
 * log2-size class of the job's MAC count. */
std::string
jobKey(const dnn::Job& job, bool with_size)
{
    // Appended piecewise: `+= "/" + std::to_string(...)` trips GCC 12's
    // -Wrestrict false positive (PR 105651) under -O2.
    std::string key = "f:";
    if (!with_size)
        key = "c:";
    key += dnn::taskTypeName(job.task);
    key += '/';
    key += dnn::layerTypeName(job.layer.type);
    if (with_size) {
        int bucket = static_cast<int>(
            std::log2(static_cast<double>(std::max<int64_t>(job.macs(),
                                                            1))));
        key += '/';
        key += std::to_string(bucket / 2);  // 4x-wide size classes
    }
    return key;
}

/** Exact identity bucket: model + full layer signature + batch — the
 * tier a job surviving across events lands in, so it inherits its own
 * gene (duplicates round-robin over the duplicate pool in order). */
std::string
exactKey(const dnn::Job& job)
{
    std::string key = "e:";
    key += job.model;
    key += '/';
    key += dnn::taskTypeName(job.task);
    key += '/';
    key += job.layer.toString();
    key += '/';
    key += std::to_string(job.batch);
    return key;
}

/**
 * Similarity index over a stored group: exact -> fine -> coarse bucket
 * pools with per-bucket round-robin cursors, shared by adaptJobMatched
 * and adaptMatched so the two paths cannot drift.
 */
struct MatchIndex {
    // Determinism audit: both maps are keyed find/lookup only, never
    // iterated — matchFor probes fixed key tiers in a fixed order, so
    // hash order cannot influence which stored job is returned.
    std::unordered_map<std::string, std::vector<int>> pools;
    std::unordered_map<std::string, int> cursor;

    explicit MatchIndex(const dnn::JobGroup& stored_group)
    {
        for (int j = 0; j < stored_group.size(); ++j) {
            const dnn::Job& job = stored_group.jobs[j];
            pools[exactKey(job)].push_back(j);
            pools[jobKey(job, true)].push_back(j);
            pools[jobKey(job, false)].push_back(j);
        }
    }

    /** Stored-job index for `job`, or -1 when no tier matches. */
    int matchFor(const dnn::Job& job)
    {
        for (const std::string& key :
             {exactKey(job), jobKey(job, true), jobKey(job, false)}) {
            auto it = pools.find(key);
            if (it != pools.end())
                return it->second[cursor[key]++ %
                                  static_cast<int>(it->second.size())];
        }
        return -1;
    }
};

}  // namespace

namespace transfer {

sched::Mapping
adaptPositional(const sched::Mapping& stored, int group_size,
                int num_accels)
{
    sched::Mapping base;
    base.accelSel.resize(group_size);
    base.priority.resize(group_size);
    int n = stored.size();
    if (n == 0) {
        // An empty stored solution carries no knowledge: fall back to a
        // deterministic all-on-core-0, submission-order mapping instead
        // of dividing by zero below.
        for (int i = 0; i < group_size; ++i) {
            base.accelSel[i] = 0;
            base.priority[i] = (i + 0.5) / group_size;
        }
        return base;
    }
    for (int i = 0; i < group_size; ++i) {
        base.accelSel[i] = std::min(stored.accelSel[i % n], num_accels - 1);
        base.priority[i] = stored.priority[i % n];
    }
    return base;
}

sched::Mapping
adaptJobMatched(const sched::Mapping& stored,
                const dnn::JobGroup& stored_group,
                const dnn::JobGroup& target, int num_accels,
                common::Rng& rng)
{
    MatchIndex index(stored_group);
    sched::Mapping base;
    base.accelSel.resize(target.size());
    base.priority.resize(target.size());
    for (int i = 0; i < target.size(); ++i) {
        int src = index.matchFor(target.jobs[i]);
        if (src >= 0) {
            base.accelSel[i] = std::min(stored.accelSel[src],
                                        num_accels - 1);
            base.priority[i] = stored.priority[src];
        } else {
            base.accelSel[i] = rng.uniformInt(num_accels);
            base.priority[i] = rng.uniform();
        }
    }
    return base;
}

sched::Mapping
adaptMatched(const sched::Mapping& stored,
             const dnn::JobGroup& stored_group, const dnn::JobGroup& target,
             const std::vector<int>& match, int num_accels,
             common::Rng& rng)
{
    if (static_cast<int>(match.size()) != target.size())
        throw std::invalid_argument(
            "adaptMatched: match vector size != target group size");
    MatchIndex index(stored_group);
    sched::Mapping base;
    base.accelSel.resize(target.size());
    base.priority.resize(target.size());
    for (int i = 0; i < target.size(); ++i) {
        int src = match[i];
        if (src >= stored.size())
            throw std::invalid_argument(
                "adaptMatched: match index out of range");
        if (src < 0)
            src = index.matchFor(target.jobs[i]);
        if (src >= 0) {
            base.accelSel[i] = std::min(stored.accelSel[src],
                                        num_accels - 1);
            base.priority[i] = stored.priority[src];
        } else {
            base.accelSel[i] = rng.uniformInt(num_accels);
            base.priority[i] = rng.uniform();
        }
    }
    return base;
}

std::vector<sched::Mapping>
seedsAround(const sched::Mapping& base, int count, int num_accels,
            common::Rng& rng)
{
    std::vector<sched::Mapping> seeds;
    seeds.push_back(base);
    while (static_cast<int>(seeds.size()) < count) {
        sched::Mapping m = base;
        MagmaGa::mutate(m, 0.05, num_accels, rng);
        seeds.push_back(std::move(m));
    }
    return seeds;
}

}  // namespace transfer

void
WarmStartEngine::store(dnn::TaskType task, const sched::Mapping& best)
{
    library_[task] = Entry{best, dnn::JobGroup{}};
}

void
WarmStartEngine::store(dnn::TaskType task, const sched::Mapping& best,
                       const dnn::JobGroup& group)
{
    library_[task] = Entry{best, group};
}

bool
WarmStartEngine::has(dnn::TaskType task) const
{
    return library_.count(task) > 0;
}

std::vector<sched::Mapping>
WarmStartEngine::makeSeeds(dnn::TaskType task, int count, int group_size,
                           int num_accels, common::Rng& rng) const
{
    auto it = library_.find(task);
    if (it == library_.end())
        return {};
    return transfer::seedsAround(
        transfer::adaptPositional(it->second.mapping, group_size,
                                  num_accels),
        count, num_accels, rng);
}

std::vector<sched::Mapping>
WarmStartEngine::makeSeeds(dnn::TaskType task, int count,
                           const dnn::JobGroup& target, int num_accels,
                           common::Rng& rng) const
{
    auto it = library_.find(task);
    if (it == library_.end())
        return {};
    const Entry& entry = it->second;
    if (entry.group.jobs.empty())
        return makeSeeds(task, count, target.size(), num_accels, rng);
    return transfer::seedsAround(
        transfer::adaptJobMatched(entry.mapping, entry.group, target,
                                  num_accels, rng),
        count, num_accels, rng);
}

}  // namespace magma::opt
