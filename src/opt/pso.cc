#include "opt/pso.h"

#include <algorithm>
#include <vector>

#include "opt/flat.h"

namespace magma::opt {

void
Pso::run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
         SearchRecorder& rec)
{
    const int dim = 2 * eval.groupSize();
    const int n_accels = eval.numAccels();
    const int np = cfg_.population;

    std::vector<std::vector<double>> pos(np), vel(np), pbest(np);
    std::vector<double> pbest_fit(np);
    std::vector<double> gbest;
    double gbest_fit = -1e300;

    // --- Init swarm, then score the whole swarm as one batch. ---
    for (int i = 0; i < np; ++i) {
        if (i < static_cast<int>(opts.seeds.size()))
            pos[i] = opts.seeds[i].toFlat(n_accels);
        else
            pos[i] = flat::randomPoint(dim, rng_);
        vel[i].assign(dim, 0.0);
        for (double& v : vel[i])
            v = rng_.uniform(-cfg_.velocityClamp, cfg_.velocityClamp);
    }
    {
        std::vector<double> fits = flat::evaluateBatch(rec, pos, n_accels);
        for (size_t i = 0; i < fits.size(); ++i) {
            pbest[i] = pos[i];
            pbest_fit[i] = fits[i];
            if (fits[i] > gbest_fit) {
                gbest_fit = fits[i];
                gbest = pos[i];
            }
        }
        if (fits.size() < static_cast<size_t>(np))
            return;  // budget exhausted mid-initialization
    }

    // --- Synchronous PSO: every particle moves against the bests of the
    // previous generation, the new positions are scored as one batch, and
    // pbest/gbest are refreshed afterwards in particle order.
    while (!rec.exhausted()) {
        for (int i = 0; i < np; ++i) {
            for (int d = 0; d < dim; ++d) {
                double v = cfg_.momentum * vel[i][d] +
                           cfg_.personalWeight * rng_.uniform() *
                               (pbest[i][d] - pos[i][d]) +
                           cfg_.globalWeight * rng_.uniform() *
                               (gbest[d] - pos[i][d]);
                vel[i][d] = std::clamp(v, -cfg_.velocityClamp,
                                       cfg_.velocityClamp);
                pos[i][d] = std::clamp(pos[i][d] + vel[i][d], 0.0, 1.0);
            }
        }
        std::vector<double> fits = flat::evaluateBatch(rec, pos, n_accels);
        for (size_t i = 0; i < fits.size(); ++i) {
            if (fits[i] > pbest_fit[i]) {
                pbest_fit[i] = fits[i];
                pbest[i] = pos[i];
            }
            if (fits[i] > gbest_fit) {
                gbest_fit = fits[i];
                gbest = pos[i];
            }
        }
    }
}

}  // namespace magma::opt
