#ifndef MAGMA_OPT_TBPSA_H_
#define MAGMA_OPT_TBPSA_H_

#include "opt/optimizer.h"

namespace magma::opt {

/** Table IV: initial population 50, allowed to evolve. */
struct TbpsaConfig {
    int initialPopulation = 50;
    int maxPopulation = 400;
    double initialSigma = 0.3;
};

/**
 * Test-based Population-Size Adaptation (Hellwig & Beyer style, as shipped
 * in Nevergrad): a (mu, lambda) evolution strategy whose population grows
 * when successive generations fail a progress test (a symptom of noise or
 * ruggedness) and shrinks again on clear progress. Recombination is the
 * average of the mu best; step size follows a success-based rule.
 */
class Tbpsa : public Optimizer {
  public:
    explicit Tbpsa(uint64_t seed, TbpsaConfig cfg = {})
        : Optimizer(seed), cfg_(cfg)
    {}
    std::string name() const override { return "TBPSA"; }

  protected:
    void run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
             SearchRecorder& rec) override;

  private:
    TbpsaConfig cfg_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_TBPSA_H_
