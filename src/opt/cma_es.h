#ifndef MAGMA_OPT_CMA_ES_H_
#define MAGMA_OPT_CMA_ES_H_

#include "opt/optimizer.h"

namespace magma::opt {

/**
 * Table IV: half of the best-performing individuals form the elite
 * (recombination) group. Population defaults to the usual
 * 4 + floor(3 ln n) unless overridden.
 */
struct CmaEsConfig {
    int population = 0;       ///< 0 = 4 + 3 ln(dim)
    double initialSigma = 0.3;
    int eigenInterval = 10;   ///< generations between eigendecompositions
};

/**
 * Covariance Matrix Adaptation Evolution Strategy on the flat encoding.
 *
 * Full-covariance CMA-ES with rank-one and rank-mu updates and cumulative
 * step-size adaptation. The eigendecomposition (Jacobi, from
 * common/matrix.h) is refreshed lazily every `eigenInterval` generations,
 * which is the standard trick for higher-dimensional problems.
 */
class CmaEs : public Optimizer {
  public:
    explicit CmaEs(uint64_t seed, CmaEsConfig cfg = {})
        : Optimizer(seed), cfg_(cfg)
    {}
    std::string name() const override { return "CMA"; }

  protected:
    void run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
             SearchRecorder& rec) override;

  private:
    CmaEsConfig cfg_;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_CMA_ES_H_
