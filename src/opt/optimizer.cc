#include "opt/optimizer.h"

#include <algorithm>
#include <cassert>

#include "exec/eval_engine.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace magma::opt {
namespace {

/** Search-level counters, resolved once. */
struct OptMetrics {
    obs::Counter& samples;
    obs::Counter& generations;
    obs::Counter& searches;
};

OptMetrics&
optMetrics()
{
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    static OptMetrics m{reg.counter("opt.samples"),
                        reg.counter("opt.generations"),
                        reg.counter("opt.searches")};
    return m;
}

}  // namespace

SearchRecorder::SearchRecorder(const sched::MappingEvaluator& eval,
                               const SearchOptions& opts)
    : eval_(&eval), opts_(opts)
{
    obs::MetricsLevel level = obs::effectiveLevel(opts_.metrics);
    obs_counters_ = level != obs::MetricsLevel::Off;
    obs_trace_ = level == obs::MetricsLevel::Trace ||
                 level == obs::MetricsLevel::Profile;
    if (opts_.recordConvergence)
        result_.convergence.reserve(opts_.sampleBudget);
    if (opts_.engine) {
        // A reused engine must wrap the evaluator this search runs on;
        // otherwise candidates would be scored against another problem.
        assert(&opts_.engine->evaluator() == &eval);
        engine_ = opts_.engine;
    } else if (opts_.threads != 1 ||
               opts_.evalMode == sched::EvalMode::Flat) {
        // An engine is also built for single-threaded flat searches:
        // it owns the compiled FlatEvaluator + scratch, and a 1-lane
        // ThreadPool spawns no threads, so the serial path stays serial.
        owned_engine_ = std::make_unique<exec::EvalEngine>(
            eval, opts_.threads, opts_.evalMode);
        engine_ = owned_engine_.get();
    }
}

SearchRecorder::~SearchRecorder() = default;

void
SearchRecorder::record(const sched::Mapping& m, double f)
{
    ++used_;
    if (f > result_.bestFitness) {
        result_.bestFitness = f;
        result_.best = m;
    }
    if (opts_.recordConvergence)
        result_.convergence.push_back(result_.bestFitness);
    if (opts_.recordSamples) {
        result_.sampled.push_back(m);
        result_.sampledFitness.push_back(f);
    }
}

double
SearchRecorder::evaluate(const sched::Mapping& m)
{
    assert(!exhausted());
    double f = engine_ ? engine_->fitnessOne(m) : eval_->fitness(m);
    record(m, f);
    if (obs_counters_)
        optMetrics().samples.add();
    return f;
}

std::vector<double>
SearchRecorder::evaluateBatch(const std::vector<sched::Mapping>& ms)
{
    PROFILE_SCOPE("opt.generation");
    size_t n = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(ms.size()), remaining()));
    if (n == 0)
        return {};

    std::vector<double> fitness;
    if (engine_ && n > 1) {
        fitness = engine_->evaluateBatch(ms.data(), n);
    } else {
        fitness.resize(n);
        for (size_t i = 0; i < n; ++i)
            fitness[i] =
                engine_ ? engine_->fitnessOne(ms[i]) : eval_->fitness(ms[i]);
    }
    // Sequential bookkeeping in submission order keeps budget accounting
    // and convergence curves identical to the serial path.
    for (size_t i = 0; i < n; ++i)
        record(ms[i], fitness[i]);
    // One evaluateBatch call per generation in every population method —
    // this is the per-generation choke point the search trace hangs off.
    if (obs_counters_) {
        OptMetrics& m = optMetrics();
        m.samples.add(static_cast<int64_t>(n));
        m.generations.add();
    }
    if (obs_trace_) {
        // Recorded directly (not via traceInstant) so a per-search Trace
        // override takes effect even when the process level is lower.
        obs::Tracer& t = obs::Tracer::global();
        obs::TraceEvent e;
        e.name = "opt.generation";
        e.startSeconds = t.nowSeconds();
        e.i = generation_;
        e.a = result_.bestFitness;
        e.b = static_cast<double>(used_);
        t.record(std::move(e));
    }
    ++generation_;
    return fitness;
}

SearchResult
SearchRecorder::finish()
{
    result_.samplesUsed = used_;
    return std::move(result_);
}

SearchResult
Optimizer::search(const sched::MappingEvaluator& eval,
                  const SearchOptions& opts)
{
    obs::MetricsLevel level = obs::effectiveLevel(opts.metrics);
    bool tracing = level == obs::MetricsLevel::Trace ||
                   level == obs::MetricsLevel::Profile;
    double t0 = tracing ? obs::Tracer::global().nowSeconds() : 0.0;
    PROFILE_SCOPE("opt.search");
    SearchRecorder rec(eval, opts);
    if (!rec.exhausted())
        run(eval, opts, rec);
    SearchResult result = rec.finish();
    if (level != obs::MetricsLevel::Off)
        optMetrics().searches.add();
    if (tracing) {
        obs::Tracer& t = obs::Tracer::global();
        obs::TraceEvent e;
        e.name = "opt.search";
        e.startSeconds = t0;
        e.durSeconds = t.nowSeconds() - t0;
        e.i = result.samplesUsed;
        e.a = result.bestFitness;
        t.record(std::move(e));
    }
    return result;
}

}  // namespace magma::opt
