#include "opt/optimizer.h"

#include <algorithm>
#include <cassert>

#include "exec/eval_engine.h"

namespace magma::opt {

SearchRecorder::SearchRecorder(const sched::MappingEvaluator& eval,
                               const SearchOptions& opts)
    : eval_(&eval), opts_(opts)
{
    if (opts_.recordConvergence)
        result_.convergence.reserve(opts_.sampleBudget);
    if (opts_.engine) {
        // A reused engine must wrap the evaluator this search runs on;
        // otherwise candidates would be scored against another problem.
        assert(&opts_.engine->evaluator() == &eval);
        engine_ = opts_.engine;
    } else if (opts_.threads != 1 ||
               opts_.evalMode == sched::EvalMode::Flat) {
        // An engine is also built for single-threaded flat searches:
        // it owns the compiled FlatEvaluator + scratch, and a 1-lane
        // ThreadPool spawns no threads, so the serial path stays serial.
        owned_engine_ = std::make_unique<exec::EvalEngine>(
            eval, opts_.threads, opts_.evalMode);
        engine_ = owned_engine_.get();
    }
}

SearchRecorder::~SearchRecorder() = default;

void
SearchRecorder::record(const sched::Mapping& m, double f)
{
    ++used_;
    if (f > result_.bestFitness) {
        result_.bestFitness = f;
        result_.best = m;
    }
    if (opts_.recordConvergence)
        result_.convergence.push_back(result_.bestFitness);
    if (opts_.recordSamples) {
        result_.sampled.push_back(m);
        result_.sampledFitness.push_back(f);
    }
}

double
SearchRecorder::evaluate(const sched::Mapping& m)
{
    assert(!exhausted());
    double f = engine_ ? engine_->fitnessOne(m) : eval_->fitness(m);
    record(m, f);
    return f;
}

std::vector<double>
SearchRecorder::evaluateBatch(const std::vector<sched::Mapping>& ms)
{
    size_t n = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(ms.size()), remaining()));
    if (n == 0)
        return {};

    std::vector<double> fitness;
    if (engine_ && n > 1) {
        fitness = engine_->evaluateBatch(ms.data(), n);
    } else {
        fitness.resize(n);
        for (size_t i = 0; i < n; ++i)
            fitness[i] =
                engine_ ? engine_->fitnessOne(ms[i]) : eval_->fitness(ms[i]);
    }
    // Sequential bookkeeping in submission order keeps budget accounting
    // and convergence curves identical to the serial path.
    for (size_t i = 0; i < n; ++i)
        record(ms[i], fitness[i]);
    return fitness;
}

SearchResult
SearchRecorder::finish()
{
    result_.samplesUsed = used_;
    return std::move(result_);
}

SearchResult
Optimizer::search(const sched::MappingEvaluator& eval,
                  const SearchOptions& opts)
{
    SearchRecorder rec(eval, opts);
    if (!rec.exhausted())
        run(eval, opts, rec);
    return rec.finish();
}

}  // namespace magma::opt
