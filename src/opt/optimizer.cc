#include "opt/optimizer.h"

#include <cassert>

namespace magma::opt {

SearchRecorder::SearchRecorder(const sched::MappingEvaluator& eval,
                               const SearchOptions& opts)
    : eval_(&eval), opts_(opts)
{
    if (opts_.recordConvergence)
        result_.convergence.reserve(opts_.sampleBudget);
}

double
SearchRecorder::evaluate(const sched::Mapping& m)
{
    assert(!exhausted());
    double f = eval_->fitness(m);
    ++used_;
    if (f > result_.bestFitness) {
        result_.bestFitness = f;
        result_.best = m;
    }
    if (opts_.recordConvergence)
        result_.convergence.push_back(result_.bestFitness);
    if (opts_.recordSamples) {
        result_.sampled.push_back(m);
        result_.sampledFitness.push_back(f);
    }
    return f;
}

SearchResult
SearchRecorder::finish()
{
    result_.samplesUsed = used_;
    return std::move(result_);
}

SearchResult
Optimizer::search(const sched::MappingEvaluator& eval,
                  const SearchOptions& opts)
{
    SearchRecorder rec(eval, opts);
    if (!rec.exhausted())
        run(eval, opts, rec);
    return rec.finish();
}

}  // namespace magma::opt
