#ifndef MAGMA_OPT_RANDOM_SEARCH_H_
#define MAGMA_OPT_RANDOM_SEARCH_H_

#include "opt/optimizer.h"

namespace magma::opt {

/**
 * Uniform random sampling of the mapping space — the "Exhaustively
 * Sampled" reference of Fig. 10 when given a very large budget, and the
 * sanity baseline every other method must beat.
 */
class RandomSearch : public Optimizer {
  public:
    explicit RandomSearch(uint64_t seed) : Optimizer(seed) {}
    std::string name() const override { return "Random"; }

  protected:
    void run(const sched::MappingEvaluator& eval, const SearchOptions& opts,
             SearchRecorder& rec) override;
};

}  // namespace magma::opt

#endif  // MAGMA_OPT_RANDOM_SEARCH_H_
