#include "serve/mapping_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace magma::serve {
namespace {

dnn::TaskType
taskTypeFromName(const std::string& name)
{
    for (dnn::TaskType t :
         {dnn::TaskType::Vision, dnn::TaskType::Language,
          dnn::TaskType::Recommendation, dnn::TaskType::Mix})
        if (dnn::taskTypeName(t) == name)
            return t;
    throw std::invalid_argument("MappingStore: unknown task '" + name +
                                "'");
}

dnn::LayerType
layerTypeFromName(const std::string& name)
{
    for (dnn::LayerType t :
         {dnn::LayerType::Conv2d, dnn::LayerType::DepthwiseConv2d,
          dnn::LayerType::PointwiseConv2d, dnn::LayerType::FullyConnected})
        if (dnn::layerTypeName(t) == name)
            return t;
    throw std::invalid_argument("MappingStore: unknown layer type '" +
                                name + "'");
}

std::string
fullPrecision(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** FNV-1a 64-bit — the log-record payload checksum. */
uint64_t
fnv1a64(const std::string& s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
fnv1a64Hex(const std::string& s)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(s)));
    return buf;
}

/** Serialize one entry block ("entry" .. "end"), shared by the snapshot
 * writer and the log's put records. */
void
writeEntry(std::ostream& os, const StoreEntry& e)
{
    os << "entry\n";
    os << "key " << e.key << "\n";
    os << "coarse " << e.coarse << "\n";
    os << "task " << dnn::taskTypeName(e.task) << "\n";
    os << "fitness " << fullPrecision(e.fitness) << "\n";
    os << "samples " << e.samplesInvested << "\n";
    os << "mapping " << e.mapping.toText() << "\n";
    os << "jobs " << e.group.size() << "\n";
    for (const dnn::Job& j : e.group.jobs) {
        const dnn::LayerShape& l = j.layer;
        os << "job " << j.id << " " << dnn::taskTypeName(j.task) << " "
           << dnn::layerTypeName(l.type) << " " << l.k << " " << l.c << " "
           << l.y << " " << l.x << " " << l.r << " " << l.s << " "
           << l.stride << " " << j.batch << " " << j.model << "\n";
    }
    os << "end\n";
}

/** Parse one entry block ("entry" .. "end"); throws std::invalid_argument
 * on any malformation. Shared by the snapshot loader and log replay. */
StoreEntry
parseEntry(std::istream& is)
{
    auto fail = [](const std::string& what) -> void {
        throw std::invalid_argument("MappingStore: " + what);
    };

    std::string line;
    if (!std::getline(is, line) || line != "entry")
        fail("expected 'entry'");

    StoreEntry e;
    int64_t jobs = 0;
    auto field = [&](const std::string& name) -> std::istringstream {
        if (!std::getline(is, line))
            fail("truncated entry");
        std::istringstream line_is(line);
        std::string tag;
        if (!(line_is >> tag) || tag != name)
            fail("expected '" + name + "' line, got '" + line + "'");
        return line_is;
    };

    if (!(field("key") >> e.key) || e.key.empty())
        fail("bad key");
    if (!(field("coarse") >> e.coarse) || e.coarse.empty())
        fail("bad coarse key");
    std::string task_name;
    if (!(field("task") >> task_name))
        fail("bad task");
    e.task = taskTypeFromName(task_name);
    if (!(field("fitness") >> e.fitness))
        fail("bad fitness");
    if (!(field("samples") >> e.samplesInvested))
        fail("bad samples");
    {
        auto line_is = field("mapping");
        std::string rest;
        std::getline(line_is, rest);
        e.mapping = sched::Mapping::fromText(rest);
    }
    if (!(field("jobs") >> jobs) || jobs < 0)
        fail("bad job count");
    e.group.task = e.task;
    e.group.jobs.reserve(jobs);
    for (int64_t j = 0; j < jobs; ++j) {
        auto line_is = field("job");
        dnn::Job job;
        std::string jtask, jtype;
        dnn::LayerShape& l = job.layer;
        if (!(line_is >> job.id >> jtask >> jtype >> l.k >> l.c >> l.y >>
              l.x >> l.r >> l.s >> l.stride >> job.batch))
            fail("bad job line '" + line + "'");
        job.task = taskTypeFromName(jtask);
        l.type = layerTypeFromName(jtype);
        std::getline(line_is >> std::ws, job.model);
        e.group.jobs.push_back(std::move(job));
    }
    if (!std::getline(is, line) || line != "end")
        fail("expected 'end'");
    return e;
}

constexpr const char* kLogHeader = "magma-store-log v1\n";

}  // namespace

struct MappingStore::Shard {
    struct Slot {
        StoreEntry entry;
        uint64_t lastUsed = 0;
    };
    mutable std::mutex mu;
    // Determinism audit: the three iteration sites over this map (coarse
    // scan, LRU victim scan, save collection) each carry an
    // allow(unordered-iter) tag stating why their result is independent
    // of hash order; everything else is keyed find/emplace/erase.
    std::unordered_map<std::string, Slot> map;
};

MappingStore::MappingStore(int capacity, int shards)
    : capacity_(std::max(1, capacity)),
      num_shards_(std::max(1, shards)),
      shards_(new Shard[std::max(1, shards)])
{}

MappingStore::~MappingStore() { closeLog(); }

MappingStore::Shard&
MappingStore::shardFor(const std::string& key) const
{
    return shards_[std::hash<std::string>{}(key) % num_shards_];
}

std::optional<MappingStore::Hit>
MappingStore::lookup(const Fingerprint& fp)
{
    {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.lookups;
    }

    // Tier 1: exact fine-fingerprint hit.
    {
        Shard& shard = shardFor(fp.key);
        std::lock_guard<std::mutex> lk(shard.mu);
        auto it = shard.map.find(fp.key);
        if (it != shard.map.end()) {
            it->second.lastUsed =
                clock_.fetch_add(1, std::memory_order_relaxed) + 1;
            std::lock_guard<std::mutex> slk(stats_mu_);
            ++stats_.exactHits;
            return Hit{it->second.entry, /*exact=*/true};
        }
    }

    // Tier 2: best entry sharing the coarse key (highest fitness, stable
    // tie-break on key — deterministic for a fixed store content). The
    // scan only records (key, fitness); the winning entry is copied once
    // under its shard lock afterwards.
    std::string best_key;
    double best_fitness = 0.0;
    for (int s = 0; s < num_shards_; ++s) {
        std::lock_guard<std::mutex> lk(shards_[s].mu);
        // magma-lint: allow(unordered-iter): max-by-(fitness, key) scan —
        // the winner is the same whatever order the entries are visited.
        for (const auto& [key, slot] : shards_[s].map) {
            if (slot.entry.coarse != fp.coarse)
                continue;
            if (best_key.empty() || slot.entry.fitness > best_fitness ||
                (slot.entry.fitness == best_fitness && key < best_key)) {
                best_key = key;
                best_fitness = slot.entry.fitness;
            }
        }
    }
    if (!best_key.empty()) {
        Shard& shard = shardFor(best_key);
        std::lock_guard<std::mutex> lk(shard.mu);
        auto it = shard.map.find(best_key);
        if (it != shard.map.end()) {
            it->second.lastUsed =
                clock_.fetch_add(1, std::memory_order_relaxed) + 1;
            std::lock_guard<std::mutex> slk(stats_mu_);
            ++stats_.coarseHits;
            return Hit{it->second.entry, /*exact=*/false};
        }
        // Evicted between scan and re-lock (rare race): fall through to
        // a miss rather than serving a stale copy.
    }

    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.misses;
    return std::nullopt;
}

bool
MappingStore::update(const Fingerprint& fp, dnn::TaskType task,
                     const sched::Mapping& best, const dnn::JobGroup& group,
                     double fitness, int64_t samples_invested)
{
    if (best.size() == 0)
        return false;  // an empty mapping carries no transferable knowledge
    bool changed = false;
    bool inserted = false;
    {
        Shard& shard = shardFor(fp.key);
        std::lock_guard<std::mutex> lk(shard.mu);
        auto it = shard.map.find(fp.key);
        uint64_t now = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (it == shard.map.end()) {
            Shard::Slot slot;
            slot.entry = StoreEntry{fp.key,  fp.coarse, task,
                                    best,    group,     fitness,
                                    samples_invested};
            slot.lastUsed = now;
            shard.map.emplace(fp.key, std::move(slot));
            changed = inserted = true;
        } else if (fitness > it->second.entry.fitness) {
            it->second.entry.mapping = best;
            it->second.entry.group = group;
            it->second.entry.fitness = fitness;
            it->second.entry.samplesInvested += samples_invested;
            it->second.lastUsed = now;
            changed = true;
        } else {
            it->second.entry.samplesInvested += samples_invested;
            it->second.lastUsed = now;
        }
    }
    {
        std::lock_guard<std::mutex> lk(stats_mu_);
        if (inserted) {
            ++stats_.inserts;
            ++stats_.entries;
        } else if (changed) {
            ++stats_.improvements;
        } else {
            ++stats_.rejects;
        }
    }
    {
        // Log the put as submitted (not the winner): replay re-runs the
        // same better-fitness-wins rule, so any interleaving of records
        // converges to the same store content, and rejected write-backs
        // still replay their samplesInvested accumulation.
        std::lock_guard<std::mutex> lk(log_mu_);
        if (log_) {
            std::ostringstream payload;
            writeEntry(payload, StoreEntry{fp.key, fp.coarse, task, best,
                                           group, fitness,
                                           samples_invested});
            const std::string body = payload.str();
            appendRecordLocked("put " + std::to_string(body.size()) + " " +
                               fnv1a64Hex(body) + "\n" + body);
        }
    }
    if (inserted)
        enforceCapacity();
    return changed;
}

void
MappingStore::enforceCapacity()
{
    // Lock every shard in index order (the store-wide operations — this,
    // save, load, clear — all use the same order, so they cannot
    // deadlock with one another).
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(num_shards_);
    for (int s = 0; s < num_shards_; ++s)
        locks.emplace_back(shards_[s].mu);

    int64_t total = 0;
    for (int s = 0; s < num_shards_; ++s)
        total += static_cast<int64_t>(shards_[s].map.size());

    std::vector<std::string> evicted_keys;
    while (total > capacity_) {
        int victim_shard = -1;
        std::string victim_key;
        uint64_t oldest = 0;
        for (int s = 0; s < num_shards_; ++s) {
            // magma-lint: allow(unordered-iter): min-by-(lastUsed, key)
            // victim scan — order-independent for a fixed store content.
            for (const auto& [key, slot] : shards_[s].map) {
                if (victim_shard < 0 || slot.lastUsed < oldest ||
                    (slot.lastUsed == oldest && key < victim_key)) {
                    victim_shard = s;
                    victim_key = key;
                    oldest = slot.lastUsed;
                }
            }
        }
        shards_[victim_shard].map.erase(victim_key);
        evicted_keys.push_back(std::move(victim_key));
        --total;
    }
    locks.clear();  // release every shard before touching log_mu_

    if (!evicted_keys.empty()) {
        {
            std::lock_guard<std::mutex> lk(stats_mu_);
            stats_.evictions += static_cast<int64_t>(evicted_keys.size());
            stats_.entries -= static_cast<int64_t>(evicted_keys.size());
        }
        std::lock_guard<std::mutex> lk(log_mu_);
        if (log_)
            for (const std::string& key : evicted_keys)
                appendRecordLocked("evict " + key + "\n");
    }
}

void
MappingStore::recordTransferQuality(double trf0_over_refined)
{
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.transferQualitySum += trf0_over_refined;
    ++stats_.transferQualityCount;
}

StoreStats
MappingStore::stats() const
{
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
}

int64_t
MappingStore::size() const
{
    int64_t total = 0;
    for (int s = 0; s < num_shards_; ++s) {
        std::lock_guard<std::mutex> lk(shards_[s].mu);
        total += static_cast<int64_t>(shards_[s].map.size());
    }
    return total;
}

void
MappingStore::clear()
{
    for (int s = 0; s < num_shards_; ++s) {
        std::lock_guard<std::mutex> lk(shards_[s].mu);
        shards_[s].map.clear();
    }
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_ = StoreStats{};
}

// ------------------------------------------------------- persistence ---

void
MappingStore::save(std::ostream& os) const
{
    std::vector<StoreEntry> entries;
    {
        std::vector<std::unique_lock<std::mutex>> locks;
        locks.reserve(num_shards_);
        for (int s = 0; s < num_shards_; ++s)
            locks.emplace_back(shards_[s].mu);
        for (int s = 0; s < num_shards_; ++s)
            // magma-lint: allow(unordered-iter): collection pass only;
            // entries are key-sorted below before any byte is written.
            for (const auto& [key, slot] : shards_[s].map)
                entries.push_back(slot.entry);
    }
    std::sort(entries.begin(), entries.end(),
              [](const StoreEntry& a, const StoreEntry& b) {
                  return a.key < b.key;
              });

    os << "magma-store-snapshot v1 " << entries.size() << "\n";
    for (const StoreEntry& e : entries)
        writeEntry(os, e);
}

bool
MappingStore::saveFile(const std::string& path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    save(os);
    return static_cast<bool>(os);
}

void
MappingStore::load(std::istream& is)
{
    auto fail = [](const std::string& what) -> void {
        throw std::invalid_argument("MappingStore::load: " + what);
    };

    std::string line;
    if (!std::getline(is, line))
        fail("empty stream");
    std::istringstream header(line);
    std::string magic, version;
    size_t count = 0;
    if (!(header >> magic >> version >> count) ||
        magic != "magma-store-snapshot" || version != "v1")
        fail("bad header '" + line + "'");

    // Parse the whole stream before touching the store, so a malformed
    // stream leaves the current content intact (atomic replace).
    std::vector<StoreEntry> parsed;
    parsed.reserve(count);
    for (size_t n = 0; n < count; ++n)
        parsed.push_back(parseEntry(is));

    clear();
    for (StoreEntry& e : parsed) {
        Fingerprint fp{e.key, e.coarse};
        update(fp, e.task, e.mapping, e.group, e.fitness,
               e.samplesInvested);
    }

    // Reloaded knowledge starts with fresh process counters: only the
    // entry count describes the store itself.
    int64_t entries = size();
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_ = StoreStats{};
    stats_.entries = entries;
}

bool
MappingStore::loadFile(const std::string& path)
{
    std::ifstream is(path);
    if (!is)
        return false;
    load(is);
    return true;
}

// -------------------------------------------------------- append-log ---

void
MappingStore::appendRecordLocked(const std::string& record)
{
    if (std::fwrite(record.data(), 1, record.size(), log_) !=
        record.size())
        return;  // best effort: a full disk must not take serving down
    std::fflush(log_);
    ::fsync(::fileno(log_));
    ++log_records_;
}

bool
MappingStore::openLog(const std::string& path)
{
    std::lock_guard<std::mutex> lk(log_mu_);
    if (log_) {
        std::fclose(log_);
        log_ = nullptr;
    }
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (!f)
        return false;
    log_ = f;
    log_path_ = path;
    log_records_ = 0;
    if (std::ftell(log_) == 0) {
        std::fwrite(kLogHeader, 1, std::strlen(kLogHeader), log_);
        std::fflush(log_);
        ::fsync(::fileno(log_));
    }
    return true;
}

void
MappingStore::closeLog()
{
    std::lock_guard<std::mutex> lk(log_mu_);
    if (log_) {
        std::fclose(log_);
        log_ = nullptr;
    }
    log_path_.clear();
}

int64_t
MappingStore::logRecords() const
{
    std::lock_guard<std::mutex> lk(log_mu_);
    return log_records_;
}

bool
MappingStore::compact(const std::string& snapshot_path)
{
    // Holding log_mu_ across the snapshot blocks concurrent appends, so
    // no put can slip between the fold and the truncation. Lock order
    // log_mu_ -> shard mutexes matches the policy in the header.
    std::lock_guard<std::mutex> lk(log_mu_);

    std::ostringstream text;
    save(text);
    const std::string body = text.str();

    const std::string tmp = snapshot_path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    ok = std::fflush(f) == 0 && ok;
    ok = ::fsync(::fileno(f)) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), snapshot_path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }

    if (log_) {
        std::fclose(log_);
        log_ = std::fopen(log_path_.c_str(), "wb");
        if (!log_)
            return false;
        std::fwrite(kLogHeader, 1, std::strlen(kLogHeader), log_);
        std::fflush(log_);
        ::fsync(::fileno(log_));
        log_records_ = 0;
    }
    return true;
}

int64_t
MappingStore::replayLog(const std::string& text)
{
    size_t pos = 0;
    // One framed record line; nullopt when no terminating newline is
    // left — the torn-tail signal that ends the replay.
    auto nextLine = [&]() -> std::optional<std::string> {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return std::nullopt;
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return line;
    };

    if (text.empty())
        return 0;
    auto header = nextLine();
    if (!header)
        return 0;  // torn header: an empty log
    {
        std::istringstream hs(*header);
        std::string magic, version;
        if (!(hs >> magic >> version) || magic != "magma-store-log" ||
            version != "v1")
            throw std::invalid_argument(
                "MappingStore: bad log header '" + *header + "'");
    }

    // The log is an append-only journal: replay applies complete, valid
    // records in order and discards everything from the first torn or
    // invalid record on (the kill -9 contract covers the torn case).
    int64_t applied = 0;
    while (pos < text.size()) {
        auto rec = nextLine();
        if (!rec)
            break;
        std::istringstream rs(*rec);
        std::string kind;
        rs >> kind;
        if (kind == "put") {
            long long nbytes = 0;
            std::string checksum;
            if (!(rs >> nbytes >> checksum) || nbytes <= 0)
                break;
            if (pos + static_cast<size_t>(nbytes) > text.size())
                break;  // torn payload
            std::string body = text.substr(pos, nbytes);
            pos += static_cast<size_t>(nbytes);
            if (fnv1a64Hex(body) != checksum)
                break;
            StoreEntry e;
            try {
                std::istringstream body_is(body);
                e = parseEntry(body_is);
            } catch (const std::invalid_argument&) {
                break;
            }
            update(Fingerprint{e.key, e.coarse}, e.task, e.mapping,
                   e.group, e.fitness, e.samplesInvested);
            ++applied;
        } else if (kind == "evict") {
            std::string key;
            if (!(rs >> key) || key.empty())
                break;
            eraseKey(key);
            ++applied;
        } else {
            break;
        }
    }
    return applied;
}

void
MappingStore::eraseKey(const std::string& key)
{
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.map.erase(key);
}

int64_t
MappingStore::recover(const std::string& snapshot_path,
                      const std::string& log_path)
{
    {
        std::ifstream is(snapshot_path);
        if (is)
            load(is);
        else
            clear();
    }

    int64_t applied = 0;
    std::ifstream lf(log_path, std::ios::binary);
    if (lf) {
        std::ostringstream buf;
        buf << lf.rdbuf();
        applied = replayLog(buf.str());
    }

    // Replay ran through the normal update/evict path, which perturbs
    // the process counters; recovered knowledge starts them fresh.
    int64_t entries = size();
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_ = StoreStats{};
    stats_.entries = entries;
    return applied;
}

}  // namespace magma::serve
