#include "serve/service.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <optional>
#include <stdexcept>

#include "api/registry.h"
#include "exec/eval_engine.h"
#include "exec/thread_pool.h"
#include "m3e/problem.h"
#include "mo/pareto.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "opt/magma_ga.h"
#include "opt/warm_start.h"
#include "serve/fingerprint.h"

namespace magma::serve {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

}  // namespace

MappingService::MappingService(ServiceConfig cfg)
    : cfg_(cfg),
      reg_(cfg.registry ? cfg.registry : &obs::MetricsRegistry::global()),
      store_(cfg.storeCapacity, cfg.storeShards)
{
    cfg_.workers = std::max(1, cfg_.workers);
    if (!cfg_.storePath.empty()) {
        const std::string log_path = cfg_.storePath + ".log";
        try {
            // Crash recovery: snapshot, then the append-log's complete
            // records (a torn final record ends the replay cleanly).
            store_.recover(cfg_.storePath, log_path);
        } catch (const std::exception& e) {
            // A corrupt store must not keep the service down; start
            // cold instead.
            std::fprintf(stderr,
                         "MappingService: ignoring store '%s': %s\n",
                         cfg_.storePath.c_str(), e.what());
            store_.clear();
        }
        if (store_.openLog(log_path)) {
            // Fold the replayed records into a fresh snapshot and
            // truncate the log — this also discards any torn tail, so
            // new records never append behind one.
            if (!store_.compact(cfg_.storePath))
                std::fprintf(stderr,
                             "MappingService: could not compact store "
                             "'%s'\n",
                             cfg_.storePath.c_str());
        } else {
            std::fprintf(stderr,
                         "MappingService: could not open store log "
                         "'%s'\n",
                         log_path.c_str());
        }
    }
    if (cfg_.autoStart)
        start();
}

MappingService::~MappingService()
{
    stop();
}

void
MappingService::start()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (running_ || stopping_)
        return;
    running_ = true;
    workers_.reserve(cfg_.workers);
    for (int w = 0; w < cfg_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

std::future<MapResponse>
MappingService::submit(MapRequest req)
{
    Pending p;
    p.req = std::move(req);
    p.enqueued = std::chrono::steady_clock::now();
    std::future<MapResponse> future = p.promise.get_future();

    // The coalescing key needs the materialized workload; pay for the
    // generator and platform build outside the queue lock. This mirrors
    // serveOne()'s fingerprint exactly, so a follower adopts precisely
    // the result its own search would have produced (apart from seed).
    std::string coalesce_key;
    if (cfg_.coalesce) {
        dnn::JobGroup group = p.req.group;
        if (group.jobs.empty()) {
            dnn::WorkloadGenerator gen(p.req.problem.workloadSeed);
            group = gen.makeGroup(p.req.problem.task,
                                  p.req.problem.groupSize);
        }
        Fingerprint fp =
            fingerprintOf(group, p.req.problem, p.req.search.objective);
        coalesce_key = coalesceKeyOf(fp, p.req.search, p.req.writeBack,
                                     p.req.warmBudget);
    }

    std::vector<Pending> to_shed;
    bool enqueued = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_)
            throw std::runtime_error("MappingService: submit after stop()");
        p.seq = next_seq_++;
        ++stats_.submitted;
        if (obs::countersOn())
            reg_->counter("serve.submitted").add();

        // Coalesce: ride an existing leader instead of queueing. A
        // follower holds no queue slot, so admission control below never
        // sees it.
        if (!coalesce_key.empty() && leader_keys_.count(coalesce_key)) {
            followers_[coalesce_key].push_back(std::move(p));
            return future;
        }

        const int prio = p.req.priority;
        const std::string tenant = p.req.tenant;

        // Admission control, per-priority bound first: level P full means
        // its OLDEST waiting request is shed (freshest-wins in-level).
        if (auto lim = cfg_.priorityDepthLimits.find(prio);
            lim != cfg_.priorityDepthLimits.end() && lim->second > 0) {
            int64_t level_depth = 0;
            if (auto q = queue_.find(prio); q != queue_.end())
                for (const auto& [t, fifo] : q->second)
                    level_depth += static_cast<int64_t>(fifo.size());
            if (level_depth >= lim->second)
                collectShedLocked(removeOldestLocked(prio), to_shed);
        }

        // Global bound: shed the oldest request of the lowest-priority
        // waiting level — or the incoming request itself when everything
        // waiting outranks it.
        bool incoming_shed = false;
        if (cfg_.maxQueueDepth > 0 && queue_depth_ >= cfg_.maxQueueDepth &&
            !queue_.empty()) {
            int worst = queue_.rbegin()->first;
            if (worst >= prio) {
                collectShedLocked(removeOldestLocked(worst), to_shed);
            } else {
                collectShedLocked(std::move(p), to_shed);
                incoming_shed = true;
            }
        }

        if (!incoming_shed) {
            if (!coalesce_key.empty()) {
                p.coalesceKey = coalesce_key;
                leader_keys_.insert(coalesce_key);
            }
            bool newly_active = !tenantQueued(tenant);
            queue_[prio][tenant].push_back(std::move(p));
            if (newly_active) {
                // The tenant joins the round-robin at the CURRENT round:
                // rebase its admission count to the minimum among the
                // tenants already waiting. Without this, a late joiner
                // (count 0) would be served exclusively until it caught
                // up with long-running tenants — starving them — and a
                // returning tenant with an old high count would itself
                // be starved.
                bool found = false;
                int64_t min_other = 0;
                for (const auto& [q_prio, tenants] : queue_) {
                    for (const auto& [t, fifo] : tenants) {
                        if (t == tenant || fifo.empty())
                            continue;
                        int64_t c = 0;
                        if (auto it = admitted_.find(t);
                            it != admitted_.end())
                            c = it->second;
                        if (!found || c < min_other) {
                            min_other = c;
                            found = true;
                        }
                    }
                }
                admitted_[tenant] = found ? min_other : 0;
            }
            ++queue_depth_;
            enqueued = true;
        }
        if (obs::countersOn())
            reg_->gauge("serve.queue_depth")
                .set(static_cast<double>(queue_depth_));
    }
    fulfillShed(to_shed);
    if (enqueued)
        work_cv_.notify_one();
    return future;
}

bool
MappingService::tenantQueued(const std::string& tenant) const
{
    for (const auto& [prio, tenants] : queue_) {
        auto it = tenants.find(tenant);
        if (it != tenants.end() && !it->second.empty())
            return true;
    }
    return false;
}

bool
MappingService::queueEmpty() const
{
    return queue_depth_ == 0;
}

MappingService::Pending
MappingService::popNext()
{
    // Strict priority levels; within a level, the tenant admitted least
    // often goes next (ties to the earliest waiting head request), FIFO
    // within a tenant.
    auto& level = queue_.begin()->second;
    std::string best_tenant;
    int64_t best_admitted = 0;
    uint64_t best_seq = 0;
    for (auto& [tenant, fifo] : level) {
        int64_t admitted = 0;
        if (auto it = admitted_.find(tenant); it != admitted_.end())
            admitted = it->second;
        uint64_t head_seq = fifo.front().seq;
        if (best_tenant.empty() || admitted < best_admitted ||
            (admitted == best_admitted && head_seq < best_seq)) {
            best_tenant = tenant;
            best_admitted = admitted;
            best_seq = head_seq;
        }
    }

    auto fifo_it = level.find(best_tenant);
    Pending p = std::move(fifo_it->second.front());
    fifo_it->second.pop_front();
    if (fifo_it->second.empty())
        level.erase(fifo_it);
    if (level.empty())
        queue_.erase(queue_.begin());
    ++admitted_[best_tenant];
    // Forget counts of tenants that left the queue — they rejoin at the
    // current round via submit()'s rebase, and the map stays bounded by
    // the number of concurrently waiting tenants.
    if (!tenantQueued(best_tenant))
        admitted_.erase(best_tenant);
    --queue_depth_;
    return p;
}

MappingService::Pending
MappingService::removeOldestLocked(int level)
{
    auto level_it = queue_.find(level);
    auto& tenants = level_it->second;
    auto best = tenants.end();
    for (auto it = tenants.begin(); it != tenants.end(); ++it)
        if (best == tenants.end() ||
            it->second.front().seq < best->second.front().seq)
            best = it;

    Pending victim = std::move(best->second.front());
    best->second.pop_front();
    const std::string tenant = best->first;
    if (best->second.empty())
        tenants.erase(best);
    if (tenants.empty())
        queue_.erase(level_it);
    // Same bookkeeping as an admission, minus the admission count: a
    // shed is not a turn taken.
    if (!tenantQueued(tenant))
        admitted_.erase(tenant);
    --queue_depth_;
    return victim;
}

void
MappingService::collectShedLocked(Pending&& victim,
                                  std::vector<Pending>& out)
{
    const size_t before = out.size();
    if (!victim.coalesceKey.empty()) {
        // Shedding a coalesced leader cascades to its followers: nobody
        // is left waiting on a search that will never run.
        leader_keys_.erase(victim.coalesceKey);
        auto node = followers_.extract(victim.coalesceKey);
        if (!node.empty())
            for (Pending& f : node.mapped())
                out.push_back(std::move(f));
    }
    out.push_back(std::move(victim));
    stats_.shed += static_cast<int64_t>(out.size() - before);
}

void
MappingService::fulfillShed(std::vector<Pending>& sheds)
{
    if (sheds.empty())
        return;
    if (obs::countersOn())
        reg_->counter("serve.shed")
            .add(static_cast<int64_t>(sheds.size()));
    for (Pending& p : sheds) {
        MapResponse resp;
        resp.shed = true;
        resp.waitSeconds = secondsSince(p.enqueued);
        p.promise.set_value(std::move(resp));
    }
    sheds.clear();
}

void
MappingService::workerLoop()
{
    // Each lane owns its evaluation pool for its whole lifetime, so
    // back-to-back requests reuse warm threads instead of spawning a
    // pool per search. threadsPerRequest == 1 keeps the serial path.
    std::unique_ptr<exec::ThreadPool> lane_pool;
    if (cfg_.threadsPerRequest != 1)
        lane_pool =
            std::make_unique<exec::ThreadPool>(cfg_.threadsPerRequest);

    while (true) {
        Pending p;
        int64_t serve_order = 0;
        bool have = false;
        bool exit_lane = false;
        std::vector<Pending> expired;
        {
            PROFILE_SCOPE("serve.queue_wait");
            std::unique_lock<std::mutex> lk(mu_);
            work_cv_.wait(lk,
                          [this] { return stopping_ || !queueEmpty(); });
            while (!queueEmpty()) {
                p = popNext();
                // Deadline, honored at dequeue: the caller's staleness
                // bound passed while the request waited, so the search
                // would be wasted work — shed instead.
                if (p.req.deadlineSeconds > 0.0 &&
                    secondsSince(p.enqueued) > p.req.deadlineSeconds) {
                    collectShedLocked(std::move(p), expired);
                    continue;
                }
                have = true;
                break;
            }
            if (have) {
                serve_order = next_serve_order_++;
                ++in_flight_;
            } else {
                exit_lane = stopping_;
                if (in_flight_ == 0)
                    idle_cv_.notify_all();
            }
        }
        fulfillShed(expired);
        if (exit_lane)
            return;
        if (!have)
            continue;

        double wait_seconds = secondsSince(p.enqueued);
        auto t0 = std::chrono::steady_clock::now();
        MapResponse resp;
        std::exception_ptr error;
        {
            // span payload: i = serve order, a = queue-wait seconds,
            // b = service seconds
            obs::Span span("serve.request", serve_order);
            PROFILE_SCOPE("serve.request");
            try {
                resp = serveOne(p.req, lane_pool.get());
                resp.serveOrder = serve_order;
                resp.waitSeconds = wait_seconds;
                resp.serviceSeconds = secondsSince(t0);
                span.payload(wait_seconds, resp.serviceSeconds);
            } catch (...) {
                error = std::current_exception();
            }
        }

        // Commit the counters before fulfilling the future, so a caller
        // that reads stats() right after future.get() sees this request.
        // A coalesced leader also takes its followers along here — they
        // inherit this outcome, success or failure.
        std::vector<Pending> followers;
        {
            std::lock_guard<std::mutex> lk(mu_);
            --in_flight_;
            if (!p.coalesceKey.empty()) {
                leader_keys_.erase(p.coalesceKey);
                auto node = followers_.extract(p.coalesceKey);
                if (!node.empty())
                    followers = std::move(node.mapped());
            }
            if (error) {
                stats_.failed += 1 + static_cast<int64_t>(followers.size());
            } else {
                ++stats_.served;
                resp.warmStart ? ++stats_.warmServed : ++stats_.coldServed;
                if (resp.archiveSeeded)
                    ++stats_.archiveSeeded;
                stats_.samplesSpent += resp.samplesUsed;
                if (resp.warmStart)
                    stats_.samplesSaved += std::max<int64_t>(
                        0, p.req.search.sampleBudget - resp.samplesUsed);
                stats_.served += static_cast<int64_t>(followers.size());
                stats_.coalesced += static_cast<int64_t>(followers.size());
            }
            if (obs::countersOn()) {
                reg_->gauge("serve.queue_depth")
                    .set(static_cast<double>(queue_depth_));
                reg_->gauge("serve.in_flight")
                    .set(static_cast<double>(in_flight_));
            }
            if (queueEmpty() && in_flight_ == 0)
                idle_cv_.notify_all();
        }
        recordServed(p.req.tenant, error != nullptr, wait_seconds,
                     resp.serviceSeconds);
        if (obs::countersOn() && !followers.empty())
            reg_->counter("serve.coalesced")
                .add(static_cast<int64_t>(followers.size()));
        if (error) {
            for (Pending& f : followers)
                f.promise.set_exception(error);
            p.promise.set_exception(error);
        } else {
            for (Pending& f : followers) {
                MapResponse fanned = resp;  // the leader's result, bitwise
                fanned.coalesced = true;
                fanned.samplesUsed = 0;  // this request spent nothing
                fanned.waitSeconds = secondsSince(f.enqueued);
                f.promise.set_value(std::move(fanned));
            }
            p.promise.set_value(std::move(resp));
        }
    }
}

void
MappingService::recordServed(const std::string& tenant, bool failed,
                             double wait_seconds, double service_seconds)
{
    if (!obs::countersOn())
        return;
    // One registry lookup per request is negligible next to the search
    // the request just paid for; it also keeps the per-tenant names
    // dynamic without a local cache to invalidate.
    if (failed) {
        reg_->counter("serve.failed").add();
        return;
    }
    reg_->counter("serve.requests").add();
    reg_->histogram("serve.wait_seconds").record(wait_seconds);
    reg_->histogram("serve.service_seconds").record(service_seconds);
    reg_->histogram("serve.wait_seconds." + tenant).record(wait_seconds);
    reg_->histogram("serve.service_seconds." + tenant)
        .record(service_seconds);
}

MapResponse
MappingService::serveOne(const MapRequest& req, exec::ThreadPool* lane_pool)
{
    // Multi-objective specs are an offline (api::Runner) feature for
    // now: the serve response carries a single mapping, not a front.
    // Failing the request's future beats silently discarding the
    // objectives list and answering with a scalar search.
    if (!req.search.objectives.empty())
        throw std::invalid_argument(
            "MappingService: SearchSpec objectives= (multi-objective) is "
            "not served; use api::Runner for Pareto-front searches");

    // 1. Materialize the workload and platform from the request's
    // declarative specs.
    dnn::JobGroup group = req.group;
    if (group.jobs.empty()) {
        dnn::WorkloadGenerator gen(req.problem.workloadSeed);
        group = gen.makeGroup(req.problem.task, req.problem.groupSize);
    }
    accel::Platform platform = api::buildPlatform(req.problem);
    Fingerprint fp = fingerprintOf(group, platform, req.search.objective);

    m3e::Problem problem(std::move(group), std::move(platform),
                         req.problem.bwPolicy, req.search.objective);
    sched::MappingEvaluator& eval = problem.evaluator();

    // Paper's setting: population tracks group size (Section V-B2).
    const int pop = std::clamp(eval.groupSize(), 8, 100);

    MapResponse resp;
    resp.fingerprint = fp.key;

    // 2. Warm start: transfer the store's solution when the fingerprint
    // (or its coarse tier) is known.
    opt::SearchOptions opts;
    opts.sampleBudget = req.search.sampleBudget;
    opts.evalMode = req.search.eval;
    std::optional<MappingStore::Hit> hit;
    if (req.search.warmStart) {
        PROFILE_SCOPE("serve.store_lookup");
        hit = store_.lookup(fp);
    }
    if (hit) {
        common::Rng seed_rng(req.search.seed ^ 0x5eedbeefULL);
        sched::Mapping base =
            hit->entry.group.jobs.empty()
                ? opt::transfer::adaptPositional(hit->entry.mapping,
                                                 eval.groupSize(),
                                                 eval.numAccels())
                : opt::transfer::adaptJobMatched(
                      hit->entry.mapping, hit->entry.group,
                      problem.group(), eval.numAccels(), seed_rng);
        opts.seeds = opt::transfer::seedsAround(base, pop,
                                                eval.numAccels(),
                                                seed_rng);
        opts.sampleBudget =
            req.warmBudget > 0
                ? req.warmBudget
                : std::max<int64_t>(pop, req.search.sampleBudget / 4);
        // The convergence curve gives Trf-0-ep for free: the search
        // evaluates the seeds first, so best-so-far after them is the
        // transferred quality before any refinement.
        opts.recordConvergence = true;
        resp.warmStart = true;
        resp.exactHit = hit->exact;
    } else if (req.search.warmStart && cfg_.archive &&
               !cfg_.archive->empty()) {
        // Third tier: both store tiers missed, but a Pareto archive is
        // wired in. Its member mappings are generic knowledge (other
        // groups, possibly other objectives), so adapt each positionally
        // onto this group and seed the search WITHOUT cutting the
        // budget — a pure quality head start, deterministic because the
        // archive is read-only to the service.
        common::Rng seed_rng(req.search.seed ^ 0xa2c417eULL);
        std::vector<sched::Mapping> adapted;
        for (const sched::Mapping& m : cfg_.archive->seedMappings()) {
            if (static_cast<int>(adapted.size()) >= pop)
                break;
            adapted.push_back(opt::transfer::adaptPositional(
                m, eval.groupSize(), eval.numAccels()));
        }
        opts.seeds = adapted;
        // Top up to a full population with lightly mutated copies so
        // the head start keeps the archive's diversity (seedsAround
        // would cluster everything around one member).
        for (size_t k = 0; static_cast<int>(opts.seeds.size()) < pop;
             ++k) {
            sched::Mapping m = adapted[k % adapted.size()];
            opt::MagmaGa::mutate(m, 0.05, eval.numAccels(), seed_rng);
            opts.seeds.push_back(std::move(m));
        }
        resp.archiveSeeded = !opts.seeds.empty();
    }

    // 3. Search on this lane's engine with the method the spec names
    // (an unknown name fails this request's future with the registry's
    // did-you-mean error). MAGMA — the default — keeps the paper's rule
    // of population tracking group size rather than the registry
    // factory's fixed default.
    std::unique_ptr<exec::EvalEngine> engine;
    if (lane_pool) {
        engine = std::make_unique<exec::EvalEngine>(eval, *lane_pool,
                                                    req.search.eval);
        opts.engine = engine.get();
    }
    std::string method =
        api::OptimizerRegistry::global().resolve(req.search.method);
    std::unique_ptr<opt::Optimizer> optimizer;
    if (method == "MAGMA") {
        opt::MagmaConfig cfg;
        cfg.population = pop;
        optimizer = std::make_unique<opt::MagmaGa>(req.search.seed, cfg);
    } else {
        optimizer = api::OptimizerRegistry::global().make(method,
                                                          req.search.seed);
    }
    opt::SearchResult res;
    {
        PROFILE_SCOPE("serve.search");
        res = optimizer->search(eval, opts);
    }

    resp.best = res.best;
    resp.bestFitness = res.bestFitness;
    resp.samplesUsed = res.samplesUsed;
    if (resp.warmStart && !res.convergence.empty()) {
        size_t seeds_end = std::min(opts.seeds.size(),
                                    res.convergence.size());
        resp.trf0Fitness = res.convergence[seeds_end - 1];
    }

    // 4. Publish improved knowledge. Transfer quality is only meaningful
    // when refinement actually ran past the seeds — otherwise trf0 and
    // the final fitness are the same number by construction.
    if (req.writeBack) {
        PROFILE_SCOPE("serve.store_write_back");
        store_.update(fp, problem.group().task, res.best, problem.group(),
                      res.bestFitness, res.samplesUsed);
        bool refined = res.samplesUsed >
                       static_cast<int64_t>(opts.seeds.size());
        if (resp.warmStart && refined && res.bestFitness > 0.0)
            store_.recordTransferQuality(resp.trf0Fitness /
                                         res.bestFitness);
    }
    return resp;
}

void
MappingService::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    if (!running_ && !queueEmpty())
        throw std::runtime_error(
            "MappingService::drain: service not started");
    idle_cv_.wait(lk, [this] {
        return (queueEmpty() && in_flight_ == 0) || stopping_;
    });
}

void
MappingService::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        work_cv_.notify_all();
        idle_cv_.notify_all();
    }
    for (std::thread& w : workers_)
        w.join();
    workers_.clear();

    // A never-started service may still hold queued requests — and, with
    // coalescing, followers waiting on them: fail their futures rather
    // than leaving them hanging.
    std::map<int, std::map<std::string, std::deque<Pending>>> orphans;
    std::map<std::string, std::vector<Pending>> orphan_followers;
    {
        std::lock_guard<std::mutex> lk(mu_);
        orphans.swap(queue_);
        orphan_followers.swap(followers_);
        leader_keys_.clear();
        queue_depth_ = 0;
        running_ = false;
    }
    auto stopped = std::make_exception_ptr(std::runtime_error(
        "MappingService stopped before serving this request"));
    for (auto& [prio, tenants] : orphans)
        for (auto& [tenant, fifo] : tenants)
            for (Pending& p : fifo)
                p.promise.set_exception(stopped);
    for (auto& [key, fifo] : orphan_followers)
        for (Pending& p : fifo)
            p.promise.set_exception(stopped);

    // Fold the log into the snapshot (atomic rename) so the next process
    // recovers from a compact snapshot rather than a long replay; with
    // no log attached this still writes a plain snapshot.
    if (!cfg_.storePath.empty() && !store_.compact(cfg_.storePath))
        std::fprintf(stderr, "MappingService: could not save store '%s'\n",
                     cfg_.storePath.c_str());
}

ServiceStats
MappingService::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStats s = stats_;
    s.queueDepth = queue_depth_;
    s.inFlight = in_flight_;
    return s;
}

}  // namespace magma::serve
