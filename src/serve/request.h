#ifndef MAGMA_SERVE_REQUEST_H_
#define MAGMA_SERVE_REQUEST_H_

#include <cstdint>
#include <string>

#include "api/spec.h"
#include "dnn/workload.h"
#include "sched/mapping.h"

namespace magma::serve {

/**
 * One mapping request submitted to the MappingService (the online version
 * of the Section V-C scenario: groups of jobs keep arriving and the
 * mapper amortizes search cost by transferring previous solutions).
 *
 * Since the api/ redesign a request *is* a declarative experiment plus
 * admission metadata: `problem` (api::ProblemSpec) describes the
 * workload/platform, `search` (api::SearchSpec) the optimization — the
 * same artifacts `m3e_cli --spec` runs offline, so a spec file can be
 * replayed through the service verbatim. The workload is either an
 * explicit `group`, or — when `group` is empty — generated from the
 * problem spec (task, groupSize, workloadSeed) via WorkloadGenerator.
 *
 * Everything that influences the result is carried in the request, so a
 * request with a fixed `search.seed` yields a bitwise identical mapping
 * regardless of queue interleaving (given the same store view, see
 * `search.warmStart`/`writeBack`).
 */
struct MapRequest {
    // -- admission ------------------------------------------------------
    std::string tenant = "default";
    int priority = 0;  ///< lower is more urgent; FIFO + fair within a level
    /**
     * Staleness bound, honored at dequeue: a request that has already
     * waited longer than this when a lane picks it up is shed (its
     * future resolves with MapResponse::shed) instead of searched —
     * the caller has presumably timed out, so the search would be
     * wasted work. 0 disables the check.
     */
    double deadlineSeconds = 0.0;

    // -- experiment -----------------------------------------------------
    api::ProblemSpec problem;  ///< workload + platform + BW regime
    /**
     * Method, objective, budget, seed and warm toggle. The service's
     * cold-search budget default stays at the pre-redesign 2000 (not
     * SearchSpec's offline 10K): online requests are latency-bound.
     * `threads` and the record* flags are governed by the service, not
     * the spec: evaluation lanes come from ServiceConfig::
     * threadsPerRequest, and convergence recording is enabled internally
     * when a warm start needs the Trf-0-ep probe.
     */
    api::SearchSpec search = [] {
        api::SearchSpec s;
        s.sampleBudget = 2000;
        return s;
    }();
    /** Explicit jobs; when non-empty it overrides the generated group of
     * the problem spec (problem.task should still describe it). */
    dnn::JobGroup group;

    // -- warm start -----------------------------------------------------
    /** search.warmStart gates seeding from the MappingStore on a hit. */
    bool writeBack = true;  ///< publish improved solutions to the store
    /** Budget on a store hit; <= 0 selects search.sampleBudget / 4 (the
     * Table V regime: transferred solutions need a fraction of the cold
     * cost). */
    int64_t warmBudget = 0;
};

/** Outcome of one served request. */
struct MapResponse {
    sched::Mapping best;
    double bestFitness = 0.0;
    int64_t samplesUsed = 0;

    bool warmStart = false;  ///< store hit: search was seeded
    bool exactHit = false;   ///< hit on the full fingerprint (not coarse)
    /** Store missed but the search was seeded from the service's
     * Pareto archive (ServiceConfig::archive) at the full cold budget. */
    bool archiveSeeded = false;
    std::string fingerprint; ///< fingerprint key of the served workload
    /** Best transferred-seed fitness before refinement (Trf-0-ep). */
    double trf0Fitness = 0.0;

    int64_t serveOrder = 0;      ///< global admission index (fairness probe)
    double waitSeconds = 0.0;    ///< time spent queued
    double serviceSeconds = 0.0; ///< time spent searching

    /**
     * This response was fanned out from a coalesced leader search
     * (ServiceConfig::coalesce): the mapping is the leader's, bitwise,
     * and samplesUsed is 0 — this request spent nothing itself.
     */
    bool coalesced = false;
    /**
     * Load-shed: admission control dropped the request (bounded queue,
     * per-priority limit, or missed deadline at dequeue). No search ran;
     * every result field other than waitSeconds is default-initialized.
     */
    bool shed = false;
};

}  // namespace magma::serve

#endif  // MAGMA_SERVE_REQUEST_H_
