#ifndef MAGMA_SERVE_REQUEST_H_
#define MAGMA_SERVE_REQUEST_H_

#include <cstdint>
#include <string>

#include "accel/platform.h"
#include "dnn/workload.h"
#include "sched/evaluator.h"
#include "sched/mapping.h"

namespace magma::serve {

/**
 * One mapping request submitted to the MappingService (the online version
 * of the Section V-C scenario: groups of jobs keep arriving and the
 * mapper amortizes search cost by transferring previous solutions).
 *
 * The workload is either an explicit `group`, or — when `group` is empty
 * — a spec (`task`, `groupSize`, `workloadSeed`) the service expands via
 * WorkloadGenerator. Everything that influences the result is carried in
 * the request, so a request with a fixed `seed` yields a bitwise
 * identical mapping regardless of queue interleaving (given the same
 * store view, see `allowWarmStart`/`writeBack`).
 */
struct MapRequest {
    // -- admission ------------------------------------------------------
    std::string tenant = "default";
    int priority = 0;  ///< lower is more urgent; FIFO + fair within a level

    // -- workload -------------------------------------------------------
    dnn::TaskType task = dnn::TaskType::Mix;
    dnn::JobGroup group;       ///< explicit jobs; generated from spec if empty
    int groupSize = 40;        ///< spec: jobs per generated group
    uint64_t workloadSeed = 1; ///< spec: WorkloadGenerator seed

    // -- platform -------------------------------------------------------
    accel::Setting setting = accel::Setting::S2;
    double bwGbps = 16.0;
    bool flexible = false;  ///< Fig. 14 flexible-array variant

    // -- search ---------------------------------------------------------
    sched::Objective objective = sched::Objective::Throughput;
    int64_t sampleBudget = 2000;  ///< cold-search budget
    uint64_t seed = 1;            ///< optimizer seed

    // -- warm start -----------------------------------------------------
    bool allowWarmStart = true;  ///< seed from the MappingStore on a hit
    bool writeBack = true;       ///< publish improved solutions to the store
    /** Budget on a store hit; <= 0 selects sampleBudget / 4 (the Table V
     * regime: transferred solutions need a fraction of the cold cost). */
    int64_t warmBudget = 0;
};

/** Outcome of one served request. */
struct MapResponse {
    sched::Mapping best;
    double bestFitness = 0.0;
    int64_t samplesUsed = 0;

    bool warmStart = false;  ///< store hit: search was seeded
    bool exactHit = false;   ///< hit on the full fingerprint (not coarse)
    std::string fingerprint; ///< fingerprint key of the served workload
    /** Best transferred-seed fitness before refinement (Trf-0-ep). */
    double trf0Fitness = 0.0;

    int64_t serveOrder = 0;      ///< global admission index (fairness probe)
    double waitSeconds = 0.0;    ///< time spent queued
    double serviceSeconds = 0.0; ///< time spent searching
};

}  // namespace magma::serve

#endif  // MAGMA_SERVE_REQUEST_H_
