#ifndef MAGMA_SERVE_FINGERPRINT_H_
#define MAGMA_SERVE_FINGERPRINT_H_

#include <string>

#include "accel/platform.h"
#include "api/spec.h"
#include "dnn/workload.h"
#include "sched/evaluator.h"

namespace magma::serve {

/**
 * Workload fingerprint — the MappingStore key (the productionized version
 * of WarmStartEngine's task-type key). Two groups with the same
 * fingerprint are "the same workload" for warm-start purposes.
 *
 * `key` covers everything transfer quality depends on: the task type, the
 * platform regime (name + core count + system bandwidth), the objective
 * being optimized, the layer-type histogram and the log-size-class
 * signature of the group's jobs. `coarse` drops the histogram/signature,
 * keeping task + platform regime + objective — the fallback tier for
 * independently drawn groups of the same task distribution (the Table V
 * transfer case, where job-matched adaptation bridges the composition
 * difference). Bandwidth and objective stay in BOTH tiers: a mapping
 * tuned for one regime (or its fitness value) is not comparable under
 * another, so cross-regime transfer is never attempted.
 *
 * Keys are single tokens (no whitespace) so the store's text persistence
 * can treat them as one field.
 */
struct Fingerprint {
    std::string key;
    std::string coarse;
};

/** Fingerprint of a job group on a platform under an objective.
 * Deterministic: the same inputs always produce the same keys. */
Fingerprint fingerprintOf(
    const dnn::JobGroup& group, const accel::Platform& platform,
    sched::Objective objective = sched::Objective::Throughput);

/**
 * Same, for the platform a declarative ProblemSpec describes — what the
 * MappingService keys its store by for spec-carried requests. Equals the
 * platform overload on api::buildPlatform(spec) exactly.
 */
Fingerprint fingerprintOf(
    const dnn::JobGroup& group, const api::ProblemSpec& spec,
    sched::Objective objective = sched::Objective::Throughput);

/**
 * Coalescing key (ServiceConfig::coalesce): two in-flight requests with
 * equal keys would run the SAME search apart from the optimizer seed, so
 * the service collapses them into one. Extends the fine fingerprint with
 * every SearchSpec/request field that reaches the result — method,
 * budget, eval mode, warm-start gate, write-back and warm budget —
 * EXCEPT the seed: the leader's seed is honored, followers adopt its
 * result (marked MapResponse::coalesced). Tenant and priority are
 * admission metadata, not search inputs, so they never split a key.
 */
std::string coalesceKeyOf(const Fingerprint& fp,
                          const api::SearchSpec& search, bool write_back,
                          int64_t warm_budget);

}  // namespace magma::serve

#endif  // MAGMA_SERVE_FINGERPRINT_H_
