#include "serve/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "dnn/layer.h"

namespace magma::serve {
namespace {

/** 16x-wide log2 MAC-count class — coarse enough that jitter in batch or
 * spatial extent keeps similar jobs in one class. */
int
sizeClass(const dnn::Job& job)
{
    int bucket = static_cast<int>(std::log2(
        static_cast<double>(std::max<int64_t>(job.macs(), 1))));
    return bucket / 4;
}

}  // namespace

Fingerprint
fingerprintOf(const dnn::JobGroup& group, const accel::Platform& platform,
              sched::Objective objective)
{
    std::map<std::string, int> type_hist;   // layer type -> job count
    std::map<int, int> size_hist;           // size class -> job count
    for (const dnn::Job& job : group.jobs) {
        ++type_hist[dnn::layerTypeName(job.layer.type)];
        ++size_hist[sizeClass(job)];
    }

    std::ostringstream coarse;
    coarse << "task=" << dnn::taskTypeName(group.task) << "|plat="
           << platform.name << "#" << platform.numSubAccels() << "@"
           << platform.systemBwGbps << "|obj="
           << sched::objectiveName(objective);

    std::ostringstream fine;
    fine << coarse.str() << "|hist=";
    bool first = true;
    for (const auto& [type, n] : type_hist) {
        fine << (first ? "" : ",") << type << ":" << n;
        first = false;
    }
    fine << "|size=";
    first = true;
    for (const auto& [cls, n] : size_hist) {
        fine << (first ? "" : ",") << cls << ":" << n;
        first = false;
    }

    return Fingerprint{fine.str(), coarse.str()};
}

Fingerprint
fingerprintOf(const dnn::JobGroup& group, const api::ProblemSpec& spec,
              sched::Objective objective)
{
    return fingerprintOf(group, api::buildPlatform(spec), objective);
}

std::string
coalesceKeyOf(const Fingerprint& fp, const api::SearchSpec& search,
              bool write_back, int64_t warm_budget)
{
    std::ostringstream key;
    key << fp.key << "|method=" << search.method
        << "|budget=" << search.sampleBudget
        << "|eval=" << static_cast<int>(search.eval)
        << "|warm=" << (search.warmStart ? 1 : 0)
        << "|wb=" << (write_back ? 1 : 0) << "|wbudget=" << warm_budget;
    return key.str();
}

}  // namespace magma::serve
