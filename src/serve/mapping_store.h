#ifndef MAGMA_SERVE_MAPPING_STORE_H_
#define MAGMA_SERVE_MAPPING_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "dnn/workload.h"
#include "sched/mapping.h"
#include "serve/fingerprint.h"

namespace magma::serve {

/** One remembered solution: the mapping, the group it solved (enabling
 * job-matched transfer), and its provenance. */
struct StoreEntry {
    std::string key;     ///< fine fingerprint
    std::string coarse;  ///< coarse fingerprint tier
    dnn::TaskType task = dnn::TaskType::Mix;
    sched::Mapping mapping;
    dnn::JobGroup group;
    double fitness = 0.0;
    int64_t samplesInvested = 0;  ///< search samples spent on this solution
};

/** Aggregate store counters, surfaced by MappingStore::stats(). */
struct StoreStats {
    int64_t lookups = 0;
    int64_t exactHits = 0;   ///< fine-fingerprint hits
    int64_t coarseHits = 0;  ///< task+platform fallback hits
    int64_t misses = 0;
    int64_t inserts = 0;       ///< new keys written
    int64_t improvements = 0;  ///< existing keys replaced by better fitness
    int64_t rejects = 0;       ///< write-backs losing to the incumbent
    int64_t evictions = 0;     ///< LRU evictions past capacity
    int64_t entries = 0;       ///< current size
    /** Transfer quality: mean of (Trf-0-ep fitness / refined fitness)
     * across warm requests that reported it — 1.0 means transferred
     * solutions needed no refinement at all. */
    double transferQualitySum = 0.0;
    int64_t transferQualityCount = 0;

    double hitRate() const
    {
        return lookups ? static_cast<double>(exactHits + coarseHits) /
                             lookups
                       : 0.0;
    }
    double meanTransferQuality() const
    {
        return transferQualityCount
                   ? transferQualitySum / transferQualityCount
                   : 0.0;
    }
};

/**
 * Fingerprint-keyed warm-start store — the productionized WarmStartEngine
 * (Section V-C) behind the MappingService:
 *
 *  - keyed by workload Fingerprint with a two-tier lookup: exact fine key
 *    first, then the best entry sharing the coarse (task + platform) key;
 *  - bounded: at most `capacity` entries, least-recently-used evicted;
 *  - mutex-sharded: lookups and write-backs from concurrent worker lanes
 *    contend per shard, not store-wide;
 *  - persistent: save()/load() stream a line-based snapshot format
 *    ("magma-store-snapshot v1", mappings via Mapping::toText, bitwise
 *    exact) so warm-start knowledge survives process restarts;
 *  - crash-safe: an optional append-log ("magma-store-log v1") records
 *    every put/evict with an fsync per record. recover() loads the last
 *    snapshot and replays the log, tolerating a torn final record, so a
 *    kill -9 mid-write loses at most the record being written. compact()
 *    folds the log back into the snapshot. See docs/formats.md.
 *
 * Write-backs keep the better solution per key, so concurrent tenants of
 * one workload type compound each other's knowledge.
 */
class MappingStore {
  public:
    explicit MappingStore(int capacity = 64, int shards = 8);
    ~MappingStore();  // out-of-line: Shard is incomplete here

    /** A lookup hit: a copy of the entry plus which tier matched. */
    struct Hit {
        StoreEntry entry;
        bool exact = false;
    };

    /**
     * Two-tier lookup. Among coarse candidates the highest-fitness entry
     * wins (stable tie-break on key), so the result depends only on store
     * content, never on shard iteration order. Bumps the hit's LRU clock.
     */
    std::optional<Hit> lookup(const Fingerprint& fp);

    /**
     * Insert or improve the entry for `fp.key`. An existing entry is
     * replaced only when `fitness` beats it (first-writer wins ties), so
     * racing write-backs converge on the best known solution. Returns
     * true when the store changed. May evict the LRU entry past capacity.
     */
    bool update(const Fingerprint& fp, dnn::TaskType task,
                const sched::Mapping& best, const dnn::JobGroup& group,
                double fitness, int64_t samples_invested);

    /** Report a warm request's Trf-0-ep / refined fitness ratio. */
    void recordTransferQuality(double trf0_over_refined);

    StoreStats stats() const;
    int64_t size() const;
    int capacity() const { return capacity_; }
    void clear();

    /** Write every entry (sorted by key, deterministic) to the stream. */
    void save(std::ostream& os) const;
    /** Save to a file; returns false when the file cannot be opened. */
    bool saveFile(const std::string& path) const;

    /**
     * Replace the store content with the stream's entries. Atomic:
     * throws std::invalid_argument on a malformed stream and leaves the
     * current content untouched. Counters other than `entries` are not
     * restored — they describe the process, not the knowledge.
     */
    void load(std::istream& is);
    /** Load from a file; returns false when the file cannot be opened. */
    bool loadFile(const std::string& path);

    // ----------------------------------------- crash-safe persistence --
    //
    // Lifecycle: recover(snapshot, log) -> openLog(log) -> compact(snapshot)
    // at startup, then every update()/eviction appends an fsync'd record;
    // compact(snapshot) at shutdown (or periodically) folds the log away.
    // Attach the log only via this sequence: appending behind a torn tail
    // would strand the new records past recovery's stop point.

    /**
     * Open (or create) the append-log at `path`. An empty or new file
     * gets the "magma-store-log v1" header. Subsequent update() calls
     * and LRU evictions append one fsync'd record each. Returns false
     * when the file cannot be opened.
     */
    bool openLog(const std::string& path);
    void closeLog();

    /**
     * Fold the current content into `snapshot_path` (written to a temp
     * file, fsync'd, renamed into place — readers never observe a torn
     * snapshot) and truncate the open log back to its header. Safe to
     * call with no log attached. Returns false on I/O failure.
     */
    bool compact(const std::string& snapshot_path);

    /**
     * Crash recovery: load `snapshot_path` (if present), then replay
     * `log_path` (if present) through the normal update/evict rules.
     * A torn final record — the kill -9 case — ends the replay cleanly;
     * every fully written record is recovered. A malformed snapshot or a
     * complete-but-wrong log header throws std::invalid_argument.
     * Returns the number of log records applied.
     */
    int64_t recover(const std::string& snapshot_path,
                    const std::string& log_path);

    /** Records appended to the log since openLog()/compact(). */
    int64_t logRecords() const;

  private:
    struct Shard;

    Shard& shardFor(const std::string& key) const;
    /** Evict LRU entries until size <= capacity (locks all shards). */
    void enforceCapacity();
    /** Erase one key (replay of an evict record); no logging. */
    void eraseKey(const std::string& key);
    /** Append one raw record and fsync it. Caller holds log_mu_. */
    void appendRecordLocked(const std::string& record);
    /** Replay buffered log text; returns records applied. */
    int64_t replayLog(const std::string& text);

    int capacity_;
    int num_shards_;
    std::unique_ptr<Shard[]> shards_;
    mutable std::mutex stats_mu_;
    StoreStats stats_;
    /**
     * Append-log state, all guarded by log_mu_. Lock order: log_mu_ may
     * be taken while holding no shard mutex (update/eviction appends) or
     * before the all-shard sequence (compact -> save), never after a
     * shard mutex — so log appends and store-wide operations cannot
     * deadlock. See docs/concurrency.md.
     */
    mutable std::mutex log_mu_;
    std::FILE* log_ = nullptr;
    std::string log_path_;
    int64_t log_records_ = 0;
    /**
     * LRU tick source. Memory order: relaxed fetch_add is correct —
     * atomicity alone guarantees unique, monotonically increasing
     * ticks, and every read/write of the `lastUsed` fields the ticks
     * land in happens under a shard mutex (the eviction scan locks all
     * shards), so no additional ordering is carried by the counter.
     * See docs/concurrency.md.
     */
    std::atomic<uint64_t> clock_{0};
};

}  // namespace magma::serve

#endif  // MAGMA_SERVE_MAPPING_STORE_H_
