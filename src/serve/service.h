#ifndef MAGMA_SERVE_SERVICE_H_
#define MAGMA_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/mapping_store.h"
#include "serve/request.h"

namespace magma::exec {
class ThreadPool;
}  // namespace magma::exec

namespace magma::mo {
class ParetoArchive;
}  // namespace magma::mo

namespace magma::serve {

/** MappingService knobs. */
struct ServiceConfig {
    /** Concurrent requests in flight (worker lanes). */
    int workers = 1;
    /**
     * Evaluation lanes per request (exec::ThreadPool size inside each
     * worker): 1 = serial, 0 = auto (MAGMA_THREADS env var, else hardware
     * concurrency), N > 1 = exactly N. Each worker lane owns one pool for
     * its lifetime, so back-to-back requests reuse warm threads.
     */
    int threadsPerRequest = 1;
    /** Warm-start store bound (LRU-evicted past this). */
    int storeCapacity = 64;
    int storeShards = 8;
    /**
     * When non-empty: load the store from this file at construction (if
     * it exists) and save it back on stop() — warm-start knowledge
     * survives process restarts.
     */
    std::string storePath;
    /** Start worker lanes immediately; false requires an explicit
     * start() (lets tests enqueue a whole trace before admission). */
    bool autoStart = true;
    /**
     * Registry the service records into: per-tenant wait/service
     * histograms ("serve.wait_seconds.<tenant>"), request counters and
     * queue-depth gauges. Null selects obs::MetricsRegistry::global();
     * benches pass a local registry so back-to-back configurations
     * don't bleed into one aggregate. Must outlive the service.
     */
    obs::MetricsRegistry* registry = nullptr;
    /**
     * Third warm-start tier: when a request misses both MappingStore
     * tiers (exact and coarse), the member mappings of this Pareto
     * archive — typically a persisted multi-objective front over the
     * same platform family (mo::ParetoArchive::load) — are adapted
     * positionally onto the request's group and seed the search at the
     * FULL cold budget (archive members are generic knowledge, not
     * same-workload solutions, so the budget is not cut the way store
     * hits cut it). Null disables the tier. Must outlive the service;
     * the service never mutates it, so the tier keeps requests
     * deterministic the way a frozen store does.
     */
    const mo::ParetoArchive* archive = nullptr;
};

/** Aggregate service counters. */
struct ServiceStats {
    int64_t submitted = 0;
    int64_t served = 0;  ///< fulfilled successfully (excludes `failed`)
    int64_t failed = 0;  ///< futures resolved with an exception
    int64_t coldServed = 0;
    int64_t warmServed = 0;     ///< served seeded from the store
    int64_t archiveSeeded = 0;  ///< store misses seeded from cfg.archive
    int64_t queueDepth = 0;  ///< currently waiting
    int64_t inFlight = 0;    ///< currently being searched
    int64_t samplesSpent = 0;
    /** Sum over warm requests of (cold budget - samples actually spent) —
     * the search cost the store amortized away (the Table V effect). */
    int64_t samplesSaved = 0;
};

/**
 * Online mapping service (the production form of Section V-C's serving
 * scenario): accepts MapRequests, queues them under per-tenant fair
 * admission, and serves them on a fixed set of worker lanes, each lane
 * running the search the request's SearchSpec names (default MAGMA,
 * with the paper's population-tracks-group-size rule; any
 * api::OptimizerRegistry method works, an unknown name fails the
 * request's future) over the exec engine.
 *
 * Admission order: strict priority levels first (lower value first);
 * within a level, lanes round-robin across the currently waiting tenants
 * by admission count (the tenant admitted least often goes next, ties to
 * the earliest waiting head request), FIFO within a tenant. A tenant
 * joining (or re-joining) the queue is rebased to the current round, so
 * a flood from one tenant cannot starve another — and a late joiner
 * cannot monopolize the lanes to "catch up" either.
 *
 * Warm starts, three tiers: each request's workload is fingerprinted
 * and looked up in the MappingStore — exact fine-fingerprint hits
 * first, then the best coarse (task + platform) entry; on a hit the
 * search is seeded with the transferred solution (job-matched
 * adaptation) and runs on the reduced warm budget. When BOTH store
 * tiers miss and ServiceConfig::archive is set, the archive's member
 * mappings seed the search at the full cold budget (the
 * mo::ParetoArchive::seedMappings tier). Completed searches write
 * improved solutions back to the store, so concurrent tenants of one
 * workload type compound each other's knowledge.
 *
 * Determinism: a request's response mapping is a pure function of the
 * request fields and the store view it observed. With warm starts
 * disabled — or against a frozen store (writeBack=false everywhere) —
 * fixed seeds produce bitwise identical mappings at any worker count and
 * any queue interleaving (tests/test_serve.cc locks this in).
 */
class MappingService {
  public:
    explicit MappingService(ServiceConfig cfg = {});
    ~MappingService();  ///< stop()s (draining the queue) if still running

    MappingService(const MappingService&) = delete;
    MappingService& operator=(const MappingService&) = delete;

    /** Enqueue a request; the future resolves when it has been served. */
    std::future<MapResponse> submit(MapRequest req);

    /** Launch worker lanes (no-op when already running). */
    void start();

    /** Block until the queue is empty and no request is in flight. */
    void drain();

    /**
     * Drain, join the worker lanes and — when cfg.storePath is set —
     * persist the store. The service accepts no submissions afterwards.
     */
    void stop();

    MappingStore& store() { return store_; }
    const ServiceConfig& config() const { return cfg_; }
    ServiceStats stats() const;

  private:
    struct Pending {
        MapRequest req;
        std::promise<MapResponse> promise;
        uint64_t seq = 0;  ///< arrival order
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();
    /** Pop the next request per the admission policy. Caller holds mu_. */
    Pending popNext();
    /** Whether the tenant has a waiting request. Caller holds mu_. */
    bool tenantQueued(const std::string& tenant) const;
    bool queueEmpty() const;  ///< caller holds mu_
    /** Serve one request on this lane's (possibly null) shared pool. */
    MapResponse serveOne(const MapRequest& req,
                         exec::ThreadPool* lane_pool);

    /** Record one finished request into the registry (see cfg.registry). */
    void recordServed(const std::string& tenant, bool failed,
                      double wait_seconds, double service_seconds);

    ServiceConfig cfg_;
    obs::MetricsRegistry* reg_ = nullptr;  ///< cfg.registry or global
    MappingStore store_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;   ///< queue gained work / stopping
    std::condition_variable idle_cv_;   ///< queue drained + nothing in flight
    /** priority level -> tenant -> FIFO of waiting requests. */
    std::map<int, std::map<std::string, std::deque<Pending>>> queue_;
    /** Admission counts of currently waiting tenants (rebased on join,
     * dropped when a tenant's last waiting request is admitted). */
    std::map<std::string, int64_t> admitted_;
    uint64_t next_seq_ = 0;
    int64_t next_serve_order_ = 0;
    int64_t queue_depth_ = 0;
    int64_t in_flight_ = 0;
    bool running_ = false;
    bool stopping_ = false;
    ServiceStats stats_;

    std::vector<std::thread> workers_;
};

}  // namespace magma::serve

#endif  // MAGMA_SERVE_SERVICE_H_
