#ifndef MAGMA_SERVE_SERVICE_H_
#define MAGMA_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/mapping_store.h"
#include "serve/request.h"

namespace magma::exec {
class ThreadPool;
}  // namespace magma::exec

namespace magma::mo {
class ParetoArchive;
}  // namespace magma::mo

namespace magma::serve {

/** MappingService knobs. */
struct ServiceConfig {
    /** Concurrent requests in flight (worker lanes). */
    int workers = 1;
    /**
     * Evaluation lanes per request (exec::ThreadPool size inside each
     * worker): 1 = serial, 0 = auto (MAGMA_THREADS env var, else hardware
     * concurrency), N > 1 = exactly N. Each worker lane owns one pool for
     * its lifetime, so back-to-back requests reuse warm threads.
     */
    int threadsPerRequest = 1;
    /** Warm-start store bound (LRU-evicted past this). */
    int storeCapacity = 64;
    int storeShards = 8;
    /**
     * When non-empty: the store's snapshot path. Construction runs crash
     * recovery (snapshot + "<storePath>.log" replay, tolerating a torn
     * final record), attaches the append-log — every write-back and
     * eviction is then fsync'd durably — and folds the replayed log into
     * a fresh snapshot. stop() compacts again. Warm-start knowledge
     * survives process restarts AND kill -9 mid-write.
     */
    std::string storePath;
    /**
     * Collapse identical in-flight work: a submitted request whose
     * coalescing key (fingerprint + every result-reaching search field
     * except the seed, see coalesceKeyOf) matches a queued or in-flight
     * request becomes a follower — it occupies no queue slot and runs no
     * search; when the leader finishes, every follower's future resolves
     * with a copy of the leader's response marked MapResponse::coalesced.
     * Followers inherit the leader's outcome in full: its exception, or
     * its shed flag when admission control drops the leader. Off by
     * default — coalesced responses depend on what is in flight at
     * submit time, so replays are only request-for-request reproducible
     * with coalescing off.
     */
    bool coalesce = false;
    /**
     * Admission control: with a positive bound, a submit() that would
     * push the queue past `maxQueueDepth` waiting requests sheds one
     * request instead of growing the queue — the oldest request of the
     * lowest-priority level (numerically highest; ties within the level
     * go to the oldest seq), or the incoming request itself when it is
     * lower-priority than everything waiting. Shed futures resolve with
     * MapResponse::shed (not an exception). 0 = unbounded.
     */
    int64_t maxQueueDepth = 0;
    /**
     * Optional per-priority depth limits, checked before the global
     * bound: when level P already holds `priorityDepthLimits[P]` waiting
     * requests, an arriving P-request sheds the oldest waiting request
     * of level P (the arrival is admitted — freshest-wins within a
     * level). Levels without an entry are unlimited.
     */
    std::map<int, int64_t> priorityDepthLimits;
    /** Start worker lanes immediately; false requires an explicit
     * start() (lets tests enqueue a whole trace before admission). */
    bool autoStart = true;
    /**
     * Registry the service records into: per-tenant wait/service
     * histograms ("serve.wait_seconds.<tenant>"), request counters and
     * queue-depth gauges. Null selects obs::MetricsRegistry::global();
     * benches pass a local registry so back-to-back configurations
     * don't bleed into one aggregate. Must outlive the service.
     */
    obs::MetricsRegistry* registry = nullptr;
    /**
     * Third warm-start tier: when a request misses both MappingStore
     * tiers (exact and coarse), the member mappings of this Pareto
     * archive — typically a persisted multi-objective front over the
     * same platform family (mo::ParetoArchive::load) — are adapted
     * positionally onto the request's group and seed the search at the
     * FULL cold budget (archive members are generic knowledge, not
     * same-workload solutions, so the budget is not cut the way store
     * hits cut it). Null disables the tier. Must outlive the service;
     * the service never mutates it, so the tier keeps requests
     * deterministic the way a frozen store does.
     */
    const mo::ParetoArchive* archive = nullptr;
};

/** Aggregate service counters. */
struct ServiceStats {
    int64_t submitted = 0;
    int64_t served = 0;  ///< fulfilled successfully (excludes `failed`)
    int64_t failed = 0;  ///< futures resolved with an exception
    int64_t coldServed = 0;
    int64_t warmServed = 0;     ///< served seeded from the store
    int64_t archiveSeeded = 0;  ///< store misses seeded from cfg.archive
    int64_t coalesced = 0;  ///< fulfilled as followers of a coalesced leader
    int64_t shed = 0;       ///< dropped by admission control or deadline
    int64_t queueDepth = 0;  ///< currently waiting
    int64_t inFlight = 0;    ///< currently being searched
    int64_t samplesSpent = 0;
    /** Sum over warm requests of (cold budget - samples actually spent) —
     * the search cost the store amortized away (the Table V effect). */
    int64_t samplesSaved = 0;
};

/**
 * Online mapping service (the production form of Section V-C's serving
 * scenario): accepts MapRequests, queues them under per-tenant fair
 * admission, and serves them on a fixed set of worker lanes, each lane
 * running the search the request's SearchSpec names (default MAGMA,
 * with the paper's population-tracks-group-size rule; any
 * api::OptimizerRegistry method works, an unknown name fails the
 * request's future) over the exec engine.
 *
 * Admission order: strict priority levels first (lower value first);
 * within a level, lanes round-robin across the currently waiting tenants
 * by admission count (the tenant admitted least often goes next, ties to
 * the earliest waiting head request), FIFO within a tenant. A tenant
 * joining (or re-joining) the queue is rebased to the current round, so
 * a flood from one tenant cannot starve another — and a late joiner
 * cannot monopolize the lanes to "catch up" either.
 *
 * Warm starts, three tiers: each request's workload is fingerprinted
 * and looked up in the MappingStore — exact fine-fingerprint hits
 * first, then the best coarse (task + platform) entry; on a hit the
 * search is seeded with the transferred solution (job-matched
 * adaptation) and runs on the reduced warm budget. When BOTH store
 * tiers miss and ServiceConfig::archive is set, the archive's member
 * mappings seed the search at the full cold budget (the
 * mo::ParetoArchive::seedMappings tier). Completed searches write
 * improved solutions back to the store, so concurrent tenants of one
 * workload type compound each other's knowledge.
 *
 * Production controls (all off by default): request coalescing collapses
 * identical in-flight work (ServiceConfig::coalesce), admission control
 * sheds load past the queue bounds (maxQueueDepth /
 * priorityDepthLimits), and MapRequest::deadlineSeconds sheds requests
 * that waited past their staleness bound at dequeue. Shed futures
 * resolve with MapResponse::shed rather than an exception — shedding is
 * an answer, not a failure. See docs/serving.md for the runbook.
 *
 * Determinism: a request's response mapping is a pure function of the
 * request fields and the store view it observed. With warm starts
 * disabled — or against a frozen store (writeBack=false everywhere) —
 * fixed seeds produce bitwise identical mappings at any worker count and
 * any queue interleaving (tests/test_serve.cc locks this in).
 */
class MappingService {
  public:
    explicit MappingService(ServiceConfig cfg = {});
    ~MappingService();  ///< stop()s (draining the queue) if still running

    MappingService(const MappingService&) = delete;
    MappingService& operator=(const MappingService&) = delete;

    /** Enqueue a request; the future resolves when it has been served. */
    std::future<MapResponse> submit(MapRequest req);

    /** Launch worker lanes (no-op when already running). */
    void start();

    /** Block until the queue is empty and no request is in flight. */
    void drain();

    /**
     * Drain, join the worker lanes and — when cfg.storePath is set —
     * persist the store. The service accepts no submissions afterwards.
     */
    void stop();

    MappingStore& store() { return store_; }
    const ServiceConfig& config() const { return cfg_; }
    ServiceStats stats() const;

  private:
    struct Pending {
        MapRequest req;
        std::promise<MapResponse> promise;
        uint64_t seq = 0;  ///< arrival order
        std::chrono::steady_clock::time_point enqueued;
        /** Non-empty iff this request leads a coalescing key (it is the
         * one that searches; followers live in followers_[key]). */
        std::string coalesceKey;
    };

    void workerLoop();
    /** Pop the next request per the admission policy. Caller holds mu_. */
    Pending popNext();
    /** Whether the tenant has a waiting request. Caller holds mu_. */
    bool tenantQueued(const std::string& tenant) const;
    bool queueEmpty() const;  ///< caller holds mu_
    /** Serve one request on this lane's (possibly null) shared pool. */
    MapResponse serveOne(const MapRequest& req,
                         exec::ThreadPool* lane_pool);

    /** Record one finished request into the registry (see cfg.registry). */
    void recordServed(const std::string& tenant, bool failed,
                      double wait_seconds, double service_seconds);

    /** Remove the oldest waiting request of `level` (min seq across its
     * tenants) from the queue, with admission bookkeeping. Caller holds
     * mu_; the caller still owns fulfilling the promise. */
    Pending removeOldestLocked(int level);
    /** Move `victim` plus its coalescing followers (shed cascades to
     * them) into `out` and bump stats_.shed. Caller holds mu_. */
    void collectShedLocked(Pending&& victim, std::vector<Pending>& out);
    /** Resolve shed promises (MapResponse::shed) + counters. No lock. */
    void fulfillShed(std::vector<Pending>& sheds);

    ServiceConfig cfg_;
    obs::MetricsRegistry* reg_ = nullptr;  ///< cfg.registry or global
    MappingStore store_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;   ///< queue gained work / stopping
    std::condition_variable idle_cv_;   ///< queue drained + nothing in flight
    /** priority level -> tenant -> FIFO of waiting requests. */
    std::map<int, std::map<std::string, std::deque<Pending>>> queue_;
    /** Admission counts of currently waiting tenants (rebased on join,
     * dropped when a tenant's last waiting request is admitted). */
    std::map<std::string, int64_t> admitted_;
    /** Coalescing keys with a queued or in-flight leader. */
    std::set<std::string> leader_keys_;
    /** Followers waiting on each leader's result. */
    std::map<std::string, std::vector<Pending>> followers_;
    uint64_t next_seq_ = 0;
    int64_t next_serve_order_ = 0;
    int64_t queue_depth_ = 0;
    int64_t in_flight_ = 0;
    bool running_ = false;
    bool stopping_ = false;
    ServiceStats stats_;

    std::vector<std::thread> workers_;
};

}  // namespace magma::serve

#endif  // MAGMA_SERVE_SERVICE_H_
