#include "analysis/convergence.h"

#include <algorithm>

namespace magma::analysis {

std::vector<double>
resampleCurve(const std::vector<double>& curve, int points)
{
    std::vector<double> out;
    out.reserve(points);
    if (curve.empty()) {
        out.assign(points, 0.0);
        return out;
    }
    for (int i = 1; i <= points; ++i) {
        size_t idx = static_cast<size_t>(
            static_cast<double>(i) / points * curve.size());
        idx = std::min(idx == 0 ? 0 : idx - 1, curve.size() - 1);
        out.push_back(curve[idx]);
    }
    return out;
}

std::vector<int>
resampleGrid(int total_samples, int points)
{
    std::vector<int> out;
    out.reserve(points);
    for (int i = 1; i <= points; ++i)
        out.push_back(static_cast<int>(
            static_cast<double>(i) / points * total_samples));
    return out;
}

int
samplesToFraction(const std::vector<double>& curve, double fraction)
{
    if (curve.empty())
        return -1;
    double target = curve.back() * fraction;
    for (size_t i = 0; i < curve.size(); ++i)
        if (curve[i] >= target)
            return static_cast<int>(i);
    return -1;
}

}  // namespace magma::analysis
