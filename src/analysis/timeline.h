#ifndef MAGMA_ANALYSIS_TIMELINE_H_
#define MAGMA_ANALYSIS_TIMELINE_H_

#include <string>
#include <vector>

#include "dnn/workload.h"
#include "sched/bw_allocator.h"

namespace magma::accel {
struct Platform;
}

namespace magma::analysis {

/**
 * Fig. 15-style schedule visualization: renders the BW allocator's event
 * stream as (a) an ASCII Gantt chart of sub-accelerator occupancy tagged
 * by task category, and (b) a bandwidth-allocation-over-time table.
 */
class TimelineExporter {
  public:
    TimelineExporter(const sched::ScheduleResult& result,
                     const dnn::JobGroup& group, int num_accels);

    /** ASCII Gantt chart, `width` columns spanning the makespan. */
    std::string renderGantt(int width = 80) const;

    /**
     * Rows "time_start,time_end,accel,job,task,alloc_bw" for CSV export.
     */
    std::vector<std::vector<std::string>> bwRows() const;

    /** Aggregate BW granted per task category over time (Fig. 15 d). */
    std::string renderBwProfile(int width = 80) const;

    double makespan() const { return result_->makespanSeconds; }

  private:
    const sched::ScheduleResult* result_;
    const dnn::JobGroup* group_;
    int num_accels_;

    char taskGlyph(int job) const;
};

}  // namespace magma::analysis

#endif  // MAGMA_ANALYSIS_TIMELINE_H_
