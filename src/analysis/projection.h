#ifndef MAGMA_ANALYSIS_PROJECTION_H_
#define MAGMA_ANALYSIS_PROJECTION_H_

#include <string>
#include <vector>

#include "common/pca.h"
#include "sched/mapping.h"

namespace magma::analysis {

/** One optimizer's sampled points projected into the shared PCA plane. */
struct ProjectedSeries {
    std::string method;
    std::vector<std::vector<double>> points;  // 2-D coordinates
    std::vector<double> fitness;
};

/**
 * Fig. 10 support: fit one PCA over the union of all methods' sampled
 * mappings (flattened), then project each method's samples into that
 * shared 2-D plane so the explored regions are directly comparable.
 */
class MapSpaceProjector {
  public:
    /**
     * `samples[i]` / `fitness[i]` belong to `methods[i]`. num_accels is
     * needed to flatten the genomes consistently.
     */
    std::vector<ProjectedSeries>
    project(const std::vector<std::string>& methods,
            const std::vector<std::vector<sched::Mapping>>& samples,
            const std::vector<std::vector<double>>& fitness,
            int num_accels);

    /** Variance explained by the two kept components (after project()). */
    const std::vector<double>& explainedVariance() const
    {
        return explained_;
    }

  private:
    std::vector<double> explained_;
};

}  // namespace magma::analysis

#endif  // MAGMA_ANALYSIS_PROJECTION_H_
