#ifndef MAGMA_ANALYSIS_CONVERGENCE_H_
#define MAGMA_ANALYSIS_CONVERGENCE_H_

#include <string>
#include <vector>

namespace magma::analysis {

/**
 * Helpers for the convergence-curve figures (Figs. 11 and 16): resample a
 * per-sample best-so-far curve onto a fixed grid of checkpoints so curves
 * of different methods/budgets align in one table or CSV.
 */

/**
 * Values of `curve` at `points` evenly spaced sample counts (the last
 * checkpoint is the final sample). Short curves are right-extended with
 * their final value.
 */
std::vector<double> resampleCurve(const std::vector<double>& curve,
                                  int points);

/** The sample counts the resampled grid corresponds to. */
std::vector<int> resampleGrid(int total_samples, int points);

/**
 * First sample index at which the curve reaches `fraction` of its final
 * value — the "samples to X% convergence" metric. Returns -1 if never.
 */
int samplesToFraction(const std::vector<double>& curve, double fraction);

}  // namespace magma::analysis

#endif  // MAGMA_ANALYSIS_CONVERGENCE_H_
