#include "analysis/projection.h"

namespace magma::analysis {

std::vector<ProjectedSeries>
MapSpaceProjector::project(
    const std::vector<std::string>& methods,
    const std::vector<std::vector<sched::Mapping>>& samples,
    const std::vector<std::vector<double>>& fitness, int num_accels)
{
    // Union of all flattened samples defines the plane.
    std::vector<std::vector<double>> all;
    for (const auto& series : samples)
        for (const auto& m : series)
            all.push_back(m.toFlat(num_accels));

    common::Pca pca;
    pca.fit(all, 2);
    explained_ = pca.explainedVarianceRatio();

    std::vector<ProjectedSeries> out;
    for (size_t s = 0; s < methods.size(); ++s) {
        ProjectedSeries series;
        series.method = methods[s];
        series.fitness = fitness[s];
        for (const auto& m : samples[s])
            series.points.push_back(pca.transform(m.toFlat(num_accels)));
        out.push_back(std::move(series));
    }
    return out;
}

}  // namespace magma::analysis
