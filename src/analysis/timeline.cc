#include "analysis/timeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/csv.h"

namespace magma::analysis {

TimelineExporter::TimelineExporter(const sched::ScheduleResult& result,
                                   const dnn::JobGroup& group,
                                   int num_accels)
    : result_(&result), group_(&group), num_accels_(num_accels)
{}

char
TimelineExporter::taskGlyph(int job) const
{
    switch (group_->jobs[job].task) {
    case dnn::TaskType::Vision:
        return 'V';
    case dnn::TaskType::Language:
        return 'L';
    case dnn::TaskType::Recommendation:
        return 'R';
    default:
        return '?';
    }
}

std::string
TimelineExporter::renderGantt(int width) const
{
    double span = std::max(result_->makespanSeconds, 1e-30);
    std::ostringstream os;
    for (int a = 0; a < num_accels_; ++a) {
        std::string row(width, '.');
        for (const auto& ev : result_->events) {
            if (ev.accel != a)
                continue;
            int lo = static_cast<int>(ev.start / span * width);
            int hi = static_cast<int>(ev.end / span * width);
            lo = std::clamp(lo, 0, width - 1);
            hi = std::clamp(hi, lo, width - 1);
            for (int c = lo; c <= hi; ++c)
                row[c] = taskGlyph(ev.job);
        }
        os << "S-Accel-" << a << " |" << row << "|\n";
    }
    os << "             0" << std::string(width - 12, ' ')
       << common::CsvWriter::num(span) << "s\n";
    return os.str();
}

std::vector<std::vector<std::string>>
TimelineExporter::bwRows() const
{
    std::vector<std::vector<std::string>> rows;
    rows.reserve(result_->events.size());
    for (const auto& ev : result_->events) {
        rows.push_back({common::CsvWriter::num(ev.start),
                        common::CsvWriter::num(ev.end),
                        std::to_string(ev.accel), std::to_string(ev.job),
                        dnn::taskTypeName(group_->jobs[ev.job].task),
                        common::CsvWriter::num(ev.allocBw)});
    }
    return rows;
}

std::string
TimelineExporter::renderBwProfile(int width) const
{
    double span = std::max(result_->makespanSeconds, 1e-30);
    // Total granted BW per column (time bucket).
    std::vector<double> total(width, 0.0);
    for (const auto& ev : result_->events) {
        int lo = std::clamp(static_cast<int>(ev.start / span * width), 0,
                            width - 1);
        int hi = std::clamp(static_cast<int>(ev.end / span * width), lo,
                            width - 1);
        for (int c = lo; c <= hi; ++c)
            total[c] += ev.allocBw;
    }
    double peak = *std::max_element(total.begin(), total.end());
    peak = std::max(peak, 1e-30);

    std::ostringstream os;
    const int bars = 8;
    for (int level = bars; level >= 1; --level) {
        os << (level == bars ? "BW " : "   ") << "|";
        for (int c = 0; c < width; ++c)
            os << (total[c] / peak >= static_cast<double>(level) / bars
                       ? '#' : ' ');
        os << "|\n";
    }
    os << "    peak granted BW = " << common::CsvWriter::num(peak)
       << " GB/s\n";
    return os.str();
}

}  // namespace magma::analysis
