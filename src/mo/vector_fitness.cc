#include "mo/vector_fitness.h"

#include <cassert>

#include "exec/eval_engine.h"

namespace magma::mo {

VectorFitness::VectorFitness(const sched::MappingEvaluator& eval,
                             std::vector<sched::Objective> objectives,
                             int threads, sched::EvalMode mode,
                             exec::EvalEngine* engine)
    : eval_(&eval),
      objectives_(std::move(objectives)),
      engine_(engine),
      total_flops_(eval.group().totalFlops())
{
    if (engine_) {
        // A borrowed engine must wrap the same evaluator, like
        // SearchOptions::engine.
        assert(&engine_->evaluator() == &eval);
    } else {
        owned_engine_ =
            std::make_unique<exec::EvalEngine>(eval, threads, mode);
        engine_ = owned_engine_.get();
    }
}

VectorFitness::~VectorFitness() = default;

ObjectiveVector
VectorFitness::fromSimPoint(const sched::SimPoint& sp) const
{
    ObjectiveVector v(objectives_.size());
    for (size_t k = 0; k < objectives_.size(); ++k)
        v[k] = sched::objectiveFromSimulation(
            objectives_[k], sp.makespanSeconds, sp.joules, total_flops_);
    return v;
}

std::vector<ObjectiveVector>
VectorFitness::evaluateBatch(const std::vector<sched::Mapping>& ms) const
{
    std::vector<sched::SimPoint> sims = engine_->simulateBatch(ms);
    std::vector<ObjectiveVector> out;
    out.reserve(sims.size());
    for (const sched::SimPoint& sp : sims)
        out.push_back(fromSimPoint(sp));
    return out;
}

ObjectiveVector
VectorFitness::evaluate(const sched::Mapping& m) const
{
    return evaluateBatch({m}).front();
}

}  // namespace magma::mo
