#include "mo/pareto.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/textnum.h"

namespace magma::mo {
namespace {

using common::formatDouble;
using common::parseDouble;

constexpr const char* kFrontHeader = "magma-pareto-front v1";

std::string
trimBlanks(const std::string& s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

}  // namespace

// ------------------------------------------------------------ MoPoint ---

std::string
MoPoint::toText() const
{
    std::string out;
    for (size_t i = 0; i < objs.size(); ++i) {
        if (i)
            out += ' ';
        out += formatDouble(objs[i]);
    }
    out += " ; ";
    out += m.toText();
    return out;
}

MoPoint
MoPoint::fromText(const std::string& line)
{
    size_t semi = line.find(';');
    if (semi == std::string::npos)
        throw std::invalid_argument("MoPoint: missing ';' in '" + line +
                                    "'");
    MoPoint p;
    std::istringstream vals(line.substr(0, semi));
    std::string tok;
    while (vals >> tok)
        p.objs.push_back(parseDouble("MoPoint objective", tok));
    p.m = sched::Mapping::fromText(trimBlanks(line.substr(semi + 1)));
    return p;
}

// ---------------------------------------------------------- dominance ---

bool
dominates(const ObjectiveVector& a, const ObjectiveVector& b)
{
    bool strict = false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] < b[i])
            return false;
        if (a[i] > b[i])
            strict = true;
    }
    return strict;
}

bool
weaklyDominates(const ObjectiveVector& a, const ObjectiveVector& b)
{
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i] < b[i])
            return false;
    return true;
}

std::vector<int>
nonDominatedRanks(const std::vector<ObjectiveVector>& objs)
{
    const int n = static_cast<int>(objs.size());
    std::vector<int> rank(n, -1);
    std::vector<int> dom_count(n, 0);          // #points dominating i
    std::vector<std::vector<int>> dominated(n);  // points i dominates
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            if (dominates(objs[i], objs[j])) {
                dominated[i].push_back(j);
                ++dom_count[j];
            } else if (dominates(objs[j], objs[i])) {
                dominated[j].push_back(i);
                ++dom_count[i];
            }
        }
    }
    std::vector<int> current;
    for (int i = 0; i < n; ++i)
        if (dom_count[i] == 0) {
            rank[i] = 0;
            current.push_back(i);
        }
    int level = 0;
    while (!current.empty()) {
        std::vector<int> next;
        for (int i : current)
            for (int j : dominated[i])
                if (--dom_count[j] == 0) {
                    rank[j] = level + 1;
                    next.push_back(j);
                }
        ++level;
        current = std::move(next);
    }
    return rank;
}

std::vector<double>
crowdingDistances(const std::vector<ObjectiveVector>& objs,
                  const std::vector<int>& front)
{
    const size_t n = front.size();
    std::vector<double> crowd(n, 0.0);
    if (n == 0)
        return crowd;
    const size_t arity = objs[front[0]].size();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<size_t> order(n);
    for (size_t d = 0; d < arity; ++d) {
        for (size_t i = 0; i < n; ++i)
            order[i] = i;
        // Stable index tie-break keeps the result deterministic.
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            double va = objs[front[a]][d], vb = objs[front[b]][d];
            return va != vb ? va < vb : a < b;
        });
        double lo = objs[front[order[0]]][d];
        double hi = objs[front[order[n - 1]]][d];
        crowd[order[0]] = kInf;
        crowd[order[n - 1]] = kInf;
        if (hi <= lo)
            continue;  // degenerate objective: no interior spread
        for (size_t i = 1; i + 1 < n; ++i) {
            if (crowd[order[i]] == kInf)
                continue;
            crowd[order[i]] += (objs[front[order[i + 1]]][d] -
                                objs[front[order[i - 1]]][d]) /
                               (hi - lo);
        }
    }
    return crowd;
}

// ------------------------------------------------------ ParetoArchive ---

bool
ParetoArchive::insert(MoPoint p)
{
    if (p.objs.size() != objectives_.size())
        throw std::invalid_argument(
            "ParetoArchive::insert: arity mismatch (point " +
            std::to_string(p.objs.size()) + ", archive " +
            std::to_string(objectives_.size()) + ")");
    for (const MoPoint& q : points_)
        if (weaklyDominates(q.objs, p.objs))
            return false;  // dominated or duplicate
    std::erase_if(points_, [&](const MoPoint& q) {
        return dominates(p.objs, q.objs);
    });
    points_.push_back(std::move(p));
    if (capacity_ > 0 && points_.size() > capacity_) {
        std::vector<ObjectiveVector> objs;
        std::vector<int> all;
        objs.reserve(points_.size());
        for (size_t i = 0; i < points_.size(); ++i) {
            objs.push_back(points_[i].objs);
            all.push_back(static_cast<int>(i));
        }
        std::vector<double> crowd = crowdingDistances(objs, all);
        // Evict the least-crowded member; ties drop the youngest so
        // long-standing spread survives.
        size_t victim = 0;
        for (size_t i = 1; i < points_.size(); ++i)
            if (crowd[i] <= crowd[victim])
                victim = i;
        bool evicted_self = victim + 1 == points_.size();
        points_.erase(points_.begin() + static_cast<ptrdiff_t>(victim));
        if (evicted_self)
            return false;
    }
    return true;
}

std::vector<sched::Mapping>
ParetoArchive::seedMappings() const
{
    std::vector<sched::Mapping> seeds;
    seeds.reserve(points_.size());
    for (const MoPoint& p : points_)
        seeds.push_back(p.m);
    return seeds;
}

namespace {

/**
 * Exact hypervolume by recursive slicing on the last of `d` objectives.
 * `pts` hold values strictly greater than `ref` in every objective.
 * Exponential in arity in the worst case — fine for the small fronts
 * the archive holds; 2-D gets the closed-form sweep.
 */
double
hvRecursive(std::vector<const ObjectiveVector*> pts,
            const ObjectiveVector& ref, size_t d)
{
    if (pts.empty())
        return 0.0;
    if (d == 1) {
        double best = 0.0;
        for (const ObjectiveVector* p : pts)
            best = std::max(best, (*p)[0] - ref[0]);
        return best;
    }
    std::sort(pts.begin(), pts.end(),
              [d](const ObjectiveVector* a, const ObjectiveVector* b) {
                  return (*a)[d - 1] > (*b)[d - 1];
              });
    if (d == 2) {
        // Sweep down obj1; each step adds a rectangle up to the best
        // obj0 seen so far.
        double total = 0.0, best0 = 0.0;
        for (size_t i = 0; i < pts.size(); ++i) {
            double z_hi = (*pts[i])[1];
            double z_lo = i + 1 < pts.size() ? (*pts[i + 1])[1] : ref[1];
            best0 = std::max(best0, (*pts[i])[0] - ref[0]);
            if (z_hi > z_lo)
                total += best0 * (z_hi - z_lo);
        }
        return total;
    }
    double total = 0.0;
    std::vector<const ObjectiveVector*> prefix;
    prefix.reserve(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
        prefix.push_back(pts[i]);
        double z_hi = (*pts[i])[d - 1];
        double z_lo = i + 1 < pts.size() ? (*pts[i + 1])[d - 1] : ref[d - 1];
        if (z_hi > z_lo)
            total += hvRecursive(prefix, ref, d - 1) * (z_hi - z_lo);
    }
    return total;
}

}  // namespace

double
ParetoArchive::hypervolume(const ObjectiveVector& ref) const
{
    if (ref.size() != objectives_.size())
        throw std::invalid_argument(
            "ParetoArchive::hypervolume: reference arity mismatch");
    std::vector<const ObjectiveVector*> pts;
    for (const MoPoint& p : points_) {
        bool inside = true;
        for (size_t d = 0; d < ref.size(); ++d)
            if (p.objs[d] <= ref[d]) {
                inside = false;
                break;
            }
        if (inside)
            pts.push_back(&p.objs);
    }
    return hvRecursive(std::move(pts), ref, ref.size());
}

double
ParetoArchive::epsilonIndicator(const std::vector<ObjectiveVector>& a,
                                const std::vector<ObjectiveVector>& b)
{
    if (b.empty())
        return 0.0;
    if (a.empty())
        return std::numeric_limits<double>::infinity();
    double eps = -std::numeric_limits<double>::infinity();
    for (const ObjectiveVector& bv : b) {
        double best = std::numeric_limits<double>::infinity();
        for (const ObjectiveVector& av : a) {
            double worst = -std::numeric_limits<double>::infinity();
            for (size_t d = 0; d < bv.size(); ++d)
                worst = std::max(worst, bv[d] - av[d]);
            best = std::min(best, worst);
        }
        eps = std::max(eps, best);
    }
    return eps;
}

std::string
ParetoArchive::toText() const
{
    std::ostringstream os;
    os << kFrontHeader << '\n'
       << "objectives=" << sched::objectiveListName(objectives_) << '\n'
       << "capacity=" << capacity_ << '\n';
    for (const MoPoint& p : points_)
        os << "point=" << p.toText() << '\n';
    return os.str();
}

ParetoArchive
ParetoArchive::fromText(const std::string& text)
{
    ParetoArchive arch;
    size_t pos = 0;
    bool saw_header = false;
    while (pos <= text.size()) {
        size_t nl = text.find('\n', pos);
        std::string line = trimBlanks(text.substr(
            pos, (nl == std::string::npos ? text.size() : nl) - pos));
        pos = (nl == std::string::npos) ? text.size() + 1 : nl + 1;
        if (line.empty() || line[0] == '#')
            continue;
        if (!saw_header) {
            if (line != kFrontHeader)
                throw std::invalid_argument(
                    "ParetoArchive::fromText: missing '" +
                    std::string(kFrontHeader) + "' header");
            saw_header = true;
            continue;
        }
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "ParetoArchive::fromText: bad line '" + line + "'");
        std::string key = trimBlanks(line.substr(0, eq));
        std::string value = trimBlanks(line.substr(eq + 1));
        if (key == "objectives")
            arch.objectives_ = sched::objectiveListFromName(value);
        else if (key == "capacity") {
            char* end = nullptr;
            arch.capacity_ = std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                throw std::invalid_argument(
                    "ParetoArchive::fromText: bad capacity '" + value +
                    "'");
        }
        else if (key == "point") {
            MoPoint p = MoPoint::fromText(value);
            if (p.objs.size() != arch.objectives_.size())
                throw std::invalid_argument(
                    "ParetoArchive::fromText: point arity mismatch");
            // Trust the writer's invariant: members are mutually
            // non-dominated, so append verbatim for an exact round-trip.
            arch.points_.push_back(std::move(p));
        } else {
            throw std::invalid_argument(
                "ParetoArchive::fromText: unknown key '" + key + "'");
        }
    }
    if (!saw_header)
        throw std::invalid_argument(
            "ParetoArchive::fromText: empty input");
    return arch;
}

void
ParetoArchive::save(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write Pareto front '" + path +
                                 "'");
    out << toText();
    if (!out)
        throw std::runtime_error("short write on Pareto front '" + path +
                                 "'");
}

ParetoArchive
ParetoArchive::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read Pareto front '" + path +
                                 "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromText(buf.str());
}

}  // namespace magma::mo
