#ifndef MAGMA_MO_PARETO_H_
#define MAGMA_MO_PARETO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sched/evaluator.h"
#include "sched/mapping.h"

namespace magma::mo {

/**
 * Objective values of one candidate, in the run's requested objective
 * order. Every objective is a maximization quantity (the Section IV-C
 * convention all scalar optimizers already follow), so Pareto dominance
 * is uniformly ">= everywhere, > somewhere".
 */
using ObjectiveVector = std::vector<double>;

/**
 * One candidate on (or competing for) a Pareto front: the encoded
 * mapping plus its objective vector.
 *
 * Text form: "%.17g"-printed objective values, " ; ", then the
 * Mapping::toText line — so fromText(toText(p)) == p bitwise, the same
 * discipline every persistent artifact in the repo follows.
 */
struct MoPoint {
    sched::Mapping m;
    ObjectiveVector objs;

    std::string toText() const;
    /** Exact inverse of toText(); throws std::invalid_argument. */
    static MoPoint fromText(const std::string& line);

    bool operator==(const MoPoint&) const = default;
};

/** a Pareto-dominates b: >= in every objective, > in at least one. */
bool dominates(const ObjectiveVector& a, const ObjectiveVector& b);

/** a weakly dominates b: >= in every objective (equality included). */
bool weaklyDominates(const ObjectiveVector& a, const ObjectiveVector& b);

/**
 * Fast non-dominated sort (Deb et al. 2002): returns rank[i] per point,
 * 0 for the first (non-dominated) front, 1 for the front after removing
 * rank 0, and so on. Deterministic — ranks depend only on the values.
 */
std::vector<int> nonDominatedRanks(const std::vector<ObjectiveVector>& objs);

/**
 * NSGA-II crowding distance of the points `front` (indices into `objs`)
 * within their front. Boundary points per objective get +infinity; ties
 * in the per-objective sorts break stably on index, so the result is
 * deterministic at any thread count.
 */
std::vector<double> crowdingDistances(
    const std::vector<ObjectiveVector>& objs, const std::vector<int>& front);

/**
 * Bounded non-dominated archive — the persistent product of a
 * multi-objective search. Maintains the invariant that members are
 * mutually non-dominated: an offered point is rejected when a member
 * weakly dominates it (duplicates included), and on acceptance evicts
 * every member it dominates. When `capacity > 0` and the archive
 * overflows, the member with the smallest crowding distance is dropped
 * (ties: the youngest, i.e. highest index), preserving front spread.
 *
 * Text form ("magma-pareto-front v1" header, objectives/capacity keys,
 * one point= line per member in insertion order) round-trips bitwise,
 * so fronts persist across runs the way RunReports and the serve-layer
 * MappingStore do — and seedMappings() turns a reloaded front into
 * SearchOptions::seeds / serve warm starts.
 */
class ParetoArchive {
  public:
    ParetoArchive() = default;
    explicit ParetoArchive(std::vector<sched::Objective> objectives,
                           size_t capacity = 0)
        : objectives_(std::move(objectives)), capacity_(capacity)
    {}

    const std::vector<sched::Objective>& objectives() const
    {
        return objectives_;
    }
    /** 0 means unbounded. */
    size_t capacity() const { return capacity_; }
    const std::vector<MoPoint>& points() const { return points_; }
    size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

    /**
     * Offer a candidate; returns true when it joined the archive. The
     * objective vector's arity must match objectives() (checked).
     */
    bool insert(MoPoint p);

    /** Member mappings, insertion order — warm-start seed material. */
    std::vector<sched::Mapping> seedMappings() const;

    /**
     * Hypervolume (maximization): Lebesgue measure of the union of boxes
     * [ref, p] over members p, computed exactly by recursive slicing on
     * the last objective. Members not strictly better than `ref` in
     * every objective contribute nothing. `ref` must have the archive's
     * arity.
     */
    double hypervolume(const ObjectiveVector& ref) const;

    /**
     * Additive epsilon indicator I_eps(A, B) for maximization: the
     * smallest eps such that every point of B is weakly dominated by
     * some point of A after adding eps to all of A's objectives. <= 0
     * means A already covers B; symmetric calls compare two fronts.
     */
    static double epsilonIndicator(const std::vector<ObjectiveVector>& a,
                                   const std::vector<ObjectiveVector>& b);

    std::string toText() const;
    /** Exact inverse of toText(); throws std::invalid_argument. */
    static ParetoArchive fromText(const std::string& text);

    /** Write toText() to `path`; throws std::runtime_error on failure. */
    void save(const std::string& path) const;
    /** Parse a save()d file; throws std::runtime_error if unreadable. */
    static ParetoArchive load(const std::string& path);

    bool operator==(const ParetoArchive&) const = default;

  private:
    std::vector<sched::Objective> objectives_;
    size_t capacity_ = 0;
    std::vector<MoPoint> points_;
};

}  // namespace magma::mo

#endif  // MAGMA_MO_PARETO_H_
