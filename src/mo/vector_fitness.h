#ifndef MAGMA_MO_VECTOR_FITNESS_H_
#define MAGMA_MO_VECTOR_FITNESS_H_

#include <memory>
#include <vector>

#include "mo/pareto.h"
#include "sched/evaluator.h"
#include "sched/flat_eval.h"
#include "sched/mapping.h"

namespace magma::exec {
class EvalEngine;
}  // namespace magma::exec

namespace magma::mo {

/**
 * Vector-objective evaluation: scores each candidate ONCE — one schedule
 * simulation through exec::EvalEngine::simulateBatch, on the same
 * sched::FlatEvaluator/MappingEvaluator kernels every scalar optimizer
 * uses — and extracts all requested objectives from the resulting
 * (makespan, joules) pair via sched::objectiveFromSimulation.
 *
 * Parity contract: element k of an evaluated vector is bitwise equal to
 * the scalar fitness a MappingEvaluator fixed on objectives()[k] would
 * return for the same mapping (the three formula paths share one
 * switch), so a multi-objective run costs one simulation per candidate
 * instead of one per objective with zero quality drift.
 *
 * Budget accounting: one sample per candidate on the evaluator's shared
 * meter, like every scalar path. Results are in submission order and
 * identical at any thread count.
 */
class VectorFitness {
  public:
    /**
     * `threads`/`mode` follow opt::SearchOptions semantics (0 threads =
     * auto). Pass `engine` to borrow an existing exec::EvalEngine
     * (overrides threads/mode; must wrap `eval` and outlive this).
     */
    VectorFitness(const sched::MappingEvaluator& eval,
                  std::vector<sched::Objective> objectives, int threads = 1,
                  sched::EvalMode mode = sched::EvalMode::Flat,
                  exec::EvalEngine* engine = nullptr);
    ~VectorFitness();

    const std::vector<sched::Objective>& objectives() const
    {
        return objectives_;
    }
    int arity() const { return static_cast<int>(objectives_.size()); }
    const sched::MappingEvaluator& evaluator() const { return *eval_; }

    /**
     * Objective vectors of a whole generation, submission order; one
     * sample and one simulation per candidate.
     */
    std::vector<ObjectiveVector> evaluateBatch(
        const std::vector<sched::Mapping>& ms) const;

    /** Single-candidate convenience (still one sample). */
    ObjectiveVector evaluate(const sched::Mapping& m) const;

    /** Extraction only: objective vector of an already-simulated pair. */
    ObjectiveVector fromSimPoint(const sched::SimPoint& sp) const;

  private:
    const sched::MappingEvaluator* eval_;
    std::vector<sched::Objective> objectives_;
    std::unique_ptr<exec::EvalEngine> owned_engine_;
    exec::EvalEngine* engine_;
    int64_t total_flops_;
};

}  // namespace magma::mo

#endif  // MAGMA_MO_VECTOR_FITNESS_H_
