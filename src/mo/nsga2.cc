#include "mo/nsga2.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "mo/vector_fitness.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace magma::mo {
namespace {

/**
 * Per-generation mo.generation trace instant: i = generation, a = front
 * size, b = front hypervolume (origin ref). Exact hypervolume is
 * exponential in arity, so the payload is NaN beyond the cheap regime
 * (arity <= 3, front <= 64) — observability must never dominate the
 * search it watches.
 */
void
traceMoGeneration(int64_t gen, const ParetoArchive& archive)
{
    if (obs::countersOn())
        obs::MetricsRegistry::global().counter("mo.generations").add();
    if (!obs::traceOn())
        return;
    double hv = std::numeric_limits<double>::quiet_NaN();
    size_t arity = archive.objectives().size();
    if (!archive.empty() && arity <= 3 && archive.size() <= 64) {
        ObjectiveVector origin(arity, 0.0);
        hv = archive.hypervolume(origin);
    }
    obs::traceInstant("mo.generation", gen,
                      static_cast<double>(archive.size()), hv);
}

struct Ind {
    sched::Mapping m;
    ObjectiveVector objs;
};

/** Per-individual crowding distance, computed front by front. */
std::vector<double>
crowdingByRank(const std::vector<ObjectiveVector>& objs,
               const std::vector<int>& ranks)
{
    int max_rank = 0;
    for (int r : ranks)
        max_rank = std::max(max_rank, r);
    std::vector<std::vector<int>> fronts(max_rank + 1);
    for (size_t i = 0; i < ranks.size(); ++i)
        fronts[ranks[i]].push_back(static_cast<int>(i));
    std::vector<double> crowd(ranks.size(), 0.0);
    for (const std::vector<int>& front : fronts) {
        std::vector<double> c = crowdingDistances(objs, front);
        for (size_t k = 0; k < front.size(); ++k)
            crowd[front[k]] = c[k];
    }
    return crowd;
}

std::vector<ObjectiveVector>
objectiveRows(const std::vector<Ind>& pop)
{
    std::vector<ObjectiveVector> rows;
    rows.reserve(pop.size());
    for (const Ind& ind : pop)
        rows.push_back(ind.objs);
    return rows;
}

/**
 * Environmental selection: keep the best `n` of `pool` by whole fronts,
 * splitting the cut front by crowding distance (descending, stable on
 * index) — Deb's elitist (mu + lambda) step. Deterministic.
 */
std::vector<Ind>
selectByRankAndCrowding(std::vector<Ind> pool, int n)
{
    std::vector<ObjectiveVector> rows = objectiveRows(pool);
    std::vector<int> ranks = nonDominatedRanks(rows);
    int max_rank = 0;
    for (int r : ranks)
        max_rank = std::max(max_rank, r);
    std::vector<std::vector<int>> fronts(max_rank + 1);
    for (size_t i = 0; i < ranks.size(); ++i)
        fronts[ranks[i]].push_back(static_cast<int>(i));

    std::vector<Ind> next;
    next.reserve(n);
    for (std::vector<int>& front : fronts) {
        int room = n - static_cast<int>(next.size());
        if (room <= 0)
            break;
        if (static_cast<int>(front.size()) > room) {
            std::vector<double> crowd = crowdingDistances(rows, front);
            std::vector<int> order(front.size());
            for (size_t k = 0; k < order.size(); ++k)
                order[k] = static_cast<int>(k);
            std::sort(order.begin(), order.end(), [&](int a, int b) {
                return crowd[a] != crowd[b] ? crowd[a] > crowd[b] : a < b;
            });
            order.resize(room);
            // Preserve pool order within the cut for determinism.
            std::sort(order.begin(), order.end(), [&](int a, int b) {
                return front[a] < front[b];
            });
            for (int k : order)
                next.push_back(std::move(pool[front[k]]));
        } else {
            for (int i : front)
                next.push_back(std::move(pool[i]));
        }
    }
    return next;
}

}  // namespace

void
Nsga2::evolve(int group_size, int num_accels,
              const std::vector<sched::Mapping>& seeds, const ScoreFn& score,
              ParetoArchive& archive)
{
    const int pop_size = std::max(2, cfg_.ops.population);

    std::vector<Ind> pop;
    pop.reserve(pop_size);
    for (const sched::Mapping& s : seeds) {
        if (static_cast<int>(pop.size()) >= pop_size)
            break;
        pop.push_back({s, {}});
    }
    while (static_cast<int>(pop.size()) < pop_size)
        pop.push_back(
            {sched::Mapping::random(group_size, num_accels, rng_), {}});

    auto score_into = [&](std::vector<Ind>& gen) {
        std::vector<sched::Mapping> ms;
        ms.reserve(gen.size());
        for (const Ind& ind : gen)
            ms.push_back(ind.m);
        std::vector<ObjectiveVector> objs = score(ms);
        for (size_t i = 0; i < objs.size(); ++i) {
            gen[i].objs = objs[i];
            archive.insert({gen[i].m, std::move(objs[i])});
        }
        return objs.size() == ms.size();
    };

    if (!score_into(pop))
        return;  // budget exhausted mid-initialization
    int64_t gen = 0;
    traceMoGeneration(gen, archive);

    while (true) {
        std::vector<ObjectiveVector> rows = objectiveRows(pop);
        std::vector<int> ranks = nonDominatedRanks(rows);
        std::vector<double> crowd = crowdingByRank(rows, ranks);

        // Binary tournament on (rank, crowding), stable on index.
        auto better = [&](int a, int b) {
            if (ranks[a] != ranks[b])
                return ranks[a] < ranks[b];
            if (crowd[a] != crowd[b])
                return crowd[a] > crowd[b];
            return a < b;
        };
        auto tournament = [&]() {
            int a = rng_.uniformInt(pop_size);
            int b = rng_.uniformInt(pop_size);
            return better(a, b) ? a : b;
        };

        // Breed a full child generation with MAGMA's encoding-aware
        // operators — the same son/daughter pattern as MagmaGa::run.
        std::vector<Ind> children;
        children.reserve(pop_size);
        while (static_cast<int>(children.size()) < pop_size) {
            int di = tournament();
            int mi = tournament();
            sched::Mapping son = pop[di].m;
            sched::Mapping daughter = pop[mi].m;

            if (cfg_.ops.enableCrossoverGen &&
                rng_.bernoulli(cfg_.ops.crossoverGenRate))
                opt::MagmaGa::crossoverGen(son, daughter, rng_);
            if (cfg_.ops.enableCrossoverRg &&
                rng_.bernoulli(cfg_.ops.crossoverRgRate))
                opt::MagmaGa::crossoverRg(son, daughter, rng_);
            if (cfg_.ops.enableCrossoverAccel &&
                rng_.bernoulli(cfg_.ops.crossoverAccelRate))
                opt::MagmaGa::crossoverAccel(son, pop[mi].m, num_accels,
                                             rng_);

            opt::MagmaGa::mutate(son, cfg_.ops.mutationRate, num_accels,
                                 rng_);
            children.push_back({std::move(son), {}});
            if (static_cast<int>(children.size()) < pop_size) {
                opt::MagmaGa::mutate(daughter, cfg_.ops.mutationRate,
                                     num_accels, rng_);
                children.push_back({std::move(daughter), {}});
            }
        }

        bool complete = score_into(children);

        // Elitist (mu + lambda) survival over parents + scored children.
        std::vector<Ind> pool = std::move(pop);
        pool.reserve(pool.size() + children.size());
        for (Ind& c : children)
            if (!c.objs.empty())
                pool.push_back(std::move(c));
        pop = selectByRankAndCrowding(std::move(pool), pop_size);
        traceMoGeneration(++gen, archive);

        if (!complete)
            return;  // budget exhausted
    }
}

MoSearchResult
Nsga2::searchMo(const sched::MappingEvaluator& eval,
                const std::vector<sched::Objective>& objectives,
                const opt::SearchOptions& opts)
{
    if (objectives.empty())
        throw std::invalid_argument(
            "NSGA-II: objectives list must be non-empty");

    VectorFitness vf(eval, objectives, opts.threads, opts.evalMode,
                     opts.engine);
    MoSearchResult res;
    res.front = ParetoArchive(objectives, cfg_.archiveCapacity);

    int64_t remaining = opts.sampleBudget;
    ScoreFn score = [&](const std::vector<sched::Mapping>& ms)
        -> std::vector<ObjectiveVector> {
        int64_t n = std::min<int64_t>(
            static_cast<int64_t>(ms.size()), remaining);
        if (n <= 0)
            return {};
        remaining -= n;
        if (n == static_cast<int64_t>(ms.size()))
            return vf.evaluateBatch(ms);
        // Budget truncation: only the affordable prefix is simulated
        // (and paid for), mirroring SearchRecorder::evaluateBatch.
        std::vector<sched::Mapping> prefix(ms.begin(), ms.begin() + n);
        return vf.evaluateBatch(prefix);
    };

    evolve(eval.groupSize(), eval.numAccels(), opts.seeds, score,
           res.front);
    res.samplesUsed = opts.sampleBudget - remaining;
    return res;
}

void
Nsga2::run(const sched::MappingEvaluator& eval,
           const opt::SearchOptions& opts, opt::SearchRecorder& rec)
{
    // Scalar mode: the same generational loop over the 1-vector
    // {eval.objective()}, scored through the SearchRecorder so budget,
    // incumbent and convergence behave like every other optimizer.
    ParetoArchive archive({eval.objective()}, cfg_.archiveCapacity);
    ScoreFn score = [&rec](const std::vector<sched::Mapping>& ms) {
        std::vector<double> fits = rec.evaluateBatch(ms);
        std::vector<ObjectiveVector> out;
        out.reserve(fits.size());
        for (double f : fits)
            out.push_back({f});
        return out;
    };
    evolve(eval.groupSize(), eval.numAccels(), opts.seeds, score, archive);
}

}  // namespace magma::mo
