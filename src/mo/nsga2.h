#ifndef MAGMA_MO_NSGA2_H_
#define MAGMA_MO_NSGA2_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mo/pareto.h"
#include "opt/magma_ga.h"
#include "opt/optimizer.h"

namespace magma::mo {

/** Outcome of one multi-objective search. */
struct MoSearchResult {
    /**
     * Bounded non-dominated archive over EVERY evaluated candidate
     * (stronger than the final population's first front): no candidate
     * the search ever scored — including warm-start seeds — dominates
     * any member.
     */
    ParetoArchive front;
    int64_t samplesUsed = 0;
};

/**
 * Interface of mapping methods that can optimize an objective VECTOR.
 * api::Runner dispatches here when a SearchSpec carries a non-empty
 * `objectives` list; registry methods that don't implement it are
 * rejected with a clear error.
 */
class MultiObjective {
  public:
    virtual ~MultiObjective() = default;

    /**
     * Search `eval`'s problem for the Pareto front of `objectives`
     * (order defines the reported vectors; entry 0 is the primary used
     * for scalar summaries). Spends opts.sampleBudget simulations total
     * — each candidate is simulated once for ALL objectives. Uses
     * opts.threads/evalMode/engine/seeds; recordConvergence and
     * recordSamples are scalar-path knobs and are ignored.
     */
    virtual MoSearchResult searchMo(
        const sched::MappingEvaluator& eval,
        const std::vector<sched::Objective>& objectives,
        const opt::SearchOptions& opts = {}) = 0;
};

/** NSGA-II hyper-parameters. */
struct Nsga2Config {
    /**
     * Population size + the MAGMA-specialized operator rates (Section
     * V-B) reused verbatim from opt::MagmaGa — crossover-gen/-rg/-accel
     * and per-gene mutation work on the same two-genome encoding
     * regardless of how fitness is ranked. `ops.eliteRatio` is unused:
     * NSGA-II's elitism is the (rank, crowding) environmental selection.
     */
    opt::MagmaConfig ops;
    /** Archive bound (ParetoArchive capacity); 0 = unbounded. */
    size_t archiveCapacity = 128;
};

/**
 * NSGA-II (Deb et al. 2002) over MAGMA's mapping encoding: fast
 * non-dominated sorting + crowding-distance selection, breeding through
 * opt::MagmaGa's crossover/mutation operators, scoring whole
 * generations through mo::VectorFitness (one simulation per candidate
 * for all objectives).
 *
 * Determinism matches every optimizer in the repo: at a fixed seed the
 * returned front is bitwise identical across thread counts and
 * evaluation kernels — all randomness flows through the inherited rng_
 * on the calling thread, scoring results arrive in submission order,
 * and selection ties break on stable indices.
 *
 * As an opt::Optimizer (registry name "NSGA-II"), a scalar search runs
 * the same generational loop on the single-objective vector
 * {eval.objective()} through the SearchRecorder, so budget accounting,
 * convergence curves and warm starts behave like every other method.
 */
class Nsga2 : public opt::Optimizer, public MultiObjective {
  public:
    explicit Nsga2(uint64_t seed, Nsga2Config cfg = {})
        : Optimizer(seed), cfg_(cfg)
    {}

    std::string name() const override { return "NSGA-II"; }
    const Nsga2Config& config() const { return cfg_; }

    MoSearchResult searchMo(const sched::MappingEvaluator& eval,
                            const std::vector<sched::Objective>& objectives,
                            const opt::SearchOptions& opts = {}) override;

  protected:
    void run(const sched::MappingEvaluator& eval,
             const opt::SearchOptions& opts,
             opt::SearchRecorder& rec) override;

  private:
    /**
     * Score a generation; returns vectors for the prefix the remaining
     * budget afforded (shorter than the input once exhausted).
     */
    using ScoreFn = std::function<std::vector<ObjectiveVector>(
        const std::vector<sched::Mapping>&)>;

    /**
     * The generational loop shared by searchMo (VectorFitness scoring)
     * and the scalar run() (SearchRecorder scoring): breed with the
     * MagmaGa operators, rank with (rank, crowding), archive every
     * scored candidate. Stops when `score` truncates.
     */
    void evolve(int group_size, int num_accels,
                const std::vector<sched::Mapping>& seeds,
                const ScoreFn& score, ParetoArchive& archive);

    Nsga2Config cfg_;
};

}  // namespace magma::mo

#endif  // MAGMA_MO_NSGA2_H_
