#include "baselines/herald_like.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace magma::baselines {

sched::Mapping
HeraldLike::buildMapping(const sched::MappingEvaluator& eval)
{
    const int g = eval.groupSize();
    const int a_n = eval.numAccels();
    const sched::JobAnalysisTable& table = eval.table();

    // Longest-processing-time-first ordering over each job's best-core
    // latency, so the big rocks are placed while all cores are still open.
    std::vector<int> order(g);
    std::iota(order.begin(), order.end(), 0);
    auto best_latency = [&](int j) {
        double best = table.lookup(j, 0).noStallSeconds;
        for (int a = 1; a < a_n; ++a)
            best = std::min(best, table.lookup(j, a).noStallSeconds);
        return best;
    };
    std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
        return best_latency(x) > best_latency(y);
    });

    sched::Mapping m;
    m.accelSel.assign(g, 0);
    m.priority.assign(g, 0.0);
    std::vector<double> finish(a_n, 0.0);
    std::vector<int> rank(a_n, 0);
    for (int j : order) {
        int best_a = 0;
        double best_f = finish[0] + table.lookup(j, 0).noStallSeconds;
        for (int a = 1; a < a_n; ++a) {
            double f = finish[a] + table.lookup(j, a).noStallSeconds;
            if (f < best_f) {
                best_f = f;
                best_a = a;
            }
        }
        m.accelSel[j] = best_a;
        finish[best_a] = best_f;
        // Priority encodes placement order within the chosen core.
        m.priority[j] = static_cast<double>(rank[best_a]++) / (g + 1);
    }
    return m;
}

void
HeraldLike::run(const sched::MappingEvaluator& eval,
                const opt::SearchOptions&, opt::SearchRecorder& rec)
{
    rec.evaluate(buildMapping(eval));
}

}  // namespace magma::baselines
