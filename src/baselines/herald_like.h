#ifndef MAGMA_BASELINES_HERALD_LIKE_H_
#define MAGMA_BASELINES_HERALD_LIKE_H_

#include "opt/optimizer.h"

namespace magma::baselines {

/**
 * Herald-like manual mapper (Section VI-B).
 *
 * Herald [49] hand-designs layer-to-accelerator assignment for
 * heterogeneous multi-core edge accelerators running vision workloads:
 * it is dataflow-affinity aware (it knows each layer's latency on each
 * core style) and load balances across cores. We reproduce that recipe:
 * jobs are taken longest-first and greedily placed on the sub-accelerator
 * with the earliest estimated finish time given that core's own no-stall
 * latency for the job; queue order follows placement order.
 *
 * Its characteristic blind spot — shared-bandwidth contention — is left
 * intact on purpose: the paper shows Herald-like front-loads BW-hungry
 * jobs (Fig. 15) and degrades in BW-limited settings.
 */
class HeraldLike : public opt::Optimizer {
  public:
    explicit HeraldLike(uint64_t seed) : Optimizer(seed) {}
    std::string name() const override { return "Herald-like"; }

    /** Deterministically construct the heuristic mapping (no search). */
    static sched::Mapping buildMapping(const sched::MappingEvaluator& eval);

  protected:
    void run(const sched::MappingEvaluator& eval, const opt::SearchOptions&,
             opt::SearchRecorder& rec) override;
};

}  // namespace magma::baselines

#endif  // MAGMA_BASELINES_HERALD_LIKE_H_
