#ifndef MAGMA_BASELINES_AI_MT_LIKE_H_
#define MAGMA_BASELINES_AI_MT_LIKE_H_

#include "opt/optimizer.h"

namespace magma::baselines {

/**
 * AI-MT-like manual mapper (Section VI-B).
 *
 * AI-MT [3] targets HOMOGENEOUS multi-systolic-array accelerators for
 * vision and language: every core is interchangeable, so it balances load
 * using a single reference latency per job (we use core 0's profile, as an
 * AI-MT port to a new platform would) and orders each core's queue to
 * overlap memory blocks with compute — approximated here by interleaving
 * BW-heavy and compute-heavy jobs.
 *
 * Because the heuristic assumes core interchangeability, it happily places
 * FC-heavy language/recommendation jobs on LB-style cores of heterogeneous
 * platforms where they run orders of magnitude slower — reproducing the
 * 39-52x gap the paper reports on S2/S4 (Section VI-E).
 */
class AiMtLike : public opt::Optimizer {
  public:
    explicit AiMtLike(uint64_t seed) : Optimizer(seed) {}
    std::string name() const override { return "AI-MT-like"; }

    /** Deterministically construct the heuristic mapping (no search). */
    static sched::Mapping buildMapping(const sched::MappingEvaluator& eval);

  protected:
    void run(const sched::MappingEvaluator& eval, const opt::SearchOptions&,
             opt::SearchRecorder& rec) override;
};

}  // namespace magma::baselines

#endif  // MAGMA_BASELINES_AI_MT_LIKE_H_
