#include "baselines/ai_mt_like.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace magma::baselines {

sched::Mapping
AiMtLike::buildMapping(const sched::MappingEvaluator& eval)
{
    const int g = eval.groupSize();
    const int a_n = eval.numAccels();
    const sched::JobAnalysisTable& table = eval.table();

    // Reference profile: core 0 (homogeneity assumption baked in).
    auto ref_latency = [&](int j) {
        return table.lookup(j, 0).noStallSeconds;
    };
    auto ref_bw = [&](int j) { return table.lookup(j, 0).reqBwGbps; };

    // LPT load balancing with the reference latency.
    std::vector<int> order(g);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
        return ref_latency(x) > ref_latency(y);
    });

    std::vector<std::vector<int>> queues(a_n);
    std::vector<double> load(a_n, 0.0);
    for (int j : order) {
        int a = static_cast<int>(std::min_element(load.begin(),
                                                  load.end()) -
                                 load.begin());
        queues[a].push_back(j);
        load[a] += ref_latency(j);
    }

    // Within each core: pair memory-blocks with compute — interleave the
    // most BW-hungry jobs with the most compute-bound ones so prefetch of
    // the former hides behind the latter.
    sched::Mapping m;
    m.accelSel.assign(g, 0);
    m.priority.assign(g, 0.0);
    for (int a = 0; a < a_n; ++a) {
        auto& q = queues[a];
        std::stable_sort(q.begin(), q.end(), [&](int x, int y) {
            return ref_bw(x) > ref_bw(y);
        });
        std::vector<int> interleaved;
        interleaved.reserve(q.size());
        size_t lo = 0, hi = q.size();
        while (lo < hi) {
            interleaved.push_back(q[lo++]);       // BW-heavy
            if (lo < hi)
                interleaved.push_back(q[--hi]);   // compute-heavy
        }
        for (size_t r = 0; r < interleaved.size(); ++r) {
            int j = interleaved[r];
            m.accelSel[j] = a;
            m.priority[j] = static_cast<double>(r) / (g + 1);
        }
    }
    return m;
}

void
AiMtLike::run(const sched::MappingEvaluator& eval,
              const opt::SearchOptions&, opt::SearchRecorder& rec)
{
    rec.evaluate(buildMapping(eval));
}

}  // namespace magma::baselines
