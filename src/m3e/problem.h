#ifndef MAGMA_M3E_PROBLEM_H_
#define MAGMA_M3E_PROBLEM_H_

#include <memory>

#include "accel/platform.h"
#include "cost/cost_model.h"
#include "dnn/workload.h"
#include "sched/evaluator.h"

namespace magma::m3e {

/**
 * One fully wired mapping problem: a job group, a platform, a cost model
 * and the evaluator built over them (the M3E set-up + pre-process steps of
 * Section IV-E). Owns everything the evaluator references, so benchmarks,
 * examples and tests need a single object.
 *
 * Non-copyable/non-movable: the evaluator keeps pointers into the owned
 * group/platform, so instances live behind unique_ptr.
 */
class Problem {
  public:
    Problem(dnn::JobGroup group, accel::Platform platform,
            sched::BwPolicy policy = sched::BwPolicy::Proportional,
            sched::Objective objective = sched::Objective::Throughput);
    Problem(const Problem&) = delete;
    Problem& operator=(const Problem&) = delete;

    const dnn::JobGroup& group() const { return group_; }
    const accel::Platform& platform() const { return platform_; }
    const cost::CostModel& costModel() const { return model_; }
    sched::MappingEvaluator& evaluator() { return *evaluator_; }
    const sched::MappingEvaluator& evaluator() const { return *evaluator_; }

  private:
    dnn::JobGroup group_;
    accel::Platform platform_;
    cost::CostModel model_;
    std::unique_ptr<sched::MappingEvaluator> evaluator_;
};

/**
 * Convenience factory: generate a task group (seeded) on a Table III
 * setting with a given system BW, optimizing `objective` under
 * `policy`-governed bandwidth allocation.
 */
std::unique_ptr<Problem> makeProblem(
    dnn::TaskType task, accel::Setting setting, double system_bw_gbps,
    int group_size, uint64_t seed = 1,
    sched::Objective objective = sched::Objective::Throughput,
    sched::BwPolicy policy = sched::BwPolicy::Proportional);

/** Same, but on the flexible-array variant of the setting (Fig. 14). */
std::unique_ptr<Problem> makeFlexibleProblem(
    dnn::TaskType task, accel::Setting setting, double system_bw_gbps,
    int group_size, uint64_t seed = 1,
    sched::Objective objective = sched::Objective::Throughput,
    sched::BwPolicy policy = sched::BwPolicy::Proportional);

}  // namespace magma::m3e

#endif  // MAGMA_M3E_PROBLEM_H_
