#include "m3e/factory.h"

#include <stdexcept>

#include "baselines/ai_mt_like.h"
#include "baselines/herald_like.h"
#include "opt/cma_es.h"
#include "opt/de.h"
#include "opt/magma_ga.h"
#include "opt/pso.h"
#include "opt/random_search.h"
#include "opt/std_ga.h"
#include "opt/tbpsa.h"
#include "rl/a2c.h"
#include "rl/ppo2.h"

namespace magma::m3e {

std::string
methodName(Method m)
{
    switch (m) {
      case Method::HeraldLike: return "Herald-like";
      case Method::AiMtLike:   return "AI-MT-like";
      case Method::Pso:        return "PSO";
      case Method::Cma:        return "CMA";
      case Method::De:         return "DE";
      case Method::Tbpsa:      return "TBPSA";
      case Method::StdGa:      return "stdGA";
      case Method::RlA2c:      return "RL A2C";
      case Method::RlPpo2:     return "RL PPO2";
      case Method::Magma:      return "MAGMA";
      case Method::Random:     return "Random";
    }
    return "?";
}

std::unique_ptr<opt::Optimizer>
makeOptimizer(Method m, uint64_t seed)
{
    switch (m) {
      case Method::HeraldLike:
        return std::make_unique<baselines::HeraldLike>(seed);
      case Method::AiMtLike:
        return std::make_unique<baselines::AiMtLike>(seed);
      case Method::Pso:
        return std::make_unique<opt::Pso>(seed);
      case Method::Cma:
        return std::make_unique<opt::CmaEs>(seed);
      case Method::De:
        return std::make_unique<opt::De>(seed);
      case Method::Tbpsa:
        return std::make_unique<opt::Tbpsa>(seed);
      case Method::StdGa:
        return std::make_unique<opt::StdGa>(seed);
      case Method::RlA2c:
        return std::make_unique<rl::A2c>(seed);
      case Method::RlPpo2:
        return std::make_unique<rl::Ppo2>(seed);
      case Method::Magma:
        return std::make_unique<opt::MagmaGa>(seed);
      case Method::Random:
        return std::make_unique<opt::RandomSearch>(seed);
    }
    throw std::invalid_argument("unknown method");
}

std::vector<Method>
paperMethods()
{
    return {Method::HeraldLike, Method::AiMtLike, Method::Pso, Method::Cma,
            Method::De,         Method::Tbpsa,    Method::StdGa,
            Method::RlA2c,      Method::RlPpo2,   Method::Magma};
}

Method
methodFromName(const std::string& name)
{
    for (Method m : paperMethods())
        if (methodName(m) == name)
            return m;
    if (name == "Random")
        return Method::Random;
    throw std::invalid_argument("unknown method name: " + name);
}

}  // namespace magma::m3e
