#include "m3e/factory.h"

#include <stdexcept>

#include "api/registry.h"

namespace magma::m3e {

namespace {

/** All enum values, Table IV plot order then Random. */
const std::vector<Method>&
allMethods()
{
    static const std::vector<Method> all = {
        Method::HeraldLike, Method::AiMtLike, Method::Pso,
        Method::Cma,        Method::De,       Method::Tbpsa,
        Method::StdGa,      Method::RlA2c,    Method::RlPpo2,
        Method::Magma,      Method::Random};
    return all;
}

}  // namespace

std::string
methodName(Method m)
{
    switch (m) {
    case Method::HeraldLike: return "Herald-like";
    case Method::AiMtLike:   return "AI-MT-like";
    case Method::Pso:        return "PSO";
    case Method::Cma:        return "CMA";
    case Method::De:         return "DE";
    case Method::Tbpsa:      return "TBPSA";
    case Method::StdGa:      return "stdGA";
    case Method::RlA2c:      return "RL A2C";
    case Method::RlPpo2:     return "RL PPO2";
    case Method::Magma:      return "MAGMA";
    case Method::Random:     return "Random";
    }
    return "?";
}

std::unique_ptr<opt::Optimizer>
makeOptimizer(Method m, uint64_t seed)
{
    return api::OptimizerRegistry::global().make(methodName(m), seed);
}

std::vector<Method>
paperMethods()
{
    std::vector<Method> out = allMethods();
    out.pop_back();  // Random is the reference method, not a Table IV bar
    return out;
}

Method
methodFromName(const std::string& name)
{
    // Resolve through the registry so aliases ("cma-es", "ppo2", ...)
    // and the did-you-mean error apply here too.
    std::string canonical = api::OptimizerRegistry::global().resolve(name);
    for (Method m : allMethods())
        if (methodName(m) == canonical)
            return m;
    throw std::invalid_argument(
        "method '" + canonical +
        "' is registry-only (no m3e::Method enum value); construct it "
        "with api::OptimizerRegistry::global().make()");
}

}  // namespace magma::m3e
