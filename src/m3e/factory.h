#ifndef MAGMA_M3E_FACTORY_H_
#define MAGMA_M3E_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "opt/optimizer.h"

namespace magma::m3e {

/**
 * The mapper line-up of Table IV / Figs. 8-9, in the paper's plot order.
 */
enum class Method {
    HeraldLike,
    AiMtLike,
    Pso,
    Cma,
    De,
    Tbpsa,
    StdGa,
    RlA2c,
    RlPpo2,
    Magma,
    Random,  // reference method (Fig. 10's exhaustive sampling)
};

/** The paper's label for a method. */
std::string methodName(Method m);

/** Construct a method with its Table IV hyper-parameters. */
std::unique_ptr<opt::Optimizer> makeOptimizer(Method m, uint64_t seed);

/** The ten methods of Figs. 8-9 in plot order (excludes Random). */
std::vector<Method> paperMethods();

/** Parse a method from its name; throws std::invalid_argument. */
Method methodFromName(const std::string& name);

}  // namespace magma::m3e

#endif  // MAGMA_M3E_FACTORY_H_
