#ifndef MAGMA_M3E_FACTORY_H_
#define MAGMA_M3E_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "opt/optimizer.h"

namespace magma::m3e {

/**
 * The mapper line-up of Table IV / Figs. 8-9, in the paper's plot order.
 *
 * Compatibility layer: since the api/ redesign the string-keyed
 * api::OptimizerRegistry is the source of truth for which methods exist;
 * every function below is a thin wrapper over registry lookups. New code
 * should prefer the registry (and api::SearchSpec's method-by-name),
 * which downstream users can extend without touching m3e/.
 */
enum class Method {
    HeraldLike,
    AiMtLike,
    Pso,
    Cma,
    De,
    Tbpsa,
    StdGa,
    RlA2c,
    RlPpo2,
    Magma,
    Random,  // reference method (Fig. 10's exhaustive sampling)
};

/** The paper's label for a method. */
std::string methodName(Method m);

/** Construct a method with its Table IV hyper-parameters. */
std::unique_ptr<opt::Optimizer> makeOptimizer(Method m, uint64_t seed);

/** The ten methods of Figs. 8-9 in plot order (excludes Random). */
std::vector<Method> paperMethods();

/** Parse a method from its name or any registry alias; throws
 * std::invalid_argument (with a did-you-mean suggestion). */
Method methodFromName(const std::string& name);

}  // namespace magma::m3e

#endif  // MAGMA_M3E_FACTORY_H_
