#include "m3e/problem.h"

#include "exec/cost_cache.h"

namespace magma::m3e {

Problem::Problem(dnn::JobGroup group, accel::Platform platform,
                 sched::BwPolicy policy, sched::Objective objective)
    : group_(std::move(group)), platform_(std::move(platform))
{
    // The process-wide cost cache makes repeated problem construction
    // (BW sweeps, combination sweeps, repeated trials) skip cost-model
    // queries already answered for the same (layer, sub-accel) pair.
    evaluator_ = std::make_unique<sched::MappingEvaluator>(
        group_, platform_, model_, policy, &exec::CostCache::global(),
        objective);
}

std::unique_ptr<Problem>
makeProblem(dnn::TaskType task, accel::Setting setting,
            double system_bw_gbps, int group_size, uint64_t seed,
            sched::Objective objective, sched::BwPolicy policy)
{
    dnn::WorkloadGenerator gen(seed);
    return std::make_unique<Problem>(
        gen.makeGroup(task, group_size),
        accel::makeSetting(setting, system_bw_gbps), policy, objective);
}

std::unique_ptr<Problem>
makeFlexibleProblem(dnn::TaskType task, accel::Setting setting,
                    double system_bw_gbps, int group_size, uint64_t seed,
                    sched::Objective objective, sched::BwPolicy policy)
{
    dnn::WorkloadGenerator gen(seed);
    return std::make_unique<Problem>(
        gen.makeGroup(task, group_size),
        accel::makeFlexibleSetting(setting, system_bw_gbps), policy,
        objective);
}

}  // namespace magma::m3e
