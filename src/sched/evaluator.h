#ifndef MAGMA_SCHED_EVALUATOR_H_
#define MAGMA_SCHED_EVALUATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/platform.h"
#include "cost/cost_model.h"
#include "dnn/workload.h"
#include "sched/bw_allocator.h"
#include "sched/job_analyzer.h"
#include "sched/mapping.h"

namespace magma::exec {
class CostCache;
}  // namespace magma::exec

namespace magma::sched {

/**
 * Optimization objectives (Section IV-C): throughput is the paper's
 * default, but M3E accepts other objectives or formulations. All are
 * expressed as maximization problems.
 */
enum class Objective {
    Throughput,      ///< GFLOP/s = total FLOPs / makespan (paper default)
    Latency,         ///< 1 / makespan-seconds (minimize completion time)
    Energy,          ///< 1 / total-Joules (minimize energy)
    EnergyDelay,     ///< 1 / (Joules x seconds) — inverse EDP
    PerfPerWatt,     ///< GFLOP/s per Watt of average power
};

/** Objective name for logs and harnesses. */
std::string objectiveName(Objective o);

/**
 * Parse an objective from its objectiveName(), also accepting the short
 * CLI spellings "edp" and "perf-per-watt"; throws std::invalid_argument.
 */
Objective objectiveFromName(const std::string& name);

/**
 * Comma-joined objectiveName() list ("throughput,energy"), the value
 * form of the api::SearchSpec `objectives` key and the mo:: front
 * artifacts. Empty list -> empty string.
 */
std::string objectiveListName(const std::vector<Objective>& objectives);

/**
 * Parse an objectiveListName() (short spellings allowed per element);
 * empty/blank input yields an empty list. Throws std::invalid_argument
 * on any bad element.
 */
std::vector<Objective> objectiveListFromName(const std::string& names);

/**
 * Makespan + total energy of one simulated schedule — the pair every
 * Section IV-C objective is a closed-form function of. Produced in bulk
 * by exec::EvalEngine::simulateBatch so the multi-objective layer
 * (src/mo/) extracts a whole vector of objectives from a single
 * simulation instead of re-simulating per objective.
 */
struct SimPoint {
    double makespanSeconds = 0.0;
    double joules = 0.0;
};

/**
 * Objective value from one simulated schedule's makespan and energy —
 * the single formula switch shared by MappingEvaluator::objectiveValue,
 * FlatEvaluator::objectiveValue and mo::VectorFitness, so the three
 * paths cannot drift: extracting objective `o` from a SimPoint is
 * bitwise equal to the scalar fitness of an evaluator fixed on `o`.
 * `joules` is only read by the energy-bearing objectives, so scalar hot
 * paths pass 0.0 for Throughput/Latency and skip the energy sum.
 */
double objectiveFromSimulation(Objective o, double makespan_seconds,
                               double joules, int64_t total_flops);

/** Whether `o`'s formula reads the energy term (joules). */
bool objectiveNeedsEnergy(Objective o);

/**
 * The M3E evaluation phase in one object (Fig. 3): decoder -> BW allocator
 * -> fitness. Construction runs the pre-process step (Job Analyzer builds
 * the Job Analysis Table); `fitness` is then a pure table-driven
 * simulation, cheap enough for 10K-100K-sample searches.
 *
 * The default fitness is throughput in GFLOP/s — the paper's objective
 * everywhere — computed as total group FLOPs / makespan; other Section
 * IV-C objectives are selected at construction (the `objective` ctor
 * parameter, threaded through m3e::Problem/makeProblem and the api::
 * specs).
 *
 * Thread-safety: after construction the evaluator is immutable except for
 * the sample meter (a relaxed atomic), so `fitness`/`evaluate` may be
 * called concurrently from many threads — the property exec::EvalEngine
 * builds batch evaluation on.
 */
class MappingEvaluator {
  public:
    /**
     * `cost_cache`, when given, memoizes the Job Analyzer's cost-model
     * queries across evaluator instances (sweeps rebuild tables for the
     * same layers over and over). `objective` is what `fitness`
     * maximizes; it is fixed for the evaluator's lifetime.
     */
    MappingEvaluator(const dnn::JobGroup& group,
                     const accel::Platform& platform,
                     const cost::CostModel& model,
                     BwPolicy policy = BwPolicy::Proportional,
                     exec::CostCache* cost_cache = nullptr,
                     Objective objective = Objective::Throughput);

    Objective objective() const { return objective_; }
    BwPolicy bwPolicy() const { return allocator_.policy(); }

    /** Objective value of an encoded mapping. Counts one sample. */
    double fitness(const Mapping& m) const;

    /** Full simulation; optionally records the Fig. 15 timeline. */
    ScheduleResult evaluate(const Mapping& m,
                            bool record_timeline = false) const;

    /**
     * Full simulation with a per-job reconfiguration stall charged
     * inside the schedule (see BwAllocator::run's `setup_seconds`):
     * the src/dyn/ engine's accounting step, where re-tiled jobs pay
     * their re-tiling stall and weight-reload time before executing.
     * `setup_seconds` must have one entry per job of the group. With an
     * all-zero vector the result equals evaluate(m) bitwise.
     */
    ScheduleResult evaluateWithSetup(const Mapping& m,
                                     const std::vector<double>&
                                         setup_seconds,
                                     bool record_timeline = false) const;

    const JobAnalysisTable& table() const { return table_; }
    const dnn::JobGroup& group() const { return *group_; }
    const accel::Platform& platform() const { return *platform_; }
    int groupSize() const { return group_->size(); }
    int numAccels() const { return platform_->numSubAccels(); }

    /** Samples (fitness calls) consumed so far — the search budget meter. */
    int64_t sampleCount() const
    {
        return samples_.load(std::memory_order_relaxed);
    }
    void resetSampleCount() { samples_.store(0, std::memory_order_relaxed); }

    /**
     * Spend one unit of the sample meter without evaluating — how the
     * FlatEvaluator fast path keeps budget accounting on the shared
     * meter. Not intended for callers outside evaluation kernels.
     */
    void countSample() const
    {
        samples_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Throughput implied by a makespan for this group. */
    double throughputGflops(double makespan_seconds) const;

    /**
     * Total energy (Joules) of a mapping: sum of each job's cost-model
     * energy on its assigned sub-accelerator.
     */
    double totalJoules(const Mapping& m) const;

    /** Objective value from a simulated schedule + mapping. */
    double objectiveValue(const Mapping& m, const ScheduleResult& r) const;

  private:
    const dnn::JobGroup* group_;
    const accel::Platform* platform_;
    JobAnalysisTable table_;
    BwAllocator allocator_;
    Objective objective_ = Objective::Throughput;
    /**
     * Sample meter. Memory order: relaxed is correct — the meter is a
     * standalone budget count with no data published through it; every
     * exact read happens after the batch quiesces (EvalEngine's
     * parallelFor returns only once all lanes finished, which orders
     * the adds before the read via the pool's batch-done mutex). See
     * docs/concurrency.md.
     */
    mutable std::atomic<int64_t> samples_{0};
};

}  // namespace magma::sched

#endif  // MAGMA_SCHED_EVALUATOR_H_
