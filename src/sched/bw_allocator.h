#ifndef MAGMA_SCHED_BW_ALLOCATOR_H_
#define MAGMA_SCHED_BW_ALLOCATOR_H_

#include <string>
#include <vector>

#include "sched/job_analyzer.h"
#include "sched/mapping.h"

namespace magma::sched {

/**
 * One constant-allocation segment of the executed schedule, for the Fig. 15
 * style visualizations: between `start` and `end` seconds, `job` ran on
 * `accel` with `allocBw` GB/s granted.
 */
struct ScheduleEvent {
    double start = 0.0;
    double end = 0.0;
    int job = -1;
    int accel = -1;
    double allocBw = 0.0;
};

/** Outcome of simulating one decoded mapping. */
struct ScheduleResult {
    double makespanSeconds = 0.0;
    /** Per-job completion time (seconds). */
    std::vector<double> finishTime;
    /** Timeline segments; filled only when requested. */
    std::vector<ScheduleEvent> events;
};

/**
 * Allocation policy ablation: the paper's proportional-share policy
 * (Algorithm 1) versus the naive heuristic it argues against
 * (Section IV-D1: "evenly allocate the same amount of BW to all the
 * sub-accelerators") — a STATIC per-core share of systemBW / numCores,
 * which strands the unused share of compute-bound cores.
 */
enum class BwPolicy { Proportional, EvenSplit };

/** Policy name ("proportional", "even-split"). */
std::string bwPolicyName(BwPolicy p);

/** Parse a bwPolicyName(); throws std::invalid_argument. */
BwPolicy bwPolicyFromName(const std::string& name);

/**
 * The BW Allocator (Algorithm 1).
 *
 * Event-driven simulation: at any instant the head job of every non-empty
 * sub-accelerator queue is live. If the sum of live jobs' required BW
 * exceeds the system BW, bandwidth is granted proportionally to demand and
 * each job progresses at rate alloc/req (< 1) of its no-stall speed;
 * otherwise every job runs at full speed. Time advances to the earliest
 * completion, that queue pops, and BW is re-allocated.
 */
class BwAllocator {
  public:
    explicit BwAllocator(double system_bw_gbps,
                         BwPolicy policy = BwPolicy::Proportional)
        : system_bw_(system_bw_gbps), policy_(policy)
    {}

    /**
     * Simulate `decoded` queues of `group` using profiles from `table`.
     * Set `record_timeline` to fill ScheduleResult::events.
     *
     * `setup_seconds`, when given, holds a per-job reconfiguration stall
     * (indexed by job id, one entry per job): before a job starts
     * executing, its sub-accelerator sits in a setup phase of that many
     * seconds — progressing at wall-clock rate, demanding no bandwidth —
     * which models re-tiling stalls and weight reloads (src/dyn/'s
     * ReconfigCost). Null (the default) is bitwise-identical to the
     * pre-existing no-setup simulation.
     */
    ScheduleResult run(const DecodedMapping& decoded,
                       const JobAnalysisTable& table,
                       bool record_timeline = false,
                       const std::vector<double>* setup_seconds =
                           nullptr) const;

    double systemBw() const { return system_bw_; }
    BwPolicy policy() const { return policy_; }

  private:
    double system_bw_;
    BwPolicy policy_;
};

}  // namespace magma::sched

#endif  // MAGMA_SCHED_BW_ALLOCATOR_H_
