#ifndef MAGMA_SCHED_FLAT_EVAL_H_
#define MAGMA_SCHED_FLAT_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sched/bw_allocator.h"
#include "sched/evaluator.h"
#include "sched/mapping.h"

namespace magma::sched {

/**
 * Which evaluation kernel scores candidates (SearchOptions/SearchSpec
 * `eval`): the allocation-free FlatEvaluator fast path (the default) or
 * the reference MappingEvaluator object path. The two are bitwise
 * identical on every mapping and objective — tests/test_flat_eval.cc and
 * bench_micro_speed's self-check lock that in — so the mode only changes
 * wall-clock, never results.
 */
enum class EvalMode { Flat, Reference };

/** Mode name ("flat", "reference"). */
std::string evalModeName(EvalMode m);

/** Parse an evalModeName(); throws std::invalid_argument. */
EvalMode evalModeFromName(const std::string& name);

/**
 * Per-thread reusable evaluation state. All buffers are sized once (first
 * use, or an explicit ensure()) and reused for every subsequent candidate,
 * so the steady-state hot loop performs zero heap allocation. One scratch
 * must only be used by one thread at a time; exec::EvalEngine keeps one
 * per worker lane.
 *
 * After a simulate()/fitness()/evaluate() call the scratch holds the
 * schedule outcome (makespan, per-job finish times, optional timeline
 * events) until the next call overwrites it.
 */
class EvalScratch {
  public:
    EvalScratch() = default;

    /** Size every buffer for a (jobs x accels) problem; idempotent. */
    void ensure(int jobs, int accels);

    double makespanSeconds() const { return makespan_; }
    /** Per-job completion times of the last simulated candidate. */
    const std::vector<double>& finishTime() const { return finish_; }
    /** Timeline of the last simulate(record_timeline=true) call. */
    const std::vector<ScheduleEvent>& events() const { return events_; }

  private:
    friend class FlatEvaluator;

    int jobs_ = -1;
    int accels_ = -1;

    // Decoded queues, flattened: queue_jobs_[queue_begin_[a] ..
    // queue_begin_[a+1]) is sub-accelerator a's job queue in ascending
    // priority order (stable on job id) — the contiguous form of
    // DecodedMapping::queues.
    std::vector<int32_t> queue_jobs_;   // jobs
    std::vector<int32_t> queue_begin_;  // accels + 1
    std::vector<int32_t> fill_;         // accels: decode fill cursors

    // Event-driven simulation state (one slot per sub-accelerator).
    std::vector<int32_t> cursor_;     // next queue position
    std::vector<double> remaining_;   // no-stall seconds left of live job
    std::vector<double> req_bw_;      // live job's required BW
    std::vector<int32_t> live_job_;   // live job id, -1 when drained
    std::vector<double> rate_;        // granted/required BW of the round

    std::vector<double> finish_;      // jobs: completion times
    std::vector<ScheduleEvent> events_;
    double makespan_ = 0.0;
};

/**
 * Allocation-free fast-path evaluator (the "Turbo-Charged Mapper" idea
 * applied to M3E's Fig. 3 evaluation phase): compiles the Job Analysis
 * Table, platform BW regime and objective of a reference MappingEvaluator
 * into contiguous structure-of-arrays buffers at construction, then
 * scores candidates through a caller-provided EvalScratch with zero heap
 * allocation and no virtual dispatch in the inner schedule-simulation
 * loop.
 *
 * Parity contract: for every mapping, fitness()/evaluate() return results
 * bitwise identical to the reference MappingEvaluator — the simulation
 * replays the exact floating-point operation sequence of
 * BwAllocator::run and MappingEvaluator::objectiveValue. Optimizers can
 * therefore switch kernels freely (EvalMode) without perturbing any
 * search trajectory.
 *
 * Thread-safety: immutable after construction; concurrent calls are safe
 * as long as each thread passes its own EvalScratch. Samples are counted
 * on the reference evaluator's meter so budget accounting is shared
 * between both kernels.
 *
 * Lifetime: keeps a pointer to the reference evaluator (for the sample
 * meter only); the reference must outlive the FlatEvaluator.
 */
class FlatEvaluator {
  public:
    explicit FlatEvaluator(const MappingEvaluator& ref);

    /** Objective value of a candidate; counts one sample. Zero-alloc. */
    double fitness(const Mapping& m, EvalScratch& s) const;

    /**
     * Full simulation into `s` (makespan, finish times, optional
     * timeline); counts one sample. Zero-alloc in steady state: the
     * scratch's buffers are reused across calls.
     */
    void simulate(const Mapping& m, EvalScratch& s,
                  bool record_timeline = false) const;

    /**
     * Reference-shaped result for parity checks and cold paths; same
     * numbers as simulate(), materialized as a ScheduleResult (allocates
     * the result vectors, so not for the hot loop).
     */
    ScheduleResult evaluate(const Mapping& m, EvalScratch& s,
                            bool record_timeline = false) const;

    /** Objective value of the candidate simulated last into `s`. */
    double objectiveValue(const Mapping& m, const EvalScratch& s) const;

    /** Total energy (Joules) of a mapping; same sum order as reference. */
    double totalJoules(const Mapping& m) const;

    int numJobs() const { return jobs_; }
    int numAccels() const { return accels_; }
    Objective objective() const { return objective_; }
    const MappingEvaluator& reference() const { return *ref_; }

  private:
    /** Decode `m` into s's flattened queues (exact decode() order). */
    void decodeInto(const Mapping& m, EvalScratch& s) const;

    const MappingEvaluator* ref_;
    int jobs_ = 0;
    int accels_ = 0;
    double system_bw_ = 0.0;
    BwPolicy policy_ = BwPolicy::Proportional;
    Objective objective_ = Objective::Throughput;
    int64_t total_flops_ = 0;

    // Job Analysis Table columns, [job * accels_ + accel].
    std::vector<double> no_stall_seconds_;
    std::vector<double> req_bw_gbps_;
    std::vector<double> energy_pj_;
};

}  // namespace magma::sched

#endif  // MAGMA_SCHED_FLAT_EVAL_H_
