#include "sched/bw_allocator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace magma::sched {

std::string
bwPolicyName(BwPolicy p)
{
    switch (p) {
    case BwPolicy::Proportional:
        return "proportional";
    case BwPolicy::EvenSplit:
        return "even-split";
    }
    return "?";
}

BwPolicy
bwPolicyFromName(const std::string& name)
{
    for (BwPolicy p : {BwPolicy::Proportional, BwPolicy::EvenSplit})
        if (bwPolicyName(p) == name)
            return p;
    throw std::invalid_argument("unknown BW policy '" + name +
                                "' (proportional|even-split)");
}

ScheduleResult
BwAllocator::run(const DecodedMapping& decoded, const JobAnalysisTable& table,
                 bool record_timeline) const
{
    int num_accels = static_cast<int>(decoded.queues.size());
    ScheduleResult result;
    result.finishTime.assign(table.numJobs(), 0.0);

    // Per-accelerator cursor into its queue and live-job state.
    std::vector<size_t> cursor(num_accels, 0);
    std::vector<double> remaining(num_accels, 0.0);  // no-stall secs left
    std::vector<double> req_bw(num_accels, 0.0);
    std::vector<int> live_job(num_accels, -1);

    auto launchNext = [&](int a) {
        const auto& q = decoded.queues[a];
        if (cursor[a] < q.size()) {
            int j = q[cursor[a]++];
            const JobProfile& p = table.lookup(j, a);
            live_job[a] = j;
            remaining[a] = p.noStallSeconds;
            req_bw[a] = p.reqBwGbps;
        } else {
            live_job[a] = -1;
            remaining[a] = 0.0;
            req_bw[a] = 0.0;
        }
    };

    for (int a = 0; a < num_accels; ++a)
        launchNext(a);

    double now = 0.0;
    const double eps = 1e-18;
    while (true) {
        // Gather live demand.
        double total_req = 0.0;
        int live_count = 0;
        for (int a = 0; a < num_accels; ++a) {
            if (live_job[a] >= 0) {
                total_req += req_bw[a];
                ++live_count;
            }
        }
        if (live_count == 0)
            break;

        // Allocation: proportional share (Algorithm 1) or even split.
        // rate[a] = alloc/req (capped at 1) is the progress slowdown.
        std::vector<double> rate(num_accels, 0.0);
        for (int a = 0; a < num_accels; ++a) {
            if (live_job[a] < 0)
                continue;
            double alloc;
            if (policy_ == BwPolicy::Proportional) {
                alloc = (total_req <= system_bw_)
                            ? req_bw[a]
                            : req_bw[a] * system_bw_ / total_req;
            } else {
                // Static even split: every core owns 1/N of the system
                // BW whether it needs it or not (Section IV-D1's naive
                // heuristic).
                alloc = std::min(req_bw[a], system_bw_ / num_accels);
            }
            rate[a] = (req_bw[a] <= eps) ? 1.0
                                         : std::min(1.0, alloc / req_bw[a]);
        }

        // Advance to the earliest completion under the current rates.
        double dt = std::numeric_limits<double>::infinity();
        for (int a = 0; a < num_accels; ++a) {
            if (live_job[a] < 0)
                continue;
            double t = (rate[a] > eps)
                           ? remaining[a] / rate[a]
                           : std::numeric_limits<double>::infinity();
            dt = std::min(dt, t);
        }
        assert(std::isfinite(dt));
        dt = std::max(dt, 0.0);

        if (record_timeline) {
            for (int a = 0; a < num_accels; ++a) {
                if (live_job[a] < 0)
                    continue;
                ScheduleEvent ev;
                ev.start = now;
                ev.end = now + dt;
                ev.job = live_job[a];
                ev.accel = a;
                ev.allocBw = rate[a] * req_bw[a];
                result.events.push_back(ev);
            }
        }

        now += dt;
        for (int a = 0; a < num_accels; ++a) {
            if (live_job[a] < 0)
                continue;
            remaining[a] -= rate[a] * dt;
            if (remaining[a] <= eps * std::max(1.0, now)) {
                result.finishTime[live_job[a]] = now;
                launchNext(a);
            }
        }
    }

    result.makespanSeconds = now;
    return result;
}

}  // namespace magma::sched
