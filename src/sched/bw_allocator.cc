#include "sched/bw_allocator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace magma::sched {

std::string
bwPolicyName(BwPolicy p)
{
    switch (p) {
    case BwPolicy::Proportional:
        return "proportional";
    case BwPolicy::EvenSplit:
        return "even-split";
    }
    return "?";
}

BwPolicy
bwPolicyFromName(const std::string& name)
{
    for (BwPolicy p : {BwPolicy::Proportional, BwPolicy::EvenSplit})
        if (bwPolicyName(p) == name)
            return p;
    throw std::invalid_argument("unknown BW policy '" + name +
                                "' (proportional|even-split)");
}

ScheduleResult
BwAllocator::run(const DecodedMapping& decoded, const JobAnalysisTable& table,
                 bool record_timeline,
                 const std::vector<double>* setup_seconds) const
{
    int num_accels = static_cast<int>(decoded.queues.size());
    ScheduleResult result;
    result.finishTime.assign(table.numJobs(), 0.0);

    // Per-accelerator cursor into its queue and live-job state. A live
    // job first burns `setup_left` (reconfiguration stall: wall-clock
    // rate, zero BW demand), then executes its profile as before; with
    // no setup vector every setup_left is 0.0 and the arithmetic below
    // is bit-for-bit the pre-setup simulation.
    std::vector<size_t> cursor(num_accels, 0);
    std::vector<double> remaining(num_accels, 0.0);  // no-stall secs left
    std::vector<double> setup_left(num_accels, 0.0);
    std::vector<double> req_bw(num_accels, 0.0);
    std::vector<int> live_job(num_accels, -1);

    auto launchNext = [&](int a) {
        const auto& q = decoded.queues[a];
        if (cursor[a] < q.size()) {
            int j = q[cursor[a]++];
            const JobProfile& p = table.lookup(j, a);
            live_job[a] = j;
            remaining[a] = p.noStallSeconds;
            setup_left[a] =
                setup_seconds ? (*setup_seconds)[static_cast<size_t>(j)]
                              : 0.0;
            req_bw[a] = p.reqBwGbps;
        } else {
            live_job[a] = -1;
            remaining[a] = 0.0;
            setup_left[a] = 0.0;
            req_bw[a] = 0.0;
        }
    };

    for (int a = 0; a < num_accels; ++a)
        launchNext(a);

    double now = 0.0;
    const double eps = 1e-18;
    while (true) {
        // Gather live demand; an accelerator still in its setup phase
        // demands no bandwidth yet.
        double total_req = 0.0;
        int live_count = 0;
        for (int a = 0; a < num_accels; ++a) {
            if (live_job[a] >= 0) {
                if (setup_left[a] <= 0.0)
                    total_req += req_bw[a];
                ++live_count;
            }
        }
        if (live_count == 0)
            break;

        // Allocation: proportional share (Algorithm 1) or even split.
        // rate[a] = alloc/req (capped at 1) is the progress slowdown.
        std::vector<double> rate(num_accels, 0.0);
        for (int a = 0; a < num_accels; ++a) {
            if (live_job[a] < 0)
                continue;
            if (setup_left[a] > 0.0) {
                // Setup progresses at wall-clock rate regardless of BW.
                rate[a] = 1.0;
                continue;
            }
            double alloc;
            if (policy_ == BwPolicy::Proportional) {
                alloc = (total_req <= system_bw_)
                            ? req_bw[a]
                            : req_bw[a] * system_bw_ / total_req;
            } else {
                // Static even split: every core owns 1/N of the system
                // BW whether it needs it or not (Section IV-D1's naive
                // heuristic).
                alloc = std::min(req_bw[a], system_bw_ / num_accels);
            }
            rate[a] = (req_bw[a] <= eps) ? 1.0
                                         : std::min(1.0, alloc / req_bw[a]);
        }

        // Advance to the earliest completion — of a setup phase (a BW
        // re-allocation boundary: the job's demand appears) or of a job
        // — under the current rates.
        double dt = std::numeric_limits<double>::infinity();
        for (int a = 0; a < num_accels; ++a) {
            if (live_job[a] < 0)
                continue;
            double t;
            if (setup_left[a] > 0.0)
                t = setup_left[a];
            else
                t = (rate[a] > eps)
                        ? remaining[a] / rate[a]
                        : std::numeric_limits<double>::infinity();
            dt = std::min(dt, t);
        }
        assert(std::isfinite(dt));
        dt = std::max(dt, 0.0);

        if (record_timeline) {
            for (int a = 0; a < num_accels; ++a) {
                if (live_job[a] < 0)
                    continue;
                ScheduleEvent ev;
                ev.start = now;
                ev.end = now + dt;
                ev.job = live_job[a];
                ev.accel = a;
                // Setup segments show the job stalled: 0 GB/s granted.
                ev.allocBw =
                    setup_left[a] > 0.0 ? 0.0 : rate[a] * req_bw[a];
                result.events.push_back(ev);
            }
        }

        now += dt;
        for (int a = 0; a < num_accels; ++a) {
            if (live_job[a] < 0)
                continue;
            if (setup_left[a] > 0.0) {
                setup_left[a] -= dt;
                if (setup_left[a] <= eps * std::max(1.0, now))
                    setup_left[a] = 0.0;  // execution starts next round
                continue;
            }
            remaining[a] -= rate[a] * dt;
            if (remaining[a] <= eps * std::max(1.0, now)) {
                result.finishTime[live_job[a]] = now;
                launchNext(a);
            }
        }
    }

    result.makespanSeconds = now;
    return result;
}

}  // namespace magma::sched
