#include "sched/job_analyzer.h"

#include <string>

#include "exec/cost_cache.h"

namespace magma::sched {
namespace {

/** Memoisation key: layer shape + batch (accel handled by outer loop). */
std::string
shapeKey(const dnn::LayerShape& l, int batch)
{
    return l.toString() + "|" + std::to_string(batch);
}

}  // namespace

JobAnalysisTable
JobAnalyzer::analyze(const dnn::JobGroup& group,
                     const accel::Platform& platform) const
{
    int jobs = group.size();
    int accels = platform.numSubAccels();
    JobAnalysisTable table(jobs, accels);
    last_unique_ = 0;

    for (int a = 0; a < accels; ++a) {
        const cost::SubAccelConfig& cfg = platform.subAccels[a];
        // Determinism audit: keyed find/emplace only, never iterated —
        // hash order cannot reach the table or any serialized output.
        std::unordered_map<std::string, JobProfile> memo;
        for (int j = 0; j < jobs; ++j) {
            const dnn::Job& job = group.jobs[j];
            std::string key = shapeKey(job.layer, job.batch);
            auto it = memo.find(key);
            if (it == memo.end()) {
                cost::CostResult r =
                    cache_ ? cache_->analyze(*model_, job.layer, job.batch,
                                             cfg)
                           : model_->analyze(job.layer, job.batch, cfg);
                JobProfile p;
                p.noStallSeconds = r.noStallSeconds(cfg);
                p.reqBwGbps = r.reqBwGbps;
                p.dramBytes = r.dramBytes;
                p.energyPj = r.energyPj;
                p.macs = r.macs;
                it = memo.emplace(key, p).first;
                ++last_unique_;
            }
            table.at(j, a) = it->second;
        }
    }
    return table;
}

}  // namespace magma::sched
