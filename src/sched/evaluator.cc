#include "sched/evaluator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace magma::sched {

std::string
objectiveName(Objective o)
{
    switch (o) {
      case Objective::Throughput:
        return "throughput";
      case Objective::Latency:
        return "latency";
      case Objective::Energy:
        return "energy";
      case Objective::EnergyDelay:
        return "energy-delay-product";
      case Objective::PerfPerWatt:
        return "performance-per-watt";
    }
    return "?";
}

Objective
objectiveFromName(const std::string& name)
{
    for (Objective o : {Objective::Throughput, Objective::Latency,
                        Objective::Energy, Objective::EnergyDelay,
                        Objective::PerfPerWatt})
        if (objectiveName(o) == name)
            return o;
    // Short spellings the CLI has historically accepted.
    if (name == "edp")
        return Objective::EnergyDelay;
    if (name == "perf-per-watt")
        return Objective::PerfPerWatt;
    throw std::invalid_argument(
        "unknown objective '" + name +
        "' (throughput|latency|energy|energy-delay-product|"
        "performance-per-watt; short forms: edp, perf-per-watt)");
}

MappingEvaluator::MappingEvaluator(const dnn::JobGroup& group,
                                   const accel::Platform& platform,
                                   const cost::CostModel& model,
                                   BwPolicy policy,
                                   exec::CostCache* cost_cache,
                                   Objective objective)
    : group_(&group),
      platform_(&platform),
      allocator_(platform.systemBwGbps, policy),
      objective_(objective)
{
    JobAnalyzer analyzer(model, cost_cache);
    table_ = analyzer.analyze(group, platform);
}

double
MappingEvaluator::throughputGflops(double makespan_seconds) const
{
    if (makespan_seconds <= 0.0)
        return 0.0;
    return static_cast<double>(group_->totalFlops()) / makespan_seconds /
           1e9;
}

ScheduleResult
MappingEvaluator::evaluate(const Mapping& m, bool record_timeline) const
{
    assert(m.size() == group_->size());
    samples_.fetch_add(1, std::memory_order_relaxed);
    DecodedMapping d = decode(m, numAccels());
    return allocator_.run(d, table_, record_timeline);
}

double
MappingEvaluator::totalJoules(const Mapping& m) const
{
    double pj = 0.0;
    for (int j = 0; j < m.size(); ++j)
        pj += table_.lookup(j, m.accelSel[j]).energyPj;
    return pj * 1e-12;
}

double
MappingEvaluator::objectiveValue(const Mapping& m,
                                 const ScheduleResult& r) const
{
    double seconds = r.makespanSeconds;
    if (seconds <= 0.0)
        return 0.0;
    switch (objective_) {
      case Objective::Throughput:
        return throughputGflops(seconds);
      case Objective::Latency:
        return 1.0 / seconds;
      case Objective::Energy:
        return 1.0 / std::max(totalJoules(m), 1e-30);
      case Objective::EnergyDelay:
        return 1.0 / std::max(totalJoules(m) * seconds, 1e-40);
      case Objective::PerfPerWatt: {
        double watts = totalJoules(m) / seconds;
        return throughputGflops(seconds) / std::max(watts, 1e-30);
      }
    }
    return 0.0;
}

double
MappingEvaluator::fitness(const Mapping& m) const
{
    ScheduleResult r = evaluate(m, false);
    return objectiveValue(m, r);
}

}  // namespace magma::sched
