#include "sched/evaluator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace magma::sched {

std::string
objectiveName(Objective o)
{
    switch (o) {
    case Objective::Throughput:
        return "throughput";
    case Objective::Latency:
        return "latency";
    case Objective::Energy:
        return "energy";
    case Objective::EnergyDelay:
        return "energy-delay-product";
    case Objective::PerfPerWatt:
        return "performance-per-watt";
    }
    return "?";
}

Objective
objectiveFromName(const std::string& name)
{
    for (Objective o : {Objective::Throughput, Objective::Latency,
                        Objective::Energy, Objective::EnergyDelay,
                        Objective::PerfPerWatt})
        if (objectiveName(o) == name)
            return o;
    // Short spellings the CLI has historically accepted.
    if (name == "edp")
        return Objective::EnergyDelay;
    if (name == "perf-per-watt")
        return Objective::PerfPerWatt;
    throw std::invalid_argument(
        "unknown objective '" + name +
        "' (throughput|latency|energy|energy-delay-product|"
        "performance-per-watt; short forms: edp, perf-per-watt)");
}

std::string
objectiveListName(const std::vector<Objective>& objectives)
{
    std::string out;
    for (size_t i = 0; i < objectives.size(); ++i) {
        if (i)
            out += ',';
        out += objectiveName(objectives[i]);
    }
    return out;
}

std::vector<Objective>
objectiveListFromName(const std::string& names)
{
    // A fully blank input is the empty list (the `objectives=` default);
    // a blank ELEMENT ("throughput,,energy", ",") is a malformed list —
    // swallowing it would silently fall back to single-objective mode.
    if (names.find_first_not_of(" \t") == std::string::npos)
        return {};
    std::vector<Objective> out;
    size_t pos = 0;
    while (pos <= names.size()) {
        size_t comma = names.find(',', pos);
        std::string tok = names.substr(
            pos, (comma == std::string::npos ? names.size() : comma) - pos);
        pos = (comma == std::string::npos) ? names.size() + 1 : comma + 1;
        // Trim surrounding blanks so "throughput, energy" parses.
        size_t b = tok.find_first_not_of(" \t");
        if (b == std::string::npos)
            throw std::invalid_argument(
                "objective list '" + names + "' has an empty element");
        size_t e = tok.find_last_not_of(" \t");
        out.push_back(objectiveFromName(tok.substr(b, e - b + 1)));
    }
    return out;
}

bool
objectiveNeedsEnergy(Objective o)
{
    return o == Objective::Energy || o == Objective::EnergyDelay ||
           o == Objective::PerfPerWatt;
}

double
objectiveFromSimulation(Objective o, double makespan_seconds, double joules,
                        int64_t total_flops)
{
    double seconds = makespan_seconds;
    if (seconds <= 0.0)
        return 0.0;
    switch (o) {
    case Objective::Throughput:
        return static_cast<double>(total_flops) / seconds / 1e9;
    case Objective::Latency:
        return 1.0 / seconds;
    case Objective::Energy:
        return 1.0 / std::max(joules, 1e-30);
    case Objective::EnergyDelay:
        return 1.0 / std::max(joules * seconds, 1e-40);
    case Objective::PerfPerWatt: {
        double watts = joules / seconds;
        return (static_cast<double>(total_flops) / seconds / 1e9) /
               std::max(watts, 1e-30);
    }
    }
    return 0.0;
}

MappingEvaluator::MappingEvaluator(const dnn::JobGroup& group,
                                   const accel::Platform& platform,
                                   const cost::CostModel& model,
                                   BwPolicy policy,
                                   exec::CostCache* cost_cache,
                                   Objective objective)
    : group_(&group),
      platform_(&platform),
      allocator_(platform.systemBwGbps, policy),
      objective_(objective)
{
    JobAnalyzer analyzer(model, cost_cache);
    table_ = analyzer.analyze(group, platform);
}

double
MappingEvaluator::throughputGflops(double makespan_seconds) const
{
    if (makespan_seconds <= 0.0)
        return 0.0;
    return static_cast<double>(group_->totalFlops()) / makespan_seconds /
           1e9;
}

ScheduleResult
MappingEvaluator::evaluate(const Mapping& m, bool record_timeline) const
{
    assert(m.size() == group_->size());
    samples_.fetch_add(1, std::memory_order_relaxed);
    DecodedMapping d = decode(m, numAccels());
    return allocator_.run(d, table_, record_timeline);
}

ScheduleResult
MappingEvaluator::evaluateWithSetup(const Mapping& m,
                                    const std::vector<double>&
                                        setup_seconds,
                                    bool record_timeline) const
{
    assert(m.size() == group_->size());
    assert(static_cast<int>(setup_seconds.size()) == group_->size());
    samples_.fetch_add(1, std::memory_order_relaxed);
    DecodedMapping d = decode(m, numAccels());
    return allocator_.run(d, table_, record_timeline, &setup_seconds);
}

double
MappingEvaluator::totalJoules(const Mapping& m) const
{
    double pj = 0.0;
    for (int j = 0; j < m.size(); ++j)
        pj += table_.lookup(j, m.accelSel[j]).energyPj;
    return pj * 1e-12;
}

double
MappingEvaluator::objectiveValue(const Mapping& m,
                                 const ScheduleResult& r) const
{
    // The energy sum is only spent when the objective reads it, keeping
    // the throughput/latency hot paths at their pre-refactor cost.
    double joules =
        objectiveNeedsEnergy(objective_) ? totalJoules(m) : 0.0;
    return objectiveFromSimulation(objective_, r.makespanSeconds, joules,
                                   group_->totalFlops());
}

double
MappingEvaluator::fitness(const Mapping& m) const
{
    ScheduleResult r = evaluate(m, false);
    return objectiveValue(m, r);
}

}  // namespace magma::sched
