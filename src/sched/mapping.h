#ifndef MAGMA_SCHED_MAPPING_H_
#define MAGMA_SCHED_MAPPING_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace magma::sched {

/**
 * The encoded global mapping (Section IV-A, Fig. 5a).
 *
 * Two genomes of group-size length:
 *  - `accelSel[j]`  : sub-accelerator id executing job j;
 *  - `priority[j]`  : priority of job j in [0,1), 0 highest — jobs on one
 *                     sub-accelerator execute in ascending priority order.
 */
struct Mapping {
    std::vector<int> accelSel;
    std::vector<double> priority;

    int size() const { return static_cast<int>(accelSel.size()); }

    /** Uniform random mapping (the Init engine). */
    static Mapping random(int group_size, int num_accels, common::Rng& rng);

    /**
     * Flatten to 2*G doubles in [0,1) — the representation continuous
     * optimizers (DE/PSO/CMA-ES/TBPSA) operate on. Accel genes map to
     * (id + 0.5) / num_accels.
     */
    std::vector<double> toFlat(int num_accels) const;

    /**
     * Rebuild from a flat vector; values are clamped into [0,1) and accel
     * genes decoded as floor(v * num_accels).
     */
    static Mapping fromFlat(const std::vector<double>& flat, int num_accels);

    /**
     * One-line text form "G a0..a(G-1) p0..p(G-1)" with priorities printed
     * at full precision (%.17g), so fromText(toText(m)) == m bitwise —
     * the property the serve-layer MappingStore persistence relies on.
     */
    std::string toText() const;

    /** Parse a toText() line; throws std::invalid_argument on bad input. */
    static Mapping fromText(const std::string& line);

    bool operator==(const Mapping& o) const = default;
};

/**
 * Decoded mapping description (Fig. 4a): per sub-accelerator, the ordered
 * job queue (ascending priority, stable tie-break on job id).
 */
struct DecodedMapping {
    std::vector<std::vector<int>> queues;  // queues[accel] = ordered job ids
};

/** Decode an encoded mapping (Section IV-A's decoder). */
DecodedMapping decode(const Mapping& m, int num_accels);

}  // namespace magma::sched

#endif  // MAGMA_SCHED_MAPPING_H_
