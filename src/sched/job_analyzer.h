#ifndef MAGMA_SCHED_JOB_ANALYZER_H_
#define MAGMA_SCHED_JOB_ANALYZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "accel/platform.h"
#include "cost/cost_model.h"
#include "dnn/workload.h"

namespace magma::exec {
class CostCache;
}  // namespace magma::exec

namespace magma::sched {

/**
 * One entry of the Job Analysis Table (Section IV-D4): the profile of one
 * job on one sub-accelerator.
 */
struct JobProfile {
    double noStallSeconds = 0.0;  ///< latency with unlimited memory BW
    double reqBwGbps = 0.0;       ///< minimum BW to stay compute bound
    double dramBytes = 0.0;
    double energyPj = 0.0;
    int64_t macs = 0;
};

/**
 * The Job Analysis Table: per-(job, sub-accelerator) profiles, built once
 * before the optimization loop so fitness evaluation never re-queries the
 * cost model (Section IV-D4's "quick look-up table").
 */
class JobAnalysisTable {
  public:
    JobAnalysisTable() = default;
    JobAnalysisTable(int jobs, int accels)
        : accels_(accels), profiles_(static_cast<size_t>(jobs) * accels)
    {}

    const JobProfile& lookup(int job, int accel) const
    {
        return profiles_[static_cast<size_t>(job) * accels_ + accel];
    }

    JobProfile& at(int job, int accel)
    {
        return profiles_[static_cast<size_t>(job) * accels_ + accel];
    }

    int numAccels() const { return accels_; }
    int numJobs() const
    {
        return accels_ ? static_cast<int>(profiles_.size()) / accels_ : 0;
    }

  private:
    int accels_ = 0;
    std::vector<JobProfile> profiles_;
};

/**
 * The Job Analyzer (Section IV-D2): profiles every job of a group on every
 * sub-accelerator through the cost model. Queries are memoised on
 * (layer shape, batch, sub-accelerator) because batched-job groups contain
 * many repeated layers.
 */
class JobAnalyzer {
  public:
    /**
     * `cache`, when given, memoizes cost-model results process-wide
     * (exec::CostCache) so repeated analyze() calls — BW sweeps,
     * sub-accel-combination sweeps, identically-configured cores — skip
     * the cost model entirely on a hit.
     */
    explicit JobAnalyzer(const cost::CostModel& model,
                         exec::CostCache* cache = nullptr)
        : model_(&model), cache_(cache)
    {}

    /** Build the analysis table for a group on a platform. */
    JobAnalysisTable analyze(const dnn::JobGroup& group,
                             const accel::Platform& platform) const;

    /** Number of distinct cost-model queries the last analyze() issued. */
    int64_t lastUniqueQueries() const { return last_unique_; }

  private:
    const cost::CostModel* model_;
    exec::CostCache* cache_ = nullptr;
    mutable int64_t last_unique_ = 0;
};

}  // namespace magma::sched

#endif  // MAGMA_SCHED_JOB_ANALYZER_H_
