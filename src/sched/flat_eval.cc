#include "sched/flat_eval.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace magma::sched {

std::string
evalModeName(EvalMode m)
{
    switch (m) {
    case EvalMode::Flat:
        return "flat";
    case EvalMode::Reference:
        return "reference";
    }
    return "?";
}

EvalMode
evalModeFromName(const std::string& name)
{
    for (EvalMode m : {EvalMode::Flat, EvalMode::Reference})
        if (evalModeName(m) == name)
            return m;
    throw std::invalid_argument("unknown eval mode '" + name +
                                "' (flat|reference)");
}

void
EvalScratch::ensure(int jobs, int accels)
{
    if (jobs_ == jobs && accels_ == accels)
        return;
    jobs_ = jobs;
    accels_ = accels;
    queue_jobs_.resize(jobs);
    queue_begin_.resize(accels + 1);
    fill_.resize(accels);
    cursor_.resize(accels);
    remaining_.resize(accels);
    req_bw_.resize(accels);
    live_job_.resize(accels);
    rate_.resize(accels);
    finish_.resize(jobs);
}

FlatEvaluator::FlatEvaluator(const MappingEvaluator& ref)
    : ref_(&ref),
      jobs_(ref.groupSize()),
      accels_(ref.numAccels()),
      system_bw_(ref.platform().systemBwGbps),
      policy_(ref.bwPolicy()),
      objective_(ref.objective()),
      total_flops_(ref.group().totalFlops())
{
    // Compile the Job Analysis Table into structure-of-arrays columns so
    // the inner loop streams doubles instead of striding over JobProfile
    // records.
    size_t n = static_cast<size_t>(jobs_) * accels_;
    // span payload: i = jobs * accels table cells
    obs::Span span("sched.flat.compile", static_cast<int64_t>(n));
    PROFILE_SCOPE("sched.flat.compile");
    if (obs::countersOn())
        obs::MetricsRegistry::global().counter("sched.flat.compiles").add();
    no_stall_seconds_.resize(n);
    req_bw_gbps_.resize(n);
    energy_pj_.resize(n);
    const JobAnalysisTable& table = ref.table();
    for (int j = 0; j < jobs_; ++j) {
        for (int a = 0; a < accels_; ++a) {
            const JobProfile& p = table.lookup(j, a);
            size_t i = static_cast<size_t>(j) * accels_ + a;
            no_stall_seconds_[i] = p.noStallSeconds;
            req_bw_gbps_[i] = p.reqBwGbps;
            energy_pj_[i] = p.energyPj;
        }
    }
}

void
FlatEvaluator::decodeInto(const Mapping& m, EvalScratch& s) const
{
    const int accels = accels_;
    const int jobs = jobs_;

    // Counting pass: queue_begin_[a + 1] = queue length of a, then
    // prefix-summed into segment offsets.
    for (int a = 0; a <= accels; ++a)
        s.queue_begin_[a] = 0;
    for (int j = 0; j < jobs; ++j) {
        assert(m.accelSel[j] >= 0 && m.accelSel[j] < accels);
        ++s.queue_begin_[m.accelSel[j] + 1];
    }
    for (int a = 0; a < accels; ++a)
        s.queue_begin_[a + 1] += s.queue_begin_[a];

    // Fill in ascending job order — the same insertion order decode()
    // produces before its stable sort.
    for (int a = 0; a < accels; ++a)
        s.fill_[a] = s.queue_begin_[a];
    for (int j = 0; j < jobs; ++j)
        s.queue_jobs_[s.fill_[m.accelSel[j]]++] = j;

    // Per-queue stable insertion sort by priority. Strict '<' moves keep
    // equal priorities in original (ascending job id) order, matching
    // decode()'s std::stable_sort exactly.
    const double* prio = m.priority.data();
    int32_t* q = s.queue_jobs_.data();
    for (int a = 0; a < accels; ++a) {
        int32_t lo = s.queue_begin_[a];
        int32_t hi = s.queue_begin_[a + 1];
        for (int32_t i = lo + 1; i < hi; ++i) {
            int32_t job = q[i];
            double p = prio[job];
            int32_t k = i;
            while (k > lo && p < prio[q[k - 1]]) {
                q[k] = q[k - 1];
                --k;
            }
            q[k] = job;
        }
    }
}

void
FlatEvaluator::simulate(const Mapping& m, EvalScratch& s,
                        bool record_timeline) const
{
    assert(m.size() == jobs_);
    PROFILE_SCOPE("sched.flat.simulate");
    s.ensure(jobs_, accels_);
    s.events_.clear();
    decodeInto(m, s);

    const int num_accels = accels_;
    const double system_bw = system_bw_;
    const bool proportional = (policy_ == BwPolicy::Proportional);
    const double* no_stall = no_stall_seconds_.data();
    const double* req_col = req_bw_gbps_.data();

    // Raw-pointer views of the scratch keep the inner loop free of
    // vector indirection the optimizer cannot hoist past stores.
    const int32_t* qjobs = s.queue_jobs_.data();
    const int32_t* qbegin = s.queue_begin_.data();
    int32_t* cursor = s.cursor_.data();
    double* remaining = s.remaining_.data();
    double* req_bw = s.req_bw_.data();
    int32_t* live_job = s.live_job_.data();
    double* rate = s.rate_.data();
    double* finish = s.finish_.data();

    std::fill(s.finish_.begin(), s.finish_.end(), 0.0);

    // The remainder replays BwAllocator::run on the flattened queues:
    // same traversal order, same expressions, so every intermediate
    // double is bit-identical to the reference simulation. The pass
    // structure is fused — (demand sum) folds into the advance pass of
    // the previous round, and unconstrained rounds skip the divisions —
    // but only through identities that are exact in IEEE arithmetic
    // (x / x == 1.0 for normal x, 1.0 * dt == dt, remaining / 1.0 ==
    // remaining), so the fusion is unobservable in the results.
    auto launchNext = [&](int a) {
        if (cursor[a] < qbegin[a + 1]) {
            int j = qjobs[cursor[a]++];
            size_t i = static_cast<size_t>(j) * num_accels + a;
            live_job[a] = j;
            remaining[a] = no_stall[i];
            req_bw[a] = req_col[i];
        } else {
            live_job[a] = -1;
            remaining[a] = 0.0;
            req_bw[a] = 0.0;
        }
    };

    // Compacted list of slots whose queue is not yet drained, in
    // ascending sub-accelerator order. The reference iterates every slot
    // and skips dead ones; iterating only the live slots in the same
    // ascending order visits the same values in the same order, so every
    // demand sum and min-reduction is unchanged.
    int32_t* live_idx = s.fill_.data();  // decode is done; reuse
    int live_count = 0;
    double total_req = 0.0;
    for (int a = 0; a < num_accels; ++a) {
        cursor[a] = qbegin[a];
        launchNext(a);
        if (live_job[a] >= 0) {
            live_idx[live_count++] = a;
            total_req += req_bw[a];
        }
    }

    double now = 0.0;
    const double eps = 1e-18;
    while (live_count > 0) {
        // Allocation + earliest-completion scan, one fused pass. In an
        // unconstrained proportional round every live job runs at rate
        // 1.0 (the reference computes min(1.0, req/req) == 1.0), so the
        // divisions are skipped wholesale and nothing needs rate[].
        double dt = std::numeric_limits<double>::infinity();
        const bool full_speed = proportional && total_req <= system_bw;
        if (full_speed) {
            for (int k = 0; k < live_count; ++k)
                dt = std::min(dt, remaining[live_idx[k]]);
        } else {
            for (int k = 0; k < live_count; ++k) {
                int a = live_idx[k];
                double alloc;
                if (proportional) {
                    alloc = req_bw[a] * system_bw / total_req;
                } else {
                    alloc = std::min(req_bw[a], system_bw / num_accels);
                }
                double r = (req_bw[a] <= eps)
                               ? 1.0
                               : std::min(1.0, alloc / req_bw[a]);
                rate[a] = r;
                double t = (r > eps)
                               ? remaining[a] / r
                               : std::numeric_limits<double>::infinity();
                dt = std::min(dt, t);
            }
        }
        assert(std::isfinite(dt));
        dt = std::max(dt, 0.0);

        if (record_timeline) {
            for (int k = 0; k < live_count; ++k) {
                int a = live_idx[k];
                ScheduleEvent ev;
                ev.start = now;
                ev.end = now + dt;
                ev.job = live_job[a];
                ev.accel = a;
                ev.allocBw = full_speed ? req_bw[a] : rate[a] * req_bw[a];
                s.events_.push_back(ev);
            }
        }

        now += dt;
        // Advance pass, folded together with the next round's demand sum
        // and in-place live-list compaction: req_bw[a] is final for the
        // round once slot a has been advanced, and the reference sums
        // demand in the same ascending order.
        const double done_below = eps * std::max(1.0, now);
        total_req = 0.0;
        int write = 0;
        for (int k = 0; k < live_count; ++k) {
            int a = live_idx[k];
            if (full_speed)
                remaining[a] -= dt;
            else {
                double r = rate[a];
                remaining[a] -= (r == 1.0) ? dt : r * dt;
            }
            if (remaining[a] <= done_below) {
                finish[live_job[a]] = now;
                launchNext(a);
            }
            if (live_job[a] >= 0) {
                live_idx[write++] = a;
                total_req += req_bw[a];
            }
        }
        live_count = write;
    }

    s.makespan_ = now;
}

double
FlatEvaluator::totalJoules(const Mapping& m) const
{
    const double* energy = energy_pj_.data();
    double pj = 0.0;
    for (int j = 0; j < m.size(); ++j)
        pj += energy[static_cast<size_t>(j) * accels_ + m.accelSel[j]];
    return pj * 1e-12;
}

double
FlatEvaluator::objectiveValue(const Mapping& m, const EvalScratch& s) const
{
    double joules =
        objectiveNeedsEnergy(objective_) ? totalJoules(m) : 0.0;
    return objectiveFromSimulation(objective_, s.makespan_, joules,
                                   total_flops_);
}

double
FlatEvaluator::fitness(const Mapping& m, EvalScratch& s) const
{
    ref_->countSample();
    simulate(m, s, false);
    return objectiveValue(m, s);
}

ScheduleResult
FlatEvaluator::evaluate(const Mapping& m, EvalScratch& s,
                        bool record_timeline) const
{
    ref_->countSample();
    simulate(m, s, record_timeline);
    ScheduleResult r;
    r.makespanSeconds = s.makespan_;
    r.finishTime = s.finish_;
    r.events = s.events_;
    return r;
}

}  // namespace magma::sched
