#include "sched/mapping.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace magma::sched {

Mapping
Mapping::random(int group_size, int num_accels, common::Rng& rng)
{
    Mapping m;
    m.accelSel.resize(group_size);
    m.priority.resize(group_size);
    for (int i = 0; i < group_size; ++i) {
        m.accelSel[i] = rng.uniformInt(num_accels);
        m.priority[i] = rng.uniform();
    }
    return m;
}

std::vector<double>
Mapping::toFlat(int num_accels) const
{
    std::vector<double> flat;
    flat.reserve(2 * accelSel.size());
    for (int a : accelSel)
        flat.push_back((a + 0.5) / num_accels);
    for (double p : priority)
        flat.push_back(p);
    return flat;
}

Mapping
Mapping::fromFlat(const std::vector<double>& flat, int num_accels)
{
    assert(flat.size() % 2 == 0);
    int g = static_cast<int>(flat.size() / 2);
    Mapping m;
    m.accelSel.resize(g);
    m.priority.resize(g);
    for (int i = 0; i < g; ++i) {
        double v = std::clamp(flat[i], 0.0, std::nextafter(1.0, 0.0));
        m.accelSel[i] = std::min(static_cast<int>(v * num_accels),
                                 num_accels - 1);
        m.priority[i] = std::clamp(flat[g + i], 0.0,
                                   std::nextafter(1.0, 0.0));
    }
    return m;
}

std::string
Mapping::toText() const
{
    std::ostringstream os;
    os << size();
    for (int a : accelSel)
        os << ' ' << a;
    char buf[32];
    for (double p : priority) {
        std::snprintf(buf, sizeof(buf), "%.17g", p);
        os << ' ' << buf;
    }
    return os.str();
}

Mapping
Mapping::fromText(const std::string& line)
{
    std::istringstream is(line);
    int g = -1;
    if (!(is >> g) || g < 0)
        throw std::invalid_argument("Mapping::fromText: bad group size");
    Mapping m;
    m.accelSel.resize(g);
    m.priority.resize(g);
    for (int i = 0; i < g; ++i)
        if (!(is >> m.accelSel[i]) || m.accelSel[i] < 0)
            throw std::invalid_argument("Mapping::fromText: bad accel gene");
    for (int i = 0; i < g; ++i)
        if (!(is >> m.priority[i]))
            throw std::invalid_argument("Mapping::fromText: bad priority");
    return m;
}

DecodedMapping
decode(const Mapping& m, int num_accels)
{
    DecodedMapping d;
    d.queues.assign(num_accels, {});
    for (int j = 0; j < m.size(); ++j) {
        assert(m.accelSel[j] >= 0 && m.accelSel[j] < num_accels);
        d.queues[m.accelSel[j]].push_back(j);
    }
    for (auto& q : d.queues) {
        std::stable_sort(q.begin(), q.end(), [&m](int a, int b) {
            return m.priority[a] < m.priority[b];
        });
    }
    return d;
}

}  // namespace magma::sched
