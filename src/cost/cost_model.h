#ifndef MAGMA_COST_COST_MODEL_H_
#define MAGMA_COST_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "cost/dataflow.h"
#include "dnn/layer.h"

namespace magma::cost {

/**
 * Hardware description of one sub-accelerator (Section II-B2): a 2-D PE
 * array with per-PE scratchpads (SL), a shared double-buffered global
 * scratchpad (SG) and a NoC distributing operands from the SG to the SLs.
 *
 * `rows` is the configurable array height of Table III; `cols` is fixed to
 * 64 in the paper's experiments. `flexibleShape` enables the Section VI-F
 * mode where the array can be reshaped per job (PE count constant).
 */
struct SubAccelConfig {
    std::string name = "sub-accel";
    DataflowStyle dataflow = DataflowStyle::HB;
    int rows = 64;
    int cols = 64;
    double slBytes = 1024.0;          ///< per-PE scratchpad capacity
    double sgBytes = 291.0 * 1024.0;  ///< shared global scratchpad capacity
    double freqGhz = 0.2;             ///< 200 MHz (Section VI-A3)
    double bytesPerElem = 1.0;        ///< 1-Byte operands (Section VI-A3)
    double nocElemsPerCycle = 1024.0; ///< SG->SL distribution bus width
    double nocLatency = 2.0;          ///< per-tile NoC pipeline fill cycles
    bool flexibleShape = false;       ///< Section VI-F reconfigurable array

    int pes() const { return rows * cols; }
    /** Peak throughput in GFLOP/s (2 FLOPs per MAC per cycle). */
    double peakGflops() const { return 2.0 * pes() * freqGhz; }
};

/** Per-access energy constants in pJ (Eyeriss-style hierarchy ratios). */
struct EnergyParams {
    double macPj = 1.0;
    double slPj = 1.0;       ///< per accessed element in a PE scratchpad
    double sgPj = 6.0;       ///< per accessed element in the global buffer
    double dramPjPerByte = 200.0;
};

/**
 * What the cost model reports for one (job, sub-accelerator) pair —
 * exactly the quantities M3E's Job Analysis Table stores (Section IV-D4)
 * plus energy and diagnostics.
 */
struct CostResult {
    double noStallCycles = 0.0;  ///< latency given unlimited DRAM BW
    double reqBwGbps = 0.0;      ///< minimum BW to stay compute bound
    int64_t macs = 0;
    double dramBytes = 0.0;      ///< DRAM traffic of the whole job
    double energyPj = 0.0;
    double utilization = 0.0;    ///< MACs / (cycles * PEs)
    int usedRows = 0;            ///< array shape used (differs from config
    int usedCols = 0;            ///< shape only in flexible mode)

    /** No-stall wall-clock seconds at the configured frequency. */
    double noStallSeconds(const SubAccelConfig& cfg) const
    {
        return noStallCycles / (cfg.freqGhz * 1e9);
    }
};

/**
 * MAESTRO-like analytical cost model (Section IV-D3 substitution).
 *
 * Given a layer, a mini-batch and a sub-accelerator configuration it
 * derives:
 *  - no-stall latency from the dataflow's parallelization of the nested
 *    loop (tile-quantized over the PE array) plus per-tile NoC fill;
 *  - DRAM traffic from an SG-capacity-bounded tiling with dataflow-specific
 *    reuse (weight-stationary for HB, activation-stationary for LB);
 *  - no-stall bandwidth = traffic / no-stall time;
 *  - energy from per-level access counts.
 *
 * In flexible-shape mode (Section VI-F) every factor pair (h, w) of the PE
 * count is evaluated and the lowest-latency shape is chosen, mirroring the
 * paper's "align the array to factors of the parallelized tile dims".
 */
class CostModel {
  public:
    /**
     * Fraction of a streamed (non-SG-resident) layer's activation bytes
     * that actually reach DRAM. Batched inference pipelines pass most
     * producer/consumer activation rows through the double-buffered SG,
     * so vision layers end up weight-traffic dominated — the behaviour
     * behind Fig. 7's low vision bandwidth numbers.
     */
    static constexpr double kActLocality = 0.25;

    explicit CostModel(EnergyParams energy = {}) : energy_(energy) {}

    /**
     * Analyze one job. Uses the config's fixed shape, or searches shapes
     * when `cfg.flexibleShape` is set.
     */
    CostResult analyze(const dnn::LayerShape& layer, int batch,
                       const SubAccelConfig& cfg) const;

    /** Analyze with an explicit array shape (flexible-mode inner call). */
    CostResult analyzeWithShape(const dnn::LayerShape& layer, int batch,
                                const SubAccelConfig& cfg, int rows,
                                int cols) const;

    const EnergyParams& energy() const { return energy_; }

  private:
    EnergyParams energy_;
};

}  // namespace magma::cost

#endif  // MAGMA_COST_COST_MODEL_H_
