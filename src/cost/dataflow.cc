#include "cost/dataflow.h"

namespace magma::cost {

std::string
dataflowName(DataflowStyle d)
{
    return d == DataflowStyle::HB ? "HB" : "LB";
}

}  // namespace magma::cost
