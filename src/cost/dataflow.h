#ifndef MAGMA_COST_DATAFLOW_H_
#define MAGMA_COST_DATAFLOW_H_

#include <string>

namespace magma::cost {

/**
 * The two sub-accelerator dataflow styles the paper evaluates
 * (Section VI-A3).
 *
 * HB — "High Bandwidth usage" style, inspired by NVDLA: weight-stationary,
 * parallelizes output channels (K) over PE rows and input channels (C) over
 * PE columns. Compute-efficient on channel-rich layers (late CNN layers,
 * FC/GEMM) but re-streams activations and is bandwidth hungry.
 *
 * LB — "Low Bandwidth usage" style, inspired by Eyeriss: output/activation-
 * stationary, parallelizes the activation plane (output rows over PE rows,
 * output columns over PE columns, mini-batch folded into rows). Excellent
 * on early CNN layers with large activation planes, frugal on bandwidth,
 * but badly under-utilized on FC layers whose activation plane is 1x1.
 */
enum class DataflowStyle { HB, LB };

/** Short name ("HB" / "LB"). */
std::string dataflowName(DataflowStyle d);

}  // namespace magma::cost

#endif  // MAGMA_COST_DATAFLOW_H_
