#include "cost/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace magma::cost {
namespace {

double
ceilDiv(double a, double b)
{
    return std::ceil(a / b);
}

/** Tile-size candidates for a dimension: dim, dim/2, dim/4, ... >= floor. */
std::vector<int>
tileCandidates(int dim, int floor_size)
{
    std::vector<int> out;
    int t = dim;
    while (t > floor_size) {
        out.push_back(t);
        t = (t + 1) / 2;
    }
    out.push_back(std::max(std::min(floor_size, dim), 1));
    return out;
}

struct Traffic {
    double dram_bytes = 0.0;
    double tiles = 1.0;           ///< number of SG refill tiles
    double tile_fill_elems = 0.0; ///< elems distributed per tile over NoC
};

/** DRAM bytes contributed by a layer's activations under the locality
 * model: zero when resident in the SG, a kActLocality fraction of the
 * streamed input+output bytes otherwise. */
double
activationTraffic(const dnn::LayerShape& l, int batch,
                  const SubAccelConfig& cfg, bool resident)
{
    if (resident)
        return 0.0;
    double acts = (static_cast<double>(l.inputElemsPerSample()) +
                   l.outputElemsPerSample()) * batch * cfg.bytesPerElem;
    return CostModel::kActLocality * acts;
}

/**
 * Whether this job's input+output activations fit (double-buffered) in the
 * SG. When they do, activations live on-chip across layers of the batched
 * pipeline and the job's DRAM traffic is weight-dominated — matching the
 * low bandwidth MAESTRO reports for late CNN layers.
 */
bool
activationsResident(const dnn::LayerShape& l, int batch,
                    const SubAccelConfig& cfg)
{
    double act = (static_cast<double>(l.inputElemsPerSample()) +
                  l.outputElemsPerSample()) * batch * cfg.bytesPerElem;
    return act <= cfg.sgBytes / 2.0;
}

/**
 * HB (NVDLA-like, weight-stationary) traffic. Weights are fetched once;
 * activations follow the locality model (resident maps never leave the
 * SG, streamed ones pay the kActLocality fraction). Weight tiles are the
 * largest that fit the double-buffered footprint
 *   2 * (weight tile + input row-strip + output row)  <=  SG,
 * which minimizes the number of SG refills the NoC must absorb.
 */
Traffic
hbTraffic(const dnn::LayerShape& l, int batch, const SubAccelConfig& cfg)
{
    double bpe = cfg.bytesPerElem;
    double w_bytes = static_cast<double>(l.weightElems()) * bpe;
    bool resident = activationsResident(l, batch, cfg);

    int out_ch = (l.type == dnn::LayerType::DepthwiseConv2d) ? l.c : l.k;
    int red_ch = (l.type == dnn::LayerType::DepthwiseConv2d) ? 1 : l.c;

    double best_tiles = std::numeric_limits<double>::infinity();
    Traffic best;
    bool feasible = false;
    for (int tk : tileCandidates(out_ch, cfg.rows)) {
        for (int tc : tileCandidates(red_ch, cfg.cols)) {
            double wt = static_cast<double>(tk) * tc * l.r * l.s * bpe;
            double in_strip = static_cast<double>(tc) * l.inX() * l.r * bpe;
            double out_strip = static_cast<double>(tk) * l.x * bpe;
            double footprint = 2.0 * (wt + in_strip + out_strip);
            if (footprint > cfg.sgBytes)
                continue;
            feasible = true;
            double tiles = ceilDiv(out_ch, tk) * ceilDiv(red_ch, tc);
            if (tiles < best_tiles) {
                best_tiles = tiles;
                best.tiles = tiles;
                best.tile_fill_elems = wt / bpe;
            }
        }
    }
    if (feasible) {
        best.dram_bytes =
            w_bytes + activationTraffic(l, batch, cfg, resident);
    } else {
        // SG cannot hold even the minimal tile strips; every weight tile
        // is re-streamed per output row — heavy degradation, but bounded.
        int tk = std::min(out_ch, cfg.rows);
        int tc = std::min(red_ch, cfg.cols);
        double tiles = ceilDiv(out_ch, tk) * ceilDiv(red_ch, tc) * l.y;
        best.dram_bytes = w_bytes * static_cast<double>(l.y) +
                          activationTraffic(l, batch, cfg, false);
        best.tiles = tiles;
        best.tile_fill_elems = static_cast<double>(tk) * tc * l.r * l.s;
    }
    return best;
}

/**
 * LB (Eyeriss-like, row-stationary) traffic: activations are fetched at
 * most once (not at all when resident) and retired in place; weights are
 * broadcast per activation strip — once if they fit next to a strip,
 * otherwise streamed per strip group. LB's hallmark is minimal DRAM
 * traffic at the price of utilization.
 */
Traffic
lbTraffic(const dnn::LayerShape& l, int batch, const SubAccelConfig& cfg)
{
    double bpe = cfg.bytesPerElem;
    double w_bytes = static_cast<double>(l.weightElems()) * bpe;
    bool resident = activationsResident(l, batch, cfg);

    // Strip = rows of the output plane retired at once.
    double in_strip = static_cast<double>(l.c) * l.inX() * l.r * bpe;
    double out_strip =
        static_cast<double>(l.type == dnn::LayerType::DepthwiseConv2d
                                ? l.c : l.k) * l.x * bpe;
    double strips = std::max(
        1.0, ceilDiv(static_cast<double>(l.y) * batch, cfg.rows));

    Traffic t;
    double act_traffic = activationTraffic(l, batch, cfg, resident);
    double strip_footprint = 2.0 * (in_strip + out_strip);
    if (strip_footprint + w_bytes <= cfg.sgBytes) {
        // Weights resident next to the strips: everything moves once.
        t.dram_bytes = w_bytes + act_traffic;
        t.tiles = strips;
        t.tile_fill_elems = in_strip / bpe;
    } else {
        // Weights streamed per strip group; group size set by SG leftover.
        double budget = std::max(cfg.sgBytes - strip_footprint,
                                 cfg.sgBytes * 0.25);
        double w_passes = std::max(1.0, ceilDiv(w_bytes, budget));
        t.dram_bytes =
            w_bytes * std::min(w_passes, strips) + act_traffic;
        t.tiles = strips * w_passes;
        t.tile_fill_elems = std::min(w_bytes, budget) / bpe;
    }
    return t;
}

}  // namespace

CostResult
CostModel::analyzeWithShape(const dnn::LayerShape& layer, int batch,
                            const SubAccelConfig& cfg, int rows,
                            int cols) const
{
    assert(rows > 0 && cols > 0 && batch > 0);
    CostResult res;
    res.macs = layer.macsPerSample() * batch;
    res.usedRows = rows;
    res.usedCols = cols;

    // --- Compute latency: the dataflow's spatial mapping of the loop. ---
    double steps = 0.0;
    if (cfg.dataflow == DataflowStyle::HB) {
        if (layer.type == dnn::LayerType::DepthwiseConv2d) {
            // Channels spread over rows; no reduction to spread over
            // columns, so the column dimension idles (NVDLA's well-known
            // depthwise weakness).
            steps = ceilDiv(layer.c, rows) * layer.y * layer.x * layer.r *
                    layer.s * batch;
        } else {
            steps = ceilDiv(layer.k, rows) * ceilDiv(layer.c, cols) *
                    layer.y * layer.x * layer.r * layer.s * batch;
        }
    } else {
        // LB, Eyeriss row-stationary: filter rows R map across PE rows and
        // output rows Y (batch folded in) across PE columns; leftover PE
        // rows replicate additional output-row groups. Channels are
        // processed temporally — which is exactly why FC layers (R=1,Y=1)
        // crawl on LB while big early activation planes fly.
        double y_eff = static_cast<double>(layer.y) * batch;
        double y_groups = std::max(1.0, std::floor(rows / layer.r));
        double y_parallel = static_cast<double>(cols) * y_groups;
        double passes = ceilDiv(y_eff, y_parallel);
        if (layer.type == dnn::LayerType::DepthwiseConv2d) {
            steps = static_cast<double>(layer.c) * layer.s * layer.x *
                    passes;
        } else {
            steps = static_cast<double>(layer.k) * layer.c * layer.s *
                    layer.x * passes;
        }
    }

    // --- DRAM traffic + per-tile NoC fill. ---
    SubAccelConfig shaped = cfg;
    shaped.rows = rows;
    shaped.cols = cols;
    Traffic traffic = (cfg.dataflow == DataflowStyle::HB)
                          ? hbTraffic(layer, batch, shaped)
                          : lbTraffic(layer, batch, shaped);

    // Double-buffered SG: tile fills pipeline behind compute, so the
    // exposed latency is the max of compute and total NoC streaming time,
    // plus the un-hideable first fill.
    double per_tile_fill =
        traffic.tile_fill_elems / std::max(cfg.nocElemsPerCycle, 1.0);
    double total_fill =
        traffic.tiles * (cfg.nocLatency + per_tile_fill);
    res.noStallCycles = std::max(steps, total_fill) + cfg.nocLatency +
                        per_tile_fill;
    res.dramBytes = traffic.dram_bytes;

    double seconds = res.noStallCycles / (cfg.freqGhz * 1e9);
    res.reqBwGbps = (res.dramBytes / seconds) / 1e9;
    res.utilization =
        static_cast<double>(res.macs) /
        (res.noStallCycles * static_cast<double>(rows) * cols);

    // --- Energy: per-level access counts (documented approximation). ---
    double macs = static_cast<double>(res.macs);
    double sl_accesses = 2.0 * macs;          // operand read + psum update
    double sg_accesses = macs / std::max(1.0, cfg.nocElemsPerCycle / 8.0) +
                         res.dramBytes / cfg.bytesPerElem;
    res.energyPj = macs * energy_.macPj + sl_accesses * energy_.slPj +
                   sg_accesses * energy_.sgPj +
                   res.dramBytes * energy_.dramPjPerByte;
    return res;
}

CostResult
CostModel::analyze(const dnn::LayerShape& layer, int batch,
                   const SubAccelConfig& cfg) const
{
    if (!cfg.flexibleShape)
        return analyzeWithShape(layer, batch, cfg, cfg.rows, cfg.cols);

    // Flexible mode (Section VI-F): evaluate every factor pair (h, w) of
    // the PE budget and keep the fastest, mirroring "align the array shape
    // to factors of the parallelizing tile dimensions".
    int pes = cfg.pes();
    CostResult best;
    bool first = true;
    for (int h = 1; h <= pes; ++h) {
        if (pes % h != 0)
            continue;
        int w = pes / h;
        CostResult r = analyzeWithShape(layer, batch, cfg, h, w);
        if (first || r.noStallCycles < best.noStallCycles) {
            best = r;
            first = false;
        }
    }
    return best;
}

}  // namespace magma::cost
