#ifndef MAGMA_API_TEXTIO_H_
#define MAGMA_API_TEXTIO_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/textnum.h"

namespace magma::api::textio {

/**
 * Shared key=value text discipline of the declarative artifacts
 * (ProblemSpec / SearchSpec / ExperimentSpec / RunReport): one field per
 * line, doubles printed at full precision so that fromText(toText(x))
 * round-trips bitwise — the same rule Mapping::toText established. The
 * double format pair itself lives in common/textnum.h (also used by
 * mo::ParetoArchive).
 */

using common::formatDouble;
using common::parseDouble;

inline int64_t
parseInt(const std::string& key, const std::string& value)
{
    char* end = nullptr;
    long long v = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        throw std::invalid_argument(key + ": bad integer '" + value + "'");
    return v;
}

inline uint64_t
parseUint(const std::string& key, const std::string& value)
{
    char* end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || value[0] == '-')
        throw std::invalid_argument(key + ": bad unsigned integer '" +
                                    value + "'");
    return v;
}

inline bool
parseBool(const std::string& key, const std::string& value)
{
    if (value == "1" || value == "true")
        return true;
    if (value == "0" || value == "false")
        return false;
    throw std::invalid_argument(key + ": bad boolean '" + value +
                                "' (0|1|true|false)");
}

inline std::string
trim(std::string_view s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string_view::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return std::string(s.substr(b, e - b + 1));
}

/**
 * Call fn(key, value) for every data line of a key=value text block.
 * Blank lines and '#' comment lines are skipped; a data line without '='
 * throws. Keys and values are whitespace-trimmed (values may contain
 * inner spaces — method names and mapping/convergence payloads do).
 */
template <typename Fn>
void
forEachKeyValue(const std::string& text, Fn&& fn)
{
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t nl = text.find('\n', pos);
        std::string_view line(text.data() + pos,
                              (nl == std::string::npos ? text.size() : nl) -
                                  pos);
        pos = (nl == std::string::npos) ? text.size() + 1 : nl + 1;
        std::string stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#')
            continue;
        size_t eq = stripped.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument("bad spec line (no '='): " +
                                        stripped);
        fn(trim(std::string_view(stripped).substr(0, eq)),
           trim(std::string_view(stripped).substr(eq + 1)));
    }
}

}  // namespace magma::api::textio

#endif  // MAGMA_API_TEXTIO_H_
