#include "api/spec.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "api/textio.h"

namespace magma::api {

using namespace textio;

// ------------------------------------------------------- ProblemSpec ---

std::string
ProblemSpec::toText() const
{
    std::ostringstream os;
    os << "task=" << dnn::taskTypeName(task) << '\n'
       << "setting=" << accel::settingName(setting) << '\n'
       << "flexible=" << (flexible ? 1 : 0) << '\n'
       << "system_bw_gbps=" << formatDouble(systemBwGbps) << '\n'
       << "group_size=" << groupSize << '\n'
       << "bw_policy=" << sched::bwPolicyName(bwPolicy) << '\n'
       << "workload_seed=" << workloadSeed << '\n';
    return os.str();
}

bool
ProblemSpec::applyKey(const std::string& key, const std::string& value)
{
    if (key == "task")
        task = dnn::taskTypeFromName(value);
    else if (key == "setting")
        setting = accel::settingFromName(value);
    else if (key == "flexible")
        flexible = parseBool(key, value);
    else if (key == "system_bw_gbps")
        systemBwGbps = parseDouble(key, value);
    else if (key == "group_size")
        groupSize = static_cast<int>(parseInt(key, value));
    else if (key == "bw_policy")
        bwPolicy = sched::bwPolicyFromName(value);
    else if (key == "workload_seed")
        workloadSeed = parseUint(key, value);
    else
        return false;
    return true;
}

ProblemSpec
ProblemSpec::fromText(const std::string& text)
{
    ProblemSpec spec;
    forEachKeyValue(text, [&](const std::string& k, const std::string& v) {
        if (!spec.applyKey(k, v))
            throw std::invalid_argument("ProblemSpec: unknown key '" + k +
                                        "'");
    });
    return spec;
}

// -------------------------------------------------------- SearchSpec ---

std::string
SearchSpec::toText() const
{
    std::ostringstream os;
    os << "method=" << method << '\n'
       << "objective=" << sched::objectiveName(objective) << '\n'
       << "objectives=" << sched::objectiveListName(objectives) << '\n'
       << "sample_budget=" << sampleBudget << '\n'
       << "seed=" << seed << '\n'
       << "threads=" << threads << '\n'
       << "eval=" << sched::evalModeName(eval) << '\n'
       << "record_convergence=" << (recordConvergence ? 1 : 0) << '\n'
       << "record_samples=" << (recordSamples ? 1 : 0) << '\n'
       << "warm_start=" << (warmStart ? 1 : 0) << '\n';
    return os.str();
}

bool
SearchSpec::applyKey(const std::string& key, const std::string& value)
{
    if (key == "method")
        method = value;
    else if (key == "objective")
        objective = sched::objectiveFromName(value);
    else if (key == "objectives")
        objectives = sched::objectiveListFromName(value);
    else if (key == "sample_budget")
        sampleBudget = parseInt(key, value);
    else if (key == "seed")
        seed = parseUint(key, value);
    else if (key == "threads")
        threads = static_cast<int>(parseInt(key, value));
    else if (key == "eval")
        eval = sched::evalModeFromName(value);
    else if (key == "record_convergence")
        recordConvergence = parseBool(key, value);
    else if (key == "record_samples")
        recordSamples = parseBool(key, value);
    else if (key == "warm_start")
        warmStart = parseBool(key, value);
    else
        return false;
    return true;
}

SearchSpec
SearchSpec::fromText(const std::string& text)
{
    SearchSpec spec;
    forEachKeyValue(text, [&](const std::string& k, const std::string& v) {
        if (!spec.applyKey(k, v))
            throw std::invalid_argument("SearchSpec: unknown key '" + k +
                                        "'");
    });
    return spec;
}

// ---------------------------------------------------- ExperimentSpec ---

std::string
ExperimentSpec::toText() const
{
    return problem.toText() + search.toText();
}

ExperimentSpec
ExperimentSpec::fromText(const std::string& text)
{
    ExperimentSpec spec;
    forEachKeyValue(text, [&](const std::string& k, const std::string& v) {
        if (!spec.problem.applyKey(k, v) && !spec.search.applyKey(k, v))
            throw std::invalid_argument("ExperimentSpec: unknown key '" +
                                        k + "'");
    });
    return spec;
}

accel::Platform
buildPlatform(const ProblemSpec& spec)
{
    return spec.flexible
               ? accel::makeFlexibleSetting(spec.setting, spec.systemBwGbps)
               : accel::makeSetting(spec.setting, spec.systemBwGbps);
}

ExperimentSpec
ExperimentSpec::fromFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read spec file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromText(buf.str());
}

}  // namespace magma::api
