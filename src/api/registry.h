#ifndef MAGMA_API_REGISTRY_H_
#define MAGMA_API_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "opt/optimizer.h"

namespace magma::api {

/** Builds an optimizer with its Table IV hyper-parameters. */
using OptimizerFactory =
    std::function<std::unique_ptr<opt::Optimizer>(uint64_t seed)>;

/**
 * String-keyed optimizer factory — the source of truth for which mapping
 * methods exist. Every Table IV method self-registers here (see
 * builtin_methods.cc), the legacy m3e::Method enum is a thin
 * compatibility wrapper over lookups, and downstream users add methods
 * with registerOptimizer() without touching m3e/:
 *
 *   static const bool kReg = magma::api::registerOptimizer(
 *       "MyMapper", {"my", "mm"},
 *       [](uint64_t seed) { return std::make_unique<MyMapper>(seed); });
 *
 * Lookups accept the canonical name or any alias, exact first and then
 * case-insensitively; an unknown name throws std::invalid_argument with
 * a nearest-match suggestion and the full method list.
 *
 * Thread-safe: registration and lookup may race with concurrent serve
 * lanes.
 */
class OptimizerRegistry {
  public:
    struct Entry {
        std::string name;  ///< canonical (the paper's plot label)
        std::vector<std::string> aliases;
        OptimizerFactory factory;
    };

    /** The process-wide registry, builtins pre-registered. */
    static OptimizerRegistry& global();

    /** Register a method; throws on a duplicate name or alias. */
    void add(std::string name, std::vector<std::string> aliases,
             OptimizerFactory factory);

    /** Construct `name_or_alias` seeded; throws on unknown name. */
    std::unique_ptr<opt::Optimizer> make(const std::string& name_or_alias,
                                         uint64_t seed) const;

    /** Canonical name for a name/alias; throws on unknown name. */
    std::string resolve(const std::string& name_or_alias) const;

    bool contains(const std::string& name_or_alias) const;

    /** Canonical names in registration order (builtins: Table IV order). */
    std::vector<std::string> names() const;

    /** Entry snapshots in registration order (for --list-methods). */
    std::vector<Entry> entries() const;

  private:
    const Entry* find(const std::string& name_or_alias) const;  // mu_ held
    /** find() or throw the did-you-mean error. Caller holds mu_. */
    const Entry& findOrThrow(const std::string& name_or_alias) const;

    mutable std::mutex mu_;
    std::vector<Entry> entries_;
};

/**
 * Convenience wrapper over global().add() whose bool return makes it
 * usable as a namespace-scope static initializer (self-registration).
 */
bool registerOptimizer(std::string name, std::vector<std::string> aliases,
                       OptimizerFactory factory);

namespace detail {
/** Defined in builtin_methods.cc; called once by global(). The explicit
 * call (rather than per-TU static initializers) keeps the builtins from
 * being dropped when magma_core is linked as a static library. */
void registerBuiltinOptimizers(OptimizerRegistry& registry);
}  // namespace detail

}  // namespace magma::api

#endif  // MAGMA_API_REGISTRY_H_
