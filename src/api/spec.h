#ifndef MAGMA_API_SPEC_H_
#define MAGMA_API_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "accel/platform.h"
#include "dnn/model.h"
#include "sched/bw_allocator.h"
#include "sched/evaluator.h"
#include "sched/flat_eval.h"

namespace magma::api {

/**
 * Declarative description of a mapping problem: which workload, on which
 * Table III platform, under which bandwidth regime. A ProblemSpec is a
 * plain value — comparable, serializable (exact key=value text
 * round-trip, same discipline as Mapping::toText) and fingerprintable —
 * so an experiment's inputs can be stored, queued and replayed verbatim.
 *
 * Keys (one per toText line): task, setting, flexible, system_bw_gbps,
 * group_size, bw_policy, workload_seed.
 */
struct ProblemSpec {
    dnn::TaskType task = dnn::TaskType::Mix;
    accel::Setting setting = accel::Setting::S2;
    bool flexible = false;  ///< Fig. 14 flexible-array variant
    double systemBwGbps = 16.0;
    int groupSize = 40;
    sched::BwPolicy bwPolicy = sched::BwPolicy::Proportional;
    uint64_t workloadSeed = 1;  ///< WorkloadGenerator seed

    std::string toText() const;
    /** Exact inverse of toText(); throws std::invalid_argument. */
    static ProblemSpec fromText(const std::string& text);
    /**
     * Apply one key=value pair; returns false when the key is not a
     * ProblemSpec key (composite formats dispatch on this), throws on a
     * known key with a bad value.
     */
    bool applyKey(const std::string& key, const std::string& value);

    bool operator==(const ProblemSpec&) const = default;
};

/**
 * Declarative description of one search: which method (an
 * OptimizerRegistry name or alias), optimizing what, under which budget
 * and seed. Same text discipline as ProblemSpec.
 *
 * Keys: method, objective, objectives, sample_budget, seed, threads,
 * eval, record_convergence, record_samples, warm_start.
 */
struct SearchSpec {
    std::string method = "MAGMA";  ///< registry name or alias
    sched::Objective objective = sched::Objective::Throughput;
    /**
     * Multi-objective mode: a non-empty list ("objectives=throughput,
     * energy") makes the Runner search for the Pareto front of ALL
     * listed objectives at once (the method must implement
     * mo::MultiObjective, e.g. method=nsga2); entry 0 is the primary
     * used for scalar summaries, and the scalar `objective` key is
     * ignored. Empty (default) keeps the classic single-objective path.
     */
    std::vector<sched::Objective> objectives;
    int64_t sampleBudget = 10000;  ///< paper's main-experiment budget
    uint64_t seed = 1;             ///< optimizer seed
    int threads = 1;  ///< evaluation lanes (0 = auto, see SearchOptions)
    /** Evaluation kernel: the flat fast path (default) or the reference
     * object path — bitwise-identical results, different wall-clock. */
    sched::EvalMode eval = sched::EvalMode::Flat;
    bool recordConvergence = false;
    bool recordSamples = false;
    /** Allow store-seeded warm starts when served (serve::MapRequest);
     * ignored by the offline Runner, which has no store. */
    bool warmStart = true;

    std::string toText() const;
    static SearchSpec fromText(const std::string& text);
    bool applyKey(const std::string& key, const std::string& value);

    bool operator==(const SearchSpec&) const = default;
};

/**
 * A whole experiment as one portable artifact: problem + search. The
 * text form is the concatenation of both blocks (their key sets are
 * disjoint), which is also the on-disk spec-file format consumed by
 * `m3e_cli --spec FILE` — key=value lines, '#' comments and blank lines
 * allowed.
 */
struct ExperimentSpec {
    ProblemSpec problem;
    SearchSpec search;

    std::string toText() const;
    static ExperimentSpec fromText(const std::string& text);
    /** Load from a spec file; throws std::runtime_error if unreadable. */
    static ExperimentSpec fromFile(const std::string& path);

    bool operator==(const ExperimentSpec&) const = default;
};

/** Build the platform a ProblemSpec describes (fixed or flexible). */
accel::Platform buildPlatform(const ProblemSpec& spec);

}  // namespace magma::api

#endif  // MAGMA_API_SPEC_H_
