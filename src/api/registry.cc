#include "api/registry.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace magma::api {

namespace {

std::string
lower(const std::string& s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

/** Classic Levenshtein distance, for the did-you-mean suggestion. */
size_t
editDistance(const std::string& a, const std::string& b)
{
    std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

}  // namespace

OptimizerRegistry&
OptimizerRegistry::global()
{
    // Heap-allocated so the registry survives static destruction order
    // (downstream registrars may run very early, serve lanes very late).
    static OptimizerRegistry* reg = [] {
        auto* r = new OptimizerRegistry();
        detail::registerBuiltinOptimizers(*r);
        return r;
    }();
    return *reg;
}

void
OptimizerRegistry::add(std::string name, std::vector<std::string> aliases,
                       OptimizerFactory factory)
{
    if (name.empty() || !factory)
        throw std::invalid_argument(
            "OptimizerRegistry::add: empty name or null factory");
    std::lock_guard<std::mutex> lk(mu_);
    auto taken = [this](const std::string& key) {
        for (const Entry& e : entries_) {
            if (e.name == key)
                return true;
            for (const std::string& a : e.aliases)
                if (a == key)
                    return true;
        }
        return false;
    };
    if (taken(name))
        throw std::invalid_argument("OptimizerRegistry: '" + name +
                                    "' already registered");
    for (const std::string& a : aliases)
        if (a.empty() || taken(a))
            throw std::invalid_argument("OptimizerRegistry: alias '" + a +
                                        "' already registered");
    entries_.push_back(
        Entry{std::move(name), std::move(aliases), std::move(factory)});
}

const OptimizerRegistry::Entry*
OptimizerRegistry::find(const std::string& name_or_alias) const
{
    for (const Entry& e : entries_) {
        if (e.name == name_or_alias)
            return &e;
        for (const std::string& a : e.aliases)
            if (a == name_or_alias)
                return &e;
    }
    // Forgiving fallback: unique case-insensitive match.
    std::string key = lower(name_or_alias);
    for (const Entry& e : entries_) {
        if (lower(e.name) == key)
            return &e;
        for (const std::string& a : e.aliases)
            if (lower(a) == key)
                return &e;
    }
    return nullptr;
}

const OptimizerRegistry::Entry&
OptimizerRegistry::findOrThrow(const std::string& name_or_alias) const
{
    if (const Entry* e = find(name_or_alias))
        return *e;

    // Unknown: suggest the nearest name/alias and list everything.
    std::string key = lower(name_or_alias);
    std::string nearest;
    size_t best = std::string::npos;
    for (const Entry& e : entries_) {
        auto consider = [&](const std::string& cand) {
            size_t d = editDistance(key, lower(cand));
            if (d < best) {
                best = d;
                nearest = cand;
            }
        };
        consider(e.name);
        for (const std::string& a : e.aliases)
            consider(a);
    }
    std::ostringstream msg;
    msg << "unknown optimizer '" << name_or_alias << "'";
    if (!nearest.empty() && best <= std::max<size_t>(2, key.size() / 3))
        msg << "; did you mean '" << nearest << "'?";
    msg << " known methods: ";
    for (size_t i = 0; i < entries_.size(); ++i)
        msg << (i ? ", " : "") << entries_[i].name;
    throw std::invalid_argument(msg.str());
}

std::unique_ptr<opt::Optimizer>
OptimizerRegistry::make(const std::string& name_or_alias,
                        uint64_t seed) const
{
    OptimizerFactory factory;
    {
        std::lock_guard<std::mutex> lk(mu_);
        factory = findOrThrow(name_or_alias).factory;  // copy: construct
    }                                                  // outside the lock
    return factory(seed);
}

std::string
OptimizerRegistry::resolve(const std::string& name_or_alias) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return findOrThrow(name_or_alias).name;
}

bool
OptimizerRegistry::contains(const std::string& name_or_alias) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return find(name_or_alias) != nullptr;
}

std::vector<std::string>
OptimizerRegistry::names() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_)
        out.push_back(e.name);
    return out;
}

std::vector<OptimizerRegistry::Entry>
OptimizerRegistry::entries() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_;
}

bool
registerOptimizer(std::string name, std::vector<std::string> aliases,
                  OptimizerFactory factory)
{
    OptimizerRegistry::global().add(std::move(name), std::move(aliases),
                                    std::move(factory));
    return true;
}

}  // namespace magma::api
