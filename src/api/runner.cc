#include "api/runner.h"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "api/registry.h"
#include "api/textio.h"
#include "mo/nsga2.h"
#include "obs/snapshot.h"

namespace magma::api {

using namespace textio;

// --------------------------------------------------------- RunReport ---

namespace {

constexpr const char* kReportHeader = "magma-run-report v1";

/**
 * Metrics attachment for a report: counters/gauges/histograms of the
 * process registry, captured non-destructively (the trace rings are NOT
 * drained — they stay available for a later --metrics-out snapshot).
 * Empty at level Off.
 */
std::string
captureMetricsJson()
{
    if (obs::metricsLevel() == obs::MetricsLevel::Off)
        return "";
    return obs::SnapshotWriter::capture("runner",
                                        obs::MetricsRegistry::global())
        .toJson();
}

std::string
joinDoubles(const std::vector<double>& vs)
{
    std::ostringstream os;
    for (size_t i = 0; i < vs.size(); ++i)
        os << (i ? " " : "") << formatDouble(vs[i]);
    return os.str();
}

std::vector<double>
splitDoubles(const std::string& key, const std::string& line)
{
    std::vector<double> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(parseDouble(key, tok));
    return out;
}

}  // namespace

std::string
RunReport::toText() const
{
    std::ostringstream os;
    os << kReportHeader << '\n'
       << problem.toText() << search.toText()
       // "method" is the SearchSpec's key (possibly an alias);
       // "resolved_method" is the canonical name the registry ran.
       << "resolved_method=" << method << '\n'
       << "best_fitness=" << formatDouble(bestFitness) << '\n'
       << "makespan_seconds=" << formatDouble(makespanSeconds) << '\n'
       << "throughput_gflops=" << formatDouble(throughputGflops) << '\n'
       << "energy_joules=" << formatDouble(energyJoules) << '\n'
       << "samples_used=" << samplesUsed << '\n'
       << "wall_seconds=" << formatDouble(wallSeconds) << '\n'
       << "mapping=" << best.toText() << '\n'
       << "convergence=" << joinDoubles(convergence) << '\n';
    // Omitted when empty so pre-observability reports stay byte-stable.
    if (!metricsJson.empty())
        os << "metrics_json=" << metricsJson << '\n';
    for (const mo::MoPoint& p : front)
        os << "front_point=" << p.toText() << '\n';
    return os.str();
}

RunReport
RunReport::fromText(const std::string& text)
{
    size_t nl = text.find('\n');
    if (trim(text.substr(0, nl)) != kReportHeader)
        throw std::invalid_argument(
            "RunReport::fromText: missing 'magma-run-report v1' header");
    RunReport r;
    forEachKeyValue(
        text.substr(nl == std::string::npos ? text.size() : nl + 1),
        [&](const std::string& k, const std::string& v) {
            if (k == "resolved_method") {
                r.method = v;
                return;
            }
            if (r.problem.applyKey(k, v) || r.search.applyKey(k, v))
                return;
            if (k == "best_fitness")
                r.bestFitness = parseDouble(k, v);
            else if (k == "makespan_seconds")
                r.makespanSeconds = parseDouble(k, v);
            else if (k == "throughput_gflops")
                r.throughputGflops = parseDouble(k, v);
            else if (k == "energy_joules")
                r.energyJoules = parseDouble(k, v);
            else if (k == "samples_used")
                r.samplesUsed = parseInt(k, v);
            else if (k == "wall_seconds")
                r.wallSeconds = parseDouble(k, v);
            else if (k == "mapping")
                r.best = sched::Mapping::fromText(v);
            else if (k == "convergence")
                r.convergence = splitDoubles(k, v);
            else if (k == "metrics_json")
                r.metricsJson = v;
            else if (k == "front_point")
                r.front.push_back(mo::MoPoint::fromText(v));
            else
                throw std::invalid_argument(
                    "RunReport: unknown key '" + k + "'");
        });
    return r;
}

std::string
RunReport::csvHeader()
{
    return "task,setting,flexible,system_bw_gbps,group_size,bw_policy,"
           "workload_seed,method,objective,sample_budget,seed,threads,"
           "best_fitness,makespan_seconds,throughput_gflops,energy_joules,"
           "samples_used,wall_seconds";
}

std::string
RunReport::csvRow() const
{
    // In multi-objective mode bestFitness is the PRIMARY objective
    // (objectives[0]); label it as such, not with the ignored scalar key.
    sched::Objective reported = search.objectives.empty()
                                    ? search.objective
                                    : search.objectives[0];
    std::ostringstream os;
    os << dnn::taskTypeName(problem.task) << ','
       << accel::settingName(problem.setting) << ','
       << (problem.flexible ? 1 : 0) << ','
       << formatDouble(problem.systemBwGbps) << ',' << problem.groupSize
       << ',' << sched::bwPolicyName(problem.bwPolicy) << ','
       << problem.workloadSeed << ',' << method << ','
       << sched::objectiveName(reported) << ','
       << search.sampleBudget << ',' << search.seed << ','
       << search.threads << ',' << formatDouble(bestFitness) << ','
       << formatDouble(makespanSeconds) << ','
       << formatDouble(throughputGflops) << ','
       << formatDouble(energyJoules) << ',' << samplesUsed << ','
       << formatDouble(wallSeconds);
    return os.str();
}

std::string
RunReport::frontCsv() const
{
    if (front.empty())
        return "";
    std::ostringstream os;
    os << "point";
    for (sched::Objective o : search.objectives)
        os << ',' << sched::objectiveName(o);
    os << ",mapping\n";
    for (size_t i = 0; i < front.size(); ++i) {
        os << i;
        for (double v : front[i].objs)
            os << ',' << formatDouble(v);
        os << ',' << front[i].m.toText() << '\n';
    }
    return os.str();
}

mo::ParetoArchive
RunReport::frontArchive() const
{
    mo::ParetoArchive arch(search.objectives);
    for (const mo::MoPoint& p : front)
        arch.insert(p);
    return arch;
}

std::string
RunReport::summaryLine() const
{
    sched::Objective reported = search.objectives.empty()
                                    ? search.objective
                                    : search.objectives[0];
    char buf[256];
    // magma-lint: allow(double-format): console summary line; the
    // round-trip RunReport serialization in toText() uses %.17g.
    std::snprintf(buf, sizeof(buf),
                  "%-14s fitness %12.3f (%s)   throughput %9.2f GFLOP/s   "
                  "makespan %.4g s   samples %lld",
                  method.c_str(), bestFitness,
                  sched::objectiveName(reported).c_str(),
                  throughputGflops, makespanSeconds,
                  static_cast<long long>(samplesUsed));
    return buf;
}

// ------------------------------------------------- problem builders ---

std::unique_ptr<m3e::Problem>
buildProblem(const ProblemSpec& spec, sched::Objective objective)
{
    return spec.flexible
               ? m3e::makeFlexibleProblem(spec.task, spec.setting,
                                          spec.systemBwGbps, spec.groupSize,
                                          spec.workloadSeed, objective,
                                          spec.bwPolicy)
               : m3e::makeProblem(spec.task, spec.setting,
                                  spec.systemBwGbps, spec.groupSize,
                                  spec.workloadSeed, objective,
                                  spec.bwPolicy);
}

// ------------------------------------------------------------ Runner ---

m3e::Problem&
Runner::problem(const ProblemSpec& spec, sched::Objective objective)
{
    if (!cached_ || !(cachedSpec_ == spec) || cachedObjective_ != objective) {
        cached_ = buildProblem(spec, objective);
        cachedSpec_ = spec;
        cachedObjective_ = objective;
    }
    return *cached_;
}

RunReport
Runner::run(const ProblemSpec& ps, const SearchSpec& ss,
            opt::SearchResult* raw)
{
    // Multi-objective mode: the evaluator is fixed on the PRIMARY
    // objective (entry 0) so scalar summaries — bestFitness, samples on
    // the shared meter — read consistently; the search itself scores
    // all objectives from one simulation per candidate.
    const bool multi = !ss.objectives.empty();
    sched::Objective primary = multi ? ss.objectives[0] : ss.objective;

    m3e::Problem& prob = problem(ps, primary);
    sched::MappingEvaluator& eval = prob.evaluator();

    std::unique_ptr<opt::Optimizer> optimizer =
        OptimizerRegistry::global().make(ss.method, ss.seed);

    opt::SearchOptions opts;
    opts.sampleBudget = ss.sampleBudget;
    opts.threads = ss.threads;
    opts.evalMode = ss.eval;
    opts.recordConvergence = ss.recordConvergence;
    opts.recordSamples = ss.recordSamples;

    RunReport rep;
    rep.problem = ps;
    rep.search = ss;
    rep.method = optimizer->name();

    if (multi) {
        auto* mo_method = dynamic_cast<mo::MultiObjective*>(optimizer.get());
        if (!mo_method)
            throw std::invalid_argument(
                "method '" + rep.method +
                "' is single-objective; a SearchSpec with objectives= "
                "needs a mo::MultiObjective method (e.g. method=nsga2)");

        auto t0 = std::chrono::steady_clock::now();
        mo::MoSearchResult res =
            mo_method->searchMo(eval, ss.objectives, opts);
        rep.wallSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

        rep.front = res.front.points();
        rep.samplesUsed = res.samplesUsed;
        // `best` is the front member maximizing the primary objective
        // (first wins ties — insertion order is deterministic).
        if (!rep.front.empty()) {
            size_t bi = 0;
            for (size_t i = 1; i < rep.front.size(); ++i)
                if (rep.front[i].objs[0] > rep.front[bi].objs[0])
                    bi = i;
            rep.best = rep.front[bi].m;
            rep.bestFitness = rep.front[bi].objs[0];
            sched::ScheduleResult sim = eval.evaluate(rep.best);
            rep.makespanSeconds = sim.makespanSeconds;
            rep.throughputGflops =
                eval.throughputGflops(sim.makespanSeconds);
            rep.energyJoules = eval.totalJoules(rep.best);
        }
        rep.metricsJson = captureMetricsJson();
        if (raw)
            *raw = opt::SearchResult{};
        return rep;
    }

    auto t0 = std::chrono::steady_clock::now();
    opt::SearchResult res = optimizer->search(eval, opts);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    sched::ScheduleResult sim = eval.evaluate(res.best);

    rep.best = res.best;
    rep.bestFitness = res.bestFitness;
    rep.makespanSeconds = sim.makespanSeconds;
    rep.throughputGflops = eval.throughputGflops(sim.makespanSeconds);
    rep.energyJoules = eval.totalJoules(res.best);
    rep.samplesUsed = res.samplesUsed;
    rep.wallSeconds = wall;
    rep.convergence = res.convergence;
    rep.metricsJson = captureMetricsJson();
    if (raw)
        *raw = std::move(res);
    return rep;
}

}  // namespace magma::api
