#include "api/runner.h"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "api/registry.h"
#include "api/textio.h"

namespace magma::api {

using namespace textio;

// --------------------------------------------------------- RunReport ---

namespace {

constexpr const char* kReportHeader = "magma-run-report v1";

std::string
joinDoubles(const std::vector<double>& vs)
{
    std::ostringstream os;
    for (size_t i = 0; i < vs.size(); ++i)
        os << (i ? " " : "") << formatDouble(vs[i]);
    return os.str();
}

std::vector<double>
splitDoubles(const std::string& key, const std::string& line)
{
    std::vector<double> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(parseDouble(key, tok));
    return out;
}

}  // namespace

std::string
RunReport::toText() const
{
    std::ostringstream os;
    os << kReportHeader << '\n'
       << problem.toText() << search.toText()
       // "method" is the SearchSpec's key (possibly an alias);
       // "resolved_method" is the canonical name the registry ran.
       << "resolved_method=" << method << '\n'
       << "best_fitness=" << formatDouble(bestFitness) << '\n'
       << "makespan_seconds=" << formatDouble(makespanSeconds) << '\n'
       << "throughput_gflops=" << formatDouble(throughputGflops) << '\n'
       << "energy_joules=" << formatDouble(energyJoules) << '\n'
       << "samples_used=" << samplesUsed << '\n'
       << "wall_seconds=" << formatDouble(wallSeconds) << '\n'
       << "mapping=" << best.toText() << '\n'
       << "convergence=" << joinDoubles(convergence) << '\n';
    return os.str();
}

RunReport
RunReport::fromText(const std::string& text)
{
    size_t nl = text.find('\n');
    if (trim(text.substr(0, nl)) != kReportHeader)
        throw std::invalid_argument(
            "RunReport::fromText: missing 'magma-run-report v1' header");
    RunReport r;
    forEachKeyValue(
        text.substr(nl == std::string::npos ? text.size() : nl + 1),
        [&](const std::string& k, const std::string& v) {
            if (k == "resolved_method") {
                r.method = v;
                return;
            }
            if (r.problem.applyKey(k, v) || r.search.applyKey(k, v))
                return;
            if (k == "best_fitness")
                r.bestFitness = parseDouble(k, v);
            else if (k == "makespan_seconds")
                r.makespanSeconds = parseDouble(k, v);
            else if (k == "throughput_gflops")
                r.throughputGflops = parseDouble(k, v);
            else if (k == "energy_joules")
                r.energyJoules = parseDouble(k, v);
            else if (k == "samples_used")
                r.samplesUsed = parseInt(k, v);
            else if (k == "wall_seconds")
                r.wallSeconds = parseDouble(k, v);
            else if (k == "mapping")
                r.best = sched::Mapping::fromText(v);
            else if (k == "convergence")
                r.convergence = splitDoubles(k, v);
            else
                throw std::invalid_argument(
                    "RunReport: unknown key '" + k + "'");
        });
    return r;
}

std::string
RunReport::csvHeader()
{
    return "task,setting,flexible,system_bw_gbps,group_size,bw_policy,"
           "workload_seed,method,objective,sample_budget,seed,threads,"
           "best_fitness,makespan_seconds,throughput_gflops,energy_joules,"
           "samples_used,wall_seconds";
}

std::string
RunReport::csvRow() const
{
    std::ostringstream os;
    os << dnn::taskTypeName(problem.task) << ','
       << accel::settingName(problem.setting) << ','
       << (problem.flexible ? 1 : 0) << ','
       << formatDouble(problem.systemBwGbps) << ',' << problem.groupSize
       << ',' << sched::bwPolicyName(problem.bwPolicy) << ','
       << problem.workloadSeed << ',' << method << ','
       << sched::objectiveName(search.objective) << ','
       << search.sampleBudget << ',' << search.seed << ','
       << search.threads << ',' << formatDouble(bestFitness) << ','
       << formatDouble(makespanSeconds) << ','
       << formatDouble(throughputGflops) << ','
       << formatDouble(energyJoules) << ',' << samplesUsed << ','
       << formatDouble(wallSeconds);
    return os.str();
}

std::string
RunReport::summaryLine() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-14s fitness %12.3f (%s)   throughput %9.2f GFLOP/s   "
                  "makespan %.4g s   samples %lld",
                  method.c_str(), bestFitness,
                  sched::objectiveName(search.objective).c_str(),
                  throughputGflops, makespanSeconds,
                  static_cast<long long>(samplesUsed));
    return buf;
}

// ------------------------------------------------- problem builders ---

std::unique_ptr<m3e::Problem>
buildProblem(const ProblemSpec& spec, sched::Objective objective)
{
    return spec.flexible
               ? m3e::makeFlexibleProblem(spec.task, spec.setting,
                                          spec.systemBwGbps, spec.groupSize,
                                          spec.workloadSeed, objective,
                                          spec.bwPolicy)
               : m3e::makeProblem(spec.task, spec.setting,
                                  spec.systemBwGbps, spec.groupSize,
                                  spec.workloadSeed, objective,
                                  spec.bwPolicy);
}

// ------------------------------------------------------------ Runner ---

m3e::Problem&
Runner::problem(const ProblemSpec& spec, sched::Objective objective)
{
    if (!cached_ || !(cachedSpec_ == spec) || cachedObjective_ != objective) {
        cached_ = buildProblem(spec, objective);
        cachedSpec_ = spec;
        cachedObjective_ = objective;
    }
    return *cached_;
}

RunReport
Runner::run(const ProblemSpec& ps, const SearchSpec& ss,
            opt::SearchResult* raw)
{
    m3e::Problem& prob = problem(ps, ss.objective);
    sched::MappingEvaluator& eval = prob.evaluator();

    std::unique_ptr<opt::Optimizer> optimizer =
        OptimizerRegistry::global().make(ss.method, ss.seed);

    opt::SearchOptions opts;
    opts.sampleBudget = ss.sampleBudget;
    opts.threads = ss.threads;
    opts.evalMode = ss.eval;
    opts.recordConvergence = ss.recordConvergence;
    opts.recordSamples = ss.recordSamples;

    auto t0 = std::chrono::steady_clock::now();
    opt::SearchResult res = optimizer->search(eval, opts);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    sched::ScheduleResult sim = eval.evaluate(res.best);

    RunReport rep;
    rep.problem = ps;
    rep.search = ss;
    rep.method = optimizer->name();
    rep.best = res.best;
    rep.bestFitness = res.bestFitness;
    rep.makespanSeconds = sim.makespanSeconds;
    rep.throughputGflops = eval.throughputGflops(sim.makespanSeconds);
    rep.energyJoules = eval.totalJoules(res.best);
    rep.samplesUsed = res.samplesUsed;
    rep.wallSeconds = wall;
    rep.convergence = res.convergence;
    if (raw)
        *raw = std::move(res);
    return rep;
}

}  // namespace magma::api
