/**
 * @file
 * Registration of the built-in mapper line-up (Table IV + the Random
 * reference) with the OptimizerRegistry, in the paper's plot order and
 * with the paper's hyper-parameters (each class's defaults).
 *
 * This is the replacement for the old m3e::factory enum switch: the
 * registry is the source of truth, m3e::makeOptimizer is now a
 * compatibility wrapper over these entries.
 */

#include "api/registry.h"

#include "baselines/ai_mt_like.h"
#include "baselines/herald_like.h"
#include "mo/nsga2.h"
#include "opt/cma_es.h"
#include "opt/de.h"
#include "opt/magma_ga.h"
#include "opt/pso.h"
#include "opt/random_search.h"
#include "opt/std_ga.h"
#include "opt/tbpsa.h"
#include "rl/a2c.h"
#include "rl/ppo2.h"

namespace magma::api::detail {

namespace {

template <typename T>
OptimizerFactory
simple()
{
    return [](uint64_t seed) { return std::make_unique<T>(seed); };
}

}  // namespace

void
registerBuiltinOptimizers(OptimizerRegistry& registry)
{
    registry.add("Herald-like", {"herald"},
                 simple<baselines::HeraldLike>());
    registry.add("AI-MT-like", {"ai-mt", "aimt"},
                 simple<baselines::AiMtLike>());
    registry.add("PSO", {}, simple<opt::Pso>());
    registry.add("CMA", {"cma-es"}, simple<opt::CmaEs>());
    registry.add("DE", {}, simple<opt::De>());
    registry.add("TBPSA", {}, simple<opt::Tbpsa>());
    registry.add("stdGA", {"std-ga"}, simple<opt::StdGa>());
    registry.add("RL A2C", {"a2c", "rl-a2c"}, simple<rl::A2c>());
    registry.add("RL PPO2", {"ppo2", "rl-ppo2"}, simple<rl::Ppo2>());
    registry.add("MAGMA", {"magma-ga"}, simple<opt::MagmaGa>());
    registry.add("Random", {"random-search"},
                 simple<opt::RandomSearch>());
    // Appended after the Table IV line-up so the paper-order prefix of
    // names() is preserved. The only built-in mo::MultiObjective method:
    // SearchSpec `objectives=` dispatches to its Pareto search.
    registry.add("NSGA-II", {"nsga2", "nsga-ii"}, simple<mo::Nsga2>());
}

}  // namespace magma::api::detail
