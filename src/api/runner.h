#ifndef MAGMA_API_RUNNER_H_
#define MAGMA_API_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "api/spec.h"
#include "m3e/problem.h"
#include "mo/pareto.h"
#include "opt/optimizer.h"

namespace magma::api {

/**
 * Structured outcome of one experiment: the input specs echoed back (a
 * report is self-describing and replayable), the best mapping and its
 * quality under every reporting lens, and the search cost.
 *
 * Text form: "magma-run-report v1" header, then the key=value blocks of
 * both specs followed by the result keys — exact round-trip
 * (fromText(toText(r)) == r bitwise), so reports are durable artifacts
 * the same way specs and the MappingStore are. csvRow()/csvHeader() give
 * the one-line spreadsheet form.
 */
struct RunReport {
    ProblemSpec problem;
    SearchSpec search;
    std::string method;  ///< canonical registry name actually run

    sched::Mapping best;
    double bestFitness = 0.0;  ///< objective value of `best`
    double makespanSeconds = 0.0;
    double throughputGflops = 0.0;
    double energyJoules = 0.0;
    int64_t samplesUsed = 0;
    double wallSeconds = 0.0;
    /** best-so-far fitness per sample (when search.recordConvergence). */
    std::vector<double> convergence;
    /**
     * Pareto front of search.objectives (multi-objective runs only;
     * empty on the scalar path): mutually non-dominated points in
     * archive insertion order, each carrying its mapping and one
     * objective value per search.objectives entry. `best` is the member
     * maximizing the primary objective. Serialized as one front_point=
     * line per member; round-trips bitwise like every other field.
     */
    std::vector<mo::MoPoint> front;
    /**
     * Metrics snapshot attached by Runner::run when the observability
     * level is not Off: the obs::SnapshotWriter schema-1 JSON of the
     * process registry captured right after the search (single line —
     * the JSON writer emits no newlines — so it rides the text format
     * as an ordinary metrics_json= key; omitted when empty).
     * obs::MetricsSnapshot::fromJson parses it back.
     */
    std::string metricsJson;

    std::string toText() const;
    /** Exact inverse of toText(); throws std::invalid_argument. */
    static RunReport fromText(const std::string& text);

    static std::string csvHeader();
    std::string csvRow() const;

    /**
     * CSV of the Pareto front: "point,<objective names...>,mapping"
     * header plus one row per front member — the spreadsheet form of
     * the trade-off curve. Empty string when there is no front.
     */
    std::string frontCsv() const;

    /** Front as a persistable archive (objectives from the spec). */
    mo::ParetoArchive frontArchive() const;

    /** One human-readable result line for CLIs and logs. */
    std::string summaryLine() const;

    bool operator==(const RunReport&) const = default;
};

/** Wire the full m3e::Problem a ProblemSpec describes. */
std::unique_ptr<m3e::Problem> buildProblem(
    const ProblemSpec& spec,
    sched::Objective objective = sched::Objective::Throughput);

/**
 * The one-call facade from specs to a RunReport: builds the problem,
 * constructs the method through the OptimizerRegistry, runs the search
 * and fills the report. For fixed seeds the result is bitwise identical
 * to hand-wiring m3e::makeProblem + m3e::makeOptimizer (tests/test_api.cc
 * locks this in).
 *
 * The Runner caches the problem of the last (ProblemSpec, objective)
 * pair, so sweeping methods over one workload (m3e_cli --all) re-uses
 * the Job Analyzer tables. Not thread-safe; use one Runner per thread.
 */
class Runner {
  public:
    Runner() = default;

    RunReport run(const ProblemSpec& problem, const SearchSpec& search,
                  opt::SearchResult* raw = nullptr);
    RunReport run(const ExperimentSpec& exp,
                  opt::SearchResult* raw = nullptr)
    {
        return run(exp.problem, exp.search, raw);
    }

    /** The (cached) problem for a spec — for header prints, timelines and
     * other post-run inspection against the same evaluator. */
    m3e::Problem& problem(const ProblemSpec& spec,
                          sched::Objective objective);

  private:
    std::unique_ptr<m3e::Problem> cached_;
    ProblemSpec cachedSpec_;
    sched::Objective cachedObjective_ = sched::Objective::Throughput;
};

}  // namespace magma::api

#endif  // MAGMA_API_RUNNER_H_
