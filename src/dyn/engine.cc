#include "dyn/engine.h"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "api/registry.h"
#include "dnn/workload.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "opt/magma_ga.h"
#include "opt/warm_start.h"
#include "sched/evaluator.h"
#include "serve/fingerprint.h"

namespace magma::dyn {

namespace {

/** Per-event deterministic seed: replays depend on (trace, config)
 * only, never on wall clock or thread interleaving. */
uint64_t
eventSeed(uint64_t base_seed, int64_t event_index)
{
    return base_seed +
           0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(event_index + 1);
}

}  // namespace

std::string
remapSourceName(RemapSource s)
{
    switch (s) {
    case RemapSource::Cold:
        return "cold";
    case RemapSource::Previous:
        return "previous";
    case RemapSource::Store:
        return "store";
    case RemapSource::Archive:
        return "archive";
    }
    return "?";
}

EventEngine::EventEngine(DynConfig cfg) : cfg_(std::move(cfg)) {}

void
EventEngine::reset(const api::ProblemSpec& base)
{
    base_ = base;
    platform_ = api::buildPlatform(base);
    ready_ = true;
    eventIndex_ = 0;
    bundles_.clear();
    mapping_ = sched::Mapping{};
    group_ = dnn::JobGroup{};
    ids_.clear();
    placement_.clear();
}

int
EventEngine::activeJobs() const
{
    int total = 0;
    for (const Bundle& b : bundles_)
        total += static_cast<int>(b.jobs.size());
    return total;
}

dnn::JobGroup
EventEngine::buildGroup(std::vector<std::string>* ids) const
{
    dnn::JobGroup group;
    group.task = base_.task;
    ids->clear();
    for (const Bundle& b : bundles_) {
        for (size_t i = 0; i < b.jobs.size(); ++i) {
            group.jobs.push_back(b.jobs[i]);
            // Job ids are genome positions everywhere downstream
            // (decode's tie-break, the analysis table), so re-number the
            // concatenation; the bundle identity carries continuity.
            group.jobs.back().id = static_cast<int>(group.jobs.size()) - 1;
            ids->push_back(b.name + '@' + std::to_string(b.gen) + '#' +
                           std::to_string(i));
        }
    }
    return group;
}

EventRecord
EventEngine::step(const WorkloadEvent& ev)
{
    if (!ready_)
        throw std::logic_error("EventEngine::step before reset()");

    EventRecord rec;
    rec.event = ev;

    // 1. Rebuild the active set. Swap keeps the bundle's slot (and thus
    // the group order) but regenerates its jobs, so swapped jobs look
    // new to the reconfig bill while every other bundle's jobs keep
    // their identities.
    auto found = std::find_if(
        bundles_.begin(), bundles_.end(),
        [&](const Bundle& b) { return b.name == ev.bundle; });
    switch (ev.kind) {
    case EventKind::Arrive: {
        if (found != bundles_.end())
            throw std::invalid_argument(
                "EventEngine: arrive of active bundle '" + ev.bundle +
                "'");
        dnn::WorkloadGenerator gen(ev.seed);
        bundles_.push_back(
            Bundle{ev.bundle, 0, gen.makeGroup(ev.task, ev.jobs).jobs});
        break;
    }
    case EventKind::Depart:
        if (found == bundles_.end())
            throw std::invalid_argument(
                "EventEngine: depart of inactive bundle '" + ev.bundle +
                "'");
        bundles_.erase(found);
        break;
    case EventKind::Swap: {
        if (found == bundles_.end())
            throw std::invalid_argument(
                "EventEngine: swap of inactive bundle '" + ev.bundle +
                "'");
        dnn::WorkloadGenerator gen(ev.seed ^ 0x5a5a5a5aULL);
        found->jobs = gen.makeGroup(ev.task, ev.jobs).jobs;
        // New generation: the regenerated jobs must not inherit the old
        // bundle's identities (they are different jobs — the reconfig
        // bill and the matched transfer both treat them as new).
        ++found->gen;
        break;
    }
    }

    const int64_t event_index = eventIndex_++;
    bool counters = obs::countersOn();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    if (counters)
        reg.counter("dyn.events").add();

    std::vector<std::string> ids;
    dnn::JobGroup group = buildGroup(&ids);
    rec.activeJobs = group.size();
    if (group.jobs.empty()) {
        // The platform drained; nothing to map until the next arrival.
        mapping_ = sched::Mapping{};
        group_ = std::move(group);
        ids_.clear();
        placement_.clear();
        return rec;
    }

    sched::MappingEvaluator eval(group, platform_, model_, base_.bwPolicy,
                                 nullptr, cfg_.search.objective);
    const int pop = std::clamp(eval.groupSize(), 8, 100);
    const int64_t warm_budget =
        cfg_.remapBudget > 0
            ? cfg_.remapBudget
            : std::max<int64_t>(pop, cfg_.search.sampleBudget / 4);
    const uint64_t seed = eventSeed(cfg_.search.seed, event_index);
    common::Rng adapt_rng(seed ^ 0xad4f7ULL);

    // 2. Seed the re-map, best knowledge first: the running mapping
    // (exact identity match), then the serve store's fingerprint tiers,
    // then Pareto-archive members, then cold.
    opt::SearchOptions opts;
    opts.sampleBudget = cfg_.search.sampleBudget;
    opts.threads = cfg_.search.threads;
    opts.evalMode = cfg_.search.eval;
    serve::Fingerprint fp =
        serve::fingerprintOf(group, platform_, cfg_.search.objective);
    std::optional<serve::MappingStore::Hit> hit;
    if (cfg_.warmRemap && mapping_.size() > 0) {
        PROFILE_SCOPE("dyn.remap.tier_previous");
        std::map<std::string, int> prev_index;
        for (size_t i = 0; i < ids_.size(); ++i)
            prev_index[ids_[i]] = static_cast<int>(i);
        std::vector<int> match(ids.size(), -1);
        for (size_t i = 0; i < ids.size(); ++i)
            if (auto it = prev_index.find(ids[i]); it != prev_index.end())
                match[i] = it->second;
        sched::Mapping base = opt::transfer::adaptMatched(
            mapping_, group_, group, match, eval.numAccels(), adapt_rng);
        opts.seeds = opt::transfer::seedsAround(base, pop,
                                                eval.numAccels(),
                                                adapt_rng);
        opts.sampleBudget = warm_budget;
        rec.source = RemapSource::Previous;
    } else if (cfg_.warmRemap && cfg_.store &&
               (hit = cfg_.store->lookup(fp))) {
        PROFILE_SCOPE("dyn.remap.tier_store");
        sched::Mapping base =
            hit->entry.group.jobs.empty()
                ? opt::transfer::adaptPositional(hit->entry.mapping,
                                                 eval.groupSize(),
                                                 eval.numAccels())
                : opt::transfer::adaptJobMatched(
                      hit->entry.mapping, hit->entry.group, group,
                      eval.numAccels(), adapt_rng);
        opts.seeds = opt::transfer::seedsAround(base, pop,
                                                eval.numAccels(),
                                                adapt_rng);
        opts.sampleBudget = warm_budget;
        rec.source = RemapSource::Store;
    } else if (cfg_.warmRemap && cfg_.archive && !cfg_.archive->empty()) {
        PROFILE_SCOPE("dyn.remap.tier_archive");
        // Archive members are generic knowledge, so this tier keeps the
        // FULL cold budget (a quality head start, not a cost cut) — the
        // same policy as serve::MappingService's third tier.
        std::vector<sched::Mapping> adapted;
        for (const sched::Mapping& m : cfg_.archive->seedMappings()) {
            if (static_cast<int>(adapted.size()) >= pop)
                break;
            adapted.push_back(opt::transfer::adaptPositional(
                m, eval.groupSize(), eval.numAccels()));
        }
        opts.seeds = adapted;
        for (size_t k = 0; static_cast<int>(opts.seeds.size()) < pop;
             ++k) {
            sched::Mapping m = adapted[k % adapted.size()];
            opt::MagmaGa::mutate(m, 0.05, eval.numAccels(), adapt_rng);
            opts.seeds.push_back(std::move(m));
        }
        rec.source = RemapSource::Archive;
    }
    rec.budget = opts.sampleBudget;

    // 3. Search. MAGMA keeps the paper's population-tracks-group-size
    // rule (the registry factory uses a fixed default).
    std::string method =
        api::OptimizerRegistry::global().resolve(cfg_.search.method);
    std::unique_ptr<opt::Optimizer> optimizer;
    if (method == "MAGMA") {
        opt::MagmaConfig ga;
        ga.population = pop;
        optimizer = std::make_unique<opt::MagmaGa>(seed, ga);
    } else {
        optimizer = api::OptimizerRegistry::global().make(method, seed);
    }
    opt::SearchResult res;
    {
        // span payload: i = event index, a = best fitness,
        // b = samples used
        obs::Span span("dyn.remap", event_index);
        PROFILE_SCOPE("dyn.remap.search");
        res = optimizer->search(eval, opts);
        span.payload(res.bestFitness,
                     static_cast<double>(res.samplesUsed));
    }
    if (counters) {
        reg.counter("dyn.remaps").add();
        reg.histogram("dyn.remap_samples")
            .record(static_cast<double>(res.samplesUsed));
    }

    // 4. Bill the transition and simulate the schedule with the stalls
    // inside it.
    rec.charge = computeReconfig(placement_, ids, group, res.best,
                                 base_.systemBwGbps, cfg_.reconfig);
    sched::ScheduleResult with_setup =
        eval.evaluateWithSetup(res.best, rec.charge.setupSeconds);
    sched::ScheduleResult steady = eval.evaluate(res.best);
    rec.samplesUsed = res.samplesUsed;
    rec.fitness = res.bestFitness;
    rec.makespanSeconds = with_setup.makespanSeconds;
    rec.steadyMakespanSeconds = steady.makespanSeconds;
    rec.mapping = res.best;
    if (counters && rec.charge.totalStallSeconds > 0.0)
        reg.histogram("dyn.stall_seconds")
            .record(rec.charge.totalStallSeconds);

    if (cfg_.store)
        cfg_.store->update(fp, group.task, res.best, group,
                           res.bestFitness, res.samplesUsed);

    // 5. Commit the running solution.
    mapping_ = res.best;
    group_ = std::move(group);
    ids_ = std::move(ids);
    placement_.clear();
    for (size_t i = 0; i < ids_.size(); ++i)
        placement_.emplace_back(ids_[i], mapping_.accelSel[i]);
    return rec;
}

DynResult
EventEngine::replay(const WorkloadTrace& trace)
{
    trace.validate();
    reset(trace.base);
    DynResult result;
    result.records.reserve(trace.events.size());
    for (const WorkloadEvent& ev : trace.events) {
        EventRecord rec = step(ev);
        result.totalSamples += rec.samplesUsed;
        result.totalStallSeconds += rec.charge.totalStallSeconds;
        result.totalReloadBytes += rec.charge.reloadBytes;
        result.finalMakespanSeconds = rec.steadyMakespanSeconds;
        result.finalFitness = rec.fitness;
        result.records.push_back(std::move(rec));
    }
    return result;
}

}  // namespace magma::dyn
