#include "dyn/reconfig.h"

#include <cassert>
#include <map>

namespace magma::dyn {

ReconfigCharge
computeReconfig(
    const std::vector<std::pair<std::string, int>>& prev_accel_of,
    const std::vector<std::string>& ids, const dnn::JobGroup& group,
    const sched::Mapping& next, double system_bw_gbps,
    const ReconfigSpec& spec)
{
    assert(static_cast<int>(ids.size()) == group.size());
    assert(next.size() == group.size());
    std::map<std::string, int> prev(prev_accel_of.begin(),
                                    prev_accel_of.end());

    ReconfigCharge charge;
    charge.setupSeconds.assign(ids.size(), 0.0);
    for (size_t i = 0; i < ids.size(); ++i) {
        auto it = prev.find(ids[i]);
        bool is_new = it == prev.end();
        bool moved = !is_new && it->second != next.accelSel[i];
        if (is_new)
            ++charge.newJobs;
        else if (moved)
            ++charge.movedJobs;
        else
            ++charge.keptJobs;
        if (!(moved || (is_new && spec.chargeArrivals)))
            continue;
        double setup = spec.retileStallSeconds;
        if (spec.chargeWeightReload) {
            double bytes =
                static_cast<double>(group.jobs[i].layer.weightElems()) *
                spec.bytesPerElem;
            charge.reloadBytes += bytes;
            setup += bytes / (system_bw_gbps * 1e9);
        }
        charge.setupSeconds[i] = setup;
        charge.totalStallSeconds += setup;
    }
    return charge;
}

}  // namespace magma::dyn
