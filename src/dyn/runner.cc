#include "dyn/runner.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/textnum.h"
#include "obs/json_writer.h"
#include "obs/snapshot.h"
#include "sched/evaluator.h"

namespace magma::dyn {

std::string
eventLine(int64_t index, const EventRecord& rec)
{
    std::ostringstream os;
    os << "event " << index << " t="
       << common::formatDouble(rec.event.timeSeconds) << ' '
       << eventKindName(rec.event.kind) << " '" << rec.event.bundle
       << "' active=" << rec.activeJobs;
    if (rec.activeJobs == 0) {
        os << " idle";
        return os.str();
    }
    os << " source=" << remapSourceName(rec.source)
       << " budget=" << rec.budget << " samples=" << rec.samplesUsed
       << " fitness=" << common::formatDouble(rec.fitness)
       << " makespan=" << common::formatDouble(rec.makespanSeconds)
       << " steady=" << common::formatDouble(rec.steadyMakespanSeconds)
       << " moved=" << rec.charge.movedJobs
       << " new=" << rec.charge.newJobs
       << " kept=" << rec.charge.keptJobs << " stall="
       << common::formatDouble(rec.charge.totalStallSeconds);
    return os.str();
}

std::string
summaryLine(const DynResult& result)
{
    std::ostringstream os;
    os << "replayed " << result.records.size()
       << " events: samples=" << result.totalSamples << " stall="
       << common::formatDouble(result.totalStallSeconds) << " reload_bytes="
       << common::formatDouble(result.totalReloadBytes) << " final_makespan="
       << common::formatDouble(result.finalMakespanSeconds)
       << " final_fitness=" << common::formatDouble(result.finalFitness);
    return os.str();
}

std::string
timelineJson(const WorkloadTrace& trace, const DynConfig& cfg,
             const DynReport& report)
{
    obs::JsonWriter w;
    obs::SnapshotWriter::beginBenchConfig(
        w, "dyn_timeline", false, cfg.search.seed,
        dnn::taskTypeName(trace.base.task),
        accel::settingName(trace.base.setting), trace.base.systemBwGbps,
        trace.base.groupSize);
    w.field("method", cfg.search.method);
    w.field("objective", sched::objectiveName(cfg.search.objective));
    w.field("sample_budget", cfg.search.sampleBudget);
    w.field("remap_budget", cfg.remapBudget);
    w.field("warm_remap", cfg.warmRemap);
    w.field("retile_stall_seconds", cfg.reconfig.retileStallSeconds);
    w.field("charge_weight_reload", cfg.reconfig.chargeWeightReload);
    w.field("charge_arrivals", cfg.reconfig.chargeArrivals);
    w.field("events", static_cast<int64_t>(trace.events.size()));
    w.endObject();  // config

    const DynResult& r = report.result;
    w.beginObject("metrics");
    w.field("total_samples", r.totalSamples);
    w.field("total_stall_seconds", r.totalStallSeconds);
    w.field("total_reload_bytes", r.totalReloadBytes);
    w.field("final_makespan_seconds", r.finalMakespanSeconds);
    w.field("final_fitness", r.finalFitness);
    w.field("wall_seconds", report.wallSeconds);
    w.endObject();

    w.beginArray("samples");
    for (size_t i = 0; i < r.records.size(); ++i) {
        const EventRecord& rec = r.records[i];
        w.beginObject();
        w.field("event", static_cast<int64_t>(i));
        w.field("t_seconds", rec.event.timeSeconds);
        w.field("kind", eventKindName(rec.event.kind));
        w.field("bundle", rec.event.bundle);
        w.field("active_jobs", rec.activeJobs);
        w.field("source", remapSourceName(rec.source));
        w.field("budget", rec.budget);
        w.field("samples", rec.samplesUsed);
        w.field("fitness", rec.fitness);
        w.field("makespan_seconds", rec.makespanSeconds);
        w.field("steady_makespan_seconds", rec.steadyMakespanSeconds);
        w.field("moved_jobs", rec.charge.movedJobs);
        w.field("new_jobs", rec.charge.newJobs);
        w.field("kept_jobs", rec.charge.keptJobs);
        w.field("reload_bytes", rec.charge.reloadBytes);
        w.field("stall_seconds", rec.charge.totalStallSeconds);
        w.endObject();
    }
    w.endArray();
    w.endObject();  // root
    return w.str();
}

DynReport
Runner::run(const WorkloadTrace& trace)
{
    auto t0 = std::chrono::steady_clock::now();
    DynReport report;
    trace.validate();
    engine_.reset(trace.base);
    for (size_t i = 0; i < trace.events.size(); ++i) {
        EventRecord rec = engine_.step(trace.events[i]);
        if (opts_.printEvents)
            std::printf("%s\n",
                        eventLine(static_cast<int64_t>(i), rec).c_str());
        report.result.totalSamples += rec.samplesUsed;
        report.result.totalStallSeconds += rec.charge.totalStallSeconds;
        report.result.totalReloadBytes += rec.charge.reloadBytes;
        report.result.finalMakespanSeconds = rec.steadyMakespanSeconds;
        report.result.finalFitness = rec.fitness;
        report.result.records.push_back(std::move(rec));
    }
    report.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    if (opts_.printEvents)
        std::printf("%s\n", summaryLine(report.result).c_str());
    if (!opts_.timelinePath.empty()) {
        std::string json = timelineJson(trace, cfg_, report);
        std::FILE* f = std::fopen(opts_.timelinePath.c_str(), "w");
        if (!f)
            throw std::runtime_error("cannot write timeline '" +
                                     opts_.timelinePath + "'");
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
    }
    return report;
}

}  // namespace magma::dyn
