#include "dyn/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "api/textio.h"

namespace magma::dyn {

namespace {

constexpr const char* kHeader = "magma-workload-trace v1";

}  // namespace

std::string
eventKindName(EventKind k)
{
    switch (k) {
    case EventKind::Arrive:
        return "arrive";
    case EventKind::Depart:
        return "depart";
    case EventKind::Swap:
        return "swap";
    }
    return "?";
}

EventKind
eventKindFromName(const std::string& name)
{
    for (EventKind k :
         {EventKind::Arrive, EventKind::Depart, EventKind::Swap})
        if (eventKindName(k) == name)
            return k;
    throw std::invalid_argument("unknown event kind '" + name +
                                "' (arrive|depart|swap)");
}

bool
validBundleName(const std::string& name)
{
    if (name.empty())
        return false;
    if (name.find('\n') != std::string::npos ||
        name.find('\r') != std::string::npos)
        return false;
    auto isSpace = [](char c) { return c == ' ' || c == '\t'; };
    return !isSpace(name.front()) && !isSpace(name.back());
}

std::string
WorkloadEvent::toText() const
{
    std::ostringstream os;
    os << "t=" << common::formatDouble(timeSeconds)
       << " kind=" << eventKindName(kind);
    if (kind != EventKind::Depart)
        os << " jobs=" << jobs << " task=" << dnn::taskTypeName(task)
           << " seed=" << seed;
    os << " name=" << bundle;
    return os.str();
}

WorkloadEvent
WorkloadEvent::fromText(const std::string& line)
{
    // `name=` terminates tokenization and captures the rest of the line
    // (bundle names may contain spaces and '='); every token before it
    // is a space-separated key=value pair.
    WorkloadEvent ev;
    bool have_t = false, have_kind = false, have_name = false;
    bool have_jobs = false, have_task = false, have_seed = false;
    size_t pos = 0;
    while (pos < line.size()) {
        while (pos < line.size() && line[pos] == ' ')
            ++pos;
        if (pos >= line.size())
            break;
        if (line.compare(pos, 5, "name=") == 0) {
            ev.bundle = line.substr(pos + 5);
            have_name = true;
            break;
        }
        size_t sp = line.find(' ', pos);
        std::string token = line.substr(
            pos, (sp == std::string::npos ? line.size() : sp) - pos);
        pos = (sp == std::string::npos) ? line.size() : sp + 1;
        size_t eq = token.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument("event: bad token '" + token +
                                        "' in '" + line + "'");
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "t") {
            ev.timeSeconds = common::parseDouble("event t", value);
            have_t = true;
        } else if (key == "kind") {
            ev.kind = eventKindFromName(value);
            have_kind = true;
        } else if (key == "jobs") {
            ev.jobs =
                static_cast<int>(api::textio::parseInt("event jobs",
                                                       value));
            have_jobs = true;
        } else if (key == "task") {
            ev.task = dnn::taskTypeFromName(value);
            have_task = true;
        } else if (key == "seed") {
            ev.seed = api::textio::parseUint("event seed", value);
            have_seed = true;
        } else {
            throw std::invalid_argument("event: unknown key '" + key +
                                        "' in '" + line + "'");
        }
    }
    if (!have_t || !have_kind || !have_name)
        throw std::invalid_argument(
            "event: t=, kind= and trailing name= are required: '" + line +
            "'");
    if (!validBundleName(ev.bundle))
        throw std::invalid_argument("event: bad bundle name in '" + line +
                                    "'");
    bool recipe = ev.kind != EventKind::Depart;
    if (recipe && !(have_jobs && have_task && have_seed))
        throw std::invalid_argument(
            "event: arrive/swap need jobs=, task= and seed=: '" + line +
            "'");
    if (!recipe && (have_jobs || have_task || have_seed))
        throw std::invalid_argument(
            "event: depart carries no generation recipe: '" + line + "'");
    return ev;
}

void
WorkloadTrace::validate() const
{
    double prev_t = 0.0;
    std::set<std::string> active;
    for (size_t i = 0; i < events.size(); ++i) {
        const WorkloadEvent& ev = events[i];
        std::string at = "event " + std::to_string(i) + " ('" +
                         ev.bundle + "'): ";
        if (!std::isfinite(ev.timeSeconds) || ev.timeSeconds < 0.0)
            throw std::invalid_argument(at + "bad time");
        if (i > 0 && ev.timeSeconds < prev_t)
            throw std::invalid_argument(at + "time decreases");
        prev_t = ev.timeSeconds;
        if (!validBundleName(ev.bundle))
            throw std::invalid_argument(at + "bad bundle name");
        switch (ev.kind) {
        case EventKind::Arrive:
            if (ev.jobs <= 0)
                throw std::invalid_argument(at + "arrive needs jobs > 0");
            if (!active.insert(ev.bundle).second)
                throw std::invalid_argument(
                    at + "arrive of an already-active bundle");
            break;
        case EventKind::Depart:
            if (active.erase(ev.bundle) == 0)
                throw std::invalid_argument(
                    at + "depart of an inactive bundle");
            break;
        case EventKind::Swap:
            if (ev.jobs <= 0)
                throw std::invalid_argument(at + "swap needs jobs > 0");
            if (active.count(ev.bundle) == 0)
                throw std::invalid_argument(
                    at + "swap of an inactive bundle");
            break;
        }
    }
}

int
WorkloadTrace::finalActiveJobs() const
{
    std::map<std::string, int> active;
    for (const WorkloadEvent& ev : events) {
        switch (ev.kind) {
        case EventKind::Arrive:
        case EventKind::Swap:
            active[ev.bundle] = ev.jobs;
            break;
        case EventKind::Depart:
            active.erase(ev.bundle);
            break;
        }
    }
    int total = 0;
    for (const auto& [name, jobs] : active)
        total += jobs;
    return total;
}

std::string
WorkloadTrace::toText() const
{
    std::ostringstream os;
    os << kHeader << '\n' << base.toText();
    for (const WorkloadEvent& ev : events)
        os << "event=" << ev.toText() << '\n';
    return os.str();
}

WorkloadTrace
WorkloadTrace::fromText(const std::string& text)
{
    // The first data line (comments/blanks allowed above, so trace
    // files can open with a usage banner) must be the exact header.
    size_t pos = 0;
    bool found = false;
    while (!found && pos <= text.size()) {
        size_t nl = text.find('\n', pos);
        std::string line = api::textio::trim(
            text.substr(pos, (nl == std::string::npos ? text.size() : nl) -
                                 pos));
        pos = (nl == std::string::npos) ? text.size() + 1 : nl + 1;
        if (line.empty() || line[0] == '#')
            continue;
        if (line != kHeader)
            throw std::invalid_argument(
                "WorkloadTrace: missing '" + std::string(kHeader) +
                "' header");
        found = true;
    }
    if (!found)
        throw std::invalid_argument(
            "WorkloadTrace: missing '" + std::string(kHeader) +
            "' header");
    pos = std::min(pos, text.size());
    WorkloadTrace trace;
    api::textio::forEachKeyValue(
        text.substr(pos),
        [&](const std::string& k, const std::string& v) {
            if (k == "event")
                trace.events.push_back(WorkloadEvent::fromText(v));
            else if (!trace.base.applyKey(k, v))
                throw std::invalid_argument(
                    "WorkloadTrace: unknown key '" + k + "'");
        });
    trace.validate();
    return trace;
}

void
WorkloadTrace::save(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write trace file '" + path + "'");
    out << toText();
    if (!out)
        throw std::runtime_error("error writing trace file '" + path +
                                 "'");
}

WorkloadTrace
WorkloadTrace::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read trace file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromText(buf.str());
}

}  // namespace magma::dyn
