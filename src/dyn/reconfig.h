#ifndef MAGMA_DYN_RECONFIG_H_
#define MAGMA_DYN_RECONFIG_H_

#include <string>
#include <vector>

#include "dnn/workload.h"
#include "sched/mapping.h"

namespace magma::dyn {

/**
 * Reconfiguration-cost knobs: what a job pays, inside the schedule
 * simulation, when an event forces it onto a (new) sub-accelerator.
 *
 * A job is "re-tiled" when it survived the event but its accel gene
 * changed, and "new" when it just arrived (or was swapped in). Both
 * stall their sub-accelerator for `retileStallSeconds` (control
 * reconfiguration: new tiling schedule, drained pipelines) plus — when
 * `chargeWeightReload` — the time to stream the job's weights over the
 * BW regime (weightElems * bytesPerElem / system BW). Unmoved surviving
 * jobs pay nothing: their tiles and weights are already resident.
 * `chargeArrivals=false` restricts charging to re-tiled survivors (an
 * ablation knob: arrival loads overlap with admission in some systems).
 *
 * The charge is applied as a per-job setup phase in BwAllocator::run
 * (zero BW demand, wall-clock rate), so it delays everything queued
 * behind the job — churn degrades real schedule quality, which is what
 * makes steady-state quality vs. churn a measured trade-off.
 */
struct ReconfigSpec {
    double retileStallSeconds = 50e-6;  ///< per re-tiled/new job
    bool chargeWeightReload = true;
    bool chargeArrivals = true;
    double bytesPerElem = 1.0;  ///< cost model's operand width
};

/** One event's reconfiguration bill, plus the per-job setup vector the
 * schedule simulation charges (indexed like the new group's jobs). */
struct ReconfigCharge {
    int movedJobs = 0;  ///< survivors whose sub-accelerator changed
    int newJobs = 0;    ///< arrivals/swap-ins
    int keptJobs = 0;   ///< survivors staying put (charged nothing)
    double reloadBytes = 0.0;        ///< total weight bytes re-streamed
    double totalStallSeconds = 0.0;  ///< sum of setupSeconds
    std::vector<double> setupSeconds;
};

/**
 * Bill the transition to `next` (over `group`, whose stable job
 * identities are `ids`) against the previous placement `prev_accel_of`:
 * a map from job identity to the sub-accelerator it occupied before the
 * event (jobs absent from it are new). `system_bw_gbps` converts reload
 * bytes to seconds.
 */
ReconfigCharge computeReconfig(
    const std::vector<std::pair<std::string, int>>& prev_accel_of,
    const std::vector<std::string>& ids, const dnn::JobGroup& group,
    const sched::Mapping& next, double system_bw_gbps,
    const ReconfigSpec& spec);

}  // namespace magma::dyn

#endif  // MAGMA_DYN_RECONFIG_H_
