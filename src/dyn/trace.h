#ifndef MAGMA_DYN_TRACE_H_
#define MAGMA_DYN_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/spec.h"
#include "dnn/model.h"

namespace magma::dyn {

/**
 * Kinds of timed workload events (the MARS-style adaptive scenario the
 * ROADMAP's "Dynamic workloads" item names): job bundles Arrive into
 * the active set, Depart from it, or are Swapped for a re-generated
 * bundle (model hot-swapping: same slot, new jobs).
 */
enum class EventKind { Arrive, Depart, Swap };

/** Event-kind name ("arrive", "depart", "swap"). */
std::string eventKindName(EventKind k);

/** Parse an eventKindName(); throws std::invalid_argument. */
EventKind eventKindFromName(const std::string& name);

/**
 * One timed workload event over a named job bundle.
 *
 * Arrive and Swap carry a generation recipe (task, jobs, seed) rather
 * than explicit job lists: the bundle's jobs are drawn by
 * dnn::WorkloadGenerator(seed).makeGroup(task, jobs), which keeps trace
 * files tiny, portable and exactly reproducible — the same discipline
 * ProblemSpec::workloadSeed established.
 *
 * Text form (one line, the value of a `event=` key in WorkloadTrace):
 *   t=<%.17g seconds> kind=arrive jobs=<n> task=<Task> seed=<u64> \
 *       name=<bundle>
 *   t=<...> kind=depart name=<bundle>
 * `name=` is always the LAST token and captures the rest of the line,
 * so bundle names may contain spaces, '=' and any other printable
 * characters; leading/trailing whitespace and newlines are rejected
 * (they cannot survive the trimmed key=value round-trip).
 */
struct WorkloadEvent {
    double timeSeconds = 0.0;
    EventKind kind = EventKind::Arrive;
    std::string bundle;
    // -- generation recipe (Arrive/Swap; ignored by Depart) -------------
    dnn::TaskType task = dnn::TaskType::Mix;
    int jobs = 0;
    uint64_t seed = 1;

    std::string toText() const;
    /** Exact inverse of toText(); throws std::invalid_argument. */
    static WorkloadEvent fromText(const std::string& line);

    bool operator==(const WorkloadEvent&) const = default;
};

/** Whether `name` is a legal bundle name (non-empty, no newlines, no
 * leading/trailing whitespace — see WorkloadEvent's text form). */
bool validBundleName(const std::string& name);

/**
 * A timed workload trace: the dynamic-scenario artifact src/dyn/ replays
 * (the input of EventEngine and the `m3e_dyn --trace` CLI).
 *
 * `base` is an api::ProblemSpec describing everything that does NOT
 * change over the timeline — platform setting, BW regime, allocation
 * policy (its task/group_size/workload_seed keys are carried for
 * round-trip fidelity but the active job set comes from the events).
 * `events` is the timeline, times non-decreasing.
 *
 * Text form ("magma-workload-trace v1" header, the ProblemSpec block,
 * then one `event=` line per event in order) round-trips bitwise —
 * fromText(toText(t)) == t — like every persistent artifact in the
 * repo, and validate() enforces the event-order invariants: finite
 * non-decreasing times, positive job counts, no Arrive over a live
 * bundle, no Depart/Swap of a dead one.
 */
struct WorkloadTrace {
    api::ProblemSpec base;
    std::vector<WorkloadEvent> events;

    /**
     * Throws std::invalid_argument when the timeline is inconsistent:
     * negative/non-finite or decreasing times, bad bundle names,
     * jobs <= 0 on Arrive/Swap, Arrive of an already-active bundle, or
     * Depart/Swap of an inactive one.
     */
    void validate() const;

    /** Number of jobs active after replaying every event. */
    int finalActiveJobs() const;

    std::string toText() const;
    /** Exact inverse of toText(); validates; throws
     * std::invalid_argument. */
    static WorkloadTrace fromText(const std::string& text);

    /** Write toText() to `path`; throws std::runtime_error on failure. */
    void save(const std::string& path) const;
    /** Parse a save()d file; throws std::runtime_error if unreadable. */
    static WorkloadTrace load(const std::string& path);

    bool operator==(const WorkloadTrace&) const = default;
};

}  // namespace magma::dyn

#endif  // MAGMA_DYN_TRACE_H_
