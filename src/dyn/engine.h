#ifndef MAGMA_DYN_ENGINE_H_
#define MAGMA_DYN_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/platform.h"
#include "api/spec.h"
#include "cost/cost_model.h"
#include "dyn/reconfig.h"
#include "dyn/trace.h"
#include "mo/pareto.h"
#include "sched/mapping.h"
#include "serve/mapping_store.h"

namespace magma::dyn {

/**
 * Knobs of one dynamic replay. `search` supplies the method, objective,
 * seed, thread count, eval kernel and — as `sampleBudget` — the COLD
 * search budget (what an event pays when no previous knowledge applies).
 * `remapBudget` is the incremental per-event budget once knowledge
 * exists (<= 0 selects sampleBudget / 4, the Table V warm regime);
 * `warmRemap = false` ablates transfer entirely, making every event a
 * cold full-budget search — the baseline bench_dyn_churn compares
 * against.
 *
 * `store`/`archive` wire in the serve-layer warm tiers: when the running
 * mapping cannot seed an event (the first one), the engine falls back to
 * a fingerprint MappingStore lookup, then to Pareto-archive seeds, then
 * to a cold search — the same tier order serve::MappingService uses.
 * Both are optional and read (the store is also written back) only
 * between searches, never concurrently.
 */
struct DynConfig {
    api::SearchSpec search;
    int64_t remapBudget = 0;  ///< <= 0: search.sampleBudget / 4
    bool warmRemap = true;
    ReconfigSpec reconfig;
    serve::MappingStore* store = nullptr;
    const mo::ParetoArchive* archive = nullptr;
};

/** How an event's search was seeded (EventRecord::source). */
enum class RemapSource { Cold, Previous, Store, Archive };

/** Source name ("cold", "previous", "store", "archive"). */
std::string remapSourceName(RemapSource s);

/**
 * Outcome of one replayed event: the trace event echoed back, the
 * re-mapping search's provenance and cost, and the schedule quality of
 * the new mapping — `makespanSeconds` WITH the reconfiguration stalls
 * charged inside the simulation (what this transition really costs) and
 * `steadyMakespanSeconds` without them (what the active set sustains
 * once reconfiguration amortizes; the quality bench_dyn_churn compares).
 */
struct EventRecord {
    WorkloadEvent event;
    int activeJobs = 0;
    RemapSource source = RemapSource::Cold;
    int64_t budget = 0;       ///< sample budget granted to this search
    int64_t samplesUsed = 0;  ///< samples actually spent
    double fitness = 0.0;     ///< search objective value (steady state)
    double makespanSeconds = 0.0;
    double steadyMakespanSeconds = 0.0;
    ReconfigCharge charge;
    sched::Mapping mapping;
};

/** Outcome of a whole trace replay. */
struct DynResult {
    std::vector<EventRecord> records;
    int64_t totalSamples = 0;
    double totalStallSeconds = 0.0;
    double totalReloadBytes = 0.0;
    /** Steady-state makespan after the last event (0 when it empties
     * the platform). */
    double finalMakespanSeconds = 0.0;
    double finalFitness = 0.0;
};

/**
 * The dynamic-workload engine (tentpole of src/dyn/): advances virtual
 * time through a WorkloadTrace, rebuilds the active job set at each
 * Arrive/Depart/Swap, and re-maps it incrementally — warm-started from
 * the running mapping via opt::transfer::adaptMatched (the engine knows
 * every job's bundle identity, so survivors keep their genes verbatim),
 * falling back to the MappingStore and ParetoArchive tiers, then cold.
 * Each event's ReconfigCost (re-tiling stalls + weight reloads for
 * moved/new jobs) is charged inside the schedule simulation via
 * MappingEvaluator::evaluateWithSetup, so churn shows up in makespan
 * rather than a side ledger.
 *
 * Determinism: for a fixed trace and DynConfig the replay is bitwise
 * reproducible at any `search.threads` count — every RNG is seeded from
 * (search.seed, event index), wall-clock never feeds back into results,
 * and the search layer's batch bookkeeping is submission-ordered.
 *
 * Use replay() for a whole trace, or reset() + step() to drive events
 * one at a time (the m3e_dyn CLI streams records as it steps).
 */
class EventEngine {
  public:
    explicit EventEngine(DynConfig cfg);

    /** Start over on a trace's base problem (platform, policy, BW). */
    void reset(const api::ProblemSpec& base);

    /** Apply one event: update the active set, re-map, charge reconfig.
     * Events must arrive in trace order (validate() invariants). */
    EventRecord step(const WorkloadEvent& ev);

    /** reset(trace.base), then step() every event. */
    DynResult replay(const WorkloadTrace& trace);

    /** Jobs currently active (sum over live bundles). */
    int activeJobs() const;
    /** The running mapping (empty before the first non-empty remap). */
    const sched::Mapping& mapping() const { return mapping_; }

  private:
    struct Bundle {
        std::string name;
        int gen = 0;  ///< bumped by Swap: swapped-in jobs are NEW jobs
        std::vector<dnn::Job> jobs;
    };

    /** Concatenate live bundles (insertion order) into a JobGroup and
     * the parallel per-job identity list ("bundle@gen#index"). */
    dnn::JobGroup buildGroup(std::vector<std::string>* ids) const;

    DynConfig cfg_;
    api::ProblemSpec base_;
    accel::Platform platform_;
    cost::CostModel model_;
    bool ready_ = false;
    int64_t eventIndex_ = 0;

    std::vector<Bundle> bundles_;  // live, insertion order
    // Running solution: the mapping over group_/ids_ plus each job's
    // placement keyed by identity (what computeReconfig bills against).
    sched::Mapping mapping_;
    dnn::JobGroup group_;
    std::vector<std::string> ids_;
    std::vector<std::pair<std::string, int>> placement_;
};

}  // namespace magma::dyn

#endif  // MAGMA_DYN_ENGINE_H_
