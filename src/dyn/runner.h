#ifndef MAGMA_DYN_RUNNER_H_
#define MAGMA_DYN_RUNNER_H_

#include <string>

#include "dyn/engine.h"
#include "dyn/trace.h"

namespace magma::dyn {

/** Output knobs of one replay (the m3e_dyn CLI surface). */
struct RunnerOptions {
    /** Write the schema-1 timeline JSON here ("" = don't). */
    std::string timelinePath;
    /** Echo one eventLine() per event to stdout. */
    bool printEvents = true;
};

/** A replay plus its (non-deterministic, JSON-only) wall cost. */
struct DynReport {
    DynResult result;
    double wallSeconds = 0.0;
};

/**
 * One deterministic line per replayed event — everything in it derives
 * from (trace, config) alone, doubles at %.17g, so fixed-seed replays
 * diff bitwise across runs and thread counts (the CI dyn-smoke gate
 * literally diffs this output at 1 and 4 threads). Wall-clock values
 * are deliberately absent; they live only in the timeline JSON.
 */
std::string eventLine(int64_t index, const EventRecord& rec);

/** One deterministic trailer line summarizing a DynResult. */
std::string summaryLine(const DynResult& result);

/**
 * The replay's schema-1 telemetry artifact ({schema, bench:
 * "dyn_timeline", config, metrics, samples}): config echoes the trace's
 * base problem and the engine knobs, metrics carries the aggregate
 * result, and samples holds one object per event (time, kind, bundle,
 * source, budget/samples, fitness, makespans, reconfig bill). Same
 * layout discipline as every other CI-consumed JSON in the repo.
 */
std::string timelineJson(const WorkloadTrace& trace, const DynConfig& cfg,
                         const DynReport& report);

/**
 * Replays traces through an EventEngine and emits the timeline report:
 * per-event stdout lines (deterministic) and the schema-1 JSON artifact
 * (optionally, with wall-clock). The obs counters/spans the engine
 * records (dyn.events, dyn.remaps, dyn.remap span) accumulate in the
 * global registry for --metrics-out snapshots.
 */
class Runner {
  public:
    explicit Runner(DynConfig cfg, RunnerOptions opts = {})
        : cfg_(std::move(cfg)), engine_(cfg_), opts_(opts)
    {}

    /** Replay, print (per opts), write the timeline JSON (per opts).
     * Returns the report; throws on invalid traces or I/O failure. */
    DynReport run(const WorkloadTrace& trace);

  private:
    DynConfig cfg_;
    EventEngine engine_;
    RunnerOptions opts_;
};

}  // namespace magma::dyn

#endif  // MAGMA_DYN_RUNNER_H_
