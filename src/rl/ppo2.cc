#include "rl/ppo2.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rl/actor_critic.h"
#include "rl/optim.h"

namespace magma::rl {

using common::Matrix;

void
Ppo2::run(const sched::MappingEvaluator& eval, const opt::SearchOptions&,
          opt::SearchRecorder& rec)
{
    ActorCritic ac(eval, rng_.engine()(), cfg_.hidden);
    Adam actor_opt(ac.actor().paramPtrs(), ac.actor().gradPtrs(),
                   cfg_.learningRate);
    Adam critic_opt(ac.critic().paramPtrs(), ac.critic().gradPtrs(),
                    cfg_.learningRate);
    const int a_n = ac.accelActions();
    const int b_n = ac.bucketActions();

    while (!rec.exhausted()) {
        // --- Collect a batch of episodes under the behaviour policy. ---
        std::vector<RolloutStep> steps;
        std::vector<double> returns;
        for (int e = 0; e < cfg_.episodesPerBatch && !rec.exhausted();
             ++e) {
            Episode ep = ac.rollout(rng_, rec);
            std::vector<double> r = ActorCritic::discountedReturns(
                static_cast<int>(ep.steps.size()), ep.reward, cfg_.gamma);
            for (size_t j = 0; j < ep.steps.size(); ++j) {
                steps.push_back(std::move(ep.steps[j]));
                returns.push_back(r[j]);
            }
        }
        if (steps.empty())
            break;
        const int n = static_cast<int>(steps.size());

        Matrix x = ActorCritic::stackFeatures(steps);

        // Advantages against the current critic, normalized per batch.
        Matrix values0 = ac.critic().forward(x);
        std::vector<double> adv(n);
        double mean = 0.0;
        for (int i = 0; i < n; ++i) {
            adv[i] = returns[i] - values0.at(i, 0);
            mean += adv[i];
        }
        mean /= n;
        double var = 0.0;
        for (double a : adv)
            var += (a - mean) * (a - mean);
        double sd = std::sqrt(var / std::max(n - 1, 1)) + 1e-8;
        for (double& a : adv)
            a = (a - mean) / sd;

        // --- Clipped-surrogate epochs. ---
        for (int epoch = 0; epoch < cfg_.epochsPerBatch; ++epoch) {
            Matrix logits = ac.actor().forward(x);
            Matrix values = ac.critic().forward(x);

            Matrix dlogits(n, a_n + b_n, 0.0);
            Matrix dvalues(n, 1, 0.0);
            for (int i = 0; i < n; ++i) {
                std::vector<double> la(a_n), lb(b_n);
                for (int k = 0; k < a_n; ++k)
                    la[k] = logits.at(i, k);
                for (int k = 0; k < b_n; ++k)
                    lb[k] = logits.at(i, a_n + k);

                double logp_new = logProb(la, steps[i].accel) +
                                  logProb(lb, steps[i].bucket);
                double ratio = std::exp(logp_new - steps[i].logp);
                double surr1 = ratio * adv[i];
                double surr2 =
                    std::clamp(ratio, 1.0 - cfg_.clipRange,
                               1.0 + cfg_.clipRange) * adv[i];
                // Gradient flows through the ratio only when the unclipped
                // term is active (standard PPO subgradient).
                bool pass = surr1 <= surr2 ||
                            (ratio >= 1.0 - cfg_.clipRange &&
                             ratio <= 1.0 + cfg_.clipRange);
                double coeff = pass ? adv[i] * ratio / n : 0.0;

                std::vector<double> ga =
                    policyGradLogits(la, steps[i].accel, coeff);
                std::vector<double> gb =
                    policyGradLogits(lb, steps[i].bucket, coeff);
                std::vector<double> ea =
                    entropyGradLogits(la, cfg_.entropyCoef / n);
                std::vector<double> eb =
                    entropyGradLogits(lb, cfg_.entropyCoef / n);
                for (int k = 0; k < a_n; ++k)
                    dlogits.at(i, k) = ga[k] + ea[k];
                for (int k = 0; k < b_n; ++k)
                    dlogits.at(i, a_n + k) = gb[k] + eb[k];

                dvalues.at(i, 0) = 2.0 * cfg_.valueCoef *
                                   (values.at(i, 0) - returns[i]) / n;
            }

            ac.actor().zeroGrad();
            ac.actor().backward(dlogits);
            actor_opt.clipGradNorm(cfg_.maxGradNorm);
            actor_opt.step();

            ac.critic().zeroGrad();
            ac.critic().backward(dvalues);
            critic_opt.clipGradNorm(cfg_.maxGradNorm);
            critic_opt.step();
        }
    }
}

}  // namespace magma::rl
