#ifndef MAGMA_RL_A2C_H_
#define MAGMA_RL_A2C_H_

#include "opt/optimizer.h"

namespace magma::rl {

/** Table IV: 3x128 MLPs, discount 0.99, lr 0.0007, RMSProp. */
struct A2cConfig {
    int hidden = 128;
    double gamma = 0.99;
    double learningRate = 7e-4;
    double entropyCoef = 0.01;
    double valueCoef = 0.5;
    double maxGradNorm = 0.5;
};

/**
 * Advantage Actor-Critic (Table IV "RL A2C") on the sequential
 * mapping-construction environment. One episode constructs one complete
 * mapping and consumes one budget sample; the update runs per episode.
 */
class A2c : public opt::Optimizer {
  public:
    explicit A2c(uint64_t seed, A2cConfig cfg = {})
        : Optimizer(seed), cfg_(cfg)
    {}
    std::string name() const override { return "RL A2C"; }

  protected:
    void run(const sched::MappingEvaluator& eval,
             const opt::SearchOptions& opts,
             opt::SearchRecorder& rec) override;

  private:
    A2cConfig cfg_;
};

}  // namespace magma::rl

#endif  // MAGMA_RL_A2C_H_
