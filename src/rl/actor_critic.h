#ifndef MAGMA_RL_ACTOR_CRITIC_H_
#define MAGMA_RL_ACTOR_CRITIC_H_

#include <vector>

#include "common/matrix.h"
#include "opt/optimizer.h"
#include "rl/nn.h"
#include "rl/policy.h"

namespace magma::rl {

/** One environment step of a collected episode. */
struct RolloutStep {
    std::vector<double> features;
    int accel = 0;
    int bucket = 0;
    double logp = 0.0;  ///< joint log-prob of both heads at collection time
};

/** One collected episode (= one budget sample). */
struct Episode {
    std::vector<RolloutStep> steps;
    sched::Mapping mapping;
    double fitness = 0.0;  ///< raw throughput (GFLOP/s)
    double reward = 0.0;   ///< normalized by platform peak
};

/**
 * Shared actor-critic plumbing of the two RL methods (Table IV): a policy
 * network with an accel head and a priority-bucket head, a separate critic
 * network, and an episode rollout that constructs a full mapping and
 * charges exactly one budget sample for its evaluation.
 */
class ActorCritic {
  public:
    ActorCritic(const sched::MappingEvaluator& eval, uint64_t seed,
                int hidden = 128);

    /** Play one episode under the current stochastic policy. */
    Episode rollout(common::Rng& rng, opt::SearchRecorder& rec);

    /** Stack episode features into a (steps x dim) matrix. */
    static common::Matrix stackFeatures(const std::vector<RolloutStep>& s);

    /** Discounted returns for a terminal-only reward. */
    static std::vector<double> discountedReturns(int steps, double reward,
                                                 double gamma);

    MappingEnv& env() { return env_; }
    Mlp& actor() { return actor_; }
    Mlp& critic() { return critic_; }
    int accelActions() const { return env_.accelActions(); }
    int bucketActions() const { return env_.priorityActions(); }

  private:
    const sched::MappingEvaluator* eval_;
    MappingEnv env_;
    Mlp actor_;
    Mlp critic_;
    double reward_scale_;
};

}  // namespace magma::rl

#endif  // MAGMA_RL_ACTOR_CRITIC_H_
