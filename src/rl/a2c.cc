#include "rl/a2c.h"

#include <vector>

#include "rl/actor_critic.h"
#include "rl/optim.h"

namespace magma::rl {

using common::Matrix;

void
A2c::run(const sched::MappingEvaluator& eval, const opt::SearchOptions&,
         opt::SearchRecorder& rec)
{
    ActorCritic ac(eval, rng_.engine()(), cfg_.hidden);
    RmsProp actor_opt(ac.actor().paramPtrs(), ac.actor().gradPtrs(),
                      cfg_.learningRate);
    RmsProp critic_opt(ac.critic().paramPtrs(), ac.critic().gradPtrs(),
                       cfg_.learningRate);
    const int a_n = ac.accelActions();
    const int b_n = ac.bucketActions();

    while (!rec.exhausted()) {
        Episode ep = ac.rollout(rng_, rec);
        const int g = static_cast<int>(ep.steps.size());

        Matrix x = ActorCritic::stackFeatures(ep.steps);
        Matrix logits = ac.actor().forward(x);
        Matrix values = ac.critic().forward(x);
        std::vector<double> returns =
            ActorCritic::discountedReturns(g, ep.reward, cfg_.gamma);

        Matrix dlogits(g, a_n + b_n, 0.0);
        Matrix dvalues(g, 1, 0.0);
        for (int j = 0; j < g; ++j) {
            double adv = returns[j] - values.at(j, 0);
            std::vector<double> la(a_n), lb(b_n);
            for (int i = 0; i < a_n; ++i)
                la[i] = logits.at(j, i);
            for (int i = 0; i < b_n; ++i)
                lb[i] = logits.at(j, a_n + i);

            // Policy gradient (both heads) + entropy bonus, averaged over
            // the episode.
            std::vector<double> ga =
                policyGradLogits(la, ep.steps[j].accel, adv / g);
            std::vector<double> gb =
                policyGradLogits(lb, ep.steps[j].bucket, adv / g);
            std::vector<double> ea =
                entropyGradLogits(la, cfg_.entropyCoef / g);
            std::vector<double> eb =
                entropyGradLogits(lb, cfg_.entropyCoef / g);
            for (int i = 0; i < a_n; ++i)
                dlogits.at(j, i) = ga[i] + ea[i];
            for (int i = 0; i < b_n; ++i)
                dlogits.at(j, a_n + i) = gb[i] + eb[i];

            // Value loss 0.5 coefficient: d/dV of c*(V-R)^2.
            dvalues.at(j, 0) = 2.0 * cfg_.valueCoef *
                               (values.at(j, 0) - returns[j]) / g;
        }

        ac.actor().zeroGrad();
        ac.actor().backward(dlogits);
        actor_opt.clipGradNorm(cfg_.maxGradNorm);
        actor_opt.step();

        ac.critic().zeroGrad();
        ac.critic().backward(dvalues);
        critic_opt.clipGradNorm(cfg_.maxGradNorm);
        critic_opt.step();
    }
}

}  // namespace magma::rl
