#ifndef MAGMA_RL_PPO2_H_
#define MAGMA_RL_PPO2_H_

#include "opt/optimizer.h"

namespace magma::rl {

/** Table IV: 3x128 MLPs, discount 0.99, clip 0.2, lr 0.00025, Adam. */
struct Ppo2Config {
    int hidden = 128;
    double gamma = 0.99;
    double learningRate = 2.5e-4;
    double clipRange = 0.2;
    double entropyCoef = 0.01;
    double valueCoef = 0.5;
    double maxGradNorm = 0.5;
    int episodesPerBatch = 8;
    int epochsPerBatch = 4;
};

/**
 * Proximal Policy Optimization (Table IV "RL PPO2"): collects a batch of
 * episodes, then performs several epochs of clipped-surrogate updates
 * against the behaviour policy's stored log-probs.
 */
class Ppo2 : public opt::Optimizer {
  public:
    explicit Ppo2(uint64_t seed, Ppo2Config cfg = {})
        : Optimizer(seed), cfg_(cfg)
    {}
    std::string name() const override { return "RL PPO2"; }

  protected:
    void run(const sched::MappingEvaluator& eval,
             const opt::SearchOptions& opts,
             opt::SearchRecorder& rec) override;

  private:
    Ppo2Config cfg_;
};

}  // namespace magma::rl

#endif  // MAGMA_RL_PPO2_H_
