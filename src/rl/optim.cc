#include "rl/optim.h"

#include <cmath>

namespace magma::rl {

void
GradOptimizer::clipGradNorm(double max_norm)
{
    double norm2 = 0.0;
    for (double* g : grads_)
        norm2 += (*g) * (*g);
    double norm = std::sqrt(norm2);
    if (norm > max_norm && norm > 0.0) {
        double scale = max_norm / norm;
        for (double* g : grads_)
            *g *= scale;
    }
}

RmsProp::RmsProp(std::vector<double*> params, std::vector<double*> grads,
                 double lr, double alpha, double eps)
    : GradOptimizer(std::move(params), std::move(grads)),
      lr_(lr), alpha_(alpha), eps_(eps), sq_(params_.size(), 0.0)
{}

void
RmsProp::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        double g = *grads_[i];
        sq_[i] = alpha_ * sq_[i] + (1.0 - alpha_) * g * g;
        *params_[i] -= lr_ * g / (std::sqrt(sq_[i]) + eps_);
    }
}

Adam::Adam(std::vector<double*> params, std::vector<double*> grads,
           double lr, double beta1, double beta2, double eps)
    : GradOptimizer(std::move(params), std::move(grads)),
      lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      m_(params_.size(), 0.0), v_(params_.size(), 0.0)
{}

void
Adam::step()
{
    ++t_;
    double bc1 = 1.0 - std::pow(beta1_, t_);
    double bc2 = 1.0 - std::pow(beta2_, t_);
    for (size_t i = 0; i < params_.size(); ++i) {
        double g = *grads_[i];
        m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * g;
        v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * g * g;
        double mh = m_[i] / bc1;
        double vh = v_[i] / bc2;
        *params_[i] -= lr_ * mh / (std::sqrt(vh) + eps_);
    }
}

}  // namespace magma::rl
