#include "rl/nn.h"

#include <cassert>
#include <cmath>

namespace magma::rl {

using common::Matrix;

Linear::Linear(int in, int out, common::Rng& rng)
    : in_(in), out_(out), w_(out, in), b_(out, 0.0), gw_(out, in),
      gb_(out, 0.0)
{
    // He-style initialization for the ReLU stacks.
    double scale = std::sqrt(2.0 / in);
    for (size_t i = 0; i < w_.rows(); ++i)
        for (size_t j = 0; j < w_.cols(); ++j)
            w_.at(i, j) = rng.gauss() * scale;
}

Matrix
Linear::forward(const Matrix& x)
{
    assert(static_cast<int>(x.cols()) == in_);
    cached_x_ = x;
    Matrix y(x.rows(), out_);
    for (size_t r = 0; r < x.rows(); ++r) {
        for (int o = 0; o < out_; ++o) {
            double acc = b_[o];
            for (int i = 0; i < in_; ++i)
                acc += x.at(r, i) * w_.at(o, i);
            y.at(r, o) = acc;
        }
    }
    return y;
}

Matrix
Linear::backward(const Matrix& grad_out)
{
    assert(static_cast<int>(grad_out.cols()) == out_);
    assert(grad_out.rows() == cached_x_.rows());
    // dW += g^T x ; db += sum g ; dx = g W
    for (size_t r = 0; r < grad_out.rows(); ++r) {
        for (int o = 0; o < out_; ++o) {
            double g = grad_out.at(r, o);
            if (g == 0.0)
                continue;
            gb_[o] += g;
            for (int i = 0; i < in_; ++i)
                gw_.at(o, i) += g * cached_x_.at(r, i);
        }
    }
    Matrix dx(grad_out.rows(), in_, 0.0);
    for (size_t r = 0; r < grad_out.rows(); ++r)
        for (int o = 0; o < out_; ++o) {
            double g = grad_out.at(r, o);
            if (g == 0.0)
                continue;
            for (int i = 0; i < in_; ++i)
                dx.at(r, i) += g * w_.at(o, i);
        }
    return dx;
}

void
Linear::zeroGrad()
{
    gw_.scale(0.0);
    std::fill(gb_.begin(), gb_.end(), 0.0);
}

std::vector<double*>
Linear::paramPtrs()
{
    std::vector<double*> out;
    out.reserve(w_.rows() * w_.cols() + b_.size());
    for (size_t i = 0; i < w_.rows() * w_.cols(); ++i)
        out.push_back(w_.data() + i);
    for (double& b : b_)
        out.push_back(&b);
    return out;
}

std::vector<double*>
Linear::gradPtrs()
{
    std::vector<double*> out;
    out.reserve(gw_.rows() * gw_.cols() + gb_.size());
    for (size_t i = 0; i < gw_.rows() * gw_.cols(); ++i)
        out.push_back(gw_.data() + i);
    for (double& g : gb_)
        out.push_back(&g);
    return out;
}

Mlp::Mlp(const std::vector<int>& dims, uint64_t seed)
{
    assert(dims.size() >= 2);
    common::Rng rng(seed);
    for (size_t i = 0; i + 1 < dims.size(); ++i)
        layers_.emplace_back(dims[i], dims[i + 1], rng);
}

Matrix
Mlp::forward(const Matrix& x)
{
    relu_in_.clear();
    Matrix h = x;
    for (size_t l = 0; l < layers_.size(); ++l) {
        h = layers_[l].forward(h);
        if (l + 1 < layers_.size()) {
            relu_in_.push_back(h);
            for (size_t r = 0; r < h.rows(); ++r)
                for (size_t c = 0; c < h.cols(); ++c)
                    h.at(r, c) = std::max(h.at(r, c), 0.0);
        }
    }
    return h;
}

void
Mlp::backward(const Matrix& grad_out)
{
    Matrix g = grad_out;
    for (size_t l = layers_.size(); l-- > 0;) {
        g = layers_[l].backward(g);
        if (l > 0) {
            const Matrix& pre = relu_in_[l - 1];
            for (size_t r = 0; r < g.rows(); ++r)
                for (size_t c = 0; c < g.cols(); ++c)
                    if (pre.at(r, c) <= 0.0)
                        g.at(r, c) = 0.0;
        }
    }
}

void
Mlp::zeroGrad()
{
    for (auto& l : layers_)
        l.zeroGrad();
}

std::vector<double*>
Mlp::paramPtrs()
{
    std::vector<double*> out;
    for (auto& l : layers_)
        for (double* p : l.paramPtrs())
            out.push_back(p);
    return out;
}

std::vector<double*>
Mlp::gradPtrs()
{
    std::vector<double*> out;
    for (auto& l : layers_)
        for (double* p : l.gradPtrs())
            out.push_back(p);
    return out;
}

}  // namespace magma::rl
