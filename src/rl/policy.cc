#include "rl/policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace magma::rl {

std::vector<double>
softmax(const std::vector<double>& logits)
{
    double mx = *std::max_element(logits.begin(), logits.end());
    std::vector<double> p(logits.size());
    double sum = 0.0;
    for (size_t i = 0; i < logits.size(); ++i) {
        p[i] = std::exp(logits[i] - mx);
        sum += p[i];
    }
    for (double& v : p)
        v /= sum;
    return p;
}

int
sampleCategorical(const std::vector<double>& logits, common::Rng& rng)
{
    std::vector<double> p = softmax(logits);
    double r = rng.uniform();
    double acc = 0.0;
    for (size_t i = 0; i < p.size(); ++i) {
        acc += p[i];
        if (r < acc)
            return static_cast<int>(i);
    }
    return static_cast<int>(p.size()) - 1;
}

double
logProb(const std::vector<double>& logits, int action)
{
    double mx = *std::max_element(logits.begin(), logits.end());
    double sum = 0.0;
    for (double l : logits)
        sum += std::exp(l - mx);
    return logits[action] - mx - std::log(sum);
}

double
entropy(const std::vector<double>& logits)
{
    std::vector<double> p = softmax(logits);
    double h = 0.0;
    for (double v : p)
        if (v > 0.0)
            h -= v * std::log(v);
    return h;
}

std::vector<double>
policyGradLogits(const std::vector<double>& logits, int action, double coeff)
{
    std::vector<double> g = softmax(logits);
    for (double& v : g)
        v *= coeff;
    g[action] -= coeff;
    return g;
}

std::vector<double>
entropyGradLogits(const std::vector<double>& logits, double coeff)
{
    // d(-H)/dlogit_i = p_i * (log p_i + H); scaled by coeff.
    std::vector<double> p = softmax(logits);
    double h = 0.0;
    for (double v : p)
        if (v > 0.0)
            h -= v * std::log(v);
    std::vector<double> g(p.size());
    for (size_t i = 0; i < p.size(); ++i) {
        double logp = p[i] > 0.0 ? std::log(p[i]) : -40.0;
        g[i] = coeff * p[i] * (logp + h);
    }
    return g;
}

MappingEnv::MappingEnv(const sched::MappingEvaluator& eval)
    : eval_(&eval),
      num_accels_(eval.numAccels()),
      group_size_(eval.groupSize()),
      loads_(num_accels_, 0.0),
      feat_scale_(num_accels_, 1.0)
{
    // Normalizer: mean per-core no-stall latency over the group.
    const auto& table = eval.table();
    for (int a = 0; a < num_accels_; ++a) {
        double sum = 0.0;
        for (int j = 0; j < group_size_; ++j)
            sum += table.lookup(j, a).noStallSeconds;
        feat_scale_[a] = std::max(sum / group_size_, 1e-12);
    }
}

int
MappingEnv::featureDim() const
{
    return 3 * num_accels_ + 4;
}

void
MappingEnv::reset()
{
    std::fill(loads_.begin(), loads_.end(), 0.0);
}

std::vector<double>
MappingEnv::observe(int step) const
{
    const auto& table = eval_->table();
    const dnn::Job& job = eval_->group().jobs[step];
    std::vector<double> f;
    f.reserve(featureDim());

    // Per-core log-scaled latency and required BW of this job.
    for (int a = 0; a < num_accels_; ++a) {
        const auto& p = table.lookup(step, a);
        f.push_back(std::log1p(p.noStallSeconds / feat_scale_[a]));
    }
    for (int a = 0; a < num_accels_; ++a) {
        const auto& p = table.lookup(step, a);
        f.push_back(std::log1p(p.reqBwGbps) / 6.0);
    }
    // Per-core load fractions accumulated so far.
    double total = 0.0;
    for (double l : loads_)
        total += l;
    for (int a = 0; a < num_accels_; ++a)
        f.push_back(total > 0.0 ? loads_[a] / total : 0.0);
    // Task one-hot + progress.
    f.push_back(job.task == dnn::TaskType::Vision ? 1.0 : 0.0);
    f.push_back(job.task == dnn::TaskType::Language ? 1.0 : 0.0);
    f.push_back(job.task == dnn::TaskType::Recommendation ? 1.0 : 0.0);
    f.push_back(static_cast<double>(step) / group_size_);
    return f;
}

void
MappingEnv::act(int step, int accel, int bucket, sched::Mapping& m)
{
    assert(accel >= 0 && accel < num_accels_);
    assert(bucket >= 0 && bucket < kPriorityBuckets);
    m.accelSel[step] = accel;
    m.priority[step] = (bucket + 0.5) / kPriorityBuckets;
    loads_[accel] += eval_->table().lookup(step, accel).noStallSeconds;
}

}  // namespace magma::rl
